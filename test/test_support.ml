(* Unit and property tests for the support library. *)
open Csspgo_support

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index 3 out of bounds [0,3)") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Vec: index -1 out of bounds [0,3)") (fun () ->
      ignore (Vec.get v (-1)))

let test_vec_ops () =
  let v = Vec.of_list [ 5; 1; 4; 2; 3 ] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sort" [ 1; 2; 3; 4; 5 ] (Vec.to_list v);
  Vec.filter_in_place (fun x -> x mod 2 = 1) v;
  Alcotest.(check (list int)) "filter" [ 1; 3; 5 ] (Vec.to_list v);
  let w = Vec.map (fun x -> x * 10) v in
  Alcotest.(check (list int)) "map" [ 10; 30; 50 ] (Vec.to_list w);
  let c = Vec.copy v in
  Vec.push c 7;
  Alcotest.(check int) "copy independent" 3 (Vec.length v);
  Alcotest.(check int) "append target" 4 (Vec.length c)

let test_heap_order () =
  let h = Heap.of_list compare [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  Alcotest.(check (list int)) "drains descending" [ 9; 6; 5; 4; 3; 2; 1; 1 ]
    (Heap.to_sorted_list h)

let test_heap_peek () =
  let h = Heap.create compare in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 10;
  Heap.push h 20;
  Alcotest.(check (option int)) "peek max" (Some 20) (Heap.peek h);
  Alcotest.(check int) "length" 2 (Heap.length h)

let test_heap_duplicate_priorities () =
  (* Elements comparing equal must all come out, none lost or invented. *)
  let cmp (p, _) (q, _) = compare (p : int) q in
  let h = Heap.create cmp in
  List.iter (Heap.push h)
    [ (1, "a"); (2, "b"); (1, "c"); (2, "d"); (1, "e") ];
  Alcotest.(check int) "length with duplicates" 5 (Heap.length h);
  let drained = Heap.to_sorted_list h in
  Alcotest.(check (list int)) "priorities descending" [ 2; 2; 1; 1; 1 ]
    (List.map fst drained);
  Alcotest.(check (list string)) "payloads preserved as a set"
    [ "a"; "b"; "c"; "d"; "e" ]
    (List.sort compare (List.map snd drained))

let test_heap_pop_empty () =
  let h = Heap.create compare in
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Heap.push h 1;
  Alcotest.(check (option int)) "pop singleton" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop after drain" None (Heap.pop h);
  Alcotest.(check bool) "empty again" true (Heap.is_empty h);
  (* heap stays usable after being emptied *)
  Heap.push h 5;
  Heap.push h 3;
  Alcotest.(check (option int)) "reuse after empty" (Some 5) (Heap.pop h)

let test_vec_growth () =
  (* Push far beyond any plausible initial capacity and check contents. *)
  let v = Vec.create () in
  for i = 0 to 9999 do
    Vec.push v (i * 3)
  done;
  Alcotest.(check int) "length 10000" 10_000 (Vec.length v);
  Alcotest.(check int) "first" 0 (Vec.get v 0);
  Alcotest.(check int) "middle" (5000 * 3) (Vec.get v 5000);
  Alcotest.(check int) "last" (9999 * 3) (Vec.last v);
  (* make with an explicit size also survives growth past it *)
  let w = Vec.make 4 7 in
  for _ = 1 to 100 do
    Vec.push w 9
  done;
  Alcotest.(check int) "make + growth length" 104 (Vec.length w);
  Alcotest.(check int) "make prefix intact" 7 (Vec.get w 3);
  Alcotest.(check int) "pushed suffix intact" 9 (Vec.get w 103)

let test_vec_pop_empty () =
  let v = Vec.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop v));
  Vec.push v 1;
  ignore (Vec.pop v);
  Alcotest.check_raises "pop after drain" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop v));
  (* clear resets length; pop on cleared vec raises too *)
  Vec.push v 2;
  Vec.clear v;
  Alcotest.check_raises "pop after clear" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop v))

let test_rng_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 1L in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    if x < 0 || x >= 10 then Alcotest.fail "Rng.int out of bounds";
    let y = Rng.int_in rng 5 8 in
    if y < 5 || y > 8 then Alcotest.fail "Rng.int_in out of bounds";
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "Rng.float out of bounds"
  done

let test_fnv_known () =
  (* FNV-1a of the empty string is the offset basis. *)
  Alcotest.(check int64) "empty" 0xCBF29CE484222325L (Fnv.hash_string "");
  Alcotest.(check bool) "distinct" true
    (not (Int64.equal (Fnv.hash_string "foo") (Fnv.hash_string "bar")));
  Alcotest.(check int64) "stable" (Fnv.hash_string "csspgo") (Fnv.hash_string "csspgo")

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.of_list compare l in
      Heap.to_sorted_list h = List.sort (fun a b -> compare b a) l)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let prop_rng_chance_extremes =
  QCheck.Test.make ~name:"rng chance 0 and 1" ~count:50 QCheck.int64 (fun seed ->
      let rng = Rng.create seed in
      (not (Rng.chance rng 0.0)) && Rng.chance rng 1.0)

let suite =
  ( "support",
    [
      Alcotest.test_case "vec basic" `Quick test_vec_basic;
      Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
      Alcotest.test_case "vec ops" `Quick test_vec_ops;
      Alcotest.test_case "heap order" `Quick test_heap_order;
      Alcotest.test_case "heap peek" `Quick test_heap_peek;
      Alcotest.test_case "heap duplicate priorities" `Quick
        test_heap_duplicate_priorities;
      Alcotest.test_case "heap pop empty" `Quick test_heap_pop_empty;
      Alcotest.test_case "vec growth past capacity" `Quick test_vec_growth;
      Alcotest.test_case "vec pop empty" `Quick test_vec_pop_empty;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "fnv known" `Quick test_fnv_known;
      QCheck_alcotest.to_alcotest prop_heap_sorted;
      QCheck_alcotest.to_alcotest prop_vec_roundtrip;
      QCheck_alcotest.to_alcotest prop_rng_chance_extremes;
    ] )
