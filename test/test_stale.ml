(* Stale-profile matching: the staleness test battery.

   Three property families plus targeted edge cases:
   - drift identity: edits=0 is byte-identity with an empty log, and equal
     (seed, edits) yield byte-identical revisions;
   - self-match: matching any profile against the very IR it was collected
     on is 100% exact and returns the same canonical bytes;
   - conservation: for arbitrary edit scripts, every verdict satisfies
     total_in = recovered + dropped, as do the report totals;
   - Quality.block_overlap on mismatched function/block sets stays finite
     (no NaN / division by zero), and Quality.recovery guards a zero fresh
     overlap;
   - orchestrated stale plans are deterministic across -j 1/2/4. *)
module F = Csspgo_frontend
module Ir = Csspgo_ir
module P = Csspgo_profile
module Core = Csspgo_core
module SM = Core.Stale_match
module Q = Core.Quality
module D = Core.Driver
module O = Csspgo_orchestrator
module W = Csspgo_workloads

(* Dense sampling for rich profiles (same knob the bench and fuzz
   harnesses use). The matcher properties run on suite workloads: tiny
   generated programs optimize to straight-line code with no taken
   branches, so the LBR-driven pipeline legitimately yields empty
   profiles — [Workloads.Gen] sources still drive the pure drift
   properties, which never profile. *)
let options =
  {
    D.default_options with
    D.pmu = { Csspgo_vm.Machine.default_pmu with Csspgo_vm.Machine.sample_period = 101 };
  }

let gen_src seed = W.Gen.random_source ~n_funcs:4 ~size:2 ~seed ()

let suite_workloads = [ W.Suite.adretriever; W.Suite.haas ]

(* Pre-optimization IR of [src], probed when asked — the [target] shape
   every matcher expects. *)
let target_ir ?(probes = true) src =
  let p = F.Lower.compile src in
  if probes then Core.Pseudo_probe.insert p;
  p

(* All sampled profiles a workload produces, as parsed profile values:
   Autofdo contributes the line profile, Csspgo_full the context trie and
   the flat probe profile. *)
let profiles_of w =
  List.concat_map
    (fun v ->
      List.filter_map
        (fun (_tag, text) ->
          (* A kind can legitimately come out empty (fully trimmed context
             trie, branchless hot path) — nothing to stale-match then. *)
          match P.Text_io.detect_kind text with
          | None -> None
          | Some kind -> Some (P.Text_io.of_string ~kind text))
        (D.profile_pipeline_texts ~options ~streaming:true v w))
    [ D.Autofdo; D.Csspgo_full ]

(* Profiling a suite workload costs a full build+train pipeline; do it
   once per workload for the whole battery. *)
let workload_profiles =
  let tbl = Hashtbl.create 4 in
  fun (w : D.workload) ->
    match Hashtbl.find_opt tbl w.D.w_name with
    | Some ps -> ps
    | None ->
        let ps = profiles_of w in
        Hashtbl.replace tbl w.D.w_name ps;
        ps

let match_any ~target = function
  | P.Text_io.Probe_prof p ->
      let m, r = SM.match_probe ~target p in
      (P.Text_io.Probe_prof m, r)
  | P.Text_io.Line_prof p ->
      let m, r = SM.match_line ~target p in
      (P.Text_io.Line_prof m, r)
  | P.Text_io.Ctx_prof p ->
      let m, r = SM.match_ctx ~target p in
      (P.Text_io.Ctx_prof m, r)

(* --- drift identity -------------------------------------------------- *)

let prop_drift_identity =
  QCheck.Test.make ~name:"drift: edits=0 is byte-identity" ~count:30
    QCheck.(int_range 1 500)
    (fun seed ->
      let src = gen_src (Int64.of_int seed) in
      let d = W.Drift.apply ~seed:(Int64.of_int (seed * 31)) ~edits:0 src in
      String.equal d.W.Drift.dr_source src && d.W.Drift.dr_edits = [])

let prop_drift_deterministic =
  QCheck.Test.make ~name:"drift: equal seeds drift identically" ~count:20
    QCheck.(pair (int_range 1 500) (int_range 1 8))
    (fun (seed, edits) ->
      let src = gen_src (Int64.of_int seed) in
      let d1 = W.Drift.apply ~seed:(Int64.of_int (seed * 7)) ~edits src in
      let d2 = W.Drift.apply ~seed:(Int64.of_int (seed * 7)) ~edits src in
      String.equal d1.W.Drift.dr_source d2.W.Drift.dr_source
      && List.length d1.W.Drift.dr_edits = edits
      && List.for_all2
           (fun a b -> String.equal (W.Drift.edit_to_string a) (W.Drift.edit_to_string b))
           d1.W.Drift.dr_edits d2.W.Drift.dr_edits)

(* --- self-match: zero drift must be a no-op -------------------------- *)

let test_self_match_exact () =
  List.iter
    (fun (w : D.workload) ->
      List.iter
        (fun prof ->
          let label tag =
            Printf.sprintf "%s %s %s" w.D.w_name
              (P.Text_io.kind_name (P.Text_io.kind_of prof))
              tag
          in
          let probes = P.Text_io.kind_of prof <> P.Text_io.Line in
          let target = target_ir ~probes w.D.w_source in
          let matched, report = match_any ~target prof in
          List.iter
            (fun v ->
              Alcotest.(check string) (label (v.SM.v_name ^ " status")) "exact"
                (SM.status_name v.SM.v_status))
            report.SM.r_verdicts;
          Alcotest.(check int) (label "fuzzy") 0 report.SM.r_fuzzy;
          Alcotest.(check int) (label "dropped") 0 report.SM.r_dropped;
          Alcotest.(check (float 0.0)) (label "recovery") 1.0 (SM.recovery_rate report);
          Alcotest.(check string) (label "bytes")
            (P.Text_io.to_string prof) (P.Text_io.to_string matched))
        (workload_profiles w))
    suite_workloads

(* The matcher checks above are vacuous on unsampled profiles; require
   that every suite workload demonstrably produces all three kinds so the
   battery cannot silently degrade into a no-op. *)
let test_profiles_nonempty () =
  List.iter
    (fun (w : D.workload) ->
      let kinds =
        List.sort_uniq compare (List.map P.Text_io.kind_of (workload_profiles w))
      in
      Alcotest.(check int)
        (w.D.w_name ^ " samples all three profile kinds")
        3 (List.length kinds))
    suite_workloads

(* --- conservation under arbitrary edit scripts ----------------------- *)

let verdict_conserves (v : SM.verdict) =
  Int64.equal v.SM.v_total_in (Int64.add v.SM.v_recovered v.SM.v_dropped)

let report_conserves (r : SM.report) =
  Int64.equal r.SM.r_total_in (Int64.add r.SM.r_recovered r.SM.r_dropped_counts)
  && List.for_all verdict_conserves r.SM.r_verdicts
  && r.SM.r_exact + r.SM.r_fuzzy + r.SM.r_dropped = List.length r.SM.r_verdicts
  && Int64.equal r.SM.r_total_in
       (List.fold_left
          (fun acc v -> Int64.add acc v.SM.v_total_in)
          0L r.SM.r_verdicts)
  &&
  let rate = SM.recovery_rate r in
  rate >= 0.0 && rate <= 1.0 +. 1e-9

let prop_match_conserves =
  QCheck.Test.make ~name:"stale: counts conserved for arbitrary edit scripts"
    ~count:16
    QCheck.(pair (int_range 1 10_000) (int_range 1 8))
    (fun (seed, edits) ->
      let w =
        List.nth suite_workloads (seed mod List.length suite_workloads)
      in
      let drift =
        W.Drift.apply ~seed:(Int64.of_int ((seed * 13) + edits)) ~edits w.D.w_source
      in
      List.for_all
        (fun prof ->
          let probes = P.Text_io.kind_of prof <> P.Text_io.Line in
          let target = target_ir ~probes drift.W.Drift.dr_source in
          let _, report = match_any ~target prof in
          report_conserves report)
        (workload_profiles w))

(* --- Quality on mismatched block sets -------------------------------- *)

let annotate_uniform ?(count = 10L) p =
  Ir.Program.iter_funcs
    (fun f ->
      f.Ir.Func.annotated <- true;
      Ir.Func.iter_blocks (fun b -> b.Ir.Block.count <- count) f)
    p

let quality_src_branchy =
  "fn f(a) {\n  let x = 0;\n  if (a > 1) { x = a * 2; } else { x = a + 7; }\n  return x;\n}\nfn main(a) { return f(a); }"

let quality_src_straight = "fn f(a) {\n  return a * 2;\n}\nfn main(a) { return f(a); }"

let quality_src_other = "fn g(a) {\n  return a - 1;\n}\nfn main(a) { return g(a); }"

let finite x = Float.is_finite x && not (Float.is_nan x)

let test_quality_mismatched_blocks () =
  (* Same function name, different CFGs: blocks present on only one side
     contribute nothing, the result stays finite and in [0, 1]. *)
  let truth = F.Lower.compile quality_src_branchy in
  let cand = F.Lower.compile quality_src_straight in
  annotate_uniform truth;
  annotate_uniform cand;
  let d = Q.block_overlap ~truth cand in
  Alcotest.(check bool) "finite" true (finite d);
  Alcotest.(check bool) "in [0,1]" true (d >= 0.0 && d <= 1.0);
  Alcotest.(check bool) "shared blocks overlap" true (d > 0.0);
  (* Asymmetric direction too: extra truth blocks, missing cand blocks. *)
  let d' = Q.block_overlap ~truth:cand truth in
  Alcotest.(check bool) "reverse finite" true (finite d' && d' >= 0.0 && d' <= 1.0)

let test_quality_disjoint_functions () =
  (* Candidate's counted functions are absent from truth entirely
     (renamed/removed drift): no pair carries counts on both sides. *)
  let truth = F.Lower.compile quality_src_other in
  let cand = F.Lower.compile quality_src_straight in
  annotate_uniform truth;
  (* Count only [f], which truth lacks; shared [main] stays at zero. *)
  Ir.Program.iter_funcs
    (fun f ->
      f.Ir.Func.annotated <- true;
      if String.equal f.Ir.Func.name "f" then
        Ir.Func.iter_blocks (fun b -> b.Ir.Block.count <- 10L) f)
    cand;
  let d = Q.block_overlap ~truth cand in
  Alcotest.(check (float 0.0)) "no common counted function -> 0.0" 0.0 d

let test_quality_zero_counts () =
  (* Both sides annotated but all-zero: func_overlap is None everywhere,
     block_overlap reports 0.0 ("no data"), never NaN. *)
  let truth = F.Lower.compile quality_src_branchy in
  let cand = F.Lower.compile quality_src_branchy in
  annotate_uniform ~count:0L truth;
  annotate_uniform ~count:0L cand;
  let d = Q.block_overlap ~truth cand in
  Alcotest.(check (float 0.0)) "all-zero -> 0.0" 0.0 d;
  (* One-sided zero as well. *)
  annotate_uniform ~count:5L cand;
  let d' = Q.block_overlap ~truth cand in
  Alcotest.(check (float 0.0)) "zero truth -> 0.0" 0.0 d'

let test_quality_recovery_guard () =
  let truth = F.Lower.compile quality_src_branchy in
  let fresh = F.Lower.compile quality_src_branchy in
  let stale = F.Lower.compile quality_src_branchy in
  annotate_uniform truth;
  annotate_uniform ~count:0L fresh;
  annotate_uniform stale;
  let r = Q.recovery ~truth ~fresh stale in
  Alcotest.(check bool) "ratio finite" true (finite r.Q.rec_ratio);
  Alcotest.(check (float 0.0)) "zero fresh overlap -> ratio 1.0" 1.0 r.Q.rec_ratio;
  (* Healthy case: identical profiles recover everything. *)
  annotate_uniform fresh;
  let r' = Q.recovery ~truth ~fresh stale in
  Alcotest.(check (float 1e-9)) "identical -> ratio 1.0" 1.0 r'.Q.rec_ratio;
  Alcotest.(check (float 1e-9)) "identical -> overlap 1.0" 1.0 r'.Q.rec_stale

(* --- determinism across -j ------------------------------------------- *)

let test_stale_parallel_deterministic () =
  let w = W.Suite.adretriever in
  let drift = W.Drift.apply ~seed:99L ~edits:4 w.D.w_source in
  let stale_source = drift.W.Drift.dr_source in
  let plans () =
    List.map
      (fun v -> D.Plan.make_stale ~options ~variant:v ~stale_source w)
      [ D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full ]
  in
  let render outs =
    String.concat "\n---\n"
      (List.map
         (fun (o : D.outcome) ->
           match o.D.o_stale_report with
           | None -> Alcotest.fail "stale plan without stale report"
           | Some r ->
               Printf.sprintf "%s\n%s\neval=%Ld" (D.variant_name o.D.o_variant)
                 (SM.report_to_string r) o.D.o_eval.D.ev_cycles)
         outs)
  in
  let base = render (O.Orchestrate.run_plans ~jobs:1 (plans ())) in
  List.iter
    (fun jobs ->
      let got = render (O.Orchestrate.run_plans ~jobs (plans ())) in
      Alcotest.(check string) (Printf.sprintf "-j %d matches -j 1" jobs) base got)
    [ 2; 4 ];
  (* The matcher itself is a pure function of its inputs: re-matching
     yields byte-identical profiles and reports. *)
  let prof =
    match workload_profiles w with p :: _ -> p | [] -> Alcotest.fail "no profiles"
  in
  let probes = P.Text_io.kind_of prof <> P.Text_io.Line in
  let m1, r1 = match_any ~target:(target_ir ~probes stale_source) prof in
  let m2, r2 = match_any ~target:(target_ir ~probes stale_source) prof in
  Alcotest.(check string) "matched bytes stable" (P.Text_io.to_string m1)
    (P.Text_io.to_string m2);
  Alcotest.(check string) "report stable" (SM.report_to_string r1)
    (SM.report_to_string r2)

let suite =
  ( "stale",
    [
      QCheck_alcotest.to_alcotest prop_drift_identity;
      QCheck_alcotest.to_alcotest prop_drift_deterministic;
      Alcotest.test_case "suite workloads sample all kinds" `Quick
        test_profiles_nonempty;
      Alcotest.test_case "self-match is 100% exact and byte-equal" `Quick
        test_self_match_exact;
      QCheck_alcotest.to_alcotest prop_match_conserves;
      Alcotest.test_case "quality: mismatched block sets" `Quick
        test_quality_mismatched_blocks;
      Alcotest.test_case "quality: disjoint counted functions" `Quick
        test_quality_disjoint_functions;
      Alcotest.test_case "quality: zero counts never NaN" `Quick
        test_quality_zero_counts;
      Alcotest.test_case "quality: recovery ratio guard" `Quick
        test_quality_recovery_guard;
      Alcotest.test_case "stale plans deterministic across -j" `Quick
        test_stale_parallel_deterministic;
    ] )
