(* Profile.Merge: the four algebraic merge laws — commutative,
   associative, weight-linear, identity-on-empty — checked for all three
   profile shapes over generator-driven random profiles, plus the
   deterministic metadata/count semantics the laws rest on. All equality
   is canonical-text equality ([Text_io.to_string]): the writers sort, so
   byte equality is full structural equality. The fleet fuzz oracle
   re-checks the same laws on real correlated profiles. *)
module Ir = Csspgo_ir
module P = Csspgo_profile
module M = P.Merge
module LP = P.Line_profile
module PP = P.Probe_profile
module CP = P.Ctx_profile

let g name = Ir.Guid.of_name name
let fname = Test_profile.fname
let text = P.Text_io.to_string

(* --- random profile builders (specs from Test_profile's generators) --- *)

let build_probe specs =
  let t = PP.create () in
  List.iter
    (fun ((fi, head), (probes, calls)) ->
      let fe = PP.get_or_add t (g (fname fi)) ~name:(fname fi) in
      fe.PP.fe_head <- Int64.of_int head;
      fe.PP.fe_checksum <- Int64.of_int (fi * 7919);
      List.iter (fun (id, c) -> PP.add_probe fe id (Int64.of_int c)) probes;
      List.iter
        (fun (site, callee, c) ->
          PP.add_call fe site (g (fname callee)) (Int64.of_int c))
        calls)
    specs;
  P.Text_io.Probe_prof t

let build_line specs =
  let t = LP.create () in
  List.iter
    (fun ((fi, head), (lines, calls)) ->
      let fe = LP.get_or_add t (g (fname fi)) ~name:(fname fi) in
      fe.LP.fe_head <- Int64.of_int head;
      List.iter (fun (l, c) -> LP.add_line fe (l, l mod 3) (Int64.of_int c)) lines;
      List.iter
        (fun (l, callee, c) ->
          LP.add_call fe (l, l mod 3) (g (fname callee)) (Int64.of_int c))
        calls)
    specs;
  P.Text_io.Line_prof t

let build_ctx specs =
  let t = CP.create () in
  List.iter
    (fun ((root_fi, frames), (probes, inlined)) ->
      let node =
        match frames with
        | [] -> CP.base t (g (fname root_fi)) ~name:(fname root_fi)
        | _ ->
            let path =
              List.rev
                (fst
                   (List.fold_left
                      (fun (acc, parent) (site, child_fi) ->
                        ( ((g (fname parent), site), g (fname child_fi),
                           fname child_fi)
                          :: acc,
                          child_fi ))
                      ([], root_fi) frames))
            in
            Option.get (CP.node_at t ~path)
      in
      node.CP.n_inlined <- inlined;
      List.iter
        (fun (id, c) -> PP.add_probe node.CP.n_prof id (Int64.of_int c))
        probes)
    specs;
  P.Text_io.Ctx_prof t

(* One law battery per shape: a generator of spec pairs plus a builder. *)
let laws ~shape ~arb ~build =
  let kind p = P.Text_io.kind_of p in
  let w2 kd wa a wb b = M.weighted ~kind:kd [ (wa, a); (wb, b) ] in
  [
    QCheck.Test.make
      ~name:(shape ^ " merge is commutative")
      ~count:100 QCheck.(pair arb arb)
      (fun (sa, sb) ->
        let a = build sa and b = build sb in
        let kd = kind a in
        String.equal (text (w2 kd 2L a 3L b)) (text (w2 kd 3L b 2L a)));
    QCheck.Test.make
      ~name:(shape ^ " merge is associative")
      ~count:100
      QCheck.(triple arb arb arb)
      (fun (sa, sb, sc) ->
        let a = build sa and b = build sb and c = build sc in
        let kd = kind a in
        String.equal
          (text (w2 kd 1L (w2 kd 1L a 1L b) 1L c))
          (text (w2 kd 1L a 1L (w2 kd 1L b 1L c))));
    QCheck.Test.make
      ~name:(shape ^ " merge is weight-linear")
      ~count:100 arb
      (fun sa ->
        let a = build sa in
        let kd = kind a in
        String.equal
          (text (M.weighted ~kind:kd [ (3L, a) ]))
          (text (M.weighted ~kind:kd [ (1L, a); (1L, a); (1L, a) ])));
    QCheck.Test.make
      ~name:(shape ^ " merge has empty as identity")
      ~count:100 arb
      (fun sa ->
        let a = build sa in
        let kd = kind a in
        String.equal (text a) (text (w2 kd 1L a 1L (M.empty kd)))
        && String.equal (text a) (text (M.copy a)));
  ]

let probe_gen = QCheck.small_list Test_profile.fentry_spec_gen
let ctx_gen = QCheck.small_list Test_profile.ctx_spec_gen

(* --- deterministic semantics the laws rest on ------------------------ *)

let mk_fe t ?(checksum = 0L) name =
  let fe = PP.get_or_add t (g name) ~name in
  fe.PP.fe_checksum <- checksum;
  fe

let test_counts_scale_and_add () =
  let a = PP.create () in
  let fa = mk_fe a "f" in
  PP.add_probe fa 1 10L;
  let b = PP.create () in
  let fb = mk_fe b "f" in
  PP.add_probe fb 1 4L;
  PP.add_probe fb 2 1L;
  let into = PP.create () in
  M.probe ~into ~weight:2L a;
  M.probe ~into ~weight:5L b;
  let fe = Option.get (PP.get into (g "f")) in
  Alcotest.(check int64) "2*10 + 5*4" 40L (PP.probe_count fe 1);
  Alcotest.(check int64) "5*1" 5L (PP.probe_count fe 2);
  Alcotest.(check int64) "total follows" 45L fe.PP.fe_total

let test_checksum_unsigned_max () =
  let mk checksum =
    let t = PP.create () in
    ignore (mk_fe t ~checksum "f");
    t
  in
  let into = PP.create () in
  M.probe ~into ~weight:1L (mk 0L);
  M.probe ~into ~weight:1L (mk 7L);
  (* -1L is the largest unsigned 64-bit pattern: it must win over 7 *)
  M.probe ~into ~weight:1L (mk (-1L));
  Alcotest.(check int64) "unsigned max wins" (-1L)
    (Option.get (PP.get into (g "f"))).PP.fe_checksum;
  let into2 = PP.create () in
  M.probe ~into:into2 ~weight:1L (mk 7L);
  M.probe ~into:into2 ~weight:1L (mk 0L);
  Alcotest.(check int64) "real checksum beats absent" 7L
    (Option.get (PP.get into2 (g "f"))).PP.fe_checksum

let test_weight_zero_is_noop () =
  let a = PP.create () in
  let fa = mk_fe a "f" in
  PP.add_probe fa 1 10L;
  let into = PP.create () in
  M.probe ~into ~weight:0L a;
  Alcotest.(check string) "weight 0 leaves the target untouched"
    (text (P.Text_io.Probe_prof (PP.create ())))
    (text (P.Text_io.Probe_prof into));
  match M.probe ~into ~weight:(-1L) a with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative weight accepted"

let test_kind_mismatch_rejected () =
  let p = P.Text_io.Probe_prof (PP.create ()) in
  let l = P.Text_io.Line_prof (LP.create ()) in
  match M.into ~into:p ~weight:1L l with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "kind mismatch accepted"

let test_ctx_inline_mark_or () =
  let mk inlined =
    let t = CP.create () in
    let n = Option.get (CP.node_at t ~path:[ ((g "main", 1), g "f", "f") ]) in
    n.CP.n_inlined <- inlined;
    PP.add_probe n.CP.n_prof 1 1L;
    t
  in
  let into = CP.create () in
  M.ctx ~into ~weight:1L (mk false);
  M.ctx ~into ~weight:1L (mk true);
  M.ctx ~into ~weight:1L (mk false);
  let n =
    Option.get
      (CP.find_node into ~leaf:(g "f") (fun ctx -> List.length ctx = 1))
  in
  Alcotest.(check bool) "inline marks or together" true n.CP.n_inlined

let prop_flatten_conserves =
  QCheck.Test.make ~name:"flatten_ctx conserves totals" ~count:100 ctx_gen
    (fun specs ->
      match build_ctx specs with
      | P.Text_io.Ctx_prof t ->
          Int64.equal (CP.total_samples t) (PP.total_samples (M.flatten_ctx t))
      | _ -> false)

let suite =
  ( "merge",
    [
      Alcotest.test_case "counts scale and add" `Quick test_counts_scale_and_add;
      Alcotest.test_case "checksums merge by unsigned max" `Quick
        test_checksum_unsigned_max;
      Alcotest.test_case "weight 0 is a no-op; negative rejected" `Quick
        test_weight_zero_is_noop;
      Alcotest.test_case "kind mismatch rejected" `Quick
        test_kind_mismatch_rejected;
      Alcotest.test_case "ctx inline marks or together" `Quick
        test_ctx_inline_mark_or;
      QCheck_alcotest.to_alcotest prop_flatten_conserves;
    ]
    @ List.concat_map QCheck_alcotest.(fun t -> List.map to_alcotest t)
        [
          laws ~shape:"probe" ~arb:probe_gen ~build:build_probe;
          laws ~shape:"line" ~arb:probe_gen ~build:build_line;
          laws ~shape:"ctx" ~arb:ctx_gen ~build:build_ctx;
        ] )
