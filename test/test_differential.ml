(* Differential testing over random programs: every build configuration
   must compute the same result, and probed binaries must carry no extra
   run-time instructions worth of work. *)
module F = Csspgo_frontend
module Ir = Csspgo_ir
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module W = Csspgo_workloads
module Core = Csspgo_core

let build ?(probes = false) ?(instrument = false) ~config src =
  let p = F.Lower.compile src in
  if probes then Core.Pseudo_probe.insert p;
  if instrument then ignore (Core.Instrument.instrument p);
  Opt.Pass.optimize ~config p;
  Ir.Verify.check_exn p;
  Cg.Emit.emit ~options:Cg.Emit.default_options p

exception Out_of_fuel

let run bin args =
  match Vm.Machine.run ~pmu:None ~fuel:20_000_000L bin ~entry:"main" ~args with
  | r -> r.Vm.Machine.ret_value
  | exception Vm.Machine.Trap "fuel exhausted" -> raise Out_of_fuel

(* Out-of-fuel runs are counted as passes below to stay inside QCheck's
   discard budget, but each one is vacuous: the property checked nothing.
   Track them so a generator regression that makes most programs diverge
   fails loudly instead of silently green-washing the suite. *)
let n_checked = ref 0
let n_vacuous = ref 0

let differential seed =
  let src = W.Gen.random_source ~n_funcs:5 ~seed () in
  let args = [ Int64.of_int (Int64.to_int seed land 0xff); 17L ] in
  match
    let o0 = run (build ~config:Opt.Config.o0 src) args in
    let o2 = run (build ~config:Opt.Config.o2_nopgo src) args in
    let o2p = run (build ~probes:true ~config:Opt.Config.o2_nopgo src) args in
    let o2i = run (build ~instrument:true ~config:Opt.Config.o2_nopgo src) args in
    let o2l =
      let p = F.Lower.compile src in
      Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
      let b =
        Cg.Emit.emit
          ~options:{ Cg.Emit.default_options with Cg.Emit.layout = `Ext_tsp }
          p
      in
      run b args
    in
    (o0, o2, o2p, o2i, o2l)
  with
  | o0, o2, o2p, o2i, o2l ->
      incr n_checked;
      if
        not
          (Int64.equal o0 o2 && Int64.equal o2 o2p && Int64.equal o2 o2i
          && Int64.equal o2 o2l)
      then
        QCheck.Test.fail_reportf
          "miscompile at seed %Ld: O0=%Ld O2=%Ld O2+probes=%Ld O2+instr=%Ld O2+exttsp=%Ld@.%s"
          seed o0 o2 o2p o2i o2l src
      else true
  | exception Out_of_fuel ->
      (* A generated program that runs too long is vacuous for this
         property (and QCheck's discard budget is too tight to assume-fail
         it away): count it as a pass, but record the discard. *)
      incr n_vacuous;
      true
  | exception e ->
      QCheck.Test.fail_reportf "crash at seed %Ld: %s@.%s" seed (Printexc.to_string e) src

let prop_differential =
  QCheck.Test.make ~name:"O0 = O2 = O2+probes = O2+instrumentation" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed -> differential (Int64.of_int seed))

let prop_pgo_roundtrip =
  (* Full PGO cycles on random programs never change program results. *)
  QCheck.Test.make ~name:"PGO variants preserve semantics" ~count:10
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let seed = Int64.of_int seed in
      let src = W.Gen.random_source ~n_funcs:4 ~seed () in
      let spec = { Core.Driver.rs_args = [ 9L; 4L ]; rs_globals = [] } in
      let w =
        {
          Core.Driver.w_name = "gen";
          w_source = src;
          w_entry = "main";
          w_train = [ spec ];
          w_eval = [ spec ];
        }
      in
      match
        List.map
          (fun v ->
            let o = Core.Driver.run_variant v w in
            run o.Core.Driver.o_binary spec.Core.Driver.rs_args)
          [ Core.Driver.Nopgo; Core.Driver.Autofdo; Core.Driver.Csspgo_probe_only;
            Core.Driver.Csspgo_full; Core.Driver.Instr_pgo ]
      with
      | v0 :: rest ->
          incr n_checked;
          List.for_all (Int64.equal v0) rest
      | [] -> false
      | exception Out_of_fuel ->
          incr n_vacuous;
          true
      | exception e ->
          QCheck.Test.fail_reportf "crash at seed %Ld: %s@.%s" seed (Printexc.to_string e) src)

(* Runs after the two properties above (alcotest preserves registration
   order within a suite): if over half the generated programs ran out of
   fuel, the properties were mostly vacuous and the green result means
   nothing — fail instead of quietly passing. *)
let test_not_vacuous () =
  (* total = 0 only when the properties themselves were filtered out *)
  let total = !n_checked + !n_vacuous in
  if total > 0 && !n_vacuous * 2 > total then
    Alcotest.failf "differential properties mostly vacuous: %d/%d runs discarded (out of fuel)"
      !n_vacuous total

let suite =
  ( "differential",
    [
      QCheck_alcotest.to_alcotest ~long:false prop_differential;
      QCheck_alcotest.to_alcotest ~long:false prop_pgo_roundtrip;
      Alcotest.test_case "discard rate below 50%" `Quick test_not_vacuous;
    ] )
