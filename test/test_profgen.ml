(* Sample aggregation and DWARF correlation. *)
module F = Csspgo_frontend
module Ir = Csspgo_ir
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module Pg = Csspgo_profgen
module P = Csspgo_profile

let loop_src =
  "fn main(n) { let s = 0; let i = 0; while (i < n) { s = s + i * 3; i = i + 1; } return s; }"

let profile_run src args =
  let p = F.Lower.compile src in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 101 })
      bin ~entry:"main" ~args
  in
  (bin, r.Vm.Machine.samples)

let test_aggregate_shapes () =
  let bin, samples = profile_run loop_src [ 4000L ] in
  let agg = Pg.Ranges.aggregate samples in
  let module C = Csspgo_support.Counter in
  Alcotest.(check bool) "ranges found" true (C.length agg.Pg.Ranges.range_counts > 0);
  Alcotest.(check bool) "branches found" true (C.length agg.Pg.Ranges.branch_counts > 0);
  (* All range endpoints map into the text section. *)
  C.iter
    (fun (lo, hi) _ ->
      if hi < lo then Alcotest.fail "inverted range";
      if Cg.Mach.inst_at bin lo = None then Alcotest.fail "range start unmapped")
    agg.Pg.Ranges.range_counts

let test_addr_totals_cover_hot_loop () =
  let bin, samples = profile_run loop_src [ 4000L ] in
  let agg = Pg.Ranges.aggregate samples in
  let totals = Pg.Ranges.addr_totals bin agg in
  let hottest =
    Csspgo_support.Counter.fold (fun _ c acc -> Int64.max c acc) totals 0L
  in
  Alcotest.(check bool) "hot addresses found" true (Int64.compare hottest 100L > 0)

let test_dwarf_correlation_produces_lines () =
  let bin, samples = profile_run loop_src [ 4000L ] in
  let prof = Pg.Dwarf_corr.correlate bin samples in
  let fe = Option.get (P.Line_profile.get prof (Ir.Guid.of_name "main")) in
  Alcotest.(check bool) "line entries" true (Hashtbl.length fe.P.Line_profile.fe_lines > 0);
  (* The loop body line (function-relative) must dominate. *)
  let hottest =
    Hashtbl.fold (fun _ c acc -> Int64.max c acc) fe.P.Line_profile.fe_lines 0L
  in
  Alcotest.(check bool) "loop line hot" true (Int64.compare hottest 500L > 0)

let test_dwarf_call_targets () =
  let src =
    "fn helper(x) { let s = 0; let i = 0; while (i < 50) { s = s + x; i = i + 1; } return s; }\nfn main(n) { let t = 0; let k = 0; while (k < n) { t = t + helper(k); k = k + 1; } return t; }"
  in
  let p = F.Lower.compile src in
  (* keep the call *)
  Opt.Pass.optimize ~config:{ Opt.Config.o2_nopgo with inline_mode = Opt.Config.Inline_none } p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 101 })
      bin ~entry:"main" ~args:[ 200L ]
  in
  let prof = Pg.Dwarf_corr.correlate bin r.Vm.Machine.samples in
  let fe = Option.get (P.Line_profile.get prof (Ir.Guid.of_name "main")) in
  let has_target =
    Hashtbl.fold
      (fun _ tbl acc -> acc || Hashtbl.mem tbl (Ir.Guid.of_name "helper"))
      fe.P.Line_profile.fe_calls false
  in
  Alcotest.(check bool) "helper is a recorded call target" true has_target;
  (* Head counts: helper was entered many times. *)
  let hfe = Option.get (P.Line_profile.get prof (Ir.Guid.of_name "helper")) in
  Alcotest.(check bool) "helper head count" true
    (Int64.compare hfe.P.Line_profile.fe_head 10L > 0)

let suite =
  ( "profgen",
    [
      Alcotest.test_case "aggregate shapes" `Quick test_aggregate_shapes;
      Alcotest.test_case "addr totals" `Quick test_addr_totals_cover_hot_loop;
      Alcotest.test_case "dwarf lines" `Quick test_dwarf_correlation_produces_lines;
      Alcotest.test_case "dwarf call targets" `Quick test_dwarf_call_targets;
    ] )
