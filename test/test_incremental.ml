(* Delta-driven incremental PGO rebuilds.

   The final-build stage keys its whole-binary cache entry on the merged
   profile fingerprint and keeps a per-function cache underneath, keyed on
   the digest of each function's post-inline annotated image. These tests
   pin the three behaviours that make that sound:

   - an unchanged profile reuses the cached binary outright (zero
     recompiles, not even per-function hits);
   - the per-function layer alone can reconstruct the binary byte-for-byte
     (every function reused when the whole-binary entry is bypassed);
   - a drifted rebuild is byte-identical to a cold clean rebuild, at
     -j 1/2/4 alike, and a profile delta confined to one function
     recompiles exactly that function. *)

module D = Csspgo_core.Driver
module O = Csspgo_orchestrator
module W = Csspgo_workloads
module Cg = Csspgo_codegen

(* clangish keeps the most functions alive through inlining (four), so it
   is the one suite workload where a partial recompile is observable.
   Seeds 3 and 4 both edit the same function in place (no line-count
   change), which makes them a minimal profile-delta pair: everything
   outside that function — bodies, debug locations, matched counts — is
   identical between the two drifted versions. *)
let wl = W.Suite.clangish
let plan = D.Plan.make ~variant:D.Csspgo_full wl

let stale_plan_of seed =
  let d = W.Drift.apply ~seed ~edits:1 wl.D.w_source in
  D.Plan.make_stale ~variant:D.Csspgo_full ~stale_source:d.W.Drift.dr_source wl

let stale_plan_a = stale_plan_of 3L
let stale_plan = stale_plan_of 4L

(* Everything deterministic in a [Mach.binary] except [addr_index], whose
   hash-table layout depends on insertion history (and therefore on which
   build path produced the binary). [No_sharing] keeps the projection
   structural: a binary respliced from cached (marshal round-tripped)
   functions has different subterm sharing than a freshly emitted one. *)
let bin_projection (b : Cg.Mach.binary) =
  Marshal.to_string
    ( b.Cg.Mach.funcs,
      b.Cg.Mach.insts,
      b.Cg.Mach.probes,
      b.Cg.Mach.n_counters,
      b.Cg.Mach.globals,
      b.Cg.Mach.text_size,
      b.Cg.Mach.debug_size,
      b.Cg.Mach.probe_meta_size )
    [ Marshal.No_sharing ]

let proj (o : D.outcome) = bin_projection o.D.o_binary
let recompiled s = O.Orchestrate.stats_get s "rebuild.funcs-recompiled"
let reused s = O.Orchestrate.stats_get s "rebuild.funcs-reused"

(* One cold build, shared by the tests below; its cache is the warm state
   every incremental scenario starts from. *)
let cold =
  lazy
    (let cache = O.Cache.create () in
     let stats = O.Orchestrate.create_stats () in
     let out = D.Plan.run ~hooks:(O.Orchestrate.hooks ~stats cache) plan in
     (cache, stats, out))

let test_warm_rerun () =
  let cache, stats_cold, out_cold = Lazy.force cold in
  Alcotest.(check bool)
    "cold build compiles at least one function" true
    (recompiled stats_cold > 0);
  Alcotest.(check int) "cold build reuses nothing" 0 (reused stats_cold);
  let stats = O.Orchestrate.create_stats () in
  let out = D.Plan.run ~hooks:(O.Orchestrate.hooks ~stats cache) plan in
  (* A whole-binary hit never reaches the per-function layer, so neither
     counter may fire. *)
  Alcotest.(check int) "warm rerun recompiles nothing" 0 (recompiled stats);
  Alcotest.(check int)
    "warm rerun skips the per-function layer" 0 (reused stats);
  Alcotest.(check bool)
    "warm rerun binary is byte-identical" true
    (String.equal (proj out_cold) (proj out))

let test_function_layer_complete () =
  let cache, stats_cold, out_cold = Lazy.force cold in
  (* Bypass the whole-binary entry while keeping every other stage cached:
     the final build must be reconstructible from per-function hits
     alone. *)
  let stats = O.Orchestrate.create_stats () in
  let h = O.Orchestrate.hooks ~stats cache in
  let hooks =
    {
      h with
      D.Plan.memo =
        (fun ~kind ~key ~ser ~de thunk ->
          if String.equal kind "final-build" then thunk ()
          else h.D.Plan.memo ~kind ~key ~ser ~de thunk);
    }
  in
  let out = D.Plan.run ~hooks plan in
  Alcotest.(check int) "no function recompiles" 0 (recompiled stats);
  Alcotest.(check int)
    "every function is a per-function hit"
    (recompiled stats_cold) (reused stats);
  Alcotest.(check bool)
    "respliced binary is byte-identical" true
    (String.equal (proj out_cold) (proj out))

let test_drifted_rebuild () =
  let cache, stats_cold, _ = Lazy.force cold in
  let stats = O.Orchestrate.create_stats () in
  let inc = D.Plan.run ~hooks:(O.Orchestrate.hooks ~stats cache) stale_plan in
  (* A source edit shifts debug locations of everything inlined from or
     laid out after it, and the line table is part of the emitted binary,
     so the whole-function digest rightly treats those functions as
     drifted too: the rebuild recompiles rather than reuse stale debug
     info. *)
  Alcotest.(check bool)
    "drifted functions recompile" true (recompiled stats >= 1);
  Alcotest.(check bool)
    "no more functions than the cold build" true
    (recompiled stats + reused stats <= recompiled stats_cold);
  let clean = D.Plan.run stale_plan in
  Alcotest.(check bool)
    "incremental rebuild is byte-identical to clean" true
    (String.equal (proj inc) (proj clean))

let test_profile_delta_subset () =
  (* Two drifted versions editing the same function: rebuilding version B
     with version A's build cached recompiles exactly the re-edited
     function and reuses every other per-function entry. *)
  let cache = O.Cache.create () in
  let stats_a = O.Orchestrate.create_stats () in
  let _ = D.Plan.run ~hooks:(O.Orchestrate.hooks ~stats:stats_a cache) stale_plan_a in
  let total = recompiled stats_a in
  let stats_b = O.Orchestrate.create_stats () in
  let inc = D.Plan.run ~hooks:(O.Orchestrate.hooks ~stats:stats_b cache) stale_plan in
  Alcotest.(check bool)
    "only the re-edited function recompiles" true
    (recompiled stats_b >= 1 && recompiled stats_b < total);
  Alcotest.(check bool) "unchanged functions reuse" true (reused stats_b >= 1);
  Alcotest.(check int)
    "every surviving function is either reused or recompiled" total
    (recompiled stats_b + reused stats_b);
  let clean = D.Plan.run stale_plan in
  Alcotest.(check bool)
    "delta rebuild is byte-identical to clean" true
    (String.equal (proj inc) (proj clean))

let test_jobs_determinism () =
  let reference = proj (D.Plan.run stale_plan) in
  List.iter
    (fun jobs ->
      let cache = O.Cache.create () in
      let stats = O.Orchestrate.create_stats () in
      (match O.Orchestrate.run_plans ~cache ~stats ~jobs [ plan ] with
      | [ _ ] -> ()
      | _ -> Alcotest.fail "warm-up returned wrong arity");
      let outs =
        O.Orchestrate.run_plans ~cache ~stats ~jobs [ stale_plan; stale_plan ]
      in
      List.iteri
        (fun i o ->
          Alcotest.(check bool)
            (Printf.sprintf "-j %d incremental rebuild %d matches clean" jobs i)
            true
            (String.equal (proj o) reference))
        outs)
    [ 1; 2; 4 ]

let suite =
  ( "incremental",
    [
      Alcotest.test_case "warm rerun is a whole-binary hit" `Quick
        test_warm_rerun;
      Alcotest.test_case "per-function cache reconstructs the binary" `Quick
        test_function_layer_complete;
      Alcotest.test_case "drifted rebuild matches a clean rebuild" `Quick
        test_drifted_rebuild;
      Alcotest.test_case "profile delta recompiles only the edited function"
        `Quick test_profile_delta_subset;
      Alcotest.test_case "incremental rebuild deterministic at -j 1/2/4" `Slow
        test_jobs_determinism;
    ] )
