(* Fleet simulation: the skew-0 oracle (a sharded fleet at full duty
   merges to the single-instance profile byte-for-byte), job-count
   independence of the sharded reduction, collector routing/drain
   determinism, duty gating, profile injection through the plan, and a
   release-train smoke run. *)
module P = Csspgo_profile
module Vm = Csspgo_vm
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads
module Fl = Csspgo_fleet

let w = W.Suite.adfinder

let cfg = { Fl.Sim.default with Fl.Sim.f_batch_requests = 2 }

let version ?(id = 0) ?(n = 1) src =
  { Fl.Sim.v_id = id; v_source = src; v_weight = 1L; v_instances = n }

let run ?(cfg = cfg) n =
  Fl.Sim.run cfg ~workload:w ~versions:[ version ~n w.D.w_source ]

let test_skew0_identity_and_jobs () =
  let single = P.Text_io.to_string (run 1).Fl.Sim.fs_profile in
  let fleet = run 3 in
  Alcotest.(check string) "3 instances over 2 shards = 1 instance" single
    (P.Text_io.to_string fleet.Fl.Sim.fs_profile);
  Alcotest.(check int) "whole stream served once per cohort"
    (List.length w.D.w_train) fleet.Fl.Sim.fs_requests;
  List.iter
    (fun jobs ->
      let out = run ~cfg:{ cfg with Fl.Sim.f_jobs = jobs } 3 in
      Alcotest.(check string)
        (Printf.sprintf "-j %d reduction identical" jobs)
        single
        (P.Text_io.to_string out.Fl.Sim.fs_profile))
    [ 2; 4 ]

let test_duty_gating () =
  let out = run ~cfg:{ cfg with Fl.Sim.f_duty = 0.0 } 2 in
  Alcotest.(check int) "duty 0 samples nothing" 0 out.Fl.Sim.fs_sampled;
  Alcotest.(check int) "no batches shipped" 0 out.Fl.Sim.fs_batches;
  Alcotest.(check int64) "empty merged profile" 0L
    (P.Text_io.total_samples out.Fl.Sim.fs_profile);
  Alcotest.(check bool) "requests still served" true
    (Int64.compare out.Fl.Sim.fs_cycles 0L > 0)

let test_profile_injection () =
  let out = run 2 in
  let o =
    D.Plan.run
      (D.Plan.make_with_profile ~options:cfg.Fl.Sim.f_options
         ~profile:out.Fl.Sim.fs_profile ?flat:out.Fl.Sim.fs_flat w)
  in
  Alcotest.(check bool) "fleet profile drives a full build" true
    (Int64.compare o.D.o_eval.D.ev_cycles 0L > 0);
  Alcotest.(check bool) "fleet profile has samples" true
    (Int64.compare (P.Text_io.total_samples out.Fl.Sim.fs_profile) 0L > 0)

(* --- collector unit behavior (no VM involved) ------------------------ *)

let batch ?(version = 0) ?(seq = 0) ?(blob = Vm.Sample_log.encode (Vm.Sample_log.create ())) instance =
  {
    Fl.Instance.b_instance = instance;
    b_version = version;
    b_seq = seq;
    b_blob = blob;
    b_samples = 0;
    b_requests = 1;
  }

let test_collector_drain () =
  let c = Fl.Collector.create ~shards:2 () in
  Fl.Collector.ingest c (batch ~version:1 3);
  Fl.Collector.ingest c (batch ~version:0 ~seq:1 0);
  Fl.Collector.ingest c (batch ~version:0 2);
  let merged = Fl.Collector.drain ~jobs:1 c in
  Alcotest.(check (list int)) "versions sorted" [ 0; 1 ]
    (List.map (fun m -> m.Fl.Collector.m_version) merged);
  Alcotest.(check (list int)) "batches grouped per version" [ 2; 1 ]
    (List.map (fun m -> m.Fl.Collector.m_batches) merged);
  Alcotest.(check int) "second drain is empty" 0
    (List.length (Fl.Collector.drain ~jobs:1 c));
  (match Fl.Collector.create ~shards:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 shards accepted");
  let c2 = Fl.Collector.create ~shards:1 () in
  Fl.Collector.ingest c2 (batch ~blob:"not a CSLG blob" 5);
  match Fl.Collector.drain ~jobs:1 c2 with
  | exception Failure msg ->
      Alcotest.(check bool) "corrupt blob error names the instance" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "corrupt blob drained"

let test_train_smoke () =
  let tcfg =
    {
      Fl.Train.default with
      Fl.Train.t_generations = 2;
      t_edits = 1;
      t_cohort = 1;
      t_overlap = false;
      t_fleet = cfg;
    }
  in
  let gens = Fl.Train.run tcfg w in
  Alcotest.(check int) "two generations" 2 (List.length gens);
  List.iter
    (fun (g : Fl.Train.generation) ->
      Alcotest.(check bool)
        (Printf.sprintf "gen %d speedup computed" g.Fl.Train.g_id)
        true (g.Fl.Train.g_speedup > 0.0))
    gens;
  let g1 = List.nth gens 1 in
  Alcotest.(check bool) "generation 1 carries history" true
    (g1.Fl.Train.g_carry <> None);
  Alcotest.(check bool) "generation 1 drifted" true
    (not (String.equal g1.Fl.Train.g_source (List.hd gens).Fl.Train.g_source))

let suite =
  ( "fleet",
    [
      Alcotest.test_case "skew-0 identity, -j independence" `Quick
        test_skew0_identity_and_jobs;
      Alcotest.test_case "duty gating" `Quick test_duty_gating;
      Alcotest.test_case "merged profile drives a plan" `Quick
        test_profile_injection;
      Alcotest.test_case "collector routing and drain" `Quick
        test_collector_drain;
      Alcotest.test_case "release-train smoke" `Quick test_train_smoke;
    ] )
