(* Mutation check for the fuzzing harness itself: plant a known
   miscompile (a broken "constfold" that drops conditional guards) into
   the campaign's pipeline and require that (a) the differential oracles
   catch it within a handful of seeds, and (b) the minimizer shrinks the
   reproducer to something a human can read. A harness that cannot find
   a deliberately planted bug proves nothing about the real pipeline. *)
module Fz = Csspgo_fuzz

let campaign_config =
  {
    Fz.Campaign.default_config with
    Fz.Campaign.cf_variants = false;
    (* variant runs can't see the injected pass; skip them for speed *)
    cf_inject = Some Fz.Campaign.planted_bug;
    cf_max_failures = Some 1;
  }

let find_planted_failure () =
  let stats = Fz.Campaign.run campaign_config ~seeds:(1, 50) in
  match stats.Fz.Campaign.st_failures with
  | [] -> Alcotest.fail "planted miscompile survived 50 seeds undetected"
  | f :: _ -> f

let test_detects_planted_bug () =
  let f = find_planted_failure () in
  (match f.Fz.Campaign.fl_kind with
  | Fz.Campaign.Result_mismatch | Fz.Campaign.Verify_error -> ()
  | k ->
      Alcotest.failf "planted bug reported as %s, expected a miscompile"
        (Fz.Campaign.kind_name k));
  match f.Fz.Campaign.fl_minimized with
  | None -> Alcotest.fail "no minimized reproducer produced"
  | Some m ->
      let n = Fz.Reduce.count_source_lines m in
      let orig = Fz.Reduce.count_source_lines f.Fz.Campaign.fl_source in
      if n > 20 then
        Alcotest.failf "reproducer still %d lines (original %d), want <= 20" n
          orig;
      if n >= orig then
        Alcotest.failf "minimizer did not shrink: %d -> %d lines" orig n

let test_clean_pipeline_quiet () =
  (* Same seeds, no injected bug: the real pipeline must stay green, so
     the mutation test above cannot be passing on harness noise. *)
  let cfg =
    { campaign_config with Fz.Campaign.cf_inject = None; cf_max_failures = None }
  in
  let stats = Fz.Campaign.run cfg ~seeds:(1, 10) in
  Alcotest.(check int) "no failures without injection" 0
    (Fz.Campaign.n_failures stats);
  Alcotest.(check bool) "some seeds actually ran" true
    (stats.Fz.Campaign.st_runs > stats.Fz.Campaign.st_discards)

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "campaign detects planted miscompile" `Quick
        test_detects_planted_bug;
      Alcotest.test_case "clean pipeline stays green" `Quick
        test_clean_pipeline_quiet;
    ] )
