(* Golden-file generator for [Profile.Text_io].

   Builds one small hand-written profile of each kind and prints its
   canonical rendering to stdout. The dune rules in this directory diff the
   output against the checked-in files under golden/; a formatting change
   shows up as a readable diff and is accepted with `dune promote`. *)

module P = Csspgo_profile
module Guid = Csspgo_ir.Guid
module Vm = Csspgo_vm
module Ls = Csspgo_support.Label_set

let g = Guid.of_name

let probe () =
  let t = P.Probe_profile.create () in
  let main = P.Probe_profile.get_or_add t (g "main") ~name:"main" in
  main.P.Probe_profile.fe_head <- 1L;
  main.P.Probe_profile.fe_checksum <- 0x1f2e3d4cL;
  P.Probe_profile.add_probe main 1 120L;
  P.Probe_profile.add_probe main 2 80L;
  P.Probe_profile.add_probe main 4 40L;
  P.Probe_profile.add_call main 4 (g "hot") 38L;
  P.Probe_profile.add_call main 4 (g "cold") 2L;
  let hot = P.Probe_profile.get_or_add t (g "hot") ~name:"hot" in
  hot.P.Probe_profile.fe_head <- 38L;
  hot.P.Probe_profile.fe_checksum <- 0xbeefL;
  P.Probe_profile.add_probe hot 1 38L;
  P.Probe_profile.add_probe hot 2 3800L;
  let cold = P.Probe_profile.get_or_add t (g "cold") ~name:"cold" in
  cold.P.Probe_profile.fe_head <- 2L;
  P.Probe_profile.add_probe cold 1 2L;
  P.Text_io.(to_string (Probe_prof t))

let ctx () =
  let t = P.Ctx_profile.create () in
  let main = P.Ctx_profile.base t (g "main") ~name:"main" in
  main.P.Ctx_profile.n_prof.P.Probe_profile.fe_head <- 1L;
  main.P.Ctx_profile.n_prof.P.Probe_profile.fe_checksum <- 0x1f2e3d4cL;
  P.Probe_profile.add_probe main.P.Ctx_profile.n_prof 1 120L;
  P.Probe_profile.add_probe main.P.Ctx_profile.n_prof 4 40L;
  P.Probe_profile.add_call main.P.Ctx_profile.n_prof 4 (g "hot") 40L;
  (match
     P.Ctx_profile.node_at t ~path:[ (((g "main"), 4), g "hot", "hot") ]
   with
  | None -> assert false
  | Some node ->
      node.P.Ctx_profile.n_inlined <- true;
      node.P.Ctx_profile.n_prof.P.Probe_profile.fe_head <- 40L;
      node.P.Ctx_profile.n_prof.P.Probe_profile.fe_checksum <- 0xbeefL;
      P.Probe_profile.add_probe node.P.Ctx_profile.n_prof 1 40L;
      P.Probe_profile.add_probe node.P.Ctx_profile.n_prof 2 4000L);
  P.Text_io.(to_string (Ctx_prof t))

let line () =
  let t = P.Line_profile.create () in
  let main = P.Line_profile.get_or_add t (g "main") ~name:"main" in
  main.P.Line_profile.fe_head <- 1L;
  P.Line_profile.add_line main (1, 0) 120L;
  P.Line_profile.add_line main (3, 0) 80L;
  P.Line_profile.add_line main (3, 1) 40L;
  P.Line_profile.add_call main (5, 0) (g "hot") 40L;
  let hot = P.Line_profile.get_or_add t (g "hot") ~name:"hot" in
  hot.P.Line_profile.fe_head <- 40L;
  P.Line_profile.add_line hot (0, 0) 40L;
  P.Line_profile.add_line hot (2, 0) 4000L;
  P.Text_io.(to_string (Line_prof t))

(* The .bprof fixtures pin the binary wire format the same way: the blob
   for each kind is checked in byte-for-byte, so any encoder change — even
   a compatible one — must be an explicit `dune promote`, and a version
   bump that breaks decoding of the pinned v1 blobs fails the diff rules'
   sibling test in [Test_binary_io]. *)
let binary text = P.Binary_io.encode (P.Text_io.of_string text)

(* A small hand-written labeled sample log: two tenants, a label run that
   returns to an already-interned set, and a chunk size that splits the
   stream mid-run. Its v3 blob pins the label-section wire format; the v2
   blob of its unlabeled copy pins the lossless downgrade framing. *)
let cslg () =
  let log = Vm.Sample_log.create () in
  let add lbr stack =
    let lbr = Array.of_list lbr and stack = Array.of_list stack in
    Vm.Sample_log.add log ~lbr ~lbr_len:(Array.length lbr) ~stack
      ~stack_len:(Array.length stack)
  in
  let acme = Ls.of_list [ ("tenant", "acme"); ("endpoint", "adfinder") ] in
  Vm.Sample_log.set_label log acme;
  add [ (10, 20); (22, 30) ] [ 30; 7 ];
  add [ (30, 10) ] [ 12 ];
  Vm.Sample_log.set_label log (Ls.of_list [ ("tenant", "zeta") ]);
  add [ (40, 44) ] [ 44; 9; 3 ];
  Vm.Sample_log.set_label log acme;
  add [] [ 50 ];
  log

let () =
  set_binary_mode_out stdout true;
  match Sys.argv.(1) with
  | "probe" -> print_string (probe ())
  | "ctx" -> print_string (ctx ())
  | "line" -> print_string (line ())
  | "probe-bin" -> print_string (binary (probe ()))
  | "ctx-bin" -> print_string (binary (ctx ()))
  | "line-bin" -> print_string (binary (line ()))
  | "cslg-v3" -> print_string (Vm.Sample_log.encode ~chunk:2 (cslg ()))
  | "cslg-v2" ->
      print_string (Vm.Sample_log.encode ~chunk:2 (Vm.Sample_log.unlabeled (cslg ())))
  | s -> failwith ("golden_gen: unknown kind " ^ s)
  | exception _ ->
      failwith
        "usage: golden_gen (probe|ctx|line|probe-bin|ctx-bin|line-bin|cslg-v3|cslg-v2)"
