(* Telemetry layer: JSON round-trips, sharded-registry merge semantics,
   and the headline determinism contract — a fixed-clock trace of the same
   plan set exports byte-identical Chrome JSON at -j 1/2/4. *)
module Obs = Csspgo_obs
module J = Obs.Json
module M = Obs.Metrics
module Vm = Csspgo_vm
module Core = Csspgo_core
module O = Csspgo_orchestrator
module W = Csspgo_workloads
module D = Core.Driver

(* --- JSON ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Int 0;
      J.Int (-42);
      J.Int max_int;
      J.Float 1.5;
      J.Float (-0.125);
      J.Float 1e17;
      J.String "";
      J.String "plain";
      J.String "quotes \" and \\ and \ttabs\nnewlines";
      J.String "unicode \xc3\xa9\xe2\x82\xac";
      J.List [];
      J.List [ J.Int 1; J.String "two"; J.Null ];
      J.Obj [];
      J.Obj
        [
          ("a", J.Int 1);
          ("b", J.List [ J.Bool false ]);
          ("nested", J.Obj [ ("x", J.Float 2.5) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = J.to_string v in
      let v' = J.parse_exn s in
      Alcotest.(check bool) (Printf.sprintf "round-trip %s" s) true (v = v');
      (* canonical printing: re-printing the parse gives the same bytes *)
      Alcotest.(check string) (Printf.sprintf "canonical %s" s) s (J.to_string v'))
    cases

let test_json_floats () =
  (* integer-valued floats keep a decimal point so they parse back as Float *)
  (match J.parse_exn (J.to_string (J.Float 3.0)) with
  | J.Float f -> Alcotest.(check (float 0.0)) "float stays float" 3.0 f
  | _ -> Alcotest.fail "Float 3.0 did not parse back as Float");
  (* non-finite floats degrade to null rather than emitting invalid JSON *)
  Alcotest.(check string) "nan is null" "null" (J.to_string (J.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (J.to_string (J.Float Float.infinity))

let test_json_rejects () =
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_error_paths () =
  let rejects tag s =
    (match J.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%s: parse accepted %S" tag s));
    match J.parse_exn s with
    | exception J.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "%s: parse_exn accepted %S" tag s)
  in
  (* lone \u surrogates: a high with no low, a low on its own, a high
     followed by something other than a low-surrogate escape *)
  rejects "lone high surrogate" {|"\ud800"|};
  rejects "lone low surrogate" {|"\udc00"|};
  rejects "high surrogate then text" {|"\ud800zz"|};
  rejects "high surrogate then non-surrogate escape" {|"\ud800\u0041"|};
  (* overlong numbers that overflow the double range must not become
     unprintable infinities *)
  rejects "huge exponent" "1e999";
  rejects "negative huge exponent" "-1e999";
  rejects "overlong digit run" ("1" ^ String.make 400 '0');
  (* trailing garbage after a complete document *)
  rejects "trailing word" "{} x";
  rejects "trailing number" "1 2";
  rejects "trailing bracket" "[1]]";
  (* a proper surrogate pair still decodes to 4-byte UTF-8 *)
  match J.parse_exn {|"\ud83d\ude00"|} with
  | J.String s ->
      Alcotest.(check string) "surrogate pair decodes" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair did not parse as a string"

let test_json_member () =
  let v = J.parse_exn {|{"a": 1, "b": [2, 3]}|} in
  Alcotest.(check bool) "member a" true (J.member "a" v = Some (J.Int 1));
  Alcotest.(check bool) "member missing" true (J.member "z" v = None);
  match J.member "b" v with
  | Some l ->
      Alcotest.(check bool) "b is list" true
        (J.to_list l = Some [ J.Int 2; J.Int 3 ])
  | None -> Alcotest.fail "member b missing"

(* --- clock ------------------------------------------------------------ *)

let test_fixed_clock () =
  let clk = Obs.Clock.fixed ~step:3L () in
  Alcotest.(check bool) "is_fixed" true (Obs.Clock.is_fixed clk);
  let c1 = Obs.Clock.cursor clk in
  let c2 = Obs.Clock.cursor clk in
  Alcotest.(check bool) "cursor ticks 0,3,6" true
    (Obs.Clock.now_us c1 = 0L
    && Obs.Clock.now_us c1 = 3L
    && Obs.Clock.now_us c1 = 6L);
  (* cursors are independent tick sources *)
  Alcotest.(check bool) "fresh cursor starts at 0" true (Obs.Clock.now_us c2 = 0L);
  Alcotest.(check bool) "wall clock is not fixed" false
    (Obs.Clock.is_fixed (Obs.Clock.wall ()))

(* --- metrics registry ------------------------------------------------- *)

let test_null_registry () =
  Alcotest.(check bool) "null disabled" false (M.enabled M.null);
  (* bumping inert handles is a no-op, not an error *)
  M.bump (M.counter M.null "c") 5;
  M.observe_gauge (M.gauge M.null "g") 7;
  M.observe (M.histogram M.null "h") 9;
  let s = M.snapshot M.null in
  Alcotest.(check bool) "null snapshot empty" true
    (s.M.s_counters = [] && s.M.s_gauges = [] && s.M.s_histograms = [])

let test_counter_multi_domain () =
  let m = M.create () in
  let c = M.counter m "par.count" in
  let per_domain = 10_000 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              M.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check (option int))
    "4 domains x 10k increments sum" (Some (4 * per_domain))
    (M.find_counter (M.snapshot m) "par.count")

let test_gauge_max_merge () =
  let m = M.create () in
  let g = M.gauge m "depth" in
  let ds =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            M.observe_gauge g (10 * (i + 1));
            M.observe_gauge g 1))
  in
  List.iter Domain.join ds;
  Alcotest.(check (option int))
    "gauge merges by max" (Some 40)
    (M.find_gauge (M.snapshot m) "depth")

(* The gauge contract: resting value 0, negative observations clamped to
   it (ignored), so a snapshot is the pure max over {0} and the positive
   observations — wherever in the domain schedule they landed. *)
let prop_gauge_clamp_merge =
  QCheck.Test.make ~name:"gauge max-merge ignores negatives, rests at 0"
    ~count:100
    QCheck.(pair (small_list int) (small_list int))
    (fun (xs, ys) ->
      let m = M.create () in
      let g = M.gauge m "q" in
      let d = Domain.spawn (fun () -> List.iter (M.observe_gauge g) ys) in
      List.iter (M.observe_gauge g) xs;
      Domain.join d;
      let expect =
        List.fold_left (fun acc v -> if v > acc then v else acc) 0 (xs @ ys)
      in
      M.find_gauge (M.snapshot m) "q" = Some expect)

let test_histogram_buckets () =
  Alcotest.(check int) "bucket 0 lower bound" 0 (M.bucket_lo 0);
  Alcotest.(check int) "bucket 1 lower bound" 1 (M.bucket_lo 1);
  Alcotest.(check int) "bucket 4 lower bound" 8 (M.bucket_lo 4);
  let m = M.create () in
  let h = M.histogram m "lat" in
  (* bucket 0: v <= 0; bucket k: 2^(k-1) <= v < 2^k *)
  List.iter (M.observe h) [ -1; 0; 1; 2; 3; 4; 7; 8 ];
  M.observe_n h 1024 5;
  match M.find_histogram (M.snapshot m) "lat" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
      Alcotest.(check int) "count" 13 s.M.h_count;
      Alcotest.(check int) "sum" (24 + (5 * 1024)) s.M.h_sum;
      Alcotest.(check bool) "bucket shape" true
        (s.M.h_nonzero
        = [ (0, 2); (1, 1); (2, 2); (3, 2); (4, 1); (11, 5) ])

let test_same_name_same_instrument () =
  let m = M.create () in
  M.incr (M.counter m "dup");
  M.incr (M.counter m "dup");
  Alcotest.(check (option int))
    "find-or-register aliases" (Some 2)
    (M.find_counter (M.snapshot m) "dup")

(* --- report ----------------------------------------------------------- *)

let test_report_json () =
  let m = M.create () in
  M.bump (M.counter m "vm.runs") 6;
  M.observe (M.histogram m "ctx.context-depth") 3;
  let row ov =
    {
      Obs.Report.vr_variant = "csspgo-full";
      vr_eval_cycles = 1234L;
      vr_eval_instructions = 999L;
      vr_profiling_cycles = 55L;
      vr_text_size = 10;
      vr_profile_size = 20;
      vr_overlap = ov;
      vr_stale_funcs = 0;
    }
  in
  let rp =
    {
      Obs.Report.rp_workload = "wl";
      rp_rows = [ row (Some 0.875); row None ];
      rp_metrics = M.snapshot m;
    }
  in
  let j = Obs.Report.to_json rp in
  let j' = J.parse_exn (J.to_string j) in
  Alcotest.(check bool) "report JSON round-trips" true (j = j');
  Alcotest.(check bool) "workload key" true
    (J.member "workload" j' = Some (J.String "wl"));
  (match J.member "variants" j' with
  | Some (J.List [ r1; r2 ]) ->
      Alcotest.(check bool) "overlap present" true
        (J.member "block_overlap" r1 = Some (J.Float 0.875));
      Alcotest.(check bool) "overlap null when n/a" true
        (J.member "block_overlap" r2 = Some J.Null)
  | _ -> Alcotest.fail "variants is not a 2-row list");
  (match J.member "metrics" j' with
  | Some jm ->
      Alcotest.(check bool) "metrics counters present" true
        (match J.member "counters" jm with
        | Some (J.Obj kvs) -> List.mem_assoc "vm.runs" kvs
        | _ -> false)
  | None -> Alcotest.fail "metrics key missing");
  let text = Obs.Report.to_text rp in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "text mentions the variant" true
    (contains text "csspgo-full")

(* --- fixed-clock trace determinism across jobs ------------------------ *)

let options =
  {
    D.default_options with
    D.pmu = { Vm.Machine.default_pmu with Vm.Machine.sample_period = 101 };
  }

let gen_workload seed =
  let src = W.Gen.random_source ~n_funcs:4 ~size:2 ~seed () in
  let spec =
    { D.rs_args = [ Int64.of_int (Int64.to_int seed land 0xff); 17L ]; rs_globals = [] }
  in
  {
    D.w_name = Printf.sprintf "obs-%Ld" seed;
    w_source = src;
    w_entry = "main";
    w_train = List.init 8 (fun _ -> spec);
    w_eval = [ spec ];
  }

let variants = [ D.Instr_pgo; D.Autofdo; D.Csspgo_full ]

(* Gauges (queue depth) and scheduler counters (steals) legitimately depend
   on the domain schedule; everything else must not. *)
let schedule_independent snap =
  List.filter
    (fun (name, _) -> not (String.length name >= 6 && String.sub name 0 6 = "sched."))
    snap.M.s_counters

let test_trace_identity_across_jobs () =
  let w = gen_workload 11L in
  let run_at jobs =
    let metrics = M.create () in
    let trace = Obs.Trace.create ~clock:(Obs.Clock.fixed ()) () in
    let plans = List.map (fun v -> D.Plan.make ~options ~variant:v w) variants in
    let outcomes = O.Orchestrate.run_plans ~metrics ~trace ~jobs plans in
    Alcotest.(check int) "one outcome per plan" (List.length variants)
      (List.length outcomes);
    let bytes = Obs.Trace.to_chrome_json trace in
    ignore (J.parse_exn bytes);
    (bytes, schedule_independent (M.snapshot metrics), M.snapshot metrics)
  in
  let ref_bytes, ref_counters, ref_snap = run_at 1 in
  Alcotest.(check bool) "trace has events" true (String.length ref_bytes > 2);
  Alcotest.(check bool) "plan counters recorded" true
    (M.find_counter ref_snap "plan.correlate.recon-samples" <> None);
  List.iter
    (fun jobs ->
      let bytes, counters, _ = run_at jobs in
      Alcotest.(check bool)
        (Printf.sprintf "trace bytes identical at -j %d" jobs)
        true
        (String.equal bytes ref_bytes);
      Alcotest.(check bool)
        (Printf.sprintf "counters identical at -j %d" jobs)
        true (counters = ref_counters))
    [ 2; 4 ]

let test_trace_shape () =
  let trace = Obs.Trace.create ~clock:(Obs.Clock.fixed ()) () in
  let tk = Obs.Trace.track trace ~tid:0 ~name:"t0" in
  Obs.Trace.with_span tk "outer" (fun () -> Obs.Trace.instant tk "mark");
  (* metadata record + B + i + E *)
  Alcotest.(check int) "event count" 3 (Obs.Trace.n_events trace);
  let j = J.parse_exn (Obs.Trace.to_chrome_json trace) in
  match Option.bind (J.member "traceEvents" j) J.to_list with
  | Some evs ->
      let phases =
        List.filter_map (fun e -> J.member "ph" e) evs
        |> List.map (function J.String s -> s | _ -> "?")
      in
      Alcotest.(check (list string)) "phase sequence"
        [ "M"; "B"; "i"; "E" ] phases
  | None -> Alcotest.fail "traceEvents missing"

let suite =
  ( "obs",
    [
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json float edge cases" `Quick test_json_floats;
      Alcotest.test_case "json rejects malformed" `Quick test_json_rejects;
      Alcotest.test_case "json typed parse errors" `Quick test_json_error_paths;
      Alcotest.test_case "json member access" `Quick test_json_member;
      Alcotest.test_case "fixed clock ticks" `Quick test_fixed_clock;
      Alcotest.test_case "null registry is inert" `Quick test_null_registry;
      Alcotest.test_case "counter sums across domains" `Quick
        test_counter_multi_domain;
      Alcotest.test_case "gauge merges by max" `Quick test_gauge_max_merge;
      QCheck_alcotest.to_alcotest prop_gauge_clamp_merge;
      Alcotest.test_case "histogram log2 buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "instrument find-or-register" `Quick
        test_same_name_same_instrument;
      Alcotest.test_case "report JSON and text" `Quick test_report_json;
      Alcotest.test_case "fixed-clock trace identical at -j 1/2/4" `Slow
        test_trace_identity_across_jobs;
      Alcotest.test_case "trace event shape" `Quick test_trace_shape;
    ] )
