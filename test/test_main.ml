let () =
  Alcotest.run "csspgo"
    [
      Test_support.suite;
      Test_ir.suite;
      Test_frontend.suite;
      Test_opt.suite;
      Test_codegen.suite;
      Test_vm.suite;
      Test_profile.suite;
      Test_merge.suite;
      Test_binary_io.suite;
      Test_inference.suite;
      Test_profgen.suite;
      Test_core.suite;
      Test_orchestrator.suite;
      Test_pipeline.suite;
      Test_differential.suite;
      Test_fuzz.suite;
      Test_stale.suite;
      Test_incremental.suite;
      Test_fleet.suite;
      Test_parcorr.suite;
      Test_labels.suite;
      Test_obs.suite;
      Test_health.suite;
    ]
