(* Chunk-framed sample logs and sharded parallel correlation: QCheck
   batteries over the chunk boundary (framing round-trips at every chunk
   size, splits that never divide a sample), deterministic edge cases at
   0 / 1 / chunk-1 / chunk / chunk+1 samples, shard planning, the central
   serial-vs-parallel byte-identity property for all three profile shapes
   at -j 1/2/4, and the lossy collector's counted-drop behavior. *)
module P = Csspgo_profile
module Vm = Csspgo_vm
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads
module Fl = Csspgo_fleet
module Obs = Csspgo_obs
module SL = Vm.Sample_log

let log_of_records records =
  let log = SL.create () in
  List.iter
    (fun (lbr, stack) ->
      let lbr = Array.of_list lbr and stack = Array.of_list stack in
      SL.add log ~lbr ~lbr_len:(Array.length lbr) ~stack
        ~stack_len:(Array.length stack))
    records;
  log

let concat_logs parts =
  let log = SL.create () in
  List.iter (fun p -> SL.append ~into:log p) parts;
  log

let records_gen =
  QCheck.(
    small_list
      (pair
         (small_list (pair (int_range 0 100_000) (int_range 0 100_000)))
         (small_list (int_range 0 100_000))))

(* --- chunk framing round-trips --------------------------------------- *)

(* Any chunk size (down to one sample per chunk) must decode back to the
   same log, and the decoded chunk partition must concatenate to it with
   every chunk but the last exactly full. *)
let prop_chunked_roundtrip =
  QCheck.Test.make ~name:"chunk-framed logs round-trip at every chunk size"
    ~count:100
    QCheck.(pair (int_range 1 9) records_gen)
    (fun (chunk, records) ->
      let log = log_of_records records in
      let txt = SL.to_text log in
      let blob = SL.encode ~chunk log in
      (match SL.framing_version blob with
      | Ok 2 -> ()
      | _ -> QCheck.Test.fail_report "chunked encode is not framing v2");
      (match SL.decode blob with
      | Ok log' when String.equal (SL.to_text log') txt -> ()
      | Ok _ -> QCheck.Test.fail_report "decode differs from original"
      | Error _ -> QCheck.Test.fail_report "decode failed");
      match SL.decode_chunks blob with
      | Error _ -> QCheck.Test.fail_report "decode_chunks failed"
      | Ok parts ->
          let n = SL.n_samples log in
          if not (String.equal (SL.to_text (concat_logs parts)) txt) then
            QCheck.Test.fail_report "chunk concatenation differs from original";
          let sizes = List.map SL.n_samples parts in
          if List.fold_left ( + ) 0 sizes <> n then
            QCheck.Test.fail_report "chunk sample counts do not sum";
          let rec full = function
            | [] | [ _ ] -> true
            | s :: tl -> s = chunk && full tl
          in
          (* the empty log still frames as one (empty) chunk *)
          if n = 0 then List.length parts = 1 && List.hd sizes = 0
          else full sizes && List.for_all (fun s -> s > 0 && s <= chunk) sizes)

(* [split] must partition on whole-sample boundaries: concatenating the
   pieces reproduces the log byte-for-byte in both text and wire form. *)
let prop_split_never_divides =
  QCheck.Test.make ~name:"split never divides a sample" ~count:100
    QCheck.(pair (int_range 1 9) records_gen)
    (fun (chunk, records) ->
      let log = log_of_records records in
      let parts = SL.split ~chunk log in
      (if SL.n_samples log = 0 then
         if parts <> [] then QCheck.Test.fail_report "empty log split non-empty");
      List.iter
        (fun p ->
          if SL.n_samples p = 0 || SL.n_samples p > chunk then
            QCheck.Test.fail_report "split chunk size out of range")
        parts;
      let cat = concat_logs parts in
      String.equal (SL.to_text cat) (SL.to_text log)
      && String.equal (SL.encode cat) (SL.encode log))

let test_chunk_boundaries () =
  let chunk = 4 in
  let record i = ([ (i, i + 1) ], [ i ]) in
  List.iter
    (fun n ->
      let log = log_of_records (List.init n record) in
      let expected_chunks = if n = 0 then 1 else (n + chunk - 1) / chunk in
      (match SL.decode_chunks (SL.encode ~chunk log) with
      | Ok parts ->
          Alcotest.(check int)
            (Printf.sprintf "%d samples -> chunk count" n)
            expected_chunks (List.length parts)
      | Error e ->
          Alcotest.failf "%d samples: %s" n
            (Csspgo_support.Wire.error_to_string e));
      Alcotest.(check int)
        (Printf.sprintf "%d samples -> split count" n)
        (if n = 0 then 0 else expected_chunks)
        (List.length (SL.split ~chunk log)))
    [ 0; 1; chunk - 1; chunk; chunk + 1; (2 * chunk) + 1 ];
  (* the default encode is the chunked v2 framing *)
  Alcotest.(check (result int reject))
    "default encode is v2" (Ok 2)
    (Result.map_error ignore (SL.framing_version (SL.encode (SL.create ()))))

(* --- shard planning --------------------------------------------------- *)

let test_plan () =
  let logs sizes =
    List.map (fun n -> log_of_records (List.init n (fun i -> ([ (i, i) ], [])))) sizes
  in
  let sizes shards = List.map Core.Par_corr.shard_samples shards in
  Alcotest.(check (list int)) "chunks group up to the target" [ 4; 4; 2 ]
    (sizes (Core.Par_corr.plan ~target:3 (logs [ 2; 2; 2; 2; 2 ])));
  Alcotest.(check (list int)) "empty chunks are dropped" [ 3 ]
    (sizes (Core.Par_corr.plan ~target:3 (logs [ 0; 1; 0; 2; 0 ])));
  Alcotest.(check (list int)) "no chunks, no shards" []
    (sizes (Core.Par_corr.plan ~target:3 []));
  match Core.Par_corr.plan ~target:0 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive target accepted"

(* --- serial vs sharded correlation ------------------------------------ *)

let w = W.Suite.adfinder

(* a denser sampling period than the default keeps the training log well
   past one shard at the test's shard target *)
let options =
  {
    D.default_options with
    D.pmu = { Vm.Machine.default_pmu with Vm.Machine.sample_period = 101 };
  }

let profile_texts (p, flat) =
  P.Text_io.to_string p
  ^
  match flat with
  | Some f -> P.Text_io.to_string (P.Text_io.Probe_prof f)
  | None -> ""

let training_log (b : Fl.Build.built) =
  let log = SL.create () in
  List.iter
    (fun (spec : D.run_spec) ->
      ignore
        (Vm.Machine.run ~pmu:(Some options.D.pmu)
           ~sink:(SL.sink log) ~globals_init:spec.D.rs_globals
           ~args:spec.D.rs_args b.Fl.Build.vb_bin ~entry:w.D.w_entry))
    w.D.w_train;
  log

let test_parallel_identity () =
  List.iter
    (fun shape ->
      let b =
        Fl.Build.profiling_build ~options ~shape ~source:w.D.w_source
      in
      let log = training_log b in
      Alcotest.(check bool)
        (Fl.Build.shape_name shape ^ " training produced samples")
        true
        (SL.n_samples log > 0);
      let serial = profile_texts (Fl.Build.correlate ~options ~shape b log) in
      (* a chunk/shard target far below the log size forces real
         multi-shard merges, so the identity is not vacuously serial *)
      let chunks = SL.split ~chunk:16 log in
      Alcotest.(check bool)
        (Fl.Build.shape_name shape ^ " multiple shards in play")
        true
        (List.length (Core.Par_corr.plan ~target:16 chunks) > 1);
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s -j %d byte-identical to serial"
               (Fl.Build.shape_name shape) jobs)
            serial
            (profile_texts
               (Fl.Build.correlate_chunks ~shard_target:16 ~jobs ~options
                  ~shape b chunks)))
        [ 1; 2; 4 ])
    [ Fl.Build.Lines; Fl.Build.Probes; Fl.Build.Ctx ]

(* --- lossy collector -------------------------------------------------- *)

let batch ?(version = 0) ?(seq = 0) ~blob instance =
  {
    Fl.Instance.b_instance = instance;
    b_version = version;
    b_seq = seq;
    b_blob = blob;
    b_samples = 0;
    b_requests = 1;
  }

let test_lossy_collector () =
  let obs = Obs.Metrics.create () in
  let c = Fl.Collector.create ~obs ~lossy:true ~shards:2 () in
  let good = SL.encode (log_of_records [ ([ (1, 2) ], [ 3 ]) ]) in
  Fl.Collector.ingest c (batch ~blob:good 0);
  Fl.Collector.ingest c (batch ~seq:1 ~blob:"not a CSLG blob" 0);
  Fl.Collector.ingest c (batch ~seq:2 ~blob:good 0);
  (match Fl.Collector.drain ~jobs:1 c with
  | [ m ] ->
      Alcotest.(check int) "both intact batches survive" 2
        (SL.n_samples m.Fl.Collector.m_log);
      (* the dropped blob's batch is gone from the drain accounting — only
         the counter remembers it *)
      Alcotest.(check int) "batch count excludes the drop" 2
        m.Fl.Collector.m_batches
  | ms -> Alcotest.failf "expected one version, got %d" (List.length ms));
  Alcotest.(check (option int)) "drop counted" (Some 1)
    (Obs.Metrics.find_counter (Obs.Metrics.snapshot obs) "collector.dropped-blobs")

let suite =
  ( "parcorr",
    [
      QCheck_alcotest.to_alcotest prop_chunked_roundtrip;
      QCheck_alcotest.to_alcotest prop_split_never_divides;
      Alcotest.test_case "chunk boundary cases" `Quick test_chunk_boundaries;
      Alcotest.test_case "shard planning" `Quick test_plan;
      Alcotest.test_case "serial vs -j 1/2/4 byte identity" `Quick
        test_parallel_identity;
      Alcotest.test_case "lossy collector counts drops" `Quick
        test_lossy_collector;
    ] )
