(* Profile data structures: line profiles, probe profiles, context trie. *)
module Ir = Csspgo_ir
module P = Csspgo_profile
module LP = P.Line_profile
module PP = P.Probe_profile
module CP = P.Ctx_profile

let g name = Ir.Guid.of_name name

(* Per-shape wrappers over the unified [Text_io] surface: serialization
   always goes through [to_string]/[read]; these just wrap/unwrap the
   shape constructors for the round-trip tests below. *)
let probe_to_string t = P.Text_io.to_string (P.Text_io.Probe_prof t)
let line_to_string t = P.Text_io.to_string (P.Text_io.Line_prof t)
let ctx_to_string t = P.Text_io.to_string (P.Text_io.Ctx_prof t)

let read_probe s =
  match P.Text_io.read P.Text_io.Probe s with
  | P.Text_io.Probe_prof t -> t
  | _ -> assert false

let read_line s =
  match P.Text_io.read P.Text_io.Line s with
  | P.Text_io.Line_prof t -> t
  | _ -> assert false

let read_ctx s =
  match P.Text_io.read P.Text_io.Ctx s with
  | P.Text_io.Ctx_prof t -> t
  | _ -> assert false

let test_line_profile_max () =
  let t = LP.create () in
  let fe = LP.get_or_add t (g "f") ~name:"f" in
  LP.set_line_max fe (3, 0) 10L;
  LP.set_line_max fe (3, 0) 7L;
  Alcotest.(check int64) "max keeps 10" 10L (LP.line_count fe (3, 0));
  LP.set_line_max fe (3, 0) 12L;
  Alcotest.(check int64) "max raises to 12" 12L (LP.line_count fe (3, 0));
  LP.add_call fe (3, 0) (g "callee") 5L;
  LP.add_call fe (3, 0) (g "callee") 6L;
  Alcotest.(check (list (pair int64 int64))) "call counts sum"
    [ (g "callee", 11L) ]
    (LP.call_counts fe (3, 0))

let test_probe_profile_sum () =
  let t = PP.create () in
  let fe = PP.get_or_add t (g "f") ~name:"f" in
  PP.add_probe fe 1 10L;
  PP.add_probe fe 1 7L;
  Alcotest.(check int64) "probes sum" 17L (PP.probe_count fe 1);
  Alcotest.(check int64) "total" 17L fe.PP.fe_total

let mk_trie () =
  let t = CP.create () in
  (* main -> (site 3) foo -> (site 2) bar, plus base foo *)
  let path =
    [ ((g "main", 3), g "foo", "foo"); ((g "foo", 2), g "bar", "bar") ]
  in
  let bar_node = Option.get (CP.node_at t ~path) in
  PP.add_probe bar_node.CP.n_prof 1 100L;
  let foo_node = Option.get (CP.node_at t ~path:[ ((g "main", 3), g "foo", "foo") ]) in
  PP.add_probe foo_node.CP.n_prof 1 50L;
  let base_foo = CP.base t (g "foo") ~name:"foo" in
  PP.add_probe base_foo.CP.n_prof 1 7L;
  t

let test_trie_structure () =
  let t = mk_trie () in
  Alcotest.(check int) "node count" 4 (CP.n_nodes t);
  Alcotest.(check int64) "total samples" 157L (CP.total_samples t);
  let found =
    CP.find_node t ~leaf:(g "bar") (fun ctx ->
        ctx = [ (g "main", 3); (g "foo", 2) ])
  in
  Alcotest.(check bool) "deep context resolvable" true (found <> None)

let test_promote_to_base () =
  let t = mk_trie () in
  let main = CP.base t (g "main") ~name:"main" in
  CP.promote_to_base t ~parent:main ~key:(3, g "foo");
  (* foo's context merged into base foo; bar context re-rooted under base foo *)
  let base_foo = CP.base t (g "foo") ~name:"foo" in
  Alcotest.(check int64) "merged counts" 57L (PP.probe_count base_foo.CP.n_prof 1);
  Alcotest.(check bool) "bar now under base foo" true
    (Hashtbl.mem base_foo.CP.n_children (2, g "bar"));
  (* no double counting on repeated promotion *)
  CP.promote_to_base t ~parent:main ~key:(3, g "foo");
  Alcotest.(check int64) "idempotent" 57L (PP.probe_count base_foo.CP.n_prof 1);
  Alcotest.(check int64) "conserved" 157L (CP.total_samples t)

let test_trim_cold_conserves () =
  let t = mk_trie () in
  let before = CP.total_samples t in
  let removed = CP.trim_cold t ~threshold:Int64.max_int in
  Alcotest.(check bool) "contexts removed" true (removed > 0);
  Alcotest.(check int64) "samples conserved" before (CP.total_samples t);
  (* everything is now in base profiles *)
  CP.iter_nodes t (fun ctx node ->
      if ctx <> [] && Int64.compare node.CP.n_prof.PP.fe_total 0L > 0 then
        Alcotest.fail "non-base counts remain after full trim")

let test_trim_cold_keeps_hot () =
  let t = mk_trie () in
  let removed = CP.trim_cold t ~threshold:60L in
  (* bar subtree total = 100 stays; foo node itself is parent of bar so its
     subtree total is 150 -> stays *)
  ignore removed;
  Alcotest.(check bool) "hot context survives" true
    (CP.find_node t ~leaf:(g "bar") (fun ctx -> List.length ctx = 2) <> None)

let test_size_bytes_grows () =
  let t = mk_trie () in
  let s1 = CP.size_bytes t in
  let deep_path =
    [ ((g "main", 3), g "foo", "foo");
      ((g "foo", 2), g "bar", "bar");
      ((g "bar", 9), g "baz", "baz") ]
  in
  let n = Option.get (CP.node_at t ~path:deep_path) in
  PP.add_probe n.CP.n_prof 1 1L;
  Alcotest.(check bool) "size grows with contexts" true (CP.size_bytes t > s1)

(* --- text serialization round trips --------------------------------- *)

let test_probe_roundtrip () =
  let t = PP.create () in
  let fe = PP.get_or_add t (g "f") ~name:"f" in
  fe.PP.fe_head <- 12L;
  fe.PP.fe_checksum <- 0xDEADL;
  PP.add_probe fe 1 100L;
  PP.add_probe fe 3 7L;
  PP.add_call fe 2 (g "callee") 55L;
  let s = probe_to_string t in
  let t2 = read_probe s in
  let fe2 = Option.get (PP.get t2 (g "f")) in
  Alcotest.(check int64) "head" 12L fe2.PP.fe_head;
  Alcotest.(check int64) "checksum" 0xDEADL fe2.PP.fe_checksum;
  Alcotest.(check int64) "probe 1" 100L (PP.probe_count fe2 1);
  Alcotest.(check int64) "probe 3" 7L (PP.probe_count fe2 3);
  Alcotest.(check (list (pair int64 int64))) "calls" [ (g "callee", 55L) ]
    (PP.call_counts fe2 2);
  (* stable: serializing again yields identical text *)
  Alcotest.(check string) "canonical" s (probe_to_string t2)

let test_ctx_roundtrip () =
  let t = mk_trie () in
  (* add an inline mark and a head count for coverage *)
  (match CP.find_node t ~leaf:(g "bar") (fun ctx -> List.length ctx = 2) with
  | Some n ->
      n.CP.n_inlined <- true;
      n.CP.n_prof.PP.fe_head <- 9L
  | None -> Alcotest.fail "bar context missing");
  let s = CP.total_samples t in
  let text = ctx_to_string t in
  let t2 = read_ctx text in
  Alcotest.(check int64) "samples preserved" s (CP.total_samples t2);
  Alcotest.(check int) "node count preserved" (CP.n_nodes t) (CP.n_nodes t2);
  (match CP.find_node t2 ~leaf:(g "bar") (fun ctx -> List.length ctx = 2) with
  | Some n ->
      Alcotest.(check bool) "inline mark preserved" true n.CP.n_inlined;
      Alcotest.(check int64) "head preserved" 9L n.CP.n_prof.PP.fe_head
  | None -> Alcotest.fail "bar context lost");
  Alcotest.(check string) "canonical" text (ctx_to_string t2)

let test_line_roundtrip () =
  let t = LP.create () in
  let fe = LP.get_or_add t (g "f") ~name:"f" in
  fe.LP.fe_head <- 4L;
  LP.set_line_max fe (2, 0) 40L;
  LP.set_line_max fe (3, 1) 7L;
  LP.add_call fe (2, 0) (g "callee") 33L;
  let text = line_to_string t in
  let t2 = read_line text in
  let fe2 = Option.get (LP.get t2 (g "f")) in
  Alcotest.(check int64) "line 2.0" 40L (LP.line_count fe2 (2, 0));
  Alcotest.(check int64) "line 3.1" 7L (LP.line_count fe2 (3, 1));
  Alcotest.(check int64) "head" 4L fe2.LP.fe_head;
  Alcotest.(check string) "canonical" text (line_to_string t2)

let test_text_io_errors () =
  let fails s = match read_probe s with
    | exception P.Text_io.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "orphan probe" true (fails "probe 1 5");
  Alcotest.(check bool) "junk" true (fails "wibble");
  Alcotest.(check bool) "bad int" true
    (fails "function f guid=ff total=0 head=0 checksum=0\n probe x 5");
  (* comments and blank lines are fine *)
  Alcotest.(check bool) "comments ok" false
    (fails "# header\n\nfunction f guid=ff total=0 head=0 checksum=0\n probe 1 5 # hot")

(* --- the unified reader/writer interface ---------------------------- *)

let test_unified_detect_and_roundtrip () =
  let probe =
    let t = PP.create () in
    let fe = PP.get_or_add t (g "f") ~name:"f" in
    fe.PP.fe_checksum <- 0xBEEFL;
    PP.add_probe fe 1 10L;
    P.Text_io.Probe_prof t
  in
  let line =
    let t = LP.create () in
    let fe = LP.get_or_add t (g "f") ~name:"f" in
    LP.set_line_max fe (1, 0) 5L;
    P.Text_io.Line_prof t
  in
  let ctx = P.Text_io.Ctx_prof (mk_trie ()) in
  List.iter
    (fun p ->
      let kn = P.Text_io.kind_name (P.Text_io.kind_of p) in
      let s = P.Text_io.to_string p in
      (* sniffing recovers the kind without being told *)
      Alcotest.(check (option string)) (kn ^ " sniffed") (Some kn)
        (Option.map P.Text_io.kind_name (P.Text_io.detect_kind s));
      let p2 = P.Text_io.of_string s in
      Alcotest.(check string) (kn ^ " kind stable") kn
        (P.Text_io.kind_name (P.Text_io.kind_of p2));
      Alcotest.(check string) (kn ^ " canonical") s (P.Text_io.to_string p2);
      Alcotest.(check int64) (kn ^ " samples") (P.Text_io.total_samples p)
        (P.Text_io.total_samples p2))
    [ probe; line; ctx ]

let test_unified_empty_input () =
  Alcotest.(check (option string)) "no records -> no kind" None
    (Option.map P.Text_io.kind_name (P.Text_io.detect_kind "# nothing\n"));
  match P.Text_io.of_string "# nothing\n" with
  | exception P.Text_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "recordless input must not parse"

let prop_probe_roundtrip =
  QCheck.Test.make ~name:"probe profile text round-trips" ~count:100
    QCheck.(list (pair (int_range 1 40) (int_range 1 100000)))
    (fun pairs ->
      let t = PP.create () in
      let fe = PP.get_or_add t (g "f") ~name:"f" in
      List.iter (fun (id, c) -> PP.add_probe fe id (Int64.of_int c)) pairs;
      let t2 = read_probe (probe_to_string t) in
      PP.total_samples t2 = PP.total_samples t)

(* Generator-driven round-trips over whole profiles: build a random
   multi-function profile through the public API, then require the
   canonical text to survive print -> parse -> print unchanged (the
   writers sort, so the text form is canonical and string equality is
   full structural equality). Empty profiles arise from the empty spec
   list; the context property also exercises cold-trimmed tries. *)

let fname i = Printf.sprintf "fn%d" i

let fentry_spec_gen =
  QCheck.(
    pair
      (pair (int_range 0 5) (int_range 0 1000))
      (pair
         (small_list (pair (int_range 1 60) (int_range 1 100_000)))
         (small_list (triple (int_range 1 60) (int_range 0 5) (int_range 1 5000)))))

let prop_probe_profile_roundtrip =
  QCheck.Test.make ~name:"probe profiles round-trip (multi-function)" ~count:200
    QCheck.(small_list fentry_spec_gen)
    (fun specs ->
      let t = PP.create () in
      List.iter
        (fun ((fi, head), (probes, calls)) ->
          let fe = PP.get_or_add t (g (fname fi)) ~name:(fname fi) in
          fe.PP.fe_head <- Int64.of_int head;
          fe.PP.fe_checksum <- Int64.of_int (fi * 7919);
          List.iter (fun (id, c) -> PP.add_probe fe id (Int64.of_int c)) probes;
          List.iter
            (fun (site, callee, c) ->
              PP.add_call fe site (g (fname callee)) (Int64.of_int c))
            calls)
        specs;
      let s = probe_to_string t in
      String.equal s (probe_to_string (read_probe s)))

let prop_line_profile_roundtrip =
  QCheck.Test.make ~name:"line profiles round-trip (multi-function)" ~count:200
    QCheck.(small_list fentry_spec_gen)
    (fun specs ->
      let t = LP.create () in
      List.iter
        (fun ((fi, head), (lines, calls)) ->
          let fe = LP.get_or_add t (g (fname fi)) ~name:(fname fi) in
          fe.LP.fe_head <- Int64.of_int head;
          List.iter
            (fun (l, c) -> LP.add_line fe (l, l mod 3) (Int64.of_int c))
            lines;
          List.iter
            (fun (l, callee, c) ->
              LP.add_call fe (l, l mod 3) (g (fname callee)) (Int64.of_int c))
            calls)
        specs;
      let s = line_to_string t in
      String.equal s (line_to_string (read_line s)))

let ctx_spec_gen =
  (* one context: a root function, a chain of (callsite, callee) frames,
     probe counts at the leaf, and the pre-inliner mark *)
  QCheck.(
    pair
      (pair (int_range 0 3) (small_list (pair (int_range 1 9) (int_range 0 3))))
      (pair (small_list (pair (int_range 1 30) (int_range 1 10_000))) bool))

let prop_ctx_profile_roundtrip =
  QCheck.Test.make ~name:"context profiles round-trip (incl. cold-trimmed)"
    ~count:200
    QCheck.(pair (small_list ctx_spec_gen) (option (int_range 1 5000)))
    (fun (specs, trim) ->
      let t = CP.create () in
      List.iter
        (fun ((root_fi, frames), (probes, inlined)) ->
          let node =
            match frames with
            | [] -> CP.base t (g (fname root_fi)) ~name:(fname root_fi)
            | _ ->
                let path =
                  List.rev
                    (fst
                       (List.fold_left
                          (fun (acc, parent) (site, child_fi) ->
                            ( ((g (fname parent), site), g (fname child_fi),
                               fname child_fi)
                              :: acc,
                              child_fi ))
                          ([], root_fi) frames))
                in
                Option.get (CP.node_at t ~path)
          in
          node.CP.n_inlined <- inlined;
          List.iter
            (fun (id, c) -> PP.add_probe node.CP.n_prof id (Int64.of_int c))
            probes)
        specs;
      (match trim with
      | Some threshold -> ignore (CP.trim_cold t ~threshold:(Int64.of_int threshold))
      | None -> ());
      let s = ctx_to_string t in
      String.equal s (ctx_to_string (read_ctx s)))

let prop_merge_fentry_conserves =
  QCheck.Test.make ~name:"merge_fentry conserves probe totals" ~count:100
    QCheck.(list (pair (int_range 1 20) (int_range 1 1000)))
    (fun pairs ->
      let a =
        { PP.fe_total = 0L; fe_head = 0L; fe_probes = Hashtbl.create 8;
          fe_calls = Hashtbl.create 1; fe_checksum = 0L }
      in
      let b =
        { PP.fe_total = 0L; fe_head = 0L; fe_probes = Hashtbl.create 8;
          fe_calls = Hashtbl.create 1; fe_checksum = 0L }
      in
      List.iteri
        (fun i (id, c) ->
          PP.add_probe (if i mod 2 = 0 then a else b) id (Int64.of_int c))
        pairs;
      let total = Int64.add a.PP.fe_total b.PP.fe_total in
      CP.merge_fentry ~into:a b;
      Int64.equal a.PP.fe_total total)

let suite =
  ( "profile",
    [
      Alcotest.test_case "line profile max heuristic" `Quick test_line_profile_max;
      Alcotest.test_case "probe profile sums" `Quick test_probe_profile_sum;
      Alcotest.test_case "trie structure" `Quick test_trie_structure;
      Alcotest.test_case "promote to base" `Quick test_promote_to_base;
      Alcotest.test_case "trim cold conserves" `Quick test_trim_cold_conserves;
      Alcotest.test_case "trim keeps hot" `Quick test_trim_cold_keeps_hot;
      Alcotest.test_case "size estimate" `Quick test_size_bytes_grows;
      Alcotest.test_case "probe text roundtrip" `Quick test_probe_roundtrip;
      Alcotest.test_case "ctx text roundtrip" `Quick test_ctx_roundtrip;
      Alcotest.test_case "line text roundtrip" `Quick test_line_roundtrip;
      Alcotest.test_case "text parse errors" `Quick test_text_io_errors;
      Alcotest.test_case "unified io detects and round-trips" `Quick
        test_unified_detect_and_roundtrip;
      Alcotest.test_case "unified io rejects recordless input" `Quick
        test_unified_empty_input;
      QCheck_alcotest.to_alcotest prop_probe_roundtrip;
      QCheck_alcotest.to_alcotest prop_probe_profile_roundtrip;
      QCheck_alcotest.to_alcotest prop_line_profile_roundtrip;
      QCheck_alcotest.to_alcotest prop_ctx_profile_roundtrip;
      QCheck_alcotest.to_alcotest prop_merge_fentry_conserves;
    ] )
