(* The orchestrator: work-stealing scheduler determinism, the
   content-addressed artifact cache (including deliberate poisoning), and
   the staged plan surface it schedules.

   Cache directories live under the test's working directory (dune's
   sandbox), so reruns start by clearing them. *)

module D = Csspgo_core.Driver
module O = Csspgo_orchestrator
module W = Csspgo_workloads

let variants =
  [ D.Nopgo; D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full; D.Instr_pgo ]

let w = W.Suite.adranker

(* Everything a build produces, at byte granularity. [o_annotated] is
   excluded: hashtable marshal images are layout-sensitive even when every
   annotation in them is equal. *)
let digest (o : D.outcome) =
  ( Marshal.to_string o.D.o_binary [],
    o.D.o_eval,
    o.D.o_text_size,
    o.D.o_debug_size,
    o.D.o_probe_meta_size,
    o.D.o_profiling_cycles,
    o.D.o_profile_size )

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let dir_contents dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let fresh_cache dir =
  if Sys.file_exists dir then ignore (O.Cache.clear_dir dir);
  O.Cache.create ~dir ()

(* --- scheduler ------------------------------------------------------- *)

let test_scheduler_map () =
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "-j %d preserves input order" jobs)
        expect
        (O.Scheduler.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ];
  match O.Scheduler.map ~jobs:3 (fun x -> if x = 5 then failwith "boom" else x) xs with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "worker exception must propagate to the caller"

(* --- plan surface ---------------------------------------------------- *)

let test_plan_shapes () =
  let stages v = (D.Plan.make ~variant:v w).D.Plan.pl_stages in
  let has p v = List.exists p (stages v) in
  let correlators v =
    List.filter_map
      (function D.Plan.Correlate c -> Some c.D.Plan.x_correlator | _ -> None)
      (stages v)
  in
  List.iter
    (fun v ->
      match List.rev (stages v) with
      | D.Plan.Evaluate _ :: D.Plan.Rebuild _ :: _ -> ()
      | _ ->
          Alcotest.failf "%s plan does not end with Rebuild; Evaluate"
            (D.variant_name v))
    variants;
  Alcotest.(check bool) "no-pgo never profiles" false
    (has (function D.Plan.Profile_run _ -> true | _ -> false) D.Nopgo);
  Alcotest.(check bool) "instr-pgo instruments" true
    (has (function D.Plan.Instrument _ -> true | _ -> false) D.Instr_pgo);
  Alcotest.(check bool) "full csspgo pre-inlines" true
    (has (function D.Plan.Preinline _ -> true | _ -> false) D.Csspgo_full);
  (match correlators D.Autofdo with
  | [ D.Plan.Corr_lines ] -> ()
  | _ -> Alcotest.fail "autofdo must correlate by DWARF lines");
  (match correlators D.Csspgo_probe_only with
  | [ D.Plan.Corr_probes ] -> ()
  | _ -> Alcotest.fail "probe-only must correlate by probes");
  (match correlators D.Csspgo_full with
  | [ D.Plan.Corr_ctx _ ] -> ()
  | _ -> Alcotest.fail "full csspgo must reconstruct contexts");
  match correlators D.Instr_pgo with
  | [ D.Plan.Corr_counters _ ] -> ()
  | _ -> Alcotest.fail "instr-pgo must correlate exact counters"

let test_malformed_plans () =
  let p = D.Plan.make ~variant:D.Csspgo_probe_only w in
  let raises stages =
    match D.Plan.run { p with D.Plan.pl_stages = stages } with
    | exception Invalid_argument _ -> true
    | (_ : D.outcome) -> false
  in
  Alcotest.(check bool) "empty plan rejected" true (raises []);
  Alcotest.(check bool) "profiling without a compile stage rejected" true
    (raises
       (List.filter
          (function D.Plan.Compile _ -> false | _ -> true)
          p.D.Plan.pl_stages))

(* --- stats accumulator ordering -------------------------------------- *)

let test_stats_list_ordering () =
  (* stats_list promises name-sorted output whatever order (and from
     whatever domains) the counters arrived in — the hash table underneath
     has no usable iteration order. *)
  let stats = O.Orchestrate.create_stats () in
  let hooks = O.Orchestrate.hooks ~stats (O.Cache.create ()) in
  let stat name n = hooks.D.Plan.stat ~name n in
  List.iter
    (fun (name, n) -> stat name n)
    [ ("zeta", 1); ("alpha", 2); ("mid", 3); ("zeta", 10); ("alpha", 20) ];
  Alcotest.(check (list (pair string int)))
    "sorted by name, totals summed"
    [ ("alpha", 22); ("mid", 3); ("zeta", 11) ]
    (O.Orchestrate.stats_list stats);
  (* concurrent bumps from several domains land in the same sorted shape *)
  let stats2 = O.Orchestrate.create_stats () in
  let hooks2 = O.Orchestrate.hooks ~stats:stats2 (O.Cache.create ()) in
  let names = [ "w"; "q"; "a"; "m" ] in
  let ds =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            List.iteri
              (fun j name -> hooks2.D.Plan.stat ~name ((i * 10) + j))
              names))
  in
  List.iter Domain.join ds;
  Alcotest.(check (list string))
    "names sorted after parallel feed" [ "a"; "m"; "q"; "w" ]
    (List.map fst (O.Orchestrate.stats_list stats2))

(* --- determinism: 1 / 2 / 4 domains --------------------------------- *)

let test_determinism_across_jobs () =
  let matrix dir jobs =
    let cache = fresh_cache dir in
    O.Orchestrate.run_plans ~cache ~jobs
      (List.map (fun v -> D.Plan.make ~variant:v w) variants)
  in
  let d1 = List.map digest (matrix "orch-cache-j1" 1) in
  let d2 = List.map digest (matrix "orch-cache-j2" 2) in
  let d4 = List.map digest (matrix "orch-cache-j4" 4) in
  Alcotest.(check bool) "-j 2 outcomes byte-identical to serial" true (d1 = d2);
  Alcotest.(check bool) "-j 4 outcomes byte-identical to serial" true (d1 = d4);
  (* The cached artifacts — binaries, canonical profile text dumps, eval
     results — must be byte-identical files too, whatever the schedule. *)
  let c1 = dir_contents "orch-cache-j1" in
  Alcotest.(check bool) "-j 2 cache entries byte-identical" true
    (c1 = dir_contents "orch-cache-j2");
  Alcotest.(check bool) "-j 4 cache entries byte-identical" true
    (c1 = dir_contents "orch-cache-j4");
  Alcotest.(check bool) "cache is not vacuously empty" true (c1 <> [])

(* --- cache: warm reuse, poisoning, healing --------------------------- *)

let test_cache_poisoning () =
  let dir = "orch-cache-poison" in
  let plan = D.Plan.make ~variant:D.Csspgo_probe_only w in
  let run cache = D.Plan.run ~hooks:(O.Orchestrate.hooks cache) plan in
  let c0 = fresh_cache dir in
  let o0 = run c0 in
  Alcotest.(check bool) "cold run stores entries" true
    ((O.Cache.stats c0).O.Cache.stores > 0);
  (* a fresh cache instance serves the whole plan from disk *)
  let c1 = O.Cache.create ~dir () in
  let o1 = run c1 in
  let s1 = O.Cache.stats c1 in
  Alcotest.(check int) "warm run misses nothing" 0 s1.O.Cache.misses;
  Alcotest.(check bool) "warm run hits" true (s1.O.Cache.hits > 0);
  Alcotest.(check bool) "warm outcome byte-identical" true (digest o0 = digest o1);
  (* flip one payload byte in every entry on disk *)
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      let b = Bytes.of_string (read_file path) in
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc)
    (Sys.readdir dir);
  (* every lookup now fails its digest: detected, deleted, recomputed *)
  let c2 = O.Cache.create ~dir () in
  let o2 = run c2 in
  let s2 = O.Cache.stats c2 in
  Alcotest.(check bool) "poisoned entries detected" true (s2.O.Cache.corrupt > 0);
  Alcotest.(check bool) "poisoned stages rebuilt" true (s2.O.Cache.stores > 0);
  Alcotest.(check bool) "rebuilt outcome byte-identical" true
    (digest o0 = digest o2);
  (* and the rebuild healed the cache in place *)
  let c3 = O.Cache.create ~dir () in
  let o3 = run c3 in
  let s3 = O.Cache.stats c3 in
  Alcotest.(check int) "healed: no corruption left" 0 s3.O.Cache.corrupt;
  Alcotest.(check int) "healed: no misses left" 0 s3.O.Cache.misses;
  Alcotest.(check bool) "healed outcome byte-identical" true
    (digest o0 = digest o3)

let suite =
  ( "orchestrator",
    [
      Alcotest.test_case "scheduler map is order-preserving" `Quick
        test_scheduler_map;
      Alcotest.test_case "plan stage lists per variant" `Quick test_plan_shapes;
      Alcotest.test_case "malformed plans rejected" `Quick test_malformed_plans;
      Alcotest.test_case "stats_list is name-sorted" `Quick
        test_stats_list_ordering;
      Alcotest.test_case "1/2/4 domains byte-identical" `Slow
        test_determinism_across_jobs;
      Alcotest.test_case "cache poisoning degrades to rebuild" `Quick
        test_cache_poisoning;
    ] )
