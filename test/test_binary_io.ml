(* Binary profile & sample-log codec: round-trip properties over every
   profile shape, a corruption battery (bit flips, truncation, extension
   must all yield typed errors), and version handling. The text form is
   canonical — writers sort — so [Text_io.to_string] equality is full
   structural equality and every binary check reduces to it. *)
module Ir = Csspgo_ir
module P = Csspgo_profile
module S = Csspgo_support
module Vm = Csspgo_vm
module LP = P.Line_profile
module PP = P.Probe_profile
module CP = P.Ctx_profile
module B = P.Binary_io
module SL = Vm.Sample_log
module Wire = S.Wire

let g name = Ir.Guid.of_name name
let fname i = Printf.sprintf "fn%d" i

(* text -> binary -> text must be byte-identical *)
let rt_ok p =
  let text = P.Text_io.to_string p in
  match B.decode (B.encode p) with
  | Ok p' -> String.equal (P.Text_io.to_string p') text
  | Error _ -> false

(* --- deterministic edge cases ---------------------------------------- *)

let test_empty_profiles () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (P.Text_io.kind_name (P.Text_io.kind_of p) ^ " empty round-trips")
        true (rt_ok p))
    [
      P.Text_io.Probe_prof (PP.create ());
      P.Text_io.Line_prof (LP.create ());
      P.Text_io.Ctx_prof (CP.create ());
    ]

let test_extreme_counters () =
  (* zero counts, max-int counts, negative-looking checksums: the varint
     codec works on the 64-bit pattern, so all of these must survive *)
  let t = PP.create () in
  let fe = PP.get_or_add t (g "f") ~name:"f" in
  fe.PP.fe_head <- Int64.max_int;
  fe.PP.fe_checksum <- -1L;
  PP.add_probe fe 1 0L;
  PP.add_probe fe 2 Int64.max_int;
  PP.add_call fe 3 (g "callee") Int64.max_int;
  Alcotest.(check bool) "max-int probe profile" true (rt_ok (P.Text_io.Probe_prof t));
  let l = LP.create () in
  let fe = LP.get_or_add l (g "f") ~name:"f" in
  LP.set_line_max fe (1, 0) Int64.max_int;
  LP.set_line_max fe (2, 1) 0L;
  LP.add_call fe (1, 0) (g "callee") Int64.max_int;
  Alcotest.(check bool) "max-int line profile" true (rt_ok (P.Text_io.Line_prof l));
  let c = CP.create () in
  let node =
    Option.get (CP.node_at c ~path:[ ((g "main", 7), g "f", "f") ])
  in
  node.CP.n_prof.PP.fe_checksum <- Int64.min_int;
  PP.add_probe node.CP.n_prof 1 Int64.max_int;
  Alcotest.(check bool) "max-int ctx profile" true (rt_ok (P.Text_io.Ctx_prof c))

let test_sniffing () =
  let p = P.Text_io.Probe_prof (PP.create ()) in
  let b = B.encode p in
  Alcotest.(check bool) "binary sniffs binary" true (B.is_binary b);
  Alcotest.(check bool) "text does not sniff binary" false
    (B.is_binary (P.Text_io.to_string p));
  (match P.Io.read b with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("Io.read binary: " ^ e));
  let t = PP.create () in
  let fe = PP.get_or_add t (g "f") ~name:"f" in
  PP.add_probe fe 1 5L;
  match P.Io.read (P.Text_io.to_string (P.Text_io.Probe_prof t)) with
  | Ok p -> Alcotest.(check int64) "Io.read text" 5L (P.Text_io.total_samples p)
  | Error e -> Alcotest.fail ("Io.read text: " ^ e)

(* --- version handling ------------------------------------------------- *)

let test_version_rejection () =
  let payload =
    (* a structurally valid (empty) probe section under a future version *)
    let e = Wire.Enc.create () in
    Wire.Enc.varint e 0;
    Wire.Enc.contents e
  in
  let blob = Wire.frame ~magic:B.magic ~version:(B.version + 1) [ (2, payload) ] in
  (match B.decode blob with
  | Error (Wire.Unsupported_version { version; max }) ->
      Alcotest.(check int) "reported version" (B.version + 1) version;
      Alcotest.(check int) "reported max" B.version max
  | Error e -> Alcotest.fail ("wrong error: " ^ Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "future version accepted");
  (* and version-0 is below the floor *)
  let blob0 = Wire.frame ~magic:B.magic ~version:0 [ (2, payload) ] in
  match B.decode blob0 with
  | Error (Wire.Unsupported_version _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "version 0 accepted"

(* A version-1 probe-profile blob captured when the format shipped; it must
   keep decoding verbatim under every future write-side version bump. The
   golden .bprof fixtures pin the same contract for the current encoder. *)
let v1_probe_text =
  "function f guid=e2d0b8fcf3fc4e4b total=107 head=12 checksum=dead\n\
  \ probe 1 100\n\
  \ probe 3 7\n\
  \ call 2 9ff27cf582c1e086 55\n"

let test_v1_compat () =
  (* re-derive the pinned blob from its pinned text: if the encoder output
     for this input ever changes, the golden rules catch it; if the decoder
     stops accepting it, this does *)
  let p = P.Text_io.of_string v1_probe_text in
  let blob = B.encode p in
  match B.decode blob with
  | Ok p' ->
      Alcotest.(check string) "v1 text preserved" v1_probe_text
        (P.Text_io.to_string p')
  | Error e -> Alcotest.fail (Wire.error_to_string e)

(* --- corruption battery ---------------------------------------------- *)

(* A mutated blob must never decode successfully and never escape the typed
   error channel: [decode] returns [Error _] for every single-bit flip,
   every truncation, and every extension of a valid blob. *)

let reference_blob () =
  let t = PP.create () in
  let fe = PP.get_or_add t (g "hot") ~name:"hot" in
  fe.PP.fe_head <- 3L;
  fe.PP.fe_checksum <- 0xABCDEF123L;
  List.iter (fun (id, c) -> PP.add_probe fe id c) [ (1, 10L); (2, 999L); (7, 1L) ];
  PP.add_call fe 4 (g "callee") 42L;
  let fe2 = PP.get_or_add t (g "cold") ~name:"cold" in
  PP.add_probe fe2 1 0L;
  B.encode (P.Text_io.Probe_prof t)

let check_rejected what s =
  match B.decode s with
  | Error _ -> ()
  | Ok p ->
      Alcotest.failf "%s silently accepted (decoded a %s profile)" what
        (P.Text_io.kind_name (P.Text_io.kind_of p))
  | exception e ->
      Alcotest.failf "%s escaped the typed error channel: %s" what
        (Printexc.to_string e)

let test_bit_flips () =
  let blob = reference_blob () in
  for i = 0 to String.length blob - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string blob in
      Bytes.set b i (Char.chr (Char.code blob.[i] lxor (1 lsl bit)));
      check_rejected
        (Printf.sprintf "bit flip at byte %d bit %d" i bit)
        (Bytes.to_string b)
    done
  done

let test_truncations () =
  let blob = reference_blob () in
  for n = 0 to String.length blob - 1 do
    check_rejected (Printf.sprintf "truncation to %d bytes" n) (String.sub blob 0 n)
  done

let test_extensions () =
  let blob = reference_blob () in
  List.iter
    (fun suffix ->
      check_rejected
        (Printf.sprintf "%d trailing bytes" (String.length suffix))
        (blob ^ suffix))
    [ "\x00"; "\xff"; "junk"; String.make 64 'A' ]

let test_garbage () =
  List.iter
    (fun s -> check_rejected (Printf.sprintf "garbage %S" s) s)
    [ ""; "C"; "CSP"; "CSPB"; "CSPB\x01"; "not a profile at all"; String.make 3 '\xff' ]

(* --- QCheck round-trip properties (mirror Text_io's generators) ------- *)

let fentry_spec_gen =
  QCheck.(
    pair
      (pair (int_range 0 5) (int_range 0 1000))
      (pair
         (small_list (pair (int_range 1 60) (int_range 1 100_000)))
         (small_list (triple (int_range 1 60) (int_range 0 5) (int_range 1 5000)))))

let prop_probe_binary_roundtrip =
  QCheck.Test.make ~name:"probe profiles round-trip through binary" ~count:200
    QCheck.(small_list fentry_spec_gen)
    (fun specs ->
      let t = PP.create () in
      List.iter
        (fun ((fi, head), (probes, calls)) ->
          let fe = PP.get_or_add t (g (fname fi)) ~name:(fname fi) in
          fe.PP.fe_head <- Int64.of_int head;
          fe.PP.fe_checksum <- Int64.of_int (fi * 7919);
          List.iter (fun (id, c) -> PP.add_probe fe id (Int64.of_int c)) probes;
          List.iter
            (fun (site, callee, c) ->
              PP.add_call fe site (g (fname callee)) (Int64.of_int c))
            calls)
        specs;
      rt_ok (P.Text_io.Probe_prof t))

let prop_line_binary_roundtrip =
  QCheck.Test.make ~name:"line profiles round-trip through binary" ~count:200
    QCheck.(small_list fentry_spec_gen)
    (fun specs ->
      let t = LP.create () in
      List.iter
        (fun ((fi, head), (lines, calls)) ->
          let fe = LP.get_or_add t (g (fname fi)) ~name:(fname fi) in
          fe.LP.fe_head <- Int64.of_int head;
          List.iter (fun (l, c) -> LP.add_line fe (l, l mod 3) (Int64.of_int c)) lines;
          List.iter
            (fun (l, callee, c) ->
              LP.add_call fe (l, l mod 3) (g (fname callee)) (Int64.of_int c))
            calls)
        specs;
      rt_ok (P.Text_io.Line_prof t))

let ctx_spec_gen =
  QCheck.(
    pair
      (pair (int_range 0 3) (small_list (pair (int_range 1 9) (int_range 0 3))))
      (pair (small_list (pair (int_range 1 30) (int_range 1 10_000))) bool))

let prop_ctx_binary_roundtrip =
  QCheck.Test.make ~name:"context profiles round-trip through binary" ~count:200
    QCheck.(pair (small_list ctx_spec_gen) (option (int_range 1 5000)))
    (fun (specs, trim) ->
      let t = CP.create () in
      List.iter
        (fun ((root_fi, frames), (probes, inlined)) ->
          let node =
            match frames with
            | [] -> CP.base t (g (fname root_fi)) ~name:(fname root_fi)
            | _ ->
                let path =
                  List.rev
                    (fst
                       (List.fold_left
                          (fun (acc, parent) (site, child_fi) ->
                            ( ((g (fname parent), site), g (fname child_fi),
                               fname child_fi)
                              :: acc,
                              child_fi ))
                          ([], root_fi) frames))
                in
                Option.get (CP.node_at t ~path)
          in
          node.CP.n_inlined <- inlined;
          List.iter
            (fun (id, c) -> PP.add_probe node.CP.n_prof id (Int64.of_int c))
            probes)
        specs;
      (match trim with
      | Some threshold -> ignore (CP.trim_cold t ~threshold:(Int64.of_int threshold))
      | None -> ());
      rt_ok (P.Text_io.Ctx_prof t))

(* --- sample logs ------------------------------------------------------ *)

let log_of_records records =
  let log = SL.create () in
  List.iter
    (fun (lbr, stack) ->
      let lbr = Array.of_list lbr and stack = Array.of_list stack in
      SL.add log ~lbr ~lbr_len:(Array.length lbr) ~stack ~stack_len:(Array.length stack))
    records;
  log

let log_rt_ok log =
  let txt = SL.to_text log in
  let text_ok =
    match SL.of_text txt with
    | Ok log' -> String.equal (SL.to_text log') txt
    | Error _ -> false
  in
  let bin = SL.encode log in
  let bin_ok =
    match SL.decode bin with
    | Ok log' ->
        String.equal (SL.to_text log') txt && String.equal (SL.encode log') bin
    | Error _ -> false
  in
  text_ok && bin_ok

let prop_sample_log_roundtrip =
  QCheck.Test.make ~name:"sample logs round-trip (text and binary)" ~count:200
    QCheck.(
      small_list
        (pair
           (small_list (pair (int_range 0 100_000) (int_range 0 100_000)))
           (small_list (int_range 0 100_000))))
    (fun records -> log_rt_ok (log_of_records records))

let test_sample_log_edges () =
  Alcotest.(check bool) "empty log" true (log_rt_ok (SL.create ()));
  Alcotest.(check bool) "empty lbr and stack" true (log_rt_ok (log_of_records [ ([], []) ]));
  let log = log_of_records [ ([ (max_int, 0) ], [ max_int; 0 ]) ] in
  Alcotest.(check bool) "max-int addresses" true (log_rt_ok log)

let test_sample_log_corruption () =
  let log = log_of_records [ ([ (1, 2); (3, 4) ], [ 10; 20 ]); ([], [ 7 ]) ] in
  let blob = SL.encode log in
  let rejected what s =
    match SL.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s silently accepted" what
    | exception e ->
        Alcotest.failf "%s escaped the typed error channel: %s" what
          (Printexc.to_string e)
  in
  for i = 0 to String.length blob - 1 do
    let b = Bytes.of_string blob in
    Bytes.set b i (Char.chr (Char.code blob.[i] lxor 1));
    rejected (Printf.sprintf "bit flip at byte %d" i) (Bytes.to_string b)
  done;
  for n = 0 to String.length blob - 1 do
    rejected (Printf.sprintf "truncation to %d" n) (String.sub blob 0 n)
  done;
  rejected "trailing bytes" (blob ^ "\x00");
  (* structurally inconsistent record stream behind a valid digest: one
     sample declared, arena empty *)
  let e = Wire.Enc.create () in
  Wire.Enc.varint e 1;
  Wire.Enc.varint e 0;
  rejected "record stream overrun"
    (Wire.frame ~magic:SL.magic ~version:1 [ (1, Wire.Enc.contents e) ]);
  (* bad text forms *)
  let text_rejected what s =
    match SL.of_text s with
    | Error (Wire.Malformed _) -> ()
    | Error e -> Alcotest.failf "%s: unexpected error %s" what (Wire.error_to_string e)
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  text_rejected "missing header" "1 2 3\n";
  text_rejected "count mismatch" "samplelog 2\n0 0\n";
  text_rejected "bad integer" "samplelog 1\n0 x\n";
  text_rejected "short record" "samplelog 1\n2 1 2 0\n"

(* Every single-bit flip of a labeled CSLG v3 blob — record chunks, label
   section, digests — must come back through the typed [Wire] error
   channel. A flip must never surface as an [Ok] log with a different
   labeling: silently mislabeled samples would poison per-tenant slices
   downstream, which is strictly worse than a lost log. *)
let test_labeled_log_corruption () =
  let log = log_of_records [ ([ (1, 2); (3, 4) ], [ 10; 20 ]); ([], [ 7 ]) ] in
  SL.set_label log (S.Label_set.of_list [ ("tenant", "zeta") ]);
  (match log_of_records [ ([ (5, 6) ], [ 30 ]) ] with
  | extra -> SL.iter extra (fun ~lbr ~lbr_len ~stack ~stack_len ->
      SL.add log ~lbr ~lbr_len ~stack ~stack_len));
  let blob = SL.encode ~chunk:2 log in
  Alcotest.(check int) "labeled log frames as v3" 3
    (match SL.framing_version blob with Ok v -> v | Error _ -> -1);
  for i = 0 to String.length blob - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string blob in
      Bytes.set b i (Char.chr (Char.code blob.[i] lxor (1 lsl bit)));
      match SL.decode (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bit flip at byte %d bit %d silently accepted" i bit
      | exception e ->
          Alcotest.failf "bit flip at byte %d bit %d escaped the typed error channel: %s"
            i bit (Printexc.to_string e)
    done
  done;
  (* a v3 frame whose label section is missing entirely must be rejected *)
  let plain = SL.unlabeled log in
  let forced = SL.encode ~frame:`V3 plain in
  (match SL.decode forced with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "forced v3 rejected: %s" (Wire.error_to_string e));
  let v2_bytes_as_v3 =
    (* re-stamp the version byte of the v2 blob to 3: structurally a v3
       frame with no trailing label section *)
    let v2 = SL.encode plain in
    let b = Bytes.of_string v2 in
    Bytes.set b (String.length SL.magic) '\x03';
    Bytes.to_string b
  in
  match SL.decode v2_bytes_as_v3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v3 frame without a label section accepted"

(* --- fingerprints ----------------------------------------------------- *)

let test_fingerprint_delta () =
  let mk c =
    let t = PP.create () in
    let fe = PP.get_or_add t (g "a") ~name:"a" in
    PP.add_probe fe 1 c;
    let fe_b = PP.get_or_add t (g "b") ~name:"b" in
    PP.add_probe fe_b 1 5L;
    P.Text_io.Probe_prof t
  in
  let p1 = mk 10L and p2 = mk 10L and p3 = mk 11L in
  Alcotest.(check bool) "equal profiles, equal merged fp" true
    (Int64.equal (P.Fingerprint.merged p1) (P.Fingerprint.merged p2));
  Alcotest.(check bool) "drift changes merged fp" false
    (Int64.equal (P.Fingerprint.merged p1) (P.Fingerprint.merged p3));
  Alcotest.(check (list int64)) "no drift, empty delta" []
    (P.Fingerprint.delta (P.Fingerprint.per_func p1) (P.Fingerprint.per_func p2));
  Alcotest.(check (list int64)) "delta names exactly the drifted function"
    [ g "a" ]
    (P.Fingerprint.delta (P.Fingerprint.per_func p1) (P.Fingerprint.per_func p3));
  (* binary round-trip preserves fingerprints *)
  match B.decode (B.encode p1) with
  | Ok p1' ->
      Alcotest.(check bool) "fp survives binary round-trip" true
        (Int64.equal (P.Fingerprint.merged p1) (P.Fingerprint.merged p1'))
  | Error e -> Alcotest.fail (Wire.error_to_string e)

let suite =
  ( "binary-io",
    [
      Alcotest.test_case "empty profiles round-trip" `Quick test_empty_profiles;
      Alcotest.test_case "zero and max-int counters" `Quick test_extreme_counters;
      Alcotest.test_case "format sniffing and Io.read" `Quick test_sniffing;
      Alcotest.test_case "future versions rejected" `Quick test_version_rejection;
      Alcotest.test_case "v1 blobs keep decoding" `Quick test_v1_compat;
      Alcotest.test_case "corruption: bit flips" `Quick test_bit_flips;
      Alcotest.test_case "corruption: truncations" `Quick test_truncations;
      Alcotest.test_case "corruption: extensions" `Quick test_extensions;
      Alcotest.test_case "corruption: garbage input" `Quick test_garbage;
      Alcotest.test_case "sample log edge cases" `Quick test_sample_log_edges;
      Alcotest.test_case "sample log corruption" `Quick test_sample_log_corruption;
      Alcotest.test_case "labeled log corruption" `Quick test_labeled_log_corruption;
      Alcotest.test_case "fingerprints and deltas" `Quick test_fingerprint_delta;
      QCheck_alcotest.to_alcotest prop_probe_binary_roundtrip;
      QCheck_alcotest.to_alcotest prop_line_binary_roundtrip;
      QCheck_alcotest.to_alcotest prop_ctx_binary_roundtrip;
      QCheck_alcotest.to_alcotest prop_sample_log_roundtrip;
    ] )
