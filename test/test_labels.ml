(* Request-labeled profiles: label-set canonicalization laws, labeled
   sample-log slicing/framing (CSLG v3), the slice-then-merge byte-identity
   for all three profile shapes at -j 1/2/4, label-set projection and
   re-blending, and the multi-tenant mix generator. *)
module LS = Csspgo_support.Label_set
module Wire = Csspgo_support.Wire
module Vm = Csspgo_vm
module SL = Vm.Sample_log
module P = Csspgo_profile
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads
module Fl = Csspgo_fleet

let qcheck = QCheck_alcotest.to_alcotest

(* --- label sets ------------------------------------------------------- *)

let pair_gen =
  QCheck.(pair (string_small_of Gen.printable) (string_small_of Gen.printable))

let pairs_gen = QCheck.small_list pair_gen

let prop_intern_order_insensitive =
  QCheck.Test.make ~name:"label-set interning is order-insensitive" ~count:200
    QCheck.(pair pairs_gen (int_bound 1000))
    (fun (pairs, seed) ->
      let shuffled = Array.of_list pairs in
      Csspgo_support.Rng.shuffle
        (Csspgo_support.Rng.create (Int64.of_int seed))
        shuffled;
      let a = LS.of_list pairs and b = LS.of_list (Array.to_list shuffled) in
      LS.equal a b && String.equal (LS.canonical a) (LS.canonical b))

let prop_canonical_injective =
  QCheck.Test.make ~name:"canonical keys collide only for equal sets" ~count:200
    QCheck.(pair pairs_gen pairs_gen)
    (fun (pa, pb) ->
      let a = LS.of_list pa and b = LS.of_list pb in
      String.equal (LS.canonical a) (LS.canonical b) = LS.equal a b)

let prop_canonical_roundtrip =
  QCheck.Test.make ~name:"of_canonical inverts canonical" ~count:200 pairs_gen
    (fun pairs ->
      let t = LS.of_list pairs in
      LS.equal t (LS.of_canonical (LS.canonical t)))

let test_non_canonical_rejected () =
  (* Hand-encode two pairs in the wrong order: decoding must raise, not
     silently re-sort into a second spelling of the same set. *)
  let enc pairs =
    let e = Wire.Enc.create () in
    List.iter
      (fun (k, v) ->
        Wire.Enc.string e k;
        Wire.Enc.string e v)
      pairs;
    Wire.Enc.contents e
  in
  let bad = enc [ ("b", "1"); ("a", "1") ] in
  (match LS.of_canonical bad with
  | exception Wire.Error _ -> ()
  | _ -> Alcotest.fail "non-canonical byte order accepted");
  let dup = enc [ ("a", "1"); ("a", "1") ] in
  (match LS.of_canonical dup with
  | exception Wire.Error _ -> ()
  | _ -> Alcotest.fail "duplicate pair accepted");
  match LS.of_canonical "\x05" with
  | exception Wire.Error _ -> ()
  | _ -> Alcotest.fail "truncated bytes accepted"

let test_project_and_display () =
  let t = LS.of_list [ ("tenant", "a"); ("endpoint", "rank"); ("arm", "x") ] in
  Alcotest.(check string) "display" "arm=x,endpoint=rank,tenant=a" (LS.to_string t);
  let p = LS.project t ~keys:[ "tenant" ] in
  Alcotest.(check string) "projected" "tenant=a" (LS.to_string p);
  Alcotest.(check bool) "project to nothing" true
    (LS.is_empty (LS.project t ~keys:[ "nope" ]));
  (match LS.of_string "tenant=a,endpoint=rank,arm=x" with
  | Ok t' -> Alcotest.(check bool) "parse display" true (LS.equal t t')
  | Error e -> Alcotest.fail e);
  match LS.of_string "-" with
  | Ok e -> Alcotest.(check bool) "dash is empty" true (LS.is_empty e)
  | Error e -> Alcotest.fail e

(* --- labeled sample logs ---------------------------------------------- *)

let label_pool =
  [|
    LS.empty;
    LS.of_list [ ("tenant", "a") ];
    LS.of_list [ ("tenant", "b") ];
    LS.of_list [ ("tenant", "a"); ("endpoint", "x") ];
  |]

(* Records paired with a label index into the pool. *)
let labeled_records_gen =
  QCheck.(
    small_list
      (pair
         (pair
            (small_list (pair (int_range 0 100_000) (int_range 0 100_000)))
            (small_list (int_range 0 100_000)))
         (int_bound (Array.length label_pool - 1))))

let log_of_labeled records =
  let log = SL.create () in
  List.iter
    (fun ((lbr, stack), li) ->
      SL.set_label log label_pool.(li);
      let lbr = Array.of_list lbr and stack = Array.of_list stack in
      SL.add log ~lbr ~lbr_len:(Array.length lbr) ~stack
        ~stack_len:(Array.length stack))
    records;
  log

let counts_sig log =
  String.concat ";"
    (List.map
       (fun (ls, n) -> Printf.sprintf "%s:%d" (LS.to_string ls) n)
       (SL.label_counts log))

let prop_labeled_roundtrip =
  QCheck.Test.make ~name:"labeled logs round-trip through CSLG v3" ~count:120
    QCheck.(pair (int_range 1 7) labeled_records_gen)
    (fun (chunk, records) ->
      let log = log_of_labeled records in
      let blob = SL.encode ~chunk log in
      let expect_v = if SL.is_labeled log then 3 else 2 in
      (match SL.framing_version blob with
      | Ok v when v = expect_v -> ()
      | Ok v -> QCheck.Test.fail_reportf "framed v%d, expected v%d" v expect_v
      | Error _ -> QCheck.Test.fail_report "framing_version failed");
      match SL.decode blob with
      | Error _ -> QCheck.Test.fail_report "decode failed"
      | Ok log' ->
          String.equal (SL.to_text log') (SL.to_text log)
          && String.equal (counts_sig log') (counts_sig log)
          && String.equal (SL.encode ~chunk log') blob)

let prop_unlabeled_framing_unchanged =
  QCheck.Test.make
    ~name:"label-free logs frame as v2, byte-identical to pre-label format"
    ~count:120
    QCheck.(pair (int_range 1 7) labeled_records_gen)
    (fun (chunk, records) ->
      (* Same records streamed with labels vs. with none: stripping labels
         must give the exact v2 bytes, and a forced-v3 detour must decode
         back to them (the lossless downgrade). *)
      let labeled = log_of_labeled records in
      let plain = log_of_labeled (List.map (fun (r, _) -> (r, 0)) records) in
      let v2 = SL.encode ~chunk plain in
      (match SL.framing_version v2 with
      | Ok 2 -> ()
      | _ -> QCheck.Test.fail_report "unlabeled log did not frame as v2");
      if not (String.equal (SL.encode ~chunk (SL.unlabeled labeled)) v2) then
        QCheck.Test.fail_report "unlabeled copy encodes differently";
      let v3 = SL.encode ~chunk ~frame:`V3 plain in
      (match SL.framing_version v3 with
      | Ok 3 -> ()
      | _ -> QCheck.Test.fail_report "forced v3 did not frame as v3");
      match SL.decode v3 with
      | Error _ -> QCheck.Test.fail_report "forced v3 decode failed"
      | Ok back -> String.equal (SL.encode ~chunk back) v2)

let prop_slices_partition =
  QCheck.Test.make ~name:"label slices partition the log" ~count:120
    labeled_records_gen
    (fun records ->
      let log = log_of_labeled records in
      let slices = SL.slice_by_label log in
      let total =
        List.fold_left (fun a (_, s) -> a + SL.n_samples s) 0 slices
      in
      if total <> SL.n_samples log then
        QCheck.Test.fail_report "slice sample counts do not sum";
      List.iter
        (fun (ls, s) ->
          (match SL.label_counts s with
          | [ (ls', n) ] ->
              if not (LS.equal ls ls') || n <> SL.n_samples s then
                QCheck.Test.fail_report "slice is not single-labeled"
          | [] -> if SL.n_samples s <> 0 then QCheck.Test.fail_report "empty runs"
          | _ -> QCheck.Test.fail_report "slice carries several labels");
          (* The slice's records are exactly the stream's records under
             that label, in order. *)
          let expect =
            List.filter_map
              (fun ((r, li) : _ * int) ->
                if LS.equal label_pool.(li) ls then Some r else None)
              records
          in
          let expect_log =
            log_of_labeled (List.map (fun r -> (r, 0)) expect)
          in
          if not (String.equal (SL.to_text s) (SL.to_text expect_log)) then
            QCheck.Test.fail_report "slice records differ from filtered stream")
        slices;
      true)

let prop_chunks_and_append_carry_labels =
  QCheck.Test.make ~name:"chunking, splitting and appending preserve labels"
    ~count:120
    QCheck.(pair (int_range 1 7) (pair labeled_records_gen labeled_records_gen))
    (fun (chunk, (ra, rb)) ->
      let a = log_of_labeled ra and b = log_of_labeled rb in
      (* decode_chunks: per-chunk labels reassemble to the whole. *)
      (match SL.decode_chunks (SL.encode ~chunk a) with
      | Error _ -> QCheck.Test.fail_report "decode_chunks failed"
      | Ok parts ->
          let re = SL.create () in
          List.iter (fun p -> SL.append ~into:re p) parts;
          if
            not
              (String.equal (counts_sig re) (counts_sig a)
              && String.equal (SL.to_text re) (SL.to_text a))
          then QCheck.Test.fail_report "chunked labels do not reassemble");
      (* split carries labels the same way. *)
      let re = SL.create () in
      List.iter (fun p -> SL.append ~into:re p) (SL.split ~chunk a);
      if not (String.equal (counts_sig re) (counts_sig a)) then
        QCheck.Test.fail_report "split loses labels";
      (* append remaps intern ids across logs. *)
      let ab = SL.create () in
      SL.append ~into:ab a;
      SL.append ~into:ab b;
      let whole = log_of_labeled (ra @ rb) in
      String.equal (counts_sig ab) (counts_sig whole)
      && String.equal (SL.to_text ab) (SL.to_text whole))

let test_label_free_is_implicit_slice () =
  let log = SL.create () in
  let lbr = [| (1, 2) |] and stack = [| 3 |] in
  for _ = 1 to 5 do
    SL.add log ~lbr ~lbr_len:1 ~stack ~stack_len:1
  done;
  Alcotest.(check bool) "not labeled" false (SL.is_labeled log);
  (match SL.label_counts log with
  | [ (ls, 5) ] when LS.is_empty ls -> ()
  | _ -> Alcotest.fail "label-free log is not a single implicit slice");
  match SL.slice_by_label log with
  | [ (ls, s) ] when LS.is_empty ls && SL.n_samples s = 5 -> ()
  | _ -> Alcotest.fail "slice_by_label on label-free log"

let test_label_section_corruption () =
  let log =
    log_of_labeled [ (([ (1, 2) ], [ 3 ]), 1); (([ (4, 5) ], [ 6 ]), 2) ]
  in
  let blob = SL.encode log in
  Alcotest.(check bool) "labeled" true (SL.is_labeled log);
  (* Every single-bit flip must produce a typed error or decode to a log
     whose labels equal the original — never silently different labels. *)
  let orig = counts_sig log in
  let flips = ref 0 and rejected = ref 0 in
  String.iteri
    (fun i _ ->
      for bit = 0 to 7 do
        let b = Bytes.of_string blob in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        incr flips;
        match SL.decode (Bytes.to_string b) with
        | Error _ -> incr rejected
        | Ok log' ->
            if not (String.equal (counts_sig log') orig) then
              Alcotest.failf "bit flip at byte %d bit %d mislabeled samples" i
                bit
      done)
    blob;
  Alcotest.(check bool) "some flips rejected" true (!rejected > 0)

(* --- mix generation --------------------------------------------------- *)

let small_mix ?(requests = 6) ?(diurnal_period = 0) ?(seed = 11L) () =
  W.Mix.make ~seed ~requests ~diurnal_period
    [
      { W.Mix.t_name = "acme"; t_workload = W.Suite.adfinder; t_weight = 3 };
      { W.Mix.t_name = "zeta"; t_workload = W.Suite.haas; t_weight = 1 };
    ]

let test_mix_composes () =
  let mix = small_mix () in
  Alcotest.(check int) "stream length" 6 (List.length mix.W.Mix.mx_requests);
  Alcotest.(check int) "counts sum" 6
    (List.fold_left (fun a (_, n) -> a + n) 0 mix.W.Mix.mx_counts);
  (* Determinism: same inputs, byte-identical mix. *)
  let mix' = small_mix () in
  Alcotest.(check string) "source deterministic"
    mix.W.Mix.mx_workload.D.w_source mix'.W.Mix.mx_workload.D.w_source;
  (* The composed program compiles and every request runs clean. *)
  let prog = Csspgo_frontend.Lower.compile mix.W.Mix.mx_workload.D.w_source in
  let bin = Csspgo_codegen.Emit.emit ~options:D.default_options.D.emit_opts prog in
  List.iter
    (fun ((spec : D.run_spec), ls) ->
      Alcotest.(check bool) "request labeled" false (LS.is_empty ls);
      ignore
        (Vm.Machine.run ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args
           bin ~entry:"main"))
    mix.W.Mix.mx_requests;
  List.iter
    (fun (_, specs) ->
      List.iter
        (fun (spec : D.run_spec) ->
          ignore
            (Vm.Machine.run ~globals_init:spec.D.rs_globals
               ~args:spec.D.rs_args bin ~entry:"main"))
        specs)
    mix.W.Mix.mx_tenant_evals

let test_mix_diurnal_drifts () =
  (* With a diurnal period, the first and second half of a long stream see
     different tenant mixes (the wave rotates dominance). *)
  let mix = small_mix ~requests:64 ~diurnal_period:32 () in
  let names =
    List.map (fun (_, ls) -> Option.get (LS.find ls W.Mix.tenant_key))
      mix.W.Mix.mx_requests
  in
  let count name l =
    List.length (List.filter (String.equal name) l)
  in
  let half = List.filteri (fun i _ -> i < 32) names
  and rest = List.filteri (fun i _ -> i >= 32) names in
  Alcotest.(check bool) "mix drifts between halves" true
    (count "acme" half <> count "acme" rest)

(* --- slice/merge identity over the full pipeline ---------------------- *)

let options = { D.default_options with D.trim_threshold = 0L }

let mix_log mix =
  (* Single-instance labeled serving at full duty: the log is the whole
     stream's samples with per-request labels. *)
  let shape = Fl.Build.Ctx in
  let b =
    Fl.Build.profiling_build ~options ~shape
      ~source:mix.W.Mix.mx_workload.D.w_source
  in
  let log = ref (SL.create ()) in
  let _ =
    Fl.Instance.serve_labeled
      {
        Fl.Instance.ic_instance = 0;
        ic_version = 0;
        ic_duty = 1.0;
        ic_batch_requests = max 1 (List.length mix.W.Mix.mx_requests);
        ic_seed = 5L;
      }
      ~pmu:options.D.pmu ~bin:b.Fl.Build.vb_bin
      ~entry:mix.W.Mix.mx_workload.D.w_entry ~requests:mix.W.Mix.mx_requests
      ~ship:(fun batch ->
        match SL.decode batch.Fl.Instance.b_blob with
        | Ok l -> SL.append ~into:!log l
        | Error _ -> Alcotest.fail "batch decode failed")
  in
  !log

let profile_sig = P.Text_io.to_string

let test_slice_merge_identity () =
  let mix = small_mix ~requests:4 () in
  let log = mix_log mix in
  Alcotest.(check bool) "stream is labeled" true (SL.is_labeled log);
  List.iter
    (fun shape ->
      let b =
        Fl.Build.profiling_build ~options ~shape
          ~source:mix.W.Mix.mx_workload.D.w_source
      in
      let serial, serial_flat = Fl.Build.correlate ~options ~shape b log in
      let j1 = Fl.Build.correlate_labeled ~jobs:1 ~options ~shape b log in
      List.iter
        (fun jobs ->
          let l = Fl.Build.correlate_labeled ~jobs ~options ~shape b log in
          Alcotest.(check string)
            (Printf.sprintf "%s blend identical at -j %d"
               (Fl.Build.shape_name shape) jobs)
            (profile_sig serial) (profile_sig l.Fl.Build.lc_blend);
          (match (serial_flat, l.Fl.Build.lc_flat) with
          | None, None -> ()
          | Some a, Some b' ->
              Alcotest.(check string) "flat identical"
                (P.Text_io.to_string (P.Text_io.Probe_prof a))
                (P.Text_io.to_string (P.Text_io.Probe_prof b'))
          | _ -> Alcotest.fail "flat presence differs");
          Alcotest.(check string)
            (Printf.sprintf "slices identical at -j %d" jobs)
            (P.Labels.to_string j1.Fl.Build.lc_slices)
            (P.Labels.to_string l.Fl.Build.lc_slices))
        [ 1; 2; 4 ];
      (* Probe and ctx shapes are additive at profile level: merging the
         slices at weight 1 reconstructs the blend byte-for-byte. *)
      if shape <> Fl.Build.Lines then
        Alcotest.(check string)
          (Fl.Build.shape_name shape ^ " slices re-merge to the blend")
          (profile_sig serial)
          (profile_sig (P.Labels.blend j1.Fl.Build.lc_slices));
      (* Slice weights are the observed per-label sample counts. *)
      let counts = SL.label_counts log in
      List.iter
        (fun s ->
          let expect =
            List.assoc_opt s.P.Labels.sl_label
              (List.map (fun (l', n) -> (l', Int64.of_int n)) counts)
          in
          match expect with
          | Some n ->
              Alcotest.(check int64) "slice weight" n s.P.Labels.sl_weight
          | None -> Alcotest.fail "slice for unobserved label")
        (P.Labels.slices j1.Fl.Build.lc_slices))
    [ Fl.Build.Lines; Fl.Build.Probes; Fl.Build.Ctx ]

let test_single_tenant_degenerate () =
  (* One tenant: exactly one slice, and (with trimming off) the slice IS
     the blend. *)
  let mix =
    W.Mix.make ~seed:3L ~requests:3
      [ { W.Mix.t_name = "solo"; t_workload = W.Suite.adfinder; t_weight = 1 } ]
  in
  let log = mix_log mix in
  let b =
    Fl.Build.profiling_build ~options ~shape:Fl.Build.Ctx
      ~source:mix.W.Mix.mx_workload.D.w_source
  in
  let l = Fl.Build.correlate_labeled ~options ~shape:Fl.Build.Ctx b log in
  Alcotest.(check int) "one slice" 1 (P.Labels.n_slices l.Fl.Build.lc_slices);
  match P.Labels.slices l.Fl.Build.lc_slices with
  | [ s ] ->
      Alcotest.(check string) "slice equals blend"
        (profile_sig l.Fl.Build.lc_blend)
        (profile_sig s.P.Labels.sl_profile)
  | _ -> assert false

let test_labels_container_laws () =
  let mix = small_mix ~requests:4 () in
  let log = mix_log mix in
  let b =
    Fl.Build.profiling_build ~options ~shape:Fl.Build.Probes
      ~source:mix.W.Mix.mx_workload.D.w_source
  in
  let l = Fl.Build.correlate_labeled ~options ~shape:Fl.Build.Probes b log in
  let bundle = l.Fl.Build.lc_slices in
  (* Text round-trip. *)
  (match P.Labels.of_string (P.Labels.to_string bundle) with
  | Ok bundle' ->
      Alcotest.(check string) "labeled-profile text round-trips"
        (P.Labels.to_string bundle) (P.Labels.to_string bundle')
  | Error e -> Alcotest.fail e);
  (* Projection onto the tenant key: mass is conserved and blending the
     projection equals blending the original (merge associativity). *)
  let proj = P.Labels.project bundle ~keys:[ W.Mix.tenant_key ] in
  Alcotest.(check int64) "projection conserves mass"
    (P.Labels.total_weight bundle) (P.Labels.total_weight proj);
  Alcotest.(check string) "projection blend unchanged"
    (profile_sig (P.Labels.blend bundle))
    (profile_sig (P.Labels.blend proj));
  List.iter
    (fun s ->
      Alcotest.(check bool) "projected label has only tenant key" true
        (List.for_all
           (fun (k, _) -> String.equal k W.Mix.tenant_key)
           (LS.to_list s.P.Labels.sl_label)))
    (P.Labels.slices proj);
  (* Re-blending a single label at its weight-1 reproduces that slice. *)
  match P.Labels.slices proj with
  | s :: _ ->
      Alcotest.(check string) "reblend singleton"
        (profile_sig s.P.Labels.sl_profile)
        (profile_sig (P.Labels.reblend proj [ (1L, s.P.Labels.sl_label) ]))
  | [] -> Alcotest.fail "no projected slices"

let suite =
  ( "labels",
    [
      qcheck prop_intern_order_insensitive;
      qcheck prop_canonical_injective;
      qcheck prop_canonical_roundtrip;
      Alcotest.test_case "non-canonical label bytes rejected" `Quick
        test_non_canonical_rejected;
      Alcotest.test_case "projection and display forms" `Quick
        test_project_and_display;
      qcheck prop_labeled_roundtrip;
      qcheck prop_unlabeled_framing_unchanged;
      qcheck prop_slices_partition;
      qcheck prop_chunks_and_append_carry_labels;
      Alcotest.test_case "label-free log is one implicit slice" `Quick
        test_label_free_is_implicit_slice;
      Alcotest.test_case "label-section bit flips never mislabel" `Quick
        test_label_section_corruption;
      Alcotest.test_case "mix composes and runs" `Quick test_mix_composes;
      Alcotest.test_case "diurnal mixes drift" `Quick test_mix_diurnal_drifts;
      Alcotest.test_case "slice/merge identity, all shapes, -j 1/2/4" `Slow
        test_slice_merge_identity;
      Alcotest.test_case "single-tenant mix degenerates to one slice" `Quick
        test_single_tenant_degenerate;
      Alcotest.test_case "label-container projection and re-blend laws" `Quick
        test_labels_container_laws;
    ] )
