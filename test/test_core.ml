(* The paper's contribution: probes, checksums/drift, correlation,
   Algorithm 1 reconstruction, missing frames, pre-inliner, annotation,
   quality metric, driver end-to-end. *)
module F = Csspgo_frontend
module Ir = Csspgo_ir
module I = Ir.Instr
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Mach = Cg.Mach
module Vm = Csspgo_vm
module P = Csspgo_profile
module PP = P.Probe_profile
module CP = P.Ctx_profile
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads
open Csspgo_support

let probe_count_in (p : Ir.Program.t) =
  let n = ref 0 in
  Ir.Program.iter_funcs
    (fun f ->
      Ir.Func.iter_blocks
        (fun b -> Vec.iter (fun i -> if I.is_probe i then incr n) b.Ir.Block.instrs)
        f)
    p;
  !n

let test_probe_insertion () =
  let p = F.Lower.compile W.Suite.vecop_example in
  Core.Pseudo_probe.insert p;
  Ir.Verify.check_exn p;
  Alcotest.(check bool) "probes present" true (probe_count_in p > 0);
  (* Every reachable block has a block probe, entry probe is #1. *)
  Ir.Program.iter_funcs
    (fun f ->
      Alcotest.(check int)
        (f.Ir.Func.name ^ " entry probe is #1")
        1
        (Ir.Block.probe_id (Ir.Func.entry_block f));
      Ir.Func.iter_blocks
        (fun b ->
          if Ir.Block.probe_id b = 0 then
            Alcotest.failf "%s/bb%d lacks a block probe" f.Ir.Func.name b.Ir.Block.id)
        f;
      (* Every call has a callsite probe. *)
      Ir.Func.iter_blocks
        (fun b ->
          Vec.iter
            (fun (i : I.t) ->
              match i.I.op with
              | I.Call { c_probe; _ } when c_probe = 0 -> Alcotest.fail "call without probe"
              | _ -> ())
            b.Ir.Block.instrs)
        f)
    p;
  Alcotest.(check bool) "double insertion rejected" true
    (match Core.Pseudo_probe.insert p with
    | exception Invalid_argument _ -> true
    | _ -> false)

let drift_base = "fn hot(a) {\n  let x = a * 3;\n  return x + 1;\n}\nfn main(a) { return hot(a); }"

let test_checksum_drift () =
  let checksum_of src =
    let p = F.Lower.compile src in
    Core.Pseudo_probe.insert p;
    (Ir.Program.func p "hot").Ir.Func.checksum
  in
  let base = checksum_of drift_base in
  (* Comment-only edits keep the checksum (the §III.A source-drift story). *)
  let with_comment =
    "fn hot(a) {\n  // a helpful comment\n  let x = a * 3;\n  return x + 1;\n}\nfn main(a) { return hot(a); }"
  in
  Alcotest.(check int64) "comment-only edit keeps checksum" base (checksum_of with_comment);
  (* Straight-line edits keep the CFG, and thus the checksum. *)
  let with_stmt =
    "fn hot(a) {\n  let y = a + 0;\n  let x = a * 3;\n  return x + y - a;\n}\nfn main(a) { return hot(a); }"
  in
  Alcotest.(check int64) "straight-line edit keeps checksum" base (checksum_of with_stmt);
  (* A control-flow change must invalidate it. *)
  let with_if =
    "fn hot(a) {\n  let x = a * 3;\n  if (a > 0) { x = x + 1; }\n  return x + 1;\n}\nfn main(a) { return hot(a); }"
  in
  Alcotest.(check bool) "CFG change breaks checksum" true
    (not (Int64.equal base (checksum_of with_if)))

let test_stale_profile_rejected () =
  (* Profile collected on one CFG must be rejected on a different CFG. *)
  let mk src =
    let p = F.Lower.compile src in
    Core.Pseudo_probe.insert p;
    p
  in
  let old_p = mk drift_base in
  let profile = PP.create () in
  let guid = (Ir.Program.func old_p "hot").Ir.Func.guid in
  let fe = PP.get_or_add profile guid ~name:"hot" in
  fe.PP.fe_checksum <- (Ir.Program.func old_p "hot").Ir.Func.checksum;
  PP.add_probe fe 1 100L;
  let new_p =
    mk
      "fn hot(a) {\n  let x = a * 3;\n  if (a > 0) { x = x + 1; }\n  return x + 1;\n}\nfn main(a) { return hot(a); }"
  in
  let stales = Core.Annotate.probes profile new_p in
  Alcotest.(check int) "one stale function" 1 (List.length stales);
  Alcotest.(check string) "it is hot" "hot" (List.hd stales).Core.Annotate.sf_name;
  Alcotest.(check bool) "hot left unannotated" false
    (Ir.Program.func new_p "hot").Ir.Func.annotated

let run_probe_profiling src args =
  let p = F.Lower.compile src in
  Core.Pseudo_probe.insert p;
  let refp = Ir.Program.copy p in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 101 })
      bin ~entry:"main" ~args
  in
  (refp, bin, r.Vm.Machine.samples)

let test_probe_correlation_sums_copies () =
  (* A loop that static unrolling duplicates: probe counts must reflect the
     true frequency (copies summed), the §III.A code-duplication claim. *)
  let src =
    "fn main(n) { let s = 0; let i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }"
  in
  let refp, bin, samples = run_probe_profiling src [ 5000L ] in
  (* the binary must contain duplicated probes (same id twice) *)
  let ids = Hashtbl.create 8 in
  let dup = ref false in
  Array.iter
    (fun (pr : Mach.probe_rec) ->
      let key = (pr.Mach.pr_func, pr.Mach.pr_id) in
      if Hashtbl.mem ids key then dup := true else Hashtbl.replace ids key ())
    bin.Mach.probes;
  Alcotest.(check bool) "unroll duplicated probes" true !dup;
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with
    | Some f -> f.Ir.Func.checksum
    | None -> 0L
  in
  let prof = Core.Probe_corr.correlate ~checksum_of bin samples in
  let main_fe = Option.get (PP.get prof (Ir.Guid.of_name "main")) in
  (* Loop-body probe count must be close to entry * n-scale: at least find a
     probe whose count dwarfs probe #1's. *)
  let p1 = PP.probe_count main_fe 1 in
  let hottest = Hashtbl.fold (fun _ c acc -> Int64.max c acc) main_fe.PP.fe_probes 0L in
  Alcotest.(check bool) "loop probe much hotter than entry" true
    (Int64.to_float hottest > 50. *. Int64.to_float (Int64.max p1 1L))

let cs_src = {|
fn leaf_a(x) { let s = 0; let i = 0; while (i < 40) { s = s + x * i; i = i + 1; } return s; }
fn leaf_b(x) { let s = 0; let i = 0; while (i < 40) { s = s + x + i; i = i + 1; } return s; }
fn dispatch(x, k) {
  if (k == 0) { return leaf_a(x); }
  return leaf_b(x);
}
fn caller_a(x) { return dispatch(x, 0); }
fn caller_b(x) { return dispatch(x, 1); }
fn main(n) {
  let t = 0;
  let r = 0;
  while (t < n) {
    r = r + caller_a(t) + caller_b(t);
    t = t + 1;
  }
  return r;
}
|}

let reconstruct_cs () =
  let p = F.Lower.compile cs_src in
  Core.Pseudo_probe.insert p;
  let refp = Ir.Program.copy p in
  (* keep call structure: no inlining *)
  Opt.Pass.optimize ~config:{ Opt.Config.o2_nopgo with inline_mode = Opt.Config.Inline_none } p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 101 })
      bin ~entry:"main" ~args:[ 120L ]
  in
  let name_of g = Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp g) in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  (* dispatch makes its calls in tail position, so the TCE missing-frame
     inferrer is required for complete contexts. *)
  let missing = Core.Missing_frame.build bin r.Vm.Machine.samples in
  Core.Ctx_reconstruct.reconstruct ~name_of ~missing ~checksum_of bin r.Vm.Machine.samples

let test_ctx_reconstruction_separates_contexts () =
  (* The Fig. 3 story: dispatch under caller_a only reaches leaf_a, and
     under caller_b only leaf_b. Algorithm 1 must recover that. *)
  let trie, stats = reconstruct_cs () in
  Alcotest.(check int) "no misaligned samples with PEBS" 0
    stats.Core.Ctx_reconstruct.st_dropped_misaligned;
  let g = Ir.Guid.of_name in
  let ctx_has_samples leaf pred =
    match CP.find_node trie ~leaf:(g leaf) pred with
    | Some n -> Int64.compare n.CP.n_prof.PP.fe_total 0L > 0
    | None -> false
  in
  let under caller ctx = List.exists (fun (f, _) -> Ir.Guid.equal f (g caller)) ctx in
  Alcotest.(check bool) "leaf_a under caller_a" true
    (ctx_has_samples "leaf_a" (under "caller_a"));
  Alcotest.(check bool) "leaf_b under caller_b" true
    (ctx_has_samples "leaf_b" (under "caller_b"));
  Alcotest.(check bool) "leaf_a never under caller_b" false
    (ctx_has_samples "leaf_a" (under "caller_b"));
  Alcotest.(check bool) "leaf_b never under caller_a" false
    (ctx_has_samples "leaf_b" (under "caller_a"))

let test_ctx_totals_match_flat () =
  (* Merging every context into base must agree with flat probe correlation
     on per-function totals (within the extra newest-run attribution). *)
  let p = F.Lower.compile cs_src in
  Core.Pseudo_probe.insert p;
  let refp = Ir.Program.copy p in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 101 })
      bin ~entry:"main" ~args:[ 120L ]
  in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let flat = Core.Probe_corr.correlate ~checksum_of bin r.Vm.Machine.samples in
  let trie, _ = Core.Ctx_reconstruct.reconstruct ~checksum_of bin r.Vm.Machine.samples in
  ignore (CP.trim_cold trie ~threshold:Int64.max_int);
  let flat_total = PP.total_samples flat in
  let trie_total = CP.total_samples trie in
  let ratio = Int64.to_float trie_total /. Int64.to_float (Int64.max flat_total 1L) in
  if ratio < 0.95 || ratio > 1.15 then
    Alcotest.failf "context totals diverge from flat: %.3f (flat=%Ld trie=%Ld)" ratio
      flat_total trie_total

let tail_call_src = {|
fn worker(x) { let s = 0; let i = 0; while (i < 60) { s = s + x * i; i = i + 1; } return s; }
fn springboard(x) { return worker(x + 1); }
fn main(n) {
  let t = 0;
  let k = 0;
  while (k < n) {
    t = t + springboard(k);
    k = k + 1;
  }
  return t;
}
|}

let test_missing_frame_inference () =
  (* springboard tail-calls worker, so stack samples in worker skip it; the
     tail-call graph must recover the gap (>2/3 recovered in the paper). *)
  let p = F.Lower.compile tail_call_src in
  Core.Pseudo_probe.insert p;
  let refp = Ir.Program.copy p in
  Opt.Pass.optimize ~config:{ Opt.Config.o2_nopgo with inline_mode = Opt.Config.Inline_none } p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  (* confirm a tail call was emitted *)
  let has_tail =
    Array.exists
      (fun (i : Mach.inst) -> match i.Mach.i_op with Mach.MTail_call _ -> true | _ -> false)
      bin.Mach.insts
  in
  Alcotest.(check bool) "TCE fired" true has_tail;
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 101 })
      bin ~entry:"main" ~args:[ 100L ]
  in
  let mf = Core.Missing_frame.build bin r.Vm.Machine.samples in
  Alcotest.(check bool) "tail edges found" true (Core.Missing_frame.n_edges mf > 0);
  let g = Ir.Guid.of_name in
  (match Core.Missing_frame.resolve mf ~from_func:(g "springboard") ~to_func:(g "worker") with
  | Some [ _addr ] -> ()
  | Some [] -> Alcotest.fail "expected a one-hop chain"
  | Some _ -> Alcotest.fail "chain too long"
  | None -> Alcotest.fail "unique path not found");
  (* Reconstruction with the inferrer should resolve gaps. *)
  let name_of gd = Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp gd) in
  let checksum_of gd =
    match Ir.Program.find_func_by_guid refp gd with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let trie, stats =
    Core.Ctx_reconstruct.reconstruct ~name_of ~missing:mf ~checksum_of bin r.Vm.Machine.samples
  in
  Alcotest.(check bool) "gaps resolved" true (stats.Core.Ctx_reconstruct.st_gaps_resolved > 0);
  (* worker's context should include springboard *)
  let found =
    CP.find_node trie ~leaf:(g "worker") (fun ctx ->
        List.exists (fun (f, _) -> Ir.Guid.equal f (g "springboard")) ctx)
  in
  Alcotest.(check bool) "springboard frame recovered" true (found <> None)

let test_size_extract () =
  let p = F.Lower.compile "fn tiny(x) { return x + 1; }\nfn main(a) { return tiny(a) * 2; }" in
  Core.Pseudo_probe.insert p;
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let sizes = Core.Size_extract.compute bin in
  (* tiny got inlined into main: its context size exists; main has a base size *)
  let g = Ir.Guid.of_name in
  Alcotest.(check bool) "main base size" true
    (match Core.Size_extract.base_size sizes (g "main") with Some s -> s > 0 | None -> false);
  Alcotest.(check bool) "tiny has some context size" true
    (Core.Size_extract.avg_inline_size sizes (g "tiny") <> None)

let test_preinliner_marks_hot_chain () =
  let w = W.Suite.adretriever in
  let pbin, samples =
    (* probed profiling build sampled over the training inputs *)
    let options = D.default_options in
    let prog = F.Lower.compile w.D.w_source in
    Core.Pseudo_probe.insert prog;
    Opt.Pass.optimize ~config:options.D.opt_profiling prog;
    let bin = Cg.Emit.emit ~options:options.D.emit_opts prog in
    let log = Vm.Sample_log.create () in
    List.iter
      (fun (spec : D.run_spec) ->
        ignore
          (Vm.Machine.run ~pmu:(Some options.D.pmu)
             ~sink:(Vm.Sample_log.sink log) ~globals_init:spec.D.rs_globals
             ~args:spec.D.rs_args bin ~entry:w.D.w_entry))
      w.D.w_train;
    (bin, Vm.Sample_log.to_samples log)
  in
  let refp =
    let p = F.Lower.compile w.D.w_source in
    Core.Pseudo_probe.insert p;
    p
  in
  let name_of g = Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp g) in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let trie, _ = Core.Ctx_reconstruct.reconstruct ~name_of ~checksum_of pbin samples in
  ignore (CP.trim_cold trie ~threshold:8L);
  let sizes = Core.Size_extract.compute pbin in
  let decisions = Core.Preinliner.run trie sizes in
  Alcotest.(check bool) "some decisions" true (decisions <> []);
  (* hottest chain: probe under lookup_batch *)
  Alcotest.(check bool) "probe inlined somewhere" true
    (List.exists
       (fun (d : Core.Preinliner.decision) -> String.equal d.Core.Preinliner.d_callee_name "probe")
       decisions);
  (* after the run, unmarked contexts are merged: every remaining context
     node with samples must be marked inlined *)
  CP.iter_nodes trie (fun ctx node ->
      if ctx <> [] && Int64.compare node.CP.n_prof.PP.fe_total 0L > 0 && not node.CP.n_inlined
      then Alcotest.fail "unmarked context retained samples after pre-inliner")

let test_quality_metric () =
  let mk counts =
    let p = F.Lower.compile "fn main(a) { if (a > 0) { return 1; } return 2; }" in
    Ir.Program.iter_funcs
      (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f))
      p;
    let f = Ir.Program.func p "main" in
    List.iteri
      (fun i c ->
        match Ir.Func.find_block f i with
        | Some b -> b.Ir.Block.count <- c
        | None -> ())
      counts;
    f.Ir.Func.annotated <- true;
    p
  in
  let truth = mk [ 100L; 90L; 10L ] in
  Alcotest.(check (float 0.0001)) "identical = 1" 1.0
    (Core.Quality.block_overlap ~truth (mk [ 100L; 90L; 10L ]));
  Alcotest.(check (float 0.0001)) "scaled identical = 1" 1.0
    (Core.Quality.block_overlap ~truth (mk [ 200L; 180L; 20L ]));
  let skewed = Core.Quality.block_overlap ~truth (mk [ 100L; 10L; 90L ]) in
  Alcotest.(check bool) "skewed < 1" true (skewed < 0.7)

(* Degenerate inputs the report surface feeds the metric: unexecuted
   programs, single-block functions, and profiles at very different sample
   rates must not divide by zero or reward count magnitude. *)
let test_quality_edge_cases () =
  let mk counts =
    let p = F.Lower.compile "fn main(a) { if (a > 0) { return 1; } return 2; }" in
    Ir.Program.iter_funcs
      (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f))
      p;
    let f = Ir.Program.func p "main" in
    List.iteri
      (fun i c ->
        match Ir.Func.find_block f i with
        | Some b -> b.Ir.Block.count <- c
        | None -> ())
      counts;
    f.Ir.Func.annotated <- true;
    p
  in
  let main p = Ir.Program.func p "main" in
  (* zero total count on either side is "no data", not overlap 0 *)
  Alcotest.(check bool) "zero-count truth -> None" true
    (Core.Quality.func_overlap ~truth:(main (mk [ 0L; 0L; 0L ]))
       (main (mk [ 1L; 1L; 1L ]))
    = None);
  Alcotest.(check bool) "zero-count candidate -> None" true
    (Core.Quality.func_overlap ~truth:(main (mk [ 1L; 1L; 1L ]))
       (main (mk [ 0L; 0L; 0L ]))
    = None);
  Alcotest.(check (float 0.0001)) "both sides unexecuted -> 0.0" 0.0
    (Core.Quality.block_overlap ~truth:(mk [ 0L; 0L; 0L ]) (mk [ 0L; 0L; 0L ]));
  (* a single executed block always overlaps itself fully *)
  let single counts =
    let p = F.Lower.compile "fn main(a) { return a; }" in
    let f = Ir.Program.func p "main" in
    List.iteri
      (fun i c ->
        match Ir.Func.find_block f i with
        | Some b -> b.Ir.Block.count <- c
        | None -> ())
      counts;
    f.Ir.Func.annotated <- true;
    p
  in
  (match
     Core.Quality.func_overlap
       ~truth:(main (single [ 7L ]))
       (main (single [ 1_000_000L ]))
   with
  | Some d -> Alcotest.(check (float 0.0001)) "single block = 1" 1.0 d
  | None -> Alcotest.fail "single-block overlap missing");
  (* the metric compares shapes, not magnitudes: a 100x-cheaper sampling
     run with the same distribution scores 1.0 ... *)
  (match
     Core.Quality.func_overlap
       ~truth:(main (mk [ 100L; 100L; 0L ]))
       (main (mk [ 1L; 1L; 0L ]))
   with
  | Some d -> Alcotest.(check (float 0.0001)) "scaled asymmetry = 1" 1.0 d
  | None -> Alcotest.fail "scaled overlap missing");
  (* ... while misplaced mass costs exactly the misplaced fraction *)
  match
    Core.Quality.func_overlap
      ~truth:(main (mk [ 100L; 0L; 0L ]))
      (main (mk [ 50L; 50L; 0L ]))
  with
  | Some d -> Alcotest.(check (float 0.0001)) "half misplaced = 0.5" 0.5 d
  | None -> Alcotest.fail "asymmetric overlap missing"

let test_value_spec () =
  let src = "global d[4];\nfn main(n) { let s = 0; let i = 0; while (i < n) { s = s + (i + 100) / d[0]; i = i + 1; } return s; }" in
  let p = F.Lower.compile src in
  let vals = Core.Instrument.instrument_values p in
  let fresh = F.Lower.compile src in
  (* simulate a 100%-dominant histogram for site 0 *)
  let hist = Hashtbl.create 4 in
  Hashtbl.replace hist 0 (Hashtbl.create 4);
  Hashtbl.replace (Hashtbl.find hist 0) 9L 10000L;
  let dominant = Core.Instrument.dominant_values vals hist ~min_count:100L ~min_ratio:0.9 in
  Alcotest.(check int) "one dominant" 1 (Hashtbl.length dominant);
  let n = Core.Value_spec.apply fresh dominant in
  Alcotest.(check int) "one site specialized" 1 n;
  Ir.Verify.check_exn fresh;
  let eval prog d0 =
    let bin = Cg.Emit.emit ~options:Cg.Emit.default_options prog in
    (Vm.Machine.run ~pmu:None ~globals_init:[ ("d", [| d0; 0L; 0L; 0L |]) ] bin ~entry:"main"
       ~args:[ 50L ])
      .Vm.Machine.ret_value
  in
  let plain = F.Lower.compile src in
  (* fast path (d0 = 9) and slow path (d0 = 5) both preserved *)
  Alcotest.(check int64) "fast path semantics" (eval plain 9L) (eval fresh 9L);
  Alcotest.(check int64) "slow path semantics" (eval plain 5L) (eval fresh 5L)

let test_driver_all_variants_smoke () =
  (* End-to-end on the quickstart program: every variant builds and the
     optimized binaries compute identical results. *)
  let w =
    {
      D.w_name = "vecop";
      w_source = W.Suite.vecop_example;
      w_entry = "main";
      w_train =
        [ { D.rs_args = [ 256L; 30L ];
            rs_globals = [ ("va", Array.init 1024 Int64.of_int); ("vb", Array.init 1024 (fun i -> Int64.of_int (i * 3))) ] } ];
      w_eval =
        [ { D.rs_args = [ 256L; 40L ];
            rs_globals = [ ("va", Array.init 1024 (fun i -> Int64.of_int (i + 7))); ("vb", Array.init 1024 (fun i -> Int64.of_int (i * 5))) ] } ];
    }
  in
  let results =
    List.map
      (fun v ->
        let o = D.run_variant v w in
        let spec = List.hd w.D.w_eval in
        let r =
          Vm.Machine.run ~pmu:None ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args
            o.D.o_binary ~entry:"main"
        in
        (v, r.Vm.Machine.ret_value, o))
      [ D.Nopgo; D.Instr_pgo; D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full ]
  in
  let _, ref_val, _ = List.hd results in
  List.iter
    (fun (v, value, o) ->
      Alcotest.(check int64) (D.variant_name v ^ " result") ref_val value;
      Alcotest.(check bool) (D.variant_name v ^ " no stales") true (o.D.o_stales = []))
    results;
  (* probe metadata only for probe variants *)
  let get v = List.find (fun (v', _, _) -> v = v') results in
  let _, _, full = get D.Csspgo_full in
  let _, _, af = get D.Autofdo in
  Alcotest.(check bool) "csspgo has probe metadata" true (full.D.o_probe_meta_size > 0);
  Alcotest.(check int) "autofdo has none" 0 af.D.o_probe_meta_size

let test_skid_drops_samples () =
  (* Without PEBS, some samples must be detected as misaligned and dropped. *)
  let p = F.Lower.compile cs_src in
  Core.Pseudo_probe.insert p;
  let refp = Ir.Program.copy p in
  Opt.Pass.optimize ~config:{ Opt.Config.o2_nopgo with inline_mode = Opt.Config.Inline_none } p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 101; pebs = false; skid_prob = 0.8 })
      bin ~entry:"main" ~args:[ 120L ]
  in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let _, stats = Core.Ctx_reconstruct.reconstruct ~checksum_of bin r.Vm.Machine.samples in
  Alcotest.(check bool) "skid causes drops" true
    (stats.Core.Ctx_reconstruct.st_dropped_misaligned > 0)

let suite =
  ( "core",
    [
      Alcotest.test_case "probe insertion" `Quick test_probe_insertion;
      Alcotest.test_case "checksum drift" `Quick test_checksum_drift;
      Alcotest.test_case "stale profile rejected" `Quick test_stale_profile_rejected;
      Alcotest.test_case "probe correlation sums copies" `Quick test_probe_correlation_sums_copies;
      Alcotest.test_case "algorithm 1 separates contexts" `Quick test_ctx_reconstruction_separates_contexts;
      Alcotest.test_case "context totals match flat" `Quick test_ctx_totals_match_flat;
      Alcotest.test_case "missing frame inference" `Quick test_missing_frame_inference;
      Alcotest.test_case "algorithm 3 sizes" `Quick test_size_extract;
      Alcotest.test_case "algorithm 2 pre-inliner" `Slow test_preinliner_marks_hot_chain;
      Alcotest.test_case "block overlap metric" `Quick test_quality_metric;
      Alcotest.test_case "overlap edge cases" `Quick test_quality_edge_cases;
      Alcotest.test_case "value specialization" `Quick test_value_spec;
      Alcotest.test_case "driver all variants" `Slow test_driver_all_variants_smoke;
      Alcotest.test_case "skid detection" `Quick test_skid_drops_samples;
    ] )
