(* Streaming sample pipeline: byte-identity against the materialized path,
   sink scratch-reuse safety, and a coarse throughput-regression guard.

   The refactor's contract is that the zero-materialization pipeline (PMU
   sink → dense-index aggregation → log-replay context reconstruction) is
   observationally identical to the old sample-list pipeline: every PGO
   variant's canonical Text_io dump must match byte for byte, serially and
   across domain counts. *)
module F = Csspgo_frontend
module Ir = Csspgo_ir
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module Pg = Csspgo_profgen
module P = Csspgo_profile
module Core = Csspgo_core
module O = Csspgo_orchestrator
module W = Csspgo_workloads
module D = Core.Driver

(* Tiny generated programs finish in a handful of default-period samples;
   sample densely so every profile has real weight (same knob the fuzz
   campaign uses). *)
let options =
  {
    D.default_options with
    D.pmu = { Vm.Machine.default_pmu with Vm.Machine.sample_period = 101 };
  }

let gen_workload seed =
  let src = W.Gen.random_source ~n_funcs:4 ~size:2 ~seed () in
  let spec =
    { D.rs_args = [ Int64.of_int (Int64.to_int seed land 0xff); 17L ]; rs_globals = [] }
  in
  {
    D.w_name = Printf.sprintf "pipe-%Ld" seed;
    w_source = src;
    w_entry = "main";
    w_train = List.init 8 (fun _ -> spec);
    w_eval = [ spec ];
  }

let all_variants =
  [ D.Nopgo; D.Instr_pgo; D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full ]

(* --- byte-identity oracle: streaming vs materialized ----------------- *)

let test_stream_oracle () =
  List.iter
    (fun seed ->
      let w = gen_workload seed in
      List.iter
        (fun v ->
          let mat = D.profile_pipeline_texts ~options ~streaming:false v w in
          let str = D.profile_pipeline_texts ~options ~streaming:true v w in
          let label tag =
            Printf.sprintf "seed %Ld %s %s" seed (D.variant_name v) tag
          in
          Alcotest.(check int)
            (label "profile count")
            (List.length mat) (List.length str);
          List.iter2
            (fun (tm, xm) (ts, xs) ->
              Alcotest.(check string) (label "tag") tm ts;
              Alcotest.(check string) (label tm) xm xs)
            mat str)
        all_variants)
    [ 1L; 2L; 3L ]

(* --- plan-level identity across domain counts ------------------------ *)

(* Hooks that run every stage thunk directly but record the serialized
   correlate output — the canonical profile bytes each plan produced. *)
let recording_hooks tbl mutex =
  {
    D.Plan.memo =
      (fun ~kind ~key ~ser ~de:_ f ->
        let v = f () in
        if String.equal kind "correlate" then begin
          Mutex.lock mutex;
          Hashtbl.replace tbl (String.concat "|" key) (ser v);
          Mutex.unlock mutex
        end;
        v);
    stat = (fun ~name:_ _ -> ());
    span = (fun ~name:_ f -> f ());
    metrics = Csspgo_obs.Metrics.null;
    jobs = 1;
  }

let test_plan_identity_across_jobs () =
  let w = gen_workload 5L in
  let run_at jobs =
    let tbl = Hashtbl.create 32 in
    let mutex = Mutex.create () in
    let hooks = recording_hooks tbl mutex in
    let plans = List.map (fun v -> D.Plan.make ~options ~variant:v w) all_variants in
    let outcomes = O.Scheduler.map ~jobs (fun pl -> D.Plan.run ~hooks pl) plans in
    let rows =
      List.map2
        (fun v (o : D.outcome) ->
          (D.variant_name v, o.D.o_eval.D.ev_cycles, o.D.o_profile_size))
        all_variants outcomes
    in
    let profiles =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    in
    (rows, profiles)
  in
  let ref_rows, ref_profiles = run_at 1 in
  Alcotest.(check bool) "correlate outputs recorded" true (ref_profiles <> []);
  List.iter
    (fun jobs ->
      let rows, profiles = run_at jobs in
      Alcotest.(check bool)
        (Printf.sprintf "outcomes identical at -j %d" jobs)
        true (rows = ref_rows);
      Alcotest.(check bool)
        (Printf.sprintf "profile bytes identical at -j %d" jobs)
        true (profiles = ref_profiles))
    [ 2; 4 ]

(* --- sink scratch-reuse safety --------------------------------------- *)

let loop_src =
  "fn helper(x) { let s = 0; let i = 0; while (i < 40) { s = s + x * 3; i = i + 1; } \
   return s; }\n\
   fn mid(a) { return helper(a) + helper(a + 1); }\n\
   fn main(n) { let t = 0; let k = 0; while (k < n) { t = t + mid(k); k = k + 1; } \
   return t; }"

let build_probed src =
  let p = F.Lower.compile src in
  Core.Pseudo_probe.insert p;
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  (p, Cg.Emit.emit ~options:Cg.Emit.default_options p)

let pmu = Some { Vm.Machine.default_pmu with Vm.Machine.sample_period = 101 }

(* An aliasing sink — the bug class debug_poison exists to catch: it stores
   the scratch arrays instead of copying. Every stored buffer must read as
   pure poison afterwards, so the stale data can never be silently used. *)
let test_debug_poison_catches_aliasing () =
  let _, bin = build_probed loop_src in
  let stored = ref [] in
  let sink =
    {
      Vm.Machine.on_sample =
        (fun ~lbr ~lbr_len ~stack ~stack_len ->
          stored := (lbr, lbr_len, stack, stack_len) :: !stored);
      on_labels = Vm.Machine.no_labels;
    }
  in
  let r =
    Vm.Machine.run ~pmu ~sink ~debug_poison:true bin ~entry:"main" ~args:[ 300L ]
  in
  Alcotest.(check bool) "samples taken" true (r.Vm.Machine.n_samples > 0);
  Alcotest.(check int) "no materialized samples in sink mode" 0
    (List.length r.Vm.Machine.samples);
  List.iter
    (fun (lbr, lbr_len, stack, stack_len) ->
      for i = 0 to lbr_len - 1 do
        if lbr.(i) <> (min_int, min_int) then
          Alcotest.fail "aliased lbr scratch survived un-poisoned"
      done;
      for i = 0 to stack_len - 1 do
        if stack.(i) <> min_int then
          Alcotest.fail "aliased stack scratch survived un-poisoned"
      done)
    !stored

(* A copying sink under poisoning sees exactly the collect path's samples:
   the VM is deterministic, so two runs observe the same stream. *)
let test_copying_sink_matches_collect () =
  let _, bin = build_probed loop_src in
  let collected =
    (Vm.Machine.run ~pmu bin ~entry:"main" ~args:[ 300L ]).Vm.Machine.samples
  in
  let copied = ref [] in
  let sink =
    {
      Vm.Machine.on_sample =
        (fun ~lbr ~lbr_len ~stack ~stack_len ->
          copied :=
            {
              Vm.Machine.s_lbr = Array.sub lbr 0 lbr_len;
              s_stack = Array.sub stack 0 stack_len;
            }
            :: !copied);
      on_labels = Vm.Machine.no_labels;
    }
  in
  let r =
    Vm.Machine.run ~pmu ~sink ~debug_poison:true bin ~entry:"main" ~args:[ 300L ]
  in
  let copied = List.rev !copied in
  Alcotest.(check int) "sample counts" (List.length collected) (List.length copied);
  Alcotest.(check int) "n_samples matches" (List.length collected)
    r.Vm.Machine.n_samples;
  List.iter2
    (fun (a : Vm.Machine.sample) (b : Vm.Machine.sample) ->
      Alcotest.(check bool) "lbr equal" true (a.Vm.Machine.s_lbr = b.Vm.Machine.s_lbr);
      Alcotest.(check bool) "stack equal" true
        (a.Vm.Machine.s_stack = b.Vm.Machine.s_stack))
    collected copied

(* --- coarse throughput-regression guard ------------------------------ *)

(* Assertion-only sibling of `bench/main.exe pipeline`: the streaming
   aggregation + reconstruction must never fall behind the materialized
   path by more than 2x. Timed over log replay so the VM run is excluded;
   min-of-3 to shrug off scheduler noise. *)
let test_streaming_not_slower () =
  let refp, bin = build_probed loop_src in
  let names = Ir.Guid.Tbl.create 16 in
  let checksums = Ir.Guid.Tbl.create 16 in
  Ir.Program.iter_funcs
    (fun f ->
      Ir.Guid.Tbl.replace names f.Ir.Func.guid f.Ir.Func.name;
      Ir.Guid.Tbl.replace checksums f.Ir.Func.guid f.Ir.Func.checksum)
    refp;
  let name_of g = Ir.Guid.Tbl.find_opt names g in
  let checksum_of g = Option.value (Ir.Guid.Tbl.find_opt checksums g) ~default:0L in
  let log = Vm.Sample_log.create () in
  ignore
    (Vm.Machine.run ~pmu ~sink:(Vm.Sample_log.sink log) bin ~entry:"main"
       ~args:[ 2000L ]);
  Alcotest.(check bool) "enough samples" true (Vm.Sample_log.n_samples log > 500);
  let time_min f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Sys.time () in
      f ();
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let t_mat =
    time_min (fun () ->
        let samples = Vm.Sample_log.to_samples log in
        let agg = Pg.Ranges.aggregate samples in
        let missing = Core.Missing_frame.build bin samples in
        ignore (Core.Probe_corr.correlate_agg ~name_of ~checksum_of bin agg);
        ignore
          (Core.Ctx_reconstruct.reconstruct ~name_of ~missing ~checksum_of bin samples))
  in
  let t_stream =
    time_min (fun () ->
        let ix = Pg.Bindex.create bin in
        let agg = Pg.Ranges.create () in
        let mb = Core.Missing_frame.start ix in
        Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ ->
            Pg.Ranges.feed agg ~lbr ~lbr_len;
            Core.Missing_frame.feed mb ~lbr ~lbr_len);
        let missing = Core.Missing_frame.finish mb in
        ignore (Core.Probe_corr.correlate_agg ~name_of ~index:ix ~checksum_of bin agg);
        let st = Core.Ctx_reconstruct.start ~name_of ~missing ~checksum_of ix in
        Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack ~stack_len ->
            Core.Ctx_reconstruct.feed st ~lbr ~lbr_len ~stack ~stack_len);
        ignore (Core.Ctx_reconstruct.finish st))
  in
  Alcotest.(check bool)
    (Printf.sprintf "streaming (%.4fs) within 2x of materialized (%.4fs)" t_stream
       t_mat)
    true
    (t_stream <= (2.0 *. t_mat) +. 0.02)

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "stream oracle (3 seeds x 5 variants)" `Slow
        test_stream_oracle;
      Alcotest.test_case "plan identity at -j 1/2/4" `Slow
        test_plan_identity_across_jobs;
      Alcotest.test_case "debug poison catches aliasing" `Quick
        test_debug_poison_catches_aliasing;
      Alcotest.test_case "copying sink matches collect" `Quick
        test_copying_sink_matches_collect;
      Alcotest.test_case "streaming within 2x of materialized" `Quick
        test_streaming_not_slower;
    ] )
