(* Windowed health telemetry: Series delta windows, retention and rates,
   QCheck'd merge laws; Health indicator scoring from synthetic snapshots,
   the one-alert-per-plateau EWMA contract; OpenMetrics exposition shape;
   and the end-to-end contract — a health-instrumented release train on
   the fixed clock reports byte-identically at -j 1/2/4 and flags an
   injected mid-train drift spike with exactly one crit alert. *)
module Obs = Csspgo_obs
module M = Obs.Metrics
module S = Obs.Series
module H = Obs.Health
module J = Obs.Json
module Fl = Csspgo_fleet
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads

let snap ?(gauges = []) ?(hists = []) counters =
  {
    M.s_counters = List.sort compare counters;
    s_gauges = List.sort compare gauges;
    s_histograms = List.sort compare hists;
  }

(* --- series ----------------------------------------------------------- *)

let test_series_windows () =
  let s = S.create () in
  let h c sum = { M.h_count = c; h_sum = sum; h_nonzero = [] } in
  let w0 =
    S.record s
      (snap
         [ ("a", 5); ("sched.steals", 3) ]
         ~gauges:[ ("g", 7) ]
         ~hists:[ ("lat", h 2 10) ])
  in
  Alcotest.(check int) "first index" 0 w0.S.w_index;
  Alcotest.(check int64) "first timestamp (fixed clock tick 0)" 0L w0.S.w_at_us;
  Alcotest.(check int64) "first duration" 0L w0.S.w_dur_us;
  Alcotest.(check bool) "first deltas from zero, sched. dropped" true
    (w0.S.w_counters = [ ("a", 5); ("lat/count", 2); ("lat/sum", 10) ]);
  Alcotest.(check bool) "gauge reading" true (w0.S.w_gauges = [ ("g", 7) ]);
  let w1 =
    S.record s
      (snap
         [ ("a", 5); ("b", 2); ("sched.steals", 9) ]
         ~gauges:[ ("g", 4) ]
         ~hists:[ ("lat", h 3 15) ])
  in
  Alcotest.(check int) "second index" 1 w1.S.w_index;
  Alcotest.(check int64) "fixed clock ticks by 1" 1L w1.S.w_at_us;
  Alcotest.(check int64) "duration is one tick" 1L w1.S.w_dur_us;
  (* zero deltas are elided; histogram deltas flatten to /count, /sum *)
  Alcotest.(check bool) "second window deltas" true
    (w1.S.w_counters = [ ("b", 2); ("lat/count", 1); ("lat/sum", 5) ]);
  Alcotest.(check bool) "gauge is a reading, not a delta" true
    (w1.S.w_gauges = [ ("g", 4) ]);
  (* per-second rate over a 1 us window *)
  Alcotest.(check bool) "rate b" true (S.rate w1 "b" = Some 2e6);
  Alcotest.(check bool) "rate of absent counter" true (S.rate w1 "zz" = None);
  Alcotest.(check bool) "rate of zero-duration window" true
    (S.rate w0 "a" = None)

let test_series_retention () =
  let s = S.create ~retain:2 () in
  for i = 1 to 4 do
    ignore (S.record s (snap [ ("a", 10 * i) ]))
  done;
  let ws = S.windows s in
  Alcotest.(check (list int)) "newest two windows kept" [ 2; 3 ]
    (List.map (fun w -> w.S.w_index) ws);
  Alcotest.(check int) "total counts evictions" 4 (S.total s);
  Alcotest.(check int) "evicted" 2 (S.evicted s)

let sj s = J.to_string (S.to_json s)

let series_gen =
  QCheck.(
    let name = oneofl [ "a"; "b"; "c"; "sched.x" ] in
    let assoc =
      map
        (List.sort_uniq (fun (a, _) (b, _) -> compare a b))
        (small_list (pair name (int_range 0 1000)))
    in
    map
      (fun rows ->
        let s = S.create () in
        List.iter
          (fun (cs, gs) -> ignore (S.record s (snap cs ~gauges:gs)))
          rows;
        s)
      (small_list (pair assoc assoc)))

let prop_series_merge_laws =
  QCheck.Test.make ~name:"series merge is commutative/associative/identity"
    ~count:200
    QCheck.(
      set_print
        (fun (a, b, c) -> Printf.sprintf "%s\n%s\n%s" (sj a) (sj b) (sj c))
        (triple series_gen series_gen series_gen))
    (fun (s1, s2, s3) ->
      String.equal (sj (S.merge s1 s2)) (sj (S.merge s2 s1))
      && String.equal
           (sj (S.merge (S.merge s1 s2) s3))
           (sj (S.merge s1 (S.merge s2 s3)))
      && String.equal (sj (S.merge s1 (S.create ()))) (sj s1))

(* --- health scoring --------------------------------------------------- *)

let test_health_scoring () =
  let t = H.create () in
  let wr0 =
    H.observe t
      (snap
         [
           ("collector.batches", 100);
           ("collector.dropped-blobs", 0);
           ("probe-corr.ranges", 100);
           ("probe-corr.ranges-unmatched", 1);
           ("ctx.samples", 100);
           ("ctx.inferred-frames", 10);
           ("stale.counts-recovered", 90);
           ("stale.counts-dropped", 10);
         ])
  in
  Alcotest.(check bool) "healthy window scores ok" true (wr0.H.wr_level = H.Ok);
  Alcotest.(check bool) "no alerts on the baseline window" true
    (wr0.H.wr_alerts = []);
  let level name wr =
    (List.find (fun i -> i.H.in_name = name) wr.H.wr_indicators).H.in_level
  in
  Alcotest.(check bool) "overlap without data scores ok" true
    (level "profile.overlap" wr0 = H.Ok
    && (List.find (fun i -> i.H.in_name = "profile.overlap") wr0.H.wr_indicators)
         .H.in_value = None);
  (* second window: every indicator regresses past a threshold *)
  let wr1 =
    H.observe ~overlap:0.92 t
      (snap
         [
           ("collector.batches", 200);
           ("collector.dropped-blobs", 20);
           ("probe-corr.ranges", 200);
           ("probe-corr.ranges-unmatched", 16);
           ("ctx.samples", 200);
           ("ctx.inferred-frames", 80);
           ("stale.counts-recovered", 100);
           ("stale.counts-dropped", 60);
         ])
  in
  (* deltas: drop 20/100 crit; hit 85/100 warn; inferred 70/100 crit;
     recovery 10/60 crit; overlap 0.92 warn *)
  Alcotest.(check bool) "drop-rate crit" true
    (level "collector.drop-rate" wr1 = H.Crit);
  Alcotest.(check bool) "hit-rate warn" true (level "corr.hit-rate" wr1 = H.Warn);
  Alcotest.(check bool) "inferred-share crit" true
    (level "ctx.inferred-share" wr1 = H.Crit);
  Alcotest.(check bool) "recovery crit" true
    (level "stale.recovery" wr1 = H.Crit);
  Alcotest.(check bool) "overlap warn" true
    (level "profile.overlap" wr1 = H.Warn);
  Alcotest.(check bool) "window level is the worst indicator" true
    (wr1.H.wr_level = H.Crit);
  (* baseline-initialized indicators regressed beyond the band and alert;
     overlap saw its first value, so its baseline initializes silently *)
  let alerted = List.map (fun a -> a.H.al_indicator) wr1.H.wr_alerts in
  Alcotest.(check (list string)) "alerts in spec order, overlap silent"
    [
      "collector.drop-rate"; "corr.hit-rate"; "ctx.inferred-share";
      "stale.recovery";
    ]
    alerted;
  let rep = H.report t in
  Alcotest.(check bool) "report level" true (rep.H.hp_level = H.Crit);
  Alcotest.(check int) "report collects window alerts" 4
    (List.length rep.H.hp_alerts);
  (* canonical JSON reparses as a fixed point *)
  let doc = J.to_string (H.report_to_json rep) in
  Alcotest.(check string) "report JSON fixed point" doc
    (J.to_string (J.parse_exn doc))

let test_health_plateau_alerts_once () =
  let t = H.create () in
  let ob v = H.observe ~overlap:v t (snap []) in
  ignore (ob 0.99);
  (* baseline init *)
  ignore (ob 0.99);
  let drop = ob 0.5 in
  Alcotest.(check int) "transition alerts" 1 (List.length drop.H.wr_alerts);
  Alcotest.(check bool) "alert carries value and baseline" true
    (match drop.H.wr_alerts with
    | [ a ] ->
        a.H.al_level = H.Crit && a.H.al_value = 0.5
        && a.H.al_baseline > 0.98 && a.H.al_indicator = "profile.overlap"
    | _ -> false);
  (* the plateau: baseline snapped to the degraded value, no re-alerts *)
  let p1 = ob 0.5 and p2 = ob 0.5 in
  Alcotest.(check int) "plateau window 1 silent" 0 (List.length p1.H.wr_alerts);
  Alcotest.(check int) "plateau window 2 silent" 0 (List.length p2.H.wr_alerts);
  (* recovery is the good direction — never an alert *)
  let up = ob 0.99 in
  Alcotest.(check int) "recovery silent" 0 (List.length up.H.wr_alerts);
  Alcotest.(check bool) "plateau windows still score crit" true
    (p1.H.wr_level = H.Crit && p2.H.wr_level = H.Crit)

let test_health_alert_trace_instants () =
  let trace = Obs.Trace.create ~clock:(Obs.Clock.fixed ()) () in
  let track = Obs.Trace.track trace ~tid:0 ~name:"health" in
  let t = H.create ~track () in
  ignore (H.observe ~overlap:0.99 t (snap []));
  ignore (H.observe ~overlap:0.5 t (snap []));
  (* one instant for the single alert; the thread-name metadata record is
     synthesized at export time, so the chrome doc carries two entries *)
  Alcotest.(check int) "one instant per alert" 1 (Obs.Trace.n_events trace);
  let j = J.parse_exn (Obs.Trace.to_chrome_json trace) in
  match Option.bind (J.member "traceEvents" j) J.to_list with
  | Some evs ->
      Alcotest.(check int) "metadata + instant" 2 (List.length evs);
      Alcotest.(check bool) "typed alert name" true
        (List.exists
           (fun e -> J.member "name" e = Some (J.String "health.crit:profile.overlap"))
           evs)
  | None -> Alcotest.fail "traceEvents missing"

(* --- OpenMetrics exposition ------------------------------------------- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_export_snapshot () =
  let m = M.create () in
  M.bump (M.counter m "vm.runs") 6;
  M.observe_gauge (M.gauge m "sched.queue-depth") 3;
  M.observe (M.histogram m "ctx.context-depth") 5;
  let text = Obs.Export.snapshot (M.snapshot m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %S" needle) true
        (contains text needle))
    [
      "# TYPE csspgo_vm_runs counter";
      "csspgo_vm_runs_total 6";
      "# TYPE csspgo_sched_queue_depth gauge";
      "csspgo_sched_queue_depth 3";
      "# TYPE csspgo_ctx_context_depth histogram";
      "csspgo_ctx_context_depth_bucket{le=\"+Inf\"} 1";
      "csspgo_ctx_context_depth_sum 5";
      "csspgo_ctx_context_depth_count 1";
    ];
  Alcotest.(check bool) "ends with # EOF" true
    (let eof = "# EOF\n" in
     String.length text >= String.length eof
     && String.sub text (String.length text - String.length eof)
          (String.length eof)
        = eof)

let test_export_series () =
  let s = S.create () in
  ignore (S.record s (snap [ ("vm.runs", 2) ]));
  ignore (S.record s (snap [ ("vm.runs", 5) ]));
  let text = Obs.Export.series s in
  (* deltas re-accumulate into cumulative timestamped points *)
  Alcotest.(check bool) "first point" true
    (contains text "csspgo_vm_runs_total 2 0.000000");
  Alcotest.(check bool) "second point is cumulative" true
    (contains text "csspgo_vm_runs_total 5 0.000001");
  Alcotest.(check bool) "series ends with # EOF" true (contains text "# EOF")

(* --- end to end: health-instrumented release train -------------------- *)

let train_workload = W.Suite.adfinder

let train_config ?(generations = 3) ?(schedule = []) jobs =
  {
    Fl.Train.default with
    Fl.Train.t_generations = generations;
    t_edits = 2;
    t_edit_schedule = schedule;
    t_skew = 1;
    t_cohort = 2;
    t_overlap = false;
    t_fleet =
      { Fl.Sim.default with Fl.Sim.f_request_copies = 2; f_jobs = jobs };
  }

let run_train ?generations ?schedule jobs w =
  let metrics = M.create () in
  let series = S.create () in
  let tracker = H.create () in
  let gens =
    Fl.Train.run ~metrics ~series ~health:tracker
      (train_config ?generations ?schedule jobs)
      w
  in
  let rep = H.report tracker in
  (gens, rep, J.to_string (H.report_to_json rep), sj series)

let test_train_identity_across_jobs () =
  let w = train_workload in
  let gens, rep, ref_rep, ref_series = run_train 1 w in
  Alcotest.(check int) "one health window per generation" 3
    (List.length rep.H.hp_windows);
  List.iter
    (fun (g : Fl.Train.generation) ->
      match g.Fl.Train.g_health with
      | Some wr -> Alcotest.(check int) "window index" g.Fl.Train.g_id wr.H.wr_index
      | None -> Alcotest.fail "generation missing its health window")
    gens;
  List.iter
    (fun jobs ->
      let _, _, rep_j, series_j = run_train jobs w in
      Alcotest.(check string)
        (Printf.sprintf "report bytes identical at -j %d" jobs)
        ref_rep rep_j;
      Alcotest.(check string)
        (Printf.sprintf "series bytes identical at -j %d" jobs)
        ref_series series_j)
    [ 2; 4 ]

let test_train_drift_spike_alert () =
  (* uniform 2-edit drift with a 4-edit spike into generation 2: the EWMA
     baseline absorbs the steady drift and flags only the spike window *)
  let _, rep, _, _ =
    run_train ~generations:4 ~schedule:[ 2; 4 ] 1 train_workload
  in
  let crits = List.filter (fun a -> a.H.al_level = H.Crit) rep.H.hp_alerts in
  Alcotest.(check int) "exactly one crit alert" 1 (List.length crits);
  Alcotest.(check bool) "the spike window, on overlap" true
    (match crits with
    | [ a ] -> a.H.al_window = 2 && a.H.al_indicator = "profile.overlap"
    | _ -> false)

let suite =
  ( "health",
    [
      Alcotest.test_case "series delta windows" `Quick test_series_windows;
      Alcotest.test_case "series ring retention" `Quick test_series_retention;
      QCheck_alcotest.to_alcotest prop_series_merge_laws;
      Alcotest.test_case "indicator scoring" `Quick test_health_scoring;
      Alcotest.test_case "plateau alerts once" `Quick
        test_health_plateau_alerts_once;
      Alcotest.test_case "alerts emit trace instants" `Quick
        test_health_alert_trace_instants;
      Alcotest.test_case "openmetrics snapshot exposition" `Quick
        test_export_snapshot;
      Alcotest.test_case "openmetrics series exposition" `Quick
        test_export_series;
      Alcotest.test_case "train report identical at -j 1/2/4" `Slow
        test_train_identity_across_jobs;
      Alcotest.test_case "drift spike trips a crit alert" `Slow
        test_train_drift_spike_alert;
    ] )
