(* Quickstart: the paper's Fig. 3/4 example, end to end.

   The program (see Workloads.Suite.vecop_example) has a shared helper
   [scalar_op] that adds when called from [add_vector_head] and subtracts
   when called from [sub_vector_head]. We:
     1. build a profiling binary with pseudo-probes,
     2. sample it with synchronized LBR + stack sampling,
     3. reconstruct the context-sensitive profile (Algorithm 1) and print
        scalar_op's two contexts — the Fig. 3b insight,
     4. run the full CSSPGO pipeline and compare against AutoFDO. *)

module F = Csspgo_frontend
module Ir = Csspgo_ir
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module P = Csspgo_profile
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads

(* A probed profiling build sampled over the training inputs. *)
let profiling_run (w : D.workload) =
  let options = D.default_options in
  let prog = F.Lower.compile w.D.w_source in
  Core.Pseudo_probe.insert prog;
  Opt.Pass.optimize ~config:options.D.opt_profiling prog;
  let bin = Cg.Emit.emit ~options:options.D.emit_opts prog in
  let log = Vm.Sample_log.create () in
  List.iter
    (fun (spec : D.run_spec) ->
      ignore
        (Vm.Machine.run ~pmu:(Some options.D.pmu) ~sink:(Vm.Sample_log.sink log)
           ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args bin
           ~entry:w.D.w_entry))
    w.D.w_train;
  (bin, Vm.Sample_log.to_samples log)

let () =
  print_endline "== CSSPGO quickstart: the scalarOp example (paper Fig. 3/4) ==\n";
  let globals seed =
    let rng = Csspgo_support.Rng.create seed in
    [ ("va", W.Inputs.array rng 1024 ~max:1000); ("vb", W.Inputs.array rng 1024 ~max:1000) ]
  in
  let w =
    {
      D.w_name = "vecop";
      w_source = W.Suite.vecop_example;
      w_entry = "main";
      w_train = [ { D.rs_args = [ 512L; 60L ]; rs_globals = globals 1L } ];
      w_eval = [ { D.rs_args = [ 512L; 80L ]; rs_globals = globals 2L } ];
    }
  in
  (* Steps 1-3: look inside the context-sensitive profile. *)
  let pbin, samples = profiling_run w in
  let refp =
    let p = F.Lower.compile w.D.w_source in
    Core.Pseudo_probe.insert p;
    p
  in
  let name_of g = Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp g) in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let trie, stats = Core.Ctx_reconstruct.reconstruct ~name_of ~checksum_of pbin samples in
  Printf.printf "collected %d samples (%d dropped as misaligned)\n\n"
    stats.Core.Ctx_reconstruct.st_samples stats.Core.Ctx_reconstruct.st_dropped_misaligned;
  print_endline "contexts observed for scalar_op (Fig. 3b — one per caller):";
  let leaf = Ir.Guid.of_name "scalar_op" in
  P.Ctx_profile.iter_nodes trie (fun ctx node ->
      if Ir.Guid.equal node.P.Ctx_profile.n_func leaf && ctx <> [] then begin
        let path =
          String.concat " @ "
            (List.map
               (fun (g, site) ->
                 Printf.sprintf "%s:%d"
                   (Option.value (name_of g) ~default:"?")
                   site)
               ctx)
        in
        Printf.printf "  [%s] -> scalar_op   samples=%Ld\n" path
          node.P.Ctx_profile.n_prof.P.Probe_profile.fe_total
      end);
  (* Step 4: full comparison. *)
  print_endline "\nbuilding all PGO variants...";
  let baseline = D.run_variant D.Autofdo w in
  let base = Int64.to_float baseline.D.o_eval.D.ev_cycles in
  List.iter
    (fun v ->
      let o = D.run_variant v w in
      let c = Int64.to_float o.D.o_eval.D.ev_cycles in
      Printf.printf "  %-18s %12.0f cycles  (%+.2f%% vs AutoFDO)  text=%d B\n"
        (D.variant_name v) c
        ((base -. c) /. base *. 100.)
        o.D.o_text_size)
    [ D.Nopgo; D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full; D.Instr_pgo ];
  let full = D.run_variant D.Csspgo_full w in
  Printf.printf "\npre-inliner made %d context-sensitive inline decisions\n"
    (List.length full.D.o_preinline_decisions);
  List.iter
    (fun (d : Core.Preinliner.decision) ->
      Printf.printf "  inline %-16s (count=%Ld, binary size=%dB, context depth %d)\n"
        d.Core.Preinliner.d_callee_name d.Core.Preinliner.d_count d.Core.Preinliner.d_size
        (List.length d.Core.Preinliner.d_context))
    full.D.o_preinline_decisions
