(* Domain scenario: optimizing a bytecode interpreter (the HHVM stand-in).

   Interpreters are the workload class where the paper's operational-
   overhead story is sharpest: counter instrumentation sits in the dispatch
   loop, so the instrumented binary is dramatically slower — while sampling
   with pseudo-probes costs nothing. This example measures:
     - the profiling cost of each approach (Table I's overhead row),
     - the end performance of each variant,
     - the profile-quality (block overlap) each profile achieves. *)

module F = Csspgo_frontend
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads

(* Cycles spent serving the training inputs under sampling, with or
   without pseudo-probes in the binary. *)
let profiling_cycles ~probes (w : D.workload) =
  let options = D.default_options in
  let prog = F.Lower.compile w.D.w_source in
  if probes then Core.Pseudo_probe.insert prog;
  Opt.Pass.optimize ~config:options.D.opt_profiling prog;
  let bin = Cg.Emit.emit ~options:options.D.emit_opts prog in
  let log = Vm.Sample_log.create () in
  let cycles = ref 0L in
  List.iter
    (fun (spec : D.run_spec) ->
      let r =
        Vm.Machine.run ~pmu:(Some options.D.pmu) ~sink:(Vm.Sample_log.sink log)
          ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args bin
          ~entry:w.D.w_entry
      in
      cycles := Int64.add !cycles r.Vm.Machine.cycles)
    w.D.w_train;
  !cycles

let () =
  print_endline "== PGO on a bytecode interpreter (hhvm stand-in) ==\n";
  let w = W.Suite.hhvm in
  (* Profiling overhead. *)
  let plain = profiling_cycles ~probes:false w in
  let probed = profiling_cycles ~probes:true w in
  let instr = D.run_variant D.Instr_pgo w in
  let pct c = (Int64.to_float c -. Int64.to_float plain) /. Int64.to_float plain *. 100. in
  Printf.printf "profiling-run cost (the operational-overhead story):\n";
  Printf.printf "  sampling, no probes     %12Ld cycles  (baseline)\n" plain;
  Printf.printf "  sampling + pseudoprobes %12Ld cycles  (%+.2f%%)\n" probed (pct probed);
  Printf.printf "  counter instrumentation %12Ld cycles  (%+.2f%%  <- why instr PGO\n"
    instr.D.o_profiling_cycles
    (pct instr.D.o_profiling_cycles);
  Printf.printf "%42s cannot run in production)\n" "";
  (* Final performance. *)
  print_endline "\noptimized-binary performance (eval inputs):";
  let autofdo = D.run_variant D.Autofdo w in
  let base = Int64.to_float autofdo.D.o_eval.D.ev_cycles in
  List.iter
    (fun v ->
      let o = D.run_variant v w in
      let c = Int64.to_float o.D.o_eval.D.ev_cycles in
      Printf.printf "  %-18s %12.0f cycles  (%+.2f%% vs AutoFDO)\n" (D.variant_name v) c
        ((base -. c) /. base *. 100.))
    [ D.Nopgo; D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full; D.Instr_pgo ];
  (* Profile quality. *)
  print_endline "\nprofile quality (block overlap vs instrumentation ground truth):";
  let truth = instr.D.o_annotated in
  List.iter
    (fun v ->
      let o = D.run_variant v w in
      Printf.printf "  %-18s %5.1f%%\n" (D.variant_name v)
        (Core.Quality.block_overlap ~truth o.D.o_annotated *. 100.))
    [ D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full; D.Instr_pgo ];
  print_endline "\n(paper Table I: AutoFDO 88.2% / CSSPGO 92.3% / Instr 100%)"
