(* csspgo — command-line driver for the MiniC toolchain and PGO pipelines.

   Subcommands:
     compile  FILE     parse, optimize, emit; print binary statistics
     run      FILE     compile and execute main with integer arguments
     pgo      NAME     run PGO variant(s) end-to-end on a named workload
     stale    NAME     drift the source, stale-match, report recovery
     report   NAME     all-variant quality report (text or JSON)
     probes   FILE     show the pseudo-probe metadata of a probed build
     contexts NAME     print the reconstructed context trie for a workload
     fleet    NAME     continuous-profiling simulation: sharded fleet,
                       cross-version merge, release train
     fuzz              differential fuzzing campaign over random programs
     cache    DIR      inspect or clear an orchestrator artifact cache

   pgo and fuzz take -j (domains) and --cache-dir (artifact cache); both
   route through the Csspgo_orchestrator scheduler + cache. pgo and report
   also take --trace FILE (Chrome trace-event JSON; --fixed-clock makes it
   byte-reproducible across -j) and --metrics FILE (registry snapshot as
   JSON); fuzz takes --metrics FILE and reports progress on stderr. *)

module F = Csspgo_frontend
module Ir = Csspgo_ir
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module P = Csspgo_profile
module Core = Csspgo_core
module D = Core.Driver
module O = Csspgo_orchestrator
module Pg = Csspgo_profgen
module Fl = Csspgo_fleet
module W = Csspgo_workloads
module Obs = Csspgo_obs
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_src ?(probes = false) ~opt src =
  let p = F.Lower.compile src in
  if probes then Core.Pseudo_probe.insert p;
  Ir.Verify.check_exn p;
  let config = match opt with 0 -> Opt.Config.o0 | _ -> Opt.Config.o2_nopgo in
  Opt.Pass.optimize ~config p;
  (p, Cg.Emit.emit ~options:Cg.Emit.default_options p)

(* --- compile ------------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")

let opt_arg =
  Arg.(value & opt int 2 & info [ "O" ] ~docv:"LEVEL" ~doc:"Optimization level (0 or 2)")

let probes_flag =
  Arg.(value & flag & info [ "probes" ] ~doc:"Insert pseudo-probes before optimizing")

let compile_cmd =
  let run file opt probes =
    let _, bin = compile_src ~probes ~opt (read_file file) in
    Printf.printf "text           %6d bytes\n" bin.Cg.Mach.text_size;
    Printf.printf "instructions   %6d\n" (Array.length bin.Cg.Mach.insts);
    Printf.printf "functions      %6d\n" (Array.length bin.Cg.Mach.funcs);
    Printf.printf "debug info     %6d bytes\n" bin.Cg.Mach.debug_size;
    Printf.printf "probe metadata %6d bytes (%d records)\n" bin.Cg.Mach.probe_meta_size
      (Array.length bin.Cg.Mach.probes)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a MiniC file and print binary statistics")
    Term.(const run $ file_arg $ opt_arg $ probes_flag)

(* --- run ----------------------------------------------------------- *)

let args_arg =
  Arg.(value & opt_all int64 [] & info [ "arg" ] ~docv:"N" ~doc:"Argument passed to main (repeatable)")

let run_cmd =
  let run file opt probes args =
    let _, bin = compile_src ~probes ~opt (read_file file) in
    let r = Vm.Machine.run ~pmu:None bin ~entry:"main" ~args in
    Printf.printf "result        %Ld\n" r.Vm.Machine.ret_value;
    Printf.printf "cycles        %Ld\n" r.Vm.Machine.cycles;
    Printf.printf "instructions  %Ld\n" r.Vm.Machine.instructions;
    Printf.printf "taken branches %Ld (mispredicted %Ld)\n" r.Vm.Machine.taken_branches
      r.Vm.Machine.mispredicts;
    Printf.printf "icache misses %Ld\n" r.Vm.Machine.icache_misses
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a MiniC file on the VM")
    Term.(const run $ file_arg $ opt_arg $ probes_flag $ args_arg)

(* --- pgo ----------------------------------------------------------- *)

let workload_arg =
  let names = List.map (fun w -> w.D.w_name) W.Suite.all in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
    & info [] ~docv:"WORKLOAD" ~doc:(Printf.sprintf "One of: %s" (String.concat ", " names)))

let variant_arg =
  let variants =
    [ ("nopgo", D.Nopgo); ("autofdo", D.Autofdo); ("probe-only", D.Csspgo_probe_only);
      ("csspgo", D.Csspgo_full); ("instr", D.Instr_pgo) ]
  in
  Arg.(value & opt (enum variants) D.Csspgo_full & info [ "variant" ] ~docv:"V"
         ~doc:"nopgo | autofdo | probe-only | csspgo | instr")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Execute over N domains (work-stealing). Where there is only one \
           unit of outer work, N moves inward: sharded parallel correlation \
           over the sample log's chunks, byte-identical to serial at any N")

let cache_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Content-addressed artifact cache directory (created if missing)")

let all_variants_flag =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Run all five variants as one orchestrated matrix (honors -j)")

let cache_of_dir ?metrics dirs = Option.map (fun dir -> O.Cache.create ?metrics ~dir ()) dirs

(* --- observability plumbing ----------------------------------------- *)

let write_out path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON of the run to $(docv) (Perfetto-loadable)")

let metrics_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the metrics-registry snapshot as JSON to $(docv)")

let fixed_clock_arg =
  Arg.(
    value & flag
    & info [ "fixed-clock" ]
        ~doc:
          "Run the trace on the deterministic virtual clock: exported bytes are \
           identical for every -j level")

let mk_trace ~fixed = function
  | None -> None
  | Some _ ->
      let clock = if fixed then Obs.Clock.fixed () else Obs.Clock.wall () in
      Some (Obs.Trace.create ~clock ())

(* Both exporters self-check: the emitted JSON must parse back before it is
   written, so a malformed export fails loudly instead of landing on disk. *)
let export_trace trace path =
  match (trace, path) with
  | Some tr, Some path ->
      let s = Obs.Trace.to_chrome_json tr in
      ignore (Obs.Json.parse_exn s);
      write_out path s;
      Printf.eprintf "[obs] trace: %d events -> %s\n%!" (Obs.Trace.n_events tr) path
  | _ -> ()

let export_metrics metrics path =
  match (metrics, path) with
  | Some m, Some path ->
      let s = Obs.Json.to_string (Obs.Report.metrics_to_json (Obs.Metrics.snapshot m)) in
      ignore (Obs.Json.parse_exn s);
      write_out path s;
      Printf.eprintf "[obs] metrics -> %s\n%!" path
  | _ -> ()

let print_cache_stats = function
  | None -> ()
  | Some c ->
      let s = O.Cache.stats c in
      Printf.printf "cache              %d hits, %d misses, %d stores, %d corrupt\n"
        s.O.Cache.hits s.O.Cache.misses s.O.Cache.stores s.O.Cache.corrupt

let print_outcome variant (o : D.outcome) =
  Printf.printf "variant            %s\n" (D.variant_name variant);
    Printf.printf "eval cycles        %Ld\n" o.D.o_eval.D.ev_cycles;
    Printf.printf "eval instructions  %Ld\n" o.D.o_eval.D.ev_instructions;
    Printf.printf "text size          %d bytes\n" o.D.o_text_size;
    Printf.printf "profiling cycles   %Ld\n" o.D.o_profiling_cycles;
    Printf.printf "profile size       %d bytes\n" o.D.o_profile_size;
    Printf.printf "stale functions    %d\n" (List.length o.D.o_stales);
    (match o.D.o_recon_stats with
    | Some s ->
        Printf.printf "samples            %d (%d dropped, %d gaps fixed, %d failed)\n"
          s.Core.Ctx_reconstruct.st_samples s.Core.Ctx_reconstruct.st_dropped_misaligned
          s.Core.Ctx_reconstruct.st_gaps_resolved s.Core.Ctx_reconstruct.st_gaps_failed
    | None -> ());
    if o.D.o_preinline_decisions <> [] then begin
      Printf.printf "pre-inliner decisions:\n";
      List.iter
        (fun (d : Core.Preinliner.decision) ->
          Printf.printf "  inline %-20s count=%-8Ld size=%dB depth=%d\n"
            d.Core.Preinliner.d_callee_name d.Core.Preinliner.d_count d.Core.Preinliner.d_size
            (List.length d.Core.Preinliner.d_context))
        o.D.o_preinline_decisions
    end;
    match o.D.o_stale_report with
    | Some r ->
        Printf.printf "stale matching (recovery %.4f):\n%s"
          (Core.Stale_match.recovery_rate r)
          (Core.Stale_match.report_to_string r)
    | None -> ()

let all_variants =
  [ D.Nopgo; D.Instr_pgo; D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full ]

let sampling_variants = [ D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full ]

let stale_seed_arg =
  Arg.(
    value & opt int64 1L
    & info [ "stale-seed" ] ~docv:"SEED" ~doc:"Seed for the source-drift edit script")

let stale_edits_arg =
  Arg.(
    value & opt int 0
    & info [ "stale-edits" ] ~docv:"N"
        ~doc:
          "Apply N seeded edits to the source after profiling: the profile is \
           stale-matched and the final build compiles the drifted version N+1 \
           (0 = off)")

(* With drift on, the sampling variants stale-match their build-N profile
   onto the drifted source; the profile-free / exact variants simply build
   version N+1 fresh, so every row evaluates the same final program. *)
let stale_plan ~seed ~edits v (w : D.workload) =
  if edits <= 0 then D.Plan.make ~variant:v w
  else
    let d = W.Drift.apply ~seed ~edits w.D.w_source in
    match v with
    | D.Autofdo | D.Csspgo_probe_only | D.Csspgo_full ->
        D.Plan.make_stale ~variant:v ~stale_source:d.W.Drift.dr_source w
    | D.Nopgo | D.Instr_pgo ->
        D.Plan.make ~variant:v { w with D.w_source = d.W.Drift.dr_source }

let pgo_cmd =
  let run name variant all jobs cache_dir trace_file metrics_file fixed_clock
      stale_seed stale_edits =
    let w = Option.get (W.Suite.find name) in
    let metrics = Option.map (fun _ -> Obs.Metrics.create ()) metrics_file in
    let cache = cache_of_dir ?metrics cache_dir in
    let trace = mk_trace ~fixed:fixed_clock trace_file in
    let plan v = stale_plan ~seed:stale_seed ~edits:stale_edits v w in
    if all then begin
      let outs =
        O.Orchestrate.run_plans ?cache ?metrics ?trace ~jobs
          (List.map plan all_variants)
      in
      Printf.printf "%-18s %12s %12s %10s %10s\n" "variant" "eval-cycles" "prof-cycles"
        "text-B" "profile-B";
      List.iter2
        (fun v (o : D.outcome) ->
          Printf.printf "%-18s %12Ld %12Ld %10d %10d\n" (D.variant_name v)
            o.D.o_eval.D.ev_cycles o.D.o_profiling_cycles o.D.o_text_size
            o.D.o_profile_size)
        all_variants outs
    end
    else begin
      (* The single-variant path rides the same run_plans wiring so --trace
         and --metrics observe it identically to --all. With one plan there
         is nothing to parallelize across, so -j moves inside the plan:
         sharded correlation over the sample log's chunks. *)
      let o =
        match
          O.Orchestrate.run_plans ?cache ?metrics ?trace ~stage_jobs:jobs
            ~jobs:1 [ plan variant ]
        with
        | [ o ] -> o
        | _ -> assert false
      in
      print_outcome variant o
    end;
    print_cache_stats cache;
    export_trace trace trace_file;
    export_metrics metrics metrics_file
  in
  Cmd.v
    (Cmd.info "pgo" ~doc:"Run PGO variant(s) end-to-end on a named workload")
    Term.(const run $ workload_arg $ variant_arg $ all_variants_flag $ jobs_arg
          $ cache_dir_arg $ trace_arg $ metrics_arg $ fixed_clock_arg
          $ stale_seed_arg $ stale_edits_arg)

(* --- stale ----------------------------------------------------------- *)

let stale_cmd =
  let variant_opt_arg =
    let variants =
      [ ("autofdo", D.Autofdo); ("probe-only", D.Csspgo_probe_only);
        ("csspgo", D.Csspgo_full) ]
    in
    Arg.(
      value & opt (some (enum variants)) None
      & info [ "variant" ] ~docv:"V"
          ~doc:"autofdo | probe-only | csspgo (default: all three)")
  in
  let run name variant seed edits jobs cache_dir metrics_file =
    let w = Option.get (W.Suite.find name) in
    let drift = W.Drift.apply ~seed ~edits w.D.w_source in
    let w_new = { w with D.w_source = drift.W.Drift.dr_source } in
    Printf.printf "workload           %s\n" w.D.w_name;
    Printf.printf "drift              seed %Ld, %d edits\n" seed
      (List.length drift.W.Drift.dr_edits);
    List.iter
      (fun e -> Printf.printf "  %s\n" (W.Drift.edit_to_string e))
      drift.W.Drift.dr_edits;
    let vs = match variant with Some v -> [ v ] | None -> sampling_variants in
    let metrics = Option.map (fun _ -> Obs.Metrics.create ()) metrics_file in
    let cache = cache_of_dir ?metrics cache_dir in
    (* Per variant: the stale pipeline (profile on N, match + rebuild on N+1)
       and the fresh pipeline on N+1; one instrumentation ground truth on N+1
       anchors the block-overlap comparison. *)
    let plans =
      List.concat_map
        (fun v ->
          [
            D.Plan.make_stale ~variant:v ~stale_source:drift.W.Drift.dr_source w;
            D.Plan.make ~variant:v w_new;
          ])
        vs
      @ [ D.Plan.make ~variant:D.Instr_pgo w_new ]
    in
    let outs = Array.of_list (O.Orchestrate.run_plans ?cache ?metrics ~jobs plans) in
    let truth = outs.(2 * List.length vs) in
    List.iteri
      (fun i v ->
        let st = outs.(2 * i) and fr = outs.((2 * i) + 1) in
        let r = Option.get st.D.o_stale_report in
        Printf.printf "== %s ==\n" (D.variant_name v);
        print_string (Core.Stale_match.report_to_string r);
        let rc =
          Core.Quality.recovery ~truth:truth.D.o_annotated ~fresh:fr.D.o_annotated
            st.D.o_annotated
        in
        Printf.printf "count recovery     %.4f\n" (Core.Stale_match.recovery_rate r);
        Printf.printf "block overlap      stale %.4f  fresh %.4f  ratio %.4f\n"
          rc.Core.Quality.rec_stale rc.Core.Quality.rec_fresh rc.Core.Quality.rec_ratio;
        Printf.printf "eval cycles        stale %Ld  fresh %Ld\n"
          st.D.o_eval.D.ev_cycles fr.D.o_eval.D.ev_cycles)
      vs;
    print_cache_stats cache;
    export_metrics metrics metrics_file
  in
  Cmd.v
    (Cmd.info "stale"
       ~doc:
         "Drift a workload's source with a seeded edit script, stale-match the \
          build-N profile onto version N+1, and report recovery (verdicts, counts, \
          block overlap vs a fresh N+1 profile)")
    Term.(const run $ workload_arg $ variant_opt_arg $ stale_seed_arg
          $ stale_edits_arg $ jobs_arg $ cache_dir_arg $ metrics_arg)

(* --- report --------------------------------------------------------- *)

let report_cmd =
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON on stdout")
  in
  let run name json jobs cache_dir trace_file metrics_file fixed_clock =
    let w = Option.get (W.Suite.find name) in
    (* The report always runs with a live registry: its metrics section is
       the point. --metrics additionally dumps the same snapshot to a file. *)
    let metrics = Obs.Metrics.create () in
    let cache = cache_of_dir ~metrics cache_dir in
    let trace = mk_trace ~fixed:fixed_clock trace_file in
    let rows =
      O.Orchestrate.run_matrix ?cache ~metrics ?trace ~jobs ~variants:all_variants
        ~workloads:[ w ] ()
    in
    let truth =
      List.find_map
        (fun (_, v, (o : D.outcome)) ->
          if v = D.Instr_pgo then Some o.D.o_annotated else None)
        rows
    in
    let row (_, v, (o : D.outcome)) =
      let overlap =
        (* No-PGO never annotates, so overlap is not applicable there. *)
        match (v, truth) with
        | D.Nopgo, _ | _, None -> None
        | _, Some truth -> Some (Core.Quality.block_overlap ~truth o.D.o_annotated)
      in
      {
        Obs.Report.vr_variant = D.variant_name v;
        vr_eval_cycles = o.D.o_eval.D.ev_cycles;
        vr_eval_instructions = o.D.o_eval.D.ev_instructions;
        vr_profiling_cycles = o.D.o_profiling_cycles;
        vr_text_size = o.D.o_text_size;
        vr_profile_size = o.D.o_profile_size;
        vr_overlap = overlap;
        vr_stale_funcs = List.length o.D.o_stales;
      }
    in
    let report =
      {
        Obs.Report.rp_workload = w.D.w_name;
        rp_rows = List.map row rows;
        rp_metrics = Obs.Metrics.snapshot metrics;
      }
    in
    if json then begin
      let s = Obs.Json.to_string (Obs.Report.to_json report) in
      ignore (Obs.Json.parse_exn s);
      print_string s;
      print_newline ()
    end
    else print_string (Obs.Report.to_text report);
    export_trace trace trace_file;
    export_metrics (Some metrics) metrics_file
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run every PGO variant on a workload and render the profile-quality report \
          (block overlap vs instrumentation truth, costs, pipeline telemetry)")
    Term.(const run $ workload_arg $ json_flag $ jobs_arg $ cache_dir_arg $ trace_arg
          $ metrics_arg $ fixed_clock_arg)

(* --- probes -------------------------------------------------------- *)

let probes_cmd =
  let run file =
    let _, bin = compile_src ~probes:true ~opt:2 (read_file file) in
    Array.iter
      (fun (pr : Cg.Mach.probe_rec) ->
        Printf.printf "0x%04x  %Lx #%d%s" pr.Cg.Mach.pr_addr pr.Cg.Mach.pr_func
          pr.Cg.Mach.pr_id
          (match pr.Cg.Mach.pr_kind with
          | Ir.Instr.Block_probe -> ""
          | Ir.Instr.Callsite_probe -> " (callsite)");
        List.iter
          (fun (cs : Ir.Dloc.callsite) ->
            Printf.printf " @ %Lx:%d" cs.Ir.Dloc.cs_func cs.Ir.Dloc.cs_probe)
          pr.Cg.Mach.pr_chain;
        print_newline ())
      bin.Cg.Mach.probes
  in
  Cmd.v
    (Cmd.info "probes" ~doc:"Show the pseudo-probe metadata of a probed -O2 build")
    Term.(const run $ file_arg)

(* --- contexts ------------------------------------------------------ *)

let contexts_cmd =
  let run name =
    let w = Option.get (W.Suite.find name) in
    let options = D.default_options in
    let prog = F.Lower.compile w.D.w_source in
    Core.Pseudo_probe.insert prog;
    Opt.Pass.optimize ~config:options.D.opt_profiling prog;
    let pbin = Cg.Emit.emit ~options:options.D.emit_opts prog in
    let refp =
      let p = F.Lower.compile w.D.w_source in
      Core.Pseudo_probe.insert p;
      p
    in
    let name_of g =
      Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp g)
    in
    let checksum_of g =
      match Ir.Program.find_func_by_guid refp g with
      | Some f -> f.Ir.Func.checksum
      | None -> 0L
    in
    let log = Vm.Sample_log.create () in
    List.iter
      (fun (spec : D.run_spec) ->
        ignore
          (Vm.Machine.run ~pmu:(Some options.D.pmu)
             ~sink:(Vm.Sample_log.sink log) ~globals_init:spec.D.rs_globals
             ~args:spec.D.rs_args pbin ~entry:w.D.w_entry))
      w.D.w_train;
    let mb = Core.Missing_frame.start (Pg.Bindex.create pbin) in
    Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ ->
        Core.Missing_frame.feed mb ~lbr ~lbr_len);
    let missing = Core.Missing_frame.finish mb in
    let st =
      Core.Ctx_reconstruct.start ~name_of ~missing ~checksum_of
        (Pg.Bindex.create pbin)
    in
    Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack ~stack_len ->
        Core.Ctx_reconstruct.feed st ~lbr ~lbr_len ~stack ~stack_len);
    let trie, stats = Core.Ctx_reconstruct.finish st in
    Printf.printf "# samples=%d dropped=%d gaps: %d fixed / %d failed\n"
      stats.Core.Ctx_reconstruct.st_samples stats.Core.Ctx_reconstruct.st_dropped_misaligned
      stats.Core.Ctx_reconstruct.st_gaps_resolved stats.Core.Ctx_reconstruct.st_gaps_failed;
    (* The text profile format round-trips through Csspgo_profile.Text_io. *)
    print_string (P.Text_io.to_string (P.Text_io.Ctx_prof trie))
  in
  Cmd.v
    (Cmd.info "contexts" ~doc:"Print the reconstructed context trie of a workload")
    Term.(const run $ workload_arg)

(* --- convert / inspect ---------------------------------------------- *)

let profile_file_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Profile (text or binary) or sample log")

(* Malformed input is a user error, not a crash: report and exit 1. *)
let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("csspgo: " ^ msg); exit 1) fmt

let load_profile path =
  let data = read_file path in
  match P.Io.read data with
  | Ok p -> p
  | Error msg -> die "%s: %s" path msg

let convert_cmd =
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout)")
  in
  let to_arg =
    Arg.(
      value
      & opt (some (enum [ ("text", `Text); ("binary", `Binary) ])) None
      & info [ "to" ] ~docv:"FORM"
          ~doc:"Target form: text | binary (default: the opposite of the input)")
  in
  let run file out target =
    let data = read_file file in
    let is_log = Vm.Sample_log.is_binary data || String.length data >= 9
                 && String.equal (String.sub data 0 9) "samplelog" in
    let input_binary = P.Binary_io.is_binary data || Vm.Sample_log.is_binary data in
    let target =
      match target with
      | Some t -> t
      | None -> if input_binary then `Text else `Binary
    in
    let converted =
      if is_log then begin
        let log =
          match
            (if Vm.Sample_log.is_binary data then Vm.Sample_log.decode data
             else Vm.Sample_log.of_text data)
          with
          | Ok log -> log
          | Error e -> die "%s: %s" file (Csspgo_support.Wire.error_to_string e)
        in
        match target with
        | `Text -> Vm.Sample_log.to_text log
        | `Binary -> Vm.Sample_log.encode log
      end
      else
        let p = load_profile file in
        match target with
        | `Text -> P.Text_io.to_string p
        | `Binary -> P.Binary_io.encode p
    in
    match out with None -> print_string converted | Some path -> write_out path converted
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a profile or sample log between the canonical text form and the \
          digest-framed binary form (input format auto-detected)")
    Term.(const run $ profile_file_arg $ out_arg $ to_arg)

let inspect_cmd =
  let funcs_flag =
    Arg.(
      value & flag
      & info [ "funcs" ] ~doc:"Also list one fingerprint line per function")
  in
  let run file funcs =
    let data = read_file file in
    if Vm.Sample_log.is_binary data then begin
      match Vm.Sample_log.decode_chunks data with
      | Ok parts ->
          let samples =
            List.fold_left (fun acc l -> acc + Vm.Sample_log.n_samples l) 0 parts
          in
          let words =
            List.fold_left (fun acc l -> acc + Vm.Sample_log.words l) 0 parts
          in
          (* decode_chunks just validated the envelope, so framing_version
             cannot fail here. v1 is the whole-log framing; v2 frames one
             self-delimited section per chunk so shards can decode and
             correlate without ever concatenating the log. *)
          let version =
            match Vm.Sample_log.framing_version data with
            | Ok v -> v
            | Error _ -> assert false
          in
          Printf.printf "format      sample-log (binary, framing v%d)\n" version;
          Printf.printf "samples     %d\n" samples;
          Printf.printf "arena words %d\n" words;
          Printf.printf "chunks      %d\n" (List.length parts);
          let distinct =
            List.fold_left
              (fun acc l ->
                List.fold_left
                  (fun acc ls ->
                    if List.exists (Csspgo_support.Label_set.equal ls) acc then acc
                    else ls :: acc)
                  acc (Vm.Sample_log.labels l))
              [] parts
          in
          if List.exists Vm.Sample_log.is_labeled parts then
            Printf.printf "labels      %d distinct sets\n" (List.length distinct);
          (match
             Csspgo_support.Wire.unframe ~magic:Vm.Sample_log.magic
               ~max_version:max_int data
           with
          | Ok (_, sections) ->
              (* The digest shown is recomputed from the payload — unframe
                 already verified it against the trailer, so this line is
                 what a corrupted-but-decodable section would contradict. *)
              let payload_bytes =
                List.fold_left
                  (fun acc (_, payload) -> acc + String.length payload)
                  0 sections
              in
              Printf.printf "overhead    %d bytes of %d (envelope)\n"
                (String.length data - payload_bytes)
                (String.length data);
              (* v3 blobs carry one trailing label section alongside the
                 record chunks; only the latter pair up with decoded parts. *)
              let chunk_sections, label_sections =
                List.partition
                  (fun (tag, _) -> tag = Vm.Sample_log.tag_log)
                  sections
              in
              List.iteri
                (fun i ((tag, payload), chunk) ->
                  Printf.printf
                    "chunk       %d: tag %d, %d samples, %d bytes, fnv %016Lx\n"
                    i tag
                    (Vm.Sample_log.n_samples chunk)
                    (String.length payload)
                    (Csspgo_support.Wire.section_digest ~tag payload))
                (List.combine chunk_sections parts);
              List.iter
                (fun (tag, payload) ->
                  Printf.printf
                    "labels      tag %d, %d distinct sets, %d bytes, fnv %016Lx\n"
                    tag (List.length distinct) (String.length payload)
                    (Csspgo_support.Wire.section_digest ~tag payload))
                label_sections
          | Error e -> die "%s: %s" file (Csspgo_support.Wire.error_to_string e))
      | Error e -> die "%s: %s" file (Csspgo_support.Wire.error_to_string e)
    end
    else begin
      let p = load_profile file in
      let kind, form =
        ( (match p with
          | P.Text_io.Probe_prof _ -> "probe"
          | P.Text_io.Ctx_prof _ -> "ctx"
          | P.Text_io.Line_prof _ -> "line"),
          if P.Binary_io.is_binary data then "binary" else "text" )
      in
      let fps = P.Fingerprint.per_func p in
      Printf.printf "format      %s profile (%s)\n" kind form;
      Printf.printf "size        %d bytes (text %d, binary %d)\n" (String.length data)
        (String.length (P.Text_io.to_string p))
        (String.length (P.Binary_io.encode p));
      Printf.printf "functions   %d\n" (List.length fps);
      Printf.printf "fingerprint %Lx\n" (P.Fingerprint.merged p);
      (if P.Binary_io.is_binary data then
         match
           Csspgo_support.Wire.unframe ~magic:P.Binary_io.magic
             ~max_version:max_int data
         with
         | Ok (_, sections) ->
             let payload_bytes =
               List.fold_left
                 (fun acc (_, payload) -> acc + String.length payload)
                 0 sections
             in
             Printf.printf "overhead    %d bytes of %d (envelope)\n"
               (String.length data - payload_bytes)
               (String.length data);
             List.iteri
               (fun i (tag, payload) ->
                 Printf.printf "section     %d: tag %d, %d bytes, fnv %016Lx\n"
                   i tag (String.length payload)
                   (Csspgo_support.Wire.section_digest ~tag payload))
               sections
         | Error e -> die "%s: %s" file (Csspgo_support.Wire.error_to_string e));
      if funcs then
        List.iter (fun (g, d) -> Printf.printf "  %Lx %Lx\n" g d) fps
    end
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Show a profile's shape, sizes and per-function fingerprints (or a sample \
          log's framing version and per-chunk record counts); accepts both text \
          and binary forms")
    Term.(const run $ profile_file_arg $ funcs_flag)

(* --- fleet ---------------------------------------------------------- *)

let fleet_cmd =
  let instances_arg =
    Arg.(
      value & opt int 8
      & info [ "instances" ] ~docv:"N"
          ~doc:"Total fleet instances, split evenly across in-flight versions")
  in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Collector shards")
  in
  let duty_arg =
    Arg.(
      value & opt float 1.0
      & info [ "duty" ] ~docv:"P"
          ~doc:"Per-request sampling probability on each instance")
  in
  let versions_arg =
    Arg.(
      value & opt int 2
      & info [ "versions" ] ~docv:"K"
          ~doc:"Binary versions in flight per window (the canary plus K-1 draining)")
  in
  let generations_arg =
    Arg.(
      value & opt int 2
      & info [ "generations" ] ~docv:"G" ~doc:"Release-train length")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the train summary as JSON")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Re-parse the emitted JSON and assert its schema invariants")
  in
  let health_flag =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Track one profile-health window per generation and print the \
             scored report after the train summary")
  in
  let run name instances shards duty versions generations jobs json check health =
    let w = Option.get (W.Suite.find name) in
    if versions < 1 then die "--versions must be at least 1";
    if generations < 1 then die "--generations must be at least 1";
    if instances < versions then die "--instances must be at least --versions";
    let cfg =
      {
        Fl.Train.default with
        Fl.Train.t_generations = generations;
        t_skew = versions - 1;
        t_cohort = max 1 (instances / versions);
        t_fleet =
          {
            Fl.Sim.default with
            Fl.Sim.f_shards = shards;
            f_duty = duty;
            f_jobs = jobs;
            (* Scale the stream to the cohort so every instance serves
               work (the suite workloads have short training input lists). *)
            f_request_copies = max 1 (instances / versions);
          };
      }
    in
    let tracker = if health then Some (Obs.Health.create ()) else None in
    let gens = Fl.Train.run ?health:tracker cfg w in
    let opt_float = function Some f -> Printf.sprintf "%.3f" f | None -> "-" in
    List.iter
      (fun (g : Fl.Train.generation) ->
        let fl = g.Fl.Train.g_fleet in
        Printf.printf
          "gen %d  speedup %.3f  overlap %s  carry-recovery %s  requests %d  \
           sampled %d  samples %d  batches %d  bytes %d\n"
          g.Fl.Train.g_id g.Fl.Train.g_speedup
          (opt_float g.Fl.Train.g_overlap)
          (opt_float
             (Option.map Core.Stale_match.recovery_rate g.Fl.Train.g_carry))
          fl.Fl.Sim.fs_requests fl.Fl.Sim.fs_sampled fl.Fl.Sim.fs_samples
          fl.Fl.Sim.fs_batches fl.Fl.Sim.fs_bytes)
      gens;
    let doc =
      Obs.Json.Obj
        [
          ("workload", Obs.Json.String w.D.w_name);
          ("instances", Obs.Json.Int instances);
          ("shards", Obs.Json.Int shards);
          ("duty", Obs.Json.Float duty);
          ("versions", Obs.Json.Int versions);
          ("generations", Obs.Json.Int generations);
          ( "train",
            Obs.Json.List
              (List.map
                 (fun (g : Fl.Train.generation) ->
                   let fl = g.Fl.Train.g_fleet in
                   Obs.Json.Obj
                     [
                       ("id", Obs.Json.Int g.Fl.Train.g_id);
                       ("speedup", Obs.Json.Float g.Fl.Train.g_speedup);
                       ( "overlap",
                         match g.Fl.Train.g_overlap with
                         | Some f -> Obs.Json.Float f
                         | None -> Obs.Json.Null );
                       ( "carry_recovery",
                         match g.Fl.Train.g_carry with
                         | Some r ->
                             Obs.Json.Float (Core.Stale_match.recovery_rate r)
                         | None -> Obs.Json.Null );
                       ("requests", Obs.Json.Int fl.Fl.Sim.fs_requests);
                       ("sampled", Obs.Json.Int fl.Fl.Sim.fs_sampled);
                       ("samples", Obs.Json.Int fl.Fl.Sim.fs_samples);
                       ("batches", Obs.Json.Int fl.Fl.Sim.fs_batches);
                       ("bytes", Obs.Json.Int fl.Fl.Sim.fs_bytes);
                     ])
                 gens) );
        ]
    in
    let text = Obs.Json.to_string doc in
    (match json with Some path -> write_out path text | None -> ());
    if check then begin
      (* Schema self-assertion: the emitted document must parse back and
         carry one well-formed record per generation. *)
      let doc' = Obs.Json.parse_exn text in
      let expect what = die "fleet --check: %s" what in
      let mem k d = match Obs.Json.member k d with
        | Some v -> v
        | None -> expect (Printf.sprintf "missing field %S" k)
      in
      (match mem "generations" doc' with
      | Obs.Json.Int g when g = generations -> ()
      | _ -> expect "generation count mismatch");
      let train =
        match Obs.Json.to_list (mem "train" doc') with
        | Some l -> l
        | None -> expect "train is not a list"
      in
      if List.length train <> generations then
        expect "train length differs from generation count";
      List.iteri
        (fun i g ->
          (match mem "id" g with
          | Obs.Json.Int id when id = i -> ()
          | _ -> expect "non-contiguous generation ids");
          (match mem "speedup" g with
          | Obs.Json.Float f when f > 0.0 -> ()
          | _ -> expect "speedup not a positive number");
          (match mem "overlap" g with
          | Obs.Json.Null -> ()
          | Obs.Json.Float f when f >= 0.0 && f <= 1.0 -> ()
          | _ -> expect "overlap outside [0, 1]");
          match mem "samples" g with
          | Obs.Json.Int n when n >= 0 -> ()
          | _ -> expect "samples not a non-negative integer")
        train;
      print_endline "fleet check ok"
    end;
    Option.iter
      (fun t -> print_string (Obs.Health.report_to_text (Obs.Health.report t)))
      tracker
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate continuous profiling: a sharded fleet samples mixed binary \
          versions, profiles merge across versions and generations, and each \
          release rebuilds with the carried profile")
    Term.(
      const run $ workload_arg $ instances_arg $ shards_arg $ duty_arg
      $ versions_arg $ generations_arg $ jobs_arg $ json_arg $ check_flag
      $ health_flag)

(* --- health --------------------------------------------------------- *)

let health_cmd =
  let generations_arg =
    Arg.(
      value & opt int 3
      & info [ "generations" ] ~docv:"G"
          ~doc:"Release-train length (one health window per generation)")
  in
  let instances_arg =
    Arg.(
      value & opt int 4
      & info [ "instances" ] ~docv:"N"
          ~doc:"Total fleet instances, split across in-flight versions")
  in
  let versions_arg =
    Arg.(
      value & opt int 2
      & info [ "versions" ] ~docv:"K" ~doc:"Binary versions in flight per window")
  in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Collector shards")
  in
  let duty_arg =
    Arg.(
      value & opt float 1.0
      & info [ "duty" ] ~docv:"P" ~doc:"Per-request sampling probability")
  in
  let edits_arg =
    Arg.(
      value & opt int 2
      & info [ "edits" ] ~docv:"E" ~doc:"Drift edits per release transition")
  in
  let spike_arg =
    Arg.(
      value
      & opt (some (pair ~sep:':' int int)) None
      & info [ "spike" ] ~docv:"G:E"
          ~doc:
            "Inject a drift of E edits at the transition into generation G \
             (other transitions keep --edits) — the mid-train anomaly the \
             EWMA detector should flag")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the report as canonical JSON instead of text")
  in
  let openmetrics_arg =
    Arg.(
      value & opt (some string) None
      & info [ "openmetrics" ] ~docv:"FILE"
          ~doc:"Write the final metrics snapshot as OpenMetrics exposition")
  in
  let openmetrics_series_arg =
    Arg.(
      value & opt (some string) None
      & info [ "openmetrics-series" ] ~docv:"FILE"
          ~doc:
            "Write the windowed series (one timestamped point per generation \
             on the fixed clock) as OpenMetrics exposition")
  in
  let run name generations instances versions shards duty edits spike jobs json
      openmetrics openmetrics_series =
    let w = Option.get (W.Suite.find name) in
    if versions < 1 then die "--versions must be at least 1";
    if generations < 1 then die "--generations must be at least 1";
    if instances < versions then die "--instances must be at least --versions";
    let schedule =
      match spike with
      | None -> []
      | Some (g, e) ->
          if g < 1 || g >= generations then
            die "--spike generation must be in 1..%d" (generations - 1);
          List.init g (fun i -> if i = g - 1 then e else edits)
    in
    let cfg =
      {
        Fl.Train.default with
        Fl.Train.t_generations = generations;
        t_edits = edits;
        t_edit_schedule = schedule;
        t_skew = versions - 1;
        t_cohort = max 1 (instances / versions);
        (* The health verdict needs no instr-PGO truth run; window-over-window
           overlap comes from the fleet profiles themselves. *)
        t_overlap = false;
        t_fleet =
          {
            Fl.Sim.default with
            Fl.Sim.f_shards = shards;
            f_duty = duty;
            f_jobs = jobs;
            f_request_copies = max 1 (instances / versions);
          };
      }
    in
    let metrics = Obs.Metrics.create () in
    let series = Obs.Series.create () in
    let tracker = Obs.Health.create () in
    let gens = Fl.Train.run ~metrics ~series ~health:tracker cfg w in
    ignore gens;
    let rep = Obs.Health.report tracker in
    (* The canonical JSON must reparse whether or not it is printed. *)
    let doc = Obs.Json.to_string (Obs.Health.report_to_json rep) in
    ignore (Obs.Json.parse_exn doc);
    if json then print_endline doc
    else print_string (Obs.Health.report_to_text rep);
    Option.iter
      (fun path -> write_out path (Obs.Export.snapshot (Obs.Metrics.snapshot metrics)))
      openmetrics;
    Option.iter
      (fun path -> write_out path (Obs.Export.series series))
      openmetrics_series
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run a fixed-clock release train and score one profile-health window \
          per generation: drop rate, correlation hit rate, inferred-frame \
          share, stale recovery, window-over-window overlap, and EWMA anomaly \
          alerts. Output is byte-identical at any -j.")
    Term.(
      const run $ workload_arg $ generations_arg $ instances_arg $ versions_arg
      $ shards_arg $ duty_arg $ edits_arg $ spike_arg $ jobs_arg $ json_flag
      $ openmetrics_arg $ openmetrics_series_arg)

(* --- labels --------------------------------------------------------- *)

let labels_cmd =
  let tenants_arg =
    Arg.(
      value
      & pos_all (pair ~sep:':' string int) []
      & info [] ~docv:"WORKLOAD:WEIGHT"
          ~doc:
            "Tenant mix: suite workload name and integer traffic weight, one \
             pair per tenant (e.g. adfinder:3 haas:1)")
  in
  let requests_arg =
    Arg.(
      value & opt int 48
      & info [ "requests" ] ~docv:"N" ~doc:"Labeled requests in the served stream")
  in
  let diurnal_arg =
    Arg.(
      value & opt int 0
      & info [ "diurnal" ] ~docv:"P"
          ~doc:
            "Modulate tenant weights with a phase-shifted triangle wave of \
             period P requests (0 disables the drift)")
  in
  let instances_arg =
    Arg.(
      value & opt int 2
      & info [ "instances" ] ~docv:"N" ~doc:"Serving instances")
  in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Collector shards")
  in
  let duty_arg =
    Arg.(
      value & opt float 1.0
      & info [ "duty" ] ~docv:"P" ~doc:"Per-request sampling probability")
  in
  let seed_arg =
    Arg.(
      value & opt int64 7L
      & info [ "seed" ] ~docv:"S" ~doc:"Traffic-mix draw seed")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the comparison as canonical JSON instead of text")
  in
  let run tenants requests diurnal instances shards duty seed jobs json =
    if tenants = [] then
      die "labels: name at least one tenant as WORKLOAD:WEIGHT (e.g. adfinder:3)";
    let tenants =
      List.map
        (fun (name, weight) ->
          match W.Suite.find name with
          | Some w -> { W.Mix.t_name = name; t_workload = w; t_weight = weight }
          | None -> die "unknown workload %s (see `csspgo_tool list`)" name)
        tenants
    in
    let mix = W.Mix.make ~seed ~requests ~diurnal_period:diurnal tenants in
    let cfg =
      {
        Fl.Tenancy.default with
        Fl.Tenancy.ty_instances = instances;
        ty_shards = shards;
        ty_duty = duty;
        ty_jobs = jobs;
      }
    in
    let collected = Fl.Tenancy.collect cfg mix in
    let specialized = Fl.Tenancy.specialize cfg mix collected in
    let comparisons = Fl.Tenancy.quality cfg mix collected specialized in
    let count_of name =
      match List.assoc_opt name mix.W.Mix.mx_counts with Some n -> n | None -> 0
    in
    let doc =
      Obs.Json.Obj
        [
          ("mix", Obs.Json.String mix.W.Mix.mx_workload.D.w_name);
          ("requests", Obs.Json.Int collected.Fl.Tenancy.co_requests);
          ("sampled", Obs.Json.Int collected.Fl.Tenancy.co_sampled);
          ("samples", Obs.Json.Int collected.Fl.Tenancy.co_samples);
          ("batches", Obs.Json.Int collected.Fl.Tenancy.co_batches);
          ( "labels",
            Obs.Json.Int
              (Csspgo_profile.Labels.n_slices
                 collected.Fl.Tenancy.co_labeled.Fl.Build.lc_slices) );
          ( "tenants",
            Obs.Json.List
              (List.map
                 (fun (c : Fl.Tenancy.comparison) ->
                   Obs.Json.Obj
                     [
                       ("tenant", Obs.Json.String c.Fl.Tenancy.cp_tenant);
                       ("requests", Obs.Json.Int (count_of c.Fl.Tenancy.cp_tenant));
                       ( "samples",
                         Obs.Json.Int (Int64.to_int c.Fl.Tenancy.cp_weight) );
                       ("share", Obs.Json.Float c.Fl.Tenancy.cp_share);
                       ( "sliced_overlap",
                         if Float.is_nan c.Fl.Tenancy.cp_sliced_overlap then
                           Obs.Json.Null
                         else Obs.Json.Float c.Fl.Tenancy.cp_sliced_overlap );
                       ( "blended_overlap",
                         Obs.Json.Float c.Fl.Tenancy.cp_blended_overlap );
                       ( "sliced_cycles",
                         if Int64.compare c.Fl.Tenancy.cp_sliced_cycles 0L < 0
                         then Obs.Json.Null
                         else
                           Obs.Json.Int
                             (Int64.to_int c.Fl.Tenancy.cp_sliced_cycles) );
                       ( "blended_cycles",
                         Obs.Json.Int
                           (Int64.to_int c.Fl.Tenancy.cp_blended_cycles) );
                       ( "nopgo_cycles",
                         Obs.Json.Int (Int64.to_int c.Fl.Tenancy.cp_nopgo_cycles)
                       );
                     ])
                 comparisons) );
        ]
    in
    let text = Obs.Json.to_string doc in
    (* The canonical JSON must reparse whether or not it is printed. *)
    ignore (Obs.Json.parse_exn text);
    if json then print_endline text
    else begin
      Printf.printf "mix      %s\n" mix.W.Mix.mx_workload.D.w_name;
      Printf.printf "stream   %d requests, %d sampled, %d samples, %d label sets\n"
        collected.Fl.Tenancy.co_requests collected.Fl.Tenancy.co_sampled
        collected.Fl.Tenancy.co_samples
        (Csspgo_profile.Labels.n_slices
           collected.Fl.Tenancy.co_labeled.Fl.Build.lc_slices);
      List.iter
        (fun (c : Fl.Tenancy.comparison) ->
          Printf.printf
            "tenant   %-12s req %3d  samples %6Ld (%.1f%%)  overlap sliced %s \
             blended %.3f  cycles sliced %Ld blended %Ld nopgo %Ld\n"
            c.Fl.Tenancy.cp_tenant
            (count_of c.Fl.Tenancy.cp_tenant)
            c.Fl.Tenancy.cp_weight
            (100.0 *. c.Fl.Tenancy.cp_share)
            (if Float.is_nan c.Fl.Tenancy.cp_sliced_overlap then "-"
             else Printf.sprintf "%.3f" c.Fl.Tenancy.cp_sliced_overlap)
            c.Fl.Tenancy.cp_blended_overlap c.Fl.Tenancy.cp_sliced_cycles
            c.Fl.Tenancy.cp_blended_cycles c.Fl.Tenancy.cp_nopgo_cycles)
        comparisons
    end
  in
  Cmd.v
    (Cmd.info "labels"
       ~doc:
         "Serve a weighted multi-tenant workload mix with request-scoped \
          profile labels, slice the correlated profile per tenant, and \
          compare per-tenant specialized builds against the blended build \
          (overlap vs instrumentation ground truth, cycles vs no-PGO). \
          Output is byte-identical at any -j.")
    Term.(
      const run $ tenants_arg $ requests_arg $ diurnal_arg $ instances_arg
      $ shards_arg $ duty_arg $ seed_arg $ jobs_arg $ json_flag)

(* --- bench-check ---------------------------------------------------- *)

(* Schema guard for the committed BENCH_*.json artifacts: every file must
   be valid JSON recording the host core count, and the known experiments
   must carry their headline fields — a bench refactor that silently stops
   writing a field fails here, not in a reader months later. *)
let bench_check_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"BENCH_*.json files to validate")
  in
  let required = function
    | "BENCH_pipeline.json" ->
        [ "workload"; "n_samples"; "speedup"; "streaming_samples_per_sec" ]
    | "BENCH_stale.json" -> [ "distances"; "workloads"; "aggregate_overlap" ]
    | "BENCH_format.json" -> [ "workload"; "profiles"; "sample_log"; "incremental" ]
    | "BENCH_fleet.json" ->
        [ "workload"; "fleet_sizes"; "duty_sweep"; "skew_sweep"; "train" ]
    | "BENCH_corr.json" -> [ "workload"; "n_samples"; "decode"; "correlate" ]
    | "BENCH_health.json" -> [ "workload"; "overhead_pct"; "windows"; "crit_alerts" ]
    | "BENCH_labels.json" -> [ "tenants"; "requests"; "skew_levels"; "drift" ]
    | _ -> []
  in
  let run files =
    List.iter
      (fun path ->
        let doc =
          match Obs.Json.parse (read_file path) with
          | Ok d -> d
          | Error msg -> die "%s: %s" path msg
        in
        (match Obs.Json.member "cores" doc with
        | Some (Obs.Json.Int n) when n >= 1 -> ()
        | Some (Obs.Json.Int n) ->
            die "%s: host core count must be > 0, got %d" path n
        | Some j ->
            die "%s: host core count must be > 0, got %s" path
              (Obs.Json.to_string j)
        | None -> die "%s: missing \"cores\" (host core count)" path);
        List.iter
          (fun k ->
            if Obs.Json.member k doc = None then
              die "%s: missing field %S" path k)
          (required (Filename.basename path));
        Printf.printf "%s: ok\n" (Filename.basename path))
      files
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Validate committed BENCH_*.json artifacts: parseable JSON, a \
          recorded host core count, and the per-experiment headline fields")
    Term.(const run $ files_arg)

(* --- fuzz ---------------------------------------------------------- *)

module Fuzz = Csspgo_fuzz

let seeds_conv =
  let parse s =
    match String.index_opt s '-' with
    | Some i -> (
        let lo = String.sub s 0 i
        and hi = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when lo >= 0 && hi >= lo -> Ok (lo, hi)
        | _ -> Error (`Msg (Printf.sprintf "invalid seed range %S (want LO-HI)" s)))
    | None -> (
        match int_of_string_opt s with
        | Some n when n >= 0 -> Ok (n, n)
        | _ -> Error (`Msg (Printf.sprintf "invalid seed range %S (want LO-HI)" s)))
  in
  let print fmt (lo, hi) = Format.fprintf fmt "%d-%d" lo hi in
  Arg.conv (parse, print)

let fuzz_cmd =
  let seeds_arg =
    Arg.(
      value & opt seeds_conv (1, 1000)
      & info [ "seeds" ] ~docv:"LO-HI" ~doc:"Inclusive seed range to fuzz")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR" ~doc:"Corpus directory for minimized reproducers")
  in
  let plans_arg =
    Arg.(
      value & opt int Fuzz.Campaign.default_config.Fuzz.Campaign.cf_plans_per_seed
      & info [ "plans" ] ~docv:"N" ~doc:"Random pipeline permutations per seed")
  in
  let n_funcs_arg =
    Arg.(
      value & opt int Fuzz.Campaign.default_config.Fuzz.Campaign.cf_n_funcs
      & info [ "n-funcs" ] ~docv:"N" ~doc:"Functions per generated program")
  in
  let size_arg =
    Arg.(
      value & opt int Fuzz.Campaign.default_config.Fuzz.Campaign.cf_size
      & info [ "size" ] ~docv:"N" ~doc:"Program size knob (statements per block)")
  in
  let floor_arg =
    Arg.(
      value & opt float Fuzz.Campaign.default_config.Fuzz.Campaign.cf_quality_floor
      & info [ "quality-floor" ] ~docv:"F"
          ~doc:"Minimum probe-vs-instrumentation block overlap")
  in
  let no_variants_arg =
    Arg.(value & flag & info [ "no-variants" ] ~doc:"Skip the five Driver PGO variants")
  in
  let no_minimize_arg =
    Arg.(value & flag & info [ "no-minimize" ] ~doc:"Report failures without shrinking")
  in
  let no_stream_arg =
    Arg.(
      value & flag
      & info [ "no-stream-oracle" ]
          ~doc:"Skip the streaming-vs-materialized profile byte-identity oracle")
  in
  let no_stale_arg =
    Arg.(
      value & flag
      & info [ "no-stale-oracle" ]
          ~doc:"Skip the stale-profile matching oracle family")
  in
  let no_format_arg =
    Arg.(
      value & flag
      & info [ "no-format-oracle" ]
          ~doc:
            "Skip the binary/text profile format oracle family (round-trips, \
             sample logs, incremental rebuilds)")
  in
  let no_fleet_arg =
    Arg.(
      value & flag
      & info [ "no-fleet-oracle" ]
          ~doc:
            "Skip the fleet merge oracle family (sharded-fleet-vs-single \
             identity, merge laws on correlated profiles)")
  in
  let no_parcorr_arg =
    Arg.(
      value & flag
      & info [ "no-parcorr-oracle" ]
          ~doc:
            "Skip the parallel-correlation oracle family (sharded-vs-serial \
             correlation byte identity per profile shape)")
  in
  let no_health_arg =
    Arg.(
      value & flag
      & info [ "no-health-oracle" ]
          ~doc:
            "Skip the health telemetry oracle family (jobs-independent \
             report/series byte identity, series merge laws, OpenMetrics \
             trailer)")
  in
  let no_labels_arg =
    Arg.(
      value & flag
      & info [ "no-label-oracle" ]
          ~doc:
            "Skip the request-label oracle family (label-sliced \
             slice-then-merge blend identity per profile shape, implicit \
             single slice for label-free logs, lossless v3 -> v2 downgrade)")
  in
  let fuzz_stale_edits_arg =
    Arg.(
      value & opt int Fuzz.Campaign.default_config.Fuzz.Campaign.cf_stale_edits
      & info [ "stale-edits" ] ~docv:"N"
          ~doc:"Drift edit-script length for the stale-matching oracle")
  in
  let max_failures_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-failures" ] ~docv:"N" ~doc:"Stop the campaign after N failures")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "inject-bug" ]
          ~doc:"Append a deliberately broken pass to every pipeline (harness self-test)")
  in
  let run (lo, hi) out plans n_funcs size floor no_variants no_minimize no_stream
      no_stale no_format no_fleet no_parcorr no_health no_labels stale_edits
      max_failures inject jobs cache_dir metrics_file =
    let cfg =
      {
        Fuzz.Campaign.default_config with
        Fuzz.Campaign.cf_plans_per_seed = plans;
        cf_n_funcs = n_funcs;
        cf_size = size;
        cf_quality_floor = floor;
        cf_variants = not no_variants;
        cf_minimize = not no_minimize;
        cf_stream_oracle = not no_stream;
        cf_stale_oracle = not no_stale;
        cf_format_oracle = not no_format;
        cf_fleet_oracle = not no_fleet;
        cf_parcorr_oracle = not no_parcorr;
        cf_health_oracle = not no_health;
        cf_label_oracle = not no_labels;
        cf_stale_edits = stale_edits;
        cf_max_failures = max_failures;
        cf_inject = (if inject then Some Fuzz.Campaign.planted_bug else None);
      }
    in
    let cache = cache_of_dir cache_dir in
    let metrics = Option.map (fun _ -> Obs.Metrics.create ()) metrics_file in
    (* Progress and summary stats go to stderr; stdout carries only the
       machine-parseable FAIL records. *)
    let total = hi - lo + 1 in
    let progress (st : Fuzz.Campaign.stats) =
      Printf.eprintf "\r[fuzz] %d/%d seeds  discards %d  failures %d%!"
        st.Fuzz.Campaign.st_runs total st.Fuzz.Campaign.st_discards
        (Fuzz.Campaign.n_failures st)
    in
    let st =
      Fuzz.Campaign.run ?out_dir:out ~progress ?cache ?metrics ~jobs cfg ~seeds:(lo, hi)
    in
    Printf.eprintf "\n%!";
    List.iter
      (fun (fl : Fuzz.Campaign.failure) ->
        Printf.printf "FAIL seed %Ld  %s  at %s\n  %s\n" fl.Fuzz.Campaign.fl_seed
          (Fuzz.Campaign.kind_name fl.Fuzz.Campaign.fl_kind)
          (Fuzz.Campaign.site_to_string fl.Fuzz.Campaign.fl_site)
          fl.Fuzz.Campaign.fl_detail;
        match fl.Fuzz.Campaign.fl_minimized with
        | Some m ->
            Printf.printf "  minimized to %d lines%s\n"
              (Fuzz.Reduce.count_source_lines m)
              (match out with Some d -> Printf.sprintf " (see %s/)" d | None -> "")
        | None -> ())
      (List.rev st.Fuzz.Campaign.st_failures);
    Format.eprintf "%a@." Fuzz.Campaign.pp_stats st;
    export_metrics metrics metrics_file;
    if Fuzz.Campaign.n_failures st > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing campaign: permuted pass pipelines and PGO variants \
          against an -O0 reference, with test-case minimization")
    Term.(
      const run $ seeds_arg $ out_arg $ plans_arg $ n_funcs_arg $ size_arg $ floor_arg
      $ no_variants_arg $ no_minimize_arg $ no_stream_arg $ no_stale_arg
      $ no_format_arg $ no_fleet_arg $ no_parcorr_arg $ no_health_arg
      $ no_labels_arg $ fuzz_stale_edits_arg $ max_failures_arg $ inject_arg $ jobs_arg
      $ cache_dir_arg $ metrics_arg)

(* --- cache ---------------------------------------------------------- *)

let cache_cmd =
  let dir_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Artifact cache directory")
  in
  let clear_arg =
    Arg.(value & flag & info [ "clear" ] ~doc:"Delete every cache entry in DIR")
  in
  let run dir clear =
    if clear then Printf.printf "removed %d entries from %s\n" (O.Cache.clear_dir dir) dir
    else begin
      let s = O.Cache.scan_dir dir in
      Printf.printf "entries  %d\n" s.O.Cache.d_entries;
      Printf.printf "bytes    %d\n" s.O.Cache.d_bytes;
      List.iter (fun (k, n) -> Printf.printf "  %-14s %6d\n" k n) s.O.Cache.d_kinds
    end
  in
  Cmd.v
    (Cmd.info "cache" ~doc:"Show statistics for (or clear) an artifact cache directory")
    Term.(const run $ dir_arg $ clear_arg)

let () =
  let info =
    Cmd.info "csspgo" ~version:"1.0.0"
      ~doc:"CSSPGO: context-sensitive sampling-based PGO with pseudo-instrumentation"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            compile_cmd; run_cmd; pgo_cmd; stale_cmd; report_cmd; probes_cmd;
            contexts_cmd; convert_cmd; inspect_cmd; fleet_cmd; health_cmd;
            labels_cmd;
            bench_check_cmd; fuzz_cmd; cache_cmd;
          ]))
