(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§IV) on the simulated substrate, printing measured numbers
   next to the paper's reference values.

   Usage: main.exe
     [fig6|fig7|fig8|fig9|table1|client|drift|stale|ablation|orch|micro|pipeline|format|fleet|corr|health|labels|all]
   Default: all. *)

module F = Csspgo_frontend
module Ir = Csspgo_ir
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module P = Csspgo_profile
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads

let pf = Printf.printf

(* ------------------------------------------------------------------ *)
(* Shared measurement cache: one driver run per (workload, variant).    *)

let cache : (string * D.variant, D.outcome) Hashtbl.t = Hashtbl.create 64

let outcome (w : D.workload) v =
  match Hashtbl.find_opt cache (w.D.w_name, v) with
  | Some o -> o
  | None ->
      let o = D.run_variant v w in
      Hashtbl.replace cache (w.D.w_name, v) o;
      o

let cycles w v = Int64.to_float (outcome w v).D.o_eval.D.ev_cycles

(* Profiling run measurement shared by fig8 / table1 / micro: the -O2
   profiling build (probed or plain) run over the training inputs under
   the sampling PMU. Returns the binary, the materialized samples and the
   total training cycles. *)
let profiling_run ~probes (w : D.workload) =
  let options = D.default_options in
  let prog = F.Lower.compile w.D.w_source in
  if probes then Core.Pseudo_probe.insert prog;
  Opt.Pass.optimize ~config:options.D.opt_profiling prog;
  let bin = Cg.Emit.emit ~options:options.D.emit_opts prog in
  let log = Vm.Sample_log.create () in
  let cycles = ref 0L in
  List.iter
    (fun (spec : D.run_spec) ->
      let r =
        Vm.Machine.run ~pmu:(Some options.D.pmu) ~sink:(Vm.Sample_log.sink log)
          ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args bin
          ~entry:w.D.w_entry
      in
      cycles := Int64.add !cycles r.Vm.Machine.cycles)
    w.D.w_train;
  (bin, Vm.Sample_log.to_samples log, !cycles)

let gain_vs_autofdo w v =
  let base = cycles w D.Autofdo in
  (base -. cycles w v) /. base *. 100.0

let size_vs_autofdo w v =
  let base = float_of_int (outcome w D.Autofdo).D.o_text_size in
  (float_of_int (outcome w v).D.o_text_size -. base) /. base *. 100.0

let sep title =
  pf "\n==================================================================\n";
  pf "%s\n" title;
  pf "==================================================================\n"

(* ------------------------------------------------------------------ *)

let fig6 () =
  sep "Fig. 6 — performance vs AutoFDO baseline (server workloads)";
  pf "paper: CSSPGO delivers +1%%..+5%% over AutoFDO; pseudo-instrumentation\n";
  pf "contributes 38-78%% of the gain; on HHVM, Instr PGO +2.4%% vs CSSPGO +1.5%%.\n\n";
  pf "%-12s %12s %12s %12s %12s\n" "workload" "no-pgo" "probe-only" "csspgo" "instr-pgo";
  List.iter
    (fun w ->
      pf "%-12s %+11.2f%% %+11.2f%% %+11.2f%% %+11.2f%%\n" w.D.w_name
        (gain_vs_autofdo w D.Nopgo)
        (gain_vs_autofdo w D.Csspgo_probe_only)
        (gain_vs_autofdo w D.Csspgo_full)
        (gain_vs_autofdo w D.Instr_pgo))
    W.Suite.server_workloads;
  (* probe-only share of full CSSPGO's gain, where both are positive *)
  pf "\nprobe-only share of full-CSSPGO gain (paper band: 38-78%%):\n";
  List.iter
    (fun w ->
      let po = gain_vs_autofdo w D.Csspgo_probe_only in
      let full = gain_vs_autofdo w D.Csspgo_full in
      if full > 0.05 && po >= 0.0 && po <= full then
        pf "  %-12s %5.0f%%\n" w.D.w_name (po /. full *. 100.0)
      else
        pf "  %-12s   n/a (probe-only %+.2f%%, full %+.2f%%)\n" w.D.w_name po full)
    W.Suite.server_workloads

let fig7 () =
  sep "Fig. 7 — code size vs AutoFDO";
  pf "paper: full CSSPGO noticeably smaller on 4/5 workloads; probe-only\n";
  pf "bigger than full (the pre-inliner is what saves size).\n\n";
  pf "%-12s %14s %14s\n" "workload" "probe-only" "csspgo(full)";
  List.iter
    (fun w ->
      pf "%-12s %+13.2f%% %+13.2f%%\n" w.D.w_name
        (size_vs_autofdo w D.Csspgo_probe_only)
        (size_vs_autofdo w D.Csspgo_full))
    W.Suite.server_workloads

let fig8 () =
  sep "Fig. 8 — pseudo-instrumentation run-time overhead (profiling builds)";
  pf "paper: within the P95 noise band on all workloads; one workload\n";
  pf "slightly faster with probes (blocked an undesirable optimization).\n\n";
  pf "%-12s %14s %14s %10s\n" "workload" "plain(cyc)" "probed(cyc)" "overhead";
  List.iter
    (fun w ->
      let _, _, plain = profiling_run ~probes:false w in
      let _, _, probed = profiling_run ~probes:true w in
      pf "%-12s %14Ld %14Ld %+9.2f%%\n" w.D.w_name plain probed
        ((Int64.to_float probed -. Int64.to_float plain) /. Int64.to_float plain *. 100.))
    W.Suite.server_workloads

let fig9 () =
  sep "Fig. 9 — metadata size overhead (vs binary incl. debug info)";
  pf "paper: probe metadata averages ~25%% of binary size; it is\n";
  pf "self-contained and never loaded at run time.\n\n";
  pf "%-12s %10s %12s %12s %12s %12s\n" "workload" "text(B)" "debug(B)" "probes(B)"
    "probe %%" "debug %%";
  let avg = ref 0.0 in
  List.iter
    (fun w ->
      let o = outcome w D.Csspgo_full in
      let total = o.D.o_text_size + o.D.o_debug_size + o.D.o_probe_meta_size in
      let pm = float_of_int o.D.o_probe_meta_size /. float_of_int total *. 100. in
      let dm = float_of_int o.D.o_debug_size /. float_of_int total *. 100. in
      avg := !avg +. pm;
      pf "%-12s %10d %12d %12d %11.1f%% %11.1f%%\n" w.D.w_name o.D.o_text_size
        o.D.o_debug_size o.D.o_probe_meta_size pm dm)
    W.Suite.server_workloads;
  pf "%-12s %47s %11.1f%%\n" "average" "" (!avg /. float_of_int (List.length W.Suite.server_workloads))

let table1 () =
  sep "Table I — HHVM profile quality and profiling overhead";
  pf "paper:               AutoFDO   CSSPGO   Instr PGO\n";
  pf "  block overlap        88.2%%    92.3%%      100%%\n";
  pf "  profiling overhead      0%%    0.04%%    73.06%%\n\n";
  let w = W.Suite.hhvm in
  let truth = (outcome w D.Instr_pgo).D.o_annotated in
  let ov v = Core.Quality.block_overlap ~truth (outcome w v).D.o_annotated *. 100. in
  (* Profiling overhead: training-run cycles vs the plain sampling run. *)
  let _, _, plain = profiling_run ~probes:false w in
  let _, _, probed = profiling_run ~probes:true w in
  let instr_cycles = (outcome w D.Instr_pgo).D.o_profiling_cycles in
  let ovh c = (Int64.to_float c -. Int64.to_float plain) /. Int64.to_float plain *. 100. in
  pf "measured:            AutoFDO   CSSPGO   Instr PGO\n";
  pf "  block overlap       %5.1f%%   %5.1f%%     %5.1f%%\n" (ov D.Autofdo)
    (ov D.Csspgo_full) (ov D.Instr_pgo);
  pf "  profiling overhead  %5.1f%%   %5.2f%%    %5.1f%%\n" 0.0 (ovh probed)
    (ovh instr_cycles);
  pf "\nblock overlap, all workloads (AutoFDO / CSSPGO):\n";
  List.iter
    (fun w ->
      let truth = (outcome w D.Instr_pgo).D.o_annotated in
      let ov v = Core.Quality.block_overlap ~truth (outcome w v).D.o_annotated *. 100. in
      pf "  %-12s %5.1f%% / %5.1f%%\n" w.D.w_name (ov D.Autofdo) (ov D.Csspgo_full))
    W.Suite.server_workloads

let client () =
  sep "§IV.D — client workload (clangish, short training run)";
  pf "paper (Clang bootstrap): CSSPGO +2.8%% perf, -5.5%% size;\n";
  pf "Instr PGO +6.6%% perf, -34%% size — the sampling-coverage gap is\n";
  pf "larger on client workloads than on servers.\n\n";
  let w = W.Suite.clangish in
  pf "measured vs AutoFDO:  perf        size\n";
  List.iter
    (fun v ->
      pf "  %-18s %+6.2f%%   %+7.2f%%\n" (D.variant_name v) (gain_vs_autofdo w v)
        (size_vs_autofdo w v))
    [ D.Csspgo_probe_only; D.Csspgo_full; D.Instr_pgo ]

let drift () =
  sep "§III.A — source drift: checksum-guarded profile reuse";
  pf "paper: a minor source change caused an 8%% loss for a workload under\n";
  pf "AutoFDO; CSSPGO detects CFG changes by checksum and tolerates\n";
  pf "comment-only edits. (See also examples/source_drift.exe.)\n\n";
  let base = "fn hot(a) {\n  let x = a * 3;\n  return x + 1;\n}\nfn main(a) { return hot(a); }" in
  let commented = "// release notes\n// reviewed by...\nfn hot(a) {\n  // fast path\n  let x = a * 3;\n  return x + 1;\n}\nfn main(a) { return hot(a); }" in
  let cfg_changed = "fn hot(a) {\n  let x = a * 3;\n  if (a > 1000) { x = x - 1; }\n  return x + 1;\n}\nfn main(a) { return hot(a); }" in
  let checksum src =
    let p = F.Lower.compile src in
    Core.Pseudo_probe.insert p;
    (Ir.Program.func p "hot").Ir.Func.checksum
  in
  pf "  checksum(base)          = %Lx\n" (checksum base);
  pf "  checksum(comment edit)  = %Lx  -> profile still valid\n" (checksum commented);
  pf "  checksum(CFG change)    = %Lx  -> profile rejected for 'hot'\n"
    (checksum cfg_changed)

(* ------------------------------------------------------------------ *)
(* Stale-profile matching: recovery vs edit distance, per variant.      *)

let stale () =
  sep "Stale matching — recovery vs edit distance (Drift + Stale_match)";
  pf "paper (§III.A): probe IDs keep correlating after the source drifts\n";
  pf "underneath the profile, where line-based correlation silently decays.\n";
  pf "Recovery = block overlap of the stale-matched build-N profile against\n";
  pf "instrumentation ground truth on version N+1.\n\n";
  let module O = Csspgo_orchestrator in
  let workloads = [ W.Suite.adretriever; W.Suite.adfinder; W.Suite.haas ] in
  let variants = [ D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full ] in
  let nv = List.length variants in
  let distances = W.Drift.distances in
  let seed_of wi = Int64.of_int ((7 * wi) + 11) in
  let per_wl =
    List.mapi
      (fun wi (w : D.workload) ->
        let seed = seed_of wi in
        let drifts =
          List.map (fun d -> (d, W.Drift.apply ~seed ~edits:d w.D.w_source)) distances
        in
        (w, seed, drifts))
      workloads
  in
  (* One orchestrated batch with a shared in-memory cache: the build-N
     profiling run of a (workload, variant) computes once, however many
     drift distances consume it. *)
  let plans =
    List.concat_map
      (fun ((w : D.workload), _, drifts) ->
        List.concat_map
          (fun (_, (dr : W.Drift.result)) ->
            let w_new = { w with D.w_source = dr.W.Drift.dr_source } in
            D.Plan.make ~variant:D.Instr_pgo w_new
            :: List.map
                 (fun v ->
                   D.Plan.make_stale ~variant:v ~stale_source:dr.W.Drift.dr_source w)
                 variants)
          drifts)
      per_wl
  in
  let outs =
    Array.of_list
      (O.Orchestrate.run_plans ~cache:(O.Cache.create ()) ~jobs:1 plans)
  in
  (* rows.(wi).(di).(vi) = (block overlap vs N+1 truth, count recovery) *)
  let rows =
    List.mapi
      (fun wi ((w : D.workload), seed, drifts) ->
        ( w,
          seed,
          List.mapi
            (fun di (d, _) ->
              let base = ((wi * List.length distances) + di) * (1 + nv) in
              let truth = outs.(base).D.o_annotated in
              ( d,
                List.mapi
                  (fun vi _ ->
                    let o = outs.(base + 1 + vi) in
                    let rr =
                      match o.D.o_stale_report with
                      | Some r -> Core.Stale_match.recovery_rate r
                      | None -> 1.0
                    in
                    (Core.Quality.block_overlap ~truth o.D.o_annotated, rr))
                  variants ))
            drifts ))
      per_wl
  in
  List.iter
    (fun ((w : D.workload), seed, drow) ->
      pf "%s (drift seed %Ld):\n" w.D.w_name seed;
      pf "  %5s" "dist";
      List.iter (fun v -> pf " %24s" (D.variant_name v)) variants;
      pf "\n";
      List.iter
        (fun (d, cells) ->
          pf "  %5d" d;
          List.iter
            (fun (ov, rr) -> pf "    %6.2f%% (counts %5.1f%%)" (ov *. 100.) (rr *. 100.))
            cells;
          pf "\n")
        drow)
    rows;
  (* Aggregate curve: mean overlap across the corpus per (variant, distance). *)
  let nw = float_of_int (List.length workloads) in
  let mean di vi =
    List.fold_left
      (fun acc (_, _, drow) -> acc +. fst (List.nth (snd (List.nth drow di)) vi))
      0.0 rows
    /. nw
  in
  pf "\naggregate (mean overlap across %d workloads):\n" (List.length workloads);
  pf "  %5s" "dist";
  List.iter (fun v -> pf " %18s" (D.variant_name v)) variants;
  pf "\n";
  List.iteri
    (fun di d ->
      pf "  %5d" d;
      List.iteri (fun vi _ -> pf "            %6.2f%%" (mean di vi *. 100.)) variants;
      pf "\n")
    distances;
  (* JSON dump: per-workload and aggregate recovery curves. *)
  let buf = Buffer.create 2048 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let float_list sel lst =
    String.concat ", " (List.map (fun x -> Printf.sprintf "%.4f" (sel x)) lst)
  in
  bpf "{\n  \"distances\": [%s],\n"
    (String.concat ", " (List.map string_of_int distances));
  bpf "  \"workloads\": [\n";
  List.iteri
    (fun i ((w : D.workload), seed, drow) ->
      bpf "    {\"name\": \"%s\", \"drift_seed\": %Ld,\n" w.D.w_name seed;
      bpf "     \"overlap\": {";
      List.iteri
        (fun vi v ->
          bpf "%s\"%s\": [%s]"
            (if vi = 0 then "" else ", ")
            (D.variant_name v)
            (float_list (fun (_, cells) -> fst (List.nth cells vi)) drow))
        variants;
      bpf "},\n     \"count_recovery\": {";
      List.iteri
        (fun vi v ->
          bpf "%s\"%s\": [%s]"
            (if vi = 0 then "" else ", ")
            (D.variant_name v)
            (float_list (fun (_, cells) -> snd (List.nth cells vi)) drow))
        variants;
      bpf "}}%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  bpf "  ],\n  \"aggregate_overlap\": {";
  List.iteri
    (fun vi v ->
      bpf "%s\"%s\": [%s]"
        (if vi = 0 then "" else ", ")
        (D.variant_name v)
        (String.concat ", "
           (List.mapi (fun di _ -> Printf.sprintf "%.4f" (mean di vi)) distances)))
    variants;
  bpf "},\n  \"cores\": %d\n}\n" (Domain.recommended_domain_count ());
  let oc = open_out "BENCH_stale.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  pf "wrote BENCH_stale.json\n";
  (* The paper's stability claim, enforced: at every edit distance > 0 the
     probe-based variants must recover strictly more aggregate overlap than
     the DWARF baseline (variant 0). *)
  List.iteri
    (fun di d ->
      if d > 0 then begin
        let dwarf = mean di 0 in
        List.iteri
          (fun vi v ->
            if vi > 0 && mean di vi <= dwarf then
              failwith
                (Printf.sprintf
                   "stale: %s aggregate overlap %.4f not above dwarf %.4f at distance %d"
                   (D.variant_name v) (mean di vi) dwarf d))
          variants
      end)
    distances

let ablation () =
  sep "Ablations — §III.B mitigations";
  (* Context depth requires surviving calls, so the trimming and
     missing-frame ablations profile with the in-compiler inliner off —
     like a production binary with deep call chains. *)
  let profile_no_inline (w : D.workload) =
    let prog = F.Lower.compile w.D.w_source in
    Core.Pseudo_probe.insert prog;
    let refp = Ir.Program.copy prog in
    Opt.Pass.optimize
      ~config:{ Opt.Config.o2_nopgo with Opt.Config.inline_mode = Opt.Config.Inline_none }
      prog;
    let bin = Cg.Emit.emit ~options:Cg.Emit.default_options prog in
    let samples =
      List.concat_map
        (fun (spec : D.run_spec) ->
          (Vm.Machine.run
             ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 1009 })
             ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args bin ~entry:w.D.w_entry)
            .Vm.Machine.samples)
        w.D.w_train
    in
    (refp, bin, samples)
  in
  let w = W.Suite.hhvm in
  (* 1. cold-context trimming: profile size with and without *)
  let refp, pbin, samples = profile_no_inline W.Suite.haas in
  let name_of g = Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp g) in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let trie, _ = Core.Ctx_reconstruct.reconstruct ~name_of ~checksum_of pbin samples in
  let untrimmed = P.Ctx_profile.size_bytes trie in
  let n_before = P.Ctx_profile.n_nodes trie in
  let removed = P.Ctx_profile.trim_cold trie ~threshold:64L in
  let trimmed = P.Ctx_profile.size_bytes trie in
  pf "cold-context trimming (haas, recursive contexts): %d -> %d contexts (%d trimmed)\n"
    n_before (P.Ctx_profile.n_nodes trie) removed;
  pf "  profile size %d -> %d bytes (%.1fx reduction; paper: ~10x blowup tamed\n"
    untrimmed trimmed
    (float_of_int untrimmed /. float_of_int (max trimmed 1));
  pf "  to parity with context-insensitive profiles)\n\n";
  (* 2. missing-frame inference recovery rate on a tail-call-heavy build
     (adfinder's pass_all chain ends in a tail call when not inlined) *)
  let refp, pbin, samples = profile_no_inline W.Suite.adfinder in
  let name_of g = Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp g) in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let mf = Core.Missing_frame.build pbin samples in
  let _, st_with =
    Core.Ctx_reconstruct.reconstruct ~name_of ~missing:mf ~checksum_of pbin samples
  in
  let _, st_without = Core.Ctx_reconstruct.reconstruct ~name_of ~checksum_of pbin samples in
  let rate (s : Core.Ctx_reconstruct.stats) =
    let tot = s.Core.Ctx_reconstruct.st_gaps_resolved + s.Core.Ctx_reconstruct.st_gaps_failed in
    if tot = 0 then 100.0
    else
      float_of_int s.Core.Ctx_reconstruct.st_gaps_resolved /. float_of_int tot *. 100.
  in
  pf "missing-frame inference (adfinder, no-inline build, tail-call heavy):\n";
  pf "  with inferrer:    %d resolved / %d failed (%.0f%% recovered; paper: >2/3)\n"
    st_with.Core.Ctx_reconstruct.st_gaps_resolved st_with.Core.Ctx_reconstruct.st_gaps_failed
    (rate st_with);
  pf "  without inferrer: %d resolved / %d failed\n\n"
    st_without.Core.Ctx_reconstruct.st_gaps_resolved
    st_without.Core.Ctx_reconstruct.st_gaps_failed;
  (* 3. PEBS vs skid: haas is call/return dense (recursive evaluator), so
     stack-lag misalignment actually shows up there. *)
  let wh = W.Suite.haas in
  let opts_skid =
    { D.default_options with
      D.pmu = { Vm.Machine.default_pmu with sample_period = 1009; pebs = false; skid_prob = 0.5 } }
  in
  let o_pebs = outcome wh D.Csspgo_full in
  let o_skid = D.run_variant ~options:opts_skid D.Csspgo_full wh in
  let drop (o : D.outcome) =
    match o.D.o_recon_stats with
    | Some s ->
        float_of_int s.Core.Ctx_reconstruct.st_dropped_misaligned
        /. float_of_int (max s.Core.Ctx_reconstruct.st_samples 1)
        *. 100.
    | None -> 0.0
  in
  pf "PEBS synchronization (haas): dropped samples %.1f%% with PEBS,\n" (drop o_pebs);
  pf "  %.1f%% without (skid detection; paper: PEBS eliminates the skid)\n\n" (drop o_skid);
  (* 4. layout algorithm: full Ext-TSP greedy (default) vs hot-path DFS *)
  let opts_dfs =
    { D.default_options with
      D.emit_opts = { Cg.Emit.default_options with Cg.Emit.layout = `Hot_path } }
  in
  let o_dfs = D.run_variant ~options:opts_dfs D.Csspgo_full w in
  pf "block layout (hhvm, full CSSPGO): Ext-TSP greedy (default) %Ld cycles,\n"
    (outcome w D.Csspgo_full).D.o_eval.D.ev_cycles;
  pf "  hot-path DFS %Ld cycles (Ext-TSP %+.2f%% better)\n\n" o_dfs.D.o_eval.D.ev_cycles
    ((Int64.to_float o_dfs.D.o_eval.D.ev_cycles
     -. Int64.to_float (outcome w D.Csspgo_full).D.o_eval.D.ev_cycles)
    /. Int64.to_float o_dfs.D.o_eval.D.ev_cycles
    *. 100.);
  (* 5. the "flexible framework" knob (§III.A): probes as strong barriers *)
  let strong =
    { Opt.Config.o2_nopgo with Opt.Config.probes_strong = true }
  in
  let overhead_of config =
    let build ~probes =
      let prog = F.Lower.compile w.D.w_source in
      if probes then Core.Pseudo_probe.insert prog;
      Opt.Pass.optimize ~config prog;
      let bin = Cg.Emit.emit ~options:Cg.Emit.default_options prog in
      List.fold_left
        (fun acc (spec : D.run_spec) ->
          Int64.add acc
            (Vm.Machine.run ~pmu:None ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args
               bin ~entry:w.D.w_entry)
              .Vm.Machine.cycles)
        0L w.D.w_train
    in
    let plain = build ~probes:false in
    let probed = build ~probes:true in
    (Int64.to_float probed -. Int64.to_float plain) /. Int64.to_float plain *. 100.
  in
  pf "probe strength (hhvm profiling build, the §III.A flexibility knob):\n";
  pf "  fine-tuned (default) probes: %+.2f%% run-time overhead\n"
    (overhead_of Opt.Config.o2_nopgo);
  pf "  strong-barrier probes:       %+.2f%% run-time overhead\n"
    (overhead_of strong);
  pf "  (stronger barriers preserve more control flow for correlation at\n";
  pf "   the price of run-time cost — the paper's overhead/accuracy dial)\n\n";
  (* 6. LBR depth 16 vs 32 *)
  let recon_with depth =
    let opts =
      { D.default_options with
        D.pmu = { Vm.Machine.default_pmu with sample_period = 1009; lbr_depth = depth } }
    in
    let o = D.run_variant ~options:opts D.Csspgo_probe_only W.Suite.adretriever in
    Core.Quality.block_overlap
      ~truth:(outcome W.Suite.adretriever D.Instr_pgo).D.o_annotated o.D.o_annotated
    *. 100.
  in
  pf "LBR depth (adretriever, probe-only overlap): 16-deep %.1f%%, 32-deep %.1f%%\n\n"
    (recon_with 16) (recon_with 32);
  (* 7. pre-inliner on/off *)
  let o_nopre = D.run_variant ~options:{ D.default_options with D.preinline = None } D.Csspgo_full w in
  pf "pre-inliner (hhvm): full %+.2f%% vs no-pre-inliner %+.2f%% (over AutoFDO)\n"
    (gain_vs_autofdo w D.Csspgo_full)
    ((cycles w D.Autofdo -. Int64.to_float o_nopre.D.o_eval.D.ev_cycles)
    /. cycles w D.Autofdo *. 100.)

(* ------------------------------------------------------------------ *)
(* Orchestrator: parallel plan scheduling + content-addressed cache.   *)

let orch () =
  sep "Orchestrator — plan scheduling and artifact cache (lib/orchestrator)";
  let module O = Csspgo_orchestrator in
  let variants =
    [ D.Nopgo; D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full; D.Instr_pgo ]
  in
  let workloads = W.Suite.server_workloads in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let matrix ~cache jobs = O.Orchestrate.run_matrix ~cache ~jobs ~variants ~workloads () in
  (* Byte-level digest of everything a build produces. [o_annotated] is
     excluded: its hashtable images are layout-sensitive even when every
     annotation in them is equal. *)
  let digest (w, v, (o : D.outcome)) =
    ( w.D.w_name,
      D.variant_name v,
      Marshal.to_string o.D.o_binary [],
      o.D.o_eval,
      o.D.o_text_size,
      o.D.o_debug_size,
      o.D.o_probe_meta_size,
      o.D.o_profiling_cycles,
      o.D.o_profile_size )
  in
  (* 1. serial vs parallel schedule, each with a fresh in-memory cache *)
  let ncores = Domain.recommended_domain_count () in
  let rs, ts = time (fun () -> matrix ~cache:(O.Cache.create ()) 1) in
  let rp, tp = time (fun () -> matrix ~cache:(O.Cache.create ()) 4) in
  let n = List.length rs in
  pf "%d variants x %d workloads = %d PGO builds (host: %d core%s):\n"
    (List.length variants) (List.length workloads) n ncores
    (if ncores = 1 then "" else "s");
  pf "  serial   (-j 1)   %6.2fs\n" ts;
  pf "  parallel (-j 4)   %6.2fs   speedup %.2fx (target: >= 2x on >= 4 cores)\n"
    tp (ts /. tp);
  if ncores < 4 then
    pf "  (domains are time-sliced on this host; minor-GC barriers make\n\
       \   oversubscription a cost, not a win — the -j 4 run is kept as a\n\
       \   scheduler-correctness exercise, not a timing claim)\n";
  let identical = List.for_all2 (fun a b -> digest a = digest b) rs rp in
  pf "  parallel outcomes byte-identical to serial: %s\n"
    (if identical then "yes" else "NO");
  if not identical then failwith "orch: parallel schedule diverged from serial";
  (* 2. cold vs warm disk cache, parallel schedule both times *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "csspgo-bench-cache.%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then ignore (O.Cache.clear_dir dir);
  let disk_jobs = max 1 (min 4 ncores) in
  let c_cold = O.Cache.create ~dir () in
  let rc, tc = time (fun () -> matrix ~cache:c_cold disk_jobs) in
  let c_warm = O.Cache.create ~dir () in
  let rw, tw = time (fun () -> matrix ~cache:c_warm disk_jobs) in
  let sc = O.Cache.stats c_cold and sw = O.Cache.stats c_warm in
  let ds = O.Cache.scan_dir dir in
  pf "disk cache, same matrix twice (-j %d):\n" disk_jobs;
  pf "  cold   %6.2fs   (%d hits / %d misses / %d stores)\n" tc sc.O.Cache.hits
    sc.O.Cache.misses sc.O.Cache.stores;
  pf "  warm   %6.2fs   (%d hits / %d misses)   %.1fx faster than cold\n" tw
    sw.O.Cache.hits sw.O.Cache.misses (tc /. tw);
  pf "  on disk: %d entries, %d bytes\n" ds.O.Cache.d_entries ds.O.Cache.d_bytes;
  (* Warm runs re-serve every stage from disk. For Csspgo_full the
     pre-inliner walks the round-tripped trie, whose heap tie-breaking is
     layout-sensitive, so byte-identity is only asserted for the other
     variants; the full variant must still agree on the evaluation. *)
  let warm_ok =
    List.for_all2
      (fun ((_, v, oc) as a) ((_, _, ow) as b) ->
        if v = D.Csspgo_full then oc.D.o_eval = ow.D.o_eval else digest a = digest b)
      rc rw
  in
  pf "  warm outcomes match cold: %s\n" (if warm_ok then "yes" else "NO");
  if not warm_ok then failwith "orch: warm cache diverged from cold";
  ignore (O.Cache.clear_dir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the offline components' own cost.         *)

let micro () =
  sep "Microbenchmarks (Bechamel) — offline pipeline component cost";
  let w = W.Suite.adretriever in
  let pbin, samples, _ = profiling_run ~probes:true w in
  let refp =
    let p = F.Lower.compile w.D.w_source in
    Core.Pseudo_probe.insert p;
    p
  in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let samples_short = List.filteri (fun i _ -> i < 500) samples in
  let annotated = (outcome w D.Csspgo_probe_only).D.o_annotated in
  let open Bechamel in
  let tests =
    [
      (* Fig.6/Table I pipeline: Algorithm 1 context reconstruction *)
      Test.make ~name:"algo1-reconstruct-500-samples"
        (Staged.stage (fun () ->
             ignore (Core.Ctx_reconstruct.reconstruct ~checksum_of pbin samples_short)));
      (* profile inference (Profi / MCF) on an annotated program *)
      Test.make ~name:"mcf-inference-program"
        (Staged.stage (fun () ->
             let p = Ir.Program.copy annotated in
             Csspgo_inference.Infer.infer p));
      (* Ext-TSP style layout *)
      Test.make ~name:"layout-order-program"
        (Staged.stage (fun () ->
             Ir.Program.iter_funcs
               (fun f -> ignore (Cg.Layout.order ~split:true f))
               annotated));
      (* Algorithm 2+3: pre-inliner over a fresh trie *)
      Test.make ~name:"algo2-preinliner"
        (Staged.stage (fun () ->
             let trie, _ = Core.Ctx_reconstruct.reconstruct ~checksum_of pbin samples_short in
             ignore (P.Ctx_profile.trim_cold trie ~threshold:8L);
             let sizes = Core.Size_extract.compute pbin in
             ignore (Core.Preinliner.run trie sizes)));
      (* DWARF correlation for the AutoFDO baseline *)
      Test.make ~name:"dwarf-correlate-500-samples"
        (Staged.stage (fun () ->
             ignore (Csspgo_profgen.Dwarf_corr.correlate pbin samples_short)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" ~fmt:"%s/%s" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> pf "  %-36s %12.1f us/run\n" name (est /. 1000.)
          | _ -> pf "  %-36s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* Streaming pipeline: samples/sec and live-heap vs the materialized    *)
(* sample-list path, on an hhvm-shaped profiling run.                   *)

(* Words retained by a pipeline state: live heap with the state held,
   minus live heap after dropping it. The state sits in a module-level
   ref — a stack slot would already be dead at the first compaction under
   ocamlopt (its last use precedes the call), making the delta read 0. *)
let heap_probe : Obj.t option ref = ref None

let live_delta f =
  heap_probe := Some (Obj.repr (f ()));
  Gc.compact ();
  let held = (Gc.stat ()).Gc.live_words in
  heap_probe := None;
  Gc.compact ();
  let dropped = (Gc.stat ()).Gc.live_words in
  held - dropped

let pipeline () =
  sep "Pipeline — streaming vs materialized sample processing (hhvm)";
  let module Pg = Csspgo_profgen in
  let w = W.Suite.hhvm in
  let prog = F.Lower.compile w.D.w_source in
  Core.Pseudo_probe.insert prog;
  let refp = Ir.Program.copy prog in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo prog;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options prog in
  let name_of g =
    Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp g)
  in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  (* One PMU run, recorded as the compact int log — the stand-in for the
     raw sample stream both pipelines consume. Dense period so the
     throughput numbers are sample-bound, not VM-bound. *)
  let period = 499 in
  let pmu = Some { Vm.Machine.default_pmu with sample_period = period } in
  let log = Vm.Sample_log.create () in
  List.iter
    (fun (spec : D.run_spec) ->
      ignore
        (Vm.Machine.run ~pmu ~sink:(Vm.Sample_log.sink log)
           ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args bin ~entry:w.D.w_entry))
    w.D.w_train;
  Vm.Sample_log.compact log;
  let n = Vm.Sample_log.n_samples log in
  pf "profiling run: %d samples (period %d), log %d words\n" n period
    (Vm.Sample_log.words log);
  (* Materialized pipeline, as the seed shipped it (bench/legacy.ml): the
     sample list is built once, then re-walked by each consumer, with
     tuple-keyed Hashtbl bumps and inst_at hash lookups per LBR entry. *)
  let materialized lg =
    let samples = Vm.Sample_log.to_samples lg in
    let flat = Legacy.probe_correlate ~name_of ~checksum_of bin samples in
    let missing = Legacy.missing_build bin samples in
    let trie =
      Legacy.reconstruct ~name_of ~missing ~checksum_of bin samples
    in
    (samples, flat, trie)
  in
  (* Streaming pipeline, as Plan.run now wires it: one dense index, one
     replay feeding range aggregation + tail-call edges, one replay for
     context reconstruction. *)
  let streaming lg =
    let ix = Pg.Bindex.create bin in
    let agg = Pg.Ranges.create () in
    let mb = Core.Missing_frame.start ix in
    Vm.Sample_log.iter lg (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ ->
        Pg.Ranges.feed agg ~lbr ~lbr_len;
        Core.Missing_frame.feed mb ~lbr ~lbr_len);
    let missing = Core.Missing_frame.finish mb in
    let flat = Core.Probe_corr.correlate_agg ~name_of ~index:ix ~checksum_of bin agg in
    let st = Core.Ctx_reconstruct.start ~name_of ~missing ~checksum_of ix in
    Vm.Sample_log.iter lg (fun ~lbr ~lbr_len ~stack ~stack_len ->
        Core.Ctx_reconstruct.feed st ~lbr ~lbr_len ~stack ~stack_len);
    let trie, _ = Core.Ctx_reconstruct.finish st in
    (agg, flat, trie)
  in
  (* Byte-identity sanity before timing anything. *)
  let texts (flat, trie) =
    ( P.Text_io.to_string (P.Text_io.Probe_prof flat),
      P.Text_io.to_string (P.Text_io.Ctx_prof trie) )
  in
  let _, mf, mt = materialized log in
  let _, sf, st = streaming log in
  if texts (mf, mt) <> texts (sf, st) then
    failwith "pipeline: streaming diverged from materialized";
  (* Throughput (bechamel, monotonic clock). *)
  let open Bechamel in
  let estimate name f =
    let test = Test.make ~name (Staged.stage f) in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None () in
    let results =
      Benchmark.all cfg [ instance ]
        (Test.make_grouped ~name:"pipeline" ~fmt:"%s/%s" [ test ])
    in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    let est = ref nan in
    Hashtbl.iter
      (fun _ o ->
        match Analyze.OLS.estimates o with Some [ e ] -> est := e | _ -> ())
      ols;
    !est (* ns per run *)
  in
  let ns_mat = estimate "materialized" (fun () -> ignore (materialized log)) in
  let ns_str = estimate "streaming" (fun () -> ignore (streaming log)) in
  let rate ns = float_of_int n /. (ns /. 1e9) in
  let speedup = ns_mat /. ns_str in
  pf "materialized: %10.0f samples/sec  (%.2f ms/pipeline)\n" (rate ns_mat)
    (ns_mat /. 1e6);
  pf "streaming:    %10.0f samples/sec  (%.2f ms/pipeline)\n" (rate ns_str)
    (ns_str /. 1e6);
  pf "speedup:      %9.2fx  (target: >= 3x)\n" speedup;
  (* Peak live heap: words retained by each pipeline's state, at full and
     at half the sample count. The materialized list scales with samples;
     the streaming state (counters + trie + tail-call edges) tracks the
     binary, not the run length. *)
  let half = Vm.Sample_log.create () in
  let seen = ref 0 in
  Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack ~stack_len ->
      if !seen < n / 2 then Vm.Sample_log.add half ~lbr ~lbr_len ~stack ~stack_len;
      incr seen);
  Vm.Sample_log.compact half;
  let mat_half = live_delta (fun () -> Vm.Sample_log.to_samples half) in
  let mat_full = live_delta (fun () -> Vm.Sample_log.to_samples log) in
  let str_half = live_delta (fun () -> streaming half) in
  let str_full = live_delta (fun () -> streaming log) in
  let ratio a b = float_of_int a /. float_of_int (max b 1) in
  pf "live heap words (half -> full samples):\n";
  pf "  materialized list  %9d -> %9d   (x%.2f — proportional)\n" mat_half mat_full
    (ratio mat_full mat_half);
  pf "  streaming state    %9d -> %9d   (x%.2f — flat)\n" str_half str_full
    (ratio str_full str_half);
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"hhvm\",\n\
      \  \"sample_period\": %d,\n\
      \  \"n_samples\": %d,\n\
      \  \"log_words\": %d,\n\
      \  \"materialized_ns_per_pipeline\": %.0f,\n\
      \  \"streaming_ns_per_pipeline\": %.0f,\n\
      \  \"materialized_samples_per_sec\": %.0f,\n\
      \  \"streaming_samples_per_sec\": %.0f,\n\
      \  \"speedup\": %.3f,\n\
      \  \"live_words_materialized_half\": %d,\n\
      \  \"live_words_materialized_full\": %d,\n\
      \  \"live_words_streaming_half\": %d,\n\
      \  \"live_words_streaming_full\": %d,\n\
      \  \"cores\": %d\n\
       }\n"
      period n (Vm.Sample_log.words log) ns_mat ns_str (rate ns_mat) (rate ns_str)
      speedup mat_half mat_full str_half str_full
      (Domain.recommended_domain_count ())
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc json;
  close_out oc;
  pf "wrote BENCH_pipeline.json\n";
  if speedup < 3.0 then failwith "pipeline: streaming speedup below 3x target"

(* ------------------------------------------------------------------ *)
(* Observability overhead: the streaming correlate pipeline with a live  *)
(* metrics registry vs the null one. The design target is "free when      *)
(* off, cheap when on": instruments bump local state on the hot path and *)
(* flush to the registry at stage finish.                                *)

let obs_overhead () =
  sep "Obs — telemetry overhead on the streaming correlate pipeline (adretriever)";
  let module Pg = Csspgo_profgen in
  let module M = Csspgo_obs.Metrics in
  let w = W.Suite.adretriever in
  let prog = F.Lower.compile w.D.w_source in
  Core.Pseudo_probe.insert prog;
  let refp = Ir.Program.copy prog in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo prog;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options prog in
  let name_of g =
    Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp g)
  in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let period = 499 in
  let pmu = Some { Vm.Machine.default_pmu with sample_period = period } in
  let log = Vm.Sample_log.create () in
  List.iter
    (fun (spec : D.run_spec) ->
      ignore
        (Vm.Machine.run ~pmu ~sink:(Vm.Sample_log.sink log)
           ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args bin ~entry:w.D.w_entry))
    w.D.w_train;
  Vm.Sample_log.compact log;
  let n = Vm.Sample_log.n_samples log in
  pf "profiling run: %d samples (period %d)\n" n period;
  let streaming ?obs () =
    let ix = Pg.Bindex.create bin in
    let agg = Pg.Ranges.create () in
    let mb = Core.Missing_frame.start ?obs ix in
    Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ ->
        Pg.Ranges.feed agg ~lbr ~lbr_len;
        Core.Missing_frame.feed mb ~lbr ~lbr_len);
    let missing = Core.Missing_frame.finish mb in
    let flat = Core.Probe_corr.correlate_agg ~name_of ~index:ix ~checksum_of ?obs bin agg in
    let st = Core.Ctx_reconstruct.start ~name_of ~missing ~checksum_of ?obs ix in
    Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack ~stack_len ->
        Core.Ctx_reconstruct.feed st ~lbr ~lbr_len ~stack ~stack_len);
    let trie, _ = Core.Ctx_reconstruct.finish st in
    (flat, trie)
  in
  let open Bechamel in
  let estimate name f =
    let test = Test.make ~name (Staged.stage f) in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None () in
    let results =
      Benchmark.all cfg [ instance ]
        (Test.make_grouped ~name:"obs" ~fmt:"%s/%s" [ test ])
    in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    let est = ref nan in
    Hashtbl.iter
      (fun _ o ->
        match Analyze.OLS.estimates o with Some [ e ] -> est := e | _ -> ())
      ols;
    !est
  in
  let live = M.create () in
  let ns_off = estimate "telemetry-off" (fun () -> ignore (streaming ())) in
  let ns_null = estimate "telemetry-null" (fun () -> ignore (streaming ~obs:M.null ())) in
  let ns_on = estimate "telemetry-on" (fun () -> ignore (streaming ~obs:live ())) in
  let pct a = (a /. ns_off -. 1.) *. 100. in
  pf "no obs argument:     %10.2f ms/pipeline\n" (ns_off /. 1e6);
  pf "null registry:       %10.2f ms/pipeline  (%+.1f%%)\n" (ns_null /. 1e6) (pct ns_null);
  pf "live registry:       %10.2f ms/pipeline  (%+.1f%%)\n" (ns_on /. 1e6) (pct ns_on);
  let snap = M.snapshot live in
  (match M.find_counter snap "ctx.samples" with
  | Some c -> pf "live registry saw %d ctx samples across timed runs\n" c
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Binary profile format: decode vs text parse on an hhvm-scale profile, *)
(* plus the profile-delta incremental rebuild the fingerprints enable.   *)

let format_bench () =
  sep "Format — binary profile codec vs text, and delta-driven rebuilds";
  let module O = Csspgo_orchestrator in
  let open Bechamel in
  let estimate name f =
    let test = Test.make ~name (Staged.stage f) in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
    let results =
      Benchmark.all cfg [ instance ]
        (Test.make_grouped ~name:"format" ~fmt:"%s/%s" [ test ])
    in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    let est = ref nan in
    Hashtbl.iter
      (fun _ o ->
        match Analyze.OLS.estimates o with Some [ e ] -> est := e | _ -> ())
      ols;
    !est (* ns per run *)
  in
  (* hhvm at a dense sample period: the biggest profiles the substrate
     produces, one context trie and one flat probe profile. *)
  let w = W.Suite.hhvm in
  let opts =
    { D.default_options with
      D.pmu = { Vm.Machine.default_pmu with sample_period = 499 } }
  in
  let texts = D.profile_pipeline_texts ~options:opts ~streaming:true D.Csspgo_full w in
  pf "profile codec (hhvm, dense period %d):\n" 499;
  let shapes =
    List.map
      (fun (tag, text) ->
        let p = P.Text_io.of_string text in
        let b = P.Binary_io.encode p in
        (match P.Binary_io.decode b with
        | Ok p' when String.equal (P.Text_io.to_string p') text -> ()
        | _ -> failwith ("format: binary round-trip failed for " ^ tag));
        let ns_parse = estimate (tag ^ "-text-parse") (fun () -> ignore (P.Text_io.of_string text)) in
        let ns_decode =
          estimate (tag ^ "-binary-decode") (fun () ->
              match P.Binary_io.decode b with Ok p -> ignore p | Error _ -> assert false)
        in
        let ns_encode = estimate (tag ^ "-binary-encode") (fun () -> ignore (P.Binary_io.encode p)) in
        let speedup = ns_parse /. ns_decode in
        pf "  %-12s text %8d B, %8.1f us parse | binary %8d B, %8.1f us decode, %8.1f us encode\n"
          tag (String.length text) (ns_parse /. 1e3) (String.length b)
          (ns_decode /. 1e3) (ns_encode /. 1e3);
        pf "  %-12s decode speedup %.2fx (target >= 3x), size %.2fx smaller\n" ""
          speedup
          (float_of_int (String.length text) /. float_of_int (String.length b));
        (tag, String.length text, String.length b, ns_parse, ns_decode, ns_encode, speedup))
      texts
  in
  (* Sample-log codec on the same run shape. *)
  let log =
    let prog = F.Lower.compile w.D.w_source in
    Core.Pseudo_probe.insert prog;
    Opt.Pass.optimize ~config:Opt.Config.o2_nopgo prog;
    let bin = Cg.Emit.emit ~options:Cg.Emit.default_options prog in
    let pmu = Some { Vm.Machine.default_pmu with sample_period = 499 } in
    let log = Vm.Sample_log.create () in
    List.iter
      (fun (spec : D.run_spec) ->
        ignore
          (Vm.Machine.run ~pmu ~sink:(Vm.Sample_log.sink log)
             ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args bin
             ~entry:w.D.w_entry))
      w.D.w_train;
    Vm.Sample_log.compact log;
    log
  in
  let log_text = Vm.Sample_log.to_text log in
  let log_bin = Vm.Sample_log.encode log in
  let ns_log_parse =
    estimate "log-text-parse" (fun () ->
        match Vm.Sample_log.of_text log_text with Ok l -> ignore l | Error _ -> assert false)
  in
  let ns_log_decode =
    estimate "log-binary-decode" (fun () ->
        match Vm.Sample_log.decode log_bin with Ok l -> ignore l | Error _ -> assert false)
  in
  pf "sample log (%d samples): text %d B, %.1f us parse | binary %d B, %.1f us decode (%.2fx)\n"
    (Vm.Sample_log.n_samples log) (String.length log_text) (ns_log_parse /. 1e3)
    (String.length log_bin) (ns_log_decode /. 1e3) (ns_log_parse /. ns_log_decode);
  (* Delta-driven incremental rebuild: warm rerun is a whole-binary hit;
     rebuilding a second drifted version against the first one's cache
     recompiles only the re-edited function (test/test_incremental.ml pins
     the counters; here we time it). *)
  let wc = W.Suite.clangish in
  let plan = D.Plan.make ~variant:D.Csspgo_full wc in
  let stale seed =
    let d = W.Drift.apply ~seed ~edits:1 wc.D.w_source in
    D.Plan.make_stale ~variant:D.Csspgo_full ~stale_source:d.W.Drift.dr_source wc
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let cache = O.Cache.create () in
  let _, t_cold = time (fun () -> D.Plan.run ~hooks:(O.Orchestrate.hooks cache) plan) in
  let _, t_warm = time (fun () -> D.Plan.run ~hooks:(O.Orchestrate.hooks cache) plan) in
  let _, t_a = time (fun () -> D.Plan.run ~hooks:(O.Orchestrate.hooks cache) (stale 3L)) in
  let stats = O.Orchestrate.create_stats () in
  let _, t_delta =
    time (fun () -> D.Plan.run ~hooks:(O.Orchestrate.hooks ~stats cache) (stale 4L))
  in
  let n_rec = O.Orchestrate.stats_get stats "rebuild.funcs-recompiled" in
  let n_reu = O.Orchestrate.stats_get stats "rebuild.funcs-reused" in
  pf "incremental rebuild (clangish, full CSSPGO, in-memory cache):\n";
  pf "  cold build                 %7.3fs\n" t_cold;
  pf "  warm rerun (binary hit)    %7.3fs   (%.1fx faster)\n" t_warm (t_cold /. t_warm);
  pf "  drifted rebuild (v2)       %7.3fs\n" t_a;
  pf "  delta rebuild (v2 -> v2')  %7.3fs   (%d recompiled, %d reused)\n" t_delta
    n_rec n_reu;
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"workload\": \"hhvm\",\n  \"sample_period\": 499,\n  \"profiles\": [\n";
  List.iteri
    (fun i (tag, tb, bb, np, nd, ne, sp) ->
      bpf
        "    {\"tag\": \"%s\", \"text_bytes\": %d, \"binary_bytes\": %d,\n\
        \     \"parse_ns\": %.0f, \"decode_ns\": %.0f, \"encode_ns\": %.0f,\n\
        \     \"decode_speedup\": %.3f}%s\n"
        tag tb bb np nd ne sp
        (if i = List.length shapes - 1 then "" else ","))
    shapes;
  bpf "  ],\n";
  bpf "  \"sample_log\": {\"n_samples\": %d, \"text_bytes\": %d, \"binary_bytes\": %d,\n"
    (Vm.Sample_log.n_samples log) (String.length log_text) (String.length log_bin);
  bpf "    \"parse_ns\": %.0f, \"decode_ns\": %.0f, \"decode_speedup\": %.3f},\n"
    ns_log_parse ns_log_decode (ns_log_parse /. ns_log_decode);
  bpf "  \"incremental\": {\"workload\": \"clangish\", \"cold_s\": %.4f, \"warm_s\": %.4f,\n"
    t_cold t_warm;
  bpf "    \"drifted_s\": %.4f, \"delta_s\": %.4f, \"delta_recompiled\": %d, \"delta_reused\": %d},\n"
    t_a t_delta n_rec n_reu;
  bpf "  \"cores\": %d\n}\n" (Domain.recommended_domain_count ());
  let oc = open_out "BENCH_format.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  pf "wrote BENCH_format.json\n";
  List.iter
    (fun (tag, _, _, _, _, _, sp) ->
      if sp < 3.0 then
        failwith
          (Printf.sprintf "format: %s binary decode speedup %.2fx below 3x target" tag sp))
    shapes

(* ------------------------------------------------------------------ *)
(* Fleet — continuous profiling: sharded collection, duty cycling,      *)
(* version skew, and the release train.                                 *)

let fleet_bench () =
  sep "Fleet — continuous profiling (sharded collectors, cross-version merge)";
  let module Fl = Csspgo_fleet in
  let w = W.Suite.adfinder in
  let options = D.default_options in
  let version ?(id = 0) ?(n = 1) src =
    { Fl.Sim.v_id = id; v_source = src; v_weight = 1L; v_instances = n }
  in
  (* One rebuild measurement per distinct source: inject the merged
     profile through the plan pipeline, compare against no-PGO and the
     instrumentation truth of the same source. *)
  let baselines = Hashtbl.create 8 in
  let measure src (out : Fl.Sim.outcome) =
    let gen_w = { w with D.w_source = src } in
    let nopgo, truth =
      match Hashtbl.find_opt baselines src with
      | Some b -> b
      | None ->
          let b =
            ( (D.run_variant ~options D.Nopgo gen_w).D.o_eval,
              (D.run_variant ~options D.Instr_pgo gen_w).D.o_annotated )
          in
          Hashtbl.replace baselines src b;
          b
    in
    let o =
      D.Plan.run
        (D.Plan.make_with_profile ~options ~profile:out.Fl.Sim.fs_profile
           ?flat:out.Fl.Sim.fs_flat gen_w)
    in
    let speedup =
      Int64.to_float nopgo.D.ev_cycles /. Int64.to_float o.D.o_eval.D.ev_cycles
    in
    (speedup, Core.Quality.block_overlap ~truth o.D.o_annotated)
  in
  (* Fleet-size sweep at full duty: the merged profile must be
     byte-identical to the single-instance baseline whatever the fleet
     size — sharding and partitioning must be invisible. *)
  let sizes = [ 1; 4; 16; 64 ] in
  let size_cfg =
    { Fl.Sim.default with Fl.Sim.f_options = options; f_request_copies = 64 }
  in
  pf "fleet size sweep (duty 1.0, %d stream copies):\n" 64;
  let single = ref "" in
  let size_rows =
    List.map
      (fun n ->
        let out =
          Fl.Sim.run size_cfg ~workload:w ~versions:[ version ~n w.D.w_source ]
        in
        let text = P.Text_io.to_string out.Fl.Sim.fs_profile in
        if n = 1 then single := text;
        let identical = String.equal text !single in
        if not identical then
          failwith
            (Printf.sprintf
               "fleet: %d-instance merged profile differs from single-instance baseline" n);
        let speedup, overlap = measure w.D.w_source out in
        pf "  %3d instances: %7d samples %8d bytes %4d batches  speedup %.3f  overlap %.3f  identical %b\n"
          n out.Fl.Sim.fs_samples out.Fl.Sim.fs_bytes out.Fl.Sim.fs_batches
          speedup overlap identical;
        (n, out, speedup, overlap, identical))
      sizes
  in
  (* Duty-cycle sweep: fewer sampled requests, smaller shipped logs; the
     quality/overhead trade continuous profilers actually run. *)
  let duties = [ 1.0; 0.5; 0.25; 0.1 ] in
  pf "duty sweep (16 instances):\n";
  let duty_rows =
    List.map
      (fun duty ->
        let out =
          Fl.Sim.run
            { size_cfg with Fl.Sim.f_duty = duty }
            ~workload:w
            ~versions:[ version ~n:16 w.D.w_source ]
        in
        let speedup, overlap = measure w.D.w_source out in
        pf "  duty %4.2f: sampled %3d/%3d  %7d samples %8d bytes  speedup %.3f  overlap %.3f\n"
          duty out.Fl.Sim.fs_sampled out.Fl.Sim.fs_requests out.Fl.Sim.fs_samples
          out.Fl.Sim.fs_bytes speedup overlap;
        (duty, out, speedup, overlap))
      duties
  in
  (* Version-skew sweep: 1 + skew drifted versions in flight, stale-routed
     onto the newest and merged. *)
  let skews = [ 0; 1; 2 ] in
  pf "version skew sweep (cohort 4, 16 stream copies):\n";
  let skew_cfg =
    { Fl.Sim.default with Fl.Sim.f_options = options; f_request_copies = 16 }
  in
  let skew_rows =
    List.map
      (fun skew ->
        let sources =
          List.init (skew + 1) Fun.id
          |> List.fold_left
               (fun acc i ->
                 match acc with
                 | [] -> [ w.D.w_source ]
                 | prev :: _ ->
                     (W.Drift.apply ~seed:(Int64.of_int (100 + i)) ~edits:2 prev)
                       .W.Drift.dr_source
                     :: acc)
               []
          |> List.rev
        in
        let versions = List.mapi (fun id src -> version ~id ~n:4 src) sources in
        let out = Fl.Sim.run skew_cfg ~workload:w ~versions in
        let target_src = List.nth sources skew in
        let speedup, overlap = measure target_src out in
        let recovery =
          match out.Fl.Sim.fs_per_version with
        | [] -> 1.0
        | pvs ->
            let reps = List.filter_map (fun pv -> pv.Fl.Sim.pv_stale) pvs in
            if reps = [] then 1.0
            else
              List.fold_left
                (fun acc r -> acc +. Core.Stale_match.recovery_rate r)
                0.0 reps
              /. float_of_int (List.length reps)
        in
        pf "  skew %d: %d versions  %7d samples  recovery %.3f  speedup %.3f  overlap %.3f\n"
          skew (List.length versions) out.Fl.Sim.fs_samples recovery speedup
          overlap;
        (skew, out, recovery, speedup, overlap))
      skews
  in
  (* Release train: drift + fleet window + carried merge per generation. *)
  let train_cfg =
    {
      Fl.Train.default with
      Fl.Train.t_generations = 3;
      t_cohort = 4;
      t_fleet =
        { Fl.Sim.default with Fl.Sim.f_options = options; f_request_copies = 8 };
    }
  in
  let gens = Fl.Train.run train_cfg w in
  pf "release train (3 generations, skew 1, carry 1:3):\n";
  List.iter
    (fun (g : Fl.Train.generation) ->
      pf "  gen %d: speedup %.3f  overlap %s  carry-recovery %s\n" g.Fl.Train.g_id
        g.Fl.Train.g_speedup
        (match g.Fl.Train.g_overlap with
        | Some f -> Printf.sprintf "%.3f" f
        | None -> "-")
        (match g.Fl.Train.g_carry with
        | Some r -> Printf.sprintf "%.3f" (Core.Stale_match.recovery_rate r)
        | None -> "-"))
    gens;
  (* JSON export mirrors the other BENCH_* artifacts. *)
  let buf = Buffer.create 2048 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"workload\": \"%s\",\n  \"fleet_sizes\": [\n" w.D.w_name;
  List.iteri
    (fun i (n, (out : Fl.Sim.outcome), speedup, overlap, identical) ->
      bpf
        "    {\"instances\": %d, \"samples\": %d, \"bytes\": %d, \"batches\": %d,\n\
        \     \"speedup\": %.4f, \"overlap\": %.4f, \"identical_to_single\": %b}%s\n"
        n out.Fl.Sim.fs_samples out.Fl.Sim.fs_bytes out.Fl.Sim.fs_batches speedup
        overlap identical
        (if i = List.length size_rows - 1 then "" else ","))
    size_rows;
  bpf "  ],\n  \"duty_sweep\": [\n";
  List.iteri
    (fun i (duty, (out : Fl.Sim.outcome), speedup, overlap) ->
      bpf
        "    {\"duty\": %.2f, \"sampled\": %d, \"requests\": %d, \"samples\": %d,\n\
        \     \"bytes\": %d, \"speedup\": %.4f, \"overlap\": %.4f}%s\n"
        duty out.Fl.Sim.fs_sampled out.Fl.Sim.fs_requests out.Fl.Sim.fs_samples
        out.Fl.Sim.fs_bytes speedup overlap
        (if i = List.length duty_rows - 1 then "" else ","))
    duty_rows;
  bpf "  ],\n  \"skew_sweep\": [\n";
  List.iteri
    (fun i (skew, (out : Fl.Sim.outcome), recovery, speedup, overlap) ->
      bpf
        "    {\"skew\": %d, \"versions\": %d, \"samples\": %d, \"recovery\": %.4f,\n\
        \     \"speedup\": %.4f, \"overlap\": %.4f}%s\n"
        skew (skew + 1) out.Fl.Sim.fs_samples recovery speedup overlap
        (if i = List.length skew_rows - 1 then "" else ","))
    skew_rows;
  bpf "  ],\n  \"train\": [\n";
  List.iteri
    (fun i (g : Fl.Train.generation) ->
      bpf "    {\"id\": %d, \"speedup\": %.4f, \"overlap\": %s, \"carry_recovery\": %s}%s\n"
        g.Fl.Train.g_id g.Fl.Train.g_speedup
        (match g.Fl.Train.g_overlap with
        | Some f -> Printf.sprintf "%.4f" f
        | None -> "null")
        (match g.Fl.Train.g_carry with
        | Some r -> Printf.sprintf "%.4f" (Core.Stale_match.recovery_rate r)
        | None -> "null")
        (if i = List.length gens - 1 then "" else ","))
    gens;
  bpf "  ],\n  \"cores\": %d\n}\n" (Domain.recommended_domain_count ());
  let oc = open_out "BENCH_fleet.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  pf "wrote BENCH_fleet.json\n"

(* ------------------------------------------------------------------ *)
(* Corr — sharded parallel correlation over chunk-framed sample logs:   *)
(* CSLG v2 decode vs text parse, then serial-vs-sharded correlation     *)
(* throughput at -j 1/2/4 with a byte-identity check at every point.    *)

let corr_bench () =
  sep "Corr — sharded parallel correlation over chunk-framed sample logs";
  let module Fl = Csspgo_fleet in
  let open Bechamel in
  let estimate name f =
    let test = Test.make ~name (Staged.stage f) in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
    let results =
      Benchmark.all cfg [ instance ]
        (Test.make_grouped ~name:"corr" ~fmt:"%s/%s" [ test ])
    in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    let est = ref nan in
    Hashtbl.iter
      (fun _ o ->
        match Analyze.OLS.estimates o with Some [ e ] -> est := e | _ -> ())
      ols;
    !est (* ns per run *)
  in
  let w = W.Suite.hhvm in
  let opts =
    { D.default_options with
      D.pmu = { Vm.Machine.default_pmu with sample_period = 499 } }
  in
  let b =
    Fl.Build.profiling_build ~options:opts ~shape:Fl.Build.Ctx
      ~source:w.D.w_source
  in
  let log =
    let log = Vm.Sample_log.create () in
    List.iter
      (fun (spec : D.run_spec) ->
        ignore
          (Vm.Machine.run ~pmu:(Some opts.D.pmu)
             ~sink:(Vm.Sample_log.sink log) ~globals_init:spec.D.rs_globals
             ~args:spec.D.rs_args b.Fl.Build.vb_bin ~entry:w.D.w_entry))
      w.D.w_train;
    Vm.Sample_log.compact log;
    log
  in
  let n = Vm.Sample_log.n_samples log in
  let blob = Vm.Sample_log.encode log in
  let log_text = Vm.Sample_log.to_text log in
  (* chunk-framed (v2) decode against the text parse of the same stream *)
  let ns_parse =
    estimate "log-text-parse" (fun () ->
        match Vm.Sample_log.of_text log_text with
        | Ok l -> ignore l
        | Error _ -> assert false)
  in
  let ns_decode =
    estimate "log-v2-decode" (fun () ->
        match Vm.Sample_log.decode blob with
        | Ok l -> ignore l
        | Error _ -> assert false)
  in
  let decode_speedup = ns_parse /. ns_decode in
  pf "sample log (hhvm, period %d): %d samples, %d chunks\n" 499 n
    (match Vm.Sample_log.decode_chunks blob with
    | Ok parts -> List.length parts
    | Error _ -> assert false);
  pf "  text parse %10.1f us | v2 decode %10.1f us  (%.2fx, target >= 3x)\n"
    (ns_parse /. 1e3) (ns_decode /. 1e3) decode_speedup;
  (* Sharded correlation. The shard target scales with the log so the
     shard count, not the production 4096-sample default, bounds the
     available parallelism on this substrate-sized log. *)
  let chunks =
    match Vm.Sample_log.decode_chunks blob with
    | Ok parts -> parts
    | Error _ -> assert false
  in
  let shard_target = max 256 (n / 16) in
  let n_shards =
    List.length (Core.Par_corr.plan ~target:shard_target chunks)
  in
  pf "correlation (ctx shape): %d shards (target %d samples/shard)\n" n_shards
    shard_target;
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let text (p, flat) =
    P.Text_io.to_string p
    ^
    match flat with
    | Some f -> P.Text_io.to_string (P.Text_io.Probe_prof f)
    | None -> ""
  in
  let serial_out = ref "" in
  let t_serial =
    time_best (fun () ->
        let out = text (Fl.Build.correlate ~options:opts ~shape:Fl.Build.Ctx b log) in
        serial_out := out;
        out)
  in
  pf "  serial       %8.3fs   %9.0f samples/s\n" t_serial
    (float_of_int n /. t_serial);
  let runs =
    List.map
      (fun jobs ->
        let out = ref "" in
        let t =
          time_best (fun () ->
              let o =
                text
                  (Fl.Build.correlate_chunks ~shard_target ~jobs ~options:opts
                     ~shape:Fl.Build.Ctx b chunks)
              in
              out := o;
              o)
        in
        if not (String.equal !out !serial_out) then
          failwith
            (Printf.sprintf "corr: -j %d output differs from serial" jobs);
        pf "  -j %d         %8.3fs   %9.0f samples/s  (%.2fx, identical)\n" jobs
          t
          (float_of_int n /. t)
          (t_serial /. t);
        (jobs, t))
      [ 1; 2; 4 ]
  in
  (* The other two shapes ride the identity check without timing. *)
  List.iter
    (fun shape ->
      let b =
        Fl.Build.profiling_build ~options:opts ~shape ~source:w.D.w_source
      in
      let log =
        let log = Vm.Sample_log.create () in
        List.iter
          (fun (spec : D.run_spec) ->
            ignore
              (Vm.Machine.run ~pmu:(Some opts.D.pmu)
                 ~sink:(Vm.Sample_log.sink log)
                 ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args
                 b.Fl.Build.vb_bin ~entry:w.D.w_entry))
          w.D.w_train;
        log
      in
      let serial = text (Fl.Build.correlate ~options:opts ~shape b log) in
      let par =
        text
          (Fl.Build.correlate_chunks ~shard_target ~jobs:4 ~options:opts ~shape
             b (Vm.Sample_log.split log))
      in
      if not (String.equal serial par) then
        failwith ("corr: " ^ Fl.Build.shape_name shape ^ " -j 4 differs"))
    [ Fl.Build.Lines; Fl.Build.Probes ];
  let cores = Domain.recommended_domain_count () in
  let t4 = List.assoc 4 runs in
  let speedup4 = t_serial /. t4 in
  let buf = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"workload\": \"hhvm\",\n  \"sample_period\": 499,\n";
  bpf "  \"n_samples\": %d,\n  \"n_shards\": %d,\n  \"cores\": %d,\n" n n_shards
    cores;
  bpf "  \"decode\": {\"parse_ns\": %.0f, \"decode_ns\": %.0f, \"speedup\": %.3f},\n"
    ns_parse ns_decode decode_speedup;
  bpf "  \"correlate\": {\"serial_s\": %.4f, \"serial_samples_per_s\": %.0f,\n"
    t_serial
    (float_of_int n /. t_serial);
  bpf "    \"jobs\": [\n";
  List.iteri
    (fun i (jobs, t) ->
      bpf "      {\"jobs\": %d, \"s\": %.4f, \"samples_per_s\": %.0f, \"speedup\": %.3f}%s\n"
        jobs t
        (float_of_int n /. t)
        (t_serial /. t)
        (if i = List.length runs - 1 then "" else ","))
    runs;
  bpf "    ]\n  }\n}\n";
  let oc = open_out "BENCH_corr.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  pf "wrote BENCH_corr.json\n";
  if decode_speedup < 3.0 then
    failwith
      (Printf.sprintf "corr: v2 decode speedup %.2fx below 3x target"
         decode_speedup);
  (* The scaling target needs the hardware to scale on; a 1-core host runs
     every domain on the same core, so assert only where 4 domains can
     actually run in parallel. *)
  if cores >= 4 then begin
    if speedup4 < 3.0 then
      failwith
        (Printf.sprintf "corr: -j 4 speedup %.2fx below 3x target" speedup4)
  end
  else
    pf "(-j 4 speedup %.2fx not asserted: only %d core(s) available)\n"
      speedup4 cores

(* ------------------------------------------------------------------ *)
(* Health — windowed telemetry: the per-window close cost against the   *)
(* collection window it closes (target < 1%), and the drift alarm: an   *)
(* injected mid-train edit spike must trip exactly one crit alert.      *)

let health_bench () =
  sep "Health — windowed telemetry overhead and the drift alarm";
  let module Fl = Csspgo_fleet in
  let module Obs = Csspgo_obs in
  let open Bechamel in
  let estimate name f =
    let test = Test.make ~name (Staged.stage f) in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
    let results =
      Benchmark.all cfg [ instance ]
        (Test.make_grouped ~name:"health" ~fmt:"%s/%s" [ test ])
    in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    let est = ref nan in
    Hashtbl.iter
      (fun _ o ->
        match Analyze.OLS.estimates o with Some [ e ] -> est := e | _ -> ())
      ols;
    !est
  in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let w = W.Suite.adfinder in
  let fleet_cfg = { Fl.Sim.default with Fl.Sim.f_request_copies = 2 } in
  let versions =
    [ { Fl.Sim.v_id = 0; v_source = w.D.w_source; v_weight = 1L; v_instances = 4 } ]
  in
  (* One real collection window populates the registry the close cost is
     measured against. *)
  let metrics = Obs.Metrics.create () in
  let t_window =
    time_best (fun () -> Fl.Sim.run ~metrics fleet_cfg ~workload:w ~versions)
  in
  (* The health layer's marginal cost per window is one registry snapshot,
     one series record and one health observe; the overhead claim is that
     ratio, not a wall-clock difference two runs of the window itself would
     bury in noise. *)
  let series = Obs.Series.create () in
  let obs_tracker = Obs.Health.create () in
  let ns_close =
    estimate "window-close" (fun () ->
        let snap = Obs.Metrics.snapshot metrics in
        ignore (Obs.Series.record series snap);
        ignore (Obs.Health.observe obs_tracker snap))
  in
  let ns_window = t_window *. 1e9 in
  let overhead_pct = 100.0 *. ns_close /. ns_window in
  pf "collection window (adfinder, 4 instances):   %8.2f ms\n" (t_window *. 1e3);
  pf "window close (snapshot + series + health):   %8.2f us  (%.4f%% of the window)\n"
    (ns_close /. 1e3) overhead_pct;
  (* End-to-end cross-check: whole windows with and without the layer. *)
  let t_plain =
    time_best (fun () ->
        Fl.Sim.run ~metrics:(Obs.Metrics.create ()) fleet_cfg ~workload:w ~versions)
  in
  let t_obs =
    time_best (fun () ->
        let m = Obs.Metrics.create () in
        let s = Obs.Series.create () in
        let h = Obs.Health.create () in
        Fl.Sim.run ~metrics:m ~series:s ~health:h fleet_cfg ~workload:w ~versions)
  in
  pf "end-to-end: metrics only %.2f ms | + series + health %.2f ms  (%+.2f%%)\n"
    (t_plain *. 1e3) (t_obs *. 1e3)
    (100. *. (t_obs /. t_plain -. 1.));
  (* Drift alarm: a 4-generation train drifting 2 edits per release, with a
     4-edit spike injected at the transition into generation 2. The EWMA
     detector must flag the spike window — and only the spike window — as a
     crit regression. *)
  let train_cfg =
    {
      Fl.Train.default with
      Fl.Train.t_generations = 4;
      t_edits = 2;
      t_edit_schedule = [ 2; 4 ];
      t_skew = 1;
      t_cohort = 2;
      t_overlap = false;
      t_fleet = { Fl.Sim.default with Fl.Sim.f_request_copies = 2 };
    }
  in
  let tracker = Obs.Health.create () in
  let gens = Fl.Train.run ~health:tracker train_cfg w in
  let rep = Obs.Health.report tracker in
  pf "drift alarm (4 generations, spike 4 edits into gen 2):\n";
  print_string (Obs.Health.report_to_text rep);
  let crit_alerts =
    List.filter
      (fun (a : Obs.Health.alert) -> a.Obs.Health.al_level = Obs.Health.Crit)
      rep.Obs.Health.hp_alerts
  in
  let n_windows = List.length rep.Obs.Health.hp_windows in
  let cores = Domain.recommended_domain_count () in
  let buf = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"workload\": \"adfinder\",\n";
  bpf "  \"window_ms\": %.3f,\n  \"close_us\": %.3f,\n" (t_window *. 1e3)
    (ns_close /. 1e3);
  bpf "  \"overhead_pct\": %.4f,\n" overhead_pct;
  bpf "  \"end_to_end\": {\"plain_ms\": %.3f, \"telemetry_ms\": %.3f},\n"
    (t_plain *. 1e3) (t_obs *. 1e3);
  bpf "  \"windows\": %d,\n  \"crit_alerts\": %d,\n" n_windows
    (List.length crit_alerts);
  (match crit_alerts with
  | [ a ] ->
      bpf "  \"alert_window\": %d,\n  \"alert_indicator\": \"%s\",\n"
        a.Obs.Health.al_window a.Obs.Health.al_indicator
  | _ -> ());
  bpf "  \"cores\": %d\n}\n" cores;
  let oc = open_out "BENCH_health.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  pf "wrote BENCH_health.json\n";
  ignore gens;
  if overhead_pct >= 1.0 then
    failwith
      (Printf.sprintf "health: window-close overhead %.4f%% above 1%% target"
         overhead_pct);
  (match crit_alerts with
  | [ a ] when a.Obs.Health.al_window = 2 -> ()
  | [ a ] ->
      failwith
        (Printf.sprintf "health: crit alert on window %d, expected the spike window 2"
           a.Obs.Health.al_window)
  | l ->
      failwith
        (Printf.sprintf "health: %d crit alerts, expected exactly 1 (the spike)"
           (List.length l)))

(* ------------------------------------------------------------------ *)
(* Labels: blended vs label-sliced PGO on multi-tenant mixes. The paper
   never measures this — its pipeline blends every sample into one
   profile — so the question is what per-tenant specialization buys as
   the traffic skews away from the minority tenant, and whether a
   drifting (diurnal) mix changes the answer. Each mix is served through
   the full tenancy loop: labeled fleet serving, v3 log reassembly,
   per-label sliced correlation, then a specialized and a blended build
   per tenant scored against that tenant's own instrumentation ground
   truth. *)

let labels_bench () =
  sep "Labels — blended vs label-sliced PGO across tenant skew and drift";
  let module Fl = Csspgo_fleet in
  let requests = 16 in
  let cfg = { Fl.Tenancy.default with Fl.Tenancy.ty_jobs = 2 } in
  let run ~tag ~diurnal (w_maj, w_min) =
    let tenants =
      [
        {
          W.Mix.t_name = "adretriever";
          t_workload = W.Suite.adretriever;
          t_weight = w_maj;
        };
        { W.Mix.t_name = "adfinder"; t_workload = W.Suite.adfinder; t_weight = w_min };
      ]
    in
    let mix = W.Mix.make ~seed:7L ~requests ~diurnal_period:diurnal tenants in
    let co = Fl.Tenancy.collect cfg mix in
    let sp = Fl.Tenancy.specialize cfg mix co in
    let cmp = Fl.Tenancy.quality cfg mix co sp in
    pf "%-10s %-10s %5s %7s %8s %8s %12s %12s %12s\n" tag "tenant" "reqs"
      "share" "sliced" "blended" "cyc-sliced" "cyc-blended" "cyc-nopgo";
    List.iter
      (fun (c : Fl.Tenancy.comparison) ->
        let reqs =
          match List.assoc_opt c.Fl.Tenancy.cp_tenant mix.W.Mix.mx_counts with
          | Some n -> n
          | None -> 0
        in
        pf "%-10s %-10s %5d %6.1f%% %8s %8.4f %12s %12Ld %12Ld\n" "" c.Fl.Tenancy.cp_tenant
          reqs
          (100. *. c.Fl.Tenancy.cp_share)
          (if Float.is_nan c.Fl.Tenancy.cp_sliced_overlap then "-"
           else Printf.sprintf "%.4f" c.Fl.Tenancy.cp_sliced_overlap)
          c.Fl.Tenancy.cp_blended_overlap
          (if c.Fl.Tenancy.cp_sliced_cycles < 0L then "-"
           else Printf.sprintf "%Ld" c.Fl.Tenancy.cp_sliced_cycles)
          c.Fl.Tenancy.cp_blended_cycles c.Fl.Tenancy.cp_nopgo_cycles)
      cmp;
    (mix, cmp)
  in
  let skews = [ ("1:1", (1, 1)); ("3:1", (3, 1)); ("9:1", (9, 1)) ] in
  let skew_results =
    List.map (fun (tag, wts) -> (tag, wts, run ~tag ~diurnal:0 wts)) skews
  in
  (* One drifting mix: same 3:1 base weights, but a triangle-wave diurnal
     curve rotates which tenant dominates across the stream. *)
  let drift_period = 8 in
  let drift_tag = Printf.sprintf "3:1/d%d" drift_period in
  let drift_result = run ~tag:drift_tag ~diurnal:drift_period (3, 1) in
  let cores = Domain.recommended_domain_count () in
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let bpf_rows (mix : W.Mix.t) cmp =
    bpf "    \"per_tenant\": [\n";
    List.iteri
      (fun i (c : Fl.Tenancy.comparison) ->
        let reqs =
          match List.assoc_opt c.Fl.Tenancy.cp_tenant mix.W.Mix.mx_counts with
          | Some n -> n
          | None -> 0
        in
        bpf "      {\"tenant\": \"%s\", \"requests\": %d, \"share\": %.4f, "
          c.Fl.Tenancy.cp_tenant reqs c.Fl.Tenancy.cp_share;
        (if Float.is_nan c.Fl.Tenancy.cp_sliced_overlap then
           bpf "\"sliced_overlap\": null, "
         else bpf "\"sliced_overlap\": %.4f, " c.Fl.Tenancy.cp_sliced_overlap);
        bpf "\"blended_overlap\": %.4f, " c.Fl.Tenancy.cp_blended_overlap;
        (if c.Fl.Tenancy.cp_sliced_cycles < 0L then bpf "\"sliced_cycles\": null, "
         else bpf "\"sliced_cycles\": %Ld, " c.Fl.Tenancy.cp_sliced_cycles);
        bpf "\"blended_cycles\": %Ld, \"nopgo_cycles\": %Ld}%s\n"
          c.Fl.Tenancy.cp_blended_cycles c.Fl.Tenancy.cp_nopgo_cycles
          (if i = List.length cmp - 1 then "" else ","))
      cmp;
    bpf "    ]\n"
  in
  bpf "{\n  \"tenants\": [\"adretriever\", \"adfinder\"],\n";
  bpf "  \"requests\": %d,\n" requests;
  bpf "  \"skew_levels\": [\n";
  List.iteri
    (fun i (tag, (w_maj, w_min), (mix, cmp)) ->
      bpf "   {\"skew\": \"%s\", \"weights\": [%d, %d],\n" tag w_maj w_min;
      bpf_rows mix cmp;
      bpf "   }%s\n" (if i = List.length skew_results - 1 then "" else ","))
    skew_results;
  bpf "  ],\n";
  bpf "  \"drift\": {\"skew\": \"3:1\", \"diurnal_period\": %d,\n" drift_period;
  (let mix, cmp = drift_result in
   bpf_rows mix cmp);
  bpf "  },\n";
  bpf "  \"cores\": %d\n}\n" cores;
  let oc = open_out "BENCH_labels.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  pf "wrote BENCH_labels.json\n";
  (* The headline claim: on the most-skewed mix, the minority tenant's
     own slice must annotate its code at least as faithfully as the
     majority-dominated blend. *)
  let _, _, (_, most_skewed) = List.nth skew_results (List.length skew_results - 1) in
  List.iter
    (fun (c : Fl.Tenancy.comparison) ->
      if
        c.Fl.Tenancy.cp_tenant = "adfinder"
        && (not (Float.is_nan c.Fl.Tenancy.cp_sliced_overlap))
        && c.Fl.Tenancy.cp_sliced_overlap < c.Fl.Tenancy.cp_blended_overlap
      then
        failwith
          (Printf.sprintf
             "labels: minority tenant sliced overlap %.4f below blended %.4f on the \
              most-skewed mix"
             c.Fl.Tenancy.cp_sliced_overlap c.Fl.Tenancy.cp_blended_overlap))
    most_skewed

(* ------------------------------------------------------------------ *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Unix.gettimeofday () in
  (match which with
  | "fig6" -> fig6 ()
  | "fig7" -> fig7 ()
  | "fig8" -> fig8 ()
  | "fig9" -> fig9 ()
  | "table1" -> table1 ()
  | "client" -> client ()
  | "drift" -> drift ()
  | "stale" -> stale ()
  | "ablation" -> ablation ()
  | "orch" -> orch ()
  | "micro" -> micro ()
  | "pipeline" -> pipeline ()
  | "obs" -> obs_overhead ()
  | "format" -> format_bench ()
  | "fleet" -> fleet_bench ()
  | "corr" -> corr_bench ()
  | "health" -> health_bench ()
  | "labels" -> labels_bench ()
  | "all" ->
      fig6 ();
      fig7 ();
      fig8 ();
      fig9 ();
      table1 ();
      client ();
      drift ();
      stale ();
      ablation ();
      orch ();
      micro ();
      pipeline ();
      obs_overhead ();
      format_bench ();
      fleet_bench ();
      corr_bench ();
      health_bench ();
      labels_bench ()
  | other ->
      pf "unknown experiment %S\n" other;
      exit 1);
  pf "\n(total %.1fs)\n" (Unix.gettimeofday () -. t0)
