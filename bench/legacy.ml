(* The seed's materialize-then-iterate sample pipeline, kept verbatim as
   the benchmark baseline for `main.exe pipeline`: tuple-keyed Hashtbl
   bumps, per-LBR-entry [Mach.inst_at] hash lookups, per-instruction
   [level_path] recomputation, and every consumer re-walking the
   materialized sample list. The library replaced all of this with the
   streaming sink + dense-index pipeline; this copy exists only so the
   speedup is measured against what actually shipped before, and its
   output is still asserted byte-identical to the streaming path. *)

module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach
module Vm = Csspgo_vm
module P = Csspgo_profile

(* --- range aggregation (seed lib/profgen/ranges.ml) ------------------ *)

type agg = {
  range_counts : (int * int, int64) Hashtbl.t;
  branch_counts : (int * int, int64) Hashtbl.t;
}

let bump tbl key n =
  Hashtbl.replace tbl key (Int64.add n (Option.value (Hashtbl.find_opt tbl key) ~default:0L))

let aggregate samples =
  let agg = { range_counts = Hashtbl.create 1024; branch_counts = Hashtbl.create 1024 } in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      let lbr = s.Vm.Machine.s_lbr in
      Array.iter (fun (src, tgt) -> bump agg.branch_counts (src, tgt) 1L) lbr;
      for i = 1 to Array.length lbr - 1 do
        let _, prev_tgt = lbr.(i - 1) in
        let cur_src, _ = lbr.(i) in
        if prev_tgt <> 0 && cur_src >= prev_tgt then
          bump agg.range_counts (prev_tgt, cur_src) 1L
      done)
    samples;
  agg

let iter_range_insts (b : Mach.binary) (lo, hi) f =
  let rec go addr steps =
    if steps > 100_000 then ()
    else
      match Mach.inst_at b addr with
      | None -> ()
      | Some inst ->
          if inst.Mach.i_addr <= hi then begin
            f inst;
            match Mach.next_addr b addr with
            | Some next when next > addr -> go next (steps + 1)
            | _ -> ()
          end
  in
  go lo 0

let addr_totals b agg =
  let totals = Hashtbl.create 4096 in
  Hashtbl.iter
    (fun range n ->
      iter_range_insts b range (fun inst -> bump totals inst.Mach.i_addr n))
    agg.range_counts;
  totals

(* --- probe correlation (seed lib/core/probe_corr.ml) ------------------ *)

let probes_in_range (b : Mach.binary) (lo, hi) =
  let probes = b.Mach.probes in
  let n = Array.length probes in
  let rec lower l r =
    if l >= r then l
    else
      let m = (l + r) / 2 in
      if probes.(m).Mach.pr_addr < lo then lower (m + 1) r else lower l m
  in
  let start = lower 0 n in
  let out = ref [] in
  let i = ref start in
  while !i < n && probes.(!i).Mach.pr_addr <= hi do
    out := probes.(!i) :: !out;
    incr i
  done;
  List.rev !out

let default_name guid = Format.asprintf "%a" Ir.Guid.pp guid

let probe_correlate ?(name_of = fun _ -> None) ~checksum_of (b : Mach.binary) samples =
  let agg = aggregate samples in
  let prof = P.Probe_profile.create () in
  let name_for guid = Option.value (name_of guid) ~default:(default_name guid) in
  let fentry guid =
    let fe = P.Probe_profile.get_or_add prof guid ~name:(name_for guid) in
    if Int64.equal fe.P.Probe_profile.fe_checksum 0L then
      fe.P.Probe_profile.fe_checksum <- checksum_of guid;
    fe
  in
  Hashtbl.iter
    (fun range n ->
      List.iter
        (fun (pr : Mach.probe_rec) ->
          P.Probe_profile.add_probe (fentry pr.Mach.pr_func) pr.Mach.pr_id n)
        (probes_in_range b range))
    agg.range_counts;
  let totals = addr_totals b agg in
  Array.iter
    (fun (inst : Mach.inst) ->
      if inst.Mach.i_cs_probe > 0 then
        match inst.Mach.i_op with
        | Mach.MCall c | Mach.MTail_call c -> (
            match Hashtbl.find_opt totals inst.Mach.i_addr with
            | Some total when Int64.compare total 0L > 0 ->
                let owner =
                  if Ir.Dloc.is_none inst.Mach.i_dloc then
                    b.Mach.funcs.(inst.Mach.i_func).Mach.bf_guid
                  else inst.Mach.i_dloc.Ir.Dloc.origin
                in
                P.Probe_profile.add_call (fentry owner) inst.Mach.i_cs_probe c.Mach.m_callee
                  total
            | _ -> ())
        | _ -> ())
    b.Mach.insts;
  Hashtbl.iter
    (fun (_, tgt) n ->
      match Mach.func_index_of_addr b tgt with
      | Some i when b.Mach.funcs.(i).Mach.bf_start = tgt ->
          let fe = fentry b.Mach.funcs.(i).Mach.bf_guid in
          fe.P.Probe_profile.fe_head <- Int64.add fe.P.Probe_profile.fe_head n
      | _ -> ())
    agg.branch_counts;
  prof

(* --- missing-frame inference (seed lib/core/missing_frame.ml) --------- *)

type mf = {
  edges : (int * Ir.Guid.t) list Ir.Guid.Tbl.t;
  n_edges : int;
}

let missing_build (b : Mach.binary) samples =
  let edges = Ir.Guid.Tbl.create 16 in
  let seen = Hashtbl.create 64 in
  let n = ref 0 in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      Array.iter
        (fun (src, tgt) ->
          if not (Hashtbl.mem seen (src, tgt)) then begin
            Hashtbl.replace seen (src, tgt) ();
            match Mach.inst_at b src with
            | Some { Mach.i_op = Mach.MTail_call _; _ } -> (
                match (Mach.func_index_of_addr b src, Mach.func_index_of_addr b tgt) with
                | Some fi, Some ti ->
                    let from_g = b.Mach.funcs.(fi).Mach.bf_guid in
                    let to_g = b.Mach.funcs.(ti).Mach.bf_guid in
                    let cur = Option.value (Ir.Guid.Tbl.find_opt edges from_g) ~default:[] in
                    if
                      not (List.exists (fun (a, g) -> a = src && Ir.Guid.equal g to_g) cur)
                    then begin
                      Ir.Guid.Tbl.replace edges from_g (cur @ [ (src, to_g) ]);
                      incr n
                    end
                | _ -> ())
            | _ -> ()
          end)
        s.Vm.Machine.s_lbr)
    samples;
  { edges; n_edges = !n }

let max_depth = 8

let missing_resolve t ~from_func ~to_func =
  if Ir.Guid.equal from_func to_func then Some []
  else begin
    let paths = ref [] in
    let rec go cur path visited depth =
      if depth <= max_depth && List.length !paths < 2 then
        List.iter
          (fun (addr, target) ->
            if Ir.Guid.equal target to_func then paths := List.rev (addr :: path) :: !paths
            else if not (List.exists (Ir.Guid.equal target) visited) then
              go target (addr :: path) (target :: visited) (depth + 1))
          (Option.value (Ir.Guid.Tbl.find_opt t.edges cur) ~default:[])
    in
    go from_func [] [ from_func ] 0;
    match !paths with [ p ] -> Some p | _ -> None
  end

(* --- Algorithm 1 (seed lib/core/ctx_reconstruct.ml) ------------------- *)

type branch_kind = K_call | K_tail_call | K_ret | K_other

let classify (b : Mach.binary) src =
  match Mach.inst_at b src with
  | Some inst -> (
      match inst.Mach.i_op with
      | Mach.MCall _ -> K_call
      | Mach.MTail_call _ -> K_tail_call
      | Mach.MRet _ -> K_ret
      | _ -> K_other)
  | None -> K_other

let func_guid_of_addr (b : Mach.binary) addr =
  Option.map (fun i -> b.Mach.funcs.(i).Mach.bf_guid) (Mach.func_index_of_addr b addr)

let call_inst_before (b : Mach.binary) ret_addr =
  match Hashtbl.find_opt b.Mach.addr_index ret_addr with
  | Some idx when idx > 0 -> (
      let inst = b.Mach.insts.(idx - 1) in
      match inst.Mach.i_op with Mach.MCall _ -> Some inst | _ -> None)
  | _ -> None

let level_path (b : Mach.binary) (call_inst : Mach.inst) : (Ir.Guid.t * int) list =
  let container = b.Mach.funcs.(call_inst.Mach.i_func).Mach.bf_guid in
  match Ir.Dloc.frames ~container call_inst.Mach.i_dloc with
  | [] -> [ (container, call_inst.Mach.i_cs_probe) ]
  | (origin, _, _) :: rest ->
      let outer = List.rev_map (fun (f, _, probe) -> (f, probe)) rest in
      outer @ [ (origin, call_inst.Mach.i_cs_probe) ]

let static_callee (inst : Mach.inst) =
  match inst.Mach.i_op with
  | Mach.MCall c | Mach.MTail_call c -> Some c.Mach.m_callee
  | _ -> None

let reconstruct ?(name_of = fun _ -> None) ?missing ~checksum_of (b : Mach.binary)
    samples =
  let trie = P.Ctx_profile.create () in
  let name_for guid =
    Option.value (name_of guid) ~default:(Format.asprintf "%a" Ir.Guid.pp guid)
  in
  let gaps_resolved = ref 0 in
  let gaps_failed = ref 0 in
  let node_for (path : (Ir.Guid.t * int) list) (leaf : Ir.Guid.t) =
    match path with
    | [] -> Some (P.Ctx_profile.base trie leaf ~name:(name_for leaf))
    | _ ->
        let rec pairs = function
          | [ (f, s) ] -> [ ((f, s), leaf, name_for leaf) ]
          | (f, s) :: ((g, _) :: _ as rest) -> ((f, s), g, name_for g) :: pairs rest
          | [] -> []
        in
        P.Ctx_profile.node_at trie ~path:(pairs path)
  in
  let ensure_checksum (node : P.Ctx_profile.node) =
    if Int64.equal node.P.Ctx_profile.n_prof.P.Probe_profile.fe_checksum 0L then
      node.P.Ctx_profile.n_prof.P.Probe_profile.fe_checksum <-
        checksum_of node.P.Ctx_profile.n_func
  in
  let path_of_callers (callers : int list) (leaf_addr : int) : (Ir.Guid.t * int) list =
    let path = ref [] in
    let expected : Ir.Guid.t option ref = ref None in
    let reset () =
      path := [];
      expected := None
    in
    let bridge_gap ~to_func =
      match !expected with
      | Some exp when not (Ir.Guid.equal exp to_func) -> (
          match missing with
          | None ->
              incr gaps_failed;
              reset ()
          | Some mf -> (
              match missing_resolve mf ~from_func:exp ~to_func with
              | Some chain ->
                  incr gaps_resolved;
                  List.iter
                    (fun addr ->
                      match Mach.inst_at b addr with
                      | Some tc -> path := !path @ level_path b tc
                      | None -> ())
                    chain
              | None ->
                  incr gaps_failed;
                  reset ()))
      | _ -> ()
    in
    List.iter
      (fun ret_addr ->
        match call_inst_before b ret_addr with
        | None -> reset ()
        | Some call_inst ->
            let container = b.Mach.funcs.(call_inst.Mach.i_func).Mach.bf_guid in
            bridge_gap ~to_func:container;
            path := !path @ level_path b call_inst;
            expected := static_callee call_inst)
      (List.rev callers);
    (match func_guid_of_addr b leaf_addr with
    | Some leaf_container -> bridge_gap ~to_func:leaf_container
    | None -> ());
    !path
  in
  let attribute (lo, hi) (callers : int list) =
    if lo > 0 && hi >= lo then begin
      let caller_path = path_of_callers callers lo in
      List.iter
        (fun (pr : Mach.probe_rec) ->
          let chain_path =
            List.rev_map
              (fun cs -> (cs.Ir.Dloc.cs_func, cs.Ir.Dloc.cs_probe))
              pr.Mach.pr_chain
          in
          match node_for (caller_path @ chain_path) pr.Mach.pr_func with
          | Some node ->
              ensure_checksum node;
              P.Probe_profile.add_probe node.P.Ctx_profile.n_prof pr.Mach.pr_id 1L
          | None -> ())
        (probes_in_range b (lo, hi));
      iter_range_insts b (lo, hi) (fun inst ->
          if inst.Mach.i_cs_probe > 0 then
            match inst.Mach.i_op with
            | Mach.MCall c | Mach.MTail_call c ->
                let lp = level_path b inst in
                let rec split_last = function
                  | [] -> ([], None)
                  | [ (f, _) ] -> ([], Some f)
                  | x :: rest ->
                      let init, last = split_last rest in
                      (x :: init, last)
                in
                let owner_prefix, owner = split_last lp in
                (match owner with
                | Some owner_func -> (
                    match node_for (caller_path @ owner_prefix) owner_func with
                    | Some node ->
                        ensure_checksum node;
                        P.Probe_profile.add_call node.P.Ctx_profile.n_prof
                          inst.Mach.i_cs_probe c.Mach.m_callee 1L
                    | None -> ())
                | None -> ())
            | _ -> ())
    end
  in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      let lbr = s.Vm.Machine.s_lbr in
      let stack = s.Vm.Machine.s_stack in
      let n = Array.length lbr in
      if n > 0 && Array.length stack > 0 then begin
        let _, last_tgt = lbr.(n - 1) in
        let aligned =
          match (func_guid_of_addr b stack.(0), func_guid_of_addr b last_tgt) with
          | Some a, Some c -> Ir.Guid.equal a c
          | _ -> false
        in
        if aligned then begin
          let callers = ref (List.tl (Array.to_list stack)) in
          attribute (last_tgt, stack.(0)) !callers;
          for i = n - 1 downto 1 do
            let cur_src, _ = lbr.(i) in
            let _, older_tgt = lbr.(i - 1) in
            (match classify b cur_src with
            | K_call -> ( match !callers with [] -> () | _ :: tl -> callers := tl)
            | K_tail_call -> ()
            | K_ret -> callers := (let _, t = lbr.(i) in t) :: !callers
            | K_other -> ());
            attribute (older_tgt, cur_src) !callers
          done
        end
      end)
    samples;
  trie
