(* csspgo — command-line driver for the MiniC toolchain and PGO pipelines.

   Subcommands:
     compile  FILE     parse, optimize, emit; print binary statistics
     run      FILE     compile and execute main with integer arguments
     pgo      NAME     run a PGO variant end-to-end on a named workload
     probes   FILE     show the pseudo-probe metadata of a probed build
     contexts NAME     print the reconstructed context trie for a workload *)

module F = Csspgo_frontend
module Ir = Csspgo_ir
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module P = Csspgo_profile
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_src ?(probes = false) ~opt src =
  let p = F.Lower.compile src in
  if probes then Core.Pseudo_probe.insert p;
  Ir.Verify.check_exn p;
  let config = match opt with 0 -> Opt.Config.o0 | _ -> Opt.Config.o2_nopgo in
  Opt.Pass.optimize ~config p;
  (p, Cg.Emit.emit ~options:Cg.Emit.default_options p)

(* --- compile ------------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")

let opt_arg =
  Arg.(value & opt int 2 & info [ "O" ] ~docv:"LEVEL" ~doc:"Optimization level (0 or 2)")

let probes_flag =
  Arg.(value & flag & info [ "probes" ] ~doc:"Insert pseudo-probes before optimizing")

let compile_cmd =
  let run file opt probes =
    let _, bin = compile_src ~probes ~opt (read_file file) in
    Printf.printf "text           %6d bytes\n" bin.Cg.Mach.text_size;
    Printf.printf "instructions   %6d\n" (Array.length bin.Cg.Mach.insts);
    Printf.printf "functions      %6d\n" (Array.length bin.Cg.Mach.funcs);
    Printf.printf "debug info     %6d bytes\n" bin.Cg.Mach.debug_size;
    Printf.printf "probe metadata %6d bytes (%d records)\n" bin.Cg.Mach.probe_meta_size
      (Array.length bin.Cg.Mach.probes)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a MiniC file and print binary statistics")
    Term.(const run $ file_arg $ opt_arg $ probes_flag)

(* --- run ----------------------------------------------------------- *)

let args_arg =
  Arg.(value & opt_all int64 [] & info [ "arg" ] ~docv:"N" ~doc:"Argument passed to main (repeatable)")

let run_cmd =
  let run file opt probes args =
    let _, bin = compile_src ~probes ~opt (read_file file) in
    let r = Vm.Machine.run ~pmu:None bin ~entry:"main" ~args in
    Printf.printf "result        %Ld\n" r.Vm.Machine.ret_value;
    Printf.printf "cycles        %Ld\n" r.Vm.Machine.cycles;
    Printf.printf "instructions  %Ld\n" r.Vm.Machine.instructions;
    Printf.printf "taken branches %Ld (mispredicted %Ld)\n" r.Vm.Machine.taken_branches
      r.Vm.Machine.mispredicts;
    Printf.printf "icache misses %Ld\n" r.Vm.Machine.icache_misses
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a MiniC file on the VM")
    Term.(const run $ file_arg $ opt_arg $ probes_flag $ args_arg)

(* --- pgo ----------------------------------------------------------- *)

let workload_arg =
  let names = List.map (fun w -> w.D.w_name) W.Suite.all in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
    & info [] ~docv:"WORKLOAD" ~doc:(Printf.sprintf "One of: %s" (String.concat ", " names)))

let variant_arg =
  let variants =
    [ ("nopgo", D.Nopgo); ("autofdo", D.Autofdo); ("probe-only", D.Csspgo_probe_only);
      ("csspgo", D.Csspgo_full); ("instr", D.Instr_pgo) ]
  in
  Arg.(value & opt (enum variants) D.Csspgo_full & info [ "variant" ] ~docv:"V"
         ~doc:"nopgo | autofdo | probe-only | csspgo | instr")

let pgo_cmd =
  let run name variant =
    let w = Option.get (W.Suite.find name) in
    let o = D.run_variant variant w in
    Printf.printf "variant            %s\n" (D.variant_name variant);
    Printf.printf "eval cycles        %Ld\n" o.D.o_eval.D.ev_cycles;
    Printf.printf "eval instructions  %Ld\n" o.D.o_eval.D.ev_instructions;
    Printf.printf "text size          %d bytes\n" o.D.o_text_size;
    Printf.printf "profiling cycles   %Ld\n" o.D.o_profiling_cycles;
    Printf.printf "profile size       %d bytes\n" o.D.o_profile_size;
    Printf.printf "stale functions    %d\n" (List.length o.D.o_stales);
    (match o.D.o_recon_stats with
    | Some s ->
        Printf.printf "samples            %d (%d dropped, %d gaps fixed, %d failed)\n"
          s.Core.Ctx_reconstruct.st_samples s.Core.Ctx_reconstruct.st_dropped_misaligned
          s.Core.Ctx_reconstruct.st_gaps_resolved s.Core.Ctx_reconstruct.st_gaps_failed
    | None -> ());
    if o.D.o_preinline_decisions <> [] then begin
      Printf.printf "pre-inliner decisions:\n";
      List.iter
        (fun (d : Core.Preinliner.decision) ->
          Printf.printf "  inline %-20s count=%-8Ld size=%dB depth=%d\n"
            d.Core.Preinliner.d_callee_name d.Core.Preinliner.d_count d.Core.Preinliner.d_size
            (List.length d.Core.Preinliner.d_context))
        o.D.o_preinline_decisions
    end
  in
  Cmd.v
    (Cmd.info "pgo" ~doc:"Run a PGO variant end-to-end on a named workload")
    Term.(const run $ workload_arg $ variant_arg)

(* --- probes -------------------------------------------------------- *)

let probes_cmd =
  let run file =
    let _, bin = compile_src ~probes:true ~opt:2 (read_file file) in
    Array.iter
      (fun (pr : Cg.Mach.probe_rec) ->
        Printf.printf "0x%04x  %Lx #%d%s" pr.Cg.Mach.pr_addr pr.Cg.Mach.pr_func
          pr.Cg.Mach.pr_id
          (match pr.Cg.Mach.pr_kind with
          | Ir.Instr.Block_probe -> ""
          | Ir.Instr.Callsite_probe -> " (callsite)");
        List.iter
          (fun (cs : Ir.Dloc.callsite) ->
            Printf.printf " @ %Lx:%d" cs.Ir.Dloc.cs_func cs.Ir.Dloc.cs_probe)
          pr.Cg.Mach.pr_chain;
        print_newline ())
      bin.Cg.Mach.probes
  in
  Cmd.v
    (Cmd.info "probes" ~doc:"Show the pseudo-probe metadata of a probed -O2 build")
    Term.(const run $ file_arg)

(* --- contexts ------------------------------------------------------ *)

let contexts_cmd =
  let run name =
    let w = Option.get (W.Suite.find name) in
    let pbin, samples, _ = D.profiling_run ~probes:true w in
    let refp =
      let p = F.Lower.compile w.D.w_source in
      Core.Pseudo_probe.insert p;
      p
    in
    let name_of g =
      Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp g)
    in
    let checksum_of g =
      match Ir.Program.find_func_by_guid refp g with
      | Some f -> f.Ir.Func.checksum
      | None -> 0L
    in
    let missing = Core.Missing_frame.build pbin samples in
    let trie, stats =
      Core.Ctx_reconstruct.reconstruct ~name_of ~missing ~checksum_of pbin samples
    in
    Printf.printf "# samples=%d dropped=%d gaps: %d fixed / %d failed\n"
      stats.Core.Ctx_reconstruct.st_samples stats.Core.Ctx_reconstruct.st_dropped_misaligned
      stats.Core.Ctx_reconstruct.st_gaps_resolved stats.Core.Ctx_reconstruct.st_gaps_failed;
    (* The text profile format round-trips through Csspgo_profile.Text_io. *)
    print_string (P.Text_io.ctx_to_string trie)
  in
  Cmd.v
    (Cmd.info "contexts" ~doc:"Print the reconstructed context trie of a workload")
    Term.(const run $ workload_arg)

let () =
  let info =
    Cmd.info "csspgo" ~version:"1.0.0"
      ~doc:"CSSPGO: context-sensitive sampling-based PGO with pseudo-instrumentation"
  in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; run_cmd; pgo_cmd; probes_cmd; contexts_cmd ]))
