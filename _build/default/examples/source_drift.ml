(* Source drift (§III.A): what happens when the profiled source and the
   built source differ slightly.

   We profile version 1 of a service, then build:
     (a) version 1 with comments added (no CFG change), and
     (b) version 2 with an extra branch in the hot helper (CFG change),
   using the version-1 profile for both.

   AutoFDO correlates by line offsets, so edit (a) silently shifts every
   following line's counts and edit (b) quietly mis-annotates. CSSPGO's
   probe checksums accept (a) untouched and *reject* the stale function in
   (b), falling back to unannotated (safe) rather than wrong. *)

module F = Csspgo_frontend
module Ir = Csspgo_ir
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module Core = Csspgo_core

let v1 = {|
global data[2048];

fn score(x, w) {
  let acc = 0;
  let i = 0;
  while (i < 64) {
    acc = acc + data[x + i] * w;
    i = i + 1;
  }
  if (acc % 4 == 0) { acc = acc + x * 3 - i + (acc >> 5); } else { acc = acc + 1; }
  return acc;
}

fn main(n) {
  let t = 0;
  let k = 0;
  while (k < n) {
    t = t + score(k % 1024, k % 7 + 1);
    k = k + 1;
  }
  return t;
}
|}

(* (a) comments inserted mid-function: lines shift, CFG identical *)
let v1_comments = {|
global data[2048];

fn score(x, w) {
  // accumulate weighted window
  // (hot loop)
  let acc = 0;
  let i = 0;
  while (i < 64) {
    acc = acc + data[x + i] * w;
    i = i + 1;
  }
  if (acc % 4 == 0) { acc = acc + x * 3 - i + (acc >> 5); } else { acc = acc + 1; }
  return acc;
}

fn main(n) {
  let t = 0;
  let k = 0;
  while (k < n) {
    t = t + score(k % 1024, k % 7 + 1);
    k = k + 1;
  }
  return t;
}
|}

(* (b) a real change: early-exit branch added to score *)
let v2 = {|
global data[2048];

fn score(x, w) {
  if (w == 0) { return 0; }
  let acc = 0;
  let i = 0;
  while (i < 64) {
    acc = acc + data[x + i] * w;
    i = i + 1;
  }
  if (acc % 4 == 0) { acc = acc + x * 3 - i + (acc >> 5); } else { acc = acc + 1; }
  return acc;
}

fn main(n) {
  let t = 0;
  let k = 0;
  while (k < n) {
    t = t + score(k % 1024, k % 7 + 1);
    k = k + 1;
  }
  return t;
}
|}

let globals () =
  let rng = Csspgo_support.Rng.create 5L in
  [ ("data", Csspgo_workloads.Inputs.array rng 2048 ~max:1000) ]

let profile_v1 () =
  (* Sample v1 once, producing both a line profile and a probe profile. *)
  let build ~probes =
    let p = F.Lower.compile v1 in
    if probes then Core.Pseudo_probe.insert p;
    let refp = Ir.Program.copy p in
    Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
    let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
    let r =
      Vm.Machine.run
        ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 503 })
        ~globals_init:(globals ()) bin ~entry:"main" ~args:[ 4000L ]
    in
    (refp, bin, r.Vm.Machine.samples)
  in
  let _, dbin, dsamples = build ~probes:false in
  let line_prof = Csspgo_profgen.Dwarf_corr.correlate dbin dsamples in
  let refp, pbin, psamples = build ~probes:true in
  let checksum_of g =
    match Ir.Program.find_func_by_guid refp g with Some f -> f.Ir.Func.checksum | None -> 0L
  in
  let probe_prof = Core.Probe_corr.correlate ~checksum_of pbin psamples in
  (line_prof, probe_prof)

let eval_with src annotate =
  let p = F.Lower.compile src in
  annotate p;
  Opt.Pass.optimize ~config:Opt.Config.o2 p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  (Vm.Machine.run ~pmu:None ~globals_init:(globals ()) bin ~entry:"main" ~args:[ 5000L ])
    .Vm.Machine.cycles

let () =
  print_endline "== source drift: stale profiles, line offsets, and checksums ==\n";
  let line_prof, probe_prof = profile_v1 () in
  let autofdo src = eval_with src (fun p -> Core.Annotate.lines line_prof p) in
  let csspgo src =
    let stales = ref [] in
    let c =
      eval_with src (fun p ->
          Core.Pseudo_probe.insert p;
          stales := Core.Annotate.probes probe_prof p)
    in
    (c, !stales)
  in
  let af_fresh = autofdo v1 in
  let af_comment = autofdo v1_comments in
  let af_v2 = autofdo v2 in
  Printf.printf "AutoFDO (line-offset correlation), profile from v1:\n";
  Printf.printf "  build v1 (fresh)      %10Ld cycles\n" af_fresh;
  Printf.printf "  build v1 + comments   %10Ld cycles  (%+.2f%% — lines shifted)\n" af_comment
    ((Int64.to_float af_comment -. Int64.to_float af_fresh)
    /. Int64.to_float af_fresh *. 100.);
  Printf.printf "  build v2 (CFG change) %10Ld cycles  (%+.2f%% — silently mis-annotated)\n"
    af_v2
    ((Int64.to_float af_v2 -. Int64.to_float af_fresh) /. Int64.to_float af_fresh *. 100.);
  let cs_fresh, s1 = csspgo v1 in
  let cs_comment, s2 = csspgo v1_comments in
  let cs_v2, s3 = csspgo v2 in
  Printf.printf "\nCSSPGO (probe correlation + CFG checksums), profile from v1:\n";
  Printf.printf "  build v1 (fresh)      %10Ld cycles  (%d stale)\n" cs_fresh (List.length s1);
  Printf.printf "  build v1 + comments   %10Ld cycles  (%d stale — checksum unchanged)\n"
    cs_comment (List.length s2);
  Printf.printf "  build v2 (CFG change) %10Ld cycles  (%d stale: %s — profile rejected,\n"
    cs_v2 (List.length s3)
    (String.concat "," (List.map (fun s -> s.Core.Annotate.sf_name) s3));
  Printf.printf "%26s function falls back to safe static heuristics)\n" ""
