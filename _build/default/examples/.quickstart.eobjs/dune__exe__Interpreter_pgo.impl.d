examples/interpreter_pgo.ml: Csspgo_core Csspgo_workloads Int64 List Printf
