examples/interpreter_pgo.mli:
