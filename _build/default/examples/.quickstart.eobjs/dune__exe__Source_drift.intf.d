examples/source_drift.mli:
