examples/quickstart.ml: Csspgo_core Csspgo_frontend Csspgo_ir Csspgo_profile Csspgo_support Csspgo_workloads Int64 List Option Printf String
