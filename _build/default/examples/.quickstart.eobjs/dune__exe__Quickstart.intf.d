examples/quickstart.mli:
