(* Domain scenario: optimizing a bytecode interpreter (the HHVM stand-in).

   Interpreters are the workload class where the paper's operational-
   overhead story is sharpest: counter instrumentation sits in the dispatch
   loop, so the instrumented binary is dramatically slower — while sampling
   with pseudo-probes costs nothing. This example measures:
     - the profiling cost of each approach (Table I's overhead row),
     - the end performance of each variant,
     - the profile-quality (block overlap) each profile achieves. *)

module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads

let () =
  print_endline "== PGO on a bytecode interpreter (hhvm stand-in) ==\n";
  let w = W.Suite.hhvm in
  (* Profiling overhead. *)
  let _, _, plain = D.profiling_run ~probes:false w in
  let _, _, probed = D.profiling_run ~probes:true w in
  let instr = D.run_variant D.Instr_pgo w in
  let pct c = (Int64.to_float c -. Int64.to_float plain) /. Int64.to_float plain *. 100. in
  Printf.printf "profiling-run cost (the operational-overhead story):\n";
  Printf.printf "  sampling, no probes     %12Ld cycles  (baseline)\n" plain;
  Printf.printf "  sampling + pseudoprobes %12Ld cycles  (%+.2f%%)\n" probed (pct probed);
  Printf.printf "  counter instrumentation %12Ld cycles  (%+.2f%%  <- why instr PGO\n"
    instr.D.o_profiling_cycles
    (pct instr.D.o_profiling_cycles);
  Printf.printf "%42s cannot run in production)\n" "";
  (* Final performance. *)
  print_endline "\noptimized-binary performance (eval inputs):";
  let autofdo = D.run_variant D.Autofdo w in
  let base = Int64.to_float autofdo.D.o_eval.D.ev_cycles in
  List.iter
    (fun v ->
      let o = D.run_variant v w in
      let c = Int64.to_float o.D.o_eval.D.ev_cycles in
      Printf.printf "  %-18s %12.0f cycles  (%+.2f%% vs AutoFDO)\n" (D.variant_name v) c
        ((base -. c) /. base *. 100.))
    [ D.Nopgo; D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full; D.Instr_pgo ];
  (* Profile quality. *)
  print_endline "\nprofile quality (block overlap vs instrumentation ground truth):";
  let truth = instr.D.o_annotated in
  List.iter
    (fun v ->
      let o = D.run_variant v w in
      Printf.printf "  %-18s %5.1f%%\n" (D.variant_name v)
        (Core.Quality.block_overlap ~truth o.D.o_annotated *. 100.))
    [ D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full; D.Instr_pgo ];
  print_endline "\n(paper Table I: AutoFDO 88.2% / CSSPGO 92.3% / Instr 100%)"
