open Ast
module T = Csspgo_ir.Types

exception Parse_error of string * int

type state = {
  mutable toks : Lexer.loc_token list;
}

let peek st =
  match st.toks with [] -> { Lexer.tok = Lexer.EOF; tline = 0 } | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: tl -> st.toks <- tl

let next st =
  let t = peek st in
  advance st;
  t

let error st msg = raise (Parse_error (msg, (peek st).Lexer.tline))

let expect_punct st p =
  match next st with
  | { Lexer.tok = Lexer.PUNCT q; _ } when String.equal p q -> ()
  | t -> raise (Parse_error (Printf.sprintf "expected %S" p, t.Lexer.tline))

let expect_kw st k =
  match next st with
  | { Lexer.tok = Lexer.KW q; _ } when String.equal k q -> ()
  | t -> raise (Parse_error (Printf.sprintf "expected keyword %S" k, t.Lexer.tline))

let expect_ident st =
  match next st with
  | { Lexer.tok = Lexer.IDENT name; _ } -> name
  | t -> raise (Parse_error ("expected identifier", t.Lexer.tline))

let expect_int st =
  match next st with
  | { Lexer.tok = Lexer.INT v; _ } -> v
  | { Lexer.tok = Lexer.PUNCT "-"; tline } -> (
      match next st with
      | { Lexer.tok = Lexer.INT v; _ } -> Int64.neg v
      | _ -> raise (Parse_error ("expected integer", tline)))
  | t -> raise (Parse_error ("expected integer", t.Lexer.tline))

let is_punct st p =
  match (peek st).Lexer.tok with Lexer.PUNCT q -> String.equal p q | _ -> false

let is_kw st k =
  match (peek st).Lexer.tok with Lexer.KW q -> String.equal k q | _ -> false

let eat_punct st p = if is_punct st p then (advance st; true) else false

(* Binary operator precedence; higher binds tighter. *)
let binop_of_punct = function
  | "||" -> Some (Log_or, 1)
  | "&&" -> Some (Log_and, 2)
  | "|" -> Some (Arith T.Or, 3)
  | "^" -> Some (Arith T.Xor, 4)
  | "&" -> Some (Arith T.And, 5)
  | "==" -> Some (Compare T.Eq, 6)
  | "!=" -> Some (Compare T.Ne, 6)
  | "<" -> Some (Compare T.Lt, 7)
  | "<=" -> Some (Compare T.Le, 7)
  | ">" -> Some (Compare T.Gt, 7)
  | ">=" -> Some (Compare T.Ge, 7)
  | "<<" -> Some (Arith T.Shl, 8)
  | ">>" -> Some (Arith T.Shr, 8)
  | "+" -> Some (Arith T.Add, 9)
  | "-" -> Some (Arith T.Sub, 9)
  | "*" -> Some (Arith T.Mul, 10)
  | "/" -> Some (Arith T.Div, 10)
  | "%" -> Some (Arith T.Rem, 10)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).Lexer.tok with
    | Lexer.PUNCT p -> (
        match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
            let line = (peek st).Lexer.tline in
            advance st;
            let rhs = parse_binary st (prec + 1) in
            lhs := { e = Binary (op, !lhs, rhs); eline = line }
        | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.PUNCT "-" ->
      advance st;
      { e = Unary (Neg, parse_unary st); eline = t.Lexer.tline }
  | Lexer.PUNCT "!" ->
      advance st;
      { e = Unary (Not, parse_unary st); eline = t.Lexer.tline }
  | _ -> parse_primary st

and parse_primary st =
  let t = next st in
  let line = t.Lexer.tline in
  match t.Lexer.tok with
  | Lexer.INT v -> { e = Int v; eline = line }
  | Lexer.PUNCT "(" ->
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Lexer.IDENT name ->
      if eat_punct st "(" then begin
        let args = ref [] in
        if not (is_punct st ")") then begin
          args := [ parse_expr st ];
          while eat_punct st "," do
            args := parse_expr st :: !args
          done
        end;
        expect_punct st ")";
        { e = Call (name, List.rev !args); eline = line }
      end
      else if eat_punct st "[" then begin
        let idx = parse_expr st in
        expect_punct st "]";
        { e = Index (name, idx); eline = line }
      end
      else { e = Var name; eline = line }
  | _ -> raise (Parse_error ("expected expression", line))

let rec parse_stmt st =
  let t = peek st in
  let line = t.Lexer.tline in
  match t.Lexer.tok with
  | Lexer.KW "let" ->
      advance st;
      let name = expect_ident st in
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      { s = Let (name, e); sline = line }
  | Lexer.KW "return" ->
      advance st;
      let e =
        if is_punct st ";" then { e = Int 0L; eline = line } else parse_expr st
      in
      expect_punct st ";";
      { s = Return e; sline = line }
  | Lexer.KW "break" ->
      advance st;
      expect_punct st ";";
      { s = Break; sline = line }
  | Lexer.KW "continue" ->
      advance st;
      expect_punct st ";";
      { s = Continue; sline = line }
  | Lexer.KW "if" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      let then_ = parse_block st in
      let else_ =
        if is_kw st "else" then begin
          advance st;
          if is_kw st "if" then [ parse_stmt st ] else parse_block st
        end
        else []
      in
      { s = If (cond, then_, else_); sline = line }
  | Lexer.KW "while" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      let body = parse_block st in
      { s = While (cond, body); sline = line }
  | Lexer.KW "switch" ->
      advance st;
      expect_punct st "(";
      let scrut = parse_expr st in
      expect_punct st ")";
      expect_punct st "{";
      let cases = ref [] in
      let default = ref [] in
      let parse_case_body () =
        let stmts = ref [] in
        while
          not (is_kw st "case" || is_kw st "default" || is_punct st "}")
        do
          stmts := parse_stmt st :: !stmts
        done;
        List.rev !stmts
      in
      while not (is_punct st "}") do
        if is_kw st "case" then begin
          advance st;
          let v = expect_int st in
          expect_punct st ":";
          cases := (v, parse_case_body ()) :: !cases
        end
        else if is_kw st "default" then begin
          advance st;
          expect_punct st ":";
          default := parse_case_body ()
        end
        else error st "expected case/default"
      done;
      expect_punct st "}";
      { s = Switch (scrut, List.rev !cases, !default); sline = line }
  | Lexer.IDENT name -> (
      (* Could be assignment, array store, or expression statement. *)
      match st.toks with
      | _ :: { Lexer.tok = Lexer.PUNCT "="; _ } :: _ ->
          advance st;
          advance st;
          let e = parse_expr st in
          expect_punct st ";";
          { s = Assign (name, e); sline = line }
      | _ :: { Lexer.tok = Lexer.PUNCT "["; _ } :: _ -> (
          (* Distinguish store [x[i] = e;] from read-expression statement. *)
          let saved = st.toks in
          advance st;
          advance st;
          let idx = parse_expr st in
          expect_punct st "]";
          if eat_punct st "=" then begin
            let v = parse_expr st in
            expect_punct st ";";
            { s = Store (name, idx, v); sline = line }
          end
          else begin
            st.toks <- saved;
            let e = parse_expr st in
            expect_punct st ";";
            { s = Expr e; sline = line }
          end)
      | _ ->
          let e = parse_expr st in
          expect_punct st ";";
          { s = Expr e; sline = line })
  | _ ->
      let e = parse_expr st in
      expect_punct st ";";
      { s = Expr e; sline = line }

and parse_block st =
  expect_punct st "{";
  let stmts = ref [] in
  while not (is_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  expect_punct st "}";
  List.rev !stmts

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let globals = ref [] in
  let fns = ref [] in
  let current_module = ref "main" in
  let rec loop () =
    match (peek st).Lexer.tok with
    | Lexer.EOF -> ()
    | Lexer.KW "global" ->
        advance st;
        let name = expect_ident st in
        expect_punct st "[";
        let size = expect_int st in
        expect_punct st "]";
        expect_punct st ";";
        globals := (name, Int64.to_int size) :: !globals;
        loop ()
    | Lexer.KW "module" ->
        advance st;
        current_module := expect_ident st;
        expect_punct st ";";
        loop ()
    | Lexer.KW "fn" ->
        let fline = (peek st).Lexer.tline in
        expect_kw st "fn";
        let fname = expect_ident st in
        expect_punct st "(";
        let params = ref [] in
        if not (is_punct st ")") then begin
          params := [ expect_ident st ];
          while eat_punct st "," do
            params := expect_ident st :: !params
          done
        end;
        expect_punct st ")";
        let fbody = parse_block st in
        fns :=
          { fname; fparams = List.rev !params; fbody; fline; fmodule = !current_module }
          :: !fns;
        loop ()
    | _ -> error st "expected top-level declaration (global, module, fn)"
  in
  loop ();
  { pglobals = List.rev !globals; pfns = List.rev !fns }
