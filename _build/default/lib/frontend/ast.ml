type unop = Neg | Not

type binop =
  | Arith of Csspgo_ir.Types.binop
  | Compare of Csspgo_ir.Types.cmpop
  | Log_and
  | Log_or

type expr = { e : expr_kind; eline : int }

and expr_kind =
  | Int of int64
  | Var of string
  | Binary of binop * expr * expr
  | Unary of unop * expr
  | Call of string * expr list
  | Index of string * expr

type stmt = { s : stmt_kind; sline : int }

and stmt_kind =
  | Let of string * expr
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * block * block
  | While of expr * block
  | Switch of expr * (int64 * block) list * block
  | Return of expr
  | Expr of expr
  | Break
  | Continue

and block = stmt list

type fndef = {
  fname : string;
  fparams : string list;
  fbody : block;
  fline : int;
  fmodule : string;
}

type program = {
  pglobals : (string * int) list;
  pfns : fndef list;
}
