open Ast
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr

exception Lower_error of string * int

type ctx = {
  func : Ir.Func.t;
  env : (string, T.reg) Hashtbl.t;
  mutable cur : Ir.Block.t;
  mutable loops : (T.label * T.label) list;  (** (continue target, break target) *)
  fline : int;
}

let dloc ctx line = Ir.Dloc.mk ctx.func.Ir.Func.guid (max 0 (line - ctx.fline))

let emit ctx line op = Ir.Block.add ctx.cur (I.mk op (dloc ctx line))

let set_term ctx term = Ir.Block.set_term ctx.cur term

let start_block ctx b = ctx.cur <- b

let fresh ctx = Ir.Func.fresh_reg ctx.func

let lookup ctx name line =
  match Hashtbl.find_opt ctx.env name with
  | Some r -> r
  | None -> raise (Lower_error ("unknown variable " ^ name, line))

let rec lower_expr ctx (e : expr) : T.operand =
  let line = e.eline in
  match e.e with
  | Int v -> T.Imm v
  | Var name -> T.Reg (lookup ctx name line)
  | Unary (Neg, x) ->
      let xo = lower_expr ctx x in
      let d = fresh ctx in
      emit ctx line (I.Bin (T.Sub, d, T.Imm 0L, xo));
      T.Reg d
  | Unary (Not, x) ->
      let xo = lower_expr ctx x in
      let d = fresh ctx in
      emit ctx line (I.Cmp (T.Eq, d, xo, T.Imm 0L));
      T.Reg d
  | Binary (Arith op, a, b) ->
      let ao = lower_expr ctx a in
      let bo = lower_expr ctx b in
      let d = fresh ctx in
      emit ctx line (I.Bin (op, d, ao, bo));
      T.Reg d
  | Binary (Compare op, a, b) ->
      let ao = lower_expr ctx a in
      let bo = lower_expr ctx b in
      let d = fresh ctx in
      emit ctx line (I.Cmp (op, d, ao, bo));
      T.Reg d
  | Binary (Log_and, a, b) ->
      (* Short-circuit: creates a diamond, so PGO sees the branch. *)
      let result = fresh ctx in
      let ao = lower_expr ctx a in
      let ca = fresh ctx in
      emit ctx line (I.Cmp (T.Ne, ca, ao, T.Imm 0L));
      let bb_rhs = Ir.Func.fresh_block ctx.func in
      let bb_false = Ir.Func.fresh_block ctx.func in
      let bb_join = Ir.Func.fresh_block ctx.func in
      set_term ctx (I.Br (ca, bb_rhs.Ir.Block.id, bb_false.Ir.Block.id));
      start_block ctx bb_rhs;
      let bo = lower_expr ctx b in
      let cb = fresh ctx in
      emit ctx line (I.Cmp (T.Ne, cb, bo, T.Imm 0L));
      emit ctx line (I.Mov (result, T.Reg cb));
      set_term ctx (I.Jmp bb_join.Ir.Block.id);
      start_block ctx bb_false;
      emit ctx line (I.Mov (result, T.Imm 0L));
      set_term ctx (I.Jmp bb_join.Ir.Block.id);
      start_block ctx bb_join;
      T.Reg result
  | Binary (Log_or, a, b) ->
      let result = fresh ctx in
      let ao = lower_expr ctx a in
      let ca = fresh ctx in
      emit ctx line (I.Cmp (T.Ne, ca, ao, T.Imm 0L));
      let bb_true = Ir.Func.fresh_block ctx.func in
      let bb_rhs = Ir.Func.fresh_block ctx.func in
      let bb_join = Ir.Func.fresh_block ctx.func in
      set_term ctx (I.Br (ca, bb_true.Ir.Block.id, bb_rhs.Ir.Block.id));
      start_block ctx bb_true;
      emit ctx line (I.Mov (result, T.Imm 1L));
      set_term ctx (I.Jmp bb_join.Ir.Block.id);
      start_block ctx bb_rhs;
      let bo = lower_expr ctx b in
      let cb = fresh ctx in
      emit ctx line (I.Cmp (T.Ne, cb, bo, T.Imm 0L));
      emit ctx line (I.Mov (result, T.Reg cb));
      set_term ctx (I.Jmp bb_join.Ir.Block.id);
      start_block ctx bb_join;
      T.Reg result
  | Call (callee, args) ->
      let argops = List.map (lower_expr ctx) args in
      let d = fresh ctx in
      emit ctx line (I.Call { I.c_ret = Some d; c_callee = callee; c_args = argops; c_probe = 0 });
      T.Reg d
  | Index (arr, idx) ->
      let io = lower_expr ctx idx in
      let d = fresh ctx in
      emit ctx line (I.Load (d, arr, io));
      T.Reg d

let cond_reg ctx line (o : T.operand) =
  match o with
  | T.Reg r -> r
  | T.Imm _ ->
      let d = fresh ctx in
      emit ctx line (I.Cmp (T.Ne, d, o, T.Imm 0L));
      d

let rec lower_stmt ctx (s : stmt) : unit =
  let line = s.sline in
  match s.s with
  | Let (name, e) | Assign (name, e) ->
      let v = lower_expr ctx e in
      let r =
        match s.s with
        | Let _ ->
            let r = fresh ctx in
            Hashtbl.replace ctx.env name r;
            r
        | _ -> lookup ctx name line
      in
      emit ctx line (I.Mov (r, v))
  | Store (arr, idx, v) ->
      let io = lower_expr ctx idx in
      let vo = lower_expr ctx v in
      emit ctx line (I.Store (arr, io, vo))
  | Expr e -> ignore (lower_expr ctx e)
  | Return e ->
      let v = lower_expr ctx e in
      set_term ctx (I.Ret v);
      (* Subsequent statements in this block are unreachable; park them in a
         fresh block that simplify-cfg will delete. *)
      start_block ctx (Ir.Func.fresh_block ctx.func)
  | Break -> (
      match ctx.loops with
      | [] -> raise (Lower_error ("break outside loop", line))
      | (_, brk) :: _ ->
          set_term ctx (I.Jmp brk);
          start_block ctx (Ir.Func.fresh_block ctx.func))
  | Continue -> (
      match ctx.loops with
      | [] -> raise (Lower_error ("continue outside loop", line))
      | (cont, _) :: _ ->
          set_term ctx (I.Jmp cont);
          start_block ctx (Ir.Func.fresh_block ctx.func))
  | If (cond, then_, else_) ->
      let co = lower_expr ctx cond in
      let c = cond_reg ctx line co in
      let bb_then = Ir.Func.fresh_block ctx.func in
      let bb_join = Ir.Func.fresh_block ctx.func in
      let bb_else =
        if else_ = [] then bb_join else Ir.Func.fresh_block ctx.func
      in
      set_term ctx (I.Br (c, bb_then.Ir.Block.id, bb_else.Ir.Block.id));
      start_block ctx bb_then;
      List.iter (lower_stmt ctx) then_;
      set_term ctx (I.Jmp bb_join.Ir.Block.id);
      if else_ <> [] then begin
        start_block ctx bb_else;
        List.iter (lower_stmt ctx) else_;
        set_term ctx (I.Jmp bb_join.Ir.Block.id)
      end;
      start_block ctx bb_join
  | While (cond, body) ->
      let bb_header = Ir.Func.fresh_block ctx.func in
      let bb_body = Ir.Func.fresh_block ctx.func in
      let bb_exit = Ir.Func.fresh_block ctx.func in
      set_term ctx (I.Jmp bb_header.Ir.Block.id);
      start_block ctx bb_header;
      let co = lower_expr ctx cond in
      let c = cond_reg ctx line co in
      set_term ctx (I.Br (c, bb_body.Ir.Block.id, bb_exit.Ir.Block.id));
      start_block ctx bb_body;
      ctx.loops <- (bb_header.Ir.Block.id, bb_exit.Ir.Block.id) :: ctx.loops;
      List.iter (lower_stmt ctx) body;
      ctx.loops <- List.tl ctx.loops;
      set_term ctx (I.Jmp bb_header.Ir.Block.id);
      start_block ctx bb_exit
  | Switch (scrut, cases, default) ->
      let so = lower_expr ctx scrut in
      let bb_join = Ir.Func.fresh_block ctx.func in
      let case_blocks =
        List.map (fun (v, body) -> (v, body, Ir.Func.fresh_block ctx.func)) cases
      in
      let bb_default = Ir.Func.fresh_block ctx.func in
      set_term ctx
        (I.Switch
           ( so,
             List.map (fun (v, _, b) -> (v, b.Ir.Block.id)) case_blocks,
             bb_default.Ir.Block.id ));
      List.iter
        (fun (_, body, b) ->
          start_block ctx b;
          List.iter (lower_stmt ctx) body;
          set_term ctx (I.Jmp bb_join.Ir.Block.id))
        case_blocks;
      start_block ctx bb_default;
      List.iter (lower_stmt ctx) default;
      set_term ctx (I.Jmp bb_join.Ir.Block.id);
      start_block ctx bb_join

let lower_fn (fd : fndef) : Ir.Func.t =
  let params = List.mapi (fun i _ -> i) fd.fparams in
  let func = Ir.Func.mk ~name:fd.fname ~modname:fd.fmodule ~params in
  func.Ir.Func.nregs <- List.length params;
  let ctx =
    {
      func;
      env = Hashtbl.create 16;
      cur = Ir.Func.entry_block func;
      loops = [];
      fline = fd.fline;
    }
  in
  List.iteri (fun i name -> Hashtbl.replace ctx.env name i) fd.fparams;
  List.iter (lower_stmt ctx) fd.fbody;
  (* Implicit [return 0] when control falls off the end. *)
  (match ctx.cur.Ir.Block.term with
  | I.Unreachable -> set_term ctx (I.Ret (T.Imm 0L))
  | _ -> ());
  (* Any parked blocks left unreachable keep Unreachable terminators; give
     them a harmless Ret so the verifier stays quiet until simplify runs. *)
  Ir.Func.iter_blocks
    (fun b ->
      match b.Ir.Block.term with
      | I.Unreachable -> Ir.Block.set_term b (I.Ret (T.Imm 0L))
      | _ -> ())
    func;
  func

let lower_program (p : program) : Ir.Program.t =
  let prog = Ir.Program.mk () in
  List.iter (fun (g, n) -> Ir.Program.add_global prog g n) p.pglobals;
  List.iter (fun fd -> Ir.Program.add_func prog (lower_fn fd)) p.pfns;
  prog

let compile src = lower_program (Parser.parse src)
