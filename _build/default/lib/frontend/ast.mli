(** Abstract syntax of MiniC, the small imperative language the simulated
    workloads are written in. Every node carries its absolute source line so
    lowering can produce function-relative debug lines (AutoFDO-style line
    offsets). *)

type unop = Neg | Not

type binop =
  | Arith of Csspgo_ir.Types.binop
  | Compare of Csspgo_ir.Types.cmpop
  | Log_and  (** short-circuit *)
  | Log_or   (** short-circuit *)

type expr = { e : expr_kind; eline : int }

and expr_kind =
  | Int of int64
  | Var of string
  | Binary of binop * expr * expr
  | Unary of unop * expr
  | Call of string * expr list
  | Index of string * expr  (** global array read *)

type stmt = { s : stmt_kind; sline : int }

and stmt_kind =
  | Let of string * expr
  | Assign of string * expr
  | Store of string * expr * expr  (** array, index, value *)
  | If of expr * block * block
  | While of expr * block
  | Switch of expr * (int64 * block) list * block
  | Return of expr
  | Expr of expr
  | Break
  | Continue

and block = stmt list

type fndef = {
  fname : string;
  fparams : string list;
  fbody : block;
  fline : int;  (** line of the [fn] keyword; debug lines are relative to it *)
  fmodule : string;
}

type program = {
  pglobals : (string * int) list;
  pfns : fndef list;
}
