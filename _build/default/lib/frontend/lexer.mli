(** Hand-written lexer for MiniC. Tracks line numbers (1-based) so that
    comment-only edits shift subsequent lines, which the source-drift
    experiments rely on. *)

type token =
  | INT of int64
  | IDENT of string
  | KW of string       (** fn let if else while switch case default return break continue global module *)
  | PUNCT of string    (** operators and delimiters *)
  | EOF

type loc_token = { tok : token; tline : int }

exception Lex_error of string * int  (** message, line *)

val tokenize : string -> loc_token list
