(** Recursive-descent parser for MiniC.

    Grammar sketch:
    {v
    program  := (global | module | fn)...
    global   := "global" IDENT "[" INT "]" ";"
    module   := "module" IDENT ";"          -- sets module for following fns
    fn       := "fn" IDENT "(" params? ")" "{" stmt... "}"
    stmt     := "let" IDENT "=" expr ";"
              | IDENT "=" expr ";"
              | IDENT "[" expr "]" "=" expr ";"
              | "if" "(" expr ")" block ("else" (block | if))?
              | "while" "(" expr ")" block
              | "switch" "(" expr ")" "{" ("case" INT ":" stmt...)... "default" ":" stmt... "}"
              | "return" expr ";" | "break" ";" | "continue" ";" | expr ";"
    expr     := precedence climbing over logical, bitwise, comparison,
                shift, additive, multiplicative and unary operators
    primary  := INT | IDENT | IDENT "(" args ")" | IDENT "[" expr "]" | "(" expr ")"
    v} *)

exception Parse_error of string * int  (** message, line *)

val parse : string -> Ast.program
(** Raises [Parse_error] or [Lexer.Lex_error]. *)
