lib/frontend/lower.ml: Ast Csspgo_ir Hashtbl List Parser
