lib/frontend/parser.ml: Ast Csspgo_ir Int64 Lexer List Printf String
