lib/frontend/lexer.ml: Int64 List Printf String
