lib/frontend/ast.ml: Csspgo_ir
