lib/frontend/lower.mli: Ast Csspgo_ir
