lib/frontend/lexer.mli:
