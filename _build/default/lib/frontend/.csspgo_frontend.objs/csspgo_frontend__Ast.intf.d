lib/frontend/ast.mli: Csspgo_ir
