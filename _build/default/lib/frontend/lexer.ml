type token =
  | INT of int64
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type loc_token = { tok : token; tline : int }

exception Lex_error of string * int

let keywords =
  [ "fn"; "let"; "if"; "else"; "while"; "switch"; "case"; "default"; "return";
    "break"; "continue"; "global"; "module" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Multi-character punctuation, longest first. *)
let puncts2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>" ]
let puncts1 = "+-*/%<>=!&|^(){}[];:,"

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let pos = ref 0 in
  let out = ref [] in
  let emit tok = out := { tok; tline = !line } :: !out in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\n' then incr line;
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then raise (Lex_error ("unterminated block comment", !line))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      match Int64.of_string_opt text with
      | Some v -> emit (INT v)
      | None -> raise (Lex_error ("integer literal out of range: " ^ text, !line))
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      if List.mem text keywords then emit (KW text) else emit (IDENT text)
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub src !pos 2) else None
      in
      match two with
      | Some t when List.mem t puncts2 ->
          emit (PUNCT t);
          pos := !pos + 2
      | _ ->
          if String.contains puncts1 c then begin
            emit (PUNCT (String.make 1 c));
            incr pos
          end
          else raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit EOF;
  List.rev !out
