(** Lowering MiniC AST to IR.

    Debug lines attached to IR instructions are *function-relative* offsets
    (statement line minus the [fn] keyword's line), mirroring AutoFDO's
    line-offset scheme: editing code above a function does not disturb its
    profile, editing inside it does.

    Language notes: variables are function-scoped; [switch] has no
    fall-through; [break]/[continue] apply to the innermost loop. *)

exception Lower_error of string * int  (** message, absolute line *)

val lower_program : Ast.program -> Csspgo_ir.Program.t

val compile : string -> Csspgo_ir.Program.t
(** [parse] + [lower_program]. *)
