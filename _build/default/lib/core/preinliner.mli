(** Algorithm 2 (§III.B): the context-sensitive pre-inliner.

    Runs offline, as part of profile generation, over the whole-program
    context trie — so its decisions are global even though the compiler's
    own inliner is ThinLTO-constrained to one module at a time. Functions
    are visited in the profiled call graph's top-down order; context
    profiles of a function that no caller chose to inline are merged back
    into the function's base profile; then call sites are considered
    hottest-first with the real, context-sensitive sizes extracted from the
    profiling binary (Algorithm 3).

    Decisions are persisted as [n_inlined] marks on the context trie, which
    the compiler-side annotator replays. The trie ends up in annotation
    form: marked contexts keep their slice; everything else lives in base
    profiles. *)

type config = {
  hot_count : int64;       (** minimum callsite count to consider inlining *)
  size_limit : int;        (** max callee size (bytes) for a hot site *)
  tiny_size : int;         (** always inline below this size, if warm *)
  growth_budget : int;     (** max accumulated size growth per caller *)
}

val default_config : config

type decision = {
  d_context : (Csspgo_ir.Guid.t * int) list;  (** caller chain, outermost first *)
  d_callee : Csspgo_ir.Guid.t;
  d_callee_name : string;
  d_count : int64;
  d_size : int;
}

val run :
  ?config:config ->
  Csspgo_profile.Ctx_profile.t ->
  Size_extract.t ->
  decision list
(** Mutates the trie (marks + promotions); returns the positive decisions. *)
