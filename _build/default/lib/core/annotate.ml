open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr
module P = Csspgo_profile
module CP = P.Ctx_profile
module PP = P.Probe_profile
module Opt = Csspgo_opt
module Inference = Csspgo_inference

type stale = {
  sf_name : string;
  sf_expected : int64;
  sf_found : int64;
}

let lines (prof : P.Line_profile.t) (p : Ir.Program.t) =
  Ir.Program.iter_funcs
    (fun f ->
      match P.Line_profile.get prof f.Ir.Func.guid with
      | None -> f.Ir.Func.annotated <- false
      | Some fe ->
          Ir.Func.iter_blocks
            (fun b ->
              let count = ref 0L in
              Vec.iter
                (fun (i : I.t) ->
                  let d = i.I.dloc in
                  if (not (Ir.Dloc.is_none d)) && Ir.Guid.equal d.Ir.Dloc.origin f.Ir.Func.guid
                  then
                    let c = P.Line_profile.line_count fe (d.Ir.Dloc.line, d.Ir.Dloc.disc) in
                    if Int64.compare c !count > 0 then count := c)
                b.Ir.Block.instrs;
              b.Ir.Block.count <- !count;
              b.Ir.Block.edge_counts <-
                Array.make (List.length (Ir.Block.successors b)) 0L)
            f;
          let entry = Ir.Func.entry_block f in
          if Int64.compare fe.P.Line_profile.fe_head entry.Ir.Block.count > 0 then
            entry.Ir.Block.count <- fe.P.Line_profile.fe_head;
          f.Ir.Func.annotated <- true;
          Inference.Infer.infer_func f)
    p

let annotate_from_fentry (f : Ir.Func.t) (fe : PP.fentry) =
  Ir.Func.iter_blocks
    (fun b ->
      let pid = Ir.Block.probe_id b in
      b.Ir.Block.count <- (if pid > 0 then PP.probe_count fe pid else 0L);
      b.Ir.Block.edge_counts <- Array.make (List.length (Ir.Block.successors b)) 0L)
    f;
  let entry = Ir.Func.entry_block f in
  if Int64.compare fe.PP.fe_head entry.Ir.Block.count > 0 then
    entry.Ir.Block.count <- fe.PP.fe_head;
  f.Ir.Func.annotated <- true

let check_checksum (f : Ir.Func.t) (checksum : int64) stales =
  if Int64.equal checksum 0L || Int64.equal checksum f.Ir.Func.checksum then true
  else begin
    stales :=
      { sf_name = f.Ir.Func.name; sf_expected = f.Ir.Func.checksum; sf_found = checksum }
      :: !stales;
    false
  end

let probes (prof : PP.t) (p : Ir.Program.t) =
  let stales = ref [] in
  Ir.Program.iter_funcs
    (fun f ->
      match PP.get prof f.Ir.Func.guid with
      | None -> f.Ir.Func.annotated <- false
      | Some fe ->
          if check_checksum f fe.PP.fe_checksum stales then begin
            annotate_from_fentry f fe;
            Inference.Infer.infer_func f
          end
          else f.Ir.Func.annotated <- false)
    p;
  List.rev !stales

let exact counts (p : Ir.Program.t) =
  Ir.Program.iter_funcs
    (fun f ->
      let any = ref false in
      Ir.Func.iter_blocks
        (fun b ->
          let c =
            Option.value
              (Hashtbl.find_opt counts (f.Ir.Func.guid, b.Ir.Block.id))
              ~default:0L
          in
          if Int64.compare c 0L > 0 then any := true;
          b.Ir.Block.count <- c;
          b.Ir.Block.edge_counts <- Array.make (List.length (Ir.Block.successors b)) 0L)
        f;
      f.Ir.Func.annotated <- true;
      ignore !any;
      Inference.Infer.infer_func f)
    p

(* ------------------------------------------------------------------ *)
(* Full CSSPGO: base annotation + pre-inliner replay with exact
   context-profile slices on the inlined bodies.                       *)

(* Annotate the blocks listed in [block_map] (callee label -> caller label)
   from a context node's probe counts, overriding the inliner's scaling. *)
let annotate_cloned (caller : Ir.Func.t) (callee : Ir.Func.t)
    (block_map : (Ir.Types.label * Ir.Types.label) list) (node : CP.node) =
  List.iter
    (fun (orig_l, new_l) ->
      match (Ir.Func.find_block callee orig_l, Ir.Func.find_block caller new_l) with
      | Some orig_b, Some new_b ->
          let pid = Ir.Block.probe_id orig_b in
          new_b.Ir.Block.count <-
            (if pid > 0 then PP.probe_count node.CP.n_prof pid else 0L);
          new_b.Ir.Block.edge_counts <-
            Array.make (List.length (Ir.Block.successors new_b)) 0L
      | _ -> ())
    block_map

(* Replay inline decisions under [node] for the calls found in [labels] of
   [caller]. Recurses into freshly inlined bodies. *)
let rec replay (p : Ir.Program.t) (caller : Ir.Func.t) (node : CP.node)
    (labels : Ir.Types.label list) stales =
  List.iter
    (fun l ->
      let continue_ = ref true in
      while !continue_ do
        continue_ := false;
        match Ir.Func.find_block caller l with
        | None -> ()
        | Some b ->
            (* Find the first call in this block with an inline-marked
               context child; inline it; rescan (indices shift). *)
            let found = ref None in
            Vec.iteri
              (fun idx (i : I.t) ->
                if !found = None then
                  match i.I.op with
                  | I.Call { c_callee; c_probe; _ } when c_probe > 0 -> (
                      match Ir.Program.find_func p c_callee with
                      | None -> ()
                      | Some callee -> (
                          let key = (c_probe, callee.Ir.Func.guid) in
                          match Hashtbl.find_opt node.CP.n_children key with
                          | Some child when child.CP.n_inlined ->
                              if
                                Int64.equal child.CP.n_prof.PP.fe_checksum 0L
                                || Int64.equal child.CP.n_prof.PP.fe_checksum
                                     callee.Ir.Func.checksum
                              then found := Some (idx, callee, child, key)
                              else begin
                                stales :=
                                  {
                                    sf_name = callee.Ir.Func.name;
                                    sf_expected = callee.Ir.Func.checksum;
                                    sf_found = child.CP.n_prof.PP.fe_checksum;
                                  }
                                  :: !stales;
                                (* Don't retry this context. *)
                                child.CP.n_inlined <- false
                              end
                          | _ -> ()))
                  | _ -> ())
              b.Ir.Block.instrs;
            (match !found with
            | Some (idx, callee, child, _key) -> (
                match Opt.Inline.inline_at p ~caller ~block:l ~index:idx with
                | Some res ->
                    annotate_cloned caller callee res.Opt.Inline.block_map child;
                    (* Recurse into the inlined body for nested decisions. *)
                    replay p caller child (List.map snd res.Opt.Inline.block_map) stales;
                    (* Rescan this block: the continuation may hold more calls,
                       and this block may have further marked calls. *)
                    replay p caller node [ res.Opt.Inline.continuation ] stales;
                    continue_ := true
                | None -> ())
            | None -> ())
      done)
    labels

let ctx (trie : CP.t) (p : Ir.Program.t) =
  let stales = ref [] in
  (* Base annotation first (raw counts; inference deferred until after
     replay so inlined slices participate). *)
  Ir.Program.iter_funcs
    (fun f ->
      match Ir.Guid.Tbl.find_opt trie.CP.roots f.Ir.Func.guid with
      | None -> f.Ir.Func.annotated <- false
      | Some root ->
          if check_checksum f root.CP.n_prof.PP.fe_checksum stales then
            annotate_from_fentry f root.CP.n_prof
          else f.Ir.Func.annotated <- false)
    p;
  (* Replay pre-inliner decisions top-down. *)
  let cg = Ir.Callgraph.build p in
  List.iter
    (fun name ->
      let f = Ir.Program.func p name in
      match Ir.Guid.Tbl.find_opt trie.CP.roots f.Ir.Func.guid with
      | Some root when f.Ir.Func.annotated -> replay p f root (Ir.Func.labels f) stales
      | _ -> ())
    (Ir.Callgraph.top_down cg);
  (* Consistency inference over the post-replay bodies. *)
  Ir.Program.iter_funcs
    (fun f -> if f.Ir.Func.annotated then Inference.Infer.infer_func f)
    p;
  List.rev !stales
