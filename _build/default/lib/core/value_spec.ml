open Csspgo_support
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr

(* Split block [b] of [f] at instruction [idx] (a div/rem with a register
   divisor), guarding it with a comparison against [c]. *)
let specialize_at (f : Ir.Func.t) (b : Ir.Block.t) idx c =
  let instr = Vec.get b.Ir.Block.instrs idx in
  match instr.I.op with
  | I.Bin (((T.Div | T.Rem) as op), d, a, T.Reg r) ->
      let dloc = instr.I.dloc in
      let fast = Ir.Func.fresh_block f in
      let slow = Ir.Func.fresh_block f in
      let join = Ir.Func.fresh_block f in
      (* Tail of the original block moves to the join block. *)
      for k = idx + 1 to Vec.length b.Ir.Block.instrs - 1 do
        Vec.push join.Ir.Block.instrs (Vec.get b.Ir.Block.instrs k)
      done;
      Ir.Block.set_term join b.Ir.Block.term;
      join.Ir.Block.edge_counts <- Array.copy b.Ir.Block.edge_counts;
      join.Ir.Block.count <- b.Ir.Block.count;
      (* Trim the original block and emit the guard. *)
      let kept = Vec.create () in
      Vec.iteri (fun k i -> if k < idx then Vec.push kept i) b.Ir.Block.instrs;
      Vec.clear b.Ir.Block.instrs;
      Vec.iter (Vec.push b.Ir.Block.instrs) kept;
      let t = Ir.Func.fresh_reg f in
      Vec.push b.Ir.Block.instrs (I.mk (I.Cmp (T.Eq, t, T.Reg r, T.Imm c)) dloc);
      Ir.Block.set_term b (I.Br (t, fast.Ir.Block.id, slow.Ir.Block.id));
      Vec.push fast.Ir.Block.instrs (I.mk (I.Bin (op, d, a, T.Imm c)) dloc);
      Ir.Block.set_term fast (I.Jmp join.Ir.Block.id);
      Vec.push slow.Ir.Block.instrs (I.mk (I.Bin (op, d, a, T.Reg r)) dloc);
      Ir.Block.set_term slow (I.Jmp join.Ir.Block.id);
      if f.Ir.Func.annotated then begin
        let hot = Int64.div (Int64.mul b.Ir.Block.count 9L) 10L in
        fast.Ir.Block.count <- hot;
        slow.Ir.Block.count <- Int64.sub b.Ir.Block.count hot;
        fast.Ir.Block.edge_counts <- [| fast.Ir.Block.count |];
        slow.Ir.Block.edge_counts <- [| slow.Ir.Block.count |];
        b.Ir.Block.edge_counts <- [| fast.Ir.Block.count; slow.Ir.Block.count |]
      end;
      true
  | _ -> false

let apply (p : Ir.Program.t) decisions =
  let applied = ref 0 in
  Ir.Program.iter_funcs
    (fun f ->
      Ir.Func.iter_blocks
        (fun b ->
          (* Collect profiled sites (index, ordinal) for this block, then
             split from the last site backward so earlier ordinals keep
             their label and position. *)
          let sites = ref [] in
          let ordinal = ref 0 in
          Vec.iteri
            (fun idx (i : I.t) ->
              match i.I.op with
              | I.Bin ((T.Div | T.Rem), _, _, T.Reg _) ->
                  sites := (idx, !ordinal) :: !sites;
                  incr ordinal
              | _ -> ())
            b.Ir.Block.instrs;
          List.iter
            (fun (idx, ord) ->
              match Hashtbl.find_opt decisions (f.Ir.Func.guid, b.Ir.Block.id, ord) with
              | Some c -> if specialize_at f b idx c then incr applied
              | None -> ())
            !sites)
        f)
    p;
  !applied
