(** Profile annotation: attach correlated profiles to fresh pre-optimization
    IR and run inference to make the counts flow-consistent.

    Four annotators, one per PGO variant:
    - [lines]: AutoFDO — block count = max of its locations' line counts
      (the DWARF correlation contract);
    - [probes]: probe-only CSSPGO — block count = its block probe's count;
      rejected per function on CFG-checksum mismatch;
    - [exact]: instrumentation PGO — exact per-block counters;
    - [ctx]: full CSSPGO — base profiles like [probes], then *replay* of the
      pre-inliner's positive decisions: marked contexts are inlined with
      [Opt.Inline.inline_at] and the inlined blocks annotated directly from
      the context profile slice (Fig. 3b — accurate post-inline counts,
      no scaling). *)

type stale = {
  sf_name : string;
  sf_expected : int64;
  sf_found : int64;
}

val lines : Csspgo_profile.Line_profile.t -> Csspgo_ir.Program.t -> unit

val probes : Csspgo_profile.Probe_profile.t -> Csspgo_ir.Program.t -> stale list
(** Returns the functions rejected for checksum mismatch. *)

val exact :
  (Csspgo_ir.Guid.t * Csspgo_ir.Types.label, int64) Hashtbl.t ->
  Csspgo_ir.Program.t ->
  unit

val ctx : Csspgo_profile.Ctx_profile.t -> Csspgo_ir.Program.t -> stale list
(** The program must already carry pseudo-probes (same insertion as the
    profiling build). *)
