(** Value-profile-guided divisor specialization — the representative of the
    "value-profile-based optimizations" that remain an advantage of
    instrumentation-based PGO over CSSPGO (§IV.A).

    For a division/remainder whose instrumented value profile shows one
    dominant divisor [C], the site is rewritten as

    {v  if (divisor == C) { d = a / C }   // strength-reduced constant divide
       else              { d = a / divisor }  v}

    which the VM's cost model rewards (constant divides cost 4 cycles,
    register divides 20). *)

val apply :
  Csspgo_ir.Program.t -> (Instrument.vsite_key, int64) Hashtbl.t -> int
(** Rewrite all decided sites on fresh pre-optimization IR (the same
    lowering the sites were keyed against). Returns the number of sites
    specialized. Profile counts are split 9:1 between fast and slow paths
    when the containing function is annotated. *)
