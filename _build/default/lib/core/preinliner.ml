open Csspgo_support
module Ir = Csspgo_ir
module P = Csspgo_profile
module CP = P.Ctx_profile
module PP = P.Probe_profile

type config = {
  hot_count : int64;
  size_limit : int;
  tiny_size : int;
  growth_budget : int;
}

let default_config =
  { hot_count = 32L; size_limit = 150; tiny_size = 30; growth_budget = 350 }

type decision = {
  d_context : (Ir.Guid.t * int) list;
  d_callee : Ir.Guid.t;
  d_callee_name : string;
  d_count : int64;
  d_size : int;
}

let default_size = 60

(* Top-down order over the profiled call graph (callers before callees). *)
let top_down_order (trie : CP.t) =
  let edges : (Ir.Guid.t, Ir.Guid.t list) Hashtbl.t = Hashtbl.create 64 in
  let all : (Ir.Guid.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let add_edge src dst =
    Hashtbl.replace all src ();
    Hashtbl.replace all dst ();
    let cur = Option.value (Hashtbl.find_opt edges src) ~default:[] in
    if not (List.exists (Ir.Guid.equal dst) cur) then Hashtbl.replace edges src (cur @ [ dst ])
  in
  CP.iter_nodes trie (fun _ node ->
      Hashtbl.replace all node.CP.n_func ();
      Hashtbl.iter
        (fun _ tbl -> Hashtbl.iter (fun callee _ -> add_edge node.CP.n_func callee) tbl)
        node.CP.n_prof.PP.fe_calls;
      Hashtbl.iter
        (fun ((_, callee) : CP.frame_key) _ -> add_edge node.CP.n_func callee)
        node.CP.n_children);
  (* DFS post-order reversed = top-down (callers first); cycles broken at
     the visit point. *)
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec dfs g =
    if not (Hashtbl.mem visited g) then begin
      Hashtbl.replace visited g ();
      List.iter dfs (Option.value (Hashtbl.find_opt edges g) ~default:[]);
      order := g :: !order
    end
  in
  Hashtbl.fold (fun g () acc -> g :: acc) all []
  |> List.sort Ir.Guid.compare
  |> List.iter dfs;
  !order

(* All (parent, key, child, context-path-of-child) tuples in the trie. *)
let contexts_of (trie : CP.t) (target : Ir.Guid.t) =
  let out = ref [] in
  let rec go path (node : CP.node) =
    Hashtbl.iter
      (fun ((site, callee) as key : CP.frame_key) child ->
        let child_path = path @ [ (node.CP.n_func, site) ] in
        if Ir.Guid.equal callee target then out := (node, key, child, child_path) :: !out;
        go child_path child)
      node.CP.n_children
  in
  Ir.Guid.Tbl.iter (fun _ root -> go [] root) trie.CP.roots;
  !out

let call_count (parent : CP.node) site callee (child : CP.node) =
  match Hashtbl.find_opt parent.CP.n_prof.PP.fe_calls site with
  | Some tbl when Hashtbl.mem tbl callee -> Hashtbl.find tbl callee
  | _ ->
      (* Fall back to the child's own evidence. *)
      Int64.max child.CP.n_prof.PP.fe_head
        (Int64.div child.CP.n_prof.PP.fe_total
           (Int64.of_int (max 1 (Hashtbl.length child.CP.n_prof.PP.fe_probes))))

let run ?(config = default_config) (trie : CP.t) (sizes : Size_extract.t) =
  let decisions = ref [] in
  let order = top_down_order trie in
  List.iter
    (fun func ->
      (* Merge every not-inlined context of [func] into its base profile
         (Algorithm 2, lines 3-7). Callers appear earlier in top-down order,
         so all inline marks concerning [func] are final at this point. *)
      List.iter
        (fun ((parent : CP.node), key, (child : CP.node), _path) ->
          if not child.CP.n_inlined then CP.promote_to_base trie ~parent ~key)
        (contexts_of trie func);
      (* Inline decisions for the standalone body of [func]. *)
      match Ir.Guid.Tbl.find_opt trie.CP.roots func with
      | None -> ()
      | Some root ->
          let size_for path leaf =
            match Size_extract.size_of sizes ~path ~leaf with
            | Some s -> s
            | None -> (
                match Size_extract.avg_inline_size sizes leaf with
                | Some s -> s
                | None -> default_size)
          in
          let func_size = ref (size_for [] func) in
          let limit = !func_size + config.growth_budget in
          let cmp (h1, _, _, _, _) (h2, _, _, _, _) = Int64.compare h1 h2 in
          let heap = Heap.create cmp in
          let enqueue (parent : CP.node) parent_path =
            Hashtbl.iter
              (fun ((site, callee) : CP.frame_key) child ->
                let hot = call_count parent site callee child in
                Heap.push heap (hot, parent, site, child, parent_path))
              parent.CP.n_children
          in
          enqueue root [];
          let continue_ = ref true in
          while !continue_ && not (Heap.is_empty heap) do
            if !func_size >= limit then continue_ := false
            else
              match Heap.pop heap with
              | None -> continue_ := false
              | Some (hot, parent, site, child, parent_path) ->
                  let ctx_path = parent_path @ [ (parent.CP.n_func, site) ] in
                  let size = size_for ctx_path child.CP.n_func in
                  (* No recursion unrolling: a callee already on the context
                     path (or the root itself) would replicate its own body
                     unboundedly through the context chain. *)
                  let recursive =
                    Ir.Guid.equal child.CP.n_func func
                    || List.exists (fun (g, _) -> Ir.Guid.equal g child.CP.n_func) ctx_path
                  in
                  let should =
                    (not recursive)
                    && ((Int64.compare hot config.hot_count >= 0 && size <= config.size_limit)
                       || (Int64.compare hot 0L > 0 && size <= config.tiny_size))
                  in
                  if should && !func_size + size <= limit then begin
                    child.CP.n_inlined <- true;
                    func_size := !func_size + size;
                    decisions :=
                      {
                        d_context = ctx_path;
                        d_callee = child.CP.n_func;
                        d_callee_name = child.CP.n_name;
                        d_count = hot;
                        d_size = size;
                      }
                      :: !decisions;
                    enqueue child ctx_path
                  end
          done)
    order;
  List.rev !decisions
