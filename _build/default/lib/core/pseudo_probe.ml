open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr

let checksum (f : Ir.Func.t) =
  let h = ref (Fnv.int Fnv.init (Ir.Func.n_blocks f)) in
  Ir.Func.iter_blocks
    (fun b ->
      (* CFG shape only: block identities and edges. Instruction contents and
         debug lines are deliberately excluded, so straight-line source edits
         (including comments) keep the checksum — and the profile — valid;
         any control-flow change invalidates it. *)
      h := Fnv.int !h b.Ir.Block.id;
      List.iter (fun s -> h := Fnv.int !h s) (Ir.Block.successors b))
    f;
  !h

let insert_func (f : Ir.Func.t) =
  let has_probes =
    Ir.Func.fold_blocks
      (fun acc b -> acc || Vec.exists I.is_probe b.Ir.Block.instrs)
      false f
  in
  if has_probes then invalid_arg ("Pseudo_probe.insert_func: already probed: " ^ f.Ir.Func.name);
  (* Block probes first, in label order, so the entry block is always
     probe #1. *)
  Ir.Func.iter_blocks
    (fun b ->
      let id = Ir.Func.fresh_probe_id f in
      let probe =
        I.mk (I.Probe { I.p_id = id; p_kind = I.Block_probe; p_func = f.Ir.Func.guid })
          (Ir.Block.first_dloc b)
      in
      let shifted = Vec.create () in
      Vec.push shifted probe;
      Vec.iter (Vec.push shifted) b.Ir.Block.instrs;
      Vec.clear b.Ir.Block.instrs;
      Vec.iter (Vec.push b.Ir.Block.instrs) shifted)
    f;
  (* Callsite probes: assign an id to every call. *)
  Ir.Func.iter_blocks
    (fun b ->
      Vec.iter
        (fun (i : I.t) ->
          match i.I.op with
          | I.Call c when c.I.c_probe = 0 ->
              i.I.op <- I.Call { c with I.c_probe = Ir.Func.fresh_probe_id f }
          | _ -> ())
        b.Ir.Block.instrs)
    f;
  f.Ir.Func.checksum <- checksum f

let insert (p : Ir.Program.t) = Ir.Program.iter_funcs insert_func p
