(** Pseudo-instrumentation (§III.A): inserts a block probe at the head of
    every basic block and assigns a callsite probe id to every call, at an
    early pipeline stage (right after lowering, before any transformation).

    Probes are intrinsic IR instructions that cost no machine code — they
    materialize as metadata records in the emitted binary. They block code
    merge (tail merge compares probe ids) but, in the default fine-tuned
    configuration, do not block if-conversion or block forwarding.

    A CFG checksum is computed at insertion time and stored on the function;
    profiles carry it so that source drift altering the CFG is detected as a
    mismatch, while CFG-preserving edits (comments, renames) keep the
    profile usable. *)

val insert_func : Csspgo_ir.Func.t -> unit
(** Idempotent per function (raises [Invalid_argument] if probes exist). *)

val insert : Csspgo_ir.Program.t -> unit

val checksum : Csspgo_ir.Func.t -> int64
(** CFG-shape checksum: folds block count, per-block instruction counts by
    kind-insensitive position, and successor structure. Insensitive to debug
    lines, so comment-only source edits do not change it. *)
