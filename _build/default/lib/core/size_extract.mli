(** Algorithm 3 (§III.B): context-sensitive inline cost from the profiling
    binary. Walks every emitted instruction, attributes its byte size to the
    inline context it belongs to (derived from the line table's inline
    frames), and initializes every enclosing context to zero so that
    functions fully optimized away at a context are *known* to cost nothing
    — usually a far better cost signal than early-IR size estimates. *)

type key = (Csspgo_ir.Guid.t * int) list * Csspgo_ir.Guid.t
(** (outermost-first (function, callsite-probe) chain, leaf function) *)

type t

val compute : Csspgo_codegen.Mach.binary -> t

val size_of : t -> path:(Csspgo_ir.Guid.t * int) list -> leaf:Csspgo_ir.Guid.t -> int option
(** Byte size of the leaf function's code at the given inline context;
    [None] when that context never appeared in the binary. *)

val base_size : t -> Csspgo_ir.Guid.t -> int option
(** Standalone (not-inlined) size of a function. *)

val avg_inline_size : t -> Csspgo_ir.Guid.t -> int option
(** Average size across every context the function appears in — the
    fallback cost when a precise context is unknown. *)
