(** Traditional instrumentation-based PGO support (the comparison baseline):
    a counter increment — a real machine instruction — is inserted into every
    basic block of the pre-optimization IR. Counters act as optimization
    barriers (their side effects block if-conversion and their distinct ids
    block tail merging), and the increments slow the profiling binary down,
    reproducing the operational-overhead story of §II.A / Table I. *)

type t = {
  counter_of : (Csspgo_ir.Guid.t * Csspgo_ir.Types.label, int) Hashtbl.t;
  n_counters : int;
}

val instrument : Csspgo_ir.Program.t -> t
(** Insert counters; returns the (function, block) -> counter map. *)

val block_counts :
  t -> int64 array -> (Csspgo_ir.Guid.t * Csspgo_ir.Types.label, int64) Hashtbl.t
(** Decode a VM counter array into exact per-block counts. *)

(** Value profiling — the instrumentation-only capability the paper names as
    instr-PGO's remaining advantage over CSSPGO (§IV.A). Division/remainder
    sites with a register divisor get a capture probe; the optimizing build
    can then specialize the dominant divisor (see {!Value_spec}). *)

type vsite_key = Csspgo_ir.Guid.t * Csspgo_ir.Types.label * int
(** (function, block, ordinal among profiled div/rem sites in that block) *)

type values = {
  site_of : (vsite_key, int) Hashtbl.t;
  n_sites : int;
}

val instrument_values : Csspgo_ir.Program.t -> values

val dominant_values :
  values ->
  (int, (int64, int64) Hashtbl.t) Hashtbl.t ->
  min_count:int64 ->
  min_ratio:float ->
  (vsite_key, int64) Hashtbl.t
(** Sites where one divisor value covers at least [min_ratio] of at least
    [min_count] captures. *)
