open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr

type t = {
  counter_of : (Ir.Guid.t * Ir.Types.label, int) Hashtbl.t;
  n_counters : int;
}

let instrument (p : Ir.Program.t) =
  let counter_of = Hashtbl.create 256 in
  let next = ref 0 in
  Ir.Program.iter_funcs
    (fun f ->
      Ir.Func.iter_blocks
        (fun b ->
          let id = !next in
          incr next;
          Hashtbl.replace counter_of (f.Ir.Func.guid, b.Ir.Block.id) id;
          let inc = I.mk (I.Counter_inc id) (Ir.Block.first_dloc b) in
          let shifted = Vec.create () in
          Vec.push shifted inc;
          Vec.iter (Vec.push shifted) b.Ir.Block.instrs;
          Vec.clear b.Ir.Block.instrs;
          Vec.iter (Vec.push b.Ir.Block.instrs) shifted)
        f)
    p;
  { counter_of; n_counters = !next }

let block_counts t counters =
  let out = Hashtbl.create (Hashtbl.length t.counter_of) in
  Hashtbl.iter
    (fun key id ->
      if id < Array.length counters then Hashtbl.replace out key counters.(id))
    t.counter_of;
  out

type vsite_key = Ir.Guid.t * Ir.Types.label * int

type values = {
  site_of : (vsite_key, int) Hashtbl.t;
  n_sites : int;
}

let instrument_values (p : Ir.Program.t) =
  let site_of = Hashtbl.create 32 in
  let next = ref 0 in
  Ir.Program.iter_funcs
    (fun f ->
      Ir.Func.iter_blocks
        (fun b ->
          let ordinal = ref 0 in
          let out = Vec.create () in
          Vec.iter
            (fun (i : I.t) ->
              (match i.I.op with
              | I.Bin ((Ir.Types.Div | Ir.Types.Rem), _, _, Ir.Types.Reg r) ->
                  let site = !next in
                  incr next;
                  Hashtbl.replace site_of (f.Ir.Func.guid, b.Ir.Block.id, !ordinal) site;
                  incr ordinal;
                  Vec.push out (I.mk (I.Val_prof (site, r)) i.I.dloc)
              | _ -> ());
              Vec.push out i)
            b.Ir.Block.instrs;
          Vec.clear b.Ir.Block.instrs;
          Vec.iter (Vec.push b.Ir.Block.instrs) out)
        f)
    p;
  { site_of; n_sites = !next }

let dominant_values t histograms ~min_count ~min_ratio =
  let out = Hashtbl.create 8 in
  Hashtbl.iter
    (fun key site ->
      match Hashtbl.find_opt histograms site with
      | None -> ()
      | Some hist ->
          let total = Hashtbl.fold (fun _ c acc -> Int64.add acc c) hist 0L in
          if Int64.compare total min_count >= 0 then begin
            let best_v = ref 0L and best_c = ref 0L in
            Hashtbl.iter
              (fun v c ->
                if Int64.compare c !best_c > 0 then begin
                  best_v := v;
                  best_c := c
                end)
              hist;
            if Int64.to_float !best_c >= min_ratio *. Int64.to_float total then
              Hashtbl.replace out key !best_v
          end)
    t.site_of;
  out
