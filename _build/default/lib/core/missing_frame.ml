module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach
module Vm = Csspgo_vm

type t = {
  (* function guid -> outgoing tail-call edges (call addr, target function) *)
  edges : (int * Ir.Guid.t) list Ir.Guid.Tbl.t;
  n_edges : int;
}

let build (b : Mach.binary) samples =
  let edges = Ir.Guid.Tbl.create 16 in
  let seen = Hashtbl.create 64 in
  let n = ref 0 in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      Array.iter
        (fun (src, tgt) ->
          if not (Hashtbl.mem seen (src, tgt)) then begin
            Hashtbl.replace seen (src, tgt) ();
            match Mach.inst_at b src with
            | Some { Mach.i_op = Mach.MTail_call _; _ } -> (
                match (Mach.func_index_of_addr b src, Mach.func_index_of_addr b tgt) with
                | Some fi, Some ti ->
                    let from_g = b.Mach.funcs.(fi).Mach.bf_guid in
                    let to_g = b.Mach.funcs.(ti).Mach.bf_guid in
                    let cur = Option.value (Ir.Guid.Tbl.find_opt edges from_g) ~default:[] in
                    if
                      not (List.exists (fun (a, g) -> a = src && Ir.Guid.equal g to_g) cur)
                    then begin
                      Ir.Guid.Tbl.replace edges from_g (cur @ [ (src, to_g) ]);
                      incr n
                    end
                | _ -> ())
            | _ -> ()
          end)
        s.Vm.Machine.s_lbr)
    samples;
  { edges; n_edges = !n }

let n_edges t = t.n_edges

let max_depth = 8

let resolve t ~from_func ~to_func =
  if Ir.Guid.equal from_func to_func then Some []
  else begin
    (* Enumerate all acyclic tail-call paths from [from_func] whose final
       edge targets [to_func]; unique -> success. *)
    let paths = ref [] in
    let rec go cur path visited depth =
      if depth <= max_depth && List.length !paths < 2 then
        List.iter
          (fun (addr, target) ->
            if Ir.Guid.equal target to_func then paths := List.rev (addr :: path) :: !paths
            else if not (List.exists (Ir.Guid.equal target) visited) then
              go target (addr :: path) (target :: visited) (depth + 1))
          (Option.value (Ir.Guid.Tbl.find_opt t.edges cur) ~default:[])
    in
    go from_func [] [ from_func ] 0;
    match !paths with [ p ] -> Some p | _ -> None
  end
