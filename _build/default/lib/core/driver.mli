(** The CSSPGO driver: end-to-end build → profile → re-build pipelines for
    every PGO variant evaluated in the paper (§IV).

    All sampling variants share one profiling setup — a statically optimized
    (-O2, no profile) build, sampled with the synchronized LBR + stack PMU —
    differing only in whether pseudo-probes are present and how the samples
    are correlated. Instrumentation PGO builds a counter-instrumented binary
    whose (slow) training run yields exact block counts. *)

type run_spec = {
  rs_args : int64 list;
  rs_globals : (string * int64 array) list;
}

type workload = {
  w_name : string;
  w_source : string;  (** MiniC *)
  w_entry : string;
  w_train : run_spec list;
  w_eval : run_spec list;
}

type variant =
  | Nopgo
  | Instr_pgo
  | Autofdo
  | Csspgo_probe_only
  | Csspgo_full

val variant_name : variant -> string

type options = {
  pmu : Csspgo_vm.Machine.pmu;
  opt_profiling : Csspgo_opt.Config.t;  (** pipeline for profiling builds *)
  opt_final : Csspgo_opt.Config.t;      (** pipeline for optimized builds *)
  emit_opts : Csspgo_codegen.Emit.options;
  trim_threshold : int64;               (** cold-context trimming (0 = off) *)
  preinline : Preinliner.config option; (** [None] disables the pre-inliner *)
  use_missing_frame_inference : bool;
}

val default_options : options

type eval = {
  ev_cycles : int64;
  ev_instructions : int64;
  ev_icache_misses : int64;
  ev_taken_branches : int64;
}

type outcome = {
  o_variant : variant;
  o_eval : eval;                       (** optimized binary on eval inputs *)
  o_text_size : int;
  o_debug_size : int;
  o_probe_meta_size : int;
  o_profiling_cycles : int64;          (** cost of the training run(s) *)
  o_annotated : Csspgo_ir.Program.t;   (** annotated pre-opt IR (for quality) *)
  o_stales : Annotate.stale list;
  o_recon_stats : Ctx_reconstruct.stats option;  (** full CSSPGO only *)
  o_preinline_decisions : Preinliner.decision list;
  o_binary : Csspgo_codegen.Mach.binary;
  o_profile_size : int;                (** serialized profile estimate, bytes *)
}

val run_variant : ?options:options -> variant -> workload -> outcome

val profiling_run :
  ?options:options ->
  probes:bool ->
  workload ->
  Csspgo_codegen.Mach.binary * Csspgo_vm.Machine.sample list * int64
(** Build the profiling binary (optionally pseudo-instrumented), run the
    training inputs under the PMU, and return (binary, samples, cycles).
    Exposed for the overhead experiments (Fig. 8). *)

val evaluate : Csspgo_codegen.Mach.binary -> workload -> eval
(** Run the eval inputs (no PMU) and aggregate. *)
