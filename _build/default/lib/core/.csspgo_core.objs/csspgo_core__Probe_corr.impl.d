lib/core/probe_corr.ml: Array Csspgo_codegen Csspgo_ir Csspgo_profgen Csspgo_profile Format Hashtbl Int64 List Option
