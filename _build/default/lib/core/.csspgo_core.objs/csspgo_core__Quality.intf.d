lib/core/quality.mli: Csspgo_ir
