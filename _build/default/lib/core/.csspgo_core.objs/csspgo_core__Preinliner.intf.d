lib/core/preinliner.mli: Csspgo_ir Csspgo_profile Size_extract
