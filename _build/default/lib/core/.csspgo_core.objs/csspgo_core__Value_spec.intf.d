lib/core/value_spec.mli: Csspgo_ir Hashtbl Instrument
