lib/core/quality.ml: Csspgo_ir Int64
