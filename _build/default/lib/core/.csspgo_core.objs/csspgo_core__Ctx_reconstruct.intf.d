lib/core/ctx_reconstruct.mli: Csspgo_codegen Csspgo_ir Csspgo_profile Csspgo_vm Missing_frame
