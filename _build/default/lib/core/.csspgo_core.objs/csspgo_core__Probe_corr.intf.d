lib/core/probe_corr.mli: Csspgo_codegen Csspgo_ir Csspgo_profile Csspgo_vm
