lib/core/pseudo_probe.ml: Csspgo_ir Csspgo_support Fnv List Vec
