lib/core/preinliner.ml: Csspgo_ir Csspgo_profile Csspgo_support Hashtbl Heap Int64 List Option Size_extract
