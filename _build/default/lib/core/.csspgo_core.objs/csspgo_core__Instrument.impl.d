lib/core/instrument.ml: Array Csspgo_ir Csspgo_support Hashtbl Int64 Vec
