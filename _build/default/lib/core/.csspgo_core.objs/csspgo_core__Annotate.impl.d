lib/core/annotate.ml: Array Csspgo_inference Csspgo_ir Csspgo_opt Csspgo_profile Csspgo_support Hashtbl Int64 List Option Vec
