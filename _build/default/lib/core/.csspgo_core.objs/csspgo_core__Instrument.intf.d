lib/core/instrument.mli: Csspgo_ir Hashtbl
