lib/core/missing_frame.ml: Array Csspgo_codegen Csspgo_ir Csspgo_vm Hashtbl List Option
