lib/core/annotate.mli: Csspgo_ir Csspgo_profile Hashtbl
