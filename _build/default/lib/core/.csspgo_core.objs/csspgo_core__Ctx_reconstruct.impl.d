lib/core/ctx_reconstruct.ml: Array Csspgo_codegen Csspgo_ir Csspgo_profgen Csspgo_profile Csspgo_vm Format Hashtbl Int64 List Missing_frame Option Probe_corr
