lib/core/driver.mli: Annotate Csspgo_codegen Csspgo_ir Csspgo_opt Csspgo_vm Ctx_reconstruct Preinliner
