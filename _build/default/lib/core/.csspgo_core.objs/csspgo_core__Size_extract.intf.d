lib/core/size_extract.mli: Csspgo_codegen Csspgo_ir
