lib/core/pseudo_probe.mli: Csspgo_ir
