lib/core/size_extract.ml: Array Csspgo_codegen Csspgo_ir Hashtbl List Option
