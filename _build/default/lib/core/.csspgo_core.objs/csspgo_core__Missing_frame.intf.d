lib/core/missing_frame.mli: Csspgo_codegen Csspgo_ir Csspgo_vm
