(** Profile-quality metrics (§IV.C): the block-overlap degree between a
    candidate profile and the instrumentation ground truth, both annotated
    onto structurally identical pre-optimization IR.

    Per function with block set V:
    D(V) = sum over v of min(f(v)/sum f, gt(v)/sum gt),
    and per program, the f-weighted aggregation of D(V). *)

val func_overlap : truth:Csspgo_ir.Func.t -> Csspgo_ir.Func.t -> float option
(** [None] when either side has zero total count. *)

val block_overlap : truth:Csspgo_ir.Program.t -> Csspgo_ir.Program.t -> float
(** Programs must contain the same functions with the same CFGs (same
    source, same lowering). Result in [0, 1]. *)
