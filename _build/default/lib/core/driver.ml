module Ir = Csspgo_ir
module Frontend = Csspgo_frontend
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module P = Csspgo_profile
module Pg = Csspgo_profgen

type run_spec = {
  rs_args : int64 list;
  rs_globals : (string * int64 array) list;
}

type workload = {
  w_name : string;
  w_source : string;
  w_entry : string;
  w_train : run_spec list;
  w_eval : run_spec list;
}

type variant = Nopgo | Instr_pgo | Autofdo | Csspgo_probe_only | Csspgo_full

let variant_name = function
  | Nopgo -> "no-pgo"
  | Instr_pgo -> "instr-pgo"
  | Autofdo -> "autofdo"
  | Csspgo_probe_only -> "csspgo-probe-only"
  | Csspgo_full -> "csspgo"

type options = {
  pmu : Vm.Machine.pmu;
  opt_profiling : Opt.Config.t;
  opt_final : Opt.Config.t;
  emit_opts : Cg.Emit.options;
  trim_threshold : int64;
  preinline : Preinliner.config option;
  use_missing_frame_inference : bool;
}

let default_options =
  {
    pmu = { Vm.Machine.default_pmu with sample_period = 1009 };
    opt_profiling = Opt.Config.o2_nopgo;
    opt_final = Opt.Config.o2;
    emit_opts = Cg.Emit.default_options;
    trim_threshold = 8L;
    preinline = Some Preinliner.default_config;
    use_missing_frame_inference = true;
  }

type eval = {
  ev_cycles : int64;
  ev_instructions : int64;
  ev_icache_misses : int64;
  ev_taken_branches : int64;
}

type outcome = {
  o_variant : variant;
  o_eval : eval;
  o_text_size : int;
  o_debug_size : int;
  o_probe_meta_size : int;
  o_profiling_cycles : int64;
  o_annotated : Ir.Program.t;
  o_stales : Annotate.stale list;
  o_recon_stats : Ctx_reconstruct.stats option;
  o_preinline_decisions : Preinliner.decision list;
  o_binary : Cg.Mach.binary;
  o_profile_size : int;
}

let compile (w : workload) = Frontend.Lower.compile w.w_source

(* Reference program carrying pseudo-probe checksums and symbol names. *)
let reference (w : workload) =
  let p = compile w in
  Pseudo_probe.insert p;
  p

let name_of_fn (refp : Ir.Program.t) guid =
  Option.map (fun f -> f.Ir.Func.name) (Ir.Program.find_func_by_guid refp guid)

let checksum_of_fn (refp : Ir.Program.t) guid =
  match Ir.Program.find_func_by_guid refp guid with
  | Some f -> f.Ir.Func.checksum
  | None -> 0L

type runs = {
  r_samples : Vm.Machine.sample list;
  r_cycles : int64;
  r_instrs : int64;
  r_imiss : int64;
  r_branches : int64;
  r_counters : int64 array option;
  r_values : (int, (int64, int64) Hashtbl.t) Hashtbl.t;
}

let run_specs ?(pmu = None) (bin : Cg.Mach.binary) ~entry specs =
  List.fold_left
    (fun acc spec ->
      let r =
        Vm.Machine.run ~pmu ~globals_init:spec.rs_globals ~args:spec.rs_args bin ~entry
      in
      let counters =
        match acc.r_counters with
        | None -> Some r.Vm.Machine.counters
        | Some cs ->
            Array.iteri
              (fun i c -> if i < Array.length cs then cs.(i) <- Int64.add cs.(i) c)
              r.Vm.Machine.counters;
            Some cs
      in
      Hashtbl.iter
        (fun site hist ->
          let dst =
            match Hashtbl.find_opt acc.r_values site with
            | Some dst -> dst
            | None ->
                let dst = Hashtbl.create 8 in
                Hashtbl.replace acc.r_values site dst;
                dst
          in
          Hashtbl.iter
            (fun v c ->
              Hashtbl.replace dst v
                (Int64.add c (Option.value (Hashtbl.find_opt dst v) ~default:0L)))
            hist)
        r.Vm.Machine.value_profiles;
      {
        acc with
        r_samples = acc.r_samples @ r.Vm.Machine.samples;
        r_cycles = Int64.add acc.r_cycles r.Vm.Machine.cycles;
        r_instrs = Int64.add acc.r_instrs r.Vm.Machine.instructions;
        r_imiss = Int64.add acc.r_imiss r.Vm.Machine.icache_misses;
        r_branches = Int64.add acc.r_branches r.Vm.Machine.taken_branches;
        r_counters = counters;
      })
    {
      r_samples = [];
      r_cycles = 0L;
      r_instrs = 0L;
      r_imiss = 0L;
      r_branches = 0L;
      r_counters = None;
      r_values = Hashtbl.create 8;
    }
    specs

let evaluate_opts (bin : Cg.Mach.binary) (w : workload) =
  let r = run_specs ~pmu:None bin ~entry:w.w_entry w.w_eval in
  {
    ev_cycles = r.r_cycles;
    ev_instructions = r.r_instrs;
    ev_icache_misses = r.r_imiss;
    ev_taken_branches = r.r_branches;
  }

let evaluate bin w = evaluate_opts bin w

let profiling_run ?(options = default_options) ~probes (w : workload) =
  let prog = compile w in
  if probes then Pseudo_probe.insert prog;
  Opt.Pass.optimize ~config:options.opt_profiling prog;
  let bin = Cg.Emit.emit ~options:options.emit_opts prog in
  let r = run_specs ~pmu:(Some options.pmu) bin ~entry:w.w_entry w.w_train in
  (bin, r.r_samples, r.r_cycles)

let finalize ~options ~variant ~(prog : Ir.Program.t) ~profiling_cycles ~stales ~recon
    ~decisions ~profile_size (w : workload) =
  let annotated = Ir.Program.copy prog in
  Opt.Pass.optimize ~config:options.opt_final prog;
  let bin = Cg.Emit.emit ~options:options.emit_opts prog in
  let eval = evaluate_opts bin w in
  {
    o_variant = variant;
    o_eval = eval;
    o_text_size = bin.Cg.Mach.text_size;
    o_debug_size = bin.Cg.Mach.debug_size;
    o_probe_meta_size = bin.Cg.Mach.probe_meta_size;
    o_profiling_cycles = profiling_cycles;
    o_annotated = annotated;
    o_stales = stales;
    o_recon_stats = recon;
    o_preinline_decisions = decisions;
    o_binary = bin;
    o_profile_size = profile_size;
  }

let run_variant ?(options = default_options) variant (w : workload) =
  match variant with
  | Nopgo ->
      let prog = compile w in
      Opt.Pass.optimize ~config:options.opt_profiling prog;
      finalize ~options ~variant ~prog ~profiling_cycles:0L ~stales:[] ~recon:None
        ~decisions:[] ~profile_size:0 w
  | Autofdo ->
      let pbin, samples, pcycles = profiling_run ~options ~probes:false w in
      let refp = reference w in
      let profile =
        Pg.Dwarf_corr.correlate ~name_of:(name_of_fn refp) pbin samples
      in
      let profile_size =
        (* rough text encoding: one row per line entry *)
        Ir.Guid.Tbl.fold
          (fun _ fe acc ->
            acc + 24
            + (12 * Hashtbl.length fe.P.Line_profile.fe_lines)
            + (18 * Hashtbl.length fe.P.Line_profile.fe_calls))
          profile.P.Line_profile.funcs 0
      in
      let prog = compile w in
      Annotate.lines profile prog;
      finalize ~options ~variant ~prog ~profiling_cycles:pcycles ~stales:[] ~recon:None
        ~decisions:[] ~profile_size w
  | Csspgo_probe_only ->
      let pbin, samples, pcycles = profiling_run ~options ~probes:true w in
      let refp = reference w in
      let profile =
        Probe_corr.correlate ~name_of:(name_of_fn refp)
          ~checksum_of:(checksum_of_fn refp) pbin samples
      in
      let profile_size =
        Ir.Guid.Tbl.fold
          (fun _ fe acc ->
            acc + 24
            + (10 * Hashtbl.length fe.P.Probe_profile.fe_probes)
            + (18 * Hashtbl.length fe.P.Probe_profile.fe_calls))
          profile.P.Probe_profile.funcs 0
      in
      let prog = compile w in
      Pseudo_probe.insert prog;
      let stales = Annotate.probes profile prog in
      finalize ~options ~variant ~prog ~profiling_cycles:pcycles ~stales ~recon:None
        ~decisions:[] ~profile_size w
  | Csspgo_full ->
      let pbin, samples, pcycles = profiling_run ~options ~probes:true w in
      let refp = reference w in
      let missing =
        if options.use_missing_frame_inference then
          Some (Missing_frame.build pbin samples)
        else None
      in
      let trie, stats =
        Ctx_reconstruct.reconstruct ~name_of:(name_of_fn refp)
          ?missing ~checksum_of:(checksum_of_fn refp) pbin samples
      in
      if Int64.compare options.trim_threshold 0L > 0 then
        ignore (P.Ctx_profile.trim_cold trie ~threshold:options.trim_threshold);
      let decisions =
        match options.preinline with
        | Some cfg ->
            let sizes = Size_extract.compute pbin in
            Preinliner.run ~config:cfg trie sizes
        | None ->
            (* Without the pre-inliner every context merges into base. *)
            ignore (P.Ctx_profile.trim_cold trie ~threshold:Int64.max_int);
            []
      in
      let profile_size = P.Ctx_profile.size_bytes trie in
      let prog = compile w in
      Pseudo_probe.insert prog;
      let stales = Annotate.ctx trie prog in
      let outcome =
        finalize ~options ~variant ~prog ~profiling_cycles:pcycles ~stales
          ~recon:(Some stats) ~decisions ~profile_size w
      in
      (* The quality program must share the truth CFG, so it cannot be the
         replayed (inlined) IR: annotate a fresh copy with the flat
         (context-merged) probe profile from the same samples — the same
         correlation mechanism Table I's "CSSPGO" row measures. *)
      let quality_prog = compile w in
      Pseudo_probe.insert quality_prog;
      let flat =
        Probe_corr.correlate ~name_of:(name_of_fn refp)
          ~checksum_of:(checksum_of_fn refp) pbin samples
      in
      ignore (Annotate.probes flat quality_prog);
      { outcome with o_annotated = quality_prog }
  | Instr_pgo ->
      let prog_p = compile w in
      let im = Instrument.instrument prog_p in
      let vals = Instrument.instrument_values prog_p in
      Opt.Pass.optimize ~config:options.opt_profiling prog_p;
      let pbin = Cg.Emit.emit ~options:options.emit_opts prog_p in
      let r = run_specs ~pmu:None pbin ~entry:w.w_entry w.w_train in
      let counts =
        Instrument.block_counts im
          (Option.value r.r_counters ~default:(Array.make im.Instrument.n_counters 0L))
      in
      let prog = compile w in
      Annotate.exact counts prog;
      (* Value-profile-guided divisor specialization: instrumentation-only. *)
      let dominant =
        Instrument.dominant_values vals r.r_values ~min_count:5000L ~min_ratio:0.90
      in
      ignore (Value_spec.apply prog dominant);
      finalize ~options ~variant ~prog ~profiling_cycles:r.r_cycles ~stales:[] ~recon:None
        ~decisions:[] ~profile_size:(8 * im.Instrument.n_counters) w
