module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach
module Vm = Csspgo_vm
module P = Csspgo_profile
module Pg = Csspgo_profgen

type stats = {
  st_samples : int;
  st_dropped_misaligned : int;
  st_gaps_resolved : int;
  st_gaps_failed : int;
}

type branch_kind = K_call | K_tail_call | K_ret | K_other

let classify (b : Mach.binary) src =
  match Mach.inst_at b src with
  | Some inst -> (
      match inst.Mach.i_op with
      | Mach.MCall _ -> K_call
      | Mach.MTail_call _ -> K_tail_call
      | Mach.MRet _ -> K_ret
      | _ -> K_other)
  | None -> K_other

let func_guid_of_addr (b : Mach.binary) addr =
  Option.map (fun i -> b.Mach.funcs.(i).Mach.bf_guid) (Mach.func_index_of_addr b addr)

(* The call instruction that pushed a given return address. *)
let call_inst_before (b : Mach.binary) ret_addr =
  match Hashtbl.find_opt b.Mach.addr_index ret_addr with
  | Some idx when idx > 0 -> (
      let inst = b.Mach.insts.(idx - 1) in
      match inst.Mach.i_op with Mach.MCall _ -> Some inst | _ -> None)
  | _ -> None

(* Outermost-first (function, site) pairs describing one physical level:
   the call instruction's inline expansion plus its own callsite probe. *)
let level_path (b : Mach.binary) (call_inst : Mach.inst) : (Ir.Guid.t * int) list =
  let container = b.Mach.funcs.(call_inst.Mach.i_func).Mach.bf_guid in
  match Ir.Dloc.frames ~container call_inst.Mach.i_dloc with
  | [] -> [ (container, call_inst.Mach.i_cs_probe) ]
  | (origin, _, _) :: rest ->
      let outer = List.rev_map (fun (f, _, probe) -> (f, probe)) rest in
      outer @ [ (origin, call_inst.Mach.i_cs_probe) ]

let static_callee (inst : Mach.inst) =
  match inst.Mach.i_op with
  | Mach.MCall c | Mach.MTail_call c -> Some c.Mach.m_callee
  | _ -> None

let reconstruct ?(name_of = fun _ -> None) ?missing ~checksum_of (b : Mach.binary) samples =
  let trie = P.Ctx_profile.create () in
  let name_for guid =
    Option.value (name_of guid) ~default:(Format.asprintf "%a" Ir.Guid.pp guid)
  in
  let dropped = ref 0 in
  let gaps_resolved = ref 0 in
  let gaps_failed = ref 0 in
  let n_samples = ref 0 in
  (* Resolve the ctx node for a flat outermost-first path + leaf. *)
  let node_for (path : (Ir.Guid.t * int) list) (leaf : Ir.Guid.t) =
    match path with
    | [] -> Some (P.Ctx_profile.base trie leaf ~name:(name_for leaf))
    | _ ->
        (* Convert [(f0,s0);(f1,s1);...] + leaf into node_at path format:
           each element ((parent, site), child, child_name). *)
        let rec pairs = function
          | [ (f, s) ] -> [ ((f, s), leaf, name_for leaf) ]
          | (f, s) :: ((g, _) :: _ as rest) -> ((f, s), g, name_for g) :: pairs rest
          | [] -> []
        in
        P.Ctx_profile.node_at trie ~path:(pairs path)
  in
  let ensure_checksum (node : P.Ctx_profile.node) =
    if Int64.equal node.P.Ctx_profile.n_prof.P.Probe_profile.fe_checksum 0L then
      node.P.Ctx_profile.n_prof.P.Probe_profile.fe_checksum <- checksum_of node.P.Ctx_profile.n_func
  in
  (* Build the outermost-first caller path from physical return addresses
     (innermost-first list), repairing tail-call gaps. *)
  let path_of_callers (callers : int list) (leaf_addr : int) : (Ir.Guid.t * int) list =
    let path = ref [] in
    (* expected: the function the previous (outer) level statically calls *)
    let expected : Ir.Guid.t option ref = ref None in
    let reset () =
      path := [];
      expected := None
    in
    let bridge_gap ~to_func =
      match !expected with
      | Some exp when not (Ir.Guid.equal exp to_func) -> (
          match missing with
          | None ->
              incr gaps_failed;
              reset ()
          | Some mf -> (
              match Missing_frame.resolve mf ~from_func:exp ~to_func with
              | Some chain ->
                  incr gaps_resolved;
                  List.iter
                    (fun addr ->
                      match Mach.inst_at b addr with
                      | Some tc -> path := !path @ level_path b tc
                      | None -> ())
                    chain
              | None ->
                  incr gaps_failed;
                  reset ()))
      | _ -> ()
    in
    List.iter
      (fun ret_addr ->
        match call_inst_before b ret_addr with
        | None -> reset ()
        | Some call_inst ->
            let container = b.Mach.funcs.(call_inst.Mach.i_func).Mach.bf_guid in
            bridge_gap ~to_func:container;
            path := !path @ level_path b call_inst;
            expected := static_callee call_inst)
      (List.rev callers);
    (* Leaf-level gap (tail calls between the innermost caller and the leaf). *)
    (match func_guid_of_addr b leaf_addr with
    | Some leaf_container -> bridge_gap ~to_func:leaf_container
    | None -> ());
    !path
  in
  (* Attribute one linear range under the given caller state. *)
  let attribute (lo, hi) (callers : int list) =
    if lo > 0 && hi >= lo then begin
      let caller_path = path_of_callers callers lo in
      (* Probe hits, with full inline expansion from the probe chain. *)
      List.iter
        (fun (pr : Mach.probe_rec) ->
          let chain_path =
            List.rev_map (fun cs -> (cs.Ir.Dloc.cs_func, cs.Ir.Dloc.cs_probe)) pr.Mach.pr_chain
          in
          match node_for (caller_path @ chain_path) pr.Mach.pr_func with
          | Some node ->
              ensure_checksum node;
              P.Probe_profile.add_probe node.P.Ctx_profile.n_prof pr.Mach.pr_id 1L
          | None -> ())
        (Probe_corr.probes_in_range b (lo, hi));
      (* Callsite targets. *)
      Pg.Ranges.iter_range_insts b (lo, hi) (fun inst ->
          if inst.Mach.i_cs_probe > 0 then
            match inst.Mach.i_op with
            | Mach.MCall c | Mach.MTail_call c ->
                let lp = level_path b inst in
                (* The call's owner context: everything up to the owner. *)
                let rec split_last = function
                  | [] -> ([], None)
                  | [ (f, _) ] -> ([], Some f)
                  | x :: rest ->
                      let init, last = split_last rest in
                      (x :: init, last)
                in
                let owner_prefix, owner = split_last lp in
                (match owner with
                | Some owner_func -> (
                    match node_for (caller_path @ owner_prefix) owner_func with
                    | Some node ->
                        ensure_checksum node;
                        P.Probe_profile.add_call node.P.Ctx_profile.n_prof
                          inst.Mach.i_cs_probe c.Mach.m_callee 1L
                    | None -> ())
                | None -> ())
            | _ -> ())
    end
  in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      incr n_samples;
      let lbr = s.Vm.Machine.s_lbr in
      let stack = s.Vm.Machine.s_stack in
      let n = Array.length lbr in
      if n > 0 && Array.length stack > 0 then begin
        let _, last_tgt = lbr.(n - 1) in
        (* Synchronization check: the sampled leaf frame must live in the
           function the last LBR branch landed in. *)
        let aligned =
          match (func_guid_of_addr b stack.(0), func_guid_of_addr b last_tgt) with
          | Some a, Some c -> Ir.Guid.equal a c
          | _ -> false
        in
        if not aligned then incr dropped
        else begin
          let callers = ref (List.tl (Array.to_list stack)) in
          (* Newest run: from the last branch target to the sampled ip. *)
          attribute (last_tgt, stack.(0)) !callers;
          (* Walk branches newest -> oldest, undoing each one. *)
          for i = n - 1 downto 1 do
            let cur_src, _ = lbr.(i) in
            let _, older_tgt = lbr.(i - 1) in
            (match classify b cur_src with
            | K_call -> ( match !callers with [] -> () | _ :: tl -> callers := tl)
            | K_tail_call -> ()
            | K_ret -> callers := (let _, t = lbr.(i) in t) :: !callers
            | K_other -> ());
            attribute (older_tgt, cur_src) !callers
          done
        end
      end)
    samples;
  ( trie,
    {
      st_samples = !n_samples;
      st_dropped_misaligned = !dropped;
      st_gaps_resolved = !gaps_resolved;
      st_gaps_failed = !gaps_failed;
    } )
