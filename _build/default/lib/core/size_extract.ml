module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach

type key = (Ir.Guid.t * int) list * Ir.Guid.t

type t = {
  sizes : (key, int) Hashtbl.t;
  by_leaf : (Ir.Guid.t, int list ref) Hashtbl.t;  (* all context sizes per leaf *)
}

let context_of_inst (b : Mach.binary) (inst : Mach.inst) : key =
  let container = b.Mach.funcs.(inst.Mach.i_func).Mach.bf_guid in
  match Ir.Dloc.frames ~container inst.Mach.i_dloc with
  | [] -> ([], container)
  | (origin, _, _) :: rest ->
      let path = List.rev_map (fun (f, _, probe) -> (f, probe)) rest in
      (path, origin)

let compute (b : Mach.binary) =
  let sizes = Hashtbl.create 256 in
  let bump key n =
    Hashtbl.replace sizes key (n + Option.value (Hashtbl.find_opt sizes key) ~default:0)
  in
  Array.iter
    (fun (inst : Mach.inst) ->
      let path, leaf = context_of_inst b inst in
      bump (path, leaf) inst.Mach.i_size;
      (* Initialize every enclosing context to zero if absent (Algorithm 3
         lines 7-13): a context seen only as an ancestor has size 0 — its
         own code was fully optimized away. *)
      let rec pop = function
        | [] -> ()
        | path ->
            let parent_path = List.filteri (fun i _ -> i < List.length path - 1) path in
            let parent_leaf = fst (List.nth path (List.length path - 1)) in
            let key = (parent_path, parent_leaf) in
            if not (Hashtbl.mem sizes key) then Hashtbl.replace sizes key 0;
            pop parent_path
      in
      pop path)
    b.Mach.insts;
  let by_leaf = Hashtbl.create 64 in
  Hashtbl.iter
    (fun ((_, leaf) : key) size ->
      match Hashtbl.find_opt by_leaf leaf with
      | Some r -> r := size :: !r
      | None -> Hashtbl.replace by_leaf leaf (ref [ size ]))
    sizes;
  { sizes; by_leaf }

let size_of t ~path ~leaf = Hashtbl.find_opt t.sizes (path, leaf)

let base_size t guid = Hashtbl.find_opt t.sizes ([], guid)

let avg_inline_size t guid =
  match Hashtbl.find_opt t.by_leaf guid with
  | None | Some { contents = [] } -> None
  | Some { contents = sizes } ->
      Some (List.fold_left ( + ) 0 sizes / List.length sizes)
