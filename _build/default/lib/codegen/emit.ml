open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr

type options = {
  enable_tce : bool;
  enable_split : bool;
  order_by_hotness : bool;
  layout : [ `Hot_path | `Ext_tsp ];
}

let default_options =
  { enable_tce = true; enable_split = true; order_by_hotness = true; layout = `Ext_tsp }

type patch =
  | PJmp of int * Ir.Types.label                    (* func ordinal, target *)
  | PJcc of int * Ir.Types.label
  | PSwitch of int * (int64 * Ir.Types.label) list * Ir.Types.label

type pending_inst = {
  p_addr : int;
  p_size : int;
  mutable p_op : Mach.mop;
  p_dloc : Ir.Dloc.t;
  p_func : int;
  p_cs : int;
}

type pending_probe = {
  pp_probe : I.probe;
  pp_dloc : Ir.Dloc.t;
  pp_global_idx : int;  (* index of the anchor instruction *)
}

let base_addr = 0x1000

let emit ~options (p : Ir.Program.t) =
  let names = Ir.Program.func_names p in
  let fn_list = List.map (Ir.Program.func p) names in
  let any_annotated = List.exists (fun f -> f.Ir.Func.annotated) fn_list in
  let ordered =
    if options.order_by_hotness && any_annotated then
      List.sort
        (fun a b ->
          let c = Int64.compare (Ir.Func.total_count b) (Ir.Func.total_count a) in
          if c <> 0 then c else String.compare a.Ir.Func.name b.Ir.Func.name)
        fn_list
    else fn_list
  in
  let mfuncs = List.map (Isel.select ~enable_tce:options.enable_tce) ordered in
  let layout_fn =
    match options.layout with
    | `Hot_path -> Layout.order
    | `Ext_tsp -> Layout.order_ext_tsp
  in
  let layouts = List.map (layout_fn ~split:options.enable_split) ordered in
  let insts : pending_inst Vec.t = Vec.create () in
  let patches : (int * patch) list ref = ref [] in
  let probes : pending_probe list ref = ref [] in
  let block_addr : (int * Ir.Types.label, int) Hashtbl.t = Hashtbl.create 256 in
  let cursor = ref base_addr in
  let align16 () = cursor := (!cursor + 15) land lnot 15 in
  let push_inst ?(cs = 0) fidx dloc op =
    let size = Mach.size_of op in
    Vec.push insts
      { p_addr = !cursor; p_size = size; p_op = op; p_dloc = dloc; p_func = fidx; p_cs = cs };
    cursor := !cursor + size;
    Vec.length insts - 1
  in
  (* Emit one block; [next] is the fallthrough candidate within the same
     emission sequence. *)
  let emit_block fidx (mf : Isel.mfunc) (label : Ir.Types.label) ~(next : Ir.Types.label option) =
    let f = mf.Isel.mf_func in
    let mb = Hashtbl.find mf.Isel.mf_blocks label in
    Hashtbl.replace block_addr (fidx, label) !cursor;
    let start_idx = Vec.length insts in
    Vec.iter (fun (op, dloc, cs) -> ignore (push_inst ~cs fidx dloc op)) mb.Isel.mb_insts;
    let n_body = Vec.length mb.Isel.mb_insts in
    let b = Ir.Func.block f label in
    (* Terminator encoding depends on the fallthrough. *)
    (match mb.Isel.mb_term with
    | Isel.TP_done -> ()
    | Isel.TP_ret op -> ignore (push_inst fidx Ir.Dloc.none (Mach.MRet op))
    | Isel.TP_jmp -> (
        match b.Ir.Block.term with
        | I.Jmp t when Some t = next -> ()
        | I.Jmp t ->
            let idx = push_inst fidx Ir.Dloc.none (Mach.MJmp 0) in
            patches := (idx, PJmp (fidx, t)) :: !patches
        | I.Unreachable -> ignore (push_inst fidx Ir.Dloc.none (Mach.MRet (Mach.OImm 0L)))
        | _ -> assert false)
    | Isel.TP_br c -> (
        match b.Ir.Block.term with
        | I.Br (_, tbb, fbb) ->
            if Some fbb = next then begin
              let idx = push_inst fidx Ir.Dloc.none (Mach.MJcc (c, true, 0)) in
              patches := (idx, PJcc (fidx, tbb)) :: !patches
            end
            else if Some tbb = next then begin
              let idx = push_inst fidx Ir.Dloc.none (Mach.MJcc (c, false, 0)) in
              patches := (idx, PJcc (fidx, fbb)) :: !patches
            end
            else begin
              let idx = push_inst fidx Ir.Dloc.none (Mach.MJcc (c, true, 0)) in
              patches := (idx, PJcc (fidx, tbb)) :: !patches;
              let idx2 = push_inst fidx Ir.Dloc.none (Mach.MJmp 0) in
              patches := (idx2, PJmp (fidx, fbb)) :: !patches
            end
        | _ -> assert false)
    | Isel.TP_switch mo -> (
        match b.Ir.Block.term with
        | I.Switch (_, cases, default) ->
            let idx =
              push_inst fidx Ir.Dloc.none
                (Mach.MSwitch (mo, List.map (fun (k, _) -> (k, 0)) cases, 0))
            in
            patches := (idx, PSwitch (fidx, cases, default)) :: !patches
        | _ -> assert false));
    let total = Vec.length insts - start_idx in
    (* Probes need an in-block anchor; pad with a nop if the block emitted
       nothing (pure fallthrough). *)
    let total =
      if total = 0 && mb.Isel.mb_probes <> [] then begin
        ignore (push_inst fidx Ir.Dloc.none Mach.MNop);
        1
      end
      else total
    in
    List.iter
      (fun (probe, dloc, anchor_idx) ->
        let rel = min anchor_idx (total - 1) in
        let rel = max rel 0 in
        ignore n_body;
        probes := { pp_probe = probe; pp_dloc = dloc; pp_global_idx = start_idx + rel } :: !probes)
      mb.Isel.mb_probes
  in
  (* Hot parts. *)
  let hot_ranges =
    List.mapi
      (fun fidx (mf, (lay : Layout.t)) ->
        align16 ();
        let start = !cursor in
        let rec go = function
          | [] -> ()
          | [ last ] -> emit_block fidx mf last ~next:None
          | x :: (y :: _ as rest) ->
              emit_block fidx mf x ~next:(Some y);
              go rest
        in
        go lay.Layout.hot;
        (start, !cursor))
      (List.combine mfuncs layouts)
  in
  (* Cold parts, all placed after the hot text. *)
  let cold_ranges =
    List.mapi
      (fun fidx (mf, (lay : Layout.t)) ->
        if lay.Layout.cold = [] then None
        else begin
          align16 ();
          let start = !cursor in
          let rec go = function
            | [] -> ()
            | [ last ] -> emit_block fidx mf last ~next:None
            | x :: (y :: _ as rest) ->
                emit_block fidx mf x ~next:(Some y);
                go rest
          in
          go lay.Layout.cold;
          Some (start, !cursor)
        end)
      (List.combine mfuncs layouts)
  in
  let text_end = !cursor in
  (* Patch branch targets. *)
  List.iter
    (fun (idx, patch) ->
      let inst = Vec.get insts idx in
      let addr_of fidx l =
        match Hashtbl.find_opt block_addr (fidx, l) with
        | Some a -> a
        | None -> invalid_arg (Printf.sprintf "emit: unplaced block bb%d" l)
      in
      match (patch, inst.p_op) with
      | PJmp (fidx, l), Mach.MJmp _ -> inst.p_op <- Mach.MJmp (addr_of fidx l)
      | PJcc (fidx, l), Mach.MJcc (c, pol, _) -> inst.p_op <- Mach.MJcc (c, pol, addr_of fidx l)
      | PSwitch (fidx, cases, default), Mach.MSwitch (mo, _, _) ->
          inst.p_op <-
            Mach.MSwitch
              (mo, List.map (fun (k, l) -> (k, addr_of fidx l)) cases, addr_of fidx default)
      | _ -> assert false)
    !patches;
  (* Finalize instruction array and metadata. *)
  let inst_arr =
    Array.init (Vec.length insts) (fun i ->
        let pi = Vec.get insts i in
        {
          Mach.i_addr = pi.p_addr;
          i_size = pi.p_size;
          i_op = pi.p_op;
          i_dloc = pi.p_dloc;
          i_func = pi.p_func;
          i_cs_probe = pi.p_cs;
        })
  in
  let addr_index = Hashtbl.create (Array.length inst_arr) in
  Array.iteri (fun i inst -> Hashtbl.replace addr_index inst.Mach.i_addr i) inst_arr;
  let probe_arr =
    !probes
    |> List.map (fun pp ->
           {
             Mach.pr_func = pp.pp_probe.I.p_func;
             pr_id = pp.pp_probe.I.p_id;
             pr_kind = pp.pp_probe.I.p_kind;
             pr_addr = inst_arr.(pp.pp_global_idx).Mach.i_addr;
             pr_chain = pp.pp_dloc.Ir.Dloc.inlined_at;
           })
    |> List.sort (fun a b ->
           let c = compare a.Mach.pr_addr b.Mach.pr_addr in
           if c <> 0 then c else compare a.Mach.pr_id b.Mach.pr_id)
    |> Array.of_list
  in
  let n_counters =
    Array.fold_left
      (fun acc inst ->
        match inst.Mach.i_op with Mach.MInc c -> max acc (c + 1) | _ -> acc)
      0 inst_arr
  in
  let funcs =
    Array.of_list
      (List.mapi
         (fun fidx mf ->
           let f = mf.Isel.mf_func in
           let start, end_ = List.nth hot_ranges fidx in
           let param_locs =
             Array.of_list
               (List.map (fun r -> mf.Isel.mf_ra.Regalloc.loc_of.(r)) f.Ir.Func.params)
           in
           {
             Mach.bf_name = f.Ir.Func.name;
             bf_guid = f.Ir.Func.guid;
             bf_start = start;
             bf_end = end_;
             bf_cold = List.nth cold_ranges fidx;
             bf_param_locs = param_locs;
             bf_nslots = mf.Isel.mf_ra.Regalloc.nslots;
             bf_checksum = f.Ir.Func.checksum;
           })
         mfuncs)
  in
  (* Size accounting for Fig. 9: a plausible byte encoding of each section. *)
  let debug_size =
    Array.fold_left
      (fun acc inst -> acc + 4 + (6 * List.length inst.Mach.i_dloc.Ir.Dloc.inlined_at))
      0 inst_arr
  in
  let probe_meta_size =
    if Array.length probe_arr = 0 then 0
    else
      (16 * Array.length funcs)
      + Array.fold_left
          (fun acc pr -> acc + 18 + (10 * List.length pr.Mach.pr_chain))
          0 probe_arr
  in
  {
    Mach.funcs;
    insts = inst_arr;
    addr_index;
    probes = probe_arr;
    n_counters;
    globals = p.Ir.Program.globals;
    text_size = text_end - base_addr;
    debug_size;
    probe_meta_size;
  }
