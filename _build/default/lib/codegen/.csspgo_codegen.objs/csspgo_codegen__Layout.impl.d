lib/codegen/layout.ml: Array Csspgo_ir Csspgo_support Hashtbl Int64 List Option Vec
