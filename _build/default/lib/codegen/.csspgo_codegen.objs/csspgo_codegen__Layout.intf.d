lib/codegen/layout.mli: Csspgo_ir
