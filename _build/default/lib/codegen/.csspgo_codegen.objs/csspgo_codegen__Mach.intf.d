lib/codegen/mach.mli: Csspgo_ir Format Hashtbl
