lib/codegen/regalloc.mli: Csspgo_ir Mach
