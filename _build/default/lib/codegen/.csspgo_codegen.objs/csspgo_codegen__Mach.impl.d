lib/codegen/mach.ml: Array Csspgo_ir Format Hashtbl List Option
