lib/codegen/regalloc.ml: Array Csspgo_ir Csspgo_opt Csspgo_support Hashtbl Int64 List Mach Option Vec
