lib/codegen/isel.mli: Csspgo_ir Csspgo_support Hashtbl Mach Regalloc
