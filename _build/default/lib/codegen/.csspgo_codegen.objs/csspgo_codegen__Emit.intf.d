lib/codegen/emit.mli: Csspgo_ir Mach
