lib/codegen/emit.ml: Array Csspgo_ir Csspgo_support Hashtbl Int64 Isel Layout List Mach Printf Regalloc String Vec
