lib/codegen/isel.ml: Array Csspgo_ir Csspgo_support Hashtbl List Mach Option Regalloc Vec
