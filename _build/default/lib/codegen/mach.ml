module Ir = Csspgo_ir
module T = Ir.Types

type preg = int

let n_phys = 16
let n_alloc = 12
let scratch0 = 12

type moperand =
  | OReg of preg
  | OImm of int64
  | OSpill of int

type loc =
  | LReg of preg
  | LSpill of int

type mop =
  | MArith of T.binop * preg * moperand * moperand
  | MCmp of T.cmpop * preg * moperand * moperand
  | MSelect of preg * preg * moperand * moperand
  | MMov of preg * moperand
  | MLoad of preg * string * moperand
  | MStore of string * moperand * moperand
  | MSpill_ld of preg * int
  | MSpill_st of int * preg
  | MCall of mcall
  | MTail_call of mcall
  | MRet of moperand
  | MJmp of int
  | MJcc of preg * bool * int
  | MSwitch of moperand * (int64 * int) list * int
  | MInc of int
  | MValprof of int * moperand
  | MNop

and mcall = {
  m_callee : Ir.Guid.t;
  m_callee_name : string;
  m_args : moperand list;
  m_ret : loc option;
}

let size_of = function
  | MArith _ -> 3
  | MCmp _ -> 3
  | MSelect _ -> 3
  | MMov _ -> 3
  | MLoad _ | MStore _ -> 4
  | MSpill_ld _ | MSpill_st _ -> 4
  | MCall _ | MTail_call _ -> 5
  | MRet _ -> 1
  | MJmp _ -> 5
  | MJcc _ -> 6
  | MSwitch (_, cases, _) -> 8 + (4 * List.length cases)
  | MInc _ -> 7
  | MValprof _ -> 7
  | MNop -> 1

type inst = {
  i_addr : int;
  i_size : int;
  mutable i_op : mop;
  i_dloc : Ir.Dloc.t;
  i_func : int;
  i_cs_probe : int;
}

type probe_rec = {
  pr_func : Ir.Guid.t;
  pr_id : int;
  pr_kind : Ir.Instr.probe_kind;
  pr_addr : int;
  pr_chain : Ir.Dloc.callsite list;
}

type bfunc = {
  bf_name : string;
  bf_guid : Ir.Guid.t;
  bf_start : int;
  bf_end : int;
  bf_cold : (int * int) option;
  bf_param_locs : loc array;
  bf_nslots : int;
  bf_checksum : int64;
}

type binary = {
  funcs : bfunc array;
  insts : inst array;
  addr_index : (int, int) Hashtbl.t;
  probes : probe_rec array;
  n_counters : int;
  globals : (string * int) list;
  text_size : int;
  debug_size : int;
  probe_meta_size : int;
}

let func_index_of_addr b addr =
  let n = Array.length b.funcs in
  let found = ref None in
  (* Hot ranges are sorted by start; cold ranges live past all hot code.
     A linear scan is fine for our function counts but use the hot ordering
     for the common case. *)
  let rec bsearch lo hi =
    if lo >= hi then ()
    else
      let mid = (lo + hi) / 2 in
      let f = b.funcs.(mid) in
      if addr < f.bf_start then bsearch lo mid
      else if addr >= f.bf_end then bsearch (mid + 1) hi
      else found := Some mid
  in
  bsearch 0 n;
  (match !found with
  | Some _ -> ()
  | None ->
      Array.iteri
        (fun i f ->
          match f.bf_cold with
          | Some (s, e) when addr >= s && addr < e -> found := Some i
          | _ -> ())
        b.funcs);
  !found

let inst_at b addr =
  match Hashtbl.find_opt b.addr_index addr with
  | Some i -> Some b.insts.(i)
  | None -> None

let next_addr b addr =
  match Hashtbl.find_opt b.addr_index addr with
  | Some i when i + 1 < Array.length b.insts -> Some b.insts.(i + 1).i_addr
  | _ -> None

let dloc_at b addr = Option.map (fun i -> i.i_dloc) (inst_at b addr)

let inlined_frames_at b addr =
  match inst_at b addr with
  | None -> []
  | Some i ->
      let container = b.funcs.(i.i_func).bf_guid in
      Ir.Dloc.frames ~container i.i_dloc

let entry_addr b guid =
  let r = ref None in
  Array.iter (fun f -> if Ir.Guid.equal f.bf_guid guid then r := Some f.bf_start) b.funcs;
  !r

let pp_moperand fmt = function
  | OReg r -> Format.fprintf fmt "p%d" r
  | OImm i -> Format.fprintf fmt "%Ld" i
  | OSpill s -> Format.fprintf fmt "[slot%d]" s

let pp_mop fmt = function
  | MArith (op, d, a, b) ->
      Format.fprintf fmt "p%d = %a %a, %a" d T.pp_binop op pp_moperand a pp_moperand b
  | MCmp (op, d, a, b) ->
      Format.fprintf fmt "p%d = cmp.%a %a, %a" d T.pp_cmpop op pp_moperand a pp_moperand b
  | MSelect (d, c, a, b) ->
      Format.fprintf fmt "p%d = select p%d, %a, %a" d c pp_moperand a pp_moperand b
  | MMov (d, a) -> Format.fprintf fmt "p%d = %a" d pp_moperand a
  | MLoad (d, g, i) -> Format.fprintf fmt "p%d = load %s[%a]" d g pp_moperand i
  | MStore (g, i, v) -> Format.fprintf fmt "store %s[%a], %a" g pp_moperand i pp_moperand v
  | MSpill_ld (d, s) -> Format.fprintf fmt "p%d = reload slot%d" d s
  | MSpill_st (s, r) -> Format.fprintf fmt "spill slot%d, p%d" s r
  | MCall c -> Format.fprintf fmt "call %s/%d" c.m_callee_name (List.length c.m_args)
  | MTail_call c -> Format.fprintf fmt "tailcall %s/%d" c.m_callee_name (List.length c.m_args)
  | MRet o -> Format.fprintf fmt "ret %a" pp_moperand o
  | MJmp a -> Format.fprintf fmt "jmp 0x%x" a
  | MJcc (r, pol, a) -> Format.fprintf fmt "j%s p%d, 0x%x" (if pol then "nz" else "z") r a
  | MSwitch (o, cases, d) ->
      Format.fprintf fmt "switch %a (%d cases) default 0x%x" pp_moperand o
        (List.length cases) d
  | MInc i -> Format.fprintf fmt "inc counter[%d]" i
  | MValprof (s, o) -> Format.fprintf fmt "valprof #%d, %a" s pp_moperand o
  | MNop -> Format.pp_print_string fmt "nop"
