(** Register allocation: greedy graph coloring over an instruction-precise
    interference graph, with virtual registers considered in order of
    profile-weighted access frequency (block counts when annotated,
    loop-depth heuristics otherwise). Registers that cannot be colored into
    the [Mach.n_alloc] allocatable registers spill to a frame slot and pay a
    real load/store per access.

    This is where post-inline profile quality becomes performance: a stale
    or badly scaled profile colors the wrong registers first and pushes the
    hot loop's values into spill slots (§II.B). *)

type t = {
  loc_of : Mach.loc array;  (** indexed by virtual register *)
  nslots : int;
}

val allocate : Csspgo_ir.Func.t -> t
