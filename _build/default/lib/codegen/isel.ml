open Csspgo_support
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr

type term_prep =
  | TP_ret of Mach.moperand
  | TP_br of Mach.preg
  | TP_switch of Mach.moperand
  | TP_jmp
  | TP_done

type mblock = {
  mb_label : T.label;
  mb_insts : (Mach.mop * Ir.Dloc.t * int) Vec.t;
  mb_probes : (I.probe * Ir.Dloc.t * int) list;
  mb_term : term_prep;
}

type mfunc = {
  mf_func : Ir.Func.t;
  mf_blocks : (T.label, mblock) Hashtbl.t;
  mf_ra : Regalloc.t;
}

type bctx = {
  ra : Regalloc.t;
  insts : (Mach.mop * Ir.Dloc.t * int) Vec.t;
  mutable probes_rev : (I.probe * Ir.Dloc.t * int) list;
  mutable scratch_next : int;
}

let emit ?(cs = 0) ctx dloc op = Vec.push ctx.insts (op, dloc, cs)

let fresh_scratch ctx =
  let r = Mach.scratch0 + (ctx.scratch_next mod (Mach.n_phys - Mach.scratch0)) in
  ctx.scratch_next <- ctx.scratch_next + 1;
  r

(* Materialize an operand into something ALU ops accept (reg or imm). *)
let use ctx dloc (o : T.operand) : Mach.moperand =
  match o with
  | T.Imm v -> Mach.OImm v
  | T.Reg r -> (
      match ctx.ra.Regalloc.loc_of.(r) with
      | Mach.LReg p -> Mach.OReg p
      | Mach.LSpill s ->
          let sc = fresh_scratch ctx in
          emit ctx dloc (Mach.MSpill_ld (sc, s));
          Mach.OReg sc)

let use_reg ctx dloc (r : T.reg) : Mach.preg =
  match use ctx dloc (T.Reg r) with
  | Mach.OReg p -> p
  | _ -> assert false

(* Loose operand for calls/ret/switch: spill slots allowed directly. *)
let use_loose ctx (o : T.operand) : Mach.moperand =
  match o with
  | T.Imm v -> Mach.OImm v
  | T.Reg r -> (
      match ctx.ra.Regalloc.loc_of.(r) with
      | Mach.LReg p -> Mach.OReg p
      | Mach.LSpill s -> Mach.OSpill s)

(* Where a definition goes; returns the working preg and a post-store. *)
let def ctx (r : T.reg) : Mach.preg * (Ir.Dloc.t -> unit) =
  match ctx.ra.Regalloc.loc_of.(r) with
  | Mach.LReg p -> (p, fun _ -> ())
  | Mach.LSpill s ->
      let sc = fresh_scratch ctx in
      (sc, fun dloc -> emit ctx dloc (Mach.MSpill_st (s, sc)))

let mcall_of ctx c_callee c_args ret =
  let args = List.map (use_loose ctx) c_args in
  {
    Mach.m_callee = Ir.Guid.of_name c_callee;
    m_callee_name = c_callee;
    m_args = args;
    m_ret = ret;
  }

let select_instr ctx (i : I.t) =
  ctx.scratch_next <- 0;
  let dloc = i.I.dloc in
  match i.I.op with
  | I.Probe p -> ctx.probes_rev <- (p, dloc, Vec.length ctx.insts) :: ctx.probes_rev
  | I.Bin (op, d, a, b) ->
      let ma = use ctx dloc a in
      let mb = use ctx dloc b in
      let pd, post = def ctx d in
      emit ctx dloc (Mach.MArith (op, pd, ma, mb));
      post dloc
  | I.Cmp (op, d, a, b) ->
      let ma = use ctx dloc a in
      let mb = use ctx dloc b in
      let pd, post = def ctx d in
      emit ctx dloc (Mach.MCmp (op, pd, ma, mb));
      post dloc
  | I.Select (d, c, a, b) ->
      let pc = use_reg ctx dloc c in
      let ma = use ctx dloc a in
      let mb = use ctx dloc b in
      let pd, post = def ctx d in
      emit ctx dloc (Mach.MSelect (pd, pc, ma, mb));
      post dloc
  | I.Mov (d, a) ->
      let ma = use ctx dloc a in
      let pd, post = def ctx d in
      (* Coalescing peephole: coloring often lands source and destination in
         the same physical register. *)
      if ma <> Mach.OReg pd then emit ctx dloc (Mach.MMov (pd, ma));
      post dloc
  | I.Load (d, g, idx) ->
      let mi = use ctx dloc idx in
      let pd, post = def ctx d in
      emit ctx dloc (Mach.MLoad (pd, g, mi));
      post dloc
  | I.Store (g, idx, v) ->
      let mi = use ctx dloc idx in
      let mv = use ctx dloc v in
      emit ctx dloc (Mach.MStore (g, mi, mv))
  | I.Call { c_ret; c_callee; c_args; c_probe } ->
      let ret = Option.map (fun r -> ctx.ra.Regalloc.loc_of.(r)) c_ret in
      emit ~cs:c_probe ctx dloc (Mach.MCall (mcall_of ctx c_callee c_args ret))
  | I.Counter_inc c -> emit ctx dloc (Mach.MInc c)
  | I.Val_prof (site, r) ->
      let o = use_loose ctx (T.Reg r) in
      emit ctx dloc (Mach.MValprof (site, o))

let select ~enable_tce (f : Ir.Func.t) =
  let ra = Regalloc.allocate f in
  let blocks = Hashtbl.create 16 in
  Ir.Func.iter_blocks
    (fun b ->
      let ctx = { ra; insts = Vec.create (); probes_rev = []; scratch_next = 0 } in
      let n = Vec.length b.Ir.Block.instrs in
      (* Tail-call pattern: the block returns the result of its last call. *)
      let tce_idx =
        if enable_tce && n > 0 then
          match (b.Ir.Block.term, (Vec.get b.Ir.Block.instrs (n - 1)).I.op) with
          | I.Ret (T.Reg rv), I.Call { c_ret = Some d; _ } when rv = d -> Some (n - 1)
          | _ -> None
        else None
      in
      let term_done = ref false in
      Vec.iteri
        (fun idx (i : I.t) ->
          if Some idx = tce_idx then begin
            match i.I.op with
            | I.Call { c_callee; c_args; c_probe; _ } ->
                ctx.scratch_next <- 0;
                emit ~cs:c_probe ctx i.I.dloc
                  (Mach.MTail_call (mcall_of ctx c_callee c_args None));
                term_done := true
            | _ -> assert false
          end
          else select_instr ctx i)
        b.Ir.Block.instrs;
      let term =
        if !term_done then TP_done
        else
          match b.Ir.Block.term with
          | I.Ret v ->
              ctx.scratch_next <- 0;
              TP_ret (use_loose ctx v)
          | I.Jmp _ -> TP_jmp
          | I.Br (c, _, _) ->
              ctx.scratch_next <- 0;
              TP_br (use_reg ctx Ir.Dloc.none c)
          | I.Switch (v, _, _) ->
              ctx.scratch_next <- 0;
              TP_switch (use_loose ctx v)
          | I.Unreachable -> TP_jmp
      in
      Hashtbl.replace blocks b.Ir.Block.id
        {
          mb_label = b.Ir.Block.id;
          mb_insts = ctx.insts;
          mb_probes = List.rev ctx.probes_rev;
          mb_term = term;
        })
    f;
  { mf_func = f; mf_blocks = blocks; mf_ra = ra }
