open Csspgo_support
module Ir = Csspgo_ir

type t = {
  hot : Ir.Types.label list;
  cold : Ir.Types.label list;
}

let edge_weights (f : Ir.Func.t) =
  if f.Ir.Func.annotated then
    Ir.Func.fold_blocks
      (fun acc b ->
        let succs = Ir.Block.successors b in
        let acc = ref acc in
        List.iteri
          (fun i s ->
            let w =
              if i < Array.length b.Ir.Block.edge_counts then b.Ir.Block.edge_counts.(i)
              else 0L
            in
            acc := (b.Ir.Block.id, s, w) :: !acc)
          succs;
        !acc)
      [] f
  else begin
    (* Static estimate: loop back edges and loop-internal edges are heavy. *)
    let depth = Hashtbl.create 16 in
    List.iter
      (fun (loop : Ir.Cfg.loop) ->
        Hashtbl.iter
          (fun l () ->
            Hashtbl.replace depth l (1 + Option.value (Hashtbl.find_opt depth l) ~default:0))
          loop.Ir.Cfg.body)
      (Ir.Cfg.natural_loops f);
    Ir.Func.fold_blocks
      (fun acc b ->
        let d l = Option.value (Hashtbl.find_opt depth l) ~default:0 in
        let acc = ref acc in
        List.iter
          (fun s ->
            let w = Int64.of_int (1 + (8 * min (d b.Ir.Block.id) (d s))) in
            acc := (b.Ir.Block.id, s, w) :: !acc)
          (Ir.Block.successors b);
        !acc)
      [] f
  end

(* Instruction-count proxy for block byte size. *)
let block_size f l =
  match Ir.Func.find_block f l with
  | Some b -> 1 + Vec.length b.Ir.Block.instrs
  | None -> 1

let order ~split (f : Ir.Func.t) =
  let reach = Ir.Cfg.reachable f in
  let labels = List.filter (Hashtbl.mem reach) (Ir.Func.labels f) in
  let is_cold l =
    split && f.Ir.Func.annotated && l <> f.Ir.Func.entry
    && Int64.equal (Ir.Func.block f l).Ir.Block.count 0L
  in
  let hot_labels = List.filter (fun l -> not (is_cold l)) labels in
  let cold = List.filter is_cold labels in
  (* Hot-path DFS placement: always extend the current chain with the
     hottest unplaced successor, so the dominant path through each loop is
     a pure fallthrough run. When the chain dies, restart from the hottest
     unplaced block. Stable under small count perturbations — a desirable
     property Ext-TSP implementations work hard for. *)
  let placed = Hashtbl.create 16 in
  let out = ref [] in
  let hot_set = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace hot_set l ()) hot_labels;
  let succ_weights l =
    match Ir.Func.find_block f l with
    | None -> []
    | Some b ->
        let succs = Ir.Block.successors b in
        let static_d =
          if f.Ir.Func.annotated then fun _ -> 0L
          else
            (* static heuristic: prefer the first successor (then-branch)
               slightly, and back edges to already-placed headers last *)
            fun i -> Int64.of_int (-i)
        in
        List.mapi
          (fun i s ->
            let w =
              if f.Ir.Func.annotated && i < Array.length b.Ir.Block.edge_counts then
                b.Ir.Block.edge_counts.(i)
              else static_d i
            in
            (s, w))
          succs
  in
  let rec extend l =
    if (not (Hashtbl.mem placed l)) && Hashtbl.mem hot_set l then begin
      Hashtbl.replace placed l ();
      out := l :: !out;
      let candidates =
        succ_weights l
        |> List.filter (fun (s, _) -> (not (Hashtbl.mem placed s)) && Hashtbl.mem hot_set s)
        |> List.stable_sort (fun (_, w1) (_, w2) -> Int64.compare w2 w1)
      in
      match candidates with
      | (s, _) :: _ -> extend s
      | [] -> ()
    end
  in
  extend f.Ir.Func.entry;
  (* Restart points: hottest remaining blocks first. *)
  let remaining () =
    hot_labels
    |> List.filter (fun l -> not (Hashtbl.mem placed l))
    |> List.stable_sort (fun l1 l2 ->
           Int64.compare (Ir.Func.block f l2).Ir.Block.count
             (Ir.Func.block f l1).Ir.Block.count)
  in
  let rec drain () =
    match remaining () with
    | [] -> ()
    | l :: _ ->
        extend l;
        drain ()
  in
  drain ();
  { hot = List.rev !out; cold }

let ext_tsp_score_impl (f : Ir.Func.t) order =
  let pos = Hashtbl.create 16 in
  let addr = ref 0 in
  List.iter
    (fun l ->
      Hashtbl.replace pos l !addr;
      addr := !addr + (3 * block_size f l))
    order;
  List.fold_left
    (fun acc (s, d, w) ->
      match (Hashtbl.find_opt pos s, Hashtbl.find_opt pos d) with
      | Some ps, Some pd ->
          let ps_end = ps + (3 * block_size f s) in
          let wf = Int64.to_float w in
          if pd = ps_end then acc +. wf
          else if pd > ps_end && pd - ps_end < 1024 then acc +. (0.1 *. wf)
          else if pd < ps_end && ps_end - pd < 1024 then acc +. (0.05 *. wf)
          else acc
      | _ -> acc)
    0.0 (edge_weights f)

(* Full Ext-TSP greedy: merge the chain pair with the best score gain.
   The objective only depends on relative distances, so concatenating two
   chains changes the score exactly by the contribution of the edges that
   cross between them — an O(cross-edges) incremental gain. Very large
   functions still fall back to the linear hot-path placement (real
   Ext-TSP implementations impose similar caps). *)
let ext_tsp_max_blocks = 96

let order_ext_tsp ~split (f : Ir.Func.t) =
  if Ir.Func.n_blocks f > ext_tsp_max_blocks then order ~split f
  else begin
    let reach = Ir.Cfg.reachable f in
    let labels = List.filter (Hashtbl.mem reach) (Ir.Func.labels f) in
    let is_cold l =
      split && f.Ir.Func.annotated && l <> f.Ir.Func.entry
      && Int64.equal (Ir.Func.block f l).Ir.Block.count 0L
    in
    let hot_labels = List.filter (fun l -> not (is_cold l)) labels in
    let cold = List.filter is_cold labels in
    let hot_set = Hashtbl.create 16 in
    List.iter (fun l -> Hashtbl.replace hot_set l ()) hot_labels;
    (* Edges grouped by source block, hot endpoints only. *)
    let out_edges = Hashtbl.create 16 in
    List.iter
      (fun (src, dst, w) ->
        if Hashtbl.mem hot_set src && Hashtbl.mem hot_set dst then
          Hashtbl.replace out_edges src
            ((dst, w) :: Option.value (Hashtbl.find_opt out_edges src) ~default:[]))
      (edge_weights f);
    (* Contribution of one edge given the two endpoint offsets. *)
    let edge_score src_off src_l dst_off w =
      let src_end = src_off + (3 * block_size f src_l) in
      let wf = Int64.to_float w in
      if dst_off = src_end then wf
      else if dst_off > src_end && dst_off - src_end < 1024 then 0.1 *. wf
      else if dst_off < src_end && src_end - dst_off < 1024 then 0.05 *. wf
      else 0.0
    in
    (* Gain of placing chain [b] directly after chain [a]: evaluate only the
       edges crossing between them in the concatenated placement. *)
    let chain_sizes = Hashtbl.create 16 in
    let size_of_chain c =
      match Hashtbl.find_opt chain_sizes c with
      | Some s -> s
      | None ->
          let s = List.fold_left (fun acc l -> acc + (3 * block_size f l)) 0 c in
          Hashtbl.replace chain_sizes c s;
          s
    in
    let offsets_of c base =
      let tbl = Hashtbl.create 8 in
      let off = ref base in
      List.iter
        (fun l ->
          Hashtbl.replace tbl l !off;
          off := !off + (3 * block_size f l))
        c;
      tbl
    in
    let cross_gain a b =
      let pos_a = offsets_of a 0 in
      let pos_b = offsets_of b (size_of_chain a) in
      let acc = ref 0.0 in
      let eval_from pos_src pos_dst chain =
        List.iter
          (fun l ->
            List.iter
              (fun (dst, w) ->
                match (Hashtbl.find_opt pos_src l, Hashtbl.find_opt pos_dst dst) with
                | Some so, Some d_off -> acc := !acc +. edge_score so l d_off w
                | _ -> ())
              (Option.value (Hashtbl.find_opt out_edges l) ~default:[]))
          chain
      in
      eval_from pos_a pos_b a;
      eval_from pos_b pos_a b;
      !acc
    in
    let chains = ref (List.map (fun l -> [ l ]) hot_labels) in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let best = ref None in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i <> j && not (List.mem f.Ir.Func.entry b) then begin
                let gain = cross_gain a b in
                match !best with
                | Some (g, _, _) when g >= gain -> ()
                | _ -> if gain > 1e-9 then best := Some (gain, i, j)
              end)
            !chains)
        !chains;
      match !best with
      | Some (_, i, j) ->
          let a = List.nth !chains i and b = List.nth !chains j in
          chains := (a @ b) :: List.filteri (fun k _ -> k <> i && k <> j) !chains;
          continue_ := true
      | None -> ()
    done;
    let density ls =
      let count =
        List.fold_left (fun acc l -> Int64.add acc (Ir.Func.block f l).Ir.Block.count) 0L ls
      in
      let size = List.fold_left (fun acc l -> acc + block_size f l) 0 ls in
      Int64.to_float count /. float_of_int (max 1 size)
    in
    let entry_chain, rest = List.partition (fun c -> List.mem f.Ir.Func.entry c) !chains in
    let rest = List.stable_sort (fun a b -> compare (density b) (density a)) rest in
    { hot = List.concat (entry_chain @ rest); cold }
  end

let ext_tsp_score = ext_tsp_score_impl
