(** Block layout via Ext-TSP-style greedy chain merging (Newell & Pupyrev
    [15], simplified): heavy CFG edges become fallthroughs, chains are
    concatenated by decreasing edge weight, and the final order places the
    entry chain first and the rest by hotness density.

    With [split] and a profile, never-executed blocks are exiled to the cold
    part (function splitting), shrinking the hot text footprint. *)

type t = {
  hot : Csspgo_ir.Types.label list;
  cold : Csspgo_ir.Types.label list;
}

val order : split:bool -> Csspgo_ir.Func.t -> t
(** Hot-path DFS placement: linear, stable under count perturbations; used
    as the fallback for very large functions and available through
    [Emit.options.layout = `Hot_path]. *)

val order_ext_tsp : split:bool -> Csspgo_ir.Func.t -> t
(** Full Ext-TSP greedy chain merging [15] — the default layout: repeatedly
    merge the pair of chains with the highest incremental score gain, with
    the entry chain pinned at the front. Falls back to [order] above
    [ext_tsp_max_blocks] blocks. Compared against the DFS placement in the
    ablation bench. *)

val edge_weights :
  Csspgo_ir.Func.t -> (Csspgo_ir.Types.label * Csspgo_ir.Types.label * int64) list
(** Profile edge weights when annotated, loop-heuristic weights otherwise.
    Exposed for tests and the ablation bench. *)

val ext_tsp_score : Csspgo_ir.Func.t -> Csspgo_ir.Types.label list -> float
(** The Ext-TSP objective of a given order: weighted sum over edges, 1.0 per
    fallthrough, 0.1 per short forward jump (< 1024 B est.), 0.05 per short
    backward jump, 0 otherwise. Used to sanity-check layout quality. *)
