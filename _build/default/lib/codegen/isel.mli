(** Instruction selection: IR blocks to VMC instruction sequences.

    Spilled virtual registers are reloaded into reserved scratch registers
    before ALU use and stored back after definition — visible, costly
    instructions. Call arguments and returns may address spill slots
    directly ([OSpill]), which the VM charges as a memory access.

    With [enable_tce], a call immediately followed by a return of its result
    becomes a tail call: the frame is replaced, and the caller disappears
    from stack samples (the missing-frame problem of §III.B). *)

type term_prep =
  | TP_ret of Mach.moperand
  | TP_br of Mach.preg  (** condition register, reloaded if spilled *)
  | TP_switch of Mach.moperand
  | TP_jmp
  | TP_done  (** terminator already emitted in the body (tail call) *)

type mblock = {
  mb_label : Csspgo_ir.Types.label;
  mb_insts : (Mach.mop * Csspgo_ir.Dloc.t * int) Csspgo_support.Vec.t;
      (** op, debug location, callsite probe id (0 = not a probed call) *)
  mb_probes : (Csspgo_ir.Instr.probe * Csspgo_ir.Dloc.t * int) list;
      (** probe, its dloc, and the [mb_insts] index it anchors to (the next
          real instruction; equal to length = anchors to the terminator) *)
  mb_term : term_prep;
}

type mfunc = {
  mf_func : Csspgo_ir.Func.t;
  mf_blocks : (Csspgo_ir.Types.label, mblock) Hashtbl.t;
  mf_ra : Regalloc.t;
}

val select : enable_tce:bool -> Csspgo_ir.Func.t -> mfunc
