open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr
module Opt = Csspgo_opt

type t = {
  loc_of : Mach.loc array;
  nslots : int;
}

(* Static block weight: 8^loop-depth, saturating. *)
let static_weights (f : Ir.Func.t) =
  let w = Hashtbl.create 16 in
  Ir.Func.iter_blocks (fun b -> Hashtbl.replace w b.Ir.Block.id 1L) f;
  List.iter
    (fun (loop : Ir.Cfg.loop) ->
      Hashtbl.iter
        (fun l () ->
          let cur = Option.value (Hashtbl.find_opt w l) ~default:1L in
          Hashtbl.replace w l (min 4096L (Int64.mul cur 8L)))
        loop.Ir.Cfg.body)
    (Ir.Cfg.natural_loops f);
  w

(* Profile-weighted access frequency per virtual register. *)
let frequencies (f : Ir.Func.t) =
  let n = max f.Ir.Func.nregs 1 in
  let freq = Array.make n 0L in
  let static_w = if f.Ir.Func.annotated then Hashtbl.create 0 else static_weights f in
  Ir.Func.iter_blocks
    (fun b ->
      let w =
        if f.Ir.Func.annotated then Int64.max 1L b.Ir.Block.count
        else Option.value (Hashtbl.find_opt static_w b.Ir.Block.id) ~default:1L
      in
      let touch r = if r < n then freq.(r) <- Int64.add freq.(r) w in
      Vec.iter
        (fun (i : I.t) ->
          List.iter touch (I.defs i.I.op);
          List.iter touch (I.uses i.I.op))
        b.Ir.Block.instrs;
      List.iter touch (I.term_uses b.Ir.Block.term))
    f;
  List.iter (fun p -> if p < n then freq.(p) <- Int64.add freq.(p) 1L) f.Ir.Func.params;
  freq

(* Instruction-precise interference graph from backward liveness walks. *)
let interference (f : Ir.Func.t) =
  let n = max f.Ir.Func.nregs 1 in
  let adj = Array.make n [] in
  let edge = Hashtbl.create 256 in
  let add a b =
    if a <> b && a < n && b < n && not (Hashtbl.mem edge (min a b, max a b)) then begin
      Hashtbl.replace edge (min a b, max a b) ();
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b)
    end
  in
  (* All parameters are live simultaneously at entry (the VM materializes
     them together), so they must not share registers. *)
  List.iter
    (fun p -> List.iter (fun q -> add p q) f.Ir.Func.params)
    f.Ir.Func.params;
  let live_out = Opt.Dce.liveness f in
  Ir.Func.iter_blocks
    (fun b ->
      let live = Array.copy (Hashtbl.find live_out b.Ir.Block.id) in
      let set r v = if r < Array.length live then live.(r) <- v in
      List.iter (fun r -> set r true) (I.term_uses b.Ir.Block.term);
      for idx = Vec.length b.Ir.Block.instrs - 1 downto 0 do
        let i = Vec.get b.Ir.Block.instrs idx in
        let defs = I.defs i.I.op in
        List.iter
          (fun d -> Array.iteri (fun r lv -> if lv then add d r) live)
          defs;
        List.iter (fun r -> set r false) defs;
        List.iter (fun r -> set r true) (I.uses i.I.op)
      done)
    f;
  adj

(* Move pairs (dst, src) — coloring prefers giving both the same register
   so the move disappears in instruction selection. *)
let move_pairs (f : Ir.Func.t) =
  let n = max f.Ir.Func.nregs 1 in
  let partners = Array.make n [] in
  Ir.Func.iter_blocks
    (fun b ->
      Vec.iter
        (fun (i : I.t) ->
          match i.I.op with
          | I.Mov (d, Ir.Types.Reg s) when d <> s && d < n && s < n ->
              partners.(d) <- s :: partners.(d);
              partners.(s) <- d :: partners.(s)
          | _ -> ())
        b.Ir.Block.instrs)
    f;
  partners

let allocate (f : Ir.Func.t) =
  let n = max f.Ir.Func.nregs 1 in
  let freq = frequencies f in
  let adj = interference f in
  let partners = move_pairs f in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Int64.compare freq.(b) freq.(a) in
      if c <> 0 then c else compare a b)
    order;
  let color = Array.make n (-1) in
  let loc_of = Array.make n (Mach.LSpill 0) in
  let nslots = ref 0 in
  Array.iter
    (fun vreg ->
      let used = Array.make Mach.n_alloc false in
      List.iter
        (fun nb -> if color.(nb) >= 0 && color.(nb) < Mach.n_alloc then used.(color.(nb)) <- true)
        adj.(vreg);
      (* Coalescing bias: reuse a move-partner's color when it is free. *)
      let preferred =
        List.find_map
          (fun p ->
            if p < n && color.(p) >= 0 && color.(p) < Mach.n_alloc && not used.(color.(p))
            then Some color.(p)
            else None)
          partners.(vreg)
      in
      let rec first_free c = if c >= Mach.n_alloc then None else if used.(c) then first_free (c + 1) else Some c in
      match (preferred, first_free 0) with
      | Some c, _ | None, Some c ->
          color.(vreg) <- c;
          loc_of.(vreg) <- Mach.LReg c
      | None, None ->
          loc_of.(vreg) <- Mach.LSpill !nslots;
          incr nslots)
    order;
  { loc_of; nslots = !nslots }
