(** Binary emission ("linking"): lays out all functions, assigns byte
    addresses, resolves intra-function branch targets, and materializes the
    metadata sections — symbol table, line table (debug info), pseudo-probe
    records anchored at the address of the probe's next real instruction.

    Function order is profile-guided when a profile is present (hot
    functions packed together); cold split parts of all functions are
    placed after the last hot function. *)

type options = {
  enable_tce : bool;       (** tail-call elimination *)
  enable_split : bool;     (** hot/cold function splitting *)
  order_by_hotness : bool; (** profile-guided function ordering *)
  layout : [ `Hot_path | `Ext_tsp ];  (** block layout algorithm *)
}

val default_options : options
(** TCE on, splitting on, hotness ordering on, Ext-TSP layout — the
    production -O2 setup (the paper enables Ext-TSP for all variants). *)

val emit : options:options -> Csspgo_ir.Program.t -> Mach.binary
