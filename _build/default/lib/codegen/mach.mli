(** The VMC virtual machine code: instruction set, byte sizes, and the
    linked binary image with its metadata sections (symbol table, DWARF-like
    line table, pseudo-probe table).

    The ISA is register-based with [n_phys] physical registers per frame
    plus per-function spill slots. Branch targets are absolute byte
    addresses patched at link time. *)

type preg = int
(** Physical register index, [0, n_phys). *)

val n_phys : int
(** 16: registers 0-11 are allocatable, 12-15 are reserved scratch. *)

val n_alloc : int
val scratch0 : preg

type moperand =
  | OReg of preg
  | OImm of int64
  | OSpill of int  (** direct spill-slot operand; allowed for call/ret/switch *)

type loc =
  | LReg of preg
  | LSpill of int

type mop =
  | MArith of Csspgo_ir.Types.binop * preg * moperand * moperand
  | MCmp of Csspgo_ir.Types.cmpop * preg * moperand * moperand
  | MSelect of preg * preg * moperand * moperand
  | MMov of preg * moperand
  | MLoad of preg * string * moperand        (** from global array *)
  | MStore of string * moperand * moperand
  | MSpill_ld of preg * int                  (** reg := slot *)
  | MSpill_st of int * preg                  (** slot := reg *)
  | MCall of mcall
  | MTail_call of mcall                      (** frame is replaced, no return *)
  | MRet of moperand
  | MJmp of int
  | MJcc of preg * bool * int                (** jump to addr when (reg<>0) = bool *)
  | MSwitch of moperand * (int64 * int) list * int  (** jump table *)
  | MInc of int                              (** instrumentation counter *)
  | MValprof of int * moperand               (** value-profile capture *)
  | MNop

and mcall = {
  m_callee : Csspgo_ir.Guid.t;
  m_callee_name : string;
  m_args : moperand list;
  m_ret : loc option;  (** where the caller receives the result *)
}

val size_of : mop -> int
(** Encoded size in bytes; fixed per opcode (switch grows with its table). *)

(** One emitted instruction with its metadata. *)
type inst = {
  i_addr : int;
  i_size : int;
  mutable i_op : mop;      (** mutable for link-time target patching *)
  i_dloc : Csspgo_ir.Dloc.t;
  i_func : int;            (** index into [funcs] *)
  i_cs_probe : int;        (** callsite probe id for call instructions (0 = none);
                               part of the pseudo-probe metadata section *)
}

type probe_rec = {
  pr_func : Csspgo_ir.Guid.t;  (** function the probe was inserted into *)
  pr_id : int;
  pr_kind : Csspgo_ir.Instr.probe_kind;
  pr_addr : int;               (** anchor: address of the next real instruction *)
  pr_chain : Csspgo_ir.Dloc.callsite list;  (** inline chain, innermost-first *)
}

type bfunc = {
  bf_name : string;
  bf_guid : Csspgo_ir.Guid.t;
  bf_start : int;
  bf_end : int;                  (** exclusive *)
  bf_cold : (int * int) option;  (** cold-section range, exclusive end *)
  bf_param_locs : loc array;
  bf_nslots : int;               (** spill slots to allocate per frame *)
  bf_checksum : int64;           (** pseudo-probe CFG checksum (0 = none) *)
}

type binary = {
  funcs : bfunc array;
  insts : inst array;              (** sorted by address *)
  addr_index : (int, int) Hashtbl.t;  (** address -> index into [insts] *)
  probes : probe_rec array;        (** sorted by address *)
  n_counters : int;
  globals : (string * int) list;
  text_size : int;
  debug_size : int;       (** encoded line-table bytes *)
  probe_meta_size : int;  (** encoded pseudo-probe section bytes *)
}

val func_index_of_addr : binary -> int -> int option
val inst_at : binary -> int -> inst option
val next_addr : binary -> int -> int option
(** Address of the instruction following the one at [addr]. *)

val dloc_at : binary -> int -> Csspgo_ir.Dloc.t option

val inlined_frames_at : binary -> int -> (Csspgo_ir.Guid.t * int * int) list
(** [GetInlinedFrames(addr)]: innermost-first [(func, line, probe)] frames,
    using the line table; empty if the address is unmapped. *)

val entry_addr : binary -> Csspgo_ir.Guid.t -> int option
val pp_mop : Format.formatter -> mop -> unit
