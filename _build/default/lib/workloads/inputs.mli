(** Deterministic input-data builders for the workload drivers. *)

val array : Csspgo_support.Rng.t -> int -> max:int -> int64 array
(** [n] uniform values in [\[0, max)]. *)

val array_nonzero : Csspgo_support.Rng.t -> int -> max:int -> int64 array
(** Values in [\[1, max)] — for hash tables where 0 means "empty". *)
