open Csspgo_support

let array rng n ~max = Array.init n (fun _ -> Int64.of_int (Rng.int rng max))

let array_nonzero rng n ~max = Array.init n (fun _ -> Int64.of_int (1 + Rng.int rng (max - 1)))
