(** Random MiniC program generator for property-based differential testing.

    Generated programs always terminate: loops are counted ([while (i < C)]
    with a dedicated induction variable), the static call graph is acyclic
    (a function may only call later-defined functions), and every array
    index is total (the VM wraps indices modulo the array size).

    The same seed always yields the same source text. *)

val random_source : ?n_funcs:int -> ?n_globals:int -> seed:int64 -> unit -> string
(** A full program with a [main(a, b)] entry point. *)
