lib/workloads/suite.ml: Array Csspgo_core Csspgo_support Inputs Int64 List Rng String
