lib/workloads/gen.ml: Array Buffer Csspgo_support List Printf Rng String
