lib/workloads/gen.mli:
