lib/workloads/inputs.mli: Csspgo_support
