lib/workloads/inputs.ml: Array Csspgo_support Int64 Rng
