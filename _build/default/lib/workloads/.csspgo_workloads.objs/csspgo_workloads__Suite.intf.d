lib/workloads/suite.mli: Csspgo_core
