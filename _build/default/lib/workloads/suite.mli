(** The evaluation workloads (§IV.A): MiniC stand-ins shaped after the five
    Meta server workloads plus the Clang-like client workload.

    - [adranker]   — Ads ranking: dot products, feature transforms, a shared
      scoring helper whose hot path depends on the calling context, hot
      cross-module calls (pre-inliner territory).
    - [adretriever] — Ads retrieval: open-addressing hash probes with hit /
      miss / tombstone branches.
    - [adfinder]   — Ads filtering: chains of small predicate functions with
      a tail call at the end of the chain (TCE missing-frame territory).
    - [hhvm]       — JIT-less bytecode interpreter: a hot switch dispatch
      loop (single module; counter instrumentation hurts the most here).
    - [haas]       — Hermes-like tree-walking evaluator: recursion and
      data-dependent dispatch.
    - [clangish]   — client workload: a toy compiler pipeline with many
      small functions and a deliberately short training run, reproducing
      the client-side sampling-coverage gap of §IV.D.

    Training and evaluation inputs are drawn from different seeds. *)

val adranker : Csspgo_core.Driver.workload
val adretriever : Csspgo_core.Driver.workload
val adfinder : Csspgo_core.Driver.workload
val hhvm : Csspgo_core.Driver.workload
val haas : Csspgo_core.Driver.workload
val clangish : Csspgo_core.Driver.workload

val server_workloads : Csspgo_core.Driver.workload list
(** The five server workloads, in the paper's order. *)

val all : Csspgo_core.Driver.workload list

val find : string -> Csspgo_core.Driver.workload option

val vecop_example : string
(** The Fig. 4 vector add/sub program (scalarOp), used by the quickstart
    example to reproduce Fig. 3's post-inline count story. *)
