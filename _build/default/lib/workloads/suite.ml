open Csspgo_support
module Driver = Csspgo_core.Driver

let spec args globals = { Driver.rs_args = args; rs_globals = globals }

(* ------------------------------------------------------------------ *)
(* adranker                                                            *)

let adranker_src = {|
module features;

global feat[4096];
global wvec[64];
global scores[256];

fn clampv(x, lo, hi) {
  if (x < lo) { return lo; }
  if (x > hi) { return hi; }
  return x;
}

fn transform(v, kind) {
  if (kind == 0) { return clampv(v * 3 / 2, 0, 1000000); }
  if (kind == 1) { return clampv(v * v % 10007, 0, 1000000); }
  return clampv(v - 7, 0, 1000000);
}

fn dot(off, n) {
  let s = 0;
  let i = 0;
  while (i < n) {
    let v = feat[off + i] * wvec[i];
    if (v % 4 == 0) { s = s + v * 3 - i + (v >> 2); } else { s = s + v; }
    i = i + 1;
  }
  return s;
}

module ranker;

fn score_one(doc, n) {
  let base = dot(doc * 64, n);
  let t = transform(base, 0);
  let bonus = 0;
  if (base % 17 == 0) {
    bonus = transform(base, 2);
  }
  return t + bonus;
}

fn rank(docs, n) {
  let d = 0;
  while (d < docs) {
    scores[d] = score_one(d, n);
    d = d + 1;
  }
  return 0;
}

fn top_score(docs) {
  let best = 0;
  let d = 0;
  while (d < docs) {
    if (scores[d] > best) { best = scores[d]; }
    d = d + 1;
  }
  return best;
}

module ranker_main;

fn main(docs, rounds, n) {
  let r = 0;
  let k = 0;
  while (k < rounds) {
    rank(docs, n);
    r = r + top_score(docs);
    k = k + 1;
  }
  return r;
}
|}

let adranker_globals seed =
  let rng = Rng.create seed in
  [ ("feat", Inputs.array rng 4096 ~max:1000); ("wvec", Inputs.array rng 64 ~max:50) ]

let adranker =
  {
    Driver.w_name = "adranker";
    w_source = adranker_src;
    w_entry = "main";
    w_train = [ spec [ 48L; 40L; 48L ] (adranker_globals 11L) ];
    w_eval = [ spec [ 48L; 48L; 48L ] (adranker_globals 12L) ];
  }

(* ------------------------------------------------------------------ *)
(* adretriever                                                         *)

let adretriever_src = {|
module index;

global htab[8192];
global hval[8192];
global queries[2048];
global results[2048];

fn hashk(k) {
  let h = k * 40503 + (k >> 7);
  return h % 8192;
}

fn probe(k) {
  let h = hashk(k);
  let tries = 0;
  while (tries < 48) {
    let slot = (h + tries) % 8192;
    let kk = htab[slot];
    if (kk == k) { return hval[slot]; } if (kk == 0) { return 0 - 1; }
    tries = tries + 1;
  }
  return 0 - 2;
}

module query;

fn lookup_batch(nq) {
  let i = 0;
  let hits = 0;
  while (i < nq) {
    let v = probe(queries[i]);
    if (v >= 0) {
      results[i] = v;
      hits = hits + 1;
    } else {
      results[i] = 0;
    }
    i = i + 1;
  }
  return hits;
}

fn main(nq, rounds) {
  let total = 0;
  let k = 0;
  while (k < rounds) {
    total = total + lookup_batch(nq);
    k = k + 1;
  }
  return total;
}
|}

(* Populate the hash table exactly as the program's own hash would. *)
let adretriever_globals seed =
  let rng = Rng.create seed in
  let htab = Array.make 8192 0L in
  let hval = Array.make 8192 0L in
  let keys = Inputs.array_nonzero rng 3000 ~max:1_000_000 in
  Array.iter
    (fun k ->
      let h =
        Int64.to_int (Int64.rem (Int64.add (Int64.mul k 40503L) (Int64.shift_right k 7)) 8192L)
      in
      let rec place i =
        if i < 48 then begin
          let slot = (h + i) mod 8192 in
          if Int64.equal htab.(slot) 0L then begin
            htab.(slot) <- k;
            hval.(slot) <- Int64.rem k 997L
          end
          else place (i + 1)
        end
      in
      place 0)
    keys;
  (* About half the queries are known keys, half are misses — randomly
     interleaved (a strictly alternating pattern would resonate with the
     parity of unrolled loop copies in the branch predictor). *)
  let queries =
    Array.init 2048 (fun _ ->
        if Rng.chance rng 0.5 then keys.(Rng.int rng (Array.length keys))
        else Int64.of_int (1_000_001 + Rng.int rng 1_000_000))
  in
  [ ("htab", htab); ("hval", hval); ("queries", queries) ]

let adretriever =
  {
    Driver.w_name = "adretriever";
    w_source = adretriever_src;
    w_entry = "main";
    w_train = [ spec [ 2048L; 28L ] (adretriever_globals 21L) ];
    w_eval = [ spec [ 2048L; 32L ] (adretriever_globals 22L) ];
  }

(* ------------------------------------------------------------------ *)
(* adfinder                                                            *)

let adfinder_src = {|
module filters;

global ads[8192];
global found[2048];

fn f_budget(a) {
  return (a & 255) > 30;
}

fn f_geo(a, g) {
  return ((a >> 8) & 63) == g;
}

fn f_lang(a, l) {
  let al = (a >> 14) & 15;
  return al == l || al == 0;
}

fn f_quality(a) {
  let q = (a >> 18) & 1023;
  return q * 3 > 500;
}

fn pass_all(a, g, l) {
  if (!f_budget(a)) { return 0; }
  if (!f_geo(a, g)) { return 0; }
  if (!f_lang(a, l)) { return 0; }
  return f_quality(a);
}

module finder;

fn find(n, g, l) {
  let i = 0;
  let outp = 0;
  while (i < n) {
    let a = ads[i];
    if (pass_all(a, g, l)) {
      found[outp % 2048] = i;
      outp = outp + 1;
    }
    i = i + 1;
  }
  return outp;
}

fn main(n, rounds) {
  let total = 0;
  let k = 0;
  while (k < rounds) {
    total = total + find(n, k % 64, k % 16);
    k = k + 1;
  }
  return total;
}
|}

let adfinder_globals seed =
  let rng = Rng.create seed in
  [ ("ads", Inputs.array rng 8192 ~max:0x0FFFFFFF) ]

let adfinder =
  {
    Driver.w_name = "adfinder";
    w_source = adfinder_src;
    w_entry = "main";
    w_train = [ spec [ 8192L; 20L ] (adfinder_globals 31L) ];
    w_eval = [ spec [ 8192L; 24L ] (adfinder_globals 32L) ];
  }

(* ------------------------------------------------------------------ *)
(* hhvm: bytecode interpreter (single module, like a monolithic VM)    *)

let hhvm_src = {|
module hhvm_m;

global code[4096];
global vstack[256];
global heap[1024];

fn arith(op, a, b) {
  if (op == 0) { return a + b; }
  if (op == 1) { return a - b; }
  if (op == 2) { return a * b; }
  if (b == 0) { return 0; }
  return a / b;
}

fn execute(pc_start, steps) {
  let pc = pc_start;
  let sp = 0;
  let acc = 0;
  let n = 0;
  while (n < steps) {
    let ins = code[pc];
    let op = ins & 15;
    let arg = ins >> 4;
    switch (op) {
      case 0: acc = arg; pc = pc + 1; case 1: vstack[sp] = acc; sp = (sp + 1) % 256; pc = pc + 1; case 2: sp = (sp + 255) % 256; acc = vstack[sp]; pc = pc + 1;
      case 3: acc = arith(0, acc, heap[arg % 1024]); pc = pc + 1; case 4: acc = arith(1, acc, arg); pc = pc + 1; case 5: acc = arith(2, acc, 3); pc = pc + 1;
      case 6: heap[arg % 896] = acc; pc = pc + 1; case 7: if (acc % 2 == 0) { pc = arg % 4096; } else { pc = pc + 1; } case 8: acc = heap[arg % 1024]; pc = pc + 1;
      case 9: acc = arith(3, acc, heap[960 + (arg & 3)]); pc = pc + 1;
      default: pc = pc + 1;
    }
    pc = pc % 4096;
    n = n + 1;
  }
  return acc;
}

fn main(steps, rounds) {
  let r = 0;
  let k = 0;
  while (k < rounds) {
    r = r + execute(k % 64, steps);
    k = k + 1;
  }
  return r;
}
|}

(* A bytecode stream biased toward arithmetic and memory ops, with
   occasional branches — interpreter-realistic opcode mix. *)
let hhvm_globals seed =
  let rng = Rng.create seed in
  let code =
    Array.init 4096 (fun i ->
        let r = Rng.int rng 100 in
        let op =
          if r < 14 then 0
          else if r < 24 then 1
          else if r < 34 then 2
          else if r < 52 then 3
          else if r < 64 then 4
          else if r < 72 then 5
          else if r < 82 then 6
          else if r < 86 then 7
          else if r < 92 then 8
          else 9
        in
        let arg = if op = 7 then (i + 17) mod 4096 else Rng.int rng 1024 in
        Int64.of_int ((arg * 16) + op))
  in
  let heap = Inputs.array rng 1024 ~max:1000 in
  (* Slots 960-963 hold the service's configured scaling divisor: constant
     in the data, invisible to the compiler — value-profiling territory. *)
  for i = 960 to 963 do
    heap.(i) <- 9L
  done;
  [ ("code", code); ("heap", heap) ]

let hhvm =
  {
    Driver.w_name = "hhvm";
    w_source = hhvm_src;
    w_entry = "main";
    w_train = [ spec [ 30000L; 10L ] (hhvm_globals 41L) ];
    w_eval = [ spec [ 30000L; 12L ] (hhvm_globals 42L) ];
  }

(* ------------------------------------------------------------------ *)
(* haas: tree-walking evaluator                                        *)

let haas_src = {|
module tree;

global t_op[16384];
global t_left[16384];
global t_right[16384];
global t_val[16384];

fn eval_node(idx, depth) {
  if (depth > 14) { return 1; }
  let op = t_op[idx];
  if (op == 0) { return t_val[idx]; }
  let a = eval_node(t_left[idx], depth + 1);
  if (op == 3) {
    let b = eval_node(t_right[idx], depth + 1);
    if (a > b) { return a; }
    return b;
  }
  let b2 = eval_node(t_right[idx], depth + 1);
  if (op == 1) { return (a + b2) % 65521; }
  if (op == 2) { return a * b2 % 65521; }
  return (a - b2) % 65521;
}

module haas_svc;

fn run_script(root, reps) {
  let s = 0;
  let i = 0;
  while (i < reps) {
    s = s + eval_node(root + i % 8, 0);
    i = i + 1;
  }
  return s;
}

fn main(nroots, rounds) {
  let r = 0;
  let k = 0;
  while (k < rounds) {
    r = r + run_script(k % nroots, 24);
    k = k + 1;
  }
  return r;
}
|}

(* Build a forest where node i's children point strictly forward (no
   cycles): leaves dominate at higher indices. *)
let haas_globals seed =
  let rng = Rng.create seed in
  let n = 16384 in
  let op = Array.make n 0L in
  let left = Array.make n 0L in
  let right = Array.make n 0L in
  let value = Array.make n 0L in
  for i = 0 to n - 1 do
    let leaf = i >= n - 64 || Rng.chance rng 0.42 in
    if leaf then begin
      op.(i) <- 0L;
      value.(i) <- Int64.of_int (Rng.int rng 10_000)
    end
    else begin
      op.(i) <- Int64.of_int (1 + Rng.int rng 3);
      left.(i) <- Int64.of_int (i + 1 + Rng.int rng (min 40 (n - 1 - i)));
      right.(i) <- Int64.of_int (i + 1 + Rng.int rng (min 40 (n - 1 - i)))
    end
  done;
  [ ("t_op", op); ("t_left", left); ("t_right", right); ("t_val", value) ]

let haas =
  {
    Driver.w_name = "haas";
    w_source = haas_src;
    w_entry = "main";
    w_train = [ spec [ 64L; 110L ] (haas_globals 51L) ];
    w_eval = [ spec [ 64L; 128L ] (haas_globals 52L) ];
  }

(* ------------------------------------------------------------------ *)
(* clangish: toy compiler pipeline (client workload, short training)   *)

let clangish_src = {|
module lexer;

global src_chars[16384];
global tokens[16384];
global ast[16384];
global out_code[16384];

fn is_digit(c) { return c >= 48 && c <= 57; }
fn is_alpha(c) { return (c >= 97 && c <= 122) || (c >= 65 && c <= 90); }
fn is_space(c) { return c == 32 || c == 10 || c == 9; }

fn classify(c) {
  if (is_space(c)) { return 0; } if (is_digit(c)) { return 1; } if (is_alpha(c)) { return 2; }
  if (c == 40 || c == 41) { return 3; }
  if (c == 43 || c == 45 || c == 42 || c == 47) { return 4; }
  return 5;
}

fn lex(n) {
  let i = 0;
  let nt = 0;
  while (i < n) {
    let k = classify(src_chars[i]);
    if (k != 0) {
      tokens[nt] = k * 256 + (src_chars[i] & 255);
      nt = nt + 1;
    }
    i = i + 1;
  }
  return nt;
}

module parser_m;

fn tok_kind(t) { return t / 256; }

fn parse(nt) {
  let i = 0;
  let depth = 0;
  let nodes = 0;
  let errors = 0;
  while (i < nt) {
    let k = tok_kind(tokens[i]);
    if (k == 3) {
      let c = tokens[i] & 255;
      if (c == 40) { depth = depth + 1; }
      else {
        if (depth == 0) { errors = errors + 1; }
        else { depth = depth - 1; }
      }
    }
    if (k == 1 || k == 2) {
      ast[nodes] = tokens[i] + depth * 65536;
      nodes = nodes + 1;
    }
    if (k == 4) {
      ast[nodes] = tokens[i];
      nodes = nodes + 1;
    }
    i = i + 1;
  }
  return nodes;
}

module optimizer;

fn fold_pair(a, b) {
  let ka = tok_kind(a % 65536);
  let kb = tok_kind(b % 65536);
  if (ka == 1 && kb == 1) { return 1; }
  return 0;
}

fn optimize(nodes) {
  let i = 0;
  let folded = 0;
  while (i + 1 < nodes) {
    if (fold_pair(ast[i], ast[i + 1])) {
      ast[i] = (ast[i] + ast[i + 1]) % 1000003;
      ast[i + 1] = 0;
      folded = folded + 1;
      i = i + 2;
    } else {
      i = i + 1;
    }
  }
  return folded;
}

module emitter;

fn emit_one(node) {
  let k = tok_kind(node % 65536);
  switch (k) {
    case 1: return node % 256 + 1000;
    case 2: return node % 256 + 2000;
    case 4: return node % 256 + 3000;
    default: return 0;
  }
}

fn emit(nodes) {
  let i = 0;
  let sz = 0;
  while (i < nodes) {
    let c = emit_one(ast[i]);
    if (c != 0) {
      out_code[sz] = c;
      sz = sz + 1;
    }
    i = i + 1;
  }
  return sz;
}

module clang_driver;

fn compile_unit(n) {
  let nt = lex(n);
  let nodes = parse(nt);
  optimize(nodes);
  return emit(nodes);
}

fn main(n, units) {
  let total = 0;
  let u = 0;
  while (u < units) {
    total = total + compile_unit(n);
    u = u + 1;
  }
  return total;
}
|}

let clangish_globals seed =
  let rng = Rng.create seed in
  (* Synthetic "source code": identifiers, numbers, parens, operators. *)
  let chars =
    Array.init 16384 (fun _ ->
        let r = Rng.int rng 100 in
        Int64.of_int
          (if r < 20 then 32 (* space *)
           else if r < 45 then 97 + Rng.int rng 26
           else if r < 70 then 48 + Rng.int rng 10
           else if r < 80 then 40
           else if r < 90 then 41
           else [| 43; 45; 42; 47 |].(Rng.int rng 4)))
  in
  [ ("src_chars", chars) ]

let clangish =
  {
    Driver.w_name = "clangish";
    w_source = clangish_src;
    w_entry = "main";
    (* Deliberately short training run: client workloads lack a long steady
       state, so sampling coverage is thin (§IV.D). *)
    w_train = [ spec [ 16384L; 3L ] (clangish_globals 61L) ];
    w_eval = [ spec [ 16384L; 40L ] (clangish_globals 62L) ];
  }

(* ------------------------------------------------------------------ *)

let server_workloads = [ adranker; adretriever; adfinder; hhvm; haas ]
let all = server_workloads @ [ clangish ]

let find name = List.find_opt (fun w -> String.equal w.Driver.w_name name) all

let vecop_example = {|
module vecop;

global va[1024];
global vb[1024];
global vout[1024];

fn scalar_add(a, b) { return a + b; }
fn scalar_sub(a, b) { return a - b; }

fn scalar_op(a, b, is_add) {
  if (is_add) { return scalar_add(a, b); }
  return scalar_sub(a, b);
}

fn add_vector_head(n) {
  let i = 0;
  while (i < n) {
    vout[i] = scalar_op(va[i], vb[i], 1);
    i = i + 1;
  }
  return 0;
}

fn sub_vector_head(n) {
  let i = 0;
  while (i < n) {
    vout[i] = scalar_op(va[i], vb[i], 0);
    i = i + 1;
  }
  return 0;
}

fn main(n, rounds) {
  let k = 0;
  let sum = 0;
  while (k < rounds) {
    add_vector_head(n);
    sum = sum + vout[k % n];
    sub_vector_head(n / 4);
    sum = sum - vout[k % (n / 4)];
    k = k + 1;
  }
  return sum;
}
|}
