type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let m = Int64.shift_right_logical (next64 t) 1 in
  Int64.to_int (Int64.rem m (Int64.of_int bound))

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let m = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float m /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t p = float t < p

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
