lib/support/fnv.mli:
