lib/support/fnv.ml: Char Int64 String
