lib/support/vec.mli:
