lib/support/heap.ml: List Vec
