lib/support/rng.mli:
