lib/support/heap.mli:
