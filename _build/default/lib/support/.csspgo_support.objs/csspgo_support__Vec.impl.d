lib/support/vec.ml: Array List Obj Printf
