(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component of the simulation (workload inputs, sampling
    jitter, skid) draws from an explicit [Rng.t] so whole experiments are
    reproducible from a single seed. *)

type t

val create : int64 -> t
(** Seeded generator. Equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val next64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
