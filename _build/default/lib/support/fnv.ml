type t = int64

let init = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let string h s =
  let h = ref h in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !h

let int h x = int64 h (Int64.of_int x)

let hash_string s = string init s

let combine a b = int64 (int64 init a) b
