type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length t = t.len
let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i t.len)

let get t i =
  check t i;
  Array.unsafe_get t.data i

let set t i x =
  check t i;
  Array.unsafe_set t.data i x

let ensure_capacity t n =
  let cap = Array.length t.data in
  if n > cap then begin
    let new_cap = max n (max 8 (2 * cap)) in
    (* [t.len > 0] guarantees a valid filler element exists. *)
    let fill = if t.len > 0 then t.data.(0) else Obj.magic 0 in
    let data = Array.make new_cap fill in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  if t.len = Array.length t.data then begin
    (* Grow using [x] as the filler so we never fabricate values. *)
    let new_cap = max 8 (2 * t.len) in
    let data = Array.make new_cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let last t =
  if t.len = 0 then invalid_arg "Vec.last: empty";
  t.data.(t.len - 1)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let map f t =
  let r = create () in
  ensure_capacity r t.len;
  iter (fun x -> push r (f x)) t;
  r

let fold_left f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let for_all p t = not (exists (fun x -> not (p x)) t)

let find_opt p t =
  let rec go i =
    if i >= t.len then None
    else if p t.data.(i) then Some t.data.(i)
    else go (i + 1)
  in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = Array.copy a; len = Array.length a }

let copy t = { data = Array.copy t.data; len = t.len }

let append dst src = iter (push dst) src

let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    if p x then begin
      t.data.(!j) <- x;
      incr j
    end
  done;
  t.len <- !j

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
