(** FNV-1a 64-bit hashing. Used for function GUIDs (like LLVM's MD5-based
    GUIDs) and for pseudo-probe CFG checksums. *)

type t = int64

val init : t
val string : t -> string -> t
val int : t -> int -> t
val int64 : t -> int64 -> t

val hash_string : string -> t
(** One-shot convenience: [string init s]. *)

val combine : t -> t -> t
(** Mix two digests into one; order-sensitive. *)
