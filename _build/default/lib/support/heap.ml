type 'a t = { cmp : 'a -> 'a -> int; data : 'a Vec.t }

let create cmp = { cmp; data = Vec.create () }

let length t = Vec.length t.data
let is_empty t = Vec.is_empty t.data

let swap t i j =
  let tmp = Vec.get t.data i in
  Vec.set t.data i (Vec.get t.data j);
  Vec.set t.data j tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (Vec.get t.data i) (Vec.get t.data parent) > 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = length t in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && t.cmp (Vec.get t.data l) (Vec.get t.data !best) > 0 then best := l;
  if r < n && t.cmp (Vec.get t.data r) (Vec.get t.data !best) > 0 then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let push t x =
  Vec.push t.data x;
  sift_up t (length t - 1)

let pop t =
  if is_empty t then None
  else begin
    let top = Vec.get t.data 0 in
    let last = Vec.pop t.data in
    if not (is_empty t) then begin
      Vec.set t.data 0 last;
      sift_down t 0
    end;
    Some top
  end

let peek t = if is_empty t then None else Some (Vec.get t.data 0)

let of_list cmp l =
  let t = create cmp in
  List.iter (push t) l;
  t

let to_sorted_list t =
  let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []
