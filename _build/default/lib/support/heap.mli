(** Mutable binary max-heap parameterized by a comparison function.
    [compare a b > 0] means [a] has higher priority than [b]. *)

type 'a t

val create : ('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the highest-priority element. *)

val peek : 'a t -> 'a option
val of_list : ('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
(** Drains the heap; highest priority first. *)
