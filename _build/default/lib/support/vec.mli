(** Growable array, in the style of [Dynarray] (which is unavailable before
    OCaml 5.2). Indices are 0-based; out-of-range accesses raise
    [Invalid_argument]. *)

type 'a t

val create : unit -> 'a t

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Remove and return the last element. Raises [Invalid_argument] on empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val map : ('a -> 'b) -> 'a t -> 'b t
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val find_opt : ('a -> bool) -> 'a t -> 'a option
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val copy : 'a t -> 'a t

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes all elements of [src] onto [dst]. *)

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
