(** CFG cleanup: removes unreachable blocks, forwards empty jump-only blocks,
    and merges single-successor/single-predecessor chains. Profile counts are
    preserved (a merged chain keeps the max of the two counts; forwarding
    re-routes edge counts).

    Probe semantics: a block whose only instructions are pseudo-probes is
    *not* empty — forwarding it would change the probes' execution frequency —
    so it is kept unless the probe can be proven frequency-preserving (single
    predecessor). This is one of the small costs of pseudo-instrumentation
    (§III.A). *)

val run : config:Config.t -> Csspgo_ir.Func.t -> bool
(** Returns true when anything changed. Runs to a fixpoint internally. *)
