(** Local constant folding, copy propagation and algebraic simplification.
    Works block-at-a-time (no global dataflow); also folds conditional
    branches and switches whose condition becomes a known constant, which
    is the main source of CFG edges disappearing under optimization. *)

val run : Csspgo_ir.Func.t -> bool
