module Ir = Csspgo_ir
module B = Ir.Block
module I = Ir.Instr

let merge_once (f : Ir.Func.t) =
  let labels = Ir.Func.labels f in
  (* Find the first mergeable pair (deterministic: ascending label order). *)
  let pair =
    List.find_map
      (fun l1 ->
        match Ir.Func.find_block f l1 with
        | None -> None
        | Some b1 ->
            List.find_map
              (fun l2 ->
                if l2 <= l1 || l2 = f.Ir.Func.entry then None
                else
                  match Ir.Func.find_block f l2 with
                  | Some b2 when B.body_equal b1 b2 -> Some (b1, b2)
                  | _ -> None)
              labels)
      labels
  in
  match pair with
  | None -> false
  | Some (keep, drop) ->
      keep.B.count <- Int64.add keep.B.count drop.B.count;
      if Array.length keep.B.edge_counts = Array.length drop.B.edge_counts then
        Array.iteri
          (fun i c -> keep.B.edge_counts.(i) <- Int64.add keep.B.edge_counts.(i) c)
          drop.B.edge_counts;
      Ir.Func.iter_blocks
        (fun p ->
          p.B.term <-
            I.map_term_labels (fun l -> if l = drop.B.id then keep.B.id else l) p.B.term)
        f;
      if f.Ir.Func.entry = drop.B.id then f.Ir.Func.entry <- keep.B.id;
      Ir.Func.remove_block f drop.B.id;
      true

let run f =
  let changed = ref false in
  while merge_once f do
    changed := true
  done;
  !changed
