open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr
module B = Ir.Block

let body_size f (loop : Ir.Cfg.loop) =
  Hashtbl.fold
    (fun l () acc ->
      match Ir.Func.find_block f l with
      | Some b -> acc + Vec.length b.B.instrs
      | None -> acc)
    loop.Ir.Cfg.body 0

(* A loop is worth replicating when it is small and (with a profile) hot. *)
let should_unroll ~(config : Config.t) (f : Ir.Func.t) (loop : Ir.Cfg.loop) =
  let n_blocks = Hashtbl.length loop.Ir.Cfg.body in
  let size = body_size f loop in
  if f.Ir.Func.annotated then
    (* Profile-driven budget: a known-hot loop affords a bigger body
       (post-inline loops carry extra blocks from call splitting). *)
    let header = Ir.Func.block f loop.Ir.Cfg.header in
    n_blocks <= 6 && size <= 30
    && Int64.compare header.B.count config.Config.hot_callsite_count >= 0
  else n_blocks <= 3 && size <= 12

let replicate (f : Ir.Func.t) (loop : Ir.Cfg.loop) =
  let header = loop.Ir.Cfg.header in
  let in_loop l = Hashtbl.mem loop.Ir.Cfg.body l in
  let mapping = Hashtbl.create 8 in
  Hashtbl.iter
    (fun l () -> Hashtbl.replace mapping l (Ir.Func.fresh_block f).B.id)
    loop.Ir.Cfg.body;
  let clone_of l = Hashtbl.find mapping l in
  (* Build clone bodies. Within the clone, in-loop targets map to clones,
     except the back edge to the header which returns to the original. *)
  Hashtbl.iter
    (fun l () ->
      let orig = Ir.Func.block f l in
      let clone = Ir.Func.block f (clone_of l) in
      Vec.iter (fun i -> Vec.push clone.B.instrs (I.copy i)) orig.B.instrs;
      let term =
        I.map_term_labels
          (fun t -> if t = header then header else if in_loop t then clone_of t else t)
          orig.B.term
      in
      B.set_term clone term;
      (* Halve the profile between the two copies. *)
      let half = Int64.div orig.B.count 2L in
      clone.B.count <- half;
      orig.B.count <- Int64.sub orig.B.count half;
      clone.B.edge_counts <- Array.map (fun c -> Int64.div c 2L) orig.B.edge_counts;
      Array.iteri
        (fun i c -> orig.B.edge_counts.(i) <- Int64.sub c (Int64.div c 2L))
        orig.B.edge_counts)
    loop.Ir.Cfg.body;
  (* Original back edges now enter the clone of the header. *)
  Hashtbl.iter
    (fun l () ->
      let orig = Ir.Func.block f l in
      orig.B.term <-
        I.map_term_labels (fun t -> if t = header then clone_of header else t) orig.B.term)
    loop.Ir.Cfg.body

let run ~config (f : Ir.Func.t) =
  let loops = Ir.Cfg.natural_loops f in
  (* Innermost-ish heuristic: smaller loops first; skip nested once a loop
     containing them was transformed this round. *)
  let loops =
    List.sort
      (fun a b -> compare (Hashtbl.length a.Ir.Cfg.body) (Hashtbl.length b.Ir.Cfg.body))
      loops
  in
  let touched = Hashtbl.create 8 in
  let changed = ref false in
  List.iter
    (fun (loop : Ir.Cfg.loop) ->
      let overlaps =
        Hashtbl.fold (fun l () acc -> acc || Hashtbl.mem touched l) loop.Ir.Cfg.body false
      in
      if (not overlaps) && should_unroll ~config f loop then begin
        replicate f loop;
        Hashtbl.iter (fun l () -> Hashtbl.replace touched l ()) loop.Ir.Cfg.body;
        changed := true
      end)
    loops;
  !changed
