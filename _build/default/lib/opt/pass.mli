(** Pass manager: runs the optimization pipeline over a whole program.
    The pipeline mirrors a -O2 compiler: local cleanup, inlining, loop
    optimizations, if-conversion, tail merging, DCE. *)

val optimize_func : config:Config.t -> Csspgo_ir.Func.t -> unit
(** The per-function (post-inline) part of the pipeline. *)

val optimize : config:Config.t -> Csspgo_ir.Program.t -> unit
(** Full pipeline, including inlining and dead-function elimination.
    Raises [Failure] if [verify_between_passes] is set and a pass breaks
    the IR. *)
