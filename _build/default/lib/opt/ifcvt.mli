(** If-conversion: turns small branch diamonds into straight-line code with
    [Select] instructions, eliminating a conditional branch. Arms are capped
    at three real instructions, so speculatively executing both sides costs
    at most a couple of cycles against the saved branch (and its potential
    misprediction) — cheap enough to convert unconditionally.

    Blocks containing instrumentation counters are never converted (the
    counter must stay conditional — one way traditional instrumentation
    inhibits optimization). Pseudo-probes block conversion only under
    [probes_strong]; the default fine-tuned mode hoists the arm probes into
    the head block, trading a little context accuracy for zero run-time
    overhead, exactly as §III.A describes for LLVM's if-convert tuning. *)

val run : config:Config.t -> Csspgo_ir.Func.t -> bool
