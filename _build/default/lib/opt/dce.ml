open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr
module B = Ir.Block

let liveness (f : Ir.Func.t) =
  let n = f.Ir.Func.nregs in
  let live_in = Hashtbl.create 16 in
  let live_out = Hashtbl.create 16 in
  let labels = Ir.Func.labels f in
  List.iter
    (fun l ->
      Hashtbl.replace live_in l (Array.make n false);
      Hashtbl.replace live_out l (Array.make n false))
    labels;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let b = Ir.Func.block f l in
        let out = Hashtbl.find live_out l in
        (* out = union of successors' in *)
        List.iter
          (fun s ->
            match Hashtbl.find_opt live_in s with
            | Some sin ->
                Array.iteri
                  (fun r v ->
                    if v && not out.(r) then begin
                      out.(r) <- true;
                      changed := true
                    end)
                  sin
            | None -> ())
          (B.successors b);
        (* in = (out - defs) + uses, walking instructions backward *)
        let cur = Array.copy out in
        List.iter (fun r -> if r < n then cur.(r) <- true) (I.term_uses b.B.term);
        for idx = Vec.length b.B.instrs - 1 downto 0 do
          let i = Vec.get b.B.instrs idx in
          List.iter (fun r -> if r < n then cur.(r) <- false) (I.defs i.I.op);
          List.iter (fun r -> if r < n then cur.(r) <- true) (I.uses i.I.op)
        done;
        let inb = Hashtbl.find live_in l in
        Array.iteri
          (fun r v ->
            if v && not inb.(r) then begin
              inb.(r) <- true;
              changed := true
            end)
          cur)
      labels
  done;
  live_out

let run (f : Ir.Func.t) =
  let live_out = liveness f in
  let changed = ref false in
  Ir.Func.iter_blocks
    (fun b ->
      let live = Array.copy (Hashtbl.find live_out b.B.id) in
      List.iter
        (fun r -> if r < Array.length live then live.(r) <- true)
        (I.term_uses b.B.term);
      (* Walk backward, marking dead pure instructions. *)
      let keep = Array.make (Vec.length b.B.instrs) true in
      for idx = Vec.length b.B.instrs - 1 downto 0 do
        let i = Vec.get b.B.instrs idx in
        let defs = I.defs i.I.op in
        let dead =
          (not (I.has_side_effect i.I.op))
          && defs <> []
          && List.for_all (fun r -> r >= Array.length live || not live.(r)) defs
        in
        if dead then begin
          keep.(idx) <- false;
          changed := true
        end
        else begin
          List.iter (fun r -> if r < Array.length live then live.(r) <- false) defs;
          List.iter (fun r -> if r < Array.length live then live.(r) <- true) (I.uses i.I.op)
        end
      done;
      if !changed then begin
        let kept = Vec.create () in
        Vec.iteri (fun idx i -> if keep.(idx) then Vec.push kept i) b.B.instrs;
        Vec.clear b.B.instrs;
        Vec.iter (Vec.push b.B.instrs) kept
      end)
    f;
  !changed
