(** Optimization pipeline configuration.

    The probe knobs implement the paper's "flexible framework" trade-off:
    pseudo-probes always block code *merge* (their different ids make merged
    blocks non-identical), while the fine-tuned default leaves if-conversion
    and empty-block forwarding unblocked to keep run-time overhead near zero
    (§III.A). Setting [probes_strong] makes probes full optimization
    barriers — higher profile accuracy, higher overhead. *)

type inline_mode =
  | Inline_none
  | Inline_static        (** size-heuristic only (no profile) *)
  | Inline_profile       (** bottom-up, hotness-driven, intra-module *)

type t = {
  opt_level : int;              (** 0 = almost nothing, 2 = full pipeline *)
  inline_mode : inline_mode;
  inline_budget : int;          (** max estimated size growth per caller *)
  inline_callee_limit : int;    (** max callee instr count considered *)
  hot_callsite_count : int64;   (** hotness threshold for profile inlining *)
  enable_tail_merge : bool;
  enable_licm : bool;
  enable_ifcvt : bool;
  enable_tail_dup : bool;
  enable_unroll : bool;
  unroll_factor : int;
  probes_strong : bool;         (** probes block if-convert & forwarding too *)
  cross_module_inline : bool;   (** ThinLTO-style importing: inlining across
                                    modules is allowed, but the *profile* of an
                                    imported callee is still scaled, never
                                    adjusted (§III.B) *)
  verify_between_passes : bool;
}

val o0 : t
val o2 : t
(** Default server pipeline: profile-aware inlining, all passes on. *)

val o2_nopgo : t
(** Like [o2] but with static inlining only (profiling build baseline). *)
