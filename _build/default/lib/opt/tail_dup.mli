(** Tail duplication: small join blocks are copied into their predecessors,
    removing a jump on each path at the cost of code growth. Another *code
    duplication* hazard for DWARF correlation; probe copies keep their id
    and are summed by probe correlation. *)

val run : config:Config.t -> Csspgo_ir.Func.t -> bool
