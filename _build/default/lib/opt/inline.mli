(** Function inlining.

    [inline_at] performs the mechanical transform for a single call site:
    callee blocks are cloned into the caller with registers remapped, the
    call block split, parameters bound by moves, and returns rewritten to
    jumps to the continuation. Debug locations of cloned instructions are
    extended with the callsite frame (function, line, callsite-probe id), so
    both DWARF-style and probe-based correlation can see through inlining.

    Profile maintenance uses *context-insensitive scaling*: cloned block
    counts are the callee's own profile scaled by callsite-count /
    callee-entry-count. This is precisely the post-inline inaccuracy of
    §II.B / Fig. 3a; the CSSPGO driver instead re-annotates inlined bodies
    from the context-sensitive profile slice (Fig. 3b) using the returned
    block mapping.

    [run] is the in-compiler bottom-up inliner (LLVM CGSCC-style): cost =
    callee instruction count, benefit = callsite hotness when a profile is
    present. It only sees callees in the same module unless
    [cross_module_inline] is set — the ThinLTO-style limitation. *)

type result = {
  block_map : (Csspgo_ir.Types.label * Csspgo_ir.Types.label) list;
      (** callee label -> new caller label, for post-inline re-annotation *)
  continuation : Csspgo_ir.Types.label;
}

val callee_size : Csspgo_ir.Func.t -> int
(** Instruction count excluding pseudo-probes (they cost nothing). *)

val inline_at :
  Csspgo_ir.Program.t ->
  caller:Csspgo_ir.Func.t ->
  block:Csspgo_ir.Types.label ->
  index:int ->
  result option
(** Inline the call at instruction [index] of [block]. Returns [None] when
    the instruction is not a call to a known function, or the callee is the
    caller itself (direct recursion is never inlined). *)

val run : config:Config.t -> Csspgo_ir.Program.t -> bool

val drop_dead_functions : Csspgo_ir.Program.t -> string list
(** Remove functions unreachable from [main] in the call graph (post-inline
    cleanup that shrinks code size). Returns the dropped names. *)
