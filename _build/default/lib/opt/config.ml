type inline_mode = Inline_none | Inline_static | Inline_profile

type t = {
  opt_level : int;
  inline_mode : inline_mode;
  inline_budget : int;
  inline_callee_limit : int;
  hot_callsite_count : int64;
  enable_tail_merge : bool;
  enable_licm : bool;
  enable_ifcvt : bool;
  enable_tail_dup : bool;
  enable_unroll : bool;
  unroll_factor : int;
  probes_strong : bool;
  cross_module_inline : bool;
  verify_between_passes : bool;
}

let o0 =
  {
    opt_level = 0;
    inline_mode = Inline_none;
    inline_budget = 0;
    inline_callee_limit = 0;
    hot_callsite_count = Int64.max_int;
    enable_tail_merge = false;
    enable_licm = false;
    enable_ifcvt = false;
    enable_tail_dup = false;
    enable_unroll = false;
    unroll_factor = 1;
    probes_strong = false;
    cross_module_inline = false;
    verify_between_passes = false;
  }

let o2 =
  {
    opt_level = 2;
    inline_mode = Inline_profile;
    inline_budget = 500;
    inline_callee_limit = 120;
    hot_callsite_count = 32L;
    enable_tail_merge = true;
    enable_licm = true;
    enable_ifcvt = true;
    enable_tail_dup = true;
    enable_unroll = true;
    unroll_factor = 2;
    probes_strong = false;
    cross_module_inline = true;
    verify_between_passes = false;
  }

let o2_nopgo = { o2 with inline_mode = Inline_static }
