open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr
module B = Ir.Block

let remove_unreachable (f : Ir.Func.t) =
  let reach = Ir.Cfg.reachable f in
  let dead = List.filter (fun l -> not (Hashtbl.mem reach l)) (Ir.Func.labels f) in
  List.iter (Ir.Func.remove_block f) dead;
  dead <> []

(* A block is forwardable when it is a pure [Jmp] trampoline. Blocks holding
   probes are only forwardable with a single predecessor (frequency is then
   provably unchanged, and we sink the probes into the target). *)
let try_forward (f : Ir.Func.t) ~(config : Config.t) =
  let preds = Ir.Cfg.preds f in
  let changed = ref false in
  let pred_count l = List.length (Option.value (Hashtbl.find_opt preds l) ~default:[]) in
  Ir.Func.iter_blocks
    (fun b ->
      match b.B.term with
      | I.Jmp target when b.B.id <> f.Ir.Func.entry && target <> b.B.id ->
          let only_probes = Vec.for_all I.is_probe b.B.instrs in
          let n_instrs = Vec.length b.B.instrs in
          let forwardable =
            (n_instrs = 0)
            || (only_probes && (not config.Config.probes_strong) && pred_count b.B.id = 1)
          in
          if forwardable then begin
            (* Sink surviving probes into the target block's front. *)
            if n_instrs > 0 then begin
              let tgt = Ir.Func.block f target in
              let merged = Vec.create () in
              Vec.iter (Vec.push merged) b.B.instrs;
              Vec.iter (Vec.push merged) tgt.B.instrs;
              Vec.clear tgt.B.instrs;
              Vec.iter (Vec.push tgt.B.instrs) merged
            end;
            (* Retarget all predecessors to the destination. *)
            Ir.Func.iter_blocks
              (fun p ->
                if p.B.id <> b.B.id then begin
                  let new_term =
                    I.map_term_labels (fun l -> if l = b.B.id then target else l) p.B.term
                  in
                  if new_term <> p.B.term then begin
                    p.B.term <- new_term;
                    changed := true
                  end
                end)
              f;
            if f.Ir.Func.entry = b.B.id then f.Ir.Func.entry <- target
          end
      | _ -> ())
    f;
  if !changed then ignore (remove_unreachable f);
  !changed

(* Merge A -> B when A's only successor is B and B's only predecessor is A. *)
let try_merge_chains (f : Ir.Func.t) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let preds = Ir.Cfg.preds f in
    let candidate =
      List.find_map
        (fun l ->
          match Ir.Func.find_block f l with
          | Some a -> (
              match a.B.term with
              | I.Jmp b_l when b_l <> l -> (
                  match Hashtbl.find_opt preds b_l with
                  | Some [ p ] when p = l && b_l <> f.Ir.Func.entry -> Some (a, b_l)
                  | _ -> None)
              | _ -> None)
          | None -> None)
        (Ir.Func.labels f)
    in
    match candidate with
    | Some (a, b_l) ->
        let b = Ir.Func.block f b_l in
        Vec.iter (Vec.push a.B.instrs) b.B.instrs;
        a.B.term <- b.B.term;
        a.B.count <- (if Int64.compare a.B.count b.B.count > 0 then a.B.count else b.B.count);
        a.B.edge_counts <- Array.copy b.B.edge_counts;
        Ir.Func.remove_block f b_l;
        changed := true;
        continue_ := true
    | None -> ()
  done;
  !changed

(* Fold conditional branches whose targets coincide. *)
let fold_trivial_branches (f : Ir.Func.t) =
  let changed = ref false in
  Ir.Func.iter_blocks
    (fun b ->
      match b.B.term with
      | I.Br (_, t1, t2) when t1 = t2 ->
          let count = Array.fold_left Int64.add 0L b.B.edge_counts in
          B.set_term b (I.Jmp t1);
          if Array.length b.B.edge_counts = 1 then b.B.edge_counts.(0) <- count;
          changed := true
      | I.Switch (_, cases, default) when List.for_all (fun (_, l) -> l = default) cases ->
          let count = Array.fold_left Int64.add 0L b.B.edge_counts in
          B.set_term b (I.Jmp default);
          if Array.length b.B.edge_counts = 1 then b.B.edge_counts.(0) <- count;
          changed := true
      | _ -> ())
    f;
  !changed

let run ~config (f : Ir.Func.t) =
  let any = ref false in
  let continue_ = ref true in
  while !continue_ do
    let c1 = remove_unreachable f in
    let c2 = fold_trivial_branches f in
    let c3 = try_forward f ~config in
    let c4 = try_merge_chains f in
    let changed = c1 || c2 || c3 || c4 in
    any := !any || changed;
    continue_ := changed
  done;
  !any
