(** Loop-invariant code motion. Hoists pure computations (and loads from
    arrays not written inside the loop) into a dedicated preheader.

    Hoisted instructions keep their original debug location — the *code
    motion* hazard of §III.A: the instruction now executes with preheader
    frequency while its line claims loop frequency, so DWARF correlation's
    max-heuristic misestimates whenever every instruction of a line is
    hoisted. Pseudo-probes are unaffected (probes are never hoisted). *)

val run : Csspgo_ir.Func.t -> bool
