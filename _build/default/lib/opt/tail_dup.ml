open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr
module B = Ir.Block

(* Candidate: a non-entry block with >= 2 predecessors, a short body, and a
   [Ret] or [Jmp] terminator (no branching tails — keeps the transform
   simple and profitable). *)
let candidate ~(config : Config.t) (f : Ir.Func.t) preds (b : B.t) =
  let nb_preds = List.length (Option.value (Hashtbl.find_opt preds b.B.id) ~default:[]) in
  let small_enough =
    if f.Ir.Func.annotated then
      Vec.length b.B.instrs <= 4
      && Int64.compare b.B.count config.Config.hot_callsite_count >= 0
    else Vec.length b.B.instrs <= 2
  in
  b.B.id <> f.Ir.Func.entry
  && nb_preds >= 2
  && small_enough
  && (match b.B.term with I.Ret _ | I.Jmp _ -> true | _ -> false)
  (* Don't duplicate into self (self-loop). *)
  && not (List.mem b.B.id (B.successors b))

let duplicate (f : Ir.Func.t) preds (b : B.t) =
  let ps = Option.value (Hashtbl.find_opt preds b.B.id) ~default:[] in
  let share = if ps = [] then 0L else Int64.div b.B.count (Int64.of_int (List.length ps)) in
  List.iteri
    (fun k p_l ->
      if k > 0 then begin
        (* First predecessor keeps the original block; others get clones. *)
        let p = Ir.Func.block f p_l in
        let clone = Ir.Func.fresh_block f in
        Vec.iter (fun i -> Vec.push clone.B.instrs (I.copy i)) b.B.instrs;
        B.set_term clone b.B.term;
        clone.B.count <- share;
        b.B.count <- Int64.sub b.B.count share;
        clone.B.edge_counts <- Array.map (fun c -> Int64.div c 2L) b.B.edge_counts;
        p.B.term <-
          I.map_term_labels (fun t -> if t = b.B.id then clone.B.id else t) p.B.term
      end)
    ps

let run ~config (f : Ir.Func.t) =
  let preds = Ir.Cfg.preds f in
  let cands =
    Ir.Func.fold_blocks
      (fun acc b -> if candidate ~config f preds b then b :: acc else acc)
      [] f
  in
  List.iter (duplicate f preds) cands;
  cands <> []
