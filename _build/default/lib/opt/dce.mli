(** Dead code elimination driven by global (whole-function) liveness.
    Removes pure instructions whose results are never used; side-effecting
    instructions (stores, calls, probes, counters) are always kept —
    pseudo-probes may not be dropped, as that would change their observed
    frequency (§III.A). *)

val liveness : Csspgo_ir.Func.t -> (Csspgo_ir.Types.label, bool array) Hashtbl.t
(** Live-out sets per block, indexed by register. *)

val run : Csspgo_ir.Func.t -> bool
