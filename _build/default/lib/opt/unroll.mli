(** Loop unrolling by body replication. The loop body (all blocks of a small
    natural loop) is cloned once; original back edges enter the clone and the
    clone's back edges return to the original header, so every exit check is
    preserved and the transformation is valid for any trip count. Two
    iterations then execute per back-edge round trip, halving taken branches
    on the hot path once layout straightens the chain.

    This is the canonical *code duplication* hazard of §III.A: cloned
    instructions keep their (line, discriminator), so DWARF correlation's
    max-heuristic reports roughly half the true line frequency, while cloned
    pseudo-probes keep their id and probe correlation sums the copies. *)

val run : config:Config.t -> Csspgo_ir.Func.t -> bool
