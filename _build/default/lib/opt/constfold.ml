open Csspgo_support
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr
module B = Ir.Block

type value = Const of int64 | Copy of T.reg

let run (f : Ir.Func.t) =
  let changed = ref false in
  Ir.Func.iter_blocks
    (fun b ->
      let env : (T.reg, value) Hashtbl.t = Hashtbl.create 16 in
      let invalidate r =
        Hashtbl.remove env r;
        (* Drop copies that referenced [r]. *)
        let stale =
          Hashtbl.fold
            (fun k v acc -> match v with Copy s when s = r -> k :: acc | _ -> acc)
            env []
        in
        List.iter (Hashtbl.remove env) stale
      in
      let subst (o : T.operand) =
        match o with
        | T.Imm _ -> o
        | T.Reg r -> (
            match Hashtbl.find_opt env r with
            | Some (Const v) ->
                changed := true;
                T.Imm v
            | Some (Copy s) ->
                changed := true;
                T.Reg s
            | None -> o)
      in
      Vec.iter
        (fun (i : I.t) ->
          let op' =
            match i.I.op with
            | I.Bin (op, d, a, b') -> I.Bin (op, d, subst a, subst b')
            | I.Cmp (op, d, a, b') -> I.Cmp (op, d, subst a, subst b')
            | I.Select (d, c, a, b') -> (
                match Hashtbl.find_opt env c with
                | Some (Const v) ->
                    changed := true;
                    I.Mov (d, subst (if Int64.equal v 0L then b' else a))
                | Some (Copy s) -> I.Select (d, s, subst a, subst b')
                | None -> I.Select (d, c, subst a, subst b'))
            | I.Mov (d, a) -> I.Mov (d, subst a)
            | I.Load (d, g, idx) -> I.Load (d, g, subst idx)
            | I.Store (g, idx, v) -> I.Store (g, subst idx, subst v)
            | I.Call c -> I.Call { c with I.c_args = List.map subst c.I.c_args }
            | (I.Probe _ | I.Counter_inc _ | I.Val_prof _) as op -> op
          in
          (* Fold constants and algebraic identities. *)
          let op' =
            match op' with
            | I.Bin (op, d, T.Imm a, T.Imm b') ->
                changed := true;
                I.Mov (d, T.Imm (T.eval_binop op a b'))
            | I.Bin (T.Add, d, a, T.Imm 0L) | I.Bin (T.Sub, d, a, T.Imm 0L) ->
                changed := true;
                I.Mov (d, a)
            | I.Bin (T.Mul, d, a, T.Imm 1L) ->
                changed := true;
                I.Mov (d, a)
            | I.Bin (T.Mul, d, _, T.Imm 0L) ->
                changed := true;
                I.Mov (d, T.Imm 0L)
            | I.Cmp (op, d, T.Imm a, T.Imm b') ->
                changed := true;
                I.Mov (d, T.Imm (T.eval_cmpop op a b'))
            | op -> op
          in
          if op' <> i.I.op then begin
            i.I.op <- op';
            changed := true
          end;
          (* Update the local environment. *)
          (match op' with
          | I.Mov (d, T.Imm v) ->
              invalidate d;
              Hashtbl.replace env d (Const v)
          | I.Mov (d, T.Reg s) when d <> s ->
              invalidate d;
              Hashtbl.replace env d (Copy s)
          | _ -> List.iter invalidate (I.defs op'));
          (* Calls can't clobber registers in this IR (no globals-in-regs),
             so no extra invalidation is needed. *)
          ())
        b.B.instrs;
      (* Fold the terminator when its register is a known constant. *)
      (match b.B.term with
      | I.Br (c, t1, t2) -> (
          match Hashtbl.find_opt env c with
          | Some (Const v) ->
              let taken = if Int64.equal v 0L then t2 else t1 in
              let count = Array.fold_left Int64.add 0L b.B.edge_counts in
              B.set_term b (I.Jmp taken);
              if Array.length b.B.edge_counts = 1 then b.B.edge_counts.(0) <- count;
              changed := true
          | Some (Copy s) ->
              b.B.term <- I.Br (s, t1, t2);
              changed := true
          | None -> ())
      | I.Switch (v, cases, default) -> (
          let v' = match v with
            | T.Reg r -> (
                match Hashtbl.find_opt env r with
                | Some (Const c) -> T.Imm c
                | Some (Copy s) -> T.Reg s
                | None -> v)
            | T.Imm _ -> v
          in
          match v' with
          | T.Imm c ->
              let target =
                match List.assoc_opt c cases with Some l -> l | None -> default
              in
              let count = Array.fold_left Int64.add 0L b.B.edge_counts in
              B.set_term b (I.Jmp target);
              if Array.length b.B.edge_counts = 1 then b.B.edge_counts.(0) <- count;
              changed := true
          | T.Reg _ when v' <> v ->
              b.B.term <- I.Switch (v', cases, default);
              changed := true
          | _ -> ())
      | I.Ret (T.Reg r) -> (
          match Hashtbl.find_opt env r with
          | Some (Const v) ->
              b.B.term <- I.Ret (T.Imm v);
              changed := true
          | Some (Copy s) ->
              b.B.term <- I.Ret (T.Reg s);
              changed := true
          | None -> ())
      | _ -> ()))
    f;
  !changed
