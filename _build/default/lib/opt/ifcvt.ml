open Csspgo_support
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr
module B = Ir.Block

(* An arm is convertible when it consists of at most [max_arm] pure ALU
   instructions (plus pseudo-probes when allowed) and jumps to the join. *)
let arm_ok ~allow_probes (b : B.t) =
  let n_real = ref 0 in
  let ok = ref true in
  Vec.iter
    (fun (i : I.t) ->
      match i.I.op with
      | I.Bin _ | I.Cmp _ | I.Select _ | I.Mov _ -> incr n_real
      | I.Probe _ -> if not allow_probes then ok := false
      | I.Load _ | I.Store _ | I.Call _ | I.Counter_inc _ | I.Val_prof _ -> ok := false)
    b.B.instrs;
  !ok && !n_real <= 3

(* Clone an arm's computation into [dst], redirecting defs to fresh temps.
   Returns the final value map: original reg -> operand holding its arm value. *)
let splice_arm (f : Ir.Func.t) (dst : B.t) (arm : B.t) =
  let remap : (T.reg, T.reg) Hashtbl.t = Hashtbl.create 4 in
  let subst (o : T.operand) =
    match o with
    | T.Reg r -> ( match Hashtbl.find_opt remap r with Some t -> T.Reg t | None -> o)
    | T.Imm _ -> o
  in
  Vec.iter
    (fun (i : I.t) ->
      match i.I.op with
      | I.Probe _ -> Vec.push dst.B.instrs (I.copy i)
      | I.Bin (op, d, a, b') ->
          let t = Ir.Func.fresh_reg f in
          Vec.push dst.B.instrs (I.mk (I.Bin (op, t, subst a, subst b')) i.I.dloc);
          Hashtbl.replace remap d t
      | I.Cmp (op, d, a, b') ->
          let t = Ir.Func.fresh_reg f in
          Vec.push dst.B.instrs (I.mk (I.Cmp (op, t, subst a, subst b')) i.I.dloc);
          Hashtbl.replace remap d t
      | I.Select (d, c, a, b') ->
          let t = Ir.Func.fresh_reg f in
          let c' = match subst (T.Reg c) with T.Reg r -> r | T.Imm _ -> c in
          Vec.push dst.B.instrs (I.mk (I.Select (t, c', subst a, subst b')) i.I.dloc);
          Hashtbl.replace remap d t
      | I.Mov (d, a) ->
          let t = Ir.Func.fresh_reg f in
          Vec.push dst.B.instrs (I.mk (I.Mov (t, subst a)) i.I.dloc);
          Hashtbl.replace remap d t
      | I.Load _ | I.Store _ | I.Call _ | I.Counter_inc _ | I.Val_prof _ -> assert false)
    arm.B.instrs;
  remap

let written_regs (b : B.t) =
  let out = ref [] in
  Vec.iter
    (fun (i : I.t) ->
      List.iter (fun r -> if not (List.mem r !out) then out := r :: !out) (I.defs i.I.op))
    b.B.instrs;
  List.rev !out

let try_convert ~(config : Config.t) (f : Ir.Func.t) preds (a : B.t) =
  match a.B.term with
  | I.Br (c, t_l, f_l) when t_l <> f_l -> (
      let allow_probes = not config.Config.probes_strong in
      let single_pred l =
        match Hashtbl.find_opt preds l with Some [ _ ] -> true | _ -> false
      in
      let bt = Ir.Func.block f t_l and bf = Ir.Func.block f f_l in
      let join =
        match (bt.B.term, bf.B.term) with
        | I.Jmp jt, I.Jmp jf when jt = jf && jt <> t_l && jt <> f_l -> Some jt
        | _ -> None
      in
      match join with
      | Some j
        when single_pred t_l && single_pred f_l
             && arm_ok ~allow_probes bt && arm_ok ~allow_probes bf ->
          let then_map = splice_arm f a bt in
          let else_map = splice_arm f a bf in
          let writes =
            List.sort_uniq compare (written_regs bt @ written_regs bf)
          in
          (* The selects overwrite registers; protect the condition if it is
             among them. *)
          let c =
            if List.mem c writes then begin
              let tmp = Ir.Func.fresh_reg f in
              Vec.push a.B.instrs (I.mk (I.Mov (tmp, T.Reg c)) (B.first_dloc a));
              tmp
            end
            else c
          in
          List.iter
            (fun r ->
              let tv =
                match Hashtbl.find_opt then_map r with Some t -> T.Reg t | None -> T.Reg r
              in
              let ev =
                match Hashtbl.find_opt else_map r with Some t -> T.Reg t | None -> T.Reg r
              in
              Vec.push a.B.instrs (I.mk (I.Select (r, c, tv, ev)) (B.first_dloc a)))
            writes;
          B.set_term a (I.Jmp j);
          if Array.length a.B.edge_counts = 1 then a.B.edge_counts.(0) <- a.B.count;
          true
      | _ -> false)
  | _ -> false

let run ~config (f : Ir.Func.t) =
  let preds = Ir.Cfg.preds f in
  let changed = ref false in
  Ir.Func.iter_blocks (fun a -> if try_convert ~config f preds a then changed := true) f;
  if !changed then ignore (Simplify.run ~config f);
  !changed
