module Ir = Csspgo_ir

let src = Logs.Src.create "csspgo.opt" ~doc:"optimization pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

let verify_if ~(config : Config.t) p stage =
  if config.Config.verify_between_passes then
    match Ir.Verify.program p with
    | [] -> ()
    | errs ->
        let msg =
          Format.asprintf "@[<v>after %s:@ %a@]" stage
            (Format.pp_print_list Ir.Verify.pp_error)
            errs
        in
        failwith msg

let optimize_func ~(config : Config.t) (f : Ir.Func.t) =
  if config.Config.opt_level >= 1 then begin
    ignore (Constfold.run f);
    ignore (Simplify.run ~config f)
  end;
  if config.Config.opt_level >= 2 then begin
    if config.Config.enable_licm then ignore (Licm.run f);
    if config.Config.enable_unroll then ignore (Unroll.run ~config f);
    (* If-conversion must precede tail duplication: duplicating a join block
       into the arms destroys the diamond pattern. *)
    if config.Config.enable_ifcvt then ignore (Ifcvt.run ~config f);
    if config.Config.enable_tail_dup then ignore (Tail_dup.run ~config f);
    ignore (Constfold.run f);
    ignore (Simplify.run ~config f);
    if config.Config.enable_tail_merge then ignore (Tail_merge.run f);
    ignore (Dce.run f);
    ignore (Simplify.run ~config f);
    (* Passes maintain counts only approximately; re-infer a consistent
       profile for codegen (edge flows re-derived from block counts). *)
    if f.Ir.Func.annotated then Csspgo_inference.Infer.infer_func f
  end

let optimize ~(config : Config.t) (p : Ir.Program.t) =
  (* Even at -O0 the lowering junk blocks must go. *)
  Ir.Program.iter_funcs (fun f -> ignore (Simplify.run ~config f)) p;
  verify_if ~config p "initial simplify";
  if config.Config.opt_level >= 1 then begin
    Ir.Program.iter_funcs
      (fun f ->
        ignore (Constfold.run f);
        ignore (Simplify.run ~config f))
      p;
    verify_if ~config p "early cleanup";
    if Inline.run ~config p then begin
      let dropped = Inline.drop_dead_functions p in
      if dropped <> [] then
        Log.debug (fun m -> m "dropped %d fully-inlined functions" (List.length dropped))
    end;
    verify_if ~config p "inlining";
    Ir.Program.iter_funcs (optimize_func ~config) p;
    verify_if ~config p "function pipeline"
  end
