open Csspgo_support
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr
module B = Ir.Block

let run (f : Ir.Func.t) =
  let changed = ref false in
  let loops = Ir.Cfg.natural_loops f in
  List.iter
    (fun (loop : Ir.Cfg.loop) ->
      let in_loop l = Hashtbl.mem loop.Ir.Cfg.body l in
      (* Registers defined anywhere in the loop, and loop memory behaviour. *)
      let defined_in_loop = Hashtbl.create 32 in
      let def_count = Hashtbl.create 32 in
      let stored_arrays = Hashtbl.create 4 in
      let has_call = ref false in
      Hashtbl.iter
        (fun l () ->
          match Ir.Func.find_block f l with
          | None -> ()
          | Some b ->
              Vec.iter
                (fun (i : I.t) ->
                  List.iter
                    (fun r ->
                      Hashtbl.replace defined_in_loop r ();
                      Hashtbl.replace def_count r
                        (1 + Option.value (Hashtbl.find_opt def_count r) ~default:0))
                    (I.defs i.I.op);
                  match i.I.op with
                  | I.Store (g, _, _) -> Hashtbl.replace stored_arrays g ()
                  | I.Call _ -> has_call := true
                  | _ -> ())
                b.B.instrs)
        loop.Ir.Cfg.body;
      (* Live registers at loop boundaries, to keep non-SSA hoisting sound. *)
      let live_out = Dce.liveness f in
      let live_into_header =
        (* regs used in the loop before (or without) being defined: approximate
           with live-out of all predecessors outside the loop. *)
        let acc = Array.make f.Ir.Func.nregs false in
        let preds = Ir.Cfg.preds f in
        List.iter
          (fun p ->
            if not (in_loop p) then
              match Hashtbl.find_opt live_out p with
              | Some a -> Array.iteri (fun r v -> if v then acc.(r) <- true) a
              | None -> ())
          (Option.value (Hashtbl.find_opt preds loop.Ir.Cfg.header) ~default:[]);
        acc
      in
      let live_after_exit =
        let acc = Array.make f.Ir.Func.nregs false in
        Hashtbl.iter
          (fun l () ->
            match Ir.Func.find_block f l with
            | None -> ()
            | Some b ->
                List.iter
                  (fun s ->
                    if not (in_loop s) then
                      (* live-in of s ≈ live-out of this loop block minus... use
                         live-out of the exiting block as a safe over-approx. *)
                      match Hashtbl.find_opt live_out l with
                      | Some a -> Array.iteri (fun r v -> if v then acc.(r) <- true) a
                      | None -> ())
                  (B.successors b))
          loop.Ir.Cfg.body;
        acc
      in
      let invariant_reg r = not (Hashtbl.mem defined_in_loop r) in
      let invariant_operand = function T.Imm _ -> true | T.Reg r -> invariant_reg r in
      let preheader = ref None in
      let get_preheader () =
        match !preheader with
        | Some p -> p
        | None ->
            let p = Ir.Func.fresh_block f in
            B.set_term p (I.Jmp loop.Ir.Cfg.header);
            (* Retarget all loop-external edges into the header through p. *)
            Ir.Func.iter_blocks
              (fun blk ->
                if blk.B.id <> p.B.id && not (in_loop blk.B.id) then
                  blk.B.term <-
                    I.map_term_labels
                      (fun l -> if l = loop.Ir.Cfg.header then p.B.id else l)
                      blk.B.term)
              f;
            if f.Ir.Func.entry = loop.Ir.Cfg.header then f.Ir.Func.entry <- p.B.id;
            let header_b = Ir.Func.block f loop.Ir.Cfg.header in
            let latch_counts =
              List.fold_left
                (fun acc latch ->
                  match Ir.Func.find_block f latch with
                  | Some lb -> (
                      match Ir.Cfg.edge_index lb loop.Ir.Cfg.header with
                      | Some i when i < Array.length lb.B.edge_counts ->
                          Int64.add acc lb.B.edge_counts.(i)
                      | _ -> acc)
                  | None -> acc)
                0L loop.Ir.Cfg.latches
            in
            p.B.count <- Int64.max 0L (Int64.sub header_b.B.count latch_counts);
            if Array.length p.B.edge_counts = 1 then p.B.edge_counts.(0) <- p.B.count;
            preheader := Some p;
            p
      in
      let progress = ref true in
      while !progress do
        progress := false;
        Hashtbl.iter
          (fun l () ->
            match Ir.Func.find_block f l with
            | None -> ()
            | Some b ->
                let hoisted = ref [] in
                Vec.iteri
                  (fun idx (i : I.t) ->
                    let hoistable =
                      match i.I.op with
                      | I.Bin (_, d, a, b') ->
                          invariant_operand a && invariant_operand b'
                          && Hashtbl.find_opt def_count d = Some 1
                          && (d >= Array.length live_into_header || not live_into_header.(d))
                          && (d >= Array.length live_after_exit || not live_after_exit.(d))
                      | I.Load (d, g, idx_op) ->
                          (not (Hashtbl.mem stored_arrays g))
                          && (not !has_call)
                          && invariant_operand idx_op
                          && Hashtbl.find_opt def_count d = Some 1
                          && (d >= Array.length live_into_header || not live_into_header.(d))
                          && (d >= Array.length live_after_exit || not live_after_exit.(d))
                      | _ -> false
                    in
                    if hoistable then hoisted := idx :: !hoisted)
                  b.B.instrs;
                if !hoisted <> [] then begin
                  let p = get_preheader () in
                  (* Move in original order; [hoisted] is collected reversed. *)
                  let idxs = List.rev !hoisted in
                  let moved = List.map (Vec.get b.B.instrs) idxs in
                  let idx_set = Hashtbl.create 4 in
                  List.iter (fun i -> Hashtbl.replace idx_set i ()) idxs;
                  let kept = Vec.create () in
                  Vec.iteri
                    (fun idx i -> if not (Hashtbl.mem idx_set idx) then Vec.push kept i)
                    b.B.instrs;
                  Vec.clear b.B.instrs;
                  Vec.iter (Vec.push b.B.instrs) kept;
                  List.iter
                    (fun (i : I.t) ->
                      Vec.push p.B.instrs i;
                      (* The moved def is now outside the loop. *)
                      List.iter
                        (fun r ->
                          Hashtbl.remove defined_in_loop r;
                          Hashtbl.remove def_count r)
                        (I.defs i.I.op))
                    moved;
                  changed := true;
                  progress := true
                end)
          loop.Ir.Cfg.body
      done)
    loops;
  !changed
