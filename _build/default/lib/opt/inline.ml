open Csspgo_support
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr
module B = Ir.Block
module D = Ir.Dloc

type result = {
  block_map : (T.label * T.label) list;
  continuation : T.label;
}

let callee_size (f : Ir.Func.t) =
  Ir.Func.fold_blocks
    (fun acc b ->
      acc
      + Vec.fold_left
          (fun n (i : I.t) -> match i.I.op with I.Probe _ -> n | _ -> n + 1)
          0 b.B.instrs)
    0 f

let remap_operand off (o : T.operand) =
  match o with T.Reg r -> T.Reg (r + off) | T.Imm _ -> o

let remap_opcode off (op : I.opcode) : I.opcode =
  let ro = remap_operand off in
  match op with
  | I.Bin (o, d, a, b) -> I.Bin (o, d + off, ro a, ro b)
  | I.Cmp (o, d, a, b) -> I.Cmp (o, d + off, ro a, ro b)
  | I.Select (d, c, a, b) -> I.Select (d + off, c + off, ro a, ro b)
  | I.Mov (d, a) -> I.Mov (d + off, ro a)
  | I.Load (d, g, i) -> I.Load (d + off, g, ro i)
  | I.Store (g, i, v) -> I.Store (g, ro i, ro v)
  | I.Call c ->
      I.Call
        {
          c with
          I.c_ret = Option.map (fun r -> r + off) c.I.c_ret;
          c_args = List.map ro c.I.c_args;
        }
  | (I.Probe _ | I.Counter_inc _) as op -> op
  | I.Val_prof (site, r) -> I.Val_prof (site, r + off)

(* Compose the inline chain: the callsite frame is derived from the call
   instruction's own location, so chains nest correctly when an already
   inlined call is inlined again. *)
let extend_dloc ~(call_dloc : D.t) ~(caller : Ir.Func.t) ~(cs_probe : int) (d : D.t) : D.t =
  let frame =
    if D.is_none call_dloc then
      { D.cs_func = caller.Ir.Func.guid; cs_line = 0; cs_disc = 0; cs_probe }
    else
      {
        D.cs_func = call_dloc.D.origin;
        cs_line = call_dloc.D.line;
        cs_disc = call_dloc.D.disc;
        cs_probe;
      }
  in
  let d = if D.is_none d then { d with D.origin = d.D.origin } else d in
  { d with D.inlined_at = d.D.inlined_at @ (frame :: call_dloc.D.inlined_at) }

let inline_at p ~(caller : Ir.Func.t) ~block ~index =
  match Ir.Func.find_block caller block with
  | None -> None
  | Some b -> (
      if index >= Vec.length b.B.instrs then None
      else
        let call_instr = Vec.get b.B.instrs index in
        match call_instr.I.op with
        | I.Call { c_ret; c_callee; c_args; c_probe } -> (
            match Ir.Program.find_func p c_callee with
            | None -> None
            | Some callee when String.equal callee.Ir.Func.name caller.Ir.Func.name -> None
            | Some callee ->
                let off = caller.Ir.Func.nregs in
                caller.Ir.Func.nregs <- caller.Ir.Func.nregs + callee.Ir.Func.nregs;
                let call_dloc = call_instr.I.dloc in
                (* Split the call block: instructions after the call move to
                   the continuation, which inherits the terminator. *)
                let cont = Ir.Func.fresh_block caller in
                for i = index + 1 to Vec.length b.B.instrs - 1 do
                  Vec.push cont.B.instrs (Vec.get b.B.instrs i)
                done;
                cont.B.term <- b.B.term;
                cont.B.count <- b.B.count;
                cont.B.edge_counts <- Array.copy b.B.edge_counts;
                (* Trim the call block to [0, index). *)
                let kept = Vec.create () in
                Vec.iteri (fun i instr -> if i < index then Vec.push kept instr) b.B.instrs;
                Vec.clear b.B.instrs;
                Vec.iter (Vec.push b.B.instrs) kept;
                (* Bind parameters. *)
                List.iteri
                  (fun i param ->
                    let arg = try List.nth c_args i with _ -> T.Imm 0L in
                    Vec.push b.B.instrs (I.mk (I.Mov (param + off, arg)) call_dloc))
                  callee.Ir.Func.params;
                (* Clone callee blocks. *)
                let mapping = Hashtbl.create 16 in
                List.iter
                  (fun l -> Hashtbl.replace mapping l (Ir.Func.fresh_block caller).B.id)
                  (Ir.Func.labels callee);
                let scale num den v =
                  if Int64.equal den 0L then 0L
                  else Int64.div (Int64.mul v num) den
                in
                let callsite_count = b.B.count in
                let callee_entry = Ir.Func.entry_count callee in
                Ir.Func.iter_blocks
                  (fun cb ->
                    let nb = Ir.Func.block caller (Hashtbl.find mapping cb.B.id) in
                    Vec.iter
                      (fun (ci : I.t) ->
                        let op = remap_opcode off ci.I.op in
                        let dloc = extend_dloc ~call_dloc ~caller ~cs_probe:c_probe ci.I.dloc in
                        Vec.push nb.B.instrs (I.mk op dloc))
                      cb.B.instrs;
                    let term =
                      match cb.B.term with
                      | I.Ret v ->
                          (match c_ret with
                          | Some d ->
                              Vec.push nb.B.instrs
                                (I.mk (I.Mov (d, remap_operand off v))
                                   (extend_dloc ~call_dloc ~caller ~cs_probe:c_probe D.none))
                          | None -> ());
                          I.Jmp cont.B.id
                      | I.Jmp l -> I.Jmp (Hashtbl.find mapping l)
                      | I.Br (c, a, b') ->
                          I.Br (c + off, Hashtbl.find mapping a, Hashtbl.find mapping b')
                      | I.Switch (v, cases, d) ->
                          I.Switch
                            ( remap_operand off v,
                              List.map (fun (k, l) -> (k, Hashtbl.find mapping l)) cases,
                              Hashtbl.find mapping d )
                      | I.Unreachable -> I.Unreachable
                    in
                    B.set_term nb term;
                    (* Context-insensitive scaling: the §II.B inaccuracy. *)
                    if caller.Ir.Func.annotated && callee.Ir.Func.annotated then begin
                      nb.B.count <- scale callsite_count callee_entry cb.B.count;
                      Array.iteri
                        (fun i c ->
                          if i < Array.length nb.B.edge_counts then
                            nb.B.edge_counts.(i) <- scale callsite_count callee_entry c)
                        cb.B.edge_counts
                    end)
                  callee;
                (* Jump from the trimmed call block into the inlined entry. *)
                B.set_term b (I.Jmp (Hashtbl.find mapping callee.Ir.Func.entry));
                if Array.length b.B.edge_counts = 1 then b.B.edge_counts.(0) <- b.B.count;
                Some
                  {
                    block_map =
                      List.map (fun l -> (l, Hashtbl.find mapping l)) (Ir.Func.labels callee);
                    continuation = cont.B.id;
                  })
        | _ -> None)

type site = {
  s_block : T.label;
  s_callee : string;
  s_count : int64;
}

let find_sites (f : Ir.Func.t) =
  Ir.Func.fold_blocks
    (fun acc b ->
      let sites = ref [] in
      Vec.iter
        (fun (i : I.t) ->
          match i.I.op with
          | I.Call { c_callee; _ } ->
              sites := { s_block = b.B.id; s_callee = c_callee; s_count = b.B.count } :: !sites
          | _ -> ())
        b.B.instrs;
      acc @ List.rev !sites)
    [] f

(* Find the first call to [callee] in [block] and inline it. Re-scanning by
   index keeps us robust to earlier splits invalidating indices. *)
let inline_first_call p caller ~block ~callee =
  match Ir.Func.find_block caller block with
  | None -> None
  | Some b ->
      let idx = ref None in
      Vec.iteri
        (fun i (instr : I.t) ->
          if !idx = None then
            match instr.I.op with
            | I.Call { c_callee; _ } when String.equal c_callee callee -> idx := Some i
            | _ -> ())
        b.B.instrs;
      Option.bind !idx (fun index -> inline_at p ~caller ~block ~index)

let run ~(config : Config.t) (p : Ir.Program.t) =
  match config.Config.inline_mode with
  | Config.Inline_none -> false
  | mode ->
      let cg = Ir.Callgraph.build p in
      let changed = ref false in
      List.iter
        (fun caller_name ->
          let caller = Ir.Program.func p caller_name in
          let growth = ref 0 in
          (* Hard cap on merged-function size: register pressure (and hence
             spill traffic) grows with function size, so inlining into an
             already huge body is counterproductive. *)
          let caller_base_size = callee_size caller in
          (* Work list of candidate sites; inlining may expose new ones. *)
          let continue_ = ref true in
          while !continue_ do
            continue_ := false;
            let sites =
              List.stable_sort
                (fun a b -> Int64.compare b.s_count a.s_count)
                (find_sites caller)
            in
            let pick =
              List.find_map
                (fun s ->
                  match Ir.Program.find_func p s.s_callee with
                  | None -> None
                  | Some callee ->
                      if String.equal callee.Ir.Func.name caller_name then None
                      else if Ir.Callgraph.is_recursive cg s.s_callee then None
                      else if
                        (not config.Config.cross_module_inline)
                        && not (Ir.Program.same_module p caller_name s.s_callee)
                      then None
                      else
                        let size = callee_size callee in
                        let budget_ok =
                          !growth + size <= config.Config.inline_budget
                          && caller_base_size + !growth + size <= 400
                        in
                        let attractive =
                          match mode with
                          | Config.Inline_static -> size <= 25
                          | Config.Inline_profile ->
                              if caller.Ir.Func.annotated then
                                (* hot: generous; warm: like static -O2;
                                   provably cold: size-optimize. *)
                                if Int64.compare s.s_count config.Config.hot_callsite_count >= 0
                                then size <= config.Config.inline_callee_limit
                                else if Int64.compare s.s_count 0L > 0 then size <= 25
                                else size <= 5
                              else size <= 25
                          | Config.Inline_none -> false
                        in
                        if budget_ok && attractive then Some (s, size) else None)
                sites
            in
            match pick with
            | Some (s, size) -> (
                match inline_first_call p caller ~block:s.s_block ~callee:s.s_callee with
                | Some _ ->
                    growth := !growth + size;
                    changed := true;
                    continue_ := true
                | None -> ())
            | None -> ()
          done)
        (Ir.Callgraph.bottom_up cg);
      !changed

let drop_dead_functions (p : Ir.Program.t) =
  let cg = Ir.Callgraph.build p in
  let reachable = Hashtbl.create 64 in
  let rec mark name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      List.iter mark (Ir.Callgraph.callees cg name)
    end
  in
  if Ir.Program.find_func p p.Ir.Program.main <> None then mark p.Ir.Program.main;
  let dead =
    List.filter (fun n -> not (Hashtbl.mem reachable n)) (Ir.Program.func_names p)
  in
  List.iter (fun n -> Hashtbl.remove p.Ir.Program.funcs n) dead;
  dead
