(** Tail merging: blocks with identical instruction sequences (modulo debug
    locations) and identical terminators are collapsed into one, and all
    predecessors re-routed.

    This is the canonical *code merge* hazard of §III.A: the surviving block
    keeps only one set of debug locations, so DWARF-based correlation
    attributes the combined count to one source location. Pseudo-probes
    block the merge structurally — probe ids differ between the candidate
    blocks, so their bodies never compare equal. *)

val run : Csspgo_ir.Func.t -> bool
