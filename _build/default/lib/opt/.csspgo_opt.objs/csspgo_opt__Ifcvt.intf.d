lib/opt/ifcvt.mli: Config Csspgo_ir
