lib/opt/dce.mli: Csspgo_ir Hashtbl
