lib/opt/inline.mli: Config Csspgo_ir
