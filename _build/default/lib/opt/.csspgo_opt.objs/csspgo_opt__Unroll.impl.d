lib/opt/unroll.ml: Array Config Csspgo_ir Csspgo_support Hashtbl Int64 List Vec
