lib/opt/inline.ml: Array Config Csspgo_ir Csspgo_support Hashtbl Int64 List Option String Vec
