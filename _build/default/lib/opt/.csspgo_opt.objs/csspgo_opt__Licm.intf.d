lib/opt/licm.mli: Csspgo_ir
