lib/opt/simplify.mli: Config Csspgo_ir
