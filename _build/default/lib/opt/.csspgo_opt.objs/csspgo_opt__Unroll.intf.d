lib/opt/unroll.mli: Config Csspgo_ir
