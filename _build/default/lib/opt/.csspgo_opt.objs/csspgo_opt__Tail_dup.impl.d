lib/opt/tail_dup.ml: Array Config Csspgo_ir Csspgo_support Hashtbl Int64 List Option Vec
