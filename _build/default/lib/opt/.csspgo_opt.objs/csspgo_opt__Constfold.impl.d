lib/opt/constfold.ml: Array Csspgo_ir Csspgo_support Hashtbl Int64 List Vec
