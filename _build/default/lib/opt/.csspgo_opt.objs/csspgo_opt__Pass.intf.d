lib/opt/pass.mli: Config Csspgo_ir
