lib/opt/pass.ml: Config Constfold Csspgo_inference Csspgo_ir Dce Format Ifcvt Inline Licm List Logs Simplify Tail_dup Tail_merge Unroll
