lib/opt/dce.ml: Array Csspgo_ir Csspgo_support Hashtbl List Vec
