lib/opt/tail_dup.mli: Config Csspgo_ir
