lib/opt/tail_merge.ml: Array Csspgo_ir Int64 List
