lib/opt/licm.ml: Array Csspgo_ir Csspgo_support Dce Hashtbl Int64 List Option Vec
