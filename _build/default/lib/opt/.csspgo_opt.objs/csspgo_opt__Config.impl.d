lib/opt/config.ml: Int64
