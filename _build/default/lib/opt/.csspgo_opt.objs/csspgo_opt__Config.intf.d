lib/opt/config.mli:
