lib/opt/constfold.mli: Csspgo_ir
