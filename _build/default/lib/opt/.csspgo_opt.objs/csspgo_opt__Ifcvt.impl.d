lib/opt/ifcvt.ml: Array Config Csspgo_ir Csspgo_support Hashtbl List Simplify Vec
