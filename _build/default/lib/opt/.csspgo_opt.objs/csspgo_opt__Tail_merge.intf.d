lib/opt/tail_merge.mli: Csspgo_ir
