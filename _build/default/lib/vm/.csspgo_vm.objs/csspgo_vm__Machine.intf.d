lib/vm/machine.mli: Csspgo_codegen Hashtbl
