lib/vm/machine.ml: Array Csspgo_codegen Csspgo_ir Csspgo_support Hashtbl Int64 List Option Printf Rng
