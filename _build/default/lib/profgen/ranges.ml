module Mach = Csspgo_codegen.Mach
module Vm = Csspgo_vm

type agg = {
  range_counts : (int * int, int64) Hashtbl.t;
  branch_counts : (int * int, int64) Hashtbl.t;
}

let bump tbl key n =
  Hashtbl.replace tbl key (Int64.add n (Option.value (Hashtbl.find_opt tbl key) ~default:0L))

let aggregate samples =
  let agg = { range_counts = Hashtbl.create 1024; branch_counts = Hashtbl.create 1024 } in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      let lbr = s.Vm.Machine.s_lbr in
      Array.iter (fun (src, tgt) -> bump agg.branch_counts (src, tgt) 1L) lbr;
      for i = 1 to Array.length lbr - 1 do
        let _, prev_tgt = lbr.(i - 1) in
        let cur_src, _ = lbr.(i) in
        (* A sane range stays within one linear run; discard wrap-arounds
           caused by LBR entries recorded around program shutdown. *)
        if prev_tgt <> 0 && cur_src >= prev_tgt then
          bump agg.range_counts (prev_tgt, cur_src) 1L
      done)
    samples;
  agg

let iter_range_insts (b : Mach.binary) (lo, hi) f =
  let rec go addr steps =
    if steps > 100_000 then ()
    else
      match Mach.inst_at b addr with
      | None -> ()
      | Some inst ->
          if inst.Mach.i_addr <= hi then begin
            f inst;
            match Mach.next_addr b addr with
            | Some next when next > addr -> go next (steps + 1)
            | _ -> ()
          end
  in
  go lo 0

let addr_totals b agg =
  let totals = Hashtbl.create 4096 in
  Hashtbl.iter
    (fun range n ->
      iter_range_insts b range (fun inst -> bump totals inst.Mach.i_addr n))
    agg.range_counts;
  totals
