lib/profgen/dwarf_corr.ml: Array Csspgo_codegen Csspgo_ir Csspgo_profile Format Hashtbl Int64 Ranges
