lib/profgen/ranges.ml: Array Csspgo_codegen Csspgo_vm Hashtbl Int64 List Option
