lib/profgen/ranges.mli: Csspgo_codegen Csspgo_vm Hashtbl
