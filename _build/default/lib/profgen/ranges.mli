(** LBR sample aggregation: consecutive LBR entries bound linear execution
    ranges ([prev.target, cur.source]), which give basic-block-level counts;
    the entries themselves give edge (branch) counts. This is the common
    front half of both AutoFDO and CSSPGO profile generation. *)

module Mach = Csspgo_codegen.Mach

type agg = {
  range_counts : (int * int, int64) Hashtbl.t;  (** [begin, end] inclusive *)
  branch_counts : (int * int, int64) Hashtbl.t; (** (source, target) *)
}

val aggregate : Csspgo_vm.Machine.sample list -> agg

val addr_totals : Mach.binary -> agg -> (int, int64) Hashtbl.t
(** Expand ranges to per-instruction-address execution totals. *)

val iter_range_insts : Mach.binary -> int * int -> (Mach.inst -> unit) -> unit
(** Walk the instructions covered by one range; tolerates ranges whose
    endpoints fall outside the text map (stops walking). *)
