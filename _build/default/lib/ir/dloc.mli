(** Debug locations with inline stacks — the DWARF-like correlation anchors
    used by sampling-based PGO (AutoFDO).

    A location names a source line inside its *origin* function, plus a
    discriminator distinguishing multiple code paths compiled from the same
    line, plus the chain of callsites through which the instruction was
    inlined ([inlined_at], ordered innermost-first; the last entry's
    [cs_func] is the physical containing function). *)

type callsite = {
  cs_func : Guid.t;  (** function containing the callsite *)
  cs_line : int;     (** source line of the callsite within [cs_func] *)
  cs_disc : int;     (** discriminator of the callsite *)
  cs_probe : int;    (** callsite probe id within [cs_func]; 0 when absent *)
}

type t = {
  origin : Guid.t;  (** function the [line] belongs to *)
  line : int;       (** function-relative source line (AutoFDO line offset) *)
  disc : int;       (** DWARF discriminator *)
  inlined_at : callsite list;  (** innermost-first inline chain; [] = not inlined *)
}

val none : t
(** Absent debug info ([origin = 0L], [line = 0]): produced when an
    optimization drops locations. *)

val is_none : t -> bool
val mk : Guid.t -> int -> t
val with_disc : t -> int -> t

val push_inline : t -> callsite -> t
(** [push_inline d cs] records that the instruction carrying [d] was inlined
    through callsite [cs]; [cs] becomes the new outermost frame. *)

val frames : container:Guid.t -> t -> (Guid.t * int * int) list
(** The full inline frame view of a location: innermost-first list of
    [(function, line, probe)] pairs, where [line]/[probe] of frame [i] is the
    callsite in that function at which frame [i-1] was inlined (for the
    innermost frame it is the instruction's own line and 0).
    [container] is the physical function holding the instruction and is used
    for the outermost frame when the location carries no better info. *)

val equal : t -> t -> bool
val equal_callsite : callsite -> callsite -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val pp_callsite : Format.formatter -> callsite -> unit
