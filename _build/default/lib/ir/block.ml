open Types
open Csspgo_support

type t = {
  id : label;
  instrs : Instr.t Vec.t;
  mutable term : Instr.term;
  mutable count : int64;
  mutable edge_counts : int64 array;
}

let mk id =
  { id; instrs = Vec.create (); term = Instr.Unreachable; count = 0L; edge_counts = [||] }

let successors t = Instr.successors t.term

let add t i = Vec.push t.instrs i

let set_term t term =
  t.term <- term;
  let n = List.length (Instr.successors term) in
  if Array.length t.edge_counts <> n then t.edge_counts <- Array.make n 0L

let probe_id t =
  let r = ref 0 in
  Vec.iter
    (fun (i : Instr.t) ->
      match i.op with
      | Instr.Probe p when p.p_kind = Instr.Block_probe && !r = 0 -> r := p.p_id
      | _ -> ())
    t.instrs;
  !r

let first_dloc t =
  match Vec.find_opt (fun (i : Instr.t) -> not (Dloc.is_none i.dloc)) t.instrs with
  | Some i -> i.dloc
  | None -> Dloc.none

let equal_term (a : Instr.term) (b : Instr.term) =
  match (a, b) with
  | Instr.Ret x, Instr.Ret y -> equal_operand x y
  | Instr.Jmp x, Instr.Jmp y -> x = y
  | Instr.Br (c1, a1, b1), Instr.Br (c2, a2, b2) -> c1 = c2 && a1 = a2 && b1 = b2
  | Instr.Switch (v1, c1, d1), Instr.Switch (v2, c2, d2) ->
      equal_operand v1 v2 && d1 = d2
      && List.length c1 = List.length c2
      && List.for_all2 (fun (k1, l1) (k2, l2) -> Int64.equal k1 k2 && l1 = l2) c1 c2
  | Instr.Unreachable, Instr.Unreachable -> true
  | _ -> false

let body_equal a b =
  Vec.length a.instrs = Vec.length b.instrs
  && equal_term a.term b.term
  &&
  let ok = ref true in
  Vec.iteri
    (fun i (ia : Instr.t) ->
      let ib = Vec.get b.instrs i in
      if not (Instr.equal_opcode_modulo_dloc ia.op ib.op) then ok := false)
    a.instrs;
  !ok

let pp fmt t =
  Format.fprintf fmt "bb%d:" t.id;
  if not (Int64.equal t.count 0L) then Format.fprintf fmt "  ; count %Ld" t.count;
  Format.pp_print_newline fmt ();
  Vec.iter (fun i -> Format.fprintf fmt "  %a@." Instr.pp i) t.instrs;
  Format.fprintf fmt "  %a@." Instr.pp_term t.term
