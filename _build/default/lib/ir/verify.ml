open Types
open Csspgo_support

type error = {
  func : string;
  block : label option;
  message : string;
}

let func ?program (f : Func.t) =
  let errs = ref [] in
  let err ?block fmt =
    Format.kasprintf (fun message -> errs := { func = f.Func.name; block; message } :: !errs) fmt
  in
  if Func.find_block f f.Func.entry = None then err "entry bb%d missing" f.Func.entry;
  let probe_ids = Hashtbl.create 16 in
  let check_reg ~block r what =
    if r < 0 || r >= f.Func.nregs then err ~block "%s register r%d out of range (nregs=%d)" what r f.Func.nregs
  in
  let check_operand ~block o what =
    match o with Reg r -> check_reg ~block r what | Imm _ -> ()
  in
  Func.iter_blocks
    (fun b ->
      let bl = b.Block.id in
      Vec.iter
        (fun (i : Instr.t) ->
          List.iter (fun r -> check_reg ~block:bl r "def") (Instr.defs i.Instr.op);
          List.iter (fun r -> check_reg ~block:bl r "use") (Instr.uses i.Instr.op);
          (match i.Instr.op with
          | Instr.Probe p ->
              (* Duplicate probe ids are legal (code duplication clones
                 probes; correlation sums the copies), and probes of other
                 functions appear after inlining. Only ids of native probes
                 can be bounds-checked. *)
              if
                Guid.equal p.Instr.p_func f.Func.guid
                && p.Instr.p_id >= f.Func.next_probe
              then
                err ~block:bl "probe #%d was never allocated (next=%d)" p.Instr.p_id
                  f.Func.next_probe;
              Hashtbl.replace probe_ids p.Instr.p_id ()
          | Instr.Call { c_callee; _ } -> (
              match program with
              | Some p when Program.find_func p c_callee = None ->
                  err ~block:bl "call to unknown function %s" c_callee
              | _ -> ())
          | _ -> ());
          ignore (check_operand : block:label -> operand -> string -> unit))
        b.Block.instrs;
      List.iter (fun r -> check_reg ~block:bl r "terminator") (Instr.term_uses b.Block.term);
      List.iter
        (fun s ->
          if Func.find_block f s = None then err ~block:bl "terminator targets missing bb%d" s)
        (Block.successors b);
      let n_succ = List.length (Block.successors b) in
      if f.Func.annotated && Array.length b.Block.edge_counts <> n_succ then
        err ~block:bl "edge_counts arity %d <> successors %d"
          (Array.length b.Block.edge_counts) n_succ)
    f;
  List.rev !errs

let program p =
  List.concat_map (fun name -> func ~program:p (Program.func p name)) (Program.func_names p)

let pp_error fmt e =
  match e.block with
  | Some b -> Format.fprintf fmt "%s/bb%d: %s" e.func b e.message
  | None -> Format.fprintf fmt "%s: %s" e.func e.message

let check_exn p =
  match program p with
  | [] -> ()
  | errs ->
      let msg = Format.asprintf "@[<v>IR verification failed:@ %a@]"
          (Format.pp_print_list pp_error) errs in
      failwith msg
