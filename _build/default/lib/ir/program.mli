(** A whole program: functions grouped into ThinLTO-style modules, plus
    global arrays. The module partition matters to PGO: the in-compiler
    inliner only sees callees in the same module, reproducing the
    cross-module limitation that the CSSPGO pre-inliner works around. *)

type t = {
  funcs : (string, Func.t) Hashtbl.t;
  mutable globals : (string * int) list;  (** array name, element count *)
  mutable main : string;
}

val mk : unit -> t
val add_func : t -> Func.t -> unit
val func : t -> string -> Func.t
val find_func : t -> string -> Func.t option
val find_func_by_guid : t -> Guid.t -> Func.t option
val func_names : t -> string list
(** Sorted, deterministic. *)

val iter_funcs : (Func.t -> unit) -> t -> unit
val add_global : t -> string -> int -> unit
val global_size : t -> string -> int
val same_module : t -> string -> string -> bool
(** Whether two functions (by name) live in the same compilation module. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
