open Types

let preds f =
  let tbl = Hashtbl.create 16 in
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun s ->
          let cur = Option.value (Hashtbl.find_opt tbl s) ~default:[] in
          Hashtbl.replace tbl s (b.Block.id :: cur))
        (Block.successors b))
    f;
  (* Preserve deterministic order: predecessors in ascending label order. *)
  Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.sort compare v)) tbl;
  tbl

let rpo f =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      (match Func.find_block f l with
      | Some b -> List.iter dfs (Block.successors b)
      | None -> ());
      order := l :: !order
    end
  in
  dfs f.Func.entry;
  !order

let reachable f =
  let tbl = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace tbl l ()) (rpo f);
  tbl

type dom = { idom : (label, label) Hashtbl.t }

let dominators f =
  let order = rpo f in
  let index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index l i) order;
  let pred_tbl = preds f in
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom f.Func.entry f.Func.entry;
  let intersect a b =
    (* Walk up the idom tree until the two fingers meet (CHK algorithm).
       Comparison is on RPO index: larger index = deeper. *)
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> f.Func.entry then begin
          let ps =
            Option.value (Hashtbl.find_opt pred_tbl l) ~default:[]
            |> List.filter (Hashtbl.mem index)
          in
          let processed = List.filter (Hashtbl.mem idom) ps in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idom l <> Some new_idom then begin
                Hashtbl.replace idom l new_idom;
                changed := true
              end
        end)
      order
  done;
  { idom }

let dominates dom a b =
  (* [a] dominates [b]: walk b's idom chain. *)
  let rec go b =
    if a = b then true
    else
      match Hashtbl.find_opt dom.idom b with
      | None -> false
      | Some p -> if p = b then a = b else go p
  in
  go b

type loop = {
  header : label;
  body : (label, unit) Hashtbl.t;
  latches : label list;
}

let natural_loops f =
  let dom = dominators f in
  let pred_tbl = preds f in
  let reach = reachable f in
  (* back edge: l -> h where h dominates l *)
  let back_edges = ref [] in
  Func.iter_blocks
    (fun b ->
      if Hashtbl.mem reach b.Block.id then
        List.iter
          (fun s ->
            if Hashtbl.mem reach s && dominates dom s b.Block.id then
              back_edges := (b.Block.id, s) :: !back_edges)
          (Block.successors b))
    f;
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let cur = Option.value (Hashtbl.find_opt by_header header) ~default:[] in
      Hashtbl.replace by_header header (latch :: cur))
    !back_edges;
  let loops = ref [] in
  Hashtbl.iter
    (fun header latches ->
      let body = Hashtbl.create 8 in
      Hashtbl.replace body header ();
      let rec pull l =
        if not (Hashtbl.mem body l) then begin
          Hashtbl.replace body l ();
          List.iter pull (Option.value (Hashtbl.find_opt pred_tbl l) ~default:[])
        end
      in
      List.iter pull latches;
      loops := { header; body; latches = List.sort compare latches } :: !loops)
    by_header;
  List.sort (fun a b -> compare a.header b.header) !loops

let edge_index b target =
  let rec go i = function
    | [] -> None
    | s :: _ when s = target -> Some i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 (Block.successors b)
