open Types

type probe_kind = Block_probe | Callsite_probe

type probe = { p_id : int; p_kind : probe_kind; p_func : Guid.t }

type opcode =
  | Bin of binop * reg * operand * operand
  | Cmp of cmpop * reg * operand * operand
  | Select of reg * reg * operand * operand
  | Mov of reg * operand
  | Load of reg * string * operand
  | Store of string * operand * operand
  | Call of call
  | Probe of probe
  | Counter_inc of int
  | Val_prof of int * reg

and call = {
  c_ret : reg option;
  c_callee : string;
  c_args : operand list;
  c_probe : int;
}

type t = {
  mutable op : opcode;
  mutable dloc : Dloc.t;
}

type term =
  | Ret of operand
  | Jmp of label
  | Br of reg * label * label
  | Switch of operand * (int64 * label) list * label
  | Unreachable

let mk op dloc = { op; dloc }

let copy t = { op = t.op; dloc = t.dloc }

let successors = function
  | Ret _ | Unreachable -> []
  | Jmp l -> [ l ]
  | Br (_, a, b) -> [ a; b ]
  | Switch (_, cases, default) -> List.map snd cases @ [ default ]

let map_term_labels f = function
  | (Ret _ | Unreachable) as t -> t
  | Jmp l -> Jmp (f l)
  | Br (c, a, b) -> Br (c, f a, f b)
  | Switch (v, cases, d) -> Switch (v, List.map (fun (k, l) -> (k, f l)) cases, f d)

let defs = function
  | Bin (_, d, _, _) | Cmp (_, d, _, _) | Select (d, _, _, _) | Mov (d, _) | Load (d, _, _) ->
      [ d ]
  | Call { c_ret = Some d; _ } -> [ d ]
  | Call { c_ret = None; _ } | Store _ | Probe _ | Counter_inc _ | Val_prof _ -> []

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let uses = function
  | Bin (_, _, a, b) | Cmp (_, _, a, b) -> operand_uses a @ operand_uses b
  | Select (_, c, a, b) -> (c :: operand_uses a) @ operand_uses b
  | Mov (_, a) | Load (_, _, a) -> operand_uses a
  | Store (_, i, v) -> operand_uses i @ operand_uses v
  | Call { c_args; _ } -> List.concat_map operand_uses c_args
  | Probe _ | Counter_inc _ -> []
  | Val_prof (_, r) -> [ r ]

let term_uses = function
  | Ret v -> operand_uses v
  | Jmp _ | Unreachable -> []
  | Br (c, _, _) -> [ c ]
  | Switch (v, _, _) -> operand_uses v

let has_side_effect = function
  | Store _ | Call _ | Probe _ | Counter_inc _ | Val_prof _ -> true
  | Bin _ | Cmp _ | Select _ | Mov _ | Load _ -> false

let is_probe t = match t.op with Probe _ -> true | _ -> false

let equal_call a b =
  a.c_ret = b.c_ret
  && String.equal a.c_callee b.c_callee
  && List.length a.c_args = List.length b.c_args
  && List.for_all2 equal_operand a.c_args b.c_args
  && a.c_probe = b.c_probe

let equal_opcode_modulo_dloc a b =
  match (a, b) with
  | Bin (o1, d1, x1, y1), Bin (o2, d2, x2, y2) ->
      o1 = o2 && d1 = d2 && equal_operand x1 x2 && equal_operand y1 y2
  | Cmp (o1, d1, x1, y1), Cmp (o2, d2, x2, y2) ->
      o1 = o2 && d1 = d2 && equal_operand x1 x2 && equal_operand y1 y2
  | Select (d1, c1, x1, y1), Select (d2, c2, x2, y2) ->
      d1 = d2 && c1 = c2 && equal_operand x1 x2 && equal_operand y1 y2
  | Mov (d1, x1), Mov (d2, x2) -> d1 = d2 && equal_operand x1 x2
  | Load (d1, g1, i1), Load (d2, g2, i2) ->
      d1 = d2 && String.equal g1 g2 && equal_operand i1 i2
  | Store (g1, i1, v1), Store (g2, i2, v2) ->
      String.equal g1 g2 && equal_operand i1 i2 && equal_operand v1 v2
  | Call c1, Call c2 -> equal_call c1 c2
  | Probe p1, Probe p2 ->
      p1.p_id = p2.p_id && p1.p_kind = p2.p_kind && Guid.equal p1.p_func p2.p_func
  | Counter_inc i1, Counter_inc i2 -> i1 = i2
  | Val_prof (s1, r1), Val_prof (s2, r2) -> s1 = s2 && r1 = r2
  | _ -> false

let pp_reg fmt r = Format.fprintf fmt "r%d" r

let pp_op fmt = function
  | Bin (op, d, a, b) ->
      Format.fprintf fmt "%a = %a %a, %a" pp_reg d pp_binop op pp_operand a pp_operand b
  | Cmp (op, d, a, b) ->
      Format.fprintf fmt "%a = cmp.%a %a, %a" pp_reg d pp_cmpop op pp_operand a pp_operand b
  | Select (d, c, a, b) ->
      Format.fprintf fmt "%a = select %a, %a, %a" pp_reg d pp_reg c pp_operand a pp_operand b
  | Mov (d, a) -> Format.fprintf fmt "%a = %a" pp_reg d pp_operand a
  | Load (d, g, i) -> Format.fprintf fmt "%a = load %s[%a]" pp_reg d g pp_operand i
  | Store (g, i, v) -> Format.fprintf fmt "store %s[%a], %a" g pp_operand i pp_operand v
  | Call { c_ret; c_callee; c_args; c_probe } ->
      (match c_ret with
      | Some d -> Format.fprintf fmt "%a = call %s(" pp_reg d c_callee
      | None -> Format.fprintf fmt "call %s(" c_callee);
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
        pp_operand fmt c_args;
      Format.pp_print_string fmt ")";
      if c_probe <> 0 then Format.fprintf fmt " !cs%d" c_probe
  | Probe p ->
      Format.fprintf fmt "pseudoprobe %a #%d%s" Guid.pp p.p_func p.p_id
        (match p.p_kind with Block_probe -> "" | Callsite_probe -> " cs")
  | Counter_inc i -> Format.fprintf fmt "counter.inc #%d" i
  | Val_prof (site, r) -> Format.fprintf fmt "value.profile #%d, %a" site pp_reg r

let pp fmt t =
  pp_op fmt t.op;
  if not (Dloc.is_none t.dloc) then Format.fprintf fmt "  ; %a" Dloc.pp t.dloc

let pp_term fmt = function
  | Ret v -> Format.fprintf fmt "ret %a" pp_operand v
  | Jmp l -> Format.fprintf fmt "jmp bb%d" l
  | Br (c, a, b) -> Format.fprintf fmt "br %a, bb%d, bb%d" pp_reg c a b
  | Switch (v, cases, d) ->
      Format.fprintf fmt "switch %a [" pp_operand v;
      List.iter (fun (k, l) -> Format.fprintf fmt "%Ld->bb%d " k l) cases;
      Format.fprintf fmt "] default bb%d" d
  | Unreachable -> Format.pp_print_string fmt "unreachable"
