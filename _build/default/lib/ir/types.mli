(** Scalar IR building blocks: virtual registers, operands, operators. *)

type reg = int
(** Virtual register index, local to a function. *)

type label = int
(** Basic-block identifier, local to a function. *)

type operand =
  | Reg of reg
  | Imm of int64

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** signed division; division by zero yields 0 in the VM *)
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

val eval_binop : binop -> int64 -> int64 -> int64
val eval_cmpop : cmpop -> int64 -> int64 -> int64
(** Comparison result is 1L / 0L. *)

val pp_operand : Format.formatter -> operand -> unit
val pp_binop : Format.formatter -> binop -> unit
val pp_cmpop : Format.formatter -> cmpop -> unit
val equal_operand : operand -> operand -> bool
