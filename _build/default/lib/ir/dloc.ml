type callsite = {
  cs_func : Guid.t;
  cs_line : int;
  cs_disc : int;
  cs_probe : int;
}

type t = {
  origin : Guid.t;
  line : int;
  disc : int;
  inlined_at : callsite list;
}

let none = { origin = 0L; line = 0; disc = 0; inlined_at = [] }

let is_none t = Guid.equal t.origin 0L && t.line = 0

let mk origin line = { origin; line; disc = 0; inlined_at = [] }

let with_disc t disc = { t with disc }

let push_inline t cs = { t with inlined_at = t.inlined_at @ [ cs ] }

let frames ~container t =
  if is_none t then [ (container, 0, 0) ]
  else
    let inner = (t.origin, t.line, 0) in
    let rest = List.map (fun cs -> (cs.cs_func, cs.cs_line, cs.cs_probe)) t.inlined_at in
    inner :: rest

let equal_callsite a b =
  Guid.equal a.cs_func b.cs_func
  && a.cs_line = b.cs_line && a.cs_disc = b.cs_disc && a.cs_probe = b.cs_probe

let equal a b =
  Guid.equal a.origin b.origin
  && a.line = b.line && a.disc = b.disc
  && List.length a.inlined_at = List.length b.inlined_at
  && List.for_all2 equal_callsite a.inlined_at b.inlined_at

let compare_callsite a b =
  let c = Guid.compare a.cs_func b.cs_func in
  if c <> 0 then c
  else
    let c = compare a.cs_line b.cs_line in
    if c <> 0 then c
    else
      let c = compare a.cs_disc b.cs_disc in
      if c <> 0 then c else compare a.cs_probe b.cs_probe

let compare a b =
  let c = Guid.compare a.origin b.origin in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.disc b.disc in
      if c <> 0 then c
      else List.compare compare_callsite a.inlined_at b.inlined_at

let hash t =
  Hashtbl.hash
    ( t.origin,
      t.line,
      t.disc,
      List.map (fun cs -> (cs.cs_func, cs.cs_line, cs.cs_disc, cs.cs_probe)) t.inlined_at )

let pp_callsite fmt cs =
  Format.fprintf fmt "%a:%d" Guid.pp cs.cs_func cs.cs_line;
  if cs.cs_disc <> 0 then Format.fprintf fmt ".%d" cs.cs_disc;
  if cs.cs_probe <> 0 then Format.fprintf fmt "#%d" cs.cs_probe

let pp fmt t =
  if is_none t then Format.pp_print_string fmt "<none>"
  else begin
    Format.fprintf fmt "%a:%d" Guid.pp t.origin t.line;
    if t.disc <> 0 then Format.fprintf fmt ".%d" t.disc;
    List.iter (fun cs -> Format.fprintf fmt " @%a" pp_callsite cs) t.inlined_at
  end
