(** IR well-formedness checker, run between passes in tests and in the
    pass manager's paranoid mode. *)

type error = {
  func : string;
  block : Types.label option;
  message : string;
}

val func : ?program:Program.t -> Func.t -> error list
(** Checks: entry exists; all terminator targets exist; register indices are
    within [nregs]; probes belong to this function with unique ids; calls
    resolve (when [program] is given); annotated edge-count arrays match
    successor arity. *)

val program : Program.t -> error list
val check_exn : Program.t -> unit
(** Raises [Failure] with a readable report when any error is found. *)

val pp_error : Format.formatter -> error -> unit
