type t = {
  funcs : (string, Func.t) Hashtbl.t;
  mutable globals : (string * int) list;
  mutable main : string;
}

let mk () = { funcs = Hashtbl.create 64; globals = []; main = "main" }

let add_func t f = Hashtbl.replace t.funcs f.Func.name f

let func t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> f
  | None -> invalid_arg ("Program.func: unknown function " ^ name)

let find_func t name = Hashtbl.find_opt t.funcs name

let find_func_by_guid t guid =
  let r = ref None in
  Hashtbl.iter (fun _ f -> if Guid.equal f.Func.guid guid then r := Some f) t.funcs;
  !r

let func_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.funcs [] |> List.sort String.compare

let iter_funcs f t = List.iter (fun name -> f (func t name)) (func_names t)

let add_global t name size = t.globals <- t.globals @ [ (name, size) ]

let global_size t name =
  match List.assoc_opt name t.globals with
  | Some n -> n
  | None -> invalid_arg ("Program.global_size: unknown global " ^ name)

let same_module t a b =
  match (find_func t a, find_func t b) with
  | Some fa, Some fb -> String.equal fa.Func.modname fb.Func.modname
  | _ -> false

let copy t =
  let funcs = Hashtbl.create (Hashtbl.length t.funcs) in
  Hashtbl.iter (fun name f -> Hashtbl.replace funcs name (Func.copy f)) t.funcs;
  { funcs; globals = t.globals; main = t.main }

let pp fmt t =
  List.iter (fun (g, n) -> Format.fprintf fmt "global %s[%d]@." g n) t.globals;
  iter_funcs (fun f -> Func.pp fmt f) t
