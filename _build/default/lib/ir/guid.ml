open Csspgo_support

type t = int64

let of_name = Fnv.hash_string
let equal = Int64.equal
let compare = Int64.compare
let hash x = Int64.to_int x land max_int
let pp fmt t = Format.fprintf fmt "%Lx" t

module Key = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Map = Map.Make (Key)
module Tbl = Hashtbl.Make (Key)
