open Csspgo_support

type t = {
  callee_map : (string, string list) Hashtbl.t;
  caller_map : (string, string list) Hashtbl.t;
  order : string list;  (** bottom-up *)
  recursive : (string, unit) Hashtbl.t;
}

let direct_callees f =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  Func.iter_blocks
    (fun b ->
      Vec.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Call { c_callee; _ } ->
              if not (Hashtbl.mem seen c_callee) then begin
                Hashtbl.replace seen c_callee ();
                out := c_callee :: !out
              end
          | _ -> ())
        b.Block.instrs)
    f;
  List.rev !out

let build p =
  let callee_map = Hashtbl.create 64 in
  let caller_map = Hashtbl.create 64 in
  Program.iter_funcs
    (fun f ->
      let cs = direct_callees f |> List.filter (fun c -> Program.find_func p c <> None) in
      Hashtbl.replace callee_map f.Func.name cs;
      List.iter
        (fun c ->
          let cur = Option.value (Hashtbl.find_opt caller_map c) ~default:[] in
          Hashtbl.replace caller_map c (cur @ [ f.Func.name ]))
        cs)
    p;
  (* Tarjan-style DFS post-order gives bottom-up; mark SCC members recursive. *)
  let names = Program.func_names p in
  let visiting = Hashtbl.create 64 in
  let done_ = Hashtbl.create 64 in
  let recursive = Hashtbl.create 8 in
  let order = ref [] in
  let rec dfs name =
    if Hashtbl.mem done_ name then ()
    else if Hashtbl.mem visiting name then Hashtbl.replace recursive name ()
    else begin
      Hashtbl.replace visiting name ();
      List.iter dfs (Option.value (Hashtbl.find_opt callee_map name) ~default:[]);
      Hashtbl.remove visiting name;
      Hashtbl.replace done_ name ();
      order := name :: !order
    end
  in
  List.iter dfs names;
  (* Also mark mutual recursion: any function reachable from itself. *)
  let reaches_self start =
    let seen = Hashtbl.create 16 in
    let rec go n =
      List.exists
        (fun c ->
          if String.equal c start then true
          else if Hashtbl.mem seen c then false
          else begin
            Hashtbl.replace seen c ();
            go c
          end)
        (Option.value (Hashtbl.find_opt callee_map n) ~default:[])
    in
    go start
  in
  List.iter (fun n -> if reaches_self n then Hashtbl.replace recursive n ()) names;
  { callee_map; caller_map; order = List.rev !order; recursive }

let callees t name = Option.value (Hashtbl.find_opt t.callee_map name) ~default:[]
let callers t name = Option.value (Hashtbl.find_opt t.caller_map name) ~default:[]
let bottom_up t = t.order
let top_down t = List.rev t.order
let is_recursive t name = Hashtbl.mem t.recursive name
