(** Static call graph over a program, with bottom-up (callees before callers)
    and top-down orders. Recursion is handled by breaking cycles at an
    arbitrary deterministic edge. *)

type t

val build : Program.t -> t
val callees : t -> string -> string list
(** Unique callee names, deterministic order. *)

val callers : t -> string -> string list

val bottom_up : t -> string list
(** Every function exactly once; a callee precedes its callers whenever the
    graph is acyclic between them. *)

val top_down : t -> string list
val is_recursive : t -> string -> bool
(** Whether the function participates in a call-graph cycle (including
    self-recursion). *)
