(** IR instructions and block terminators. *)

open Types

type probe_kind =
  | Block_probe     (** counts executions of the enclosing basic block *)
  | Callsite_probe  (** identifies a call site for inline-context tracking *)

type probe = {
  p_id : int;          (** 1-based id, unique within the owning function *)
  p_kind : probe_kind;
  p_func : Guid.t;     (** function the probe was inserted into *)
}

type opcode =
  | Bin of binop * reg * operand * operand
  | Cmp of cmpop * reg * operand * operand
  | Select of reg * reg * operand * operand
      (** [Select (dst, cond, a, b)]: dst := cond <> 0 ? a : b (if-conversion) *)
  | Mov of reg * operand
  | Load of reg * string * operand   (** dst := global_array[idx] *)
  | Store of string * operand * operand  (** global_array[idx] := value *)
  | Call of call
  | Probe of probe              (** pseudo-probe intrinsic: no machine code *)
  | Counter_inc of int          (** instrumentation counter (real machine code) *)
  | Val_prof of int * reg       (** value-profile capture site (instrumentation) *)

and call = {
  c_ret : reg option;
  c_callee : string;
  c_args : operand list;
  c_probe : int;  (** callsite probe id in the containing function; 0 = none *)
}

type t = {
  mutable op : opcode;
  mutable dloc : Dloc.t;
}

type term =
  | Ret of operand
  | Jmp of label
  | Br of reg * label * label  (** non-zero condition takes the first target *)
  | Switch of operand * (int64 * label) list * label  (** cases, default *)
  | Unreachable

val mk : opcode -> Dloc.t -> t
val copy : t -> t

val successors : term -> label list
(** Successor labels in terminator order, without duplicates removed. *)

val map_term_labels : (label -> label) -> term -> term

val defs : opcode -> reg list
(** Registers written by the instruction. *)

val uses : opcode -> reg list
(** Registers read by the instruction. *)

val term_uses : term -> reg list

val has_side_effect : opcode -> bool
(** Stores, calls, probes and counters may not be removed by DCE. *)

val is_probe : t -> bool

val equal_opcode_modulo_dloc : opcode -> opcode -> bool
(** Structural equality ignoring debug info — the notion of "identical code"
    used by tail merging. Probes are compared by id, so blocks carrying
    different probes never compare equal (the optimization-barrier effect of
    pseudo-instrumentation). *)

val pp : Format.formatter -> t -> unit
val pp_term : Format.formatter -> term -> unit
