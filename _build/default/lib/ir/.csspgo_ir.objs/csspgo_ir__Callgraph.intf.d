lib/ir/callgraph.mli: Program
