lib/ir/program.ml: Format Func Guid Hashtbl List String
