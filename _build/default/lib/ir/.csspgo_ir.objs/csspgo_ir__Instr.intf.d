lib/ir/instr.mli: Dloc Format Guid Types
