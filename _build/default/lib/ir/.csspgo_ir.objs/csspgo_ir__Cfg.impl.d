lib/ir/cfg.ml: Block Func Hashtbl List Option Types
