lib/ir/program.mli: Format Func Guid Hashtbl
