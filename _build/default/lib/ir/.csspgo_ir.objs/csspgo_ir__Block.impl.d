lib/ir/block.ml: Array Csspgo_support Dloc Format Instr Int64 List Types Vec
