lib/ir/dloc.ml: Format Guid Hashtbl List
