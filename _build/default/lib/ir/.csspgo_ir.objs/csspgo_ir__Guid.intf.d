lib/ir/guid.mli: Format Hashtbl Map
