lib/ir/block.mli: Csspgo_support Dloc Format Instr Types
