lib/ir/callgraph.ml: Block Csspgo_support Func Hashtbl Instr List Option Program String Vec
