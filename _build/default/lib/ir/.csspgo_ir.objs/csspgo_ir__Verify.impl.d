lib/ir/verify.ml: Array Block Csspgo_support Format Func Guid Hashtbl Instr List Program Types Vec
