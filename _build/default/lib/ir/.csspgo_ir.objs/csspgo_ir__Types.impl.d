lib/ir/types.ml: Format Int64
