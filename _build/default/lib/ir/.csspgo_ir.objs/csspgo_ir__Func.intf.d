lib/ir/func.mli: Block Format Guid Hashtbl Types
