lib/ir/dloc.mli: Format Guid
