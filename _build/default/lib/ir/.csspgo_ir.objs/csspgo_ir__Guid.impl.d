lib/ir/guid.ml: Csspgo_support Fnv Format Hashtbl Int64 Map
