lib/ir/func.ml: Array Block Csspgo_support Format Guid Hashtbl Instr Int64 List Printf Types Vec
