lib/ir/cfg.mli: Block Func Hashtbl Types
