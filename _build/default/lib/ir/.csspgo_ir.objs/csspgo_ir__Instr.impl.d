lib/ir/instr.ml: Dloc Format Guid List String Types
