(** CFG analyses over a function: predecessors, reverse post-order,
    dominators (Cooper–Harvey–Kennedy), and natural loops. All results are
    snapshots — recompute after mutating the CFG. *)

open Types

val preds : Func.t -> (label, label list) Hashtbl.t
(** Predecessor map. Blocks with multiple edges from the same predecessor
    (e.g. both arms of a [Br]) list it once per edge. *)

val rpo : Func.t -> label list
(** Reverse post-order from the entry block; unreachable blocks excluded. *)

val reachable : Func.t -> (label, unit) Hashtbl.t

type dom = {
  idom : (label, label) Hashtbl.t;  (** immediate dominator; entry maps to itself *)
}

val dominators : Func.t -> dom
val dominates : dom -> label -> label -> bool

type loop = {
  header : label;
  body : (label, unit) Hashtbl.t;  (** includes the header *)
  latches : label list;            (** blocks with a back edge to the header *)
}

val natural_loops : Func.t -> loop list
(** One entry per loop header; nested loops appear separately. *)

val edge_index : Block.t -> label -> int option
(** Position of [target] in the block's successor list (first occurrence). *)
