type reg = int
type label = int

type operand =
  | Reg of reg
  | Imm of int64

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

let eval_binop op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if Int64.equal b 0L then 0L else Int64.div a b
  | Rem -> if Int64.equal b 0L then 0L else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)

let eval_cmpop op a b =
  let r =
    match op with
    | Eq -> Int64.equal a b
    | Ne -> not (Int64.equal a b)
    | Lt -> Int64.compare a b < 0
    | Le -> Int64.compare a b <= 0
    | Gt -> Int64.compare a b > 0
    | Ge -> Int64.compare a b >= 0
  in
  if r then 1L else 0L

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm i -> Format.fprintf fmt "%Ld" i

let pp_binop fmt op =
  Format.pp_print_string fmt
    (match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Div -> "div"
    | Rem -> "rem"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Shl -> "shl"
    | Shr -> "shr")

let pp_cmpop fmt op =
  Format.pp_print_string fmt
    (match op with
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Le -> "le"
    | Gt -> "gt"
    | Ge -> "ge")

let equal_operand a b =
  match (a, b) with
  | Reg x, Reg y -> x = y
  | Imm x, Imm y -> Int64.equal x y
  | _ -> false
