(** Basic blocks: a straight-line instruction sequence plus a terminator,
    optionally annotated with a profile count (block frequency) and per-edge
    counts parallel to the terminator's successor list. *)

open Types

type t = {
  id : label;
  instrs : Instr.t Csspgo_support.Vec.t;
  mutable term : Instr.term;
  mutable count : int64;  (** profile count; meaningful when [annotated] *)
  mutable edge_counts : int64 array;
      (** parallel to [Instr.successors term]; [||] when unannotated *)
}

val mk : label -> t
(** Fresh block terminated by [Unreachable]. *)

val successors : t -> label list
val add : t -> Instr.t -> unit
val set_term : t -> Instr.term -> unit
(** Resets [edge_counts] to match the new successor arity (zero-filled if
    previously annotated). *)

val probe_id : t -> int
(** Id of the block probe inside this block, or 0 when none. *)

val first_dloc : t -> Dloc.t
(** Debug location of the first located instruction, or [Dloc.none]. *)

val body_equal : t -> t -> bool
(** Tail-merge equality: same instruction sequence (modulo debug locations)
    and same terminator. *)

val pp : Format.formatter -> t -> unit
