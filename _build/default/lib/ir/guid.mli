(** Global unique identifiers for functions, derived from the function name
    by FNV-1a hashing (mirroring LLVM's name-hash GUIDs used by pseudo-probe
    descriptors and sample profiles). *)

type t = int64

val of_name : string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
