(** Pseudo-probe based flat profile: per function, counts keyed by probe id
    (copies of a duplicated probe are summed at correlation time), callsite
    target counts keyed by callsite-probe id, and the CFG checksum recorded
    when probes were inserted. A checksum mismatch at annotation time means
    the function's CFG changed since profiling (source drift, §III.A) and
    the profile must be rejected for that function. *)

type fentry = {
  mutable fe_total : int64;
  mutable fe_head : int64;
  fe_probes : (int, int64) Hashtbl.t;
  fe_calls : (int, (Csspgo_ir.Guid.t, int64) Hashtbl.t) Hashtbl.t;
  mutable fe_checksum : int64;
}

type t = {
  funcs : fentry Csspgo_ir.Guid.Tbl.t;
  names : string Csspgo_ir.Guid.Tbl.t;
}

val create : unit -> t
val get : t -> Csspgo_ir.Guid.t -> fentry option
val get_or_add : t -> Csspgo_ir.Guid.t -> name:string -> fentry
val add_probe : fentry -> int -> int64 -> unit
val add_call : fentry -> int -> Csspgo_ir.Guid.t -> int64 -> unit
val probe_count : fentry -> int -> int64
val call_counts : fentry -> int -> (Csspgo_ir.Guid.t * int64) list
val total_samples : t -> int64
val pp : Format.formatter -> t -> unit
