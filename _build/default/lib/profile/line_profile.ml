module Ir = Csspgo_ir

type key = int * int

type fentry = {
  mutable fe_total : int64;
  mutable fe_head : int64;
  fe_lines : (key, int64) Hashtbl.t;
  fe_calls : (key, (Ir.Guid.t, int64) Hashtbl.t) Hashtbl.t;
}

type t = {
  funcs : fentry Ir.Guid.Tbl.t;
  names : string Ir.Guid.Tbl.t;
}

let create () = { funcs = Ir.Guid.Tbl.create 64; names = Ir.Guid.Tbl.create 64 }

let get t guid = Ir.Guid.Tbl.find_opt t.funcs guid

let get_or_add t guid ~name =
  match Ir.Guid.Tbl.find_opt t.funcs guid with
  | Some fe -> fe
  | None ->
      let fe =
        {
          fe_total = 0L;
          fe_head = 0L;
          fe_lines = Hashtbl.create 32;
          fe_calls = Hashtbl.create 8;
        }
      in
      Ir.Guid.Tbl.replace t.funcs guid fe;
      Ir.Guid.Tbl.replace t.names guid name;
      fe

let add_line fe key n =
  let cur = Option.value (Hashtbl.find_opt fe.fe_lines key) ~default:0L in
  Hashtbl.replace fe.fe_lines key (Int64.add cur n);
  fe.fe_total <- Int64.add fe.fe_total n

let set_line_max fe key n =
  let cur = Option.value (Hashtbl.find_opt fe.fe_lines key) ~default:0L in
  if Int64.compare n cur > 0 then begin
    Hashtbl.replace fe.fe_lines key n;
    fe.fe_total <- Int64.add fe.fe_total (Int64.sub n cur)
  end

let add_call fe key callee n =
  let tbl =
    match Hashtbl.find_opt fe.fe_calls key with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace fe.fe_calls key tbl;
        tbl
  in
  let cur = Option.value (Hashtbl.find_opt tbl callee) ~default:0L in
  Hashtbl.replace tbl callee (Int64.add cur n)

let line_count fe key = Option.value (Hashtbl.find_opt fe.fe_lines key) ~default:0L

let call_counts fe key =
  match Hashtbl.find_opt fe.fe_calls key with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun g c acc -> (g, c) :: acc) tbl []
      |> List.sort (fun (g1, _) (g2, _) -> Ir.Guid.compare g1 g2)

let total_samples t =
  Ir.Guid.Tbl.fold (fun _ fe acc -> Int64.add acc fe.fe_total) t.funcs 0L

let pp fmt t =
  Ir.Guid.Tbl.iter
    (fun guid fe ->
      let name =
        Option.value (Ir.Guid.Tbl.find_opt t.names guid) ~default:(Format.asprintf "%a" Ir.Guid.pp guid)
      in
      Format.fprintf fmt "%s: total=%Ld head=%Ld@." name fe.fe_total fe.fe_head;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) fe.fe_lines []
      |> List.sort compare
      |> List.iter (fun ((l, d), c) -> Format.fprintf fmt "  %d.%d: %Ld@." l d c))
    t.funcs
