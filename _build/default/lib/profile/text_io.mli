(** Text serialization for profiles, in the spirit of LLVM's text sample
    profiles — human-inspectable, diffable, and stable across versions.

    Formats (one record per line, [#] comments allowed):

    Probe profiles:
    {v
    function <name> guid=<hex> total=<n> head=<n> checksum=<hex>
     probe <id> <count>
     call <site-id> <callee-guid-hex> <count>
    v}

    Context profiles add a context header per node, outermost frame first:
    {v
    context <name> guid=<hex> [inlined]
     frame <func-guid-hex> <site-id>
     ... probe/call records ...
    v}

    Line profiles:
    {v
    function <name> guid=<hex> total=<n> head=<n>
     line <line>.<disc> <count>
     callline <line>.<disc> <callee-guid-hex> <count>
    v} *)

exception Parse_error of string * int  (** message, line number *)

val write_probe : Format.formatter -> Probe_profile.t -> unit
val read_probe : string -> Probe_profile.t

val write_ctx : Format.formatter -> Ctx_profile.t -> unit
val read_ctx : string -> Ctx_profile.t

val write_line : Format.formatter -> Line_profile.t -> unit
val read_line : string -> Line_profile.t

val probe_to_string : Probe_profile.t -> string
val ctx_to_string : Ctx_profile.t -> string
val line_to_string : Line_profile.t -> string
