(** AutoFDO-style flat sample profile: per function, counts keyed by
    (function-relative line, discriminator), plus per-callsite callee target
    counts and a head (entry) count. This is the profile shape produced by
    DWARF-based correlation. *)

type key = int * int  (** line offset, discriminator *)

type fentry = {
  mutable fe_total : int64;  (** sum of all location counts *)
  mutable fe_head : int64;   (** entry count (branches into the function) *)
  fe_lines : (key, int64) Hashtbl.t;
  fe_calls : (key, (Csspgo_ir.Guid.t, int64) Hashtbl.t) Hashtbl.t;
}

type t = {
  funcs : fentry Csspgo_ir.Guid.Tbl.t;
  names : string Csspgo_ir.Guid.Tbl.t;  (** guid -> symbol name, for reports *)
}

val create : unit -> t
val get : t -> Csspgo_ir.Guid.t -> fentry option
val get_or_add : t -> Csspgo_ir.Guid.t -> name:string -> fentry
val add_line : fentry -> key -> int64 -> unit
val set_line_max : fentry -> key -> int64 -> unit
(** AutoFDO max-heuristic: keep the maximum count seen for a location. *)

val add_call : fentry -> key -> Csspgo_ir.Guid.t -> int64 -> unit
val line_count : fentry -> key -> int64
val call_counts : fentry -> key -> (Csspgo_ir.Guid.t * int64) list
val total_samples : t -> int64
val pp : Format.formatter -> t -> unit
