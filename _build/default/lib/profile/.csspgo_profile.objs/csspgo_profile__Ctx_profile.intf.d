lib/profile/ctx_profile.mli: Csspgo_ir Format Hashtbl Probe_profile
