lib/profile/probe_profile.mli: Csspgo_ir Format Hashtbl
