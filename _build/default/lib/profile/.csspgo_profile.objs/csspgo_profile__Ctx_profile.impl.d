lib/profile/ctx_profile.ml: Csspgo_ir Format Hashtbl Int64 List Probe_profile
