lib/profile/probe_profile.ml: Csspgo_ir Format Hashtbl Int64 List Option
