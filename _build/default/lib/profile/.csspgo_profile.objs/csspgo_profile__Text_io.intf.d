lib/profile/text_io.mli: Ctx_profile Format Line_profile Probe_profile
