lib/profile/text_io.ml: Csspgo_ir Ctx_profile Format Hashtbl Int64 Line_profile List Option Printf Probe_profile String
