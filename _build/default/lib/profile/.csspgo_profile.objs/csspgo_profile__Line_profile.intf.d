lib/profile/line_profile.mli: Csspgo_ir Format Hashtbl
