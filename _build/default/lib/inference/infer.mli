(** Profile inference ("Profi"-style, [10]): rebalance raw correlated block
    and edge counts into a flow-consistent profile by solving a min-cost
    circulation over the CFG. Measured counts are modeled as rewarded
    capacities; deviations pay per-unit penalties, so sampling noise,
    correlation gaps and small inconsistencies get smoothed while large
    measured signals are preserved. *)

val infer_func : Csspgo_ir.Func.t -> unit
(** Rewrites [Block.count] and [Block.edge_counts] with consistent values
    and sets [annotated]. Input counts are the raw measurements. *)

val infer : Csspgo_ir.Program.t -> unit
(** [infer_func] on every annotated function. *)

val consistency_errors : Csspgo_ir.Func.t -> (Csspgo_ir.Types.label * int64 * int64 * int64) list
(** Blocks where inflow / count / outflow disagree: (label, inflow, count,
    outflow). Entry inflow and exit outflow are exempt. Used by tests. *)
