module Ir = Csspgo_ir
module I = Ir.Instr
module B = Ir.Block

let inf_cap = 1_000_000_000_000L

(* Cost calibration: rewards must beat a few hops of overshoot penalty so
   that short correlation gaps are bridged, but long speculative paths are
   not invented. *)
let block_reward = -10
let block_overshoot = 2
let edge_reward = -5
let edge_overshoot = 1

let infer_func (f : Ir.Func.t) =
  let labels = List.filter (Hashtbl.mem (Ir.Cfg.reachable f)) (Ir.Func.labels f) in
  let idx = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace idx l i) labels;
  let n = List.length labels in
  let node_in i = 2 * i and node_out i = (2 * i) + 1 in
  let source = 2 * n and sink = (2 * n) + 1 in
  let g = Mcf.create ~n_nodes:((2 * n) + 2) in
  let block_arcs = Hashtbl.create 16 in
  let edge_arcs = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let b = Ir.Func.block f l in
      let i = Hashtbl.find idx l in
      let measured = Int64.max 0L b.B.count in
      let base =
        if Int64.compare measured 0L > 0 then
          Some (Mcf.add_arc g ~src:(node_in i) ~dst:(node_out i) ~cap:measured ~cost:block_reward)
        else None
      in
      let over =
        Mcf.add_arc g ~src:(node_in i) ~dst:(node_out i) ~cap:inf_cap ~cost:block_overshoot
      in
      Hashtbl.replace block_arcs l (base, over);
      (* Edges to successors. *)
      List.iteri
        (fun e_i s ->
          match Hashtbl.find_opt idx s with
          | None -> ()
          | Some si ->
              let measured_e =
                if e_i < Array.length b.B.edge_counts then Int64.max 0L b.B.edge_counts.(e_i)
                else 0L
              in
              let base_e =
                if Int64.compare measured_e 0L > 0 then
                  Some
                    (Mcf.add_arc g ~src:(node_out i) ~dst:(node_in si) ~cap:measured_e
                       ~cost:edge_reward)
                else None
              in
              let over_e =
                Mcf.add_arc g ~src:(node_out i) ~dst:(node_in si) ~cap:inf_cap
                  ~cost:edge_overshoot
              in
              Hashtbl.replace edge_arcs (l, e_i) (base_e, over_e))
        (B.successors b);
      (* Exits drain to the sink. *)
      match b.B.term with
      | I.Ret _ | I.Unreachable ->
          ignore (Mcf.add_arc g ~src:(node_out i) ~dst:sink ~cap:inf_cap ~cost:0)
      | _ -> ())
    labels;
  (match Hashtbl.find_opt idx f.Ir.Func.entry with
  | Some ei -> ignore (Mcf.add_arc g ~src:source ~dst:(node_in ei) ~cap:inf_cap ~cost:0)
  | None -> ());
  ignore (Mcf.add_arc g ~src:sink ~dst:source ~cap:inf_cap ~cost:0);
  Mcf.solve g;
  (* Write back the inferred, consistent counts. *)
  List.iter
    (fun l ->
      let b = Ir.Func.block f l in
      let base, over = Hashtbl.find block_arcs l in
      let flow =
        Int64.add (match base with Some a -> Mcf.flow a | None -> 0L) (Mcf.flow over)
      in
      b.B.count <- flow;
      let succs = B.successors b in
      if Array.length b.B.edge_counts <> List.length succs then
        b.B.edge_counts <- Array.make (List.length succs) 0L;
      List.iteri
        (fun e_i _ ->
          match Hashtbl.find_opt edge_arcs (l, e_i) with
          | Some (base_e, over_e) ->
              b.B.edge_counts.(e_i) <-
                Int64.add
                  (match base_e with Some a -> Mcf.flow a | None -> 0L)
                  (Mcf.flow over_e)
          | None -> b.B.edge_counts.(e_i) <- 0L)
        succs)
    labels;
  f.Ir.Func.annotated <- true

let infer (p : Ir.Program.t) =
  Ir.Program.iter_funcs (fun f -> if f.Ir.Func.annotated then infer_func f) p

let consistency_errors (f : Ir.Func.t) =
  let reach = Ir.Cfg.reachable f in
  let inflow = Hashtbl.create 16 in
  Ir.Func.iter_blocks
    (fun b ->
      if Hashtbl.mem reach b.B.id then
        List.iteri
          (fun i s ->
            let w = if i < Array.length b.B.edge_counts then b.B.edge_counts.(i) else 0L in
            Hashtbl.replace inflow s
              (Int64.add w (Option.value (Hashtbl.find_opt inflow s) ~default:0L)))
          (B.successors b))
    f;
  Ir.Func.fold_blocks
    (fun acc b ->
      if not (Hashtbl.mem reach b.B.id) then acc
      else
        let inf = Option.value (Hashtbl.find_opt inflow b.B.id) ~default:0L in
        let outf = Array.fold_left Int64.add 0L b.B.edge_counts in
        let is_entry = b.B.id = f.Ir.Func.entry in
        let is_exit = match b.B.term with I.Ret _ | I.Unreachable -> true | _ -> false in
        let in_ok = is_entry || Int64.equal inf b.B.count in
        let out_ok = is_exit || Int64.equal outf b.B.count in
        if in_ok && out_ok then acc else (b.B.id, inf, b.B.count, outf) :: acc)
    [] f
  |> List.rev
