lib/inference/mcf.ml: Array Csspgo_support Int64 List Vec
