lib/inference/mcf.mli:
