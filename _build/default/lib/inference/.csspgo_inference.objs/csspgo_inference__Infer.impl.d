lib/inference/infer.ml: Array Csspgo_ir Hashtbl Int64 List Mcf Option
