lib/inference/infer.mli: Csspgo_ir
