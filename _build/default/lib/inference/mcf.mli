(** Generic minimum-cost circulation solver by negative-cycle canceling
    (Bellman–Ford cycle detection, bottleneck augmentation). Arc costs are
    per-unit integers and may be negative; the solver pushes flow around
    negative-cost residual cycles until none remain, reaching a min-cost
    circulation. This is the computational core of profile inference
    (Levin et al. [9], Profi [10]). *)

type t
type arc

val create : n_nodes:int -> t
val add_arc : t -> src:int -> dst:int -> cap:int64 -> cost:int -> arc
val solve : t -> unit
(** Idempotent; runs to completion. *)

val flow : arc -> int64
val total_cost : t -> int64
