open Csspgo_support

(* Standard residual representation: every arc has a twin with zero capacity
   and negated cost; pushing x units adds x to the arc's flow and subtracts
   x from the twin's, so residual capacity is always [cap - flow]. *)
type arc = {
  a_src : int;
  a_dst : int;
  a_cap : int64;
  a_cost : int;
  mutable a_flow : int64;
  mutable twin : arc option;
}

type t = {
  n : int;
  arcs : arc Vec.t;  (* user-created forward arcs *)
  mutable adj : arc list array;
  mutable built : bool;
}

let create ~n_nodes = { n = n_nodes; arcs = Vec.create (); adj = [||]; built = false }

let add_arc t ~src ~dst ~cap ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then invalid_arg "Mcf.add_arc";
  if Int64.compare cap 0L < 0 then invalid_arg "Mcf.add_arc: negative capacity";
  let a = { a_src = src; a_dst = dst; a_cap = cap; a_cost = cost; a_flow = 0L; twin = None } in
  Vec.push t.arcs a;
  t.built <- false;
  a

let build t =
  if not t.built then begin
    t.adj <- Array.make t.n [];
    Vec.iter
      (fun a ->
        let tw =
          match a.twin with
          | Some tw -> tw
          | None ->
              let tw =
                {
                  a_src = a.a_dst;
                  a_dst = a.a_src;
                  a_cap = 0L;
                  a_cost = -a.a_cost;
                  a_flow = 0L;
                  twin = Some a;
                }
              in
              a.twin <- Some tw;
              tw
        in
        t.adj.(a.a_src) <- a :: t.adj.(a.a_src);
        t.adj.(tw.a_src) <- tw :: t.adj.(tw.a_src))
      t.arcs;
    t.built <- true
  end

let rcap a = Int64.sub a.a_cap a.a_flow

let push a amount =
  a.a_flow <- Int64.add a.a_flow amount;
  match a.twin with
  | Some tw -> tw.a_flow <- Int64.sub tw.a_flow amount
  | None -> assert false

(* Bellman–Ford over the residual graph; returns a negative cycle if any. *)
let find_negative_cycle t =
  build t;
  let dist = Array.make t.n 0L in
  let pred : arc option array = Array.make t.n None in
  let updated_in_last_pass = ref (-1) in
  for _pass = 1 to t.n do
    updated_in_last_pass := -1;
    for u = 0 to t.n - 1 do
      List.iter
        (fun a ->
          if Int64.compare (rcap a) 0L > 0 then begin
            let nd = Int64.add dist.(u) (Int64.of_int a.a_cost) in
            if Int64.compare nd dist.(a.a_dst) < 0 then begin
              dist.(a.a_dst) <- nd;
              pred.(a.a_dst) <- Some a;
              updated_in_last_pass := a.a_dst
            end
          end)
        t.adj.(u)
    done
  done;
  if !updated_in_last_pass < 0 then None
  else begin
    (* A relaxation in pass n implies a negative cycle reachable through the
       predecessor chain; walk back n steps to land on it, then collect. *)
    let v = ref !updated_in_last_pass in
    for _ = 1 to t.n do
      match pred.(!v) with Some a -> v := a.a_src | None -> ()
    done;
    let start = !v in
    let cycle = ref [] in
    let cur = ref start in
    let steps = ref 0 in
    let ok = ref true in
    let continue_ = ref true in
    while !continue_ do
      incr steps;
      if !steps > t.n + 1 then begin
        ok := false;
        continue_ := false
      end
      else
        match pred.(!cur) with
        | Some a ->
            cycle := a :: !cycle;
            cur := a.a_src;
            if !cur = start then continue_ := false
        | None ->
            ok := false;
            continue_ := false
    done;
    if !ok && !cycle <> [] then Some !cycle else None
  end

let solve t =
  build t;
  let continue_ = ref true in
  let guard = ref 0 in
  while !continue_ && !guard < 20_000 do
    incr guard;
    match find_negative_cycle t with
    | None -> continue_ := false
    | Some cycle ->
        let cost = List.fold_left (fun acc a -> acc + a.a_cost) 0 cycle in
        let bottleneck = List.fold_left (fun acc a -> min acc (rcap a)) Int64.max_int cycle in
        if cost >= 0 || Int64.compare bottleneck 0L <= 0 then continue_ := false
        else List.iter (fun a -> push a bottleneck) cycle
  done

let flow a = a.a_flow

let total_cost t =
  Vec.fold_left
    (fun acc a -> Int64.add acc (Int64.mul a.a_flow (Int64.of_int a.a_cost)))
    0L t.arcs
