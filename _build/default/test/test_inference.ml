(* MCF solver and profile inference. *)
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr
module Inf = Csspgo_inference
module F = Csspgo_frontend

(* Alcotest lacks a quad checker; define one. *)
let quad a b c d =
  let pp fmt (w, x, y, z) =
    Format.fprintf fmt "(%a,%a,%a,%a)" (Alcotest.pp a) w (Alcotest.pp b) x (Alcotest.pp c) y
      (Alcotest.pp d) z
  in
  let eq (w1, x1, y1, z1) (w2, x2, y2, z2) =
    Alcotest.equal a w1 w2 && Alcotest.equal b x1 x2 && Alcotest.equal c y1 y2
    && Alcotest.equal d z1 z2
  in
  Alcotest.testable pp eq

let test_mcf_simple_negative_cycle () =
  (* Two nodes, a negative arc and a free return arc: the solver should
     saturate the negative arc. *)
  let g = Inf.Mcf.create ~n_nodes:2 in
  let neg = Inf.Mcf.add_arc g ~src:0 ~dst:1 ~cap:10L ~cost:(-5) in
  let back = Inf.Mcf.add_arc g ~src:1 ~dst:0 ~cap:100L ~cost:0 in
  Inf.Mcf.solve g;
  Alcotest.(check int64) "negative arc saturated" 10L (Inf.Mcf.flow neg);
  Alcotest.(check int64) "return flow matches" 10L (Inf.Mcf.flow back);
  Alcotest.(check int64) "cost" (-50L) (Inf.Mcf.total_cost g)

let test_mcf_respects_positive_cost () =
  (* Reward 3/unit but the return path costs 5/unit: no flow is profitable. *)
  let g = Inf.Mcf.create ~n_nodes:2 in
  let a = Inf.Mcf.add_arc g ~src:0 ~dst:1 ~cap:10L ~cost:(-3) in
  let _ = Inf.Mcf.add_arc g ~src:1 ~dst:0 ~cap:100L ~cost:5 in
  Inf.Mcf.solve g;
  Alcotest.(check int64) "no profitable cycle" 0L (Inf.Mcf.flow a)

let test_mcf_bottleneck () =
  (* Chain with a narrow middle arc: flow limited by the bottleneck. *)
  let g = Inf.Mcf.create ~n_nodes:3 in
  let a = Inf.Mcf.add_arc g ~src:0 ~dst:1 ~cap:100L ~cost:(-2) in
  let b = Inf.Mcf.add_arc g ~src:1 ~dst:2 ~cap:7L ~cost:(-2) in
  let _ = Inf.Mcf.add_arc g ~src:2 ~dst:0 ~cap:1000L ~cost:0 in
  Inf.Mcf.solve g;
  (* The cycle through both negative arcs pushes 7; then the remaining
     0->1 reward has no way back without... the only return is via 2. *)
  Alcotest.(check int64) "bottleneck honored on b" 7L (Inf.Mcf.flow b);
  Alcotest.(check bool) "a at least bottleneck" true (Int64.compare (Inf.Mcf.flow a) 7L >= 0)

let annotated_loop n_measured =
  (* entry(1) -> header -> body(n) -> header; header -> exit(1) *)
  let p =
    F.Lower.compile
      "fn main(n) { let s = 0; let i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }"
  in
  Csspgo_ir.Program.iter_funcs
    (fun f -> ignore (Csspgo_opt.Simplify.run ~config:Csspgo_opt.Config.o2_nopgo f))
    p;
  let f = Ir.Program.func p "main" in
  (* raw measurement: only the loop body has a count *)
  (match Ir.Cfg.natural_loops f with
  | [ loop ] ->
      Hashtbl.iter
        (fun l () ->
          if l <> loop.Ir.Cfg.header then (Ir.Func.block f l).Ir.Block.count <- n_measured)
        loop.Ir.Cfg.body
  | _ -> Alcotest.fail "expected one loop");
  (Ir.Func.entry_block f).Ir.Block.count <- 1L;
  f.Ir.Func.annotated <- true;
  (p, f)

let test_infer_makes_consistent () =
  let _, f = annotated_loop 1000L in
  Inf.Infer.infer_func f;
  Alcotest.(check (list (quad int int64 int64 int64))) "no inconsistencies" []
    (List.map
       (fun (l, a, b, c) -> (l, a, b, c))
       (Inf.Infer.consistency_errors f))

let test_infer_preserves_hot_signal () =
  let _, f = annotated_loop 1000L in
  Inf.Infer.infer_func f;
  (* The loop header must now be about as hot as the body. *)
  match Ir.Cfg.natural_loops f with
  | [ loop ] ->
      let header = Ir.Func.block f loop.Ir.Cfg.header in
      Alcotest.(check bool) "header recovered hot" true
        (Int64.compare header.Ir.Block.count 900L >= 0)
  | _ -> Alcotest.fail "loop lost"

let test_infer_zero_profile_stays_zero () =
  let _, f = annotated_loop 0L in
  (Ir.Func.entry_block f).Ir.Block.count <- 0L;
  Inf.Infer.infer_func f;
  Alcotest.(check int64) "no phantom counts" 0L (Ir.Func.total_count f)

let prop_infer_consistency =
  (* Random raw counts on the diamond program always become consistent. *)
  QCheck.Test.make ~name:"inference yields flow-consistent profiles" ~count:60
    QCheck.(list_of_size (Gen.return 8) (int_range 0 10_000))
    (fun raw ->
      let p =
        F.Lower.compile
          "fn main(a) { let x = 0; if (a > 1) { x = a; } else { x = 2; } if (a > 10) { x = x + 1; } return x; }"
      in
      Csspgo_ir.Program.iter_funcs
        (fun f -> ignore (Csspgo_opt.Simplify.run ~config:Csspgo_opt.Config.o2_nopgo f))
        p;
      let f = Ir.Program.func p "main" in
      let i = ref 0 in
      Ir.Func.iter_blocks
        (fun b ->
          b.Ir.Block.count <-
            Int64.of_int (try List.nth raw !i with _ -> 0);
          incr i)
        f;
      f.Ir.Func.annotated <- true;
      Inf.Infer.infer_func f;
      Inf.Infer.consistency_errors f = [])

let test_infer_idempotent () =
  let _, f = annotated_loop 500L in
  Inf.Infer.infer_func f;
  let snapshot =
    Ir.Func.fold_blocks (fun acc b -> (b.Ir.Block.id, b.Ir.Block.count) :: acc) [] f
  in
  Inf.Infer.infer_func f;
  let snapshot2 =
    Ir.Func.fold_blocks (fun acc b -> (b.Ir.Block.id, b.Ir.Block.count) :: acc) [] f
  in
  Alcotest.(check (list (pair int int64))) "second inference is a no-op" snapshot snapshot2

let test_infer_bridges_gap () =
  (* A hot block with an unmeasured predecessor: flow must be routed through
     the gap rather than dropped. *)
  let p =
    F.Lower.compile
      "fn main(a) { let x = a + 1; let y = x * 2; let z = y + 3; if (z > 0) { return z; } return 0; }"
  in
  Csspgo_ir.Program.iter_funcs
    (fun f -> ignore (Csspgo_opt.Simplify.run ~config:Csspgo_opt.Config.o2_nopgo f))
    p;
  let f = Ir.Program.func p "main" in
  (* measure only a non-entry block *)
  Ir.Func.iter_blocks
    (fun b -> b.Ir.Block.count <- (if b.Ir.Block.id = f.Ir.Func.entry then 0L else 900L))
    f;
  f.Ir.Func.annotated <- true;
  Inf.Infer.infer_func f;
  Alcotest.(check bool) "entry receives flow" true
    (Int64.compare (Ir.Func.entry_count f) 500L >= 0);
  Alcotest.(check (list (quad int int64 int64 int64))) "consistent" []
    (Inf.Infer.consistency_errors f)

let suite =
  ( "inference",
    [
      Alcotest.test_case "mcf negative cycle" `Quick test_mcf_simple_negative_cycle;
      Alcotest.test_case "mcf positive cost" `Quick test_mcf_respects_positive_cost;
      Alcotest.test_case "mcf bottleneck" `Quick test_mcf_bottleneck;
      Alcotest.test_case "infer consistent" `Quick test_infer_makes_consistent;
      Alcotest.test_case "infer hot signal" `Quick test_infer_preserves_hot_signal;
      Alcotest.test_case "infer zero stays zero" `Quick test_infer_zero_profile_stays_zero;
      Alcotest.test_case "infer idempotent" `Quick test_infer_idempotent;
      Alcotest.test_case "infer bridges gaps" `Quick test_infer_bridges_gap;
      QCheck_alcotest.to_alcotest prop_infer_consistency;
    ] )
