(* Register allocation, layout, emission. *)
module F = Csspgo_frontend
module Ir = Csspgo_ir
module I = Ir.Instr
module Cg = Csspgo_codegen
module Mach = Cg.Mach
module Opt = Csspgo_opt


let compile_o2 src =
  let p = F.Lower.compile src in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  p

let test_regalloc_valid () =
  let p = compile_o2 Csspgo_workloads.Suite.vecop_example in
  Ir.Program.iter_funcs
    (fun f ->
      let ra = Cg.Regalloc.allocate f in
      (* Every vreg gets a location; registers stay in the allocatable set;
         spill slots are within nslots. *)
      Array.iter
        (function
          | Mach.LReg r ->
              if r < 0 || r >= Mach.n_alloc then Alcotest.fail "register out of range"
          | Mach.LSpill s ->
              if s < 0 || s >= max ra.Cg.Regalloc.nslots 1 then
                Alcotest.fail "slot out of range")
        ra.Cg.Regalloc.loc_of)
    p

let test_regalloc_interference () =
  (* Two values live simultaneously must not share a register. *)
  let p =
    F.Lower.compile
      "fn main(a, b) { let x = a + 1; let y = b + 2; let z = x * y; return z + x + y; }"
  in
  let f = Ir.Program.func p "main" in
  let ra = Cg.Regalloc.allocate f in
  (* Find the vregs for x and y via the defs of the adds feeding the mul:
     simpler — just check params (live together at entry) differ. *)
  (match (ra.Cg.Regalloc.loc_of.(0), ra.Cg.Regalloc.loc_of.(1)) with
  | Mach.LReg r0, Mach.LReg r1 ->
      Alcotest.(check bool) "params in distinct regs" true (r0 <> r1)
  | _ -> ())

let test_layout_entry_first_and_complete () =
  let p = compile_o2 Csspgo_workloads.Suite.vecop_example in
  Ir.Program.iter_funcs
    (fun f ->
      let lay = Cg.Layout.order ~split:true f in
      (match lay.Cg.Layout.hot with
      | first :: _ ->
          Alcotest.(check int) "entry first" f.Ir.Func.entry first
      | [] -> Alcotest.fail "empty layout");
      let reach = Ir.Cfg.reachable f in
      let placed = lay.Cg.Layout.hot @ lay.Cg.Layout.cold in
      Alcotest.(check int)
        (Printf.sprintf "%s: all reachable blocks placed" f.Ir.Func.name)
        (Hashtbl.length reach) (List.length placed);
      Alcotest.(check int) "no duplicates" (List.length placed)
        (List.length (List.sort_uniq compare placed)))
    p

let test_layout_profile_improves_score () =
  (* With a profile, the layout's Ext-TSP score should be at least that of
     the source-order layout. *)
  let w = List.hd Csspgo_workloads.Suite.server_workloads in
  let o = Csspgo_core.Driver.run_variant Csspgo_core.Driver.Csspgo_probe_only w in
  let p = o.Csspgo_core.Driver.o_annotated in
  Ir.Program.iter_funcs
    (fun f ->
      if f.Ir.Func.annotated && Ir.Func.n_blocks f > 2 then begin
        let lay = Cg.Layout.order ~split:false f in
        let dfs = Cg.Layout.ext_tsp_score f lay.Cg.Layout.hot in
        let src_order = Cg.Layout.ext_tsp_score f (Ir.Func.labels f) in
        if dfs +. 1e-6 < src_order then
          Alcotest.failf "%s: layout score %.1f below source order %.1f" f.Ir.Func.name dfs
            src_order
      end)
    p

let test_ext_tsp_layout () =
  (* The greedy Ext-TSP order must score at least as well as the DFS order
     on annotated functions, and place every block exactly once. *)
  let w = List.hd Csspgo_workloads.Suite.server_workloads in
  let o = Csspgo_core.Driver.run_variant Csspgo_core.Driver.Csspgo_probe_only w in
  let p = o.Csspgo_core.Driver.o_annotated in
  Ir.Program.iter_funcs
    (fun f ->
      let dfs = Cg.Layout.order ~split:false f in
      let tsp = Cg.Layout.order_ext_tsp ~split:false f in
      Alcotest.(check int)
        (f.Ir.Func.name ^ ": same block count")
        (List.length dfs.Cg.Layout.hot)
        (List.length tsp.Cg.Layout.hot);
      Alcotest.(check int)
        (f.Ir.Func.name ^ ": no duplicates")
        (List.length tsp.Cg.Layout.hot)
        (List.length (List.sort_uniq compare tsp.Cg.Layout.hot));
      (match tsp.Cg.Layout.hot with
      | first :: _ -> Alcotest.(check int) "entry first" f.Ir.Func.entry first
      | [] -> ());
      if f.Ir.Func.annotated then begin
        let s_dfs = Cg.Layout.ext_tsp_score f dfs.Cg.Layout.hot in
        let s_tsp = Cg.Layout.ext_tsp_score f tsp.Cg.Layout.hot in
        if s_tsp +. 1e-6 < s_dfs then
          Alcotest.failf "%s: ext-tsp %.1f below dfs %.1f" f.Ir.Func.name s_tsp s_dfs
      end)
    p;
  (* Binaries built with either layout compute the same results. *)
  let src = Csspgo_workloads.Suite.vecop_example in
  let prog = compile_o2 src in
  let run opts =
    let b = Cg.Emit.emit ~options:opts prog in
    (Csspgo_vm.Machine.run ~pmu:None b ~entry:"main" ~args:[ 64L; 5L ])
      .Csspgo_vm.Machine.ret_value
  in
  Alcotest.(check int64) "semantics independent of layout"
    (run Cg.Emit.default_options)
    (run { Cg.Emit.default_options with Cg.Emit.layout = `Ext_tsp })

let test_emit_addr_map () =
  let p = compile_o2 Csspgo_workloads.Suite.vecop_example in
  let b = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  (* Addresses strictly increase and the index maps back. *)
  Array.iteri
    (fun i (inst : Mach.inst) ->
      if i > 0 then begin
        let prev = b.Mach.insts.(i - 1) in
        if inst.Mach.i_addr < prev.Mach.i_addr + prev.Mach.i_size then
          Alcotest.fail "overlapping instructions"
      end;
      match Mach.inst_at b inst.Mach.i_addr with
      | Some inst' when inst' == inst -> ()
      | _ -> Alcotest.fail "addr_index inconsistent")
    b.Mach.insts;
  (* Every function range contains its instructions. *)
  Array.iter
    (fun (inst : Mach.inst) ->
      match Mach.func_index_of_addr b inst.Mach.i_addr with
      | Some fi when fi = inst.Mach.i_func -> ()
      | _ -> Alcotest.fail "func_index_of_addr mismatch")
    b.Mach.insts

let test_emit_probe_anchors () =
  let p = F.Lower.compile Csspgo_workloads.Suite.vecop_example in
  Csspgo_core.Pseudo_probe.insert p;
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  let b = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  Alcotest.(check bool) "probes materialized" true (Array.length b.Mach.probes > 0);
  Array.iter
    (fun (pr : Mach.probe_rec) ->
      match Mach.inst_at b pr.Mach.pr_addr with
      | Some _ -> ()
      | None -> Alcotest.fail "probe anchored at unmapped address")
    b.Mach.probes;
  (* sorted by address *)
  Array.iteri
    (fun i pr ->
      if i > 0 && pr.Mach.pr_addr < b.Mach.probes.(i - 1).Mach.pr_addr then
        Alcotest.fail "probe records unsorted")
    b.Mach.probes;
  Alcotest.(check bool) "probe metadata sized" true (b.Mach.probe_meta_size > 0)

let test_emit_branch_targets_resolve () =
  let p = compile_o2 Csspgo_workloads.Suite.vecop_example in
  let b = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  Array.iter
    (fun (inst : Mach.inst) ->
      let check_target a =
        if Mach.inst_at b a = None then Alcotest.failf "dangling target 0x%x" a
      in
      match inst.Mach.i_op with
      | Mach.MJmp a -> check_target a
      | Mach.MJcc (_, _, a) -> check_target a
      | Mach.MSwitch (_, cases, d) ->
          List.iter (fun (_, a) -> check_target a) cases;
          check_target d
      | _ -> ())
    b.Mach.insts

let test_cold_split_ranges () =
  (* Build with an annotated profile that has provably cold code. *)
  let w = List.hd Csspgo_workloads.Suite.server_workloads in
  let o = Csspgo_core.Driver.run_variant Csspgo_core.Driver.Csspgo_probe_only w in
  let b = o.Csspgo_core.Driver.o_binary in
  (* Cold ranges never overlap hot ranges and sit after the last hot one. *)
  let max_hot = Array.fold_left (fun acc f -> max acc f.Mach.bf_end) 0 b.Mach.funcs in
  Array.iter
    (fun (f : Mach.bfunc) ->
      match f.Mach.bf_cold with
      | Some (s, e) ->
          if s < max_hot || e <= s then Alcotest.fail "cold range misplaced"
      | None -> ())
    b.Mach.funcs

let test_tce_emits_tail_call () =
  let p =
    compile_o2
      "fn big_helper(x, y) { let s = 0; let i = 0; while (i < x) { s = s + y + i * 3; i = i + 1; if (s > 100000) { s = s - 7; } } return s; }\nfn outer(x) { return big_helper(x, 2); }\nfn main(a) { return outer(a) + big_helper(a, a); }"
  in
  (* keep outer from being inlined by checking the IR first: if it was
     inlined, the test is vacuous — just assert the binary is well-formed
     and, when a call in tail position survived, it became MTail_call. *)
  let b = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let n_tail =
    Array.fold_left
      (fun acc (i : Mach.inst) ->
        match i.Mach.i_op with Mach.MTail_call _ -> acc + 1 | _ -> acc)
      0 b.Mach.insts
  in
  ignore n_tail;
  (* disabled TCE must produce zero tail calls *)
  let b2 =
    Cg.Emit.emit ~options:{ Cg.Emit.default_options with Cg.Emit.enable_tce = false } p
  in
  let n_tail2 =
    Array.fold_left
      (fun acc (i : Mach.inst) ->
        match i.Mach.i_op with Mach.MTail_call _ -> acc + 1 | _ -> acc)
      0 b2.Mach.insts
  in
  Alcotest.(check int) "no tail calls when disabled" 0 n_tail2

let test_size_accounting () =
  let p = F.Lower.compile Csspgo_workloads.Suite.vecop_example in
  Csspgo_core.Pseudo_probe.insert p;
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  let b = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let sum_sizes = Array.fold_left (fun acc i -> acc + i.Mach.i_size) 0 b.Mach.insts in
  Alcotest.(check bool) "text >= instruction bytes (alignment padding)" true
    (b.Mach.text_size >= sum_sizes);
  Alcotest.(check bool) "debug info non-empty" true (b.Mach.debug_size > 0)

let suite =
  ( "codegen",
    [
      Alcotest.test_case "regalloc valid" `Quick test_regalloc_valid;
      Alcotest.test_case "regalloc interference" `Quick test_regalloc_interference;
      Alcotest.test_case "layout complete" `Quick test_layout_entry_first_and_complete;
      Alcotest.test_case "layout profile score" `Slow test_layout_profile_improves_score;
      Alcotest.test_case "ext-tsp layout" `Slow test_ext_tsp_layout;
      Alcotest.test_case "emit addr map" `Quick test_emit_addr_map;
      Alcotest.test_case "emit probe anchors" `Quick test_emit_probe_anchors;
      Alcotest.test_case "branch targets resolve" `Quick test_emit_branch_targets_resolve;
      Alcotest.test_case "cold split ranges" `Slow test_cold_split_ranges;
      Alcotest.test_case "tce toggle" `Quick test_tce_emits_tail_call;
      Alcotest.test_case "size accounting" `Quick test_size_accounting;
    ] )
