(* IR data structures, CFG analyses, verifier. *)
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr
module F = Csspgo_frontend
open Csspgo_support

let mk_diamond () =
  (* entry -> (a|b) -> join(ret) *)
  let f = Ir.Func.mk ~name:"diamond" ~modname:"m" ~params:[ 0 ] in
  f.Ir.Func.nregs <- 3;
  let entry = Ir.Func.entry_block f in
  let a = Ir.Func.fresh_block f in
  let b = Ir.Func.fresh_block f in
  let join = Ir.Func.fresh_block f in
  Ir.Block.add entry (I.mk (I.Cmp (T.Gt, 1, T.Reg 0, T.Imm 10L)) Ir.Dloc.none);
  Ir.Block.set_term entry (I.Br (1, a.Ir.Block.id, b.Ir.Block.id));
  Ir.Block.add a (I.mk (I.Mov (2, T.Imm 1L)) Ir.Dloc.none);
  Ir.Block.set_term a (I.Jmp join.Ir.Block.id);
  Ir.Block.add b (I.mk (I.Mov (2, T.Imm 2L)) Ir.Dloc.none);
  Ir.Block.set_term b (I.Jmp join.Ir.Block.id);
  Ir.Block.set_term join (I.Ret (T.Reg 2));
  (f, entry, a, b, join)

let mk_loop () =
  (* entry -> header -> (body -> header | exit) *)
  let f = Ir.Func.mk ~name:"loopy" ~modname:"m" ~params:[ 0 ] in
  f.Ir.Func.nregs <- 3;
  let entry = Ir.Func.entry_block f in
  let header = Ir.Func.fresh_block f in
  let body = Ir.Func.fresh_block f in
  let exit_b = Ir.Func.fresh_block f in
  Ir.Block.add entry (I.mk (I.Mov (1, T.Imm 0L)) Ir.Dloc.none);
  Ir.Block.set_term entry (I.Jmp header.Ir.Block.id);
  Ir.Block.add header (I.mk (I.Cmp (T.Lt, 2, T.Reg 1, T.Reg 0)) Ir.Dloc.none);
  Ir.Block.set_term header (I.Br (2, body.Ir.Block.id, exit_b.Ir.Block.id));
  Ir.Block.add body (I.mk (I.Bin (T.Add, 1, T.Reg 1, T.Imm 1L)) Ir.Dloc.none);
  Ir.Block.set_term body (I.Jmp header.Ir.Block.id);
  Ir.Block.set_term exit_b (I.Ret (T.Reg 1));
  (f, header, body, exit_b)

let test_guid () =
  let g1 = Ir.Guid.of_name "main" and g2 = Ir.Guid.of_name "main" in
  Alcotest.(check bool) "equal names equal guids" true (Ir.Guid.equal g1 g2);
  Alcotest.(check bool) "distinct" true
    (not (Ir.Guid.equal g1 (Ir.Guid.of_name "main2")))

let test_dloc_frames () =
  let g_f = Ir.Guid.of_name "f" and g_g = Ir.Guid.of_name "g" in
  let d = Ir.Dloc.mk g_f 7 in
  let d =
    Ir.Dloc.push_inline d { Ir.Dloc.cs_func = g_g; cs_line = 3; cs_disc = 0; cs_probe = 5 }
  in
  (match Ir.Dloc.frames ~container:g_g d with
  | [ (f0, 7, 0); (f1, 3, 5) ] ->
      Alcotest.(check bool) "inner origin" true (Ir.Guid.equal f0 g_f);
      Alcotest.(check bool) "outer caller" true (Ir.Guid.equal f1 g_g)
  | other -> Alcotest.failf "unexpected frames (%d)" (List.length other));
  Alcotest.(check bool) "none detection" true (Ir.Dloc.is_none Ir.Dloc.none)

let test_successors () =
  Alcotest.(check (list int)) "br" [ 1; 2 ] (I.successors (I.Br (0, 1, 2)));
  Alcotest.(check (list int)) "switch" [ 3; 4; 5 ]
    (I.successors (I.Switch (T.Reg 0, [ (0L, 3); (1L, 4) ], 5)));
  Alcotest.(check (list int)) "ret" [] (I.successors (I.Ret (T.Imm 0L)))

let test_defs_uses () =
  Alcotest.(check (list int)) "bin defs" [ 2 ] (I.defs (I.Bin (T.Add, 2, T.Reg 0, T.Reg 1)));
  Alcotest.(check (list int)) "bin uses" [ 0; 1 ] (I.uses (I.Bin (T.Add, 2, T.Reg 0, T.Reg 1)));
  Alcotest.(check (list int)) "store defs" [] (I.defs (I.Store ("g", T.Reg 0, T.Reg 1)));
  Alcotest.(check bool) "probe side effect" true
    (I.has_side_effect (I.Probe { I.p_id = 1; p_kind = I.Block_probe; p_func = 0L }))

let test_rpo_and_preds () =
  let f, entry, a, b, join = mk_diamond () in
  let rpo = Ir.Cfg.rpo f in
  Alcotest.(check int) "rpo covers all" 4 (List.length rpo);
  Alcotest.(check int) "entry first" entry.Ir.Block.id (List.hd rpo);
  let preds = Ir.Cfg.preds f in
  Alcotest.(check (list int)) "join preds"
    (List.sort compare [ a.Ir.Block.id; b.Ir.Block.id ])
    (List.sort compare (Hashtbl.find preds join.Ir.Block.id))

let test_dominators () =
  let f, entry, a, _b, join = mk_diamond () in
  let dom = Ir.Cfg.dominators f in
  Alcotest.(check bool) "entry dominates join" true
    (Ir.Cfg.dominates dom entry.Ir.Block.id join.Ir.Block.id);
  Alcotest.(check bool) "arm does not dominate join" false
    (Ir.Cfg.dominates dom a.Ir.Block.id join.Ir.Block.id);
  Alcotest.(check bool) "entry dominates arm" true
    (Ir.Cfg.dominates dom entry.Ir.Block.id a.Ir.Block.id)

let test_natural_loops () =
  let f, header, body, exit_b = mk_loop () in
  match Ir.Cfg.natural_loops f with
  | [ loop ] ->
      Alcotest.(check int) "header" header.Ir.Block.id loop.Ir.Cfg.header;
      Alcotest.(check bool) "body in loop" true (Hashtbl.mem loop.Ir.Cfg.body body.Ir.Block.id);
      Alcotest.(check bool) "exit not in loop" false
        (Hashtbl.mem loop.Ir.Cfg.body exit_b.Ir.Block.id);
      Alcotest.(check (list int)) "latches" [ body.Ir.Block.id ] loop.Ir.Cfg.latches
  | loops -> Alcotest.failf "expected 1 loop, got %d" (List.length loops)

let test_verify_catches_bad_target () =
  let f, _, _, _, _ = mk_diamond () in
  let p = Ir.Program.mk () in
  Ir.Program.add_func p f;
  Alcotest.(check int) "clean" 0 (List.length (Ir.Verify.program p));
  (Ir.Func.entry_block f).Ir.Block.term <- I.Jmp 999;
  Alcotest.(check bool) "bad target caught" true (Ir.Verify.program p <> [])

let test_verify_unknown_call () =
  let p = F.Lower.compile "fn main(a) { return nosuch(a); }" in
  Alcotest.(check bool) "unknown callee flagged" true (Ir.Verify.program p <> [])

let test_callgraph () =
  let p =
    F.Lower.compile
      {|
      fn leaf(x) { return x + 1; }
      fn mid(x) { return leaf(x) * 2; }
      fn main(a) { return mid(a) + leaf(a); }
      |}
  in
  let cg = Ir.Callgraph.build p in
  Alcotest.(check (list string)) "callees of main" [ "mid"; "leaf" ]
    (Ir.Callgraph.callees cg "main");
  Alcotest.(check bool) "leaf before mid (bottom-up)" true
    (let bu = Ir.Callgraph.bottom_up cg in
     let idx n = Option.get (List.find_index (String.equal n) bu) in
     idx "leaf" < idx "mid" && idx "mid" < idx "main");
  Alcotest.(check bool) "no recursion" false (Ir.Callgraph.is_recursive cg "mid")

let test_callgraph_recursion () =
  let p = F.Lower.compile "fn r(x) { if (x <= 0) { return 0; } return r(x - 1); } fn main(a) { return r(a); }" in
  let cg = Ir.Callgraph.build p in
  Alcotest.(check bool) "self recursion detected" true (Ir.Callgraph.is_recursive cg "r");
  Alcotest.(check bool) "main not recursive" false (Ir.Callgraph.is_recursive cg "main")

let test_func_copy_independent () =
  let f, _, _, _, _ = mk_diamond () in
  let g = Ir.Func.copy f in
  (Ir.Func.entry_block g).Ir.Block.count <- 42L;
  Alcotest.(check int64) "copy does not alias" 0L (Ir.Func.entry_block f).Ir.Block.count;
  Vec.clear (Ir.Func.entry_block g).Ir.Block.instrs;
  Alcotest.(check int) "instrs not aliased" 1
    (Vec.length (Ir.Func.entry_block f).Ir.Block.instrs)

let test_block_body_equal () =
  let _f, _, a, b, _ = mk_diamond () in
  Alcotest.(check bool) "different movs differ" false (Ir.Block.body_equal a b);
  (Vec.get b.Ir.Block.instrs 0).I.op <- I.Mov (2, T.Imm 1L);
  Alcotest.(check bool) "identical bodies equal" true (Ir.Block.body_equal a b)

let suite =
  ( "ir",
    [
      Alcotest.test_case "guid" `Quick test_guid;
      Alcotest.test_case "dloc frames" `Quick test_dloc_frames;
      Alcotest.test_case "successors" `Quick test_successors;
      Alcotest.test_case "defs/uses" `Quick test_defs_uses;
      Alcotest.test_case "rpo and preds" `Quick test_rpo_and_preds;
      Alcotest.test_case "dominators" `Quick test_dominators;
      Alcotest.test_case "natural loops" `Quick test_natural_loops;
      Alcotest.test_case "verify bad target" `Quick test_verify_catches_bad_target;
      Alcotest.test_case "verify unknown call" `Quick test_verify_unknown_call;
      Alcotest.test_case "callgraph" `Quick test_callgraph;
      Alcotest.test_case "callgraph recursion" `Quick test_callgraph_recursion;
      Alcotest.test_case "func copy independent" `Quick test_func_copy_independent;
      Alcotest.test_case "block body equal" `Quick test_block_body_equal;
    ] )
