(* Optimization passes: semantics preservation and pass-specific behavior. *)
module F = Csspgo_frontend
module Ir = Csspgo_ir
module T = Ir.Types
module I = Ir.Instr
module Opt = Csspgo_opt
module Core = Csspgo_core
open Csspgo_support

let eval ?(args = []) ?(globals = []) (p : Ir.Program.t) =
  let bin = Csspgo_codegen.Emit.emit ~options:Csspgo_codegen.Emit.default_options p in
  (Csspgo_vm.Machine.run ~pmu:None ~globals_init:globals bin ~entry:"main" ~args)
    .Csspgo_vm.Machine.ret_value

let count_instrs (p : Ir.Program.t) pred =
  let n = ref 0 in
  Ir.Program.iter_funcs
    (fun f ->
      Ir.Func.iter_blocks
        (fun b -> Vec.iter (fun (i : I.t) -> if pred i.I.op then incr n) b.Ir.Block.instrs)
        f)
    p

  ;
  !n

let total_blocks (p : Ir.Program.t) =
  let n = ref 0 in
  Ir.Program.iter_funcs (fun f -> n := !n + Ir.Func.n_blocks f) p;
  !n

let test_constfold_folds () =
  let p = F.Lower.compile "fn main() { let a = 2 + 3; let b = a * 4; return b - 1; }" in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Constfold.run f)) p;
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Dce.run f)) p;
  (* After folding + DCE the function should return a constant. *)
  let f = Ir.Program.func p "main" in
  let has_const_ret =
    Ir.Func.fold_blocks
      (fun acc b -> acc || b.Ir.Block.term = I.Ret (T.Imm 19L))
      false f
  in
  Alcotest.(check bool) "folded to 19" true has_const_ret

let test_constfold_branch () =
  let p = F.Lower.compile "fn main() { if (1 < 2) { return 10; } return 20; }" in
  let config = Opt.Config.o2_nopgo in
  Ir.Program.iter_funcs
    (fun f ->
      ignore (Opt.Constfold.run f);
      ignore (Opt.Simplify.run ~config f))
    p;
  Alcotest.(check int64) "constant branch folded, result right" 10L (eval p);
  (* The false side must be gone. *)
  Alcotest.(check int) "single block" 1 (Ir.Func.n_blocks (Ir.Program.func p "main"))

let test_dce_keeps_side_effects () =
  let p =
    F.Lower.compile "global g[4];\nfn main() { let dead = 1 + 2; g[0] = 7; return g[0]; }"
  in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Constfold.run f)) p;
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Dce.run f)) p;
  Alcotest.(check int) "store kept" 1 (count_instrs p (function I.Store _ -> true | _ -> false));
  Alcotest.(check int64) "semantics" 7L (eval p)

let test_simplify_removes_unreachable () =
  let p = F.Lower.compile "fn main() { return 1; let x = 2; return x; }" in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f)) p;
  Alcotest.(check int) "one block" 1 (Ir.Func.n_blocks (Ir.Program.func p "main"));
  Alcotest.(check int64) "result" 1L (eval p)

(* Arms that lower to register-identical blocks (empty body + same return
   operand) -- the realistic tail-merge victims are shared return paths. *)
let two_identical_returns = {|
fn main(a) {
  if (a > 0) {
    return 7;
  } else {
    return 7;
  }
}
|}

let test_tail_merge_merges () =
  let p = F.Lower.compile two_identical_returns in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f)) p;
  let before = total_blocks p in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Tail_merge.run f)) p;
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f)) p;
  Alcotest.(check bool) "blocks merged" true (total_blocks p < before);
  Alcotest.(check int64) "semantics" 7L (eval ~args:[ 5L ] p)

let test_tail_merge_blocked_by_probes () =
  (* The paper's central §III.A claim: probes make otherwise identical
     blocks distinguishable, so code merge is structurally blocked. *)
  let p = F.Lower.compile two_identical_returns in
  Core.Pseudo_probe.insert p;
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f)) p;
  let before = total_blocks p in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Tail_merge.run f)) p;
  Alcotest.(check int) "no merge with probes" before (total_blocks p);
  Alcotest.(check int64) "semantics" 7L (eval ~args:[ 5L ] p)

let licm_src = {|
global arr[16];
fn main(n) {
  let s = 0;
  let i = 0;
  while (i < n) {
    let k = arr[3] * 10;
    s = s + k + i;
    i = i + 1;
  }
  return s;
}
|}

let test_licm_hoists () =
  let p = F.Lower.compile licm_src in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f)) p;
  let f = Ir.Program.func p "main" in
  let loops_before = Ir.Cfg.natural_loops f in
  let in_loop_loads () =
    match Ir.Cfg.natural_loops f with
    | [] -> 0
    | loop :: _ ->
        Hashtbl.fold
          (fun l () acc ->
            match Ir.Func.find_block f l with
            | Some b ->
                acc
                + Vec.fold_left
                    (fun n (i : I.t) -> match i.I.op with I.Load _ -> n + 1 | _ -> n)
                    0 b.Ir.Block.instrs
            | None -> acc)
          loop.Ir.Cfg.body 0
  in
  Alcotest.(check bool) "has loop" true (loops_before <> []);
  let before = in_loop_loads () in
  ignore (Opt.Licm.run f);
  Ir.Verify.check_exn p;
  Alcotest.(check bool) "load hoisted" true (in_loop_loads () < before);
  let globals = [ ("arr", Array.init 16 (fun i -> Int64.of_int i)) ] in
  (* s = sum over i<4 of (30 + i) = 120 + 6 *)
  Alcotest.(check int64) "semantics" 126L (eval ~args:[ 4L ] ~globals p)

let test_licm_no_hoist_when_stored () =
  let src = {|
global arr[16];
fn main(n) {
  let s = 0;
  let i = 0;
  while (i < n) {
    arr[3] = i;
    s = s + arr[3];
    i = i + 1;
  }
  return s;
}
|} in
  let p = F.Lower.compile src in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f)) p;
  let f = Ir.Program.func p "main" in
  ignore (Opt.Licm.run f);
  Alcotest.(check int64) "semantics preserved" 6L (eval ~args:[ 4L ] p)

let test_unroll_replicates () =
  let p = F.Lower.compile "fn main(n) { let s = 0; let i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }" in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f)) p;
  let before = total_blocks p in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Unroll.run ~config:Opt.Config.o2_nopgo f)) p;
  Ir.Verify.check_exn p;
  Alcotest.(check bool) "blocks duplicated" true (total_blocks p > before);
  (* Correct for every trip count, including 0 and odd. *)
  List.iter
    (fun n ->
      let expected = Int64.of_int (n * (n - 1) / 2) in
      Alcotest.(check int64) (Printf.sprintf "n=%d" n) expected
        (eval ~args:[ Int64.of_int n ] p))
    [ 0; 1; 2; 3; 7; 10 ]

let test_ifcvt_converts_diamond () =
  let src = "fn main(a) { let x = 0; if (a % 2 == 0) { x = a; } else { x = 0 - a; } return x; }" in
  let p = F.Lower.compile src in
  let config = Opt.Config.o2_nopgo in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config f)) p;
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Ifcvt.run ~config f)) p;
  Alcotest.(check bool) "select produced" true
    (count_instrs p (function I.Select _ -> true | _ -> false) > 0);
  Alcotest.(check int64) "even" 4L (eval ~args:[ 4L ] p);
  Alcotest.(check int64) "odd" (-5L) (eval ~args:[ 5L ] p)

let test_ifcvt_blocked_by_counter () =
  (* Traditional instrumentation counters are optimization barriers. *)
  let src = "fn main(a) { let x = 0; if (a % 2 == 0) { x = a; } else { x = 0 - a; } return x; }" in
  let p = F.Lower.compile src in
  let _im = Core.Instrument.instrument p in
  let config = Opt.Config.o2_nopgo in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config f)) p;
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Ifcvt.run ~config f)) p;
  Alcotest.(check int) "no select with counters" 0
    (count_instrs p (function I.Select _ -> true | _ -> false))

let test_inline_at_mechanics () =
  let p =
    F.Lower.compile
      "fn add3(x) { return x + 3; }\nfn main(a) { let r = add3(a); return r * 2; }"
  in
  Ir.Program.iter_funcs (fun f -> ignore (Opt.Simplify.run ~config:Opt.Config.o2_nopgo f)) p;
  let main = Ir.Program.func p "main" in
  (* find the call *)
  let site = ref None in
  Ir.Func.iter_blocks
    (fun b ->
      Vec.iteri
        (fun idx (i : I.t) ->
          match i.I.op with I.Call _ -> site := Some (b.Ir.Block.id, idx) | _ -> ())
        b.Ir.Block.instrs)
    main;
  let block, index = Option.get !site in
  (match Opt.Inline.inline_at p ~caller:main ~block ~index with
  | Some res ->
      Alcotest.(check bool) "block map nonempty" true (res.Opt.Inline.block_map <> [])
  | None -> Alcotest.fail "inline_at failed");
  Ir.Verify.check_exn p;
  Alcotest.(check int64) "semantics" 16L (eval ~args:[ 5L ] p);
  (* no calls remain *)
  Alcotest.(check int) "call gone" 0 (count_instrs p (function I.Call _ -> true | _ -> false))

let test_inline_preserves_inline_chain () =
  let p =
    F.Lower.compile
      "fn add3(x) { return x + 3; }\nfn main(a) { return add3(a) * 2; }"
  in
  Core.Pseudo_probe.insert p;
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  (* add3 should be inlined; its probes must carry an inline chain. *)
  let main = Ir.Program.func p "main" in
  let add3_guid = Ir.Guid.of_name "add3" in
  let found_chained = ref false in
  Ir.Func.iter_blocks
    (fun b ->
      Vec.iter
        (fun (i : I.t) ->
          match i.I.op with
          | I.Probe pr when Ir.Guid.equal pr.I.p_func add3_guid ->
              if i.I.dloc.Ir.Dloc.inlined_at <> [] then found_chained := true
          | _ -> ())
        b.Ir.Block.instrs)
    main;
  Alcotest.(check bool) "inlined probe has chain" true !found_chained

let test_inline_no_direct_recursion () =
  let p =
    F.Lower.compile
      "fn r(x) { if (x <= 0) { return 0; } return 1 + r(x - 1); }\nfn main(a) { return r(a); }"
  in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  Ir.Verify.check_exn p;
  Alcotest.(check int64) "recursion survives optimization" 5L (eval ~args:[ 5L ] p)

let test_drop_dead_functions () =
  let p =
    F.Lower.compile
      "fn unused(x) { return x; }\nfn tiny(x) { return x + 1; }\nfn main(a) { return tiny(a); }"
  in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  Alcotest.(check (option bool)) "unused dropped" None
    (Option.map (fun _ -> true) (Ir.Program.find_func p "unused"))

let test_pipeline_verified () =
  (* Full -O2 pipeline on every named workload keeps the IR well-formed. *)
  List.iter
    (fun (w : Core.Driver.workload) ->
      let p = F.Lower.compile w.Core.Driver.w_source in
      Opt.Pass.optimize ~config:{ Opt.Config.o2_nopgo with verify_between_passes = true } p;
      Ir.Verify.check_exn p)
    Csspgo_workloads.Suite.all

let suite =
  ( "opt",
    [
      Alcotest.test_case "constfold folds" `Quick test_constfold_folds;
      Alcotest.test_case "constfold branch" `Quick test_constfold_branch;
      Alcotest.test_case "dce keeps side effects" `Quick test_dce_keeps_side_effects;
      Alcotest.test_case "simplify unreachable" `Quick test_simplify_removes_unreachable;
      Alcotest.test_case "tail merge merges" `Quick test_tail_merge_merges;
      Alcotest.test_case "tail merge blocked by probes" `Quick test_tail_merge_blocked_by_probes;
      Alcotest.test_case "licm hoists" `Quick test_licm_hoists;
      Alcotest.test_case "licm aliasing" `Quick test_licm_no_hoist_when_stored;
      Alcotest.test_case "unroll replicates" `Quick test_unroll_replicates;
      Alcotest.test_case "ifcvt converts" `Quick test_ifcvt_converts_diamond;
      Alcotest.test_case "ifcvt blocked by counters" `Quick test_ifcvt_blocked_by_counter;
      Alcotest.test_case "inline_at mechanics" `Quick test_inline_at_mechanics;
      Alcotest.test_case "inline chain on probes" `Quick test_inline_preserves_inline_chain;
      Alcotest.test_case "no direct recursion inline" `Quick test_inline_no_direct_recursion;
      Alcotest.test_case "drop dead functions" `Quick test_drop_dead_functions;
      Alcotest.test_case "pipeline verified on workloads" `Slow test_pipeline_verified;
    ] )
