(* Lexer, parser, lowering. *)
module F = Csspgo_frontend
module Ir = Csspgo_ir

let run_main ?(args = []) src =
  let p = F.Lower.compile src in
  Ir.Verify.check_exn p;
  let bin = Csspgo_codegen.Emit.emit ~options:Csspgo_codegen.Emit.default_options p in
  (Csspgo_vm.Machine.run ~pmu:None bin ~entry:"main" ~args).Csspgo_vm.Machine.ret_value

let test_lexer_tokens () =
  let toks = F.Lexer.tokenize "fn main() { return 1 + 2; } // comment" in
  let kinds =
    List.map
      (fun t ->
        match t.F.Lexer.tok with
        | F.Lexer.KW k -> "kw:" ^ k
        | F.Lexer.IDENT i -> "id:" ^ i
        | F.Lexer.INT v -> "int:" ^ Int64.to_string v
        | F.Lexer.PUNCT p -> p
        | F.Lexer.EOF -> "eof")
      toks
  in
  Alcotest.(check (list string)) "token stream"
    [ "kw:fn"; "id:main"; "("; ")"; "{"; "kw:return"; "int:1"; "+"; "int:2"; ";"; "}"; "eof" ]
    kinds

let test_lexer_lines () =
  let toks = F.Lexer.tokenize "fn\n\nmain\n() {}" in
  let line_of name =
    List.find_map
      (fun t ->
        match t.F.Lexer.tok with
        | F.Lexer.IDENT i when String.equal i name -> Some t.F.Lexer.tline
        | F.Lexer.KW i when String.equal i name -> Some t.F.Lexer.tline
        | _ -> None)
      toks
  in
  Alcotest.(check (option int)) "fn line" (Some 1) (line_of "fn");
  Alcotest.(check (option int)) "main line" (Some 3) (line_of "main")

let test_lexer_block_comment_lines () =
  let toks = F.Lexer.tokenize "/* a\nb\nc */ x" in
  (match toks with
  | { F.Lexer.tok = F.Lexer.IDENT "x"; tline } :: _ ->
      Alcotest.(check int) "comment advances lines" 3 tline
  | _ -> Alcotest.fail "expected ident");
  Alcotest.check_raises "unterminated comment"
    (F.Lexer.Lex_error ("unterminated block comment", 1)) (fun () ->
      ignore (F.Lexer.tokenize "/* oops"))

let test_parser_precedence () =
  (* 2 + 3 * 4 = 14, (2 + 3) * 4 = 20 *)
  Alcotest.(check int64) "mul binds tighter" 14L (run_main "fn main() { return 2 + 3 * 4; }");
  Alcotest.(check int64) "parens" 20L (run_main "fn main() { return (2 + 3) * 4; }");
  Alcotest.(check int64) "comparison" 1L (run_main "fn main() { return 1 + 1 == 2; }");
  Alcotest.(check int64) "shift" 20L (run_main "fn main() { return 5 << 2; }")

let test_parser_errors () =
  let fails src =
    match F.Parser.parse src with
    | exception F.Parser.Parse_error _ -> true
    | exception F.Lexer.Lex_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing semicolon" true (fails "fn main() { return 1 }");
  Alcotest.(check bool) "unbalanced brace" true (fails "fn main() { return 1;");
  Alcotest.(check bool) "bad toplevel" true (fails "return 1;")

let test_short_circuit () =
  (* RHS must not evaluate when the LHS decides: division by zero returns 0
     in the VM, so use a store side effect to detect evaluation instead. *)
  let src =
    {|
    global cell[4];
    fn touch() { cell[0] = cell[0] + 1; return 1; }
    fn main(a) {
      let x = a > 10 && touch();
      let y = a > 100 || touch();
      return cell[0] * 10 + x + y * 2;
    }
    |}
  in
  (* a=5: && short-circuits (no touch), || evaluates touch -> cell=1, y=1 *)
  Alcotest.(check int64) "short circuit" 12L (run_main ~args:[ 5L ] src)

let test_while_break_continue () =
  let src =
    {|
    fn main(n) {
      let s = 0;
      let i = 0;
      while (i < n) {
        i = i + 1;
        if (i % 2 == 0) { continue; }
        if (i > 7) { break; }
        s = s + i;
      }
      return s;
    }
    |}
  in
  (* odd i <= 7: 1+3+5+7 = 16 *)
  Alcotest.(check int64) "break/continue" 16L (run_main ~args:[ 100L ] src)

let test_switch_semantics () =
  let src =
    {|
    fn classify(x) {
      switch (x) {
        case 0: return 100;
        case 1: return 200;
        case 5: return 500;
        default: return 1;
      }
    }
    fn main(a) {
      return classify(0) + classify(1) + classify(5) + classify(9) + a * 0;
    }
    |}
  in
  Alcotest.(check int64) "switch" 801L (run_main ~args:[ 0L ] src)

let test_negative_and_unary () =
  Alcotest.(check int64) "neg" (-5L) (run_main "fn main() { return -5; }");
  Alcotest.(check int64) "not true" 0L (run_main "fn main() { return !3; }");
  Alcotest.(check int64) "not false" 1L (run_main "fn main() { return !0; }")

let test_relative_lines () =
  (* Debug lines are relative to the fn keyword: adding comments above a
     function must not change its instructions' line offsets. *)
  let lines_of src =
    let p = F.Lower.compile src in
    let f = Ir.Program.func p "main" in
    Ir.Func.fold_blocks
      (fun acc b ->
        Csspgo_support.Vec.fold_left
          (fun acc (i : Ir.Instr.t) ->
            if Ir.Dloc.is_none i.Ir.Instr.dloc then acc
            else i.Ir.Instr.dloc.Ir.Dloc.line :: acc)
          acc b.Ir.Block.instrs)
      [] f
    |> List.sort compare
  in
  let base = "fn main(a) {\n  let x = a + 1;\n  return x * 2;\n}" in
  let shifted = "// c1\n// c2\n// c3\n" ^ base in
  Alcotest.(check (list int)) "comments above are invisible" (lines_of base)
    (lines_of shifted)

let test_module_assignment () =
  let p =
    F.Lower.compile "module alpha;\nfn a1() { return 1; }\nmodule beta;\nfn b1() { return 2; }\nfn main() { return a1() + b1(); }"
  in
  Alcotest.(check string) "alpha" "alpha" (Ir.Program.func p "a1").Ir.Func.modname;
  Alcotest.(check string) "beta" "beta" (Ir.Program.func p "b1").Ir.Func.modname;
  Alcotest.(check bool) "same module" true (Ir.Program.same_module p "b1" "main")

let test_unknown_variable () =
  Alcotest.(check bool) "unknown var raises" true
    (match F.Lower.compile "fn main() { return nope; }" with
    | exception F.Lower.Lower_error _ -> true
    | _ -> false)

let test_operators_exhaustive () =
  let cases =
    [ ("fn main() { return 7 & 3; }", 3L);
      ("fn main() { return 5 | 2; }", 7L);
      ("fn main() { return 6 ^ 3; }", 5L);
      ("fn main() { return 40 >> 3; }", 5L);
      ("fn main() { return 17 % 5; }", 2L);
      ("fn main() { return 3 < 3; }", 0L);
      ("fn main() { return 3 <= 3; }", 1L);
      ("fn main() { return 4 > 3; }", 1L);
      ("fn main() { return 2 >= 3; }", 0L);
      ("fn main() { return 3 != 3; }", 0L);
      ("fn main() { return -6 / 2; }", -3L) ]
  in
  List.iter (fun (src, expect) -> Alcotest.(check int64) src expect (run_main src)) cases

let test_nested_control_flow () =
  let src = {|
fn main(n) {
  let total = 0;
  let i = 0;
  while (i < n) {
    let j = 0;
    while (j < i) {
      if (j % 2 == 0) {
        switch (j % 3) {
          case 0: total = total + 1;
          case 1: total = total + 10;
          default: total = total + 100;
        }
      }
      j = j + 1;
    }
    i = i + 1;
  }
  return total;
}
|} in
  (* reference computed in OCaml *)
  let expect n =
    let total = ref 0L in
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        if j mod 2 = 0 then
          total :=
            Int64.add !total
              (match j mod 3 with 0 -> 1L | 1 -> 10L | _ -> 100L)
      done
    done;
    !total
  in
  List.iter
    (fun n ->
      Alcotest.(check int64) (Printf.sprintf "n=%d" n) (expect n)
        (run_main ~args:[ Int64.of_int n ] src))
    [ 0; 1; 5; 12 ]

let test_empty_return () =
  Alcotest.(check int64) "return; is return 0" 0L (run_main "fn main() { return; }")

let test_args_beyond_params_ignored () =
  Alcotest.(check int64) "extra args ignored" 5L
    (run_main ~args:[ 5L; 6L; 7L ] "fn main(a) { return a; }")

let test_params_default_zero () =
  Alcotest.(check int64) "missing args are zero" 0L
    (run_main ~args:[] "fn main(a, b) { return a + b; }")

let suite =
  ( "frontend",
    [
      Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
      Alcotest.test_case "lexer lines" `Quick test_lexer_lines;
      Alcotest.test_case "lexer block comments" `Quick test_lexer_block_comment_lines;
      Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
      Alcotest.test_case "parser errors" `Quick test_parser_errors;
      Alcotest.test_case "short circuit" `Quick test_short_circuit;
      Alcotest.test_case "while break continue" `Quick test_while_break_continue;
      Alcotest.test_case "switch" `Quick test_switch_semantics;
      Alcotest.test_case "unary ops" `Quick test_negative_and_unary;
      Alcotest.test_case "relative debug lines" `Quick test_relative_lines;
      Alcotest.test_case "module assignment" `Quick test_module_assignment;
      Alcotest.test_case "unknown variable" `Quick test_unknown_variable;
      Alcotest.test_case "operators exhaustive" `Quick test_operators_exhaustive;
      Alcotest.test_case "nested control flow" `Quick test_nested_control_flow;
      Alcotest.test_case "empty return" `Quick test_empty_return;
      Alcotest.test_case "extra args ignored" `Quick test_args_beyond_params_ignored;
      Alcotest.test_case "missing args zero" `Quick test_params_default_zero;
    ] )
