test/test_profile.ml: Alcotest Csspgo_ir Csspgo_profile Hashtbl Int64 List Option QCheck QCheck_alcotest
