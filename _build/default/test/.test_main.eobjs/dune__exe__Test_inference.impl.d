test/test_inference.ml: Alcotest Csspgo_frontend Csspgo_inference Csspgo_ir Csspgo_opt Format Gen Hashtbl Int64 List QCheck QCheck_alcotest
