test/test_frontend.ml: Alcotest Csspgo_codegen Csspgo_frontend Csspgo_ir Csspgo_support Csspgo_vm Int64 List Printf String
