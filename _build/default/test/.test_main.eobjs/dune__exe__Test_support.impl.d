test/test_support.ml: Alcotest Csspgo_support Fnv Heap Int64 List QCheck QCheck_alcotest Rng Vec
