test/test_profgen.ml: Alcotest Csspgo_codegen Csspgo_frontend Csspgo_ir Csspgo_opt Csspgo_profgen Csspgo_profile Csspgo_vm Hashtbl Int64 Option
