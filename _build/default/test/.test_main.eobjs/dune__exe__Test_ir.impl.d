test/test_ir.ml: Alcotest Csspgo_frontend Csspgo_ir Csspgo_support Hashtbl List Option String Vec
