test/test_codegen.ml: Alcotest Array Csspgo_codegen Csspgo_core Csspgo_frontend Csspgo_ir Csspgo_opt Csspgo_vm Csspgo_workloads Hashtbl List Printf
