test/test_opt.ml: Alcotest Array Csspgo_codegen Csspgo_core Csspgo_frontend Csspgo_ir Csspgo_opt Csspgo_support Csspgo_vm Csspgo_workloads Hashtbl Int64 List Option Printf Vec
