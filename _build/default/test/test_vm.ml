(* VM semantics and PMU model. *)
module F = Csspgo_frontend
module Ir = Csspgo_ir
module Cg = Csspgo_codegen
module Mach = Cg.Mach
module Vm = Csspgo_vm
module Opt = Csspgo_opt

let build ?(probes = false) ?(config = Opt.Config.o2_nopgo) src =
  let p = F.Lower.compile src in
  if probes then Csspgo_core.Pseudo_probe.insert p;
  Opt.Pass.optimize ~config p;
  Cg.Emit.emit ~options:Cg.Emit.default_options p

let test_arith_semantics () =
  let bin = build "fn main(a, b) { return (a * b + a / b - a % b) ^ (a & b) | (a << 2); }" in
  let run a b =
    (Vm.Machine.run ~pmu:None bin ~entry:"main" ~args:[ a; b ]).Vm.Machine.ret_value
  in
  let expect a b =
    let open Int64 in
    logor
      (logxor (sub (add (mul a b) (div a b)) (rem a b)) (logand a b))
      (shift_left a 2)
  in
  List.iter
    (fun (a, b) -> Alcotest.(check int64) "arith" (expect a b) (run a b))
    [ (17L, 5L); (100L, 3L); (7L, 7L); (123456L, 789L) ]

let test_division_by_zero_total () =
  let bin = build "fn main(a) { return a / 0 + a % 0; }" in
  Alcotest.(check int64) "div by zero is 0" 0L
    (Vm.Machine.run ~pmu:None bin ~entry:"main" ~args:[ 5L ]).Vm.Machine.ret_value

let test_array_wraps () =
  let bin = build "global g[8];\nfn main(a) { g[a] = 42; return g[a % 8]; }" in
  (* index 10 wraps to 2 for both store and load *)
  Alcotest.(check int64) "wrapped index" 42L
    (Vm.Machine.run ~pmu:None bin ~entry:"main" ~args:[ 10L ]).Vm.Machine.ret_value

let test_fuel_trap () =
  let bin = build "fn main(a) { let s = 0; let i = 0; while (i < a) { s = s + 1; i = i + 1; } return s; }" in
  Alcotest.(check bool) "fuel exhaustion traps" true
    (match Vm.Machine.run ~pmu:None ~fuel:100L bin ~entry:"main" ~args:[ 1000000L ] with
    | exception Vm.Machine.Trap _ -> true
    | _ -> false)

let test_lbr_records_branches () =
  let bin = build "fn main(n) { let s = 0; let i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }" in
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 200 })
      bin ~entry:"main" ~args:[ 2000L ]
  in
  Alcotest.(check bool) "samples collected" true (List.length r.Vm.Machine.samples > 3);
  List.iter
    (fun (s : Vm.Machine.sample) ->
      Alcotest.(check bool) "lbr bounded" true (Array.length s.Vm.Machine.s_lbr <= 16);
      (* consecutive entries form plausible ranges: target <= next source for
         linear runs (guaranteed by construction inside one run) *)
      Array.iter
        (fun (src, tgt) ->
          if src = 0 || tgt = 0 then Alcotest.fail "zero LBR entry")
        s.Vm.Machine.s_lbr)
    r.Vm.Machine.samples

let test_stack_samples_have_callers () =
  let src =
    {|
    fn inner(n) { let s = 0; let i = 0; while (i < n) { s = s + i * 3; i = i + 1; } return s; }
    fn outer(n) { return inner(n) + 1; }
    fn main(n) { let t = 0; let k = 0; while (k < 50) { t = t + outer(n); k = k + 1; } return t; }
    |}
  in
  (* Force no inlining so the call chain exists physically. *)
  let bin = build ~config:Opt.Config.o0 src in
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 100 })
      bin ~entry:"main" ~args:[ 40L ]
  in
  let deep =
    List.exists (fun (s : Vm.Machine.sample) -> Array.length s.Vm.Machine.s_stack >= 3)
      r.Vm.Machine.samples
  in
  Alcotest.(check bool) "some sample sees main->outer->inner" true deep

let test_counters_exact () =
  let src = "fn main(n) { let s = 0; let i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }" in
  let p = F.Lower.compile src in
  let im = Csspgo_core.Instrument.instrument p in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let r = Vm.Machine.run ~pmu:None bin ~entry:"main" ~args:[ 123L ] in
  let counts = Csspgo_core.Instrument.block_counts im r.Vm.Machine.counters in
  (* The loop body block must have executed exactly 123 times. *)
  let has_123 = Hashtbl.fold (fun _ c acc -> acc || Int64.equal c 123L) counts false in
  Alcotest.(check bool) "counter shows 123 iterations" true has_123;
  (* entry executed once *)
  let guid = Ir.Guid.of_name "main" in
  Alcotest.(check (option int64)) "entry once" (Some 1L)
    (Hashtbl.find_opt counts (guid, 0))

let test_value_profiles_captured () =
  let src = "global d[4];\nfn main(n) { let s = 0; let i = 0; while (i < n) { s = s + i / d[0]; i = i + 1; } return s; }" in
  let p = F.Lower.compile src in
  let vals = Csspgo_core.Instrument.instrument_values p in
  Alcotest.(check int) "one site" 1 vals.Csspgo_core.Instrument.n_sites;
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  let bin = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let r =
    Vm.Machine.run ~pmu:None ~globals_init:[ ("d", [| 7L; 0L; 0L; 0L |]) ] bin ~entry:"main"
      ~args:[ 50L ]
  in
  (match Hashtbl.find_opt r.Vm.Machine.value_profiles 0 with
  | Some hist ->
      Alcotest.(check (option int64)) "divisor 7 seen 50 times" (Some 50L)
        (Hashtbl.find_opt hist 7L)
  | None -> Alcotest.fail "no histogram")

let test_determinism () =
  let bin = build Csspgo_workloads.Suite.vecop_example in
  let run () =
    let r = Vm.Machine.run ~pmu:(Some Vm.Machine.default_pmu) bin ~entry:"main" ~args:[ 256L; 40L ] in
    (r.Vm.Machine.cycles, r.Vm.Machine.instructions, r.Vm.Machine.ret_value,
     List.length r.Vm.Machine.samples)
  in
  Alcotest.(check bool) "identical reruns" true (run () = run ())

let test_probes_cost_no_instructions () =
  let src = Csspgo_workloads.Suite.vecop_example in
  let plain = build src in
  let probed = build ~probes:true src in
  let run bin =
    let r = Vm.Machine.run ~pmu:None bin ~entry:"main" ~args:[ 128L; 10L ] in
    (r.Vm.Machine.ret_value, r.Vm.Machine.instructions)
  in
  let rv1, n1 = run plain and rv2, n2 = run probed in
  Alcotest.(check int64) "same result" rv1 rv2;
  (* Pseudo-probes may block a merge or forwarding (slightly different code)
     but must not add counter-like work: within 2%. *)
  let ratio = Int64.to_float n2 /. Int64.to_float n1 in
  if ratio > 1.02 then Alcotest.failf "probes added %.1f%% instructions" ((ratio -. 1.) *. 100.)

let test_instrumentation_is_expensive () =
  let src = Csspgo_workloads.Suite.vecop_example in
  let plain = build src in
  let p = F.Lower.compile src in
  let _ = Csspgo_core.Instrument.instrument p in
  Opt.Pass.optimize ~config:Opt.Config.o2_nopgo p;
  let instrumented = Cg.Emit.emit ~options:Cg.Emit.default_options p in
  let cycles bin =
    (Vm.Machine.run ~pmu:None bin ~entry:"main" ~args:[ 128L; 10L ]).Vm.Machine.cycles
  in
  let c1 = cycles plain and c2 = cycles instrumented in
  Alcotest.(check bool) "counters slow the binary by >20%" true
    (Int64.to_float c2 > 1.2 *. Int64.to_float c1)

let test_switch_dispatch () =
  let src = {|
fn main(op) {
  switch (op) {
    case 0: return 10;
    case 1: return 20;
    case 7: return 70;
    default: return 1;
  }
}
|} in
  let bin = build src in
  let run v = (Vm.Machine.run ~pmu:None bin ~entry:"main" ~args:[ v ]).Vm.Machine.ret_value in
  Alcotest.(check int64) "case 0" 10L (run 0L);
  Alcotest.(check int64) "case 7" 70L (run 7L);
  Alcotest.(check int64) "default" 1L (run 99L);
  Alcotest.(check int64) "negative scrutinee" 1L (run (-3L))

let test_tail_call_semantics () =
  (* Deep tail-recursive countdown must not change results under TCE. *)
  let src = "fn down(n, acc) { if (n <= 0) { return acc; } return down(n - 1, acc + n); }\nfn main(a) { return down(a, 0); }" in
  let bin = build src in
  Alcotest.(check int64) "sum 1..1000" 500500L
    (Vm.Machine.run ~pmu:None bin ~entry:"main" ~args:[ 1000L ]).Vm.Machine.ret_value

let test_lbr_depth_config () =
  let src = "fn main(n) { let s = 0; let i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }" in
  let bin = build src in
  let r =
    Vm.Machine.run
      ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 100; lbr_depth = 32 })
      bin ~entry:"main" ~args:[ 5000L ]
  in
  let full = List.exists (fun (s : Vm.Machine.sample) -> Array.length s.Vm.Machine.s_lbr = 32)
      r.Vm.Machine.samples in
  Alcotest.(check bool) "32-deep LBR fills" true full;
  List.iter
    (fun (s : Vm.Machine.sample) ->
      if Array.length s.Vm.Machine.s_lbr > 32 then Alcotest.fail "LBR overflow")
    r.Vm.Machine.samples

let test_pebs_suppresses_skid () =
  (* With PEBS on, skid_prob must have no effect: identical samples. *)
  let src = "fn f(x) { return x * 2 + 1; }\nfn main(n) { let s = 0; let i = 0; while (i < n) { s = s + f(i); i = i + 1; } return s; }" in
  let bin = build ~config:Opt.Config.o0 src in
  let run skid =
    (Vm.Machine.run
       ~pmu:(Some { Vm.Machine.default_pmu with sample_period = 97; pebs = true; skid_prob = skid })
       bin ~entry:"main" ~args:[ 2000L ])
      .Vm.Machine.samples
  in
  Alcotest.(check int) "same sample count" (List.length (run 0.0)) (List.length (run 0.9));
  Alcotest.(check bool) "identical stacks" true
    (List.for_all2
       (fun (a : Vm.Machine.sample) (b : Vm.Machine.sample) ->
         a.Vm.Machine.s_stack = b.Vm.Machine.s_stack)
       (run 0.0) (run 0.9))

let test_globals_init_shapes () =
  let src = "global g[4];\nfn main() { return g[0] + g[1] + g[2] + g[3]; }" in
  let bin = build src in
  let run init =
    (Vm.Machine.run ~pmu:None ~globals_init:[ ("g", init) ] bin ~entry:"main")
      .Vm.Machine.ret_value
  in
  Alcotest.(check int64) "exact" 10L (run [| 1L; 2L; 3L; 4L |]);
  Alcotest.(check int64) "short init zero-pads" 3L (run [| 1L; 2L |]);
  Alcotest.(check int64) "long init truncates" 10L (run [| 1L; 2L; 3L; 4L; 99L |]);
  Alcotest.(check int64) "missing init zeros" 0L
    (Vm.Machine.run ~pmu:None bin ~entry:"main").Vm.Machine.ret_value

let test_negative_index_wraps () =
  let src = "global g[8];\nfn main(a) { g[6] = 42; return g[a]; }" in
  let bin = build src in
  (* -2 mod 8 -> 6 under the VM's non-negative wrap *)
  Alcotest.(check int64) "negative index" 42L
    (Vm.Machine.run ~pmu:None bin ~entry:"main" ~args:[ -2L ]).Vm.Machine.ret_value

let suite =
  ( "vm",
    [
      Alcotest.test_case "arith semantics" `Quick test_arith_semantics;
      Alcotest.test_case "division by zero" `Quick test_division_by_zero_total;
      Alcotest.test_case "array wrapping" `Quick test_array_wraps;
      Alcotest.test_case "fuel trap" `Quick test_fuel_trap;
      Alcotest.test_case "lbr records" `Quick test_lbr_records_branches;
      Alcotest.test_case "stack samples" `Quick test_stack_samples_have_callers;
      Alcotest.test_case "counters exact" `Quick test_counters_exact;
      Alcotest.test_case "value profiles" `Quick test_value_profiles_captured;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "probes near zero cost" `Quick test_probes_cost_no_instructions;
      Alcotest.test_case "instrumentation expensive" `Quick test_instrumentation_is_expensive;
      Alcotest.test_case "switch dispatch" `Quick test_switch_dispatch;
      Alcotest.test_case "tail call semantics" `Quick test_tail_call_semantics;
      Alcotest.test_case "lbr depth config" `Quick test_lbr_depth_config;
      Alcotest.test_case "pebs suppresses skid" `Quick test_pebs_suppresses_skid;
      Alcotest.test_case "globals init shapes" `Quick test_globals_init_shapes;
      Alcotest.test_case "negative index wraps" `Quick test_negative_index_wraps;
    ] )
