(* Differential fuzzing campaign runner.

   Per seed: generate a MiniC program, build a fixed -O0 reference, then
   check three oracle families against it:
   - randomly permuted pass pipelines (sampled from [Opt.Pass.all_steps],
     probes/instrumentation/layout/inlining randomized) must compute the
     same result, with [Ir.Verify] run after every pass;
   - all five [Core.Driver] PGO variants must compute the same result;
   - the probe profile's block overlap against the instrumentation ground
     truth must stay above a floor (profile-quality regression oracle).

   Failures are minimized with [Reduce] and written to a corpus directory
   as a .minic reproducer plus a .repro replay note. Everything is
   deterministic in the seed. *)

module F = Csspgo_frontend
module Ir = Csspgo_ir
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module W = Csspgo_workloads
module Core = Csspgo_core
module O = Csspgo_orchestrator
module S = Csspgo_support
module P = Csspgo_profile
module D = Core.Driver
module Fl = Csspgo_fleet
module Obs = Csspgo_obs

(* --- plans ---------------------------------------------------------- *)

type plan = {
  pl_steps : Opt.Pass.step list;
  pl_probes : bool;
  pl_instrument : bool;
  pl_inline : bool;
  pl_probes_strong : bool;
  pl_layout : [ `Hot_path | `Ext_tsp ];
}

let plan_to_string pl =
  let b c = if c then '+' else '-' in
  Printf.sprintf "steps=%s probes%c instr%c inline%c strong%c layout=%s"
    (String.concat "," (List.map Opt.Pass.step_name pl.pl_steps))
    (b pl.pl_probes) (b pl.pl_instrument) (b pl.pl_inline) (b pl.pl_probes_strong)
    (match pl.pl_layout with `Hot_path -> "hot-path" | `Ext_tsp -> "ext-tsp")

let sample_plan rng =
  let arr = Array.of_list Opt.Pass.all_steps in
  S.Rng.shuffle rng arr;
  let steps =
    List.filter (fun _ -> not (S.Rng.chance rng 0.25)) (Array.to_list arr)
  in
  (* Sometimes repeat the cleanup pair, mirroring the default pipeline's
     second constfold/simplify round. *)
  let steps =
    if S.Rng.chance rng 0.3 then steps @ [ Opt.Pass.Constfold; Opt.Pass.Simplify ]
    else steps
  in
  {
    pl_steps = steps;
    pl_probes = S.Rng.bool rng;
    pl_instrument = S.Rng.chance rng 0.3;
    pl_inline = S.Rng.bool rng;
    pl_probes_strong = S.Rng.chance rng 0.3;
    pl_layout = (if S.Rng.bool rng then `Ext_tsp else `Hot_path);
  }

(* Decouple the plan stream from the program-generation stream (Gen also
   seeds its Rng with the raw seed). *)
let plan_rng seed = S.Rng.create (Int64.logxor seed 0x9E3779B97F4A7C15L)

(* --- oracles -------------------------------------------------------- *)

type failure_kind = Result_mismatch | Verify_error | Quality_low | Crash

let kind_name = function
  | Result_mismatch -> "result-mismatch"
  | Verify_error -> "verify-error"
  | Quality_low -> "quality-low"
  | Crash -> "crash"

type site =
  | Reference
  | Plan of plan
  | Variant of D.variant
  | Quality
  | Stream of D.variant
  | Stale of { sl_variant : D.variant option; sl_drift_seed : int64; sl_edits : int }
  | Format of string  (** which leg of the format oracle family *)
  | Fleet of string  (** which leg of the fleet merge oracle family *)
  | Parcorr of string  (** which profile shape the parallel-correlation
                           oracle was checking *)
  | Health of string  (** which leg of the health telemetry oracle family *)
  | Labels of string  (** which leg of the request-label oracle family *)

let site_to_string = function
  | Reference -> "reference (-O0 baseline)"
  | Plan pl -> "plan " ^ plan_to_string pl
  | Variant v -> "pgo variant " ^ D.variant_name v
  | Quality -> "probe-vs-instrumentation profile quality"
  | Stream v -> "streaming-vs-materialized profile (" ^ D.variant_name v ^ ")"
  | Stale s ->
      (* Both seeds in the message: the campaign seed is on the FAIL line,
         the edit-script seed here, so any staleness counterexample replays
         from the CLI in one command. *)
      Printf.sprintf "stale matching %s (drift seed %Ld, %d edits)"
        (match s.sl_variant with
        | Some v -> D.variant_name v
        | None -> "probe-vs-dwarf recovery")
        s.sl_drift_seed s.sl_edits
  | Format leg -> "profile format (" ^ leg ^ ")"
  | Fleet leg -> "fleet merge (" ^ leg ^ ")"
  | Parcorr shape -> "parallel correlation (" ^ shape ^ ")"
  | Health leg -> "health telemetry (" ^ leg ^ ")"
  | Labels leg -> "request labels (" ^ leg ^ ")"

type failure = {
  fl_seed : int64;
  fl_kind : failure_kind;
  fl_site : site;
  fl_detail : string;
  fl_source : string;
  fl_minimized : string option;
}

type config = {
  cf_plans_per_seed : int;
  cf_n_funcs : int;
  cf_size : int;
  cf_fuel : int64;           (** budget for the -O0 reference run *)
  cf_variants : bool;        (** also run the five Driver PGO variants *)
  cf_quality_floor : float;
  cf_quality_min_total : int64;
      (** skip the quality oracle below this ground-truth block count:
          overlap on nearly-unexecuted programs is all noise *)
  cf_minimize : bool;
  cf_max_failures : int option;  (** stop the campaign after this many *)
  cf_stream_oracle : bool;
      (** streaming-vs-materialized profile byte-identity differential *)
  cf_stale_oracle : bool;
      (** stale-profile matching oracle family: drift the source with a
          seeded edit script, stale-match, and check that matching never
          crashes, the stale-built binary computes the drifted program's
          -O0 result, and probe recovery >= DWARF recovery *)
  cf_stale_edits : int;      (** drift edit-script length for the oracle *)
  cf_format_oracle : bool;
      (** binary/text format oracle family: every pipeline profile dump
          must survive text -> binary -> text byte-identically, sample
          logs must round-trip through both forms, and an incremental
          (cache-warm) rebuild must produce the same binary as a clean
          one *)
  cf_fleet_oracle : bool;
      (** fleet merge oracle family: a sharded multi-instance fleet at
          full duty must produce the profile a single instance serving the
          whole stream would ([Fleet.Sim]), draining must be independent
          of the job count, and [Profile.Merge] must satisfy its laws
          (commutative, associative, weight-linear, identity-on-empty) on
          real correlated profiles from two drifted binary versions *)
  cf_parcorr_oracle : bool;
      (** parallel-correlation oracle family: sharded correlation over the
          chunk-split sample log ([Fleet.Build.correlate_chunks] /
          [Core.Par_corr]) must be byte-identical to the serial streaming
          correlator on the whole log, for every profile shape and at
          every job count — the determinism claim the fused fleet drain
          rides on. A tiny shard target forces real multi-shard merges on
          the fuzzer's short logs. *)
  cf_health_oracle : bool;
      (** health telemetry oracle family: a health-instrumented fleet
          window (fresh registry, fixed clock) must close to byte-identical
          canonical report and series JSON at -j 1 and -j 2, both
          documents must reparse as fixed points of the strict Json
          parser, [Obs.Series.merge] must satisfy its laws (commutative,
          associative, identity-on-empty) on really-recorded windows, and
          the OpenMetrics exposition must render with its [# EOF] trailer *)
  cf_label_oracle : bool;
      (** request-label oracle family: label the training stream with two
          synthetic tenants and demand (1) slice-then-merge identity —
          [Fleet.Build.correlate_labeled]'s blend is byte-identical to the
          unlabeled serial correlator on the same log, for every profile
          shape and job count, with slice weights matching the observed
          per-label sample counts; (2) label-free logs decode as the
          single implicit slice; (3) forcing v3 framing on an unlabeled
          log downgrades losslessly — the decoded log re-encodes to the
          plain v2 bytes *)
  cf_inject : (string * (Ir.Func.t -> unit)) option;
      (** deliberately broken extra pass appended to every plan pipeline —
          the harness's own mutation test *)
}

let default_config =
  {
    cf_plans_per_seed = 4;
    cf_n_funcs = 5;
    cf_size = 2;
    cf_fuel = 20_000_000L;
    cf_variants = true;
    cf_quality_floor = 0.5;
    cf_quality_min_total = 300L;
    cf_minimize = true;
    cf_max_failures = None;
    cf_stream_oracle = true;
    cf_stale_oracle = true;
    cf_stale_edits = 3;
    cf_format_oracle = true;
    cf_fleet_oracle = true;
    cf_parcorr_oracle = true;
    cf_health_oracle = true;
    cf_label_oracle = true;
    cf_inject = None;
  }

(* A constfold that "folds" conditional branches by dropping the guard and
   always taking the false edge — the planted miscompile used to prove the
   harness detects and minimizes real semantic bugs. *)
let planted_bug =
  ( "broken-constfold-drops-guard",
    fun (f : Ir.Func.t) ->
      Ir.Func.iter_blocks
        (fun b ->
          match b.Ir.Block.term with
          | Ir.Instr.Br (_, _, els) -> Ir.Block.set_term b (Ir.Instr.Jmp els)
          | _ -> ())
        f )

exception Discarded
exception Fail of failure_kind * site * string

let guarded_run site f =
  try f () with
  | Discarded -> raise Discarded
  | Fail _ as e -> raise e
  | e -> raise (Fail (Crash, site, Printexc.to_string e))

let guarded_build site f =
  try f () with
  | (Discarded | Fail _) as e -> raise e
  | Failure msg -> raise (Fail (Verify_error, site, msg))
  | e -> raise (Fail (Crash, site, Printexc.to_string e))

let run_bin ~fuel bin args =
  match Vm.Machine.run ~pmu:None ~fuel bin ~entry:"main" ~args with
  | r -> r.Vm.Machine.ret_value
  | exception Vm.Machine.Trap "fuel exhausted" -> raise Discarded

(* The -O0 reference is pure in the source, so it is hoisted through the
   artifact cache: one compile per seed, however many plans, variants, and
   minimizer replays look at it. *)
let build_reference ?cache src =
  let build () =
    let p = F.Lower.compile src in
    Opt.Pass.optimize ~config:Opt.Config.o0 p;
    Ir.Verify.check_exn p;
    Cg.Emit.emit ~options:Cg.Emit.default_options p
  in
  match cache with
  | None -> build ()
  | Some c ->
      O.Cache.memo c ~kind:"o0-reference"
        ~key:[ Printf.sprintf "%Lx" (S.Fnv.hash_string src) ]
        ~ser:(fun b -> Marshal.to_string b [])
        ~de:(fun s -> Marshal.from_string s 0)
        build

let config_of_plan pl =
  {
    Opt.Config.o2 with
    Opt.Config.inline_mode =
      (if pl.pl_inline then Opt.Config.Inline_static else Opt.Config.Inline_none);
    probes_strong = pl.pl_probes_strong;
    verify_between_passes = true;
  }

let build_plan ?inject pl src =
  let p = F.Lower.compile src in
  if pl.pl_probes then Core.Pseudo_probe.insert p;
  if pl.pl_instrument then ignore (Core.Instrument.instrument p);
  Opt.Pass.optimize_with ~config:(config_of_plan pl) ~steps:pl.pl_steps p;
  (match inject with
  | Some (_, g) ->
      Ir.Program.iter_funcs g p;
      Ir.Verify.check_exn p
  | None -> ());
  Cg.Emit.emit
    ~options:{ Cg.Emit.default_options with Cg.Emit.layout = pl.pl_layout }
    p

(* Fuzz programs are tiny: at the driver's default sampling period they
   finish within a handful of samples and every probe profile comes out
   empty. Sample much denser and repeat the training input so the quality
   oracle sees a real profile. *)
let driver_options =
  {
    D.default_options with
    D.pmu = { Vm.Machine.default_pmu with Vm.Machine.sample_period = 101 };
  }

let train_reps = 8

let workload_of ~seed src args =
  let spec = { D.rs_args = args; rs_globals = [] } in
  {
    D.w_name = Printf.sprintf "fuzz-%Ld" seed;
    w_source = src;
    w_entry = "main";
    w_train = List.init train_reps (fun _ -> spec);
    w_eval = [ spec ];
  }

let args_of_seed seed = [ Int64.of_int (Int64.to_int seed land 0xff); 17L ]

let all_variants =
  [ D.Nopgo; D.Autofdo; D.Csspgo_probe_only; D.Csspgo_full; D.Instr_pgo ]

let total_counts p =
  let t = ref 0L in
  Ir.Program.iter_funcs (fun f -> t := Int64.add !t (Ir.Func.total_count f)) p;
  !t

type checked = C_pass | C_discard | C_fail of failure_kind * site * string

(* Run one plan against the reference result; raises [Fail] / [Discarded]. *)
let check_plan cfg pl src args ref_result =
  let site = Plan pl in
  let bin = guarded_build site (fun () -> build_plan ?inject:cfg.cf_inject pl src) in
  let r = guarded_run site (fun () -> run_bin ~fuel:(Int64.mul 4L cfg.cf_fuel) bin args) in
  if not (Int64.equal r ref_result) then
    raise
      (Fail
         ( Result_mismatch,
           site,
           Printf.sprintf "reference=%Ld plan=%Ld" ref_result r ))

(* Run one Driver PGO variant against the reference result. Submitted as a
   staged plan so the cache hooks share stages across variants of a seed —
   the reference symbol/checksum info, the probed profiling run (probe-only
   and full), and the flat probe correlation all compute once. *)
let check_variant ?hooks cfg v w args ref_result =
  let site = Variant v in
  let o =
    guarded_build site (fun () ->
        D.Plan.run ?hooks (D.Plan.make ~options:driver_options ~variant:v w))
  in
  let r =
    guarded_run site (fun () -> run_bin ~fuel:(Int64.mul 4L cfg.cf_fuel) o.D.o_binary args)
  in
  if not (Int64.equal r ref_result) then
    raise
      (Fail
         ( Result_mismatch,
           site,
           Printf.sprintf "reference=%Ld %s=%Ld" ref_result (D.variant_name v) r ));
  o

(* Streaming-vs-materialized differential: the zero-materialization sink
   pipeline must reproduce the materialized sample-list pipeline's canonical
   Text_io dumps byte for byte. Bounded to AutoFDO + full CSSPGO — between
   them these exercise every streaming consumer (range aggregation, probe
   correlation, missing-frame inference, context reconstruction). *)
let stream_variants = [ D.Autofdo; D.Csspgo_full ]

let check_stream v ~seed src =
  let site = Stream v in
  let w = workload_of ~seed src (args_of_seed seed) in
  let mat =
    guarded_build site (fun () ->
        D.profile_pipeline_texts ~options:driver_options ~streaming:false v w)
  in
  let str =
    guarded_build site (fun () ->
        D.profile_pipeline_texts ~options:driver_options ~streaming:true v w)
  in
  if mat <> str then begin
    let tag =
      match
        List.find_opt (fun (t, x) -> List.assoc_opt t str <> Some x) mat
      with
      | Some (t, _) -> t
      | None -> "shape"
    in
    raise
      (Fail
         ( Result_mismatch,
           site,
           Printf.sprintf "streaming %s profile differs from materialized" tag ))
  end

(* The overlap oracle is only meaningful when the profiling run was long
   enough for the PMU to fire a useful number of times.  A program can
   execute hundreds of blocks and still finish in fewer cycles than one
   sampling period, in which case the probe profile is *correctly* empty
   and overlap 0.0 says nothing about correlation quality.  Require both
   enough ground-truth weight and enough expected samples. *)
let quality_min_samples = 20L

let check_quality cfg ?on_overlap ~truth ~cand ~pcycles () =
  let period =
    Int64.of_int driver_options.D.pmu.Vm.Machine.sample_period
  in
  let expected_samples = Int64.div pcycles period in
  if
    Int64.compare (total_counts truth) cfg.cf_quality_min_total >= 0
    && Int64.compare expected_samples quality_min_samples >= 0
  then begin
    let ov = Core.Quality.block_overlap ~truth cand in
    (match on_overlap with Some f -> f ov | None -> ());
    if ov < cfg.cf_quality_floor then
      raise
        (Fail
           ( Quality_low,
             Quality,
             Printf.sprintf "block overlap %.3f below floor %.2f" ov
               cfg.cf_quality_floor ))
  end

(* Stale-matching oracle family. Drift the source with a seeded edit script
   (seed derived from the campaign seed, decoupled from the generation and
   plan streams), then for each sampling variant run the stale pipeline —
   profile version N, match + rebuild version N+1 — and check:
   - matching and the stale-guided rebuild never crash;
   - the stale-built binary computes the drifted program's own -O0 result
     (drift edits may legitimately change semantics, so the N+1 reference
     is the oracle, not the original one);
   - count recovery of the probe matcher is never below the DWARF matcher's
     (the paper's stability claim), once the profiling run was long enough
     to carry signal. *)
let drift_seed_of seed = Int64.logxor seed 0xC3A5C85C97CB3127L

let check_stale ?hooks ?cache cfg ~seed src args =
  let drift_seed = drift_seed_of seed in
  let edits = cfg.cf_stale_edits in
  let site v = Stale { sl_variant = v; sl_drift_seed = drift_seed; sl_edits = edits } in
  let d =
    guarded_build (site None) (fun () ->
        W.Drift.apply ~seed:drift_seed ~edits src)
  in
  let new_src = d.W.Drift.dr_source in
  let new_ref =
    let bin = guarded_build (site None) (fun () -> build_reference ?cache new_src) in
    guarded_run (site None) (fun () -> run_bin ~fuel:cfg.cf_fuel bin args)
  in
  let w = workload_of ~seed src args in
  let check v =
    let o =
      guarded_build (site (Some v)) (fun () ->
          D.Plan.run ?hooks
            (D.Plan.make_stale ~options:driver_options ~variant:v
               ~stale_source:new_src w))
    in
    let r =
      guarded_run (site (Some v)) (fun () ->
          run_bin ~fuel:(Int64.mul 4L cfg.cf_fuel) o.D.o_binary args)
    in
    if not (Int64.equal r new_ref) then
      raise
        (Fail
           ( Result_mismatch,
             site (Some v),
             Printf.sprintf "N+1 reference=%Ld stale %s=%Ld" new_ref
               (D.variant_name v) r ));
    o
  in
  let o_dwarf = check D.Autofdo in
  let o_probe = check D.Csspgo_probe_only in
  let (_ : D.outcome) = check D.Csspgo_full in
  let period = Int64.of_int driver_options.D.pmu.Vm.Machine.sample_period in
  let expected_samples = Int64.div o_probe.D.o_profiling_cycles period in
  let rate (o : D.outcome) =
    match o.D.o_stale_report with
    | Some r -> Core.Stale_match.recovery_rate r
    | None -> 1.0
  in
  if Int64.compare expected_samples quality_min_samples >= 0 then begin
    let pr = rate o_probe and dr = rate o_dwarf in
    if pr +. 1e-9 < dr then
      raise
        (Fail
           ( Quality_low,
             site None,
             Printf.sprintf "probe recovery %.4f below dwarf recovery %.4f" pr dr ))
  end

(* Format oracle family (Binary_io / Sample_log / incremental rebuilds):
   - every canonical text profile the pipeline produces must survive
     text -> binary -> text byte-identically (canonical text equality is
     structural equality, so this also proves the binary path feeds the
     pipeline the same profile);
   - a recorded sample log must round-trip through both its text and its
     binary form;
   - with a warm artifact cache, a repeat build must reuse the final
     binary outright and an incremental rebuild of a drifted source must
     produce a binary byte-identical to a cold clean rebuild. *)

(* Everything deterministic in a [Mach.binary] except [addr_index], whose
   hash-table layout depends on insertion history. [No_sharing] keeps the
   projection structural: binaries respliced from cached functions carry
   different subterm sharing than freshly emitted ones. *)
let bin_projection (b : Cg.Mach.binary) =
  Marshal.to_string
    ( b.Cg.Mach.funcs,
      b.Cg.Mach.insts,
      b.Cg.Mach.probes,
      b.Cg.Mach.n_counters,
      b.Cg.Mach.globals,
      b.Cg.Mach.text_size,
      b.Cg.Mach.debug_size,
      b.Cg.Mach.probe_meta_size )
    [ Marshal.No_sharing ]

let check_format ?cache ~seed src args =
  let w = workload_of ~seed src args in
  List.iter
    (fun v ->
      let site = Format ("text-binary round-trip " ^ D.variant_name v) in
      let texts =
        guarded_build site (fun () ->
            D.profile_pipeline_texts ~options:driver_options ~streaming:true v w)
      in
      List.iter
        (fun (tag, text) ->
          (* Tiny fuzz programs can yield empty dumps (e.g. autofdo with no
             surviving samples); empty text has no kind to round-trip. *)
          if String.length (String.trim text) = 0 then ()
          else
          guarded_build site (fun () ->
              let p = P.Text_io.of_string text in
              let b = P.Binary_io.encode p in
              if not (P.Binary_io.is_binary b) then
                raise (Fail (Result_mismatch, site, tag ^ ": encoding not sniffable"));
              match P.Binary_io.decode b with
              | Error e ->
                  raise
                    (Fail
                       ( Result_mismatch,
                         site,
                         tag ^ ": decode failed: " ^ S.Wire.error_to_string e ))
              | Ok p' ->
                  if not (String.equal (P.Text_io.to_string p') text) then
                    raise
                      (Fail
                         ( Result_mismatch,
                           site,
                           tag ^ ": binary round-trip not byte-identical" ))))
        texts)
    stream_variants;
  let site = Format "sample-log round-trip" in
  guarded_build site (fun () ->
      (* Probed profiling build, training runs streamed straight into a
         recording log (no boxed sample-list materialization). *)
      let prog = F.Lower.compile w.D.w_source in
      Core.Pseudo_probe.insert prog;
      Opt.Pass.optimize ~config:driver_options.D.opt_profiling prog;
      let bin = Cg.Emit.emit ~options:driver_options.D.emit_opts prog in
      let log = Vm.Sample_log.create () in
      List.iter
        (fun (spec : D.run_spec) ->
          ignore
            (Vm.Machine.run ~pmu:(Some driver_options.D.pmu)
               ~sink:(Vm.Sample_log.sink log) ~globals_init:spec.D.rs_globals
               ~args:spec.D.rs_args bin ~entry:w.D.w_entry))
        w.D.w_train;
      let txt = Vm.Sample_log.to_text log in
      (match Vm.Sample_log.of_text txt with
      | Ok log' when String.equal (Vm.Sample_log.to_text log') txt -> ()
      | Ok _ ->
          raise (Fail (Result_mismatch, site, "text round-trip not byte-identical"))
      | Error e -> raise (Fail (Result_mismatch, site, S.Wire.error_to_string e)));
      match Vm.Sample_log.decode (Vm.Sample_log.encode log) with
      | Ok log' when String.equal (Vm.Sample_log.to_text log') txt -> ()
      | Ok _ ->
          raise (Fail (Result_mismatch, site, "binary round-trip not byte-identical"))
      | Error e -> raise (Fail (Result_mismatch, site, S.Wire.error_to_string e)));
  let site = Format "incremental-vs-clean rebuild" in
  guarded_build site (fun () ->
      ignore cache;
      let c = O.Cache.create () in
      let stats = O.Orchestrate.create_stats () in
      let h = O.Orchestrate.hooks ~stats c in
      let plan = D.Plan.make ~options:driver_options ~variant:D.Csspgo_full w in
      let cold = D.Plan.run ~hooks:h plan in
      let warm = D.Plan.run ~hooks:h plan in
      if
        not
          (String.equal (bin_projection cold.D.o_binary) (bin_projection warm.D.o_binary))
      then raise (Fail (Result_mismatch, site, "warm rebuild differs from cold build"));
      let d = W.Drift.apply ~seed:(drift_seed_of seed) ~edits:1 src in
      let stale_plan =
        D.Plan.make_stale ~options:driver_options ~variant:D.Csspgo_full
          ~stale_source:d.W.Drift.dr_source w
      in
      let inc = D.Plan.run ~hooks:h stale_plan in
      let clean = D.Plan.run stale_plan in
      if
        not
          (String.equal (bin_projection inc.D.o_binary) (bin_projection clean.D.o_binary))
      then
        raise
          (Fail (Result_mismatch, site, "incremental rebuild differs from clean rebuild")))

(* Fleet merge oracle family (Fleet.Sim / Profile.Merge):
   - a 3-instance 2-shard fleet at duty 1.0 must reproduce the profile of
     one instance serving the whole stream (contiguous partitioning +
     deterministic drain order), and draining with 2 jobs must match 1;
   - Profile.Merge's laws hold on real correlated profiles: the oracle
     correlates two drifted binary versions and checks commutativity,
     associativity, weight-linearity and identity-on-empty against
     canonical text bytes, on both the context tries and their flattened
     probe views. *)

let fleet_config =
  {
    Fl.Sim.default with
    Fl.Sim.f_options = driver_options;
    f_shards = 2;
    f_batch_requests = 3;
  }

let check_fleet ~seed src args =
  let w = workload_of ~seed src args in
  let version ?(id = 0) ~n source =
    { Fl.Sim.v_id = id; v_source = source; v_weight = 1L; v_instances = n }
  in
  let ts (o : Fl.Sim.outcome) = P.Text_io.to_string o.Fl.Sim.fs_profile in
  let site = Fleet "single-vs-sharded identity" in
  guarded_build site (fun () ->
      let single = Fl.Sim.run fleet_config ~workload:w ~versions:[ version ~n:1 src ] in
      let fleet = Fl.Sim.run fleet_config ~workload:w ~versions:[ version ~n:3 src ] in
      if not (String.equal (ts single) (ts fleet)) then
        raise
          (Fail
             ( Result_mismatch,
               site,
               "3-instance fleet profile differs from single-instance baseline" ));
      let fleet2 =
        Fl.Sim.run
          { fleet_config with Fl.Sim.f_jobs = 2 }
          ~workload:w
          ~versions:[ version ~n:3 src ]
      in
      if not (String.equal (ts fleet) (ts fleet2)) then
        raise (Fail (Result_mismatch, site, "-j 2 drain differs from -j 1")));
  let site = Fleet "merge laws" in
  guarded_build site (fun () ->
      let d = W.Drift.apply ~seed:(drift_seed_of seed) ~edits:2 src in
      let out =
        Fl.Sim.run fleet_config ~workload:w
          ~versions:
            [ version ~id:0 ~n:2 src; version ~id:1 ~n:2 d.W.Drift.dr_source ]
      in
      let p0, p1 =
        match out.Fl.Sim.fs_per_version with
        | [ a; b ] -> (a.Fl.Sim.pv_profile, b.Fl.Sim.pv_profile)
        | _ -> raise (Fail (Result_mismatch, site, "expected two versions"))
      in
      let laws kind name p0 p1 =
        let fail leg =
          raise (Fail (Result_mismatch, site, name ^ ": merge not " ^ leg))
        in
        let wtd l = P.Text_io.to_string (P.Merge.weighted ~kind l) in
        let merge2 a b = P.Merge.weighted ~kind [ (1L, a); (1L, b) ] in
        (* a distinct third profile for associativity *)
        let p2 = P.Merge.weighted ~kind [ (2L, p0) ] in
        if not (String.equal (wtd [ (1L, p0); (1L, p1) ]) (wtd [ (1L, p1); (1L, p0) ]))
        then fail "commutative";
        if
          not
            (String.equal
               (P.Text_io.to_string (merge2 (merge2 p0 p1) p2))
               (P.Text_io.to_string (merge2 p0 (merge2 p1 p2))))
        then fail "associative";
        if
          not
            (String.equal
               (wtd [ (3L, p0) ])
               (wtd [ (1L, p0); (1L, p0); (1L, p0) ]))
        then fail "weight-linear";
        if
          not
            (String.equal
               (P.Text_io.to_string (merge2 p0 (P.Merge.empty kind)))
               (P.Text_io.to_string p0))
        then fail "identity-on-empty"
      in
      laws P.Text_io.Ctx "ctx" p0 p1;
      let flatten p =
        match p with
        | P.Text_io.Ctx_prof trie -> P.Text_io.Probe_prof (P.Merge.flatten_ctx trie)
        | _ -> raise (Fail (Result_mismatch, site, "fleet profile not a ctx trie"))
      in
      laws P.Text_io.Probe "flat" (flatten p0) (flatten p1))

(* Parallel-correlation oracle family (Core.Par_corr / Fleet.Build):
   correlate one training log twice per profile shape — serially over the
   whole log, and sharded over its chunk-split form at several job counts
   — and demand byte-identical canonical text (trie plus flat baseline for
   Ctx). A tiny chunk size / shard target forces multiple shards even on
   the fuzzer's short logs, so the exactness of every per-shard reduction
   (counter addition, edge-set union, equal-weight Merge) is actually
   exercised, not vacuously single-sharded. *)

let parcorr_chunk = 16

let check_parcorr ~seed src args =
  let w = workload_of ~seed src args in
  List.iter
    (fun shape ->
      let site = Parcorr (Fl.Build.shape_name shape) in
      guarded_build site (fun () ->
          let b =
            Fl.Build.profiling_build ~options:driver_options ~shape ~source:src
          in
          let log = Vm.Sample_log.create () in
          List.iter
            (fun (spec : D.run_spec) ->
              ignore
                (Vm.Machine.run ~pmu:(Some driver_options.D.pmu)
                   ~sink:(Vm.Sample_log.sink log)
                   ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args
                   b.Fl.Build.vb_bin ~entry:w.D.w_entry))
            w.D.w_train;
          let text (p, flat) =
            P.Text_io.to_string p
            ^
            match flat with
            | Some f -> P.Text_io.to_string (P.Text_io.Probe_prof f)
            | None -> ""
          in
          let serial =
            text (Fl.Build.correlate ~options:driver_options ~shape b log)
          in
          let chunks = Vm.Sample_log.split ~chunk:parcorr_chunk log in
          List.iter
            (fun jobs ->
              let par =
                text
                  (Fl.Build.correlate_chunks ~shard_target:parcorr_chunk ~jobs
                     ~options:driver_options ~shape b chunks)
              in
              if not (String.equal serial par) then
                raise
                  (Fail
                     ( Result_mismatch,
                       site,
                       Printf.sprintf
                         "-j %d sharded correlation differs from serial" jobs )))
            [ 1; 2 ]))
    [ Fl.Build.Lines; Fl.Build.Probes; Fl.Build.Ctx ]

(* Health telemetry oracle family (Obs.Series / Obs.Health / Obs.Export):
   - a health-instrumented fleet window (fresh registry per run, fixed
     clock) must close to byte-identical canonical report and series JSON
     at -j 1 and -j 2 — the determinism claim the fleet health reports
     ride on;
   - both canonical documents must reparse through the strict Json parser
     as print/parse fixed points;
   - [Obs.Series.merge]'s laws (commutative, associative,
     identity-on-empty) hold on the really-recorded windows, compared as
     canonical JSON bytes;
   - the OpenMetrics exposition renders without crashing and carries the
     spec's terminating "# EOF" line. *)

let check_health ~seed src args =
  let w = workload_of ~seed src args in
  let version n =
    { Fl.Sim.v_id = 0; v_source = src; v_weight = 1L; v_instances = n }
  in
  let window jobs =
    let metrics = Obs.Metrics.create () in
    let series = Obs.Series.create () in
    let tracker = Obs.Health.create () in
    let (_ : Fl.Sim.outcome) =
      Fl.Sim.run ~metrics ~series ~health:tracker
        { fleet_config with Fl.Sim.f_jobs = jobs }
        ~workload:w ~versions:[ version 2 ]
    in
    (series, tracker)
  in
  let sj s = Obs.Json.to_string (Obs.Series.to_json s) in
  let site = Health "report determinism" in
  let s1, s2 =
    guarded_build site (fun () ->
        let s1, t1 = window 1 in
        let s2, t2 = window 2 in
        let rj t =
          Obs.Json.to_string (Obs.Health.report_to_json (Obs.Health.report t))
        in
        if not (String.equal (rj t1) (rj t2)) then
          raise
            (Fail (Result_mismatch, site, "-j 2 health report differs from -j 1"));
        if not (String.equal (sj s1) (sj s2)) then
          raise (Fail (Result_mismatch, site, "-j 2 series differs from -j 1"));
        List.iter
          (fun (tag, txt) ->
            match Obs.Json.parse txt with
            | Ok j when String.equal (Obs.Json.to_string j) txt -> ()
            | Ok _ ->
                raise
                  (Fail
                     ( Result_mismatch,
                       site,
                       tag ^ ": canonical JSON not a print/parse fixed point" ))
            | Error e -> raise (Fail (Crash, site, tag ^ ": " ^ e)))
          [ ("report", rj t1); ("series", sj s1) ];
        (s1, s2))
  in
  let site = Health "series merge laws" in
  guarded_build site (fun () ->
      let fail leg = raise (Fail (Result_mismatch, site, "merge not " ^ leg)) in
      let m = Obs.Series.merge in
      if not (String.equal (sj (m s1 s2)) (sj (m s2 s1))) then fail "commutative";
      (* a third operand with doubled deltas, so association is not vacuous *)
      let s3 = m s1 s2 in
      if not (String.equal (sj (m (m s1 s2) s3)) (sj (m s1 (m s2 s3)))) then
        fail "associative";
      if not (String.equal (sj (m s1 (Obs.Series.create ()))) (sj s1)) then
        fail "identity-on-empty");
  let site = Health "openmetrics exposition" in
  guarded_build site (fun () ->
      let metrics = Obs.Metrics.create () in
      let series = Obs.Series.create () in
      let (_ : Fl.Sim.outcome) =
        Fl.Sim.run ~metrics ~series fleet_config ~workload:w
          ~versions:[ version 1 ]
      in
      let check tag txt =
        let eof = "# EOF\n" in
        let n = String.length txt and k = String.length eof in
        if n < k || not (String.equal (String.sub txt (n - k) k) eof) then
          raise
            (Fail
               (Result_mismatch, site, tag ^ ": exposition missing # EOF trailer"))
      in
      check "snapshot" (Obs.Export.snapshot (Obs.Metrics.snapshot metrics));
      check "series" (Obs.Export.series series))

(* Request-label oracle family (Vm.Sample_log labels / Fleet.Build
   .correlate_labeled / Profile.Labels): label the training runs with two
   alternating synthetic tenants, then demand
   - slice-then-merge identity: the label-sliced correlation's blend is
     byte-identical to the serial unlabeled correlator on the same log,
     per profile shape and at -j 1 and -j 2, slice weights equal the
     observed per-label sample counts, and (probe shape, where counts are
     additive with no trim in play) [Profile.Labels.blend] of the slices
     reconstructs the blend;
   - labeled blobs are encode/decode fixed points preserving the counts;
   - label-free logs decode as the single implicit slice;
   - forcing v3 framing on an unlabeled log downgrades losslessly: the
     decoded log re-encodes to the plain v2 bytes. *)

let check_labels ~seed src args =
  let w = workload_of ~seed src args in
  let tenant i =
    S.Label_set.of_list
      [ ("tenant", if i land 1 = 0 then "even" else "odd") ]
  in
  let record (b : Fl.Build.built) log =
    List.iteri
      (fun i (spec : D.run_spec) ->
        ignore
          (Vm.Machine.run ~pmu:(Some driver_options.D.pmu)
             ~sink:(Vm.Sample_log.sink log) ~labels:(tenant i)
             ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args
             b.Fl.Build.vb_bin ~entry:w.D.w_entry))
      w.D.w_train
  in
  List.iter
    (fun shape ->
      let site = Labels (Fl.Build.shape_name shape) in
      guarded_build site (fun () ->
          let b =
            Fl.Build.profiling_build ~options:driver_options ~shape ~source:src
          in
          let log = Vm.Sample_log.create () in
          record b log;
          let text (p, flat) =
            P.Text_io.to_string p
            ^
            match flat with
            | Some f -> P.Text_io.to_string (P.Text_io.Probe_prof f)
            | None -> ""
          in
          let serial =
            text (Fl.Build.correlate ~options:driver_options ~shape b log)
          in
          List.iter
            (fun jobs ->
              let lc =
                Fl.Build.correlate_labeled ~jobs ~options:driver_options ~shape
                  b log
              in
              if
                not
                  (String.equal serial
                     (text (lc.Fl.Build.lc_blend, lc.Fl.Build.lc_flat)))
              then
                raise
                  (Fail
                     ( Result_mismatch,
                       site,
                       Printf.sprintf
                         "-j %d label-sliced blend differs from unlabeled \
                          serial correlation"
                         jobs ));
              let weights =
                List.map
                  (fun s ->
                    (s.P.Labels.sl_label, Int64.to_int s.P.Labels.sl_weight))
                  (P.Labels.slices lc.Fl.Build.lc_slices)
              in
              if weights <> Vm.Sample_log.label_counts log then
                raise
                  (Fail
                     ( Result_mismatch,
                       site,
                       Printf.sprintf
                         "-j %d slice weights differ from observed label \
                          counts"
                         jobs ));
              match shape with
              | Fl.Build.Probes ->
                  if
                    P.Labels.n_slices lc.Fl.Build.lc_slices > 0
                    && not
                         (String.equal
                            (P.Text_io.to_string
                               (P.Labels.blend lc.Fl.Build.lc_slices))
                            (P.Text_io.to_string lc.Fl.Build.lc_blend))
                  then
                    raise
                      (Fail
                         ( Result_mismatch,
                           site,
                           "Labels.blend of probe slices differs from blend" ))
              | Fl.Build.Lines | Fl.Build.Ctx -> ())
            [ 1; 2 ]))
    [ Fl.Build.Lines; Fl.Build.Probes; Fl.Build.Ctx ];
  let site = Labels "v3 framing" in
  guarded_build site (fun () ->
      let b =
        Fl.Build.profiling_build ~options:driver_options ~shape:Fl.Build.Probes
          ~source:src
      in
      let log = Vm.Sample_log.create () in
      record b log;
      let counts = Vm.Sample_log.label_counts in
      let blob = Vm.Sample_log.encode log in
      (match Vm.Sample_log.decode blob with
      | Error e ->
          raise
            (Fail
               ( Crash,
                 site,
                 "labeled blob rejected: " ^ S.Wire.error_to_string e ))
      | Ok back ->
          if counts back <> counts log then
            raise
              (Fail
                 (Result_mismatch, site, "decode does not preserve label counts"));
          if not (String.equal (Vm.Sample_log.encode back) blob) then
            raise
              (Fail
                 ( Result_mismatch,
                   site,
                   "labeled blob not an encode/decode fixed point" )));
      let plain = Vm.Sample_log.unlabeled log in
      let pblob = Vm.Sample_log.encode plain in
      (match Vm.Sample_log.decode pblob with
      | Error e ->
          raise
            (Fail
               ( Crash,
                 site,
                 "unlabeled blob rejected: " ^ S.Wire.error_to_string e ))
      | Ok back -> (
          match counts back with
          | [] when Vm.Sample_log.n_samples back = 0 -> ()
          | [ (ls, n) ]
            when S.Label_set.is_empty ls && n = Vm.Sample_log.n_samples back ->
              ()
          | _ ->
              raise
                (Fail
                   ( Result_mismatch,
                     site,
                     "label-free log is not the single implicit slice" ))));
      let forced = Vm.Sample_log.encode ~frame:`V3 plain in
      match Vm.Sample_log.decode forced with
      | Error e ->
          raise
            (Fail
               ( Crash,
                 site,
                 "forced-v3 unlabeled blob rejected: "
                 ^ S.Wire.error_to_string e ))
      | Ok back ->
          if not (String.equal (Vm.Sample_log.encode back) pblob) then
            raise
              (Fail
                 ( Result_mismatch,
                   site,
                   "v3 -> v2 downgrade of an unlabeled log is not lossless" )))

(* Classify one source. [only] restricts the check to a single failing site
   — the focused replay the minimizer drives; [reducing] makes sources that
   no longer parse uninteresting instead of crash reports. *)
let classify ?(reducing = false) ?only ?on_overlap ?cache (cfg : config) ~seed src =
  let args = args_of_seed seed in
  let hooks = Option.map O.Orchestrate.hooks cache in
  try
    let ref_result =
      let bin = guarded_build Reference (fun () -> build_reference ?cache src) in
      guarded_run Reference (fun () -> run_bin ~fuel:cfg.cf_fuel bin args)
    in
    (match only with
    | Some Reference -> ()
    | Some (Plan pl) -> check_plan cfg pl src args ref_result
    | Some (Variant v) ->
        ignore (check_variant ?hooks cfg v (workload_of ~seed src args) args ref_result)
    | Some Quality ->
        let w = workload_of ~seed src args in
        let truth =
          (guarded_build (Variant D.Instr_pgo) (fun () ->
               D.Plan.run ?hooks
                 (D.Plan.make ~options:driver_options ~variant:D.Instr_pgo w)))
            .D.o_annotated
        in
        let cand_o =
          guarded_build (Variant D.Csspgo_probe_only) (fun () ->
              D.Plan.run ?hooks
                (D.Plan.make ~options:driver_options ~variant:D.Csspgo_probe_only w))
        in
        check_quality cfg ?on_overlap ~truth ~cand:cand_o.D.o_annotated
          ~pcycles:cand_o.D.o_profiling_cycles ()
    | Some (Stream v) -> check_stream v ~seed src
    | Some (Stale _) ->
        (* The whole family replays: minimization only needs "same kind". *)
        check_stale ?hooks ?cache cfg ~seed src args
    | Some (Format _) -> check_format ?cache ~seed src args
    | Some (Fleet _) -> check_fleet ~seed src args
    | Some (Parcorr _) -> check_parcorr ~seed src args
    | Some (Health _) -> check_health ~seed src args
    | Some (Labels _) -> check_labels ~seed src args
    | None ->
        let rng = plan_rng seed in
        for _ = 1 to cfg.cf_plans_per_seed do
          check_plan cfg (sample_plan rng) src args ref_result
        done;
        if cfg.cf_variants then begin
          let w = workload_of ~seed src args in
          let outcomes =
            List.map
              (fun v -> (v, check_variant ?hooks cfg v w args ref_result))
              all_variants
          in
          let truth = (List.assq D.Instr_pgo outcomes).D.o_annotated in
          let cand_o = List.assq D.Csspgo_probe_only outcomes in
          check_quality cfg ?on_overlap ~truth ~cand:cand_o.D.o_annotated
            ~pcycles:cand_o.D.o_profiling_cycles ()
        end;
        if cfg.cf_stream_oracle then
          List.iter (fun v -> check_stream v ~seed src) stream_variants;
        if cfg.cf_stale_oracle && cfg.cf_stale_edits > 0 then
          check_stale ?hooks ?cache cfg ~seed src args;
        if cfg.cf_format_oracle then check_format ?cache ~seed src args;
        if cfg.cf_fleet_oracle then check_fleet ~seed src args;
        if cfg.cf_parcorr_oracle then check_parcorr ~seed src args;
        if cfg.cf_health_oracle then check_health ~seed src args;
        if cfg.cf_label_oracle then check_labels ~seed src args);
    C_pass
  with
  | Discarded -> C_discard
  | Fail (k, s, d) -> C_fail (k, s, d)
  | (F.Lexer.Lex_error _ | F.Parser.Parse_error _ | F.Lower.Lower_error _) when reducing
    ->
      C_pass

(* --- campaign ------------------------------------------------------- *)

type stats = {
  mutable st_runs : int;
  mutable st_discards : int;
  mutable st_mismatches : int;
  mutable st_verify_errors : int;
  mutable st_quality_lows : int;
  mutable st_crashes : int;
  mutable st_min_overlap : float;  (** 1.0 when no quality check ever ran *)
  mutable st_failures : failure list;  (** most recent first *)
}

let n_failures st =
  st.st_mismatches + st.st_verify_errors + st.st_quality_lows + st.st_crashes

let pp_stats fmt st =
  Format.fprintf fmt
    "runs %d  discards %d (%.1f%%)  failures %d (mismatch %d, verify %d, quality %d, \
     crash %d)  min-overlap %.3f"
    st.st_runs st.st_discards
    (if st.st_runs = 0 then 0.0
     else 100.0 *. float_of_int st.st_discards /. float_of_int st.st_runs)
    (n_failures st) st.st_mismatches st.st_verify_errors st.st_quality_lows
    st.st_crashes st.st_min_overlap

let interesting ?cache cfg ~seed site kind cand =
  match classify ~reducing:true ~only:site ?cache cfg ~seed cand with
  | C_fail (k, _, _) -> k = kind
  | C_pass | C_discard -> false

let repro_command cfg ~seed =
  Printf.sprintf
    "csspgo_tool fuzz --seeds %Ld-%Ld --plans %d --n-funcs %d --size %d%s%s%s%s%s%s%s%s%s%s%s --out corpus/"
    seed seed cfg.cf_plans_per_seed cfg.cf_n_funcs cfg.cf_size
    (if cfg.cf_variants then "" else " --no-variants")
    (if cfg.cf_stream_oracle then "" else " --no-stream-oracle")
    (if cfg.cf_stale_oracle then "" else " --no-stale-oracle")
    (if cfg.cf_format_oracle then "" else " --no-format-oracle")
    (if cfg.cf_fleet_oracle then "" else " --no-fleet-oracle")
    (if cfg.cf_parcorr_oracle then "" else " --no-parcorr-oracle")
    (if cfg.cf_health_oracle then "" else " --no-health-oracle")
    (if cfg.cf_label_oracle then "" else " --no-label-oracle")
    (if cfg.cf_stale_edits = default_config.cf_stale_edits then ""
     else Printf.sprintf " --stale-edits %d" cfg.cf_stale_edits)
    (if cfg.cf_quality_floor = default_config.cf_quality_floor then ""
     else Printf.sprintf " --quality-floor %g" cfg.cf_quality_floor)
    (* a custom cf_inject is not expressible on the CLI; --inject-bug is
       the closest replay for any injection *)
    (match cfg.cf_inject with None -> "" | Some _ -> " --inject-bug")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_corpus dir cfg fl =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let base = Filename.concat dir (Printf.sprintf "seed-%Ld" fl.fl_seed) in
  (match fl.fl_minimized with
  | Some m ->
      write_file (base ^ ".minic") m;
      write_file (base ^ ".orig.minic") fl.fl_source
  | None -> write_file (base ^ ".minic") fl.fl_source);
  write_file (base ^ ".repro")
    (Printf.sprintf
       "# csspgo fuzz reproducer\n\
        # seed:   %Ld\n\
        # oracle: %s\n\
        # site:   %s\n\
        # detail: %s\n\
        # lines:  %d (original %d)\n\
        # replay: %s\n"
       fl.fl_seed (kind_name fl.fl_kind) (site_to_string fl.fl_site) fl.fl_detail
       (Reduce.count_source_lines
          (Option.value fl.fl_minimized ~default:fl.fl_source))
       (Reduce.count_source_lines fl.fl_source)
       (repro_command cfg ~seed:fl.fl_seed))

let run_seed ?(stats : stats option) ?cache (cfg : config) seed =
  let src = W.Gen.random_source ~n_funcs:cfg.cf_n_funcs ~size:cfg.cf_size ~seed () in
  let on_overlap ov =
    match stats with
    | Some st -> if ov < st.st_min_overlap then st.st_min_overlap <- ov
    | None -> ()
  in
  match classify ~on_overlap ?cache cfg ~seed src with
  | C_pass -> None
  | C_discard ->
      (match stats with Some st -> st.st_discards <- st.st_discards + 1 | None -> ());
      None
  | C_fail (kind, site, detail) ->
      let minimized =
        if cfg.cf_minimize then
          Some (Reduce.minimize ~check:(interesting ?cache cfg ~seed site kind) src)
        else None
      in
      Some
        {
          fl_seed = seed;
          fl_kind = kind;
          fl_site = site;
          fl_detail = detail;
          fl_source = src;
          fl_minimized = minimized;
        }

let fresh_stats () =
  {
    st_runs = 0;
    st_discards = 0;
    st_mismatches = 0;
    st_verify_errors = 0;
    st_quality_lows = 0;
    st_crashes = 0;
    st_min_overlap = 1.0;
    st_failures = [];
  }

let run ?out_dir ?(progress = fun (_ : stats) -> ()) ?cache ?metrics ?(jobs = 1)
    (cfg : config) ~seeds:(lo, hi) =
  (* Without a caller-provided cache the campaign still wants the per-seed
     stage sharing (reference, profiling runs, correlations), so it makes a
     private in-memory one. *)
  let cache = match cache with Some c -> c | None -> O.Cache.create () in
  (* Registry bumps happen only at the (seed-ordered) merge points below,
     so the counts are identical whatever [jobs] is. *)
  let m = match metrics with Some m -> m | None -> Csspgo_obs.Metrics.null in
  let mbump name n =
    if n > 0 then Csspgo_obs.Metrics.bump (Csspgo_obs.Metrics.counter m name) n
  in
  let st = fresh_stats () in
  let stop () =
    match cfg.cf_max_failures with Some n -> n_failures st >= n | None -> false
  in
  let record fl =
    (match fl.fl_kind with
    | Result_mismatch -> st.st_mismatches <- st.st_mismatches + 1
    | Verify_error -> st.st_verify_errors <- st.st_verify_errors + 1
    | Quality_low -> st.st_quality_lows <- st.st_quality_lows + 1
    | Crash -> st.st_crashes <- st.st_crashes + 1);
    st.st_failures <- fl :: st.st_failures;
    match out_dir with Some dir -> write_corpus dir cfg fl | None -> ()
  in
  if jobs <= 1 then begin
    let s = ref lo in
    while !s <= hi && not (stop ()) do
      let seed = Int64.of_int !s in
      st.st_runs <- st.st_runs + 1;
      mbump "fuzz.seeds" 1;
      let d0 = st.st_discards in
      (match run_seed ~stats:st ~cache cfg seed with
      | None -> ()
      | Some fl ->
          record fl;
          mbump "fuzz.failures" 1);
      mbump "fuzz.discards" (st.st_discards - d0);
      progress st;
      incr s
    done;
    st
  end
  else begin
    (* Seeds are independent, so batches run across domains; each seed
       accumulates into a private stats record and the batch merges in seed
       order, reproducing the serial campaign's statistics (and its
       [cf_max_failures] early stop) exactly — a batch only overshoots in
       wasted work, never in reported results. *)
    let s = ref lo in
    while !s <= hi && not (stop ()) do
      let n = min (2 * jobs) (hi - !s + 1) in
      let batch = List.init n (fun i -> Int64.of_int (!s + i)) in
      let results =
        O.Scheduler.map ~jobs
          (fun seed ->
            let local = fresh_stats () in
            let fl = run_seed ~stats:local ~cache cfg seed in
            (local, fl))
          batch
      in
      List.iter
        (fun (local, fl) ->
          if not (stop ()) then begin
            st.st_runs <- st.st_runs + 1;
            mbump "fuzz.seeds" 1;
            st.st_discards <- st.st_discards + local.st_discards;
            mbump "fuzz.discards" local.st_discards;
            if local.st_min_overlap < st.st_min_overlap then
              st.st_min_overlap <- local.st_min_overlap;
            (match fl with
            | None -> ()
            | Some fl ->
                record fl;
                mbump "fuzz.failures" 1);
            progress st
          end)
        results;
      s := !s + n
    done;
    st
  end
