(** Test-case minimization (delta debugging) for MiniC sources.

    The reducer is purely syntactic: it proposes smaller candidate sources
    — whole brace-balanced statement regions removed, single statements
    removed, expressions replaced by [0] holes, branch conditions pinned —
    and keeps a candidate only when [check] says it still reproduces the
    original failure. [check] is expected to reject candidates that fail to
    parse or that fail for a *different* reason, so reducers stay anchored
    to one bug. *)

val minimize : ?max_rounds:int -> check:(string -> bool) -> string -> string
(** Shrink [src] to a ~minimal source still satisfying [check]. [check] is
    never called on the original source; the caller guarantees it is
    interesting. Runs simplification rounds to a fixpoint, at most
    [max_rounds] (default 20) times. *)

val count_source_lines : string -> int
(** Non-blank line count — the size metric reported for reproducers. *)
