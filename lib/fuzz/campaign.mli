(** Differential fuzzing campaign runner.

    Each seed deterministically yields one random MiniC program
    ([Workloads.Gen]), one -O0 reference build, [cf_plans_per_seed]
    randomly permuted pass pipelines, and (optionally) all five
    [Core.Driver] PGO variants. Ten oracle families guard the paper's
    central claim — that probes, context-sensitive profiles and aggressive
    optimization never perturb semantics or profile quality:

    - {b result equality}: every build computes the reference result;
    - {b IR well-formedness}: [Ir.Verify] is re-run after every pass of
      every permuted pipeline;
    - {b profile quality}: [Core.Quality.block_overlap] of the probe
      profile against the instrumentation ground truth stays above
      [cf_quality_floor] (skipped for nearly-unexecuted programs);
    - {b streaming identity}: the zero-materialization sink pipeline
      produces byte-identical canonical profile dumps to the materialized
      sample-list pipeline ([Core.Driver.profile_pipeline_texts], AutoFDO
      and full CSSPGO);
    - {b stale matching}: the source is drifted with a seeded edit script
      ([Workloads.Drift], seed derived from the campaign seed) and each
      sampling variant stale-matches its build-N profile onto version N+1
      ([Core.Stale_match]) — matching must never crash, the stale-built
      binary must compute the drifted program's own -O0 result, and the
      probe matcher's count recovery must never fall below the DWARF
      matcher's. Failure sites carry the edit-script seed and length, so
      every counterexample replays from the CLI in one command;
    - {b profile formats}: every pipeline profile dump survives
      text → binary → text byte-identically, sample logs round-trip
      through both forms, and cache-warm rebuilds reproduce clean builds;
    - {b fleet merging}: a sharded multi-instance fleet at full duty
      reproduces the single-instance profile byte-for-byte, draining is
      job-count independent, and [Profile.Merge] satisfies its algebraic
      laws on real correlated profiles from two drifted binary versions;
    - {b parallel correlation}: sharded correlation over the chunk-split
      sample log ([Fleet.Build.correlate_chunks] / [Core.Par_corr]) is
      byte-identical to the serial streaming correlator, for every profile
      shape and at several job counts, with a shard target small enough to
      force real multi-shard merges;
    - {b health telemetry}: a health-instrumented fleet window
      ([Obs.Series] / [Obs.Health], fresh registry, fixed clock) closes to
      byte-identical canonical report and series JSON at -j 1 and -j 2,
      both documents reparse as print/parse fixed points of the strict
      [Obs.Json] parser, [Obs.Series.merge] satisfies its laws
      (commutative, associative, identity-on-empty) on really-recorded
      windows, and the OpenMetrics exposition ([Obs.Export]) renders with
      its [# EOF] trailer;
    - {b request labels}: the training stream is re-served under two
      alternating synthetic tenant labels and the slice-then-merge
      identity must hold — [Fleet.Build.correlate_labeled]'s blend is
      byte-identical to the unlabeled serial correlator per profile shape
      and job count, slice weights equal the observed per-label sample
      counts, labeled CSLG v3 blobs are encode/decode fixed points,
      label-free logs decode as the single implicit slice, and forcing v3
      framing on an unlabeled log downgrades losslessly to the plain v2
      bytes.

    Programs that exhaust the reference fuel budget are discards, not
    passes — campaign statistics report them separately so a campaign
    cannot silently become vacuous. Failures are shrunk with [Reduce] and
    written to a corpus directory. *)

type plan = {
  pl_steps : Csspgo_opt.Pass.step list;  (** permuted post-inline pipeline *)
  pl_probes : bool;
  pl_instrument : bool;
  pl_inline : bool;
  pl_probes_strong : bool;
  pl_layout : [ `Ext_tsp | `Hot_path ];
}

val plan_to_string : plan -> string

val sample_plan : Csspgo_support.Rng.t -> plan

type failure_kind = Result_mismatch | Verify_error | Quality_low | Crash

val kind_name : failure_kind -> string

type site =
  | Reference                        (** the -O0 baseline itself broke *)
  | Plan of plan
  | Variant of Csspgo_core.Driver.variant
  | Quality
  | Stream of Csspgo_core.Driver.variant
      (** streaming-vs-materialized profile byte-identity
          ({!Csspgo_core.Driver.profile_pipeline_texts}) *)
  | Stale of {
      sl_variant : Csspgo_core.Driver.variant option;
          (** [None] for the probe-vs-DWARF recovery comparison *)
      sl_drift_seed : int64;  (** the edit-script seed ([Workloads.Drift]) *)
      sl_edits : int;
    }  (** stale-profile matching against a drifted source *)
  | Format of string
      (** binary/text profile format oracle family ([Profile.Binary_io],
          [Vm.Sample_log], incremental-vs-clean rebuilds); the string
          names the failing leg *)
  | Fleet of string
      (** fleet merge oracle family ([Fleet.Sim], [Profile.Merge]): merge
          laws on real correlated profiles, sharded-fleet-vs-single-instance
          byte identity, jobs-independent drain; the string names the
          failing leg *)
  | Parcorr of string
      (** parallel-correlation oracle family ([Fleet.Build.correlate_chunks],
          [Core.Par_corr]): sharded-vs-serial byte identity per profile
          shape; the string names the shape *)
  | Health of string
      (** health telemetry oracle family ([Obs.Series], [Obs.Health],
          [Obs.Export]): jobs-independent report/series byte identity,
          print/parse fixed points, series merge laws, OpenMetrics
          trailer; the string names the failing leg *)
  | Labels of string
      (** request-label oracle family ([Vm.Sample_log] labels,
          [Fleet.Build.correlate_labeled], [Profile.Labels]):
          slice-then-merge byte identity per shape and job count, implicit
          single slice for label-free logs, lossless v3 → v2 downgrade;
          the string names the shape or failing leg *)

val site_to_string : site -> string

type failure = {
  fl_seed : int64;
  fl_kind : failure_kind;
  fl_site : site;
  fl_detail : string;
  fl_source : string;               (** original generated program *)
  fl_minimized : string option;     (** delta-debugged reproducer *)
}

type config = {
  cf_plans_per_seed : int;
  cf_n_funcs : int;
  cf_size : int;
  cf_fuel : int64;
  cf_variants : bool;
  cf_quality_floor : float;
  cf_quality_min_total : int64;
  cf_minimize : bool;
  cf_max_failures : int option;
  cf_stream_oracle : bool;
  cf_stale_oracle : bool;
  cf_stale_edits : int;
  cf_format_oracle : bool;
  cf_fleet_oracle : bool;
  cf_parcorr_oracle : bool;
  cf_health_oracle : bool;
  cf_label_oracle : bool;
  cf_inject : (string * (Csspgo_ir.Func.t -> unit)) option;
}

val default_config : config

val planted_bug : string * (Csspgo_ir.Func.t -> unit)
(** A deliberately broken pass (conditional guards dropped, false edge
    always taken) used to prove the harness detects and minimizes planted
    miscompiles. Wire it in via [cf_inject]. *)

type stats = {
  mutable st_runs : int;
  mutable st_discards : int;
  mutable st_mismatches : int;
  mutable st_verify_errors : int;
  mutable st_quality_lows : int;
  mutable st_crashes : int;
  mutable st_min_overlap : float;
  mutable st_failures : failure list;
}

val n_failures : stats -> int
val pp_stats : Format.formatter -> stats -> unit

val run_seed :
  ?stats:stats ->
  ?cache:Csspgo_orchestrator.Cache.t ->
  config ->
  int64 ->
  failure option
(** Check a single seed; [None] is a pass or a discard (discards are
    counted into [stats] when given). Minimization runs when the config
    asks for it. With [cache], the -O0 reference and the shareable plan
    stages (reference symbol info, probed profiling run, flat correlation)
    each compute once per seed instead of once per variant. *)

val run :
  ?out_dir:string ->
  ?progress:(stats -> unit) ->
  ?cache:Csspgo_orchestrator.Cache.t ->
  ?metrics:Csspgo_obs.Metrics.t ->
  ?jobs:int ->
  config ->
  seeds:int * int ->
  stats
(** Run seeds [lo..hi] inclusive, stopping early at [cf_max_failures].
    When [out_dir] is given, each failure is written there as
    [seed-N.minic] (minimized), [seed-N.orig.minic] and [seed-N.repro].
    [progress] is called after every seed (in seed order).

    [jobs > 1] fans independent seeds out over that many domains
    ({!Csspgo_orchestrator.Scheduler}); batches merge in seed order, so
    the reported statistics — including the [cf_max_failures] stop point —
    are identical to the serial campaign's. [cache] defaults to a private
    in-memory cache; pass a disk-backed one to reuse artifacts across
    campaign invocations.

    [metrics] receives [fuzz.seeds], [fuzz.discards] and [fuzz.failures];
    bumps fire at the seed-ordered merge points, so the totals match the
    serial campaign for any [jobs]. *)
