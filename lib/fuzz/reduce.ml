(* Test-case minimization for MiniC sources: delta debugging over
   brace-balanced statement regions and single statement lines, plus
   expression hole-filling. The interestingness test [check] decides what
   "still fails" means; this module only proposes structurally plausible
   candidates (a candidate that no longer parses is simply rejected by
   [check]). *)

let split_lines s = String.split_on_char '\n' s
let join_lines ls = String.concat "\n" ls

(* Brace-balanced regions as inclusive (start, stop) line-index pairs.
   A "} else {" line continues the region opened by the matching "if", so a
   whole if/else statement is one region and its removal stays balanced. *)
let regions lines =
  let acc = ref [] in
  let stack = ref [] in
  Array.iteri
    (fun i line ->
      let opens = String.contains line '{' in
      let closes = String.contains line '}' in
      if closes && opens then ()
        (* "} else {": region continues, stack unchanged *)
      else if opens then stack := i :: !stack
      else if closes then
        match !stack with
        | s :: rest ->
            acc := (s, i) :: !acc;
            stack := rest
        | [] -> ())
    lines;
  (* Largest regions first: one successful removal deletes many lines. *)
  List.sort (fun (a, b) (c, d) -> compare (d - c) (b - a)) !acc

let is_statement_line line =
  let t = String.trim line in
  String.length t > 0
  && t.[String.length t - 1] = ';'
  && not (String.contains t '{')

(* Replace the right-hand side of an assignment-like line with "0". The
   first top-level '=' that is not part of a comparison operator splits the
   line; condition lines (inside "if (...)") never reach here because they
   end in '{', not ';'. *)
let hole_rhs line =
  let n = String.length line in
  let rec find i =
    if i >= n then None
    else if
      line.[i] = '='
      && (i + 1 >= n || line.[i + 1] <> '=')
      && (i = 0 || not (List.mem line.[i - 1] [ '='; '!'; '<'; '>' ]))
    then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i when is_statement_line line -> Some (String.sub line 0 (i + 1) ^ " 0;")
  | _ -> None

(* Simplifying rewrites of a single line; each is tried in order. *)
let line_rewrites line =
  let t = String.trim line in
  let pad = String.sub line 0 (String.length line - String.length t) in
  let starts p = String.length t >= String.length p && String.sub t 0 (String.length p) = p in
  let cands = ref [] in
  let add c = if c <> line then cands := c :: !cands in
  if starts "return " then add (pad ^ "return 0;");
  if starts "if (" && String.contains t '{' then begin
    add (pad ^ "if (1) {");
    add (pad ^ "if (0) {")
  end;
  if starts "while (" && String.contains t '{' then add (pad ^ "while (0) {");
  if starts "switch (" && String.contains t '{' then add (pad ^ "switch (0) {");
  (match hole_rhs line with Some c -> add c | None -> ());
  List.rev !cands

let apply_removal lines (s, e) =
  let out = ref [] in
  Array.iteri (fun i l -> if i < s || i > e then out := l :: !out) lines;
  join_lines (List.rev !out)

let apply_rewrite lines i repl =
  let out = ref [] in
  Array.iteri (fun j l -> out := (if j = i then repl else l) :: !out) lines;
  join_lines (List.rev !out)

let count_source_lines s =
  List.length (List.filter (fun l -> String.trim l <> "") (split_lines s))

let minimize ?(max_rounds = 20) ~check src =
  let current = ref src in
  let try_accept cand =
    if cand <> !current && check cand then begin
      current := cand;
      true
    end
    else false
  in
  let round () =
    let progress = ref false in
    (* 1. Drop whole statement regions (functions, ifs, loops, switches).
       Recompute regions after every success: indices shift. *)
    let rec drop_regions () =
      let lines = Array.of_list (split_lines !current) in
      let rec try_each = function
        | [] -> ()
        | r :: rest ->
            if try_accept (apply_removal lines r) then begin
              progress := true;
              drop_regions ()
            end
            else try_each rest
      in
      try_each (regions lines)
    in
    drop_regions ();
    (* 2. Drop single statement lines, back to front so indices of
       not-yet-visited candidates stay valid. *)
    let lines = Array.of_list (split_lines !current) in
    let n = Array.length lines in
    let removed = ref false in
    for i = n - 1 downto 0 do
      let t = String.trim lines.(i) in
      if
        is_statement_line lines.(i)
        || t = "" || String.length t >= 6 && String.sub t 0 6 = "module"
        || String.length t >= 6 && String.sub t 0 6 = "global"
      then begin
        let lines' = Array.of_list (split_lines !current) in
        (* index still valid only while no earlier removal happened at or
           below i; recompute from the (possibly shrunk) current text *)
        if i < Array.length lines' && lines'.(i) = lines.(i) then
          if try_accept (apply_removal lines' (i, i)) then begin
            progress := true;
            removed := true
          end
      end
    done;
    ignore !removed;
    (* 3. Expression hole-filling and condition pinning. *)
    let lines = Array.of_list (split_lines !current) in
    Array.iteri
      (fun i l ->
        let lines' = Array.of_list (split_lines !current) in
        if i < Array.length lines' && lines'.(i) = l then
          List.iter
            (fun repl ->
              let lines'' = Array.of_list (split_lines !current) in
              if i < Array.length lines'' && lines''.(i) = l then
                if try_accept (apply_rewrite lines'' i repl) then progress := true)
            (line_rewrites l))
      lines;
    !progress
  in
  let rec loop k = if k > 0 && round () then loop (k - 1) in
  loop max_rounds;
  !current
