module Vm = Csspgo_vm
module Obs = Csspgo_obs
module S = Csspgo_orchestrator.Scheduler

(* Cumulative per-shard ingest/drop totals: the raw material for the
   per-shard series. Ingest is single-threaded (the parallel phases never
   touch the collector), so plain mutable fields suffice; drops are
   attributed serially after the parallel decode. *)
type shard_stat = {
  mutable ss_batches : int;
  mutable ss_bytes : int;
  mutable ss_samples : int;
  mutable ss_dropped : int;
}

type t = {
  c_shards : Instance.batch list ref array;  (** newest-first per shard *)
  c_lossy : bool;
  c_batches : Obs.Metrics.counter;
  c_bytes : Obs.Metrics.counter;
  c_samples : Obs.Metrics.counter;
  c_dropped : Obs.Metrics.counter;
  c_stats : shard_stat array;
  c_series : Obs.Series.t array;
}

let create ?(obs = Obs.Metrics.null) ?(lossy = false) ~shards () =
  if shards <= 0 then invalid_arg "Collector.create: shards must be positive";
  {
    c_shards = Array.init shards (fun _ -> ref []);
    c_lossy = lossy;
    c_batches = Obs.Metrics.counter obs "collector.batches";
    c_bytes = Obs.Metrics.counter obs "collector.bytes";
    c_samples = Obs.Metrics.counter obs "collector.samples";
    c_dropped = Obs.Metrics.counter obs "collector.dropped-blobs";
    c_stats =
      Array.init shards (fun _ ->
          { ss_batches = 0; ss_bytes = 0; ss_samples = 0; ss_dropped = 0 });
    c_series = Array.init shards (fun _ -> Obs.Series.create ());
  }

let shards t = Array.length t.c_shards

let shard_of t instance = instance mod Array.length t.c_shards

let ingest t (b : Instance.batch) =
  let s = shard_of t b.Instance.b_instance in
  let shard = t.c_shards.(s) in
  shard := b :: !shard;
  let st = t.c_stats.(s) in
  st.ss_batches <- st.ss_batches + 1;
  st.ss_bytes <- st.ss_bytes + String.length b.Instance.b_blob;
  st.ss_samples <- st.ss_samples + b.Instance.b_samples;
  Obs.Metrics.incr t.c_batches;
  Obs.Metrics.bump t.c_bytes (String.length b.Instance.b_blob);
  Obs.Metrics.bump t.c_samples b.Instance.b_samples

(* Each drain closes one window per shard: the cumulative shard totals go
   through [Series.record], whose delta discipline turns them into the
   epoch's increments. Summing the per-shard series with [Series.merge]
   reproduces the collector-wide counters — the merge-law the fuzz oracle
   checks. *)
let close_epoch t =
  Array.iteri
    (fun i st ->
      let snap =
        {
          Obs.Metrics.s_counters =
            [
              ("collector.batches", st.ss_batches);
              ("collector.bytes", st.ss_bytes);
              ("collector.dropped-blobs", st.ss_dropped);
              ("collector.samples", st.ss_samples);
            ];
          s_gauges = [];
          s_histograms = [];
        }
      in
      ignore (Obs.Series.record t.c_series.(i) snap))
    t.c_stats

let shard_series t = Array.copy t.c_series

type merged = {
  m_version : int;
  m_log : Vm.Sample_log.t;
  m_batches : int;
  m_samples : int;
  m_bytes : int;
}

type chunks = {
  k_version : int;
  k_chunks : Vm.Sample_log.t list;
  k_batches : int;
  k_samples : int;
  k_bytes : int;
}

(* A corrupt blob always lands in the [collector.dropped-blobs] counter;
   a lossy collector then skips it, a strict one (the default) raises as
   before. *)
let decode t (b : Instance.batch) =
  match Vm.Sample_log.decode_chunks b.Instance.b_blob with
  | Ok parts -> Some (b, parts)
  | Error e ->
      Obs.Metrics.incr t.c_dropped;
      if t.c_lossy then None
      else
        failwith
          (Printf.sprintf "collector: corrupt batch from instance %d seq %d: %s"
             b.Instance.b_instance b.Instance.b_seq
             (Csspgo_support.Wire.error_to_string e))

(* Gather every shard (emptied) in deterministic (version, instance, seq)
   order, parallel-decode each blob to its chunk list — no concatenation —
   and group by version. The shared front half of both drains. *)
let drain_decoded ?metrics ?trace ~jobs t =
  let all =
    Array.fold_left (fun acc shard -> List.rev_append !shard acc) [] t.c_shards
  in
  Array.iter (fun shard -> shard := []) t.c_shards;
  let ordered =
    List.sort
      (fun (a : Instance.batch) (b : Instance.batch) ->
        match compare a.Instance.b_version b.Instance.b_version with
        | 0 -> (
            match compare a.Instance.b_instance b.Instance.b_instance with
            | 0 -> compare a.Instance.b_seq b.Instance.b_seq
            | c -> c)
        | c -> c)
      all
  in
  (* Blob decode is the parallel stage; the batch order is already fixed,
     so map's index-placement keeps (version, instance, seq) order. *)
  let results = S.map ?metrics ?trace ~jobs (decode t) ordered in
  (* Serial epilogue: attribute lossy drops to their shards, then close
     the per-shard series window for this drain epoch. *)
  List.iter2
    (fun (b : Instance.batch) r ->
      match r with
      | None ->
          let st = t.c_stats.(shard_of t b.Instance.b_instance) in
          st.ss_dropped <- st.ss_dropped + 1
      | Some _ -> ())
    ordered results;
  close_epoch t;
  let decoded = List.filter_map Fun.id results in
  let by_version = Hashtbl.create 8 in
  List.iter
    (fun ((b : Instance.batch), parts) ->
      let v = b.Instance.b_version in
      let prev = try Hashtbl.find by_version v with Not_found -> [] in
      Hashtbl.replace by_version v ((b, parts) :: prev))
    decoded;
  Hashtbl.fold (fun v _ acc -> v :: acc) by_version []
  |> List.sort compare
  |> List.map (fun v -> (v, List.rev (Hashtbl.find by_version v)))

let batch_bytes batches =
  List.fold_left
    (fun acc ((b : Instance.batch), _) -> acc + String.length b.Instance.b_blob)
    0 batches

(* Fresh-log combine: [append ~into] mutates, and tree_reduce may reuse a
   node's operand as another node's input on the serial path, so every
   merge allocates its own arena. *)
let concat a b =
  let log = Vm.Sample_log.create () in
  Vm.Sample_log.append ~into:log a;
  Vm.Sample_log.append ~into:log b;
  log

let drain ?metrics ?trace ~jobs t =
  drain_decoded ?metrics ?trace ~jobs t
  |> List.map (fun (v, batches) ->
         let logs = List.concat_map snd batches in
         let log =
           match S.tree_reduce ?metrics ?trace ~jobs concat logs with
           | Some log -> log
           | None -> Vm.Sample_log.create ()
         in
         {
           m_version = v;
           m_log = log;
           m_batches = List.length batches;
           m_samples = Vm.Sample_log.n_samples log;
           m_bytes = batch_bytes batches;
         })

let drain_chunks ?metrics ?trace ~jobs t =
  drain_decoded ?metrics ?trace ~jobs t
  |> List.map (fun (v, batches) ->
         let parts = List.concat_map snd batches in
         {
           k_version = v;
           k_chunks = parts;
           k_batches = List.length batches;
           k_samples =
             List.fold_left (fun acc l -> acc + Vm.Sample_log.n_samples l) 0 parts;
           k_bytes = batch_bytes batches;
         })
