(** One simulated VM instance in the fleet: serves its slice of the request
    stream on a profiling binary, sampling a duty-cycled subset of requests,
    and ships the samples to the collector as CSLG-framed batches.

    Determinism contract: the PMU stream is a pure function of the binary
    and the request (each request is its own [Machine.run]), so whether a
    request executes under the sampler is independent of {e which} instance
    runs it. At duty 1.0 the concatenation of a version's batches in
    (instance, seq) order therefore reproduces the single-instance sample
    log byte-for-byte — the anchor of the fleet's skew-0 identity oracle. *)

type config = {
  ic_instance : int;  (** fleet-unique id; collector routing key *)
  ic_version : int;  (** binary version this instance is serving *)
  ic_duty : float;  (** probability a request runs under the sampler *)
  ic_batch_requests : int;  (** flush a batch every this many requests *)
  ic_seed : int64;  (** duty-cycle gating stream *)
}

type batch = {
  b_instance : int;
  b_version : int;
  b_seq : int;  (** per-instance batch sequence number, from 0 *)
  b_blob : string;  (** CSLG-framed sample-log section *)
  b_samples : int;
  b_requests : int;  (** requests covered (sampled or not) *)
}

type report = {
  ir_batches : int;
  ir_requests : int;
  ir_sampled : int;  (** requests that ran under the sampler *)
  ir_samples : int;
  ir_cycles : int64;  (** total work cycles, sampled or not *)
}

val serve :
  config ->
  pmu:Csspgo_vm.Machine.pmu ->
  bin:Csspgo_codegen.Mach.binary ->
  entry:string ->
  requests:Csspgo_core.Driver.run_spec list ->
  ship:(batch -> unit) ->
  report
(** Run every request in order; gate each under the sampler with
    probability [ic_duty] (seeded by [ic_seed]); ship a batch after every
    [ic_batch_requests] requests and once more at the end. Empty batches
    (no samples collected) are not shipped, but [b_seq] still counts them
    — sequence numbers order surviving batches, they are not dense.
    Equivalent to {!serve_labeled} with every request unlabeled. *)

val serve_labeled :
  config ->
  pmu:Csspgo_vm.Machine.pmu ->
  bin:Csspgo_codegen.Mach.binary ->
  entry:string ->
  requests:(Csspgo_core.Driver.run_spec * Csspgo_support.Label_set.t) list ->
  ship:(batch -> unit) ->
  report
(** {!serve} with a request label set per request (tenant, endpoint, ...):
    each request's samples are stamped with its set via the VM's label
    channel, so shipped batches frame as CSLG v3 when any label is
    non-empty — and stay byte-identical to the unlabeled format when all
    are empty. The gate stream, batching, and sample payloads are
    unaffected by labels. *)
