module Ir = Csspgo_ir
module Frontend = Csspgo_frontend
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module P = Csspgo_profile
module Pg = Csspgo_profgen
module Core = Csspgo_core
module D = Core.Driver

type shape = Lines | Probes | Ctx

let shape_name = function Lines -> "lines" | Probes -> "probes" | Ctx -> "ctx"

let kind_of_shape = function
  | Lines -> P.Text_io.Line
  | Probes -> P.Text_io.Probe
  | Ctx -> P.Text_io.Ctx

let shape_of_variant = function
  | D.Autofdo -> Some Lines
  | D.Csspgo_probe_only -> Some Probes
  | D.Csspgo_full -> Some Ctx
  | D.Nopgo | D.Instr_pgo -> None

let variant_of_shape = function
  | Lines -> D.Autofdo
  | Probes -> D.Csspgo_probe_only
  | Ctx -> D.Csspgo_full

type built = {
  vb_source : string;
  vb_bin : Cg.Mach.binary;
  vb_target : Ir.Program.t;
  vb_names : string Ir.Guid.Tbl.t;
  vb_checksums : int64 Ir.Guid.Tbl.t;
}

let probed = function Lines -> false | Probes | Ctx -> true

let profiling_build ~(options : D.options) ~shape ~source =
  (* The stale-match target is the pre-optimization IR, so compile twice:
     once kept pristine (plus probes), once taken through the profiling
     pipeline to a binary. Probe ids and checksums are deterministic per
     source, so the two agree. *)
  let target = Frontend.Lower.compile source in
  if probed shape then Core.Pseudo_probe.insert target;
  let names = Ir.Guid.Tbl.create 64 in
  let checksums = Ir.Guid.Tbl.create 64 in
  Ir.Program.iter_funcs
    (fun f ->
      Ir.Guid.Tbl.replace names f.Ir.Func.guid f.Ir.Func.name;
      Ir.Guid.Tbl.replace checksums f.Ir.Func.guid f.Ir.Func.checksum)
    target;
  let prog = Frontend.Lower.compile source in
  if probed shape then Core.Pseudo_probe.insert prog;
  Opt.Pass.optimize ~config:options.D.opt_profiling prog;
  let bin = Cg.Emit.emit ~options:options.D.emit_opts prog in
  { vb_source = source; vb_bin = bin; vb_target = target; vb_names = names;
    vb_checksums = checksums }

let correlate ?obs ~(options : D.options) ~shape b log =
  let name_of g = Ir.Guid.Tbl.find_opt b.vb_names g in
  let checksum_of g =
    Option.value (Ir.Guid.Tbl.find_opt b.vb_checksums g) ~default:0L
  in
  let index = Pg.Bindex.create b.vb_bin in
  (* The plan pipeline feeds ranges and the tail-call table online during
     the profiling run; a collector only has the log, so replay it to
     rebuild both before correlation proper. *)
  let agg = Pg.Ranges.create () in
  let mb =
    if shape = Ctx && options.D.use_missing_frame_inference then
      Some (Core.Missing_frame.start ?obs (Pg.Bindex.create b.vb_bin))
    else None
  in
  Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ ->
      Pg.Ranges.feed agg ~lbr ~lbr_len;
      match mb with
      | Some mb -> Core.Missing_frame.feed mb ~lbr ~lbr_len
      | None -> ());
  match shape with
  | Lines ->
      let lp = Pg.Dwarf_corr.correlate_agg ~name_of ~index ?obs b.vb_bin agg in
      (P.Text_io.Line_prof lp, None)
  | Probes ->
      let pp =
        Core.Probe_corr.correlate_agg ~name_of ~index ~checksum_of ?obs
          b.vb_bin agg
      in
      (P.Text_io.Probe_prof pp, None)
  | Ctx ->
      let missing = Option.map Core.Missing_frame.finish mb in
      let st =
        Core.Ctx_reconstruct.start ~name_of ?missing ~checksum_of ?obs index
      in
      Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack ~stack_len ->
          Core.Ctx_reconstruct.feed st ~lbr ~lbr_len ~stack ~stack_len);
      let trie, _stats = Core.Ctx_reconstruct.finish st in
      if Int64.compare options.D.trim_threshold 0L > 0 then
        ignore (P.Ctx_profile.trim_cold trie ~threshold:options.D.trim_threshold);
      let flat =
        Core.Probe_corr.correlate_agg ~name_of ~index ~checksum_of ?obs
          b.vb_bin agg
      in
      (P.Text_io.Ctx_prof trie, Some flat)

(* The sharded form of [correlate]: the log arrives as the collector's
   decoded chunk list and is never concatenated. Chunks group into shards
   ([Par_corr.plan], a pure function of the chunk list), per-shard
   streaming correlators run on up to [jobs] domains, and the reductions
   are exact (counter addition / edge-set union / Merge laws at equal
   weight), so the result is byte-identical to [correlate] on the
   concatenated log at any [jobs]. DWARF line correlation is not additive
   (line counts max over instructions sharing a line), so only its
   aggregation parallelizes; [correlate_agg] then runs once on the merged
   aggregate — the exact serial computation. *)
let correlate_chunks ?obs ?metrics ?trace ?shard_target ~jobs
    ~(options : D.options) ~shape b chunks =
  let name_of g = Ir.Guid.Tbl.find_opt b.vb_names g in
  let checksum_of g =
    Option.value (Ir.Guid.Tbl.find_opt b.vb_checksums g) ~default:0L
  in
  let index = Pg.Bindex.create b.vb_bin in
  let shards = Core.Par_corr.plan ?target:shard_target chunks in
  let agg = Core.Par_corr.aggregate ?obs ?metrics ?trace ~jobs shards in
  match shape with
  | Lines ->
      let lp = Pg.Dwarf_corr.correlate_agg ~name_of ~index ?obs b.vb_bin agg in
      (P.Text_io.Line_prof lp, None)
  | Probes ->
      let pp =
        Core.Probe_corr.correlate_agg ~name_of ~index ~checksum_of ?obs
          b.vb_bin agg
      in
      (P.Text_io.Probe_prof pp, None)
  | Ctx ->
      let missing =
        if options.D.use_missing_frame_inference then
          Some (Core.Par_corr.missing ?obs ?metrics ?trace ~jobs index shards)
        else None
      in
      let trie, _stats =
        Core.Par_corr.reconstruct ~name_of ?missing ~checksum_of ?obs ?metrics
          ?trace ~jobs index shards
      in
      if Int64.compare options.D.trim_threshold 0L > 0 then
        ignore (P.Ctx_profile.trim_cold trie ~threshold:options.D.trim_threshold);
      let flat =
        Core.Probe_corr.correlate_agg ~name_of ~index ~checksum_of ?obs
          b.vb_bin agg
      in
      (P.Text_io.Ctx_prof trie, Some flat)

(* --- label-sliced correlation ----------------------------------------- *)

module Sched = Csspgo_sched.Scheduler
module Label_set = Csspgo_support.Label_set

type labeled = {
  lc_slices : P.Labels.t;
  lc_blend : P.Text_io.profile;
  lc_flat : P.Probe_profile.t option;
}

(* Slice a labeled log by label set and correlate every slice, plus the
   blend of the whole stream. Correctness leans on the same partition
   algebra as [Par_corr] — label slices are a whole-sample partition of
   the log, just grouped by request instead of by position:

   - the missing-frame table is built from the FULL log and shared by
     every slice (path uniqueness needs the complete edge set; a slice
     correlated against only its own edges could resolve gaps
     differently);
   - per-slice range aggregation sums to the full-log aggregate (counter
     addition), so the line and probe blends correlate the merged
     aggregate once — for lines this is mandatory, since per-line counts
     max over instructions and are not additive at profile level;
   - per-slice context tries (attribution is per-sample given the shared
     table) merge at weight 1 into exactly the serial trie; slices stay
     untrimmed — trimming is a global-heat decision — and only the blend
     trims, at [options.trim_threshold].

   The blend is therefore byte-identical to [correlate] on the same log,
   at any [jobs] — oracle family 10 and the @labels battery hold this. *)
let correlate_labeled ?obs ?(jobs = 1) ~(options : D.options) ~shape b log =
  let name_of g = Ir.Guid.Tbl.find_opt b.vb_names g in
  let checksum_of g =
    Option.value (Ir.Guid.Tbl.find_opt b.vb_checksums g) ~default:0L
  in
  let index = Pg.Bindex.create b.vb_bin in
  let agg_of l =
    let agg = Pg.Ranges.create () in
    Vm.Sample_log.iter l (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ ->
        Pg.Ranges.feed agg ~lbr ~lbr_len);
    agg
  in
  let missing =
    if shape = Ctx && options.D.use_missing_frame_inference then begin
      let mb = Core.Missing_frame.start ?obs (Pg.Bindex.create b.vb_bin) in
      Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ ->
          Core.Missing_frame.feed mb ~lbr ~lbr_len);
      Some (Core.Missing_frame.finish mb)
    end
    else None
  in
  let slice_tries = ref [] in
  let per_slice =
    Sched.map ~jobs
      (fun (label, slog) ->
        let agg = agg_of slog in
        let profile =
          match shape with
          | Lines ->
              P.Text_io.Line_prof
                (Pg.Dwarf_corr.correlate_agg ~name_of ~index ?obs b.vb_bin agg)
          | Probes ->
              P.Text_io.Probe_prof
                (Core.Probe_corr.correlate_agg ~name_of ~index ~checksum_of ?obs
                   b.vb_bin agg)
          | Ctx ->
              let st =
                Core.Ctx_reconstruct.start ~name_of ?missing ~checksum_of ?obs
                  index
              in
              Vm.Sample_log.iter slog (fun ~lbr ~lbr_len ~stack ~stack_len ->
                  Core.Ctx_reconstruct.feed st ~lbr ~lbr_len ~stack ~stack_len);
              let trie, _stats = Core.Ctx_reconstruct.finish st in
              P.Text_io.Ctx_prof trie
        in
        {
          P.Labels.sl_label = label;
          sl_weight = Int64.of_int (Vm.Sample_log.n_samples slog);
          sl_profile = profile;
        })
      (Vm.Sample_log.slice_by_label log)
  in
  List.iter
    (fun s ->
      match s.P.Labels.sl_profile with
      | P.Text_io.Ctx_prof trie -> slice_tries := trie :: !slice_tries
      | _ -> ())
    per_slice;
  let full_agg = agg_of log in
  let blend, flat =
    match shape with
    | Lines ->
        ( P.Text_io.Line_prof
            (Pg.Dwarf_corr.correlate_agg ~name_of ~index ?obs b.vb_bin full_agg),
          None )
    | Probes ->
        ( P.Text_io.Probe_prof
            (Core.Probe_corr.correlate_agg ~name_of ~index ~checksum_of ?obs
               b.vb_bin full_agg),
          None )
    | Ctx ->
        let trie = P.Ctx_profile.create () in
        List.iter (fun t -> P.Merge.ctx ~into:trie ~weight:1L t) !slice_tries;
        if Int64.compare options.D.trim_threshold 0L > 0 then
          ignore (P.Ctx_profile.trim_cold trie ~threshold:options.D.trim_threshold);
        ( P.Text_io.Ctx_prof trie,
          Some
            (Core.Probe_corr.correlate_agg ~name_of ~index ~checksum_of ?obs
               b.vb_bin full_agg) )
  in
  {
    lc_slices = P.Labels.make ~kind:(kind_of_shape shape) per_slice;
    lc_blend = blend;
    lc_flat = flat;
  }

let match_onto ?obs ~target p =
  match p with
  | P.Text_io.Line_prof lp ->
      let lp', rep = Core.Stale_match.match_line ?obs ~target lp in
      (P.Text_io.Line_prof lp', rep)
  | P.Text_io.Probe_prof pp ->
      let pp', rep = Core.Stale_match.match_probe ?obs ~target pp in
      (P.Text_io.Probe_prof pp', rep)
  | P.Text_io.Ctx_prof trie ->
      let trie', rep = Core.Stale_match.match_ctx ?obs ~target trie in
      (P.Text_io.Ctx_prof trie', rep)
