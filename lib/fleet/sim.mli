(** One fleet collection window, end to end: build every binary version in
    flight, serve the request stream across the instance pool, collect
    sample batches into the sharded {!Collector}, correlate each version's
    merged log against its own build, stale-route the old versions' profiles
    onto the newest version, and weighted-merge everything into the one
    profile the next release builds with.

    Version skew model: a release fleet rarely runs one binary. The
    [versions] list is the mix in flight — typically the canary (newest,
    the rebuild target) plus N-1 and N-2 still draining. Each version's
    instance cohort serves its own full copy of the request stream
    (cohorts see representative traffic), contiguously partitioned across
    the cohort so that at duty 1.0 a cohort's reassembled log is
    byte-identical to a single instance serving the whole stream — the
    skew-0 fleet-equals-baseline oracle. *)

type version = {
  v_id : int;  (** release generation; the max id is the rebuild target *)
  v_source : string;  (** this version's MiniC source *)
  v_weight : int64;  (** cross-version merge weight (e.g. traffic share) *)
  v_instances : int;  (** cohort size serving this version *)
}

type config = {
  f_shards : int;  (** collector shards *)
  f_duty : float;  (** per-request sampling probability, each instance *)
  f_batch_requests : int;  (** instance batch flush interval *)
  f_request_copies : int;  (** stream = workload train inputs × this *)
  f_jobs : int;  (** scheduler domains for serve/decode/correlate *)
  f_shape : Build.shape;
  f_options : Csspgo_core.Driver.options;
  f_seed : int64;  (** root seed for per-instance duty gating *)
}

val default : config
(** 2 shards, duty 1.0, batch 4, 1 copy, 1 job, [Ctx] shape, driver
    default options, seed 1. *)

type per_version = {
  pv_id : int;
  pv_instances : int;
  pv_requests : int;
  pv_sampled : int;  (** requests that ran under the sampler *)
  pv_samples : int;
  pv_batches : int;  (** batches shipped (empty ones are not) *)
  pv_bytes : int;  (** CSLG bytes shipped *)
  pv_profile : Csspgo_profile.Text_io.profile;
      (** correlated on this version's own build, before stale routing *)
  pv_stale : Csspgo_core.Stale_match.report option;
      (** the routing onto the target; [None] for the target itself *)
}

type outcome = {
  fs_profile : Csspgo_profile.Text_io.profile;
      (** the weighted cross-version merge, anchored on the target *)
  fs_flat : Csspgo_profile.Probe_profile.t option;
      (** merged flat baseline ([Ctx] shape only) *)
  fs_target : Build.built;  (** the newest version's build *)
  fs_per_version : per_version list;  (** sorted by version id *)
  fs_requests : int;
  fs_sampled : int;
  fs_samples : int;
  fs_batches : int;
  fs_bytes : int;
  fs_cycles : int64;  (** total serving cycles across the fleet *)
}

val run :
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  ?series:Csspgo_obs.Series.t ->
  ?health:Csspgo_obs.Health.tracker ->
  config ->
  workload:Csspgo_core.Driver.workload ->
  versions:version list ->
  outcome
(** [versions] must be non-empty with distinct ids and positive cohorts.
    Deterministic: equal inputs yield a byte-identical [fs_profile]
    whatever [f_jobs] is. Emits [fleet.*] counters to [metrics] and
    per-phase spans (tid 0, ["fleet-build"], ["fleet-serve"],
    ["fleet-drain"], ["fleet-correlate"], ["fleet-merge"]) to [trace].
    A collection window is a telemetry window: when [series] or [health]
    is given, the run closes exactly one {!Csspgo_obs.Series} window /
    {!Csspgo_obs.Health} window from [metrics]'s cumulative snapshot at
    the end (pass a live [metrics], or the windows observe nothing). *)
