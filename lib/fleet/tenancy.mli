(** Multi-tenant fleet serving over labeled request streams: serve a
    {!Csspgo_workloads.Mix} across instances, reassemble the labeled
    sample log, slice the correlation per label, and route per-tenant
    slices into per-tenant {e specialized} builds — the label-sliced PGO
    loop, end to end.

    The blended profile out of {!collect} is byte-identical to what the
    unlabeled fleet path produces on the same traffic (labels never
    perturb sample payloads or batching), so a tenancy run is the plain
    fleet run plus the per-label view. *)

type config = {
  ty_instances : int;  (** serving instances (requests partition contiguously) *)
  ty_shards : int;  (** collector shards *)
  ty_duty : float;  (** sampling duty cycle, in [0, 1] *)
  ty_batch_requests : int;  (** instance batch flush interval *)
  ty_jobs : int;  (** domains for drain / correlation / plan runs *)
  ty_shape : Build.shape;
  ty_options : Csspgo_core.Driver.options;
  ty_seed : int64;
}

val default : config
(** 2 instances, 2 shards, duty 1.0, batch 4, jobs 1, [Ctx] shape,
    default driver options, seed 1. *)

type collected = {
  co_build : Build.built;
  co_log : Csspgo_vm.Sample_log.t;  (** reassembled, labels intact *)
  co_labeled : Build.labeled;  (** per-request-label slices + blend *)
  co_tenants : Csspgo_profile.Labels.t;
      (** {!co_labeled}[.lc_slices] projected onto the tenant key — one
          slice per tenant, weights summed across its endpoints *)
  co_requests : int;
  co_sampled : int;
  co_samples : int;
  co_batches : int;
  co_bytes : int;
  co_cycles : int64;
}

val collect :
  ?metrics:Csspgo_obs.Metrics.t ->
  config ->
  Csspgo_workloads.Mix.t ->
  collected
(** Build the mix's profiling binary, serve the labeled train stream
    ({!Instance.serve_labeled}; contiguous request partition over
    [ty_instances], fleet-deterministic seeds), drain the collector, and
    run {!Build.correlate_labeled}. Deterministic for equal inputs at any
    [ty_jobs]. *)

type specialized = {
  sp_tenant : string;
  sp_label : Csspgo_support.Label_set.t;  (** the projected tenant label *)
  sp_weight : int64;  (** observed sample count of the tenant's slice *)
  sp_sliced : Csspgo_core.Driver.outcome option;
      (** build specialized on the tenant's own slice, evaluated on the
          tenant's eval specs; [None] when the tenant collected no samples
          (nothing to specialize on) *)
  sp_blended : Csspgo_core.Driver.outcome;
      (** build on the blended profile, same tenant eval specs *)
}

val specialize :
  ?hooks:Csspgo_core.Driver.Plan.hooks ->
  config ->
  Csspgo_workloads.Mix.t ->
  collected ->
  specialized list
(** For every tenant of the mix (mix order): inject the tenant's
    slice profile and the blended profile into
    [Driver.Plan.make_with_profile] plans whose eval specs are the
    tenant's own, and run both. The per-tenant sliced-vs-blended outcome
    pair is the PGO-quality comparison the label machinery exists for. *)

type comparison = {
  cp_tenant : string;
  cp_weight : int64;
  cp_share : float;  (** slice weight / total sample mass *)
  cp_sliced_overlap : float;
      (** block overlap of the sliced build's annotation vs the tenant's
          instrumentation ground truth; [nan] when not specialized *)
  cp_blended_overlap : float;
  cp_sliced_cycles : int64;  (** [-1] when not specialized *)
  cp_blended_cycles : int64;
  cp_nopgo_cycles : int64;
}

val quality :
  ?hooks:Csspgo_core.Driver.Plan.hooks ->
  config ->
  Csspgo_workloads.Mix.t ->
  collected ->
  specialized list ->
  comparison list
(** Score {!specialize}'s outcomes per tenant: instrumentation ground
    truth is an [Instr_pgo] run trained on exactly the tenant's requests
    from the served stream and evaluated on its eval specs; overlaps are
    {!Csspgo_core.Quality.block_overlap} against it, and a [Nopgo] build
    provides the cycle baseline. Tenants absent from the stream are
    skipped. *)
