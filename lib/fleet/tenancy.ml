module Vm = Csspgo_vm
module P = Csspgo_profile
module Obs = Csspgo_obs
module Core = Csspgo_core
module D = Core.Driver
module S = Csspgo_orchestrator.Scheduler
module Fnv = Csspgo_support.Fnv
module Label_set = Csspgo_support.Label_set
module W = Csspgo_workloads

type config = {
  ty_instances : int;
  ty_shards : int;
  ty_duty : float;
  ty_batch_requests : int;
  ty_jobs : int;
  ty_shape : Build.shape;
  ty_options : D.options;
  ty_seed : int64;
}

let default =
  {
    ty_instances = 2;
    ty_shards = 2;
    ty_duty = 1.0;
    ty_batch_requests = 4;
    ty_jobs = 1;
    ty_shape = Build.Ctx;
    ty_options = D.default_options;
    ty_seed = 1L;
  }

type collected = {
  co_build : Build.built;
  co_log : Vm.Sample_log.t;
  co_labeled : Build.labeled;
  co_tenants : P.Labels.t;
  co_requests : int;
  co_sampled : int;
  co_samples : int;
  co_batches : int;
  co_bytes : int;
  co_cycles : int64;
}

(* Contiguous block partition, exactly [Sim]'s: concatenating the blocks
   in slot order reproduces the stream. *)
let partition k xs =
  let n = List.length xs in
  let base = n / k and extra = n mod k in
  let rec take acc n xs =
    if n = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: tl -> take (x :: acc) (n - 1) tl
  in
  let rec go i xs =
    if i = k then []
    else
      let sz = base + if i < extra then 1 else 0 in
      let block, rest = take [] sz xs in
      block :: go (i + 1) rest
  in
  go 0 xs

let validate cfg =
  if cfg.ty_instances <= 0 then
    invalid_arg "Tenancy.collect: ty_instances must be positive";
  if cfg.ty_shards <= 0 then
    invalid_arg "Tenancy.collect: ty_shards must be positive";
  if not (cfg.ty_duty >= 0.0 && cfg.ty_duty <= 1.0) then
    invalid_arg "Tenancy.collect: ty_duty must be in [0, 1]"

let collect ?(metrics = Obs.Metrics.null) cfg (mix : W.Mix.t) =
  validate cfg;
  let jobs = max 1 cfg.ty_jobs in
  let options = cfg.ty_options in
  let build =
    Build.profiling_build ~options ~shape:cfg.ty_shape
      ~source:mix.W.Mix.mx_workload.D.w_source
  in
  let blocks = partition cfg.ty_instances mix.W.Mix.mx_requests in
  let served =
    S.map ~metrics ~jobs
      (fun (id, block) ->
        let batches = ref [] in
        let report =
          Instance.serve_labeled
            {
              Instance.ic_instance = id;
              ic_version = 0;
              ic_duty = cfg.ty_duty;
              ic_batch_requests = cfg.ty_batch_requests;
              ic_seed = Fnv.int64 (Fnv.int cfg.ty_seed id) 0L;
            }
            ~pmu:options.D.pmu ~bin:build.Build.vb_bin
            ~entry:mix.W.Mix.mx_workload.D.w_entry ~requests:block
            ~ship:(fun batch -> batches := batch :: !batches)
        in
        (report, List.rev !batches))
      (List.mapi (fun id block -> (id, block)) blocks)
  in
  let collector = Collector.create ~obs:metrics ~shards:cfg.ty_shards () in
  List.iter
    (fun (_report, batches) -> List.iter (Collector.ingest collector) batches)
    served;
  let log =
    match Collector.drain ~metrics ~jobs collector with
    | [ m ] -> m.Collector.m_log
    | [] -> Vm.Sample_log.create ()
    | _ -> assert false (* single version in flight *)
  in
  let labeled =
    Build.correlate_labeled ~obs:metrics ~jobs ~options ~shape:cfg.ty_shape
      build log
  in
  let sum f = List.fold_left (fun a (r, _) -> a + f r) 0 served in
  {
    co_build = build;
    co_log = log;
    co_labeled = labeled;
    co_tenants =
      P.Labels.project labeled.Build.lc_slices ~keys:[ W.Mix.tenant_key ];
    co_requests = sum (fun r -> r.Instance.ir_requests);
    co_sampled = sum (fun r -> r.Instance.ir_sampled);
    co_samples = sum (fun r -> r.Instance.ir_samples);
    co_batches = sum (fun r -> r.Instance.ir_batches);
    co_bytes =
      List.fold_left
        (fun a (_, bs) ->
          List.fold_left
            (fun a b -> a + String.length b.Instance.b_blob)
            a bs)
        0 served;
    co_cycles =
      List.fold_left
        (fun a (r, _) -> Int64.add a r.Instance.ir_cycles)
        0L served;
  }

(* --- per-tenant specialization ---------------------------------------- *)

type specialized = {
  sp_tenant : string;
  sp_label : Label_set.t;
  sp_weight : int64;
  sp_sliced : D.outcome option;
  sp_blended : D.outcome;
}

let tenant_label name = Label_set.of_list [ (W.Mix.tenant_key, name) ]

let tenant_workload (mix : W.Mix.t) name =
  let evals =
    match List.assoc_opt name mix.W.Mix.mx_tenant_evals with
    | Some evals -> evals
    | None -> invalid_arg (Printf.sprintf "Tenancy: unknown tenant %s" name)
  in
  { mix.W.Mix.mx_workload with D.w_eval = evals }

let specialize ?hooks cfg (mix : W.Mix.t) collected =
  let options = cfg.ty_options in
  let flat =
    match collected.co_labeled.Build.lc_flat with
    | Some f -> Some f
    | None -> None
  in
  let run_plan plan = D.Plan.run ?hooks plan in
  S.map ~jobs:(max 1 cfg.ty_jobs)
    (fun (name, _evals) ->
      let label = tenant_label name in
      let w = tenant_workload mix name in
      let slice = P.Labels.find collected.co_tenants label in
      let sliced =
        Option.map
          (fun s ->
            run_plan
              (D.Plan.make_with_profile ~options
                 ~profile:s.P.Labels.sl_profile w))
          slice
      in
      let blended =
        run_plan
          (D.Plan.make_with_profile ~options
             ~profile:collected.co_labeled.Build.lc_blend ?flat w)
      in
      {
        sp_tenant = name;
        sp_label = label;
        sp_weight =
          (match slice with Some s -> s.P.Labels.sl_weight | None -> 0L);
        sp_sliced = sliced;
        sp_blended = blended;
      })
    mix.W.Mix.mx_tenant_evals

(* --- quality scoring --------------------------------------------------- *)

type comparison = {
  cp_tenant : string;
  cp_weight : int64;
  cp_share : float;
  cp_sliced_overlap : float;
  cp_blended_overlap : float;
  cp_sliced_cycles : int64;
  cp_blended_cycles : int64;
  cp_nopgo_cycles : int64;
}

let quality ?hooks cfg (mix : W.Mix.t) collected specialized =
  let options = cfg.ty_options in
  let total = P.Labels.total_weight collected.co_tenants in
  List.filter_map
    (fun sp ->
      (* The tenant's own requests from the served stream are the training
         inputs of its instrumentation ground truth. *)
      let train =
        List.filter_map
          (fun (spec, ls) ->
            match Label_set.find ls W.Mix.tenant_key with
            | Some v when String.equal v sp.sp_tenant -> Some spec
            | _ -> None)
          mix.W.Mix.mx_requests
      in
      if train = [] then None
      else begin
        let w = { (tenant_workload mix sp.sp_tenant) with D.w_train = train } in
        let truth =
          D.Plan.run ?hooks (D.Plan.make ~options ~variant:D.Instr_pgo w)
        in
        let nopgo =
          D.Plan.run ?hooks (D.Plan.make ~options ~variant:D.Nopgo w)
        in
        let overlap (o : D.outcome) =
          Core.Quality.block_overlap ~truth:truth.D.o_annotated o.D.o_annotated
        in
        Some
          {
            cp_tenant = sp.sp_tenant;
            cp_weight = sp.sp_weight;
            cp_share =
              (if Int64.compare total 0L > 0 then
                 Int64.to_float sp.sp_weight /. Int64.to_float total
               else 0.0);
            cp_sliced_overlap =
              (match sp.sp_sliced with Some o -> overlap o | None -> Float.nan);
            cp_blended_overlap = overlap sp.sp_blended;
            cp_sliced_cycles =
              (match sp.sp_sliced with
              | Some o -> o.D.o_eval.D.ev_cycles
              | None -> -1L);
            cp_blended_cycles = sp.sp_blended.D.o_eval.D.ev_cycles;
            cp_nopgo_cycles = nopgo.D.o_eval.D.ev_cycles;
          }
      end)
    specialized
