module Vm = Csspgo_vm
module Rng = Csspgo_support.Rng
module D = Csspgo_core.Driver

type config = {
  ic_instance : int;
  ic_version : int;
  ic_duty : float;
  ic_batch_requests : int;
  ic_seed : int64;
}

type batch = {
  b_instance : int;
  b_version : int;
  b_seq : int;
  b_blob : string;
  b_samples : int;
  b_requests : int;
}

type report = {
  ir_batches : int;
  ir_requests : int;
  ir_sampled : int;
  ir_samples : int;
  ir_cycles : int64;
}

let serve_labeled cfg ~pmu ~bin ~entry ~requests ~ship =
  if cfg.ic_batch_requests <= 0 then
    invalid_arg "Instance.serve: ic_batch_requests must be positive";
  let rng = Rng.create cfg.ic_seed in
  let log = ref (Vm.Sample_log.create ()) in
  let pending = ref 0 in
  let seq = ref 0 in
  let shipped = ref 0 in
  let requests_n = ref 0 in
  let sampled = ref 0 in
  let samples = ref 0 in
  let cycles = ref 0L in
  let flush () =
    if !pending > 0 then begin
      let n = Vm.Sample_log.n_samples !log in
      (if n > 0 then begin
         Vm.Sample_log.compact !log;
         ship
           {
             b_instance = cfg.ic_instance;
             b_version = cfg.ic_version;
             b_seq = !seq;
             b_blob = Vm.Sample_log.encode !log;
             b_samples = n;
             b_requests = !pending;
           };
         incr shipped
       end);
      incr seq;
      log := Vm.Sample_log.create ();
      pending := 0
    end
  in
  List.iter
    (fun ((spec : D.run_spec), labels) ->
      (* The gate draw happens for every request, sampled or not, so the
         duty stream stays aligned across batch-size choices. *)
      let sample_this = Rng.chance rng cfg.ic_duty in
      let r =
        Vm.Machine.run
          ~pmu:(if sample_this then Some pmu else None)
          ~sink:(Vm.Sample_log.sink !log)
          ~labels ~globals_init:spec.D.rs_globals ~args:spec.D.rs_args bin
          ~entry
      in
      incr requests_n;
      if sample_this then begin
        incr sampled;
        samples := !samples + r.Vm.Machine.n_samples
      end;
      cycles := Int64.add !cycles r.Vm.Machine.cycles;
      incr pending;
      if !pending >= cfg.ic_batch_requests then flush ())
    requests;
  flush ();
  {
    ir_batches = !shipped;
    ir_requests = !requests_n;
    ir_sampled = !sampled;
    ir_samples = !samples;
    ir_cycles = !cycles;
  }

let serve cfg ~pmu ~bin ~entry ~requests ~ship =
  serve_labeled cfg ~pmu ~bin ~entry
    ~requests:
      (List.map (fun s -> (s, Csspgo_support.Label_set.empty)) requests)
    ~ship
