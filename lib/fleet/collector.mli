(** The sharded sample collector: fleet instances {!ingest} CSLG-framed
    batches into shards (routed by instance id), and a drain at the end
    of the collection window decodes every shard in parallel — either
    reassembling one merged sample log per binary version ({!drain}) or,
    for the fused decode-and-correlate path, handing back each version's
    decoded chunk list untouched ({!drain_chunks}), so the concatenated
    log is never materialized.

    Drain ordering is deterministic and independent of both arrival order
    and [jobs]: batches sort by (version, instance, seq) — the collection
    order within each instance, instances in fleet order — and per-version
    logs concatenate through {!Csspgo_orchestrator.Scheduler.tree_reduce},
    whose tree shape is a pure function of the batch count. With contiguous
    request partitioning and full duty, a version's merged log is
    byte-identical (under re-encoding) to the log a single instance serving
    the whole stream would have produced. *)

type t

val create :
  ?obs:Csspgo_obs.Metrics.t -> ?lossy:bool -> shards:int -> unit -> t
(** [shards] must be positive. [obs] receives [collector.batches],
    [collector.bytes] and [collector.samples] counters as batches arrive,
    plus [collector.dropped-blobs] for every undecodable blob seen at
    drain time. With [lossy] (default [false]) a corrupt blob is counted
    and skipped instead of failing the drain — continuous-profiling
    ingest should degrade to losing one batch, not losing the window. *)

val shards : t -> int

val ingest : t -> Instance.batch -> unit
(** Route a batch to shard [b_instance mod shards]. Cheap: the CSLG blob is
    stored undecoded; decoding is deferred to drain time. *)

val shard_series : t -> Csspgo_obs.Series.t array
(** One windowed series per shard ([collector.batches] / [.bytes] /
    [.samples] / [.dropped-blobs]). Every drain closes one window per
    shard from the shard's cumulative totals, so window [k] holds the
    increments of the k-th collection epoch. Reducing the array with
    {!Csspgo_obs.Series.merge} reproduces the collector-wide counters —
    per-shard telemetry and the registry never disagree. *)

type merged = {
  m_version : int;
  m_log : Csspgo_vm.Sample_log.t;  (** all of the version's samples *)
  m_batches : int;
  m_samples : int;
  m_bytes : int;  (** shipped CSLG bytes for this version *)
}

val drain :
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  jobs:int ->
  t ->
  merged list
(** Decode and reassemble, [merged] sorted by version. On a corrupt blob:
    counted in [collector.dropped-blobs], then skipped when the collector
    is lossy, else [Failure] naming the offending instance/seq. The
    collector is emptied; a second drain returns []. *)

type chunks = {
  k_version : int;
  k_chunks : Csspgo_vm.Sample_log.t list;
      (** every decoded CSLG chunk, batch (version, instance, seq) order,
          chunks in frame order within a batch *)
  k_batches : int;
  k_samples : int;
  k_bytes : int;
}

val drain_chunks :
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  jobs:int ->
  t ->
  chunks list
(** The fused-correlation drain: same gathering, ordering, corrupt-blob
    and emptying behavior as {!drain}, but each version keeps its decoded
    chunk partition (concatenating [k_chunks] in order would reproduce
    [m_log] exactly). Feed the chunks to [Build.correlate_chunks] /
    [Par_corr] and the per-version log never exists in one arena. *)
