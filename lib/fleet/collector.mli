(** The sharded sample collector: fleet instances {!ingest} CSLG-framed
    batches into shards (routed by instance id), and a {!drain} at the end
    of the collection window decodes every shard in parallel and reassembles
    one merged sample log per binary version.

    Drain ordering is deterministic and independent of both arrival order
    and [jobs]: batches sort by (version, instance, seq) — the collection
    order within each instance, instances in fleet order — and per-version
    logs concatenate through {!Csspgo_orchestrator.Scheduler.tree_reduce},
    whose tree shape is a pure function of the batch count. With contiguous
    request partitioning and full duty, a version's merged log is
    byte-identical (under re-encoding) to the log a single instance serving
    the whole stream would have produced. *)

type t

val create : ?obs:Csspgo_obs.Metrics.t -> shards:int -> unit -> t
(** [shards] must be positive. [obs] receives [collector.batches],
    [collector.bytes] and [collector.samples] counters as batches arrive. *)

val shards : t -> int

val ingest : t -> Instance.batch -> unit
(** Route a batch to shard [b_instance mod shards]. Cheap: the CSLG blob is
    stored undecoded; decoding is deferred to {!drain}. *)

type merged = {
  m_version : int;
  m_log : Csspgo_vm.Sample_log.t;  (** all of the version's samples *)
  m_batches : int;
  m_samples : int;
  m_bytes : int;  (** shipped CSLG bytes for this version *)
}

val drain :
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  jobs:int ->
  t ->
  merged list
(** Decode and reassemble, [merged] sorted by version. Raises [Failure] on
    a corrupt blob (naming the offending instance/seq). The collector is
    emptied; a second drain returns []. *)
