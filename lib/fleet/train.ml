module P = Csspgo_profile
module Core = Csspgo_core
module D = Core.Driver
module W = Csspgo_workloads
module Obs = Csspgo_obs
module Fnv = Csspgo_support.Fnv

type config = {
  t_generations : int;
  t_edits : int;
  t_edit_schedule : int list;
  t_drift_seed : int64;
  t_skew : int;
  t_cohort : int;
  t_carry_weight : int64;
  t_fresh_weight : int64;
  t_overlap : bool;
  t_fleet : Sim.config;
}

let default =
  {
    t_generations = 3;
    t_edits = 2;
    t_edit_schedule = [];
    t_drift_seed = 7L;
    t_skew = 1;
    t_cohort = 2;
    t_carry_weight = 1L;
    t_fresh_weight = 3L;
    t_overlap = true;
    t_fleet = Sim.default;
  }

type generation = {
  g_id : int;
  g_source : string;
  g_fleet : Sim.outcome;
  g_carry : Core.Stale_match.report option;
  g_profile : P.Text_io.profile;
  g_outcome : D.outcome;
  g_nopgo : D.eval;
  g_speedup : float;
  g_overlap : float option;
  g_health : Obs.Health.window_report option;
}

let edits_for cfg g =
  match List.nth_opt cfg.t_edit_schedule (g - 1) with
  | Some e -> e
  | None -> cfg.t_edits

let run ?metrics ?trace ?series ?health cfg (w : D.workload) =
  if cfg.t_generations < 1 then
    invalid_arg "Train.run: t_generations must be at least 1";
  if cfg.t_skew < 0 then invalid_arg "Train.run: negative t_skew";
  List.iter
    (fun e -> if e < 0 then invalid_arg "Train.run: negative scheduled edits")
    cfg.t_edit_schedule;
  (* Health windows need counters to observe: if the caller asked for
     telemetry windows without a registry, give the fleet a private one. *)
  let metrics =
    match (metrics, series, health) with
    | Some m, _, _ -> Some m
    | None, None, None -> None
    | None, _, _ -> Some (Obs.Metrics.create ())
  in
  let options = cfg.t_fleet.Sim.f_options in
  (* Drift chain: each release drifts from its predecessor, so edits
     compound down the train the way real source history does. The edit
     schedule overrides the uniform count per transition — entry [g-1]
     is the drift applied between generation g-1 and g (a mid-train
     spike is one large entry). *)
  let sources = Array.make cfg.t_generations w.D.w_source in
  for g = 1 to cfg.t_generations - 1 do
    sources.(g) <-
      (W.Drift.apply
         ~seed:(Fnv.int cfg.t_drift_seed g)
         ~edits:(edits_for cfg g) sources.(g - 1))
        .W.Drift.dr_source
  done;
  let kind = Build.kind_of_shape cfg.t_fleet.Sim.f_shape in
  let carried = ref None in
  let prev_window = ref None in
  List.init cfg.t_generations (fun g ->
      let source = sources.(g) in
      let gen_w = { w with D.w_source = source } in
      let lo = max 0 (g - cfg.t_skew) in
      let versions =
        List.init (g - lo + 1) (fun i ->
            let id = lo + i in
            {
              Sim.v_id = id;
              v_source = sources.(id);
              v_weight = 1L;
              v_instances = cfg.t_cohort;
            })
      in
      let fleet = Sim.run ?metrics ?trace cfg.t_fleet ~workload:gen_w ~versions in
      let profile, flat, carry_rep =
        match !carried with
        | None -> (fleet.Sim.fs_profile, fleet.Sim.fs_flat, None)
        | Some (prev, prev_flat) ->
            let target = fleet.Sim.fs_target.Build.vb_target in
            let matched, rep = Build.match_onto ?obs:metrics ~target prev in
            let profile =
              P.Merge.weighted ~kind
                [
                  (cfg.t_carry_weight, matched);
                  (cfg.t_fresh_weight, fleet.Sim.fs_profile);
                ]
            in
            let flat =
              match (prev_flat, fleet.Sim.fs_flat) with
              | Some pf, Some ff ->
                  let pf', _ = Core.Stale_match.match_probe ~target pf in
                  (match
                     P.Merge.weighted ~kind:P.Text_io.Probe
                       [
                         (cfg.t_carry_weight, P.Text_io.Probe_prof pf');
                         (cfg.t_fresh_weight, P.Text_io.Probe_prof ff);
                       ]
                   with
                  | P.Text_io.Probe_prof pp -> Some pp
                  | _ -> assert false)
              | _ -> fleet.Sim.fs_flat
            in
            (profile, flat, Some rep)
      in
      carried := Some (profile, flat);
      (* One health/series window per generation, carrying the
         window-over-window overlap of the fresh fleet profiles — the
         merge-dilution/drift signal thresholds can't see in counters. *)
      let wov =
        match !prev_window with
        | None -> None
        | Some prev -> Some (Core.Quality.profile_overlap prev fleet.Sim.fs_profile)
      in
      prev_window := Some fleet.Sim.fs_profile;
      let g_health =
        match (series, health, metrics) with
        | None, None, _ | _, _, None -> None
        | _ ->
            let snap = Obs.Metrics.snapshot (Option.get metrics) in
            Option.iter (fun s -> ignore (Obs.Series.record s snap)) series;
            Option.map (fun h -> Obs.Health.observe ?overlap:wov h snap) health
      in
      let plan = D.Plan.make_with_profile ~options ~profile ?flat gen_w in
      let outcome = D.Plan.run plan in
      let nopgo = (D.run_variant ~options D.Nopgo gen_w).D.o_eval in
      let speedup =
        Int64.to_float nopgo.D.ev_cycles
        /. Int64.to_float outcome.D.o_eval.D.ev_cycles
      in
      let overlap =
        if cfg.t_overlap then
          let truth = (D.run_variant ~options D.Instr_pgo gen_w).D.o_annotated in
          Some (Core.Quality.block_overlap ~truth outcome.D.o_annotated)
        else None
      in
      {
        g_id = g;
        g_source = source;
        g_fleet = fleet;
        g_carry = carry_rep;
        g_profile = profile;
        g_outcome = outcome;
        g_nopgo = nopgo;
        g_speedup = speedup;
        g_overlap = overlap;
        g_health;
      })
