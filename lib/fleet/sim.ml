module Vm = Csspgo_vm
module P = Csspgo_profile
module Obs = Csspgo_obs
module Core = Csspgo_core
module D = Core.Driver
module S = Csspgo_orchestrator.Scheduler
module Fnv = Csspgo_support.Fnv

type version = {
  v_id : int;
  v_source : string;
  v_weight : int64;
  v_instances : int;
}

type config = {
  f_shards : int;
  f_duty : float;
  f_batch_requests : int;
  f_request_copies : int;
  f_jobs : int;
  f_shape : Build.shape;
  f_options : D.options;
  f_seed : int64;
}

let default =
  {
    f_shards = 2;
    f_duty = 1.0;
    f_batch_requests = 4;
    f_request_copies = 1;
    f_jobs = 1;
    f_shape = Build.Ctx;
    f_options = D.default_options;
    f_seed = 1L;
  }

type per_version = {
  pv_id : int;
  pv_instances : int;
  pv_requests : int;
  pv_sampled : int;
  pv_samples : int;
  pv_batches : int;
  pv_bytes : int;
  pv_profile : P.Text_io.profile;
  pv_stale : Core.Stale_match.report option;
}

type outcome = {
  fs_profile : P.Text_io.profile;
  fs_flat : P.Probe_profile.t option;
  fs_target : Build.built;
  fs_per_version : per_version list;
  fs_requests : int;
  fs_sampled : int;
  fs_samples : int;
  fs_batches : int;
  fs_bytes : int;
  fs_cycles : int64;
}

(* Contiguous block partition: n items over k cohort slots, first (n mod k)
   slots one larger. Concatenating the blocks in slot order reproduces the
   input — the property the skew-0 log identity rides on. *)
let partition k xs =
  let n = List.length xs in
  let base = n / k and extra = n mod k in
  let rec take acc n xs =
    if n = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: tl -> take (x :: acc) (n - 1) tl
  in
  let rec go i xs =
    if i = k then []
    else
      let sz = base + if i < extra then 1 else 0 in
      let block, rest = take [] sz xs in
      block :: go (i + 1) rest
  in
  go 0 xs

let replicate n xs = List.concat (List.init n (fun _ -> xs))

let validate cfg versions =
  if versions = [] then invalid_arg "Sim.run: empty version list";
  if cfg.f_shards <= 0 then invalid_arg "Sim.run: f_shards must be positive";
  if cfg.f_request_copies <= 0 then
    invalid_arg "Sim.run: f_request_copies must be positive";
  if not (cfg.f_duty >= 0.0 && cfg.f_duty <= 1.0) then
    invalid_arg "Sim.run: f_duty must be in [0, 1]";
  let ids = List.map (fun v -> v.v_id) versions in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Sim.run: duplicate version ids";
  List.iter
    (fun v ->
      if v.v_instances <= 0 then invalid_arg "Sim.run: empty version cohort";
      if Int64.compare v.v_weight 0L < 0 then
        invalid_arg "Sim.run: negative version weight")
    versions

let run ?(metrics = Obs.Metrics.null) ?trace ?series ?health
    cfg ~(workload : D.workload) ~versions =
  validate cfg versions;
  let versions = List.sort (fun a b -> compare a.v_id b.v_id) versions in
  let span name f =
    match trace with
    | None -> f ()
    | Some t ->
        let track = Obs.Trace.track t ~tid:0 ~name:"fleet" in
        Obs.Trace.with_span track name f
  in
  let jobs = max 1 cfg.f_jobs in
  let requests = replicate cfg.f_request_copies workload.D.w_train in
  (* Phase 1: one profiling build per version in flight. *)
  let builds =
    span "fleet-build" (fun () ->
        S.map ~metrics ?trace ~jobs
          (fun v ->
            Build.profiling_build ~options:cfg.f_options ~shape:cfg.f_shape
              ~source:v.v_source)
          versions)
  in
  let built_of = Hashtbl.create 8 in
  List.iter2 (fun v b -> Hashtbl.replace built_of v.v_id b) versions builds;
  (* Phase 2: serve. Instance ids are assigned fleet-wide in (version,
     cohort-slot) order; each instance accumulates its batches locally so
     the parallel stage never touches the collector. *)
  let instances =
    List.concat_map
      (fun v ->
        List.mapi (fun slot block -> (v, slot, block))
          (partition v.v_instances requests))
      versions
  in
  let instances =
    List.mapi (fun id (v, _slot, block) -> (id, v, block)) instances
  in
  let served =
    span "fleet-serve" (fun () ->
        S.map ~metrics ?trace ~jobs
          (fun (id, v, block) ->
            let b = Hashtbl.find built_of v.v_id in
            let batches = ref [] in
            let report =
              Instance.serve
                {
                  Instance.ic_instance = id;
                  ic_version = v.v_id;
                  ic_duty = cfg.f_duty;
                  ic_batch_requests = cfg.f_batch_requests;
                  ic_seed = Fnv.int64 (Fnv.int cfg.f_seed id) (Int64.of_int v.v_id);
                }
                ~pmu:cfg.f_options.D.pmu ~bin:b.Build.vb_bin
                ~entry:workload.D.w_entry ~requests:block
                ~ship:(fun batch -> batches := batch :: !batches)
            in
            (report, List.rev !batches))
          instances)
  in
  (* Phase 3: collect and drain. Ingest order is deterministic (instance
     order) but drain re-sorts anyway, so arrival order never matters. *)
  let collector = Collector.create ~obs:metrics ~shards:cfg.f_shards () in
  List.iter
    (fun (_report, batches) -> List.iter (Collector.ingest collector) batches)
    served;
  (* The fused drain: each version keeps its decoded chunk partition, so
     the concatenated per-version log is never materialized between the
     wire and the correlators. *)
  let merged =
    span "fleet-drain" (fun () ->
        Collector.drain_chunks ~metrics ?trace ~jobs collector)
  in
  let merged_of = Hashtbl.create 8 in
  List.iter
    (fun (m : Collector.chunks) ->
      Hashtbl.replace merged_of m.Collector.k_version m)
    merged;
  (* Phase 4: per-version correlation on the version's own build. The
     parallelism lives *inside* each correlation (sharded chunk replay),
     where the samples are, rather than across the handful of versions. *)
  let profiles =
    span "fleet-correlate" (fun () ->
        List.map
          (fun v ->
            let b = Hashtbl.find built_of v.v_id in
            let chunks =
              match Hashtbl.find_opt merged_of v.v_id with
              | Some m -> m.Collector.k_chunks
              | None -> []
            in
            Build.correlate_chunks ~obs:metrics ~metrics ?trace ~jobs
              ~options:cfg.f_options ~shape:cfg.f_shape b chunks)
          versions)
  in
  (* Phase 5: stale-route old versions onto the newest, then merge. *)
  let target_v = List.nth versions (List.length versions - 1) in
  let target_b = Hashtbl.find built_of target_v.v_id in
  let routed =
    span "fleet-merge" (fun () ->
        List.map2
          (fun v (prof, flat) ->
            if v.v_id = target_v.v_id then (v, prof, flat, None)
            else
              let prof', rep =
                Build.match_onto ~obs:metrics ~target:target_b.Build.vb_target
                  prof
              in
              let flat' =
                Option.map
                  (fun f ->
                    (* The flat baseline rides the same routing; its
                       verdicts would double-count the trie's. *)
                    fst
                      (Core.Stale_match.match_probe
                         ~target:target_b.Build.vb_target f))
                  flat
              in
              (v, prof', flat', Some rep))
          versions profiles)
  in
  let kind = Build.kind_of_shape cfg.f_shape in
  let fs_profile =
    P.Merge.weighted ~kind
      (List.map (fun (v, prof, _flat, _rep) -> (v.v_weight, prof)) routed)
  in
  let fs_flat =
    match cfg.f_shape with
    | Build.Ctx ->
        let flats =
          List.map
            (fun (v, _prof, flat, _rep) ->
              match flat with
              | Some f -> (v.v_weight, P.Text_io.Probe_prof f)
              | None -> assert false)
            routed
        in
        (match P.Merge.weighted ~kind:P.Text_io.Probe flats with
        | P.Text_io.Probe_prof pp -> Some pp
        | _ -> assert false)
    | Build.Lines | Build.Probes -> None
  in
  let inst_served = List.combine instances served in
  let per_version =
    List.map2
      (fun (v, _prof, _flat, rep) (prof0, _flat0) ->
        let stats =
          List.filter_map
            (fun ((_id, v', _block), rs) ->
              if v'.v_id = v.v_id then Some rs else None)
            inst_served
        in
        let sum f = List.fold_left (fun acc (r, _) -> acc + f r) 0 stats in
        let batches = List.concat_map snd stats in
        {
          pv_id = v.v_id;
          pv_instances = v.v_instances;
          pv_requests = sum (fun r -> r.Instance.ir_requests);
          pv_sampled = sum (fun r -> r.Instance.ir_sampled);
          pv_samples = sum (fun r -> r.Instance.ir_samples);
          pv_batches = List.length batches;
          pv_bytes =
            List.fold_left
              (fun acc (b : Instance.batch) ->
                acc + String.length b.Instance.b_blob)
              0 batches;
          pv_profile = prof0;
          pv_stale = rep;
        })
      routed profiles
  in
  let sum f = List.fold_left (fun acc pv -> acc + f pv) 0 per_version in
  let cycles =
    List.fold_left
      (fun acc (r, _) -> Int64.add acc r.Instance.ir_cycles)
      0L served
  in
  let c name v = Obs.Metrics.bump (Obs.Metrics.counter metrics name) v in
  c "fleet.instances" (List.length instances);
  c "fleet.requests" (sum (fun pv -> pv.pv_requests));
  c "fleet.sampled" (sum (fun pv -> pv.pv_sampled));
  c "fleet.samples" (sum (fun pv -> pv.pv_samples));
  c "fleet.batches" (sum (fun pv -> pv.pv_batches));
  (* One telemetry window per collection window: the cumulative snapshot
     closes both the series window and the health window. *)
  (if series <> None || health <> None then begin
     let snap = Obs.Metrics.snapshot metrics in
     Option.iter (fun s -> ignore (Obs.Series.record s snap)) series;
     Option.iter (fun h -> ignore (Obs.Health.observe h snap)) health
   end);
  {
    fs_profile;
    fs_flat;
    fs_target = target_b;
    fs_per_version = per_version;
    fs_requests = sum (fun pv -> pv.pv_requests);
    fs_sampled = sum (fun pv -> pv.pv_sampled);
    fs_samples = sum (fun pv -> pv.pv_samples);
    fs_batches = sum (fun pv -> pv.pv_batches);
    fs_bytes = sum (fun pv -> pv.pv_bytes);
    fs_cycles = cycles;
  }
