(** The release train: the continuous-profiling loop iterated over
    successive releases N → N+1 → … → N+k.

    Each generation's source drifts from its predecessor's
    ({!Csspgo_workloads.Drift}); a fleet window ({!Sim.run}) samples the
    versions still in flight (the new canary plus up to [t_skew] older
    generations, each serving its own cohort) and merges them onto the
    canary. The carried profile then folds in history: the previous
    generation's carried profile is forward-matched onto the new source and
    weighted-merged with the fresh window ([t_carry_weight] :
    [t_fresh_weight]), and the canary rebuilds through
    {!Csspgo_core.Driver.Plan.make_with_profile}. Per-generation speedup is
    measured against a no-PGO build of the same source; profile quality
    against an instrumentation-PGO truth run when [t_overlap] is set. *)

type config = {
  t_generations : int;  (** releases simulated, ≥ 1 (generation 0 first) *)
  t_edits : int;  (** drift edits applied per release *)
  t_edit_schedule : int list;
      (** per-transition override of [t_edits]: entry [g-1] is the edit
          count between generations [g-1] and [g]; missing entries fall
          back to [t_edits]. [[]] (the default) = uniform drift. A
          mid-train drift injection is one large entry — the anomaly the
          health layer's EWMA detector must flag. *)
  t_drift_seed : int64;
  t_skew : int;  (** old generations still in flight alongside the canary *)
  t_cohort : int;  (** instances per in-flight version *)
  t_carry_weight : int64;  (** weight of the forward-matched history *)
  t_fresh_weight : int64;  (** weight of the new fleet window *)
  t_overlap : bool;  (** run the instr-PGO truth build for block overlap *)
  t_fleet : Sim.config;  (** collection-window knobs (shape, duty, shards) *)
}

val default : config
(** 3 generations, 2 edits, skew 1, cohort 2, carry:fresh = 1:3,
    overlap on, {!Sim.default} window. *)

type generation = {
  g_id : int;
  g_source : string;  (** this release's (drifted) MiniC source *)
  g_fleet : Sim.outcome;  (** the collection window on this release *)
  g_carry : Csspgo_core.Stale_match.report option;
      (** forward-matching of the carried profile; [None] at generation 0 *)
  g_profile : Csspgo_profile.Text_io.profile;
      (** the carried profile the release built with *)
  g_outcome : Csspgo_core.Driver.outcome;  (** the PGO rebuild *)
  g_nopgo : Csspgo_core.Driver.eval;  (** no-PGO baseline, same source *)
  g_speedup : float;  (** no-PGO cycles / PGO cycles *)
  g_overlap : float option;  (** vs instr-PGO truth ([t_overlap] only) *)
  g_health : Csspgo_obs.Health.window_report option;
      (** this generation's health window (when [?health] was given) *)
}

val run :
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  ?series:Csspgo_obs.Series.t ->
  ?health:Csspgo_obs.Health.tracker ->
  config ->
  Csspgo_core.Driver.workload ->
  generation list
(** Generation 0 first. Deterministic for equal inputs, independent of
    [t_fleet.f_jobs].

    When [series] or [health] is given, each generation closes one
    telemetry window from the cumulative metrics snapshot (a private live
    registry is created if [metrics] was not supplied), and the health
    window carries the window-over-window
    {!Csspgo_core.Quality.profile_overlap} of consecutive fresh fleet
    profiles — generation 0 has no predecessor, so its overlap indicator
    reports no data. On a fixed-clock setup the resulting report is
    byte-identical at any [t_fleet.f_jobs]. *)
