(** Per-version build and correlation support for the fleet loop.

    Each binary version in flight gets one {!built}: the probed profiling
    binary its instances serve traffic on, plus the pre-optimization IR
    that anchors correlation names/checksums and stale matching. Once the
    collector has reassembled a version's sample log, {!correlate} runs
    the same streaming recipe as a [Driver.Plan] [Correlate] stage (range
    aggregation + missing-frame table + context-trie replay), so a
    single-version fleet at full duty produces a profile byte-identical to
    the plan pipeline's. *)

type shape = Lines | Probes | Ctx
(** The sampled profile shape: DWARF line (AutoFDO), flat pseudo-probe,
    or context trie (full CSSPGO). *)

val shape_name : shape -> string
val kind_of_shape : shape -> Csspgo_profile.Text_io.kind

val shape_of_variant : Csspgo_core.Driver.variant -> shape option
(** [None] for the unsampled variants ([Nopgo], [Instr_pgo]). *)

val variant_of_shape : shape -> Csspgo_core.Driver.variant

type built = {
  vb_source : string;
  vb_bin : Csspgo_codegen.Mach.binary;
      (** profiling build: probed for [Probes]/[Ctx], plain for [Lines] *)
  vb_target : Csspgo_ir.Program.t;
      (** pre-opt IR, probed for the probe shapes — the stale-match target
          and the name/checksum reference *)
  vb_names : string Csspgo_ir.Guid.Tbl.t;
  vb_checksums : int64 Csspgo_ir.Guid.Tbl.t;
}

val profiling_build :
  options:Csspgo_core.Driver.options -> shape:shape -> source:string -> built

val correlate :
  ?obs:Csspgo_obs.Metrics.t ->
  options:Csspgo_core.Driver.options ->
  shape:shape ->
  built ->
  Csspgo_vm.Sample_log.t ->
  Csspgo_profile.Text_io.profile * Csspgo_profile.Probe_profile.t option
(** Correlate a (merged) sample log collected on [built]'s binary. For
    [Ctx] the context trie is trimmed at [options.trim_threshold] and the
    flat (context-merged) probe profile rides along as the quality
    baseline; other shapes return [None]. *)

val correlate_chunks :
  ?obs:Csspgo_obs.Metrics.t ->
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  ?shard_target:int ->
  jobs:int ->
  options:Csspgo_core.Driver.options ->
  shape:shape ->
  built ->
  Csspgo_vm.Sample_log.t list ->
  Csspgo_profile.Text_io.profile * Csspgo_profile.Probe_profile.t option
(** Sharded {!correlate} over a decoded chunk list (the
    [Collector.drain_chunks] shape) — the concatenated log is never
    materialized. Byte-identical to [correlate] on the concatenation at
    any [jobs]: chunk grouping is a pure function of the chunk list, and
    every per-shard reduction is exact ({!Csspgo_core.Par_corr}). [obs]
    takes the correlator counters, [metrics]/[trace] the scheduler's.
    [shard_target] overrides [Par_corr.plan]'s samples-per-shard target —
    tests and oracles shrink it to force multi-shard merges on logs far
    smaller than production windows. *)

type labeled = {
  lc_slices : Csspgo_profile.Labels.t;
      (** one profile per distinct request label set, in first-appearance
          order, weighted by observed sample count; [Ctx] slices untrimmed *)
  lc_blend : Csspgo_profile.Text_io.profile;
      (** byte-identical to {!correlate}'s profile on the same log *)
  lc_flat : Csspgo_profile.Probe_profile.t option;
      (** byte-identical to {!correlate}'s flat baseline ([Ctx] only) *)
}

val correlate_labeled :
  ?obs:Csspgo_obs.Metrics.t ->
  ?jobs:int ->
  options:Csspgo_core.Driver.options ->
  shape:shape ->
  built ->
  Csspgo_vm.Sample_log.t ->
  labeled
(** Label-sliced {!correlate}: partition the log by request label set
    ({!Csspgo_vm.Sample_log.slice_by_label}), correlate every slice (on up
    to [jobs] domains — slices are independent once the full-log
    missing-frame table is built), and blend the whole stream. The
    missing-frame table comes from the {e full} log and is shared by every
    slice; line and probe blends correlate the merged range aggregate (per
    line counts are not additive at profile level); the [Ctx] blend merges
    the untrimmed slice tries at weight 1 and trims at
    [options.trim_threshold]. The blend is byte-identical to {!correlate}
    on the same log at any [jobs] (oracle family 10); an unlabeled log
    yields the single implicit empty-label slice. *)

val match_onto :
  ?obs:Csspgo_obs.Metrics.t ->
  target:Csspgo_ir.Program.t ->
  Csspgo_profile.Text_io.profile ->
  Csspgo_profile.Text_io.profile * Csspgo_core.Stale_match.report
(** Kind-dispatched stale matching — route one version's profile onto
    another version's {!built}[.vb_target] before merging. *)
