(** Pass manager: runs the optimization pipeline over a whole program.
    The pipeline mirrors a -O2 compiler: local cleanup, inlining, loop
    optimizations, if-conversion, tail merging, DCE.

    The post-inline per-function pipeline is exposed as an explicit [step]
    list so tools (notably the differential fuzzer in [Csspgo_fuzz]) can
    permute, drop, and replay passes: every ordering must preserve program
    semantics, even when it ruins optimization quality. *)

type step =
  | Constfold
  | Simplify
  | Licm
  | Unroll
  | Ifcvt
  | Tail_dup
  | Tail_merge
  | Dce

val step_name : step -> string

val all_steps : step list
(** Every step, once, in the default -O2 relative order. *)

val steps_of_config : Config.t -> step list
(** The per-function pipeline [optimize] runs for this config (empty at
    -O0; includes the repeated cleanup steps at -O2). *)

val run_step : config:Config.t -> step -> Csspgo_ir.Func.t -> bool
(** Run one step unconditionally — the step list, not the config's
    [enable_*] flags, decides what runs. Returns true if the IR changed. *)

val optimize_func : config:Config.t -> Csspgo_ir.Func.t -> unit
(** The per-function (post-inline) part of the pipeline. *)

val optimize_func_with :
  config:Config.t ->
  steps:step list ->
  ?program:Csspgo_ir.Program.t ->
  Csspgo_ir.Func.t ->
  unit
(** Like [optimize_func] with an explicit step list. When [program] is
    given and [verify_between_passes] is set, the function is re-verified
    after every step and [Failure] raised on the first broken invariant. *)

val prepare : config:Config.t -> Csspgo_ir.Program.t -> bool
(** The program-level prefix of [optimize]: initial simplify, early
    cleanup, inlining and dead-function elimination (with inter-phase
    verification). After [prepare] the rest of the pipeline is purely
    per-function ([optimize_func_with]), so callers that cache compiled
    functions (the incremental rebuild engine in [Core.Driver]) can run
    [prepare] and then choose per function between replaying the step
    list and splicing in a cached body. Returns [true] when the
    per-function pipeline should run (i.e. [opt_level >= 1]). *)

val optimize : config:Config.t -> Csspgo_ir.Program.t -> unit
(** Full pipeline, including inlining and dead-function elimination.
    Raises [Failure] if [verify_between_passes] is set and a pass breaks
    the IR. *)

val optimize_with : config:Config.t -> steps:step list -> Csspgo_ir.Program.t -> unit
(** [optimize] with an explicit post-inline step list. *)
