module Ir = Csspgo_ir

let src = Logs.Src.create "csspgo.opt" ~doc:"optimization pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

(* The post-inline per-function pipeline is data, not control flow: a list
   of steps that can be inspected, reordered and resampled (the fuzzing
   harness permutes it to hunt for pass-ordering bugs). *)
type step =
  | Constfold
  | Simplify
  | Licm
  | Unroll
  | Ifcvt
  | Tail_dup
  | Tail_merge
  | Dce

let step_name = function
  | Constfold -> "constfold"
  | Simplify -> "simplify"
  | Licm -> "licm"
  | Unroll -> "unroll"
  | Ifcvt -> "ifcvt"
  | Tail_dup -> "tail-dup"
  | Tail_merge -> "tail-merge"
  | Dce -> "dce"

let all_steps = [ Constfold; Simplify; Licm; Unroll; Ifcvt; Tail_dup; Tail_merge; Dce ]

let run_step ~(config : Config.t) step (f : Ir.Func.t) =
  match step with
  | Constfold -> Constfold.run f
  | Simplify -> Simplify.run ~config f
  | Licm -> Licm.run f
  | Unroll -> Unroll.run ~config f
  | Ifcvt -> Ifcvt.run ~config f
  | Tail_dup -> Tail_dup.run ~config f
  | Tail_merge -> Tail_merge.run f
  | Dce -> Dce.run f

let steps_of_config (config : Config.t) =
  if config.Config.opt_level < 1 then []
  else if config.Config.opt_level = 1 then [ Constfold; Simplify ]
  else
    [ Constfold; Simplify ]
    @ (if config.Config.enable_licm then [ Licm ] else [])
    @ (if config.Config.enable_unroll then [ Unroll ] else [])
    (* If-conversion before tail duplication: duplicating a join block into
       the arms destroys the diamond pattern (profitability, not safety —
       any order must stay semantics-preserving). *)
    @ (if config.Config.enable_ifcvt then [ Ifcvt ] else [])
    @ (if config.Config.enable_tail_dup then [ Tail_dup ] else [])
    @ [ Constfold; Simplify ]
    @ (if config.Config.enable_tail_merge then [ Tail_merge ] else [])
    @ [ Dce; Simplify ]

let verify_if ~(config : Config.t) p stage =
  if config.Config.verify_between_passes then
    match Ir.Verify.program p with
    | [] -> ()
    | errs ->
        let msg =
          Format.asprintf "@[<v>after %s:@ %a@]" stage
            (Format.pp_print_list Ir.Verify.pp_error)
            errs
        in
        failwith msg

let verify_func_if ~(config : Config.t) p f stage =
  if config.Config.verify_between_passes then
    match Ir.Verify.func ~program:p f with
    | [] -> ()
    | errs ->
        let msg =
          Format.asprintf "@[<v>after %s in %s:@ %a@]" stage f.Ir.Func.name
            (Format.pp_print_list Ir.Verify.pp_error)
            errs
        in
        failwith msg

let optimize_func_with ~(config : Config.t) ~steps ?(program : Ir.Program.t option)
    (f : Ir.Func.t) =
  List.iter
    (fun step ->
      ignore (run_step ~config step f);
      match program with
      | Some p -> verify_func_if ~config p f (step_name step)
      | None -> ())
    steps;
  (* Passes maintain counts only approximately; re-infer a consistent
     profile for codegen (edge flows re-derived from block counts). *)
  if config.Config.opt_level >= 2 && f.Ir.Func.annotated then
    Csspgo_inference.Infer.infer_func f

let optimize_func ~(config : Config.t) (f : Ir.Func.t) =
  optimize_func_with ~config ~steps:(steps_of_config config) f

(* The program-level prefix of the pipeline: cleanup and cross-function
   phases (inlining, dead-function drop) that must see the whole program.
   After [prepare] the remaining work is purely per-function, which is
   what lets the incremental rebuild engine in [Core.Driver] swap in
   cached post-pipeline bodies for functions whose annotated image did
   not drift. Returns [true] when the per-function pipeline should run. *)
let prepare ~(config : Config.t) (p : Ir.Program.t) =
  (* Even at -O0 the lowering junk blocks must go. *)
  Ir.Program.iter_funcs (fun f -> ignore (Simplify.run ~config f)) p;
  verify_if ~config p "initial simplify";
  if config.Config.opt_level < 1 then false
  else begin
    Ir.Program.iter_funcs
      (fun f ->
        ignore (Constfold.run f);
        ignore (Simplify.run ~config f))
      p;
    verify_if ~config p "early cleanup";
    if Inline.run ~config p then begin
      let dropped = Inline.drop_dead_functions p in
      if dropped <> [] then
        Log.debug (fun m -> m "dropped %d fully-inlined functions" (List.length dropped))
    end;
    verify_if ~config p "inlining";
    true
  end

let optimize_with ~(config : Config.t) ~steps (p : Ir.Program.t) =
  if prepare ~config p then begin
    Ir.Program.iter_funcs (fun f -> optimize_func_with ~config ~steps ~program:p f) p;
    verify_if ~config p "function pipeline"
  end

let optimize ~(config : Config.t) (p : Ir.Program.t) =
  optimize_with ~config ~steps:(steps_of_config config) p
