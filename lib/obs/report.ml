type variant_row = {
  vr_variant : string;
  vr_eval_cycles : int64;
  vr_eval_instructions : int64;
  vr_profiling_cycles : int64;
  vr_text_size : int;
  vr_profile_size : int;
  vr_overlap : float option;
  vr_stale_funcs : int;
}

type t = {
  rp_workload : string;
  rp_rows : variant_row list;
  rp_metrics : Metrics.snapshot;
}

(* --- JSON ----------------------------------------------------------- *)

let hist_json (h : Metrics.hist_summary) =
  Json.Obj
    [
      ("count", Json.Int h.Metrics.h_count);
      ("sum", Json.Int h.Metrics.h_sum);
      ( "buckets",
        Json.List
          (List.map
             (fun (b, n) ->
               Json.Obj [ ("ge", Json.Int (Metrics.bucket_lo b)); ("count", Json.Int n) ])
             h.Metrics.h_nonzero) );
    ]

let metrics_to_json (s : Metrics.snapshot) =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.Metrics.s_counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.Metrics.s_gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) s.Metrics.s_histograms) );
    ]

let row_json r =
  Json.Obj
    [
      ("variant", Json.String r.vr_variant);
      ("eval_cycles", Json.Int (Int64.to_int r.vr_eval_cycles));
      ("eval_instructions", Json.Int (Int64.to_int r.vr_eval_instructions));
      ("profiling_cycles", Json.Int (Int64.to_int r.vr_profiling_cycles));
      ("text_size", Json.Int r.vr_text_size);
      ("profile_size", Json.Int r.vr_profile_size);
      ( "block_overlap",
        match r.vr_overlap with Some f -> Json.Float f | None -> Json.Null );
      ("stale_funcs", Json.Int r.vr_stale_funcs);
    ]

let to_json r =
  Json.Obj
    [
      ("workload", Json.String r.rp_workload);
      ("variants", Json.List (List.map row_json r.rp_rows));
      ("metrics", metrics_to_json r.rp_metrics);
    ]

(* --- text ----------------------------------------------------------- *)

let metrics_to_text (s : Metrics.snapshot) =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if s.Metrics.s_counters <> [] then begin
    pf "counters:\n";
    List.iter (fun (k, v) -> pf "  %-34s %12d\n" k v) s.Metrics.s_counters
  end;
  if s.Metrics.s_gauges <> [] then begin
    pf "gauges (max):\n";
    List.iter (fun (k, v) -> pf "  %-34s %12d\n" k v) s.Metrics.s_gauges
  end;
  if s.Metrics.s_histograms <> [] then begin
    pf "histograms:\n";
    List.iter
      (fun (k, h) ->
        pf "  %-34s count=%d sum=%d\n" k h.Metrics.h_count h.Metrics.h_sum;
        List.iter
          (fun (b, n) -> pf "    >= %-10d %12d\n" (Metrics.bucket_lo b) n)
          h.Metrics.h_nonzero)
      s.Metrics.s_histograms
  end;
  Buffer.contents buf

let to_text r =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "workload: %s\n\n" r.rp_workload;
  pf "%-18s %12s %12s %10s %10s %9s %6s\n" "variant" "eval-cycles" "prof-cycles"
    "text-B" "profile-B" "overlap" "stale";
  List.iter
    (fun row ->
      pf "%-18s %12Ld %12Ld %10d %10d %9s %6d\n" row.vr_variant row.vr_eval_cycles
        row.vr_profiling_cycles row.vr_text_size row.vr_profile_size
        (match row.vr_overlap with
        | Some f -> Printf.sprintf "%6.1f%%" (f *. 100.0)
        | None -> "n/a")
        row.vr_stale_funcs)
    r.rp_rows;
  let m = metrics_to_text r.rp_metrics in
  if m <> "" then begin
    pf "\n";
    Buffer.add_string buf m
  end;
  Buffer.contents buf
