(** Span tracing exported as Chrome trace-event JSON (loadable in
    [chrome://tracing] and Perfetto).

    A trace is a set of {e tracks}; each track is a logical timeline with
    its own {!Clock.cursor} and is owned by exactly one executor at a time
    — the orchestrator gives every plan its own track (tid = plan index),
    so begin/end nesting and tick order inside a track never depend on the
    domain schedule. Track creation and export are mutex-protected; event
    emission on a track is unsynchronized by design (single owner).

    Determinism: with a {!Clock.fixed} clock, exported bytes are a pure
    function of the per-track event sequences — tracks are sorted by
    [(tid, name)], per-track timestamps come from the track's private
    cursor, and the JSON printer is canonical. The same plan set therefore
    exports byte-identical traces at [-j 1/2/4]. Wall-clock traces add
    per-domain scheduler tracks and real timestamps, and make no
    reproducibility claim. *)

type t

val create : ?clock:Clock.t -> unit -> t
(** Default clock: {!Clock.wall}. *)

val deterministic : t -> bool
(** True iff the trace runs on a fixed clock. Instrumentation that is
    inherently schedule-dependent (per-domain scheduler spans) must check
    this and stay silent on deterministic traces. *)

type track

val track : t -> tid:int -> name:string -> track
(** Register a new track. [tid] becomes the Chrome thread id; [name] the
    thread name. Callers pick stable tids (plan index) for deterministic
    traces. *)

val begin_span : track -> string -> unit
val end_span : track -> string -> unit
val instant : track -> string -> unit

val with_span : track -> string -> (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around [f], ending the span on exceptions. *)

val n_events : t -> int

val to_json : t -> Json.t

val to_chrome_json : t -> string
(** The trace-event JSON object ([{"traceEvents": [...]}]); each track
    contributes a thread_name metadata record followed by its events in
    emission order. Export after the traced work completes. *)
