(* Handles are Noop for the null registry, so a disabled pipeline pays one
   pattern match per bump and allocates nothing. Live handles shard over
   [Domain.self () land (shards - 1)]; shard counts are powers of two, and
   [Atomic.fetch_and_add] keeps colliding domains from losing updates. *)

type counter = C_noop | C_live of int Atomic.t array
type gauge = G_noop | G_live of int Atomic.t array

let n_buckets = 64

type hist_shards = {
  h_buckets : int Atomic.t array array;  (* shard -> log2 bucket counts *)
  hs_count : int Atomic.t array;
  hs_sum : int Atomic.t array;
}

type histogram = H_noop | H_live of hist_shards

type t = {
  m_live : bool;
  m_shards : int;
  m_lock : Mutex.t;
  m_counters : (string, counter) Hashtbl.t;
  m_gauges : (string, gauge) Hashtbl.t;
  m_hists : (string, histogram) Hashtbl.t;
}

let null =
  {
    m_live = false;
    m_shards = 1;
    m_lock = Mutex.create ();
    m_counters = Hashtbl.create 1;
    m_gauges = Hashtbl.create 1;
    m_hists = Hashtbl.create 1;
  }

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?shards () =
  let shards =
    match shards with
    | Some s -> next_pow2 (max 1 s)
    | None -> next_pow2 (max 8 (Domain.recommended_domain_count ()))
  in
  {
    m_live = true;
    m_shards = shards;
    m_lock = Mutex.create ();
    m_counters = Hashtbl.create 32;
    m_gauges = Hashtbl.create 16;
    m_hists = Hashtbl.create 16;
  }

let enabled t = t.m_live

let locked t f =
  Mutex.lock t.m_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m_lock) f

let atomic_array n = Array.init n (fun _ -> Atomic.make 0)

let register t tbl name make =
  if not t.m_live then None
  else
    locked t (fun () ->
        match Hashtbl.find_opt tbl name with
        | Some h -> Some h
        | None ->
            let h = make () in
            Hashtbl.replace tbl name h;
            Some h)

let counter t name =
  match
    register t t.m_counters name (fun () -> C_live (atomic_array t.m_shards))
  with
  | Some c -> c
  | None -> C_noop

let gauge t name =
  match register t t.m_gauges name (fun () -> G_live (atomic_array t.m_shards)) with
  | Some g -> g
  | None -> G_noop

let histogram t name =
  match
    register t t.m_hists name (fun () ->
        H_live
          {
            h_buckets = Array.init t.m_shards (fun _ -> atomic_array n_buckets);
            hs_count = atomic_array t.m_shards;
            hs_sum = atomic_array t.m_shards;
          })
  with
  | Some h -> h
  | None -> H_noop

let shard_of slots = (Domain.self () :> int) land (Array.length slots - 1)

let bump c n =
  match c with
  | C_noop -> ()
  | C_live slots -> ignore (Atomic.fetch_and_add slots.(shard_of slots) n)

let incr c = bump c 1

let rec max_update a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then max_update a v

(* Negative observations clamp to the resting value 0: a max-gauge's
   shards rest at 0, so merging could never surface a negative value
   anyway — clamping keeps the contract explicit instead of accidental. *)
let observe_gauge g v =
  match g with
  | G_noop -> ()
  | G_live slots -> if v > 0 then max_update slots.(shard_of slots) v

(* Bucket 0 holds v <= 0; bucket k >= 1 holds 2^(k-1) <= v < 2^k. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec log2 v i = if v <= 1 then i else log2 (v lsr 1) (i + 1) in
    min (n_buckets - 1) (1 + log2 v 0)
  end

let bucket_lo = function 0 -> 0 | k -> 1 lsl (k - 1)

let observe_n h v n =
  match h with
  | H_noop -> ()
  | H_live hs ->
      let s = shard_of hs.hs_count in
      ignore (Atomic.fetch_and_add hs.h_buckets.(s).(bucket_of v) n);
      ignore (Atomic.fetch_and_add hs.hs_count.(s) n);
      ignore (Atomic.fetch_and_add hs.hs_sum.(s) (v * n))

let observe h v = observe_n h v 1

(* --- snapshots ------------------------------------------------------ *)

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_nonzero : (int * int) list;  (* (bucket index, count), ascending *)
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_histograms : (string * hist_summary) list;
}

let sum_shards slots = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 slots
let max_shards slots = Array.fold_left (fun acc a -> max acc (Atomic.get a)) 0 slots

let snapshot t =
  locked t (fun () ->
      let counters =
        Hashtbl.fold
          (fun name c acc ->
            match c with
            | C_noop -> acc
            | C_live slots -> (name, sum_shards slots) :: acc)
          t.m_counters []
        |> List.sort compare
      in
      let gauges =
        Hashtbl.fold
          (fun name g acc ->
            match g with
            | G_noop -> acc
            | G_live slots -> (name, max_shards slots) :: acc)
          t.m_gauges []
        |> List.sort compare
      in
      let hists =
        Hashtbl.fold
          (fun name h acc ->
            match h with
            | H_noop -> acc
            | H_live hs ->
                let nonzero = ref [] in
                for b = n_buckets - 1 downto 0 do
                  let n =
                    Array.fold_left
                      (fun acc shard -> acc + Atomic.get shard.(b))
                      0 hs.h_buckets
                  in
                  if n > 0 then nonzero := (b, n) :: !nonzero
                done;
                ( name,
                  {
                    h_count = sum_shards hs.hs_count;
                    h_sum = sum_shards hs.hs_sum;
                    h_nonzero = !nonzero;
                  } )
                :: acc)
          t.m_hists []
        |> List.sort compare
      in
      { s_counters = counters; s_gauges = gauges; s_histograms = hists })

let find_counter snap name = List.assoc_opt name snap.s_counters
let find_gauge snap name = List.assoc_opt name snap.s_gauges
let find_histogram snap name = List.assoc_opt name snap.s_histograms
