let metric_name ?(prefix = "csspgo_") name =
  let buf = Buffer.create (String.length prefix + String.length name) in
  Buffer.add_string buf prefix;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let add_family buf name kind = Printf.bprintf buf "# TYPE %s %s\n" name kind

let snapshot ?prefix (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let m = metric_name ?prefix name in
      add_family buf m "counter";
      Printf.bprintf buf "%s_total %d\n" m v)
    snap.Metrics.s_counters;
  List.iter
    (fun (name, v) ->
      let m = metric_name ?prefix name in
      add_family buf m "gauge";
      Printf.bprintf buf "%s %d\n" m v)
    snap.Metrics.s_gauges;
  List.iter
    (fun (name, (h : Metrics.hist_summary)) ->
      let m = metric_name ?prefix name in
      add_family buf m "histogram";
      (* Cumulative counts at each bucket's inclusive upper bound. A log2
         bucket k >= 1 holds [2^(k-1), 2^k), so its bound is 2^k - 1;
         bucket 0 holds v <= 0. *)
      let cum = ref 0 in
      List.iter
        (fun (b, n) ->
          cum := !cum + n;
          let le =
            if b = 0 then "0"
            else if b >= 62 then "+Inf"
            else string_of_int ((1 lsl b) - 1)
          in
          if le <> "+Inf" then
            Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" m le !cum)
        h.Metrics.h_nonzero;
      Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" m h.Metrics.h_count;
      Printf.bprintf buf "%s_sum %d\n" m h.Metrics.h_sum;
      Printf.bprintf buf "%s_count %d\n" m h.Metrics.h_count)
    snap.Metrics.s_histograms;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let timestamp us = Printf.sprintf "%.6f" (Int64.to_float us /. 1e6)

let series ?prefix s =
  let ws = Series.windows s in
  (* Re-accumulate per-window deltas into cumulative counter samples and
     collect gauge readings, keyed by name so families group together. *)
  let counters = Hashtbl.create 32 and gauges = Hashtbl.create 8 in
  let totals = Hashtbl.create 32 in
  let names = ref [] in
  let push tbl name sample =
    (if not (Hashtbl.mem counters name || Hashtbl.mem gauges name) then
       names := name :: !names);
    let prev = try Hashtbl.find tbl name with Not_found -> [] in
    Hashtbl.replace tbl name (sample :: prev)
  in
  List.iter
    (fun (w : Series.window) ->
      List.iter
        (fun (name, d) ->
          let cum = (try Hashtbl.find totals name with Not_found -> 0) + d in
          Hashtbl.replace totals name cum;
          push counters name (w.Series.w_at_us, cum))
        w.Series.w_counters;
      List.iter
        (fun (name, v) -> push gauges name (w.Series.w_at_us, v))
        w.Series.w_gauges)
    ws;
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      let m = metric_name ?prefix name in
      match Hashtbl.find_opt counters name with
      | Some samples ->
          add_family buf m "counter";
          List.iter
            (fun (at, v) ->
              Printf.bprintf buf "%s_total %d %s\n" m v (timestamp at))
            (List.rev samples)
      | None ->
          let samples = Hashtbl.find gauges name in
          add_family buf m "gauge";
          List.iter
            (fun (at, v) -> Printf.bprintf buf "%s %d %s\n" m v (timestamp at))
            (List.rev samples))
    (List.sort compare !names);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
