type t =
  | Wall of { epoch : float }
  | Fixed of { step : int64 }

let wall () = Wall { epoch = Unix.gettimeofday () }
let fixed ?(step = 1L) () = Fixed { step }
let is_fixed = function Fixed _ -> true | Wall _ -> false

type cursor =
  | C_wall of { c_epoch : float }
  | C_fixed of { c_step : int64; mutable c_ticks : int64 }

let cursor = function
  | Wall { epoch } -> C_wall { c_epoch = epoch }
  | Fixed { step } -> C_fixed { c_step = step; c_ticks = 0L }

let now_us = function
  | C_wall { c_epoch } -> Int64.of_float ((Unix.gettimeofday () -. c_epoch) *. 1e6)
  | C_fixed c ->
      let t = c.c_ticks in
      c.c_ticks <- Int64.add t 1L;
      Int64.mul t c.c_step
