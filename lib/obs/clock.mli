(** The telemetry time source: wall-clock for real profiling sessions,
    a deterministic virtual clock for tests and byte-reproducible traces.

    A {!t} is a timebase shared by a whole trace; each trace track derives
    its own {!cursor} from it. Wall cursors read [Unix.gettimeofday]
    relative to the timebase epoch. Fixed cursors are pure tick counters:
    the k-th read returns [k * step] microseconds, independently of real
    time, scheduling, or machine — two runs that issue the same reads per
    cursor observe identical timestamps. Cursors are single-owner (one
    track, one domain) and need no synchronization. *)

type t

val wall : unit -> t
(** Wall-clock timebase; the epoch is captured at creation so all cursors
    share one origin. *)

val fixed : ?step:int64 -> unit -> t
(** Deterministic timebase: every cursor ticks [0, step, 2*step, ...]
    microseconds (default [step = 1L]). *)

val is_fixed : t -> bool

type cursor

val cursor : t -> cursor
(** A fresh tick source on this timebase (fixed cursors start at 0). *)

val now_us : cursor -> int64
(** Next timestamp in microseconds. Advances fixed cursors by one tick. *)
