(** Profile-health scoring: per-window indicators derived from the
    counters the pipeline already emits, each scored against thresholds
    into ok/warn/crit, plus an EWMA-baseline anomaly detector that turns
    window-over-window regressions into typed alerts.

    The indicators (all ratios in [0, 1], computed from the snapshot
    delta of the window):

    - [collector.drop-rate]: [collector.dropped-blobs / collector.batches]
      — shipped batches lost to corruption (high is bad);
    - [corr.hit-rate]: matched fraction of correlation work, pooled over
      the probe ([probe-corr.ranges] vs [ranges-unmatched]) and DWARF
      ([dwarf-corr.addrs] vs [addrs-unmapped]) paths (low is bad);
    - [ctx.inferred-share]: [ctx.inferred-frames / ctx.samples] — how much
      of the context reconstruction rests on inferred missing frames
      rather than observed stacks (high is bad);
    - [stale.recovery]: [stale.counts-recovered / (recovered + dropped)]
      — the count-conservation split of stale matching (low is bad);
    - [profile.overlap]: the window-over-window profile overlap handed in
      by the caller (this leaf library holds no profile types; the fleet
      computes it via [Quality.profile_overlap]) (low is bad).

    An indicator with no data this window (zero denominator, or no
    [?overlap]) reports [None] and scores [Ok].

    The anomaly detector keeps one EWMA baseline per indicator. A window
    whose value deviates from the baseline by more than [band] in the
    indicator's bad direction {e and} scores worse than [Ok] raises one
    {!alert} carrying the scored level; the baseline then absorbs the new
    value, so a persistent plateau alerts once at the transition, not
    every window — the drift-injection signature the bench asserts on.
    Alerts are also emitted as instants on an optional trace track.

    Reports render as canonical JSON (byte-stable, reparseable) and
    human-readable text. Like snapshots and series, everything here is a
    pure function of the observed windows, so fixed-clock fleet runs
    produce byte-identical reports at any [-j]. *)

type level = Ok | Warn | Crit

val level_name : level -> string
(** ["ok"], ["warn"], ["crit"]. *)

val worst : level -> level -> level

type thresholds = {
  th_drop_rate : float * float;  (** (warn, crit): bad at or above *)
  th_hit_rate : float * float;  (** (warn, crit): bad at or below *)
  th_inferred_share : float * float;  (** (warn, crit): bad at or above *)
  th_recovery : float * float;  (** (warn, crit): bad at or below *)
  th_overlap : float * float;  (** (warn, crit): bad at or below *)
}

val default_thresholds : thresholds
(** drop-rate 0.01/0.05, hit-rate 0.95/0.80, inferred-share 0.30/0.60,
    recovery 0.80/0.50, overlap 0.95/0.90. *)

type indicator = {
  in_name : string;
  in_value : float option;  (** [None] = no data this window *)
  in_level : level;
  in_detail : string;  (** the numerator/denominator behind the ratio *)
}

type alert = {
  al_window : int;
  al_indicator : string;
  al_level : level;  (** [Warn] or [Crit] *)
  al_value : float;
  al_baseline : float;  (** the EWMA the value regressed from *)
}

type window_report = {
  wr_index : int;
  wr_indicators : indicator list;  (** fixed order, as listed above *)
  wr_level : level;  (** worst indicator level *)
  wr_alerts : alert list;
}

type report = {
  hp_windows : window_report list;  (** ascending index *)
  hp_alerts : alert list;  (** all alerts, window order *)
  hp_level : level;  (** worst window level *)
}

type tracker

val create :
  ?thresholds:thresholds ->
  ?alpha:float ->
  ?band:float ->
  ?track:Trace.track ->
  unit ->
  tracker
(** [alpha] (default 0.3) is the EWMA smoothing factor; [band] (default
    0.1) the deviation that counts as a regression. Each alert emits a
    [health.<level>:<indicator>] instant on [track] when given. *)

val observe : ?overlap:float -> tracker -> Metrics.snapshot -> window_report
(** Close one health window from the cumulative snapshot (delta'd against
    the previous observation, like {!Series.record}). *)

val report : tracker -> report

val report_to_json : report -> Json.t
(** Canonical; reparses under {!Json.parse_exn}. *)

val report_to_text : report -> string
