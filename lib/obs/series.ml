type window = {
  w_index : int;
  w_at_us : int64;
  w_dur_us : int64;
  w_counters : (string * int) list;
  w_gauges : (string * int) list;
}

type t = {
  retain : int;
  drop_prefixes : string list;
  cursor : Clock.cursor option;
  mutable prev : Metrics.snapshot option;  (* last cumulative snapshot *)
  mutable prev_at : int64;
  mutable newest_first : window list;  (* ring: at most [retain] entries *)
  mutable total : int;
  mutable evicted : int;
}

let create ?(retain = 64) ?(drop_prefixes = [ "sched." ]) ?clock () =
  let clock = match clock with Some c -> c | None -> Clock.fixed () in
  {
    retain = max 1 retain;
    drop_prefixes;
    cursor = Some (Clock.cursor clock);
    prev = None;
    prev_at = 0L;
    newest_first = [];
    total = 0;
    evicted = 0;
  }

let dropped t name =
  List.exists
    (fun p ->
      String.length name >= String.length p
      && String.equal (String.sub name 0 (String.length p)) p)
    t.drop_prefixes

(* Merge-walk two name-sorted cumulative counter lists into per-window
   deltas; names absent on the previous side count from zero. *)
let delta_counters prev cur =
  let rec go prev cur acc =
    match (prev, cur) with
    | _, [] -> List.rev acc
    | [], (n, v) :: cur -> go [] cur (if v <> 0 then (n, v) :: acc else acc)
    | (pn, pv) :: ptl, (n, v) :: ctl ->
        let c = compare pn n in
        if c < 0 then go ptl cur acc (* instrument disappeared: ignore *)
        else if c > 0 then go prev ctl (if v <> 0 then (n, v) :: acc else acc)
        else
          let d = v - pv in
          go ptl ctl (if d <> 0 then (n, d) :: acc else acc)
  in
  go prev cur []

let hist_counters (snap : Metrics.snapshot) =
  List.concat_map
    (fun (name, (h : Metrics.hist_summary)) ->
      [ (name ^ "/count", h.Metrics.h_count); (name ^ "/sum", h.Metrics.h_sum) ])
    snap.Metrics.s_histograms

let cumulative_counters t (snap : Metrics.snapshot) =
  List.filter
    (fun (n, _) -> not (dropped t n))
    (List.sort compare (snap.Metrics.s_counters @ hist_counters snap))

let push t w =
  let rec keep i = function
    | [] -> ([], 0)
    | rest when i >= t.retain -> ([], List.length rest)
    | x :: tl ->
        let kept, dropped = keep (i + 1) tl in
        (x :: kept, dropped)
  in
  let kept, dropped = keep 0 (w :: t.newest_first) in
  t.newest_first <- kept;
  t.total <- t.total + 1;
  t.evicted <- t.evicted + dropped

let record t (snap : Metrics.snapshot) =
  let at =
    match t.cursor with Some c -> Clock.now_us c | None -> Int64.of_int t.total
  in
  let prev_counters =
    match t.prev with None -> [] | Some p -> cumulative_counters t p
  in
  let counters = delta_counters prev_counters (cumulative_counters t snap) in
  let gauges =
    List.filter (fun (n, _) -> not (dropped t n)) snap.Metrics.s_gauges
  in
  let dur = if t.prev = None then 0L else Int64.sub at t.prev_at in
  let w =
    {
      w_index = t.total;
      w_at_us = at;
      w_dur_us = (if Int64.compare dur 0L > 0 then dur else 0L);
      w_counters = counters;
      w_gauges = gauges;
    }
  in
  t.prev <- Some snap;
  t.prev_at <- at;
  push t w;
  w

let windows t = List.rev t.newest_first
let total t = t.total
let evicted t = t.evicted

let rate w name =
  match List.assoc_opt name w.w_counters with
  | None -> None
  | Some d ->
      if Int64.compare w.w_dur_us 0L > 0 then
        Some (float_of_int d *. 1e6 /. Int64.to_float w.w_dur_us)
      else None

(* Union of two name-sorted assoc lists under a binary op (sum or max);
   names on one side only pass through. *)
let union_assoc op a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (an, av) :: atl, (bn, bv) :: btl ->
        let c = compare an bn in
        if c < 0 then go atl b ((an, av) :: acc)
        else if c > 0 then go a btl ((bn, bv) :: acc)
        else go atl btl ((an, op av bv) :: acc)
  in
  go a b []

let merge_window a b =
  {
    w_index = a.w_index;
    w_at_us = (if Int64.compare a.w_at_us b.w_at_us >= 0 then a.w_at_us else b.w_at_us);
    w_dur_us =
      (if Int64.compare a.w_dur_us b.w_dur_us >= 0 then a.w_dur_us else b.w_dur_us);
    w_counters = union_assoc ( + ) a.w_counters b.w_counters;
    w_gauges = union_assoc max a.w_gauges b.w_gauges;
  }

let merge a b =
  let retain = max a.retain b.retain in
  (* Union by ascending index, then re-apply retention from the tail. *)
  let rec go xs ys acc =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xtl, y :: ytl ->
        if x.w_index < y.w_index then go xtl ys (x :: acc)
        else if x.w_index > y.w_index then go xs ytl (y :: acc)
        else go xtl ytl (merge_window x y :: acc)
  in
  let union = go (windows a) (windows b) [] in
  let n = List.length union in
  let drop = max 0 (n - retain) in
  let rec skip k = function tl when k = 0 -> tl | _ :: tl -> skip (k - 1) tl | [] -> [] in
  let kept = skip drop union in
  let total = max a.total b.total in
  {
    retain;
    drop_prefixes = a.drop_prefixes;
    cursor = None;
    prev = None;
    prev_at = 0L;
    newest_first = List.rev kept;
    total;
    (* Derived from the ring invariant (evicted = total - kept), which
       keeps merge associative: counting merge-time drops on top of a
       max would tally them differently per association order. *)
    evicted = total - List.length kept;
  }

let assoc_json ints = Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) ints)

let window_to_json w =
  Json.Obj
    [
      ("index", Json.Int w.w_index);
      ("at_us", Json.Int (Int64.to_int w.w_at_us));
      ("dur_us", Json.Int (Int64.to_int w.w_dur_us));
      ("counters", assoc_json w.w_counters);
      ("gauges", assoc_json w.w_gauges);
    ]

let to_json t =
  Json.Obj
    [
      ("windows", Json.List (List.map window_to_json (windows t)));
      ("total", Json.Int (total t));
      ("evicted", Json.Int (evicted t));
    ]
