type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats print with a decimal point (or exponent) so they parse back as
   floats; non-finite values have no JSON spelling and become null. *)
let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then add_float buf f else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail !pos "invalid \\u escape"
    in
    let v = ref 0 in
    for i = 0 to 3 do
      v := (!v lsl 4) lor digit s.[!pos + i]
    done;
    pos := !pos + 4;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               let start = !pos - 2 in
               let cp = hex4 () in
               (* Surrogates must come as a high/low pair encoding one
                  supplementary code point; anything lone is an error, not
                  raw bytes. *)
               let cp =
                 if cp >= 0xd800 && cp <= 0xdbff then begin
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo >= 0xdc00 && lo <= 0xdfff then
                       0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                     else fail start "unpaired \\u surrogate"
                   end
                   else fail start "unpaired \\u surrogate"
                 end
                 else if cp >= 0xdc00 && cp <= 0xdfff then
                   fail start "lone low \\u surrogate"
                 else cp
               in
               (* UTF-8 encode the code point. *)
               if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
               else if cp < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
               end
               else if cp < 0x10000 then begin
                 Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
               end
           | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some v -> Int v
    | None -> (
        match float_of_string_opt tok with
        (* Overlong numbers (exponents or digit runs past the double
           range) overflow to infinity, which has no JSON spelling and
           would break canonical reprinting — reject, never round-trip
           silently through null. *)
        | Some f when Float.is_finite f -> Float f
        | Some _ -> fail start ("number out of range " ^ tok)
        | None -> fail start ("invalid number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                go ()
            | Some ']' -> advance ()
            | _ -> fail !pos "expected , or ]"
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                go ()
            | Some '}' -> advance ()
            | _ -> fail !pos "expected , or }"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function List xs -> Some xs | _ -> None
