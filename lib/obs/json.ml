type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats print with a decimal point (or exponent) so they parse back as
   floats; non-finite values have no JSON spelling and become null. *)
let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then add_float buf f else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail (!pos - 4) "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               let cp = hex4 () in
               (* UTF-8 encode the BMP code point (surrogates kept raw). *)
               if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
               else if cp < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
               end
           | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some v -> Int v
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail start ("invalid number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                go ()
            | Some ']' -> advance ()
            | _ -> fail !pos "expected , or ]"
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                go ()
            | Some '}' -> advance ()
            | _ -> fail !pos "expected , or }"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function List xs -> Some xs | _ -> None
