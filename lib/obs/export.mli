(** OpenMetrics/Prometheus text exposition for snapshots and series, so a
    live fleet can be scraped by stock monitoring instead of a bespoke
    JSON consumer.

    Instrument names are sanitized into the OpenMetrics grammar (every
    character outside [[a-zA-Z0-9_:]] becomes [_]; histogram-derived
    series names gain the standard [_total]/[_bucket]/[_sum]/[_count]
    suffixes) and prefixed (default ["csspgo_"]). Counters expose as
    cumulative [counter] families, max-gauges as [gauge], and log2-bucket
    histograms as cumulative [histogram] families whose [le] bounds are
    the buckets' inclusive upper bounds ([2^k - 1], [+Inf] last).

    Families are emitted in sorted name order and the exposition ends
    with the [# EOF] terminator, so equal snapshots render byte-identically
    — the exporter determinism contract matches {!Json}'s. *)

val metric_name : ?prefix:string -> string -> string
(** Sanitized exposition name: [prefix] (default ["csspgo_"]) + the
    instrument name with every non-[[a-zA-Z0-9_:]] byte replaced by [_]. *)

val snapshot : ?prefix:string -> Metrics.snapshot -> string
(** One-point exposition of a cumulative snapshot. *)

val series : ?prefix:string -> Series.t -> string
(** Exposition of a windowed series: counters re-accumulate across the
    retained windows into cumulative samples, one timestamped point per
    window ([w_at_us] in seconds); gauges expose each window's reading. *)
