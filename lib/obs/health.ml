type level = Ok | Warn | Crit

let level_name = function Ok -> "ok" | Warn -> "warn" | Crit -> "crit"
let rank = function Ok -> 0 | Warn -> 1 | Crit -> 2
let worst a b = if rank a >= rank b then a else b

type thresholds = {
  th_drop_rate : float * float;
  th_hit_rate : float * float;
  th_inferred_share : float * float;
  th_recovery : float * float;
  th_overlap : float * float;
}

let default_thresholds =
  {
    th_drop_rate = (0.01, 0.05);
    th_hit_rate = (0.95, 0.80);
    th_inferred_share = (0.30, 0.60);
    th_recovery = (0.80, 0.50);
    th_overlap = (0.95, 0.90);
  }

type indicator = {
  in_name : string;
  in_value : float option;
  in_level : level;
  in_detail : string;
}

type alert = {
  al_window : int;
  al_indicator : string;
  al_level : level;
  al_value : float;
  al_baseline : float;
}

type window_report = {
  wr_index : int;
  wr_indicators : indicator list;
  wr_level : level;
  wr_alerts : alert list;
}

type report = {
  hp_windows : window_report list;
  hp_alerts : alert list;
  hp_level : level;
}

(* Which way is bad: High indicators regress upward, Low downward. *)
type direction = High | Low

type spec = {
  sp_name : string;
  sp_dir : direction;
  sp_limits : thresholds -> float * float;
}

let specs =
  [
    { sp_name = "collector.drop-rate"; sp_dir = High; sp_limits = (fun t -> t.th_drop_rate) };
    { sp_name = "corr.hit-rate"; sp_dir = Low; sp_limits = (fun t -> t.th_hit_rate) };
    { sp_name = "ctx.inferred-share"; sp_dir = High; sp_limits = (fun t -> t.th_inferred_share) };
    { sp_name = "stale.recovery"; sp_dir = Low; sp_limits = (fun t -> t.th_recovery) };
    { sp_name = "profile.overlap"; sp_dir = Low; sp_limits = (fun t -> t.th_overlap) };
  ]

let score spec th v =
  let warn, crit = spec.sp_limits th in
  match spec.sp_dir with
  | High -> if v >= crit then Crit else if v >= warn then Warn else Ok
  | Low -> if v <= crit then Crit else if v <= warn then Warn else Ok

type tracker = {
  thresholds : thresholds;
  alpha : float;
  band : float;
  track : Trace.track option;
  baselines : (string, float) Hashtbl.t;
  mutable prev : Metrics.snapshot option;
  mutable windows_rev : window_report list;
  mutable n : int;
}

let create ?(thresholds = default_thresholds) ?(alpha = 0.3) ?(band = 0.1)
    ?track () =
  {
    thresholds;
    alpha;
    band;
    track;
    baselines = Hashtbl.create 8;
    prev = None;
    windows_rev = [];
    n = 0;
  }

(* Per-window counter delta; counters are monotonic so a missing previous
   entry deltas from zero. *)
let delta t name snap =
  let cur = Option.value ~default:0 (Metrics.find_counter snap name) in
  let prev =
    match t.prev with
    | None -> 0
    | Some p -> Option.value ~default:0 (Metrics.find_counter p name)
  in
  cur - prev

let ratio num den =
  if den <= 0 then None else Some (float_of_int num /. float_of_int den)

let detail num den = Printf.sprintf "%d/%d" num den

(* Indicator values for this window, in [specs] order. *)
let values t ~overlap snap =
  let d = delta t in
  let dropped = d "collector.dropped-blobs" snap
  and batches = d "collector.batches" snap in
  let p_ranges = d "probe-corr.ranges" snap
  and p_miss = d "probe-corr.ranges-unmatched" snap in
  let w_addrs = d "dwarf-corr.addrs" snap
  and w_miss = d "dwarf-corr.addrs-unmapped" snap in
  let hit_den = p_ranges + w_addrs in
  let hit_num = hit_den - p_miss - w_miss in
  let inferred = d "ctx.inferred-frames" snap and samples = d "ctx.samples" snap in
  let recovered = d "stale.counts-recovered" snap
  and lost = d "stale.counts-dropped" snap in
  [
    (ratio dropped batches, detail dropped batches);
    (ratio hit_num hit_den, detail hit_num hit_den);
    (ratio inferred samples, detail inferred samples);
    (ratio recovered (recovered + lost), detail recovered (recovered + lost));
    ( overlap,
      (match overlap with
      | None -> "no previous window"
      | Some _ -> "vs previous window") );
  ]

let observe ?overlap t snap =
  let index = t.n in
  let vals = values t ~overlap snap in
  let alerts = ref [] in
  let indicators =
    List.map2
      (fun spec (value, det) ->
        let level =
          match value with None -> Ok | Some v -> score spec t.thresholds v
        in
        (match value with
        | None -> ()
        | Some v -> (
            match Hashtbl.find_opt t.baselines spec.sp_name with
            | None -> Hashtbl.replace t.baselines spec.sp_name v
            | Some b ->
                let regressed =
                  match spec.sp_dir with
                  | High -> v -. b > t.band
                  | Low -> b -. v > t.band
                in
                let alerted = regressed && level <> Ok in
                if alerted then begin
                  let al =
                    {
                      al_window = index;
                      al_indicator = spec.sp_name;
                      al_level = level;
                      al_value = v;
                      al_baseline = b;
                    }
                  in
                  alerts := al :: !alerts;
                  Option.iter
                    (fun track ->
                      Trace.instant track
                        (Printf.sprintf "health.%s:%s" (level_name level)
                           spec.sp_name))
                    t.track
                end;
                (* An alert resets the baseline to the degraded value: a
                   plateau alerts once at the transition, not on every
                   window while the EWMA slowly catches up. *)
                Hashtbl.replace t.baselines spec.sp_name
                  (if alerted then v else b +. (t.alpha *. (v -. b)))));
        { in_name = spec.sp_name; in_value = value; in_level = level; in_detail = det })
      specs vals
  in
  let wr =
    {
      wr_index = index;
      wr_indicators = indicators;
      wr_level =
        List.fold_left (fun acc i -> worst acc i.in_level) Ok indicators;
      wr_alerts = List.rev !alerts;
    }
  in
  t.prev <- Some snap;
  t.windows_rev <- wr :: t.windows_rev;
  t.n <- t.n + 1;
  wr

let report t =
  let windows = List.rev t.windows_rev in
  {
    hp_windows = windows;
    hp_alerts = List.concat_map (fun w -> w.wr_alerts) windows;
    hp_level = List.fold_left (fun acc w -> worst acc w.wr_level) Ok windows;
  }

(* --- rendering ------------------------------------------------------- *)

let value_json = function None -> Json.Null | Some v -> Json.Float v

let alert_json a =
  Json.Obj
    [
      ("window", Json.Int a.al_window);
      ("indicator", Json.String a.al_indicator);
      ("level", Json.String (level_name a.al_level));
      ("value", Json.Float a.al_value);
      ("baseline", Json.Float a.al_baseline);
    ]

let indicator_json i =
  Json.Obj
    [
      ("name", Json.String i.in_name);
      ("value", value_json i.in_value);
      ("level", Json.String (level_name i.in_level));
      ("detail", Json.String i.in_detail);
    ]

let window_json w =
  Json.Obj
    [
      ("index", Json.Int w.wr_index);
      ("level", Json.String (level_name w.wr_level));
      ("indicators", Json.List (List.map indicator_json w.wr_indicators));
      ("alerts", Json.List (List.map alert_json w.wr_alerts));
    ]

let report_to_json r =
  Json.Obj
    [
      ("level", Json.String (level_name r.hp_level));
      ("windows", Json.List (List.map window_json r.hp_windows));
      ("alerts", Json.List (List.map alert_json r.hp_alerts));
    ]

let report_to_text r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "health: %s (%d windows, %d alerts)\n"
       (level_name r.hp_level)
       (List.length r.hp_windows)
       (List.length r.hp_alerts));
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "window %d: %s\n" w.wr_index (level_name w.wr_level));
      List.iter
        (fun i ->
          Buffer.add_string buf
            (match i.in_value with
            | None ->
                Printf.sprintf "  %-20s %5s  -      (%s)\n" i.in_name
                  (level_name i.in_level) i.in_detail
            | Some v ->
                Printf.sprintf "  %-20s %5s  %.4f (%s)\n" i.in_name
                  (level_name i.in_level) v i.in_detail))
        w.wr_indicators)
    r.hp_windows;
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "alert: window %d %s %s value %.4f baseline %.4f\n"
           a.al_window (level_name a.al_level) a.al_indicator a.al_value
           a.al_baseline))
    r.hp_alerts;
  Buffer.contents buf
