(** The profile-quality report: one row per PGO variant (the paper's
    Table-I shape — eval cost, profiling cost, sizes, block overlap against
    the instrumentation ground truth) plus the metrics snapshot of the run
    that produced it, rendered as text or JSON.

    This module is deliberately ignorant of the pipeline's types: callers
    (the [csspgo_tool report] subcommand) flatten their outcomes into
    {!variant_row}s, which keeps [lib/obs] a leaf dependency every layer
    can link against. *)

type variant_row = {
  vr_variant : string;
  vr_eval_cycles : int64;
  vr_eval_instructions : int64;
  vr_profiling_cycles : int64;
  vr_text_size : int;
  vr_profile_size : int;
  vr_overlap : float option;
      (** block overlap vs the instrumentation truth; [None] = not
          applicable (no profile) *)
  vr_stale_funcs : int;
}

type t = {
  rp_workload : string;
  rp_rows : variant_row list;
  rp_metrics : Metrics.snapshot;
}

val to_json : t -> Json.t
val to_text : t -> string

val metrics_to_json : Metrics.snapshot -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] — also the
    payload of the [--metrics FILE] dumps. *)

val metrics_to_text : Metrics.snapshot -> string
