type event = { ev_ph : char; ev_name : string; ev_ts : int64 }

type track = {
  tk_tid : int;
  tk_name : string;
  tk_cursor : Clock.cursor;
  mutable tk_events : event list;  (* newest first; reversed at export *)
}

type t = {
  tr_clock : Clock.t;
  tr_lock : Mutex.t;
  mutable tr_tracks : track list;
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Clock.wall () in
  { tr_clock = clock; tr_lock = Mutex.create (); tr_tracks = [] }

let deterministic t = Clock.is_fixed t.tr_clock

let track t ~tid ~name =
  let tk =
    { tk_tid = tid; tk_name = name; tk_cursor = Clock.cursor t.tr_clock; tk_events = [] }
  in
  Mutex.lock t.tr_lock;
  t.tr_tracks <- tk :: t.tr_tracks;
  Mutex.unlock t.tr_lock;
  tk

let emit tk ph name =
  tk.tk_events <-
    { ev_ph = ph; ev_name = name; ev_ts = Clock.now_us tk.tk_cursor } :: tk.tk_events

let begin_span tk name = emit tk 'B' name
let end_span tk name = emit tk 'E' name
let instant tk name = emit tk 'i' name

let with_span tk name f =
  begin_span tk name;
  Fun.protect ~finally:(fun () -> end_span tk name) f

let n_events t =
  Mutex.lock t.tr_lock;
  let n = List.fold_left (fun acc tk -> acc + List.length tk.tk_events) 0 t.tr_tracks in
  Mutex.unlock t.tr_lock;
  n

let to_json t =
  Mutex.lock t.tr_lock;
  let tracks = t.tr_tracks in
  Mutex.unlock t.tr_lock;
  (* Export order is (tid, name), independent of registration order — the
     byte-identity contract for fixed-clock traces across -j levels. *)
  let tracks =
    List.sort (fun a b -> compare (a.tk_tid, a.tk_name) (b.tk_tid, b.tk_name)) tracks
  in
  let events =
    List.concat_map
      (fun tk ->
        let meta =
          Json.Obj
            [
              ("name", Json.String "thread_name");
              ("ph", Json.String "M");
              ("pid", Json.Int 1);
              ("tid", Json.Int tk.tk_tid);
              ("args", Json.Obj [ ("name", Json.String tk.tk_name) ]);
            ]
        in
        meta
        :: List.rev_map
             (fun ev ->
               let base =
                 [
                   ("name", Json.String ev.ev_name);
                   ("ph", Json.String (String.make 1 ev.ev_ph));
                   ("ts", Json.Int (Int64.to_int ev.ev_ts));
                   ("pid", Json.Int 1);
                   ("tid", Json.Int tk.tk_tid);
                 ]
               in
               Json.Obj (if ev.ev_ph = 'i' then base @ [ ("s", Json.String "t") ] else base))
             tk.tk_events)
      tracks
  in
  Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

let to_chrome_json t = Json.to_string (to_json t)
