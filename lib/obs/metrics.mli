(** A typed metrics registry: counters, max-gauges, and log2-bucket
    histograms, sharded per domain so the hot path takes no locks.

    A handle obtained once (at stage start) is bumped many times; each bump
    is one [Atomic.fetch_and_add] on the shard indexed by the calling
    domain's id — no allocation, no lock, no false ordering between
    domains. The {!null} registry hands out inert handles whose bump is a
    single pattern match, so instrumented code costs nothing when telemetry
    is off.

    Snapshots merge shards with order-independent operations only —
    counters and histogram buckets sum, gauges take the maximum — so a
    snapshot is a pure function of the multiset of observations, not of
    the schedule that produced them. Name lists are sorted. *)

type t

val null : t
(** The disabled registry: registration returns no-op handles, [enabled]
    is false, snapshots are empty. *)

val create : ?shards:int -> unit -> t
(** A live registry. [shards] (rounded up to a power of two) defaults to
    at least 8 and at least [Domain.recommended_domain_count ()]. *)

val enabled : t -> bool

(** {1 Instruments} *)

type counter

val counter : t -> string -> counter
(** Find-or-register; same name returns the same instrument. *)

val bump : counter -> int -> unit
val incr : counter -> unit

type gauge

val gauge : t -> string -> gauge

val observe_gauge : gauge -> int -> unit
(** Retains the maximum observed value (per shard; merged at snapshot).
    The resting value is 0 and negative observations are clamped to it
    (i.e. ignored), so a snapshot never reports below 0 and the shard
    merge is a pure max over [{0} ∪ observations]. *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one observation of value [v]: bucket 0 collects [v <= 0],
    bucket [k >= 1] collects [2^(k-1) <= v < 2^k]. *)

val observe_n : histogram -> int -> int -> unit
(** [observe_n h v n] records [n] observations of [v] in one bump — the
    shape for merging a locally accumulated histogram at stage finish. *)

val bucket_lo : int -> int
(** Lower bound of a bucket index (0 for bucket 0, else [2^(k-1)]). *)

(** {1 Snapshots} *)

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_nonzero : (int * int) list;  (** (bucket index, count), ascending *)
}

type snapshot = {
  s_counters : (string * int) list;   (** sorted by name *)
  s_gauges : (string * int) list;     (** sorted by name *)
  s_histograms : (string * hist_summary) list;  (** sorted by name *)
}

val snapshot : t -> snapshot
(** Merge all shards. Deterministic for a fixed observation multiset. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_histogram : snapshot -> string -> hist_summary option
