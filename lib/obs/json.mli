(** A minimal JSON value type with a printer and a strict parser.

    The toolchain has no JSON dependency, yet the telemetry layer promises
    that everything it emits — Chrome traces, metrics dumps, the [report]
    subcommand — is machine-parseable. This module is both sides of that
    promise: the emitters build {!t} values and the tests (and the [report]
    self-check) parse the emitted text back.

    Printing is canonical: object fields keep construction order, floats
    always carry a decimal point or exponent (so they parse back as
    [Float]), and non-finite floats become [null]. Equal values print to
    equal strings, which is what the fixed-clock trace byte-identity check
    relies on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

exception Parse_error of string

val parse_exn : string -> t
(** Strict parse of a complete JSON document (rejects trailing bytes).
    Numbers without [.]/[e] parse as [Int], others as [Float]; numbers
    that overflow the double range (overlong digit runs, huge exponents)
    are rejected rather than silently becoming infinities that cannot
    reprint. [\uXXXX] escapes decode to UTF-8; surrogates must form a
    proper high/low pair (lone surrogates are rejected).
    @raise Parse_error on malformed input. *)

val parse : string -> (t, string) result

val member : string -> t -> t option
(** First binding of a key in an [Obj]; [None] otherwise. *)

val to_list : t -> t list option
