(** Windowed metric time series: the bridge from point-in-time
    {!Metrics.snapshot}s to continuously observed telemetry.

    A series is fed cumulative snapshots, one per collection window; each
    {!record} turns the delta against the previous snapshot into one
    {!window} of per-window counter increments (histograms contribute
    their [count]/[sum] deltas under [name/count] and [name/sum]) and the
    window's gauge readings (max-gauges are cumulative maxima, so the
    reading itself — not a delta — is the meaningful per-window value).

    Timestamps come from a {!Clock} timebase: on the fixed clock every
    window's [w_at_us] is a pure tick count, so two runs that record the
    same snapshots produce byte-identical series whatever the schedule —
    the same discipline as {!Metrics} snapshots. Counters whose names
    carry a schedule-dependent prefix ([sched.] by default) are dropped at
    record time so the remaining windows really are schedule-independent.

    Retention is a bounded ring: only the newest [retain] windows are
    kept; older ones are evicted (counted, never silently lost).

    {!merge} obeys the same order-independent laws as the rest of the
    telemetry stack — windows align by index, counter deltas sum, gauges
    take the maximum, timestamps take the maximum — so per-shard or
    per-collector series reduce deterministically in any order:
    commutative, associative, and identity on the empty series. *)

type window = {
  w_index : int;  (** 0-based window number within the series *)
  w_at_us : int64;  (** timestamp of the record that closed the window *)
  w_dur_us : int64;
      (** time since the previous window's record; [0] for the first *)
  w_counters : (string * int) list;
      (** per-window counter deltas, sorted by name, zero deltas elided;
          histogram [count]/[sum] deltas appear as [name/count], [name/sum] *)
  w_gauges : (string * int) list;  (** gauge readings, sorted by name *)
}

type t

val create :
  ?retain:int -> ?drop_prefixes:string list -> ?clock:Clock.t -> unit -> t
(** A fresh series. [retain] (default 64, min 1) bounds the ring.
    [drop_prefixes] (default [["sched."]]) names schedule-dependent
    instruments to exclude. [clock] (default a fixed clock) provides the
    per-record timestamps via its own cursor. *)

val record : t -> Metrics.snapshot -> window
(** Close one window: delta the cumulative snapshot against the previous
    one and append. The first record deltas against the all-zero origin. *)

val windows : t -> window list
(** Retained windows, ascending index. *)

val total : t -> int
(** Windows ever recorded (or merged in), including evicted ones. *)

val evicted : t -> int
(** Windows dropped by ring retention. *)

val rate : window -> string -> float option
(** Per-second rate of a counter over the window ([delta * 1e6 / dur]);
    [None] when the counter is absent or the window has zero duration. *)

val merge : t -> t -> t
(** Order-independent union: windows align by index; counters sum, gauges
    and timestamps max. The inputs are untouched. Retention of the result
    is the larger of the two rings, re-applied after the union. *)

val to_json : t -> Json.t
(** Canonical rendering: windows ascending, names sorted — byte-stable
    for equal series. *)
