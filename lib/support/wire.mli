(** Binary wire primitives shared by every on-disk codec ([Profile.Binary_io],
    [Vm.Sample_log]): LEB128 varints, length-prefixed strings, and a
    digest-framed section envelope.

    The envelope layout is

    {v
    magic (4 bytes) | version (varint) | nsections (varint) | section*
    section := tag (varint) | length (varint) | payload | digest (8 bytes LE)
    v}

    where [digest] is FNV-1a over the section tag and payload bytes.
    {!unframe} validates the whole frame — magic, version range, section
    count, length bounds, digests, and the absence of trailing bytes —
    before handing any payload to a decoder, so truncated or corrupted
    input surfaces as a typed {!error}, never as an exception or a
    silently wrong value. *)

type error =
  | Bad_magic of { expected : string; got : string }
  | Unsupported_version of { version : int; max : int }
  | Truncated of string          (** what was being read when input ran out *)
  | Digest_mismatch of { section : int }  (** 0-based section index *)
  | Malformed of string          (** structurally invalid content *)

val error_to_string : error -> string

exception Error of error
(** Raised by {!Dec} cursor reads. {!unframe} and codec entry points catch
    it and return [Error _] results; it never escapes a [decode]. *)

(** Append-only encode buffer. *)
module Enc : sig
  type t

  val create : unit -> t

  val byte : t -> int -> unit
  (** Append the low 8 bits. *)

  val varint64 : t -> int64 -> unit
  (** Unsigned LEB128 of the 64-bit pattern (negative = 10 bytes). *)

  val varint : t -> int -> unit
  (** [varint64] of [Int64.of_int]. *)

  val string : t -> string -> unit
  (** Varint length prefix + bytes. *)

  val contents : t -> string
end

(** Bounds-checked decode cursor over a payload slice. Reads raise
    {!Error} ([Truncated] past the end, [Malformed] on varints longer than
    10 bytes or strings with absurd lengths). *)
module Dec : sig
  type t

  val of_string : string -> t
  val byte : t -> int
  val varint64 : t -> int64
  val varint : t -> int
  val string : t -> string

  val varint_into : t -> int array -> int -> unit
  (** [varint_into t a n] decodes [n] varints into [a.(0 .. n-1)] — the
      bulk form of {!varint} the sample-log decoder runs on. Runs of
      single-byte varints decode 8 at a time from one 64-bit load, and
      multi-byte varints that terminate within a loaded word decode
      without per-byte cursor traffic; element-wise results and error
      behavior are identical to [n] calls of {!varint}.
      @raise Invalid_argument when [n] is negative or exceeds [a]'s
      length. *)

  val at_end : t -> bool
  val remaining : t -> int
end

val frame : magic:string -> version:int -> (int * string) list -> string
(** [frame ~magic ~version sections] assembles a complete framed blob from
    [(tag, payload)] sections. [magic] must be exactly 4 bytes. *)

val unframe :
  magic:string -> max_version:int -> string -> (int * (int * string) list, error) result
(** Validate and take apart a framed blob: returns [(version, sections)]
    with every section's digest already checked. Versions outside
    [1..max_version] are rejected ([Unsupported_version]), as are trailing
    bytes after the last declared section ([Malformed]). *)

val sniff : magic:string -> string -> bool
(** Cheap format detection: does the blob start with [magic]? *)

val section_digest : tag:int -> string -> int64
(** The FNV-1a digest {!frame} writes (and {!unframe} checks) for a
    section: seeded with the tag, then the payload bytes. Exposed so
    inspection tooling can display the per-section digests of a blob it
    just unframed without re-deriving the trailer layout. *)
