type 'k t = ('k, int64 ref) Hashtbl.t

let create n = Hashtbl.create n

let bump t k n =
  match Hashtbl.find_opt t k with
  | Some r -> r := Int64.add !r n
  | None -> Hashtbl.add t k (ref n)

let get t k = match Hashtbl.find_opt t k with Some r -> !r | None -> 0L
let find_opt t k = Option.map ( ! ) (Hashtbl.find_opt t k)
let mem = Hashtbl.mem
let length = Hashtbl.length
let iter f t = Hashtbl.iter (fun k r -> f k !r) t
let fold f t acc = Hashtbl.fold (fun k r acc -> f k !r acc) t acc

let merge_into ~into src = iter (fun k v -> bump into k v) src

let to_hashtbl t =
  let out = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter (fun k r -> Hashtbl.replace out k !r) t;
  out

let of_hashtbl h =
  let out = Hashtbl.create (Hashtbl.length h) in
  Hashtbl.iter (fun k v -> Hashtbl.replace out k (ref v)) h;
  out
