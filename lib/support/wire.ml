type error =
  | Bad_magic of { expected : string; got : string }
  | Unsupported_version of { version : int; max : int }
  | Truncated of string
  | Digest_mismatch of { section : int }
  | Malformed of string

let error_to_string = function
  | Bad_magic { expected; got } ->
      Printf.sprintf "bad magic: expected %S, got %S" expected got
  | Unsupported_version { version; max } ->
      Printf.sprintf "unsupported format version %d (this reader handles 1..%d)"
        version max
  | Truncated what -> Printf.sprintf "truncated input while reading %s" what
  | Digest_mismatch { section } ->
      Printf.sprintf "digest mismatch in section %d" section
  | Malformed what -> Printf.sprintf "malformed input: %s" what

exception Error of error

let fail e = raise (Error e)

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let byte t b = Buffer.add_char t (Char.chr (b land 0xff))

  (* Unsigned LEB128 over the 64-bit pattern: logical shifts, so negative
     int64s (checksums are arbitrary bit patterns) encode in 10 bytes. *)
  let varint64 t v =
    let v = ref v in
    let continue = ref true in
    while !continue do
      let b = Int64.to_int (Int64.logand !v 0x7fL) in
      v := Int64.shift_right_logical !v 7;
      if Int64.equal !v 0L then begin
        byte t b;
        continue := false
      end
      else byte t (b lor 0x80)
    done

  let varint t v = varint64 t (Int64.of_int v)

  let string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let contents = Buffer.contents
end

module Dec = struct
  type t = { buf : string; mutable pos : int; limit : int }

  let of_string s = { buf = s; pos = 0; limit = String.length s }
  let remaining t = t.limit - t.pos
  let at_end t = t.pos >= t.limit

  let byte t =
    if t.pos >= t.limit then fail (Truncated "byte");
    let b = Char.code t.buf.[t.pos] in
    t.pos <- t.pos + 1;
    b

  (* Hot path: 7-bit groups up to shift 49 (56 bits) accumulate in a
     native int — one [Int64] conversion per varint instead of boxed
     arithmetic per byte. Only the 9th and 10th bytes touch [Int64]. *)
  let varint64 t =
    let b0 = byte t in
    if b0 land 0x80 = 0 then Int64.of_int b0
    else begin
      let acc = ref (b0 land 0x7f) in
      let hi = ref 0L in
      let shift = ref 7 in
      let continue = ref true in
      while !continue do
        if !shift > 63 then fail (Malformed "varint longer than 10 bytes");
        let b = byte t in
        if !shift <= 49 then acc := !acc lor ((b land 0x7f) lsl !shift)
        else
          hi := Int64.logor !hi (Int64.shift_left (Int64.of_int (b land 0x7f)) !shift);
        shift := !shift + 7;
        if b land 0x80 = 0 then continue := false
      done;
      Int64.logor !hi (Int64.of_int !acc)
    end

  let varint t =
    let v = varint64 t in
    let n = Int64.to_int v in
    if not (Int64.equal (Int64.of_int n) v) then
      fail (Malformed "varint exceeds the native int range");
    n

  let string t =
    let n = varint t in
    if n < 0 || n > remaining t then fail (Truncated "string");
    let s = String.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    s

  let msb_mask = 0x8080808080808080L

  (* Bulk decode of [n] varints into [a.(0 .. n-1)]. Varint streams here
     (sample-log arenas) are dominated by runs of small values, so the hot
     path loads 8 bytes at once: a word with no continuation bit set is 8
     complete single-byte varints. A word that does carry continuation
     bits still yields one varint decoded straight out of the register —
     no per-byte bounds checks or cursor stores. Only varints spilling
     past the loaded word (or the buffer tail) take the byte-at-a-time
     path, so error behavior is identical to [varint] per element. *)
  let varint_into t a n =
    if n < 0 || n > Array.length a then
      invalid_arg "Wire.Dec.varint_into: count out of range";
    let i = ref 0 in
    while !i < n do
      if !i + 8 <= n && t.pos + 8 <= t.limit then begin
        let w = String.get_int64_le t.buf t.pos in
        let byte_at k = Int64.to_int (Int64.shift_right_logical w (8 * k)) land 0xff in
        if Int64.equal (Int64.logand w msb_mask) 0L then begin
          let i0 = !i in
          a.(i0) <- byte_at 0;
          a.(i0 + 1) <- byte_at 1;
          a.(i0 + 2) <- byte_at 2;
          a.(i0 + 3) <- byte_at 3;
          a.(i0 + 4) <- byte_at 4;
          a.(i0 + 5) <- byte_at 5;
          a.(i0 + 6) <- byte_at 6;
          a.(i0 + 7) <- byte_at 7;
          t.pos <- t.pos + 8;
          i := i0 + 8
        end
        else begin
          (* First terminator byte (continuation bit clear) within the
             word; -1 when the varint continues past it. *)
          let rec term k =
            if k >= 8 then -1
            else if byte_at k land 0x80 = 0 then k
            else term (k + 1)
          in
          match term 0 with
          | -1 ->
              (* >= 9 encoded bytes: the general path handles the int64
                 tail and the longer-than-10-bytes check. *)
              a.(!i) <- varint t;
              incr i
          | last ->
              (* At most 8 groups of 7 bits = 56 bits: always fits the
                 native int, no overflow check needed. *)
              let v = ref 0 in
              for k = last downto 0 do
                v := (!v lsl 7) lor (byte_at k land 0x7f)
              done;
              a.(!i) <- !v;
              t.pos <- t.pos + last + 1;
              incr i
        end
      end
      else begin
        a.(!i) <- varint t;
        incr i
      end
    done
end

let digest ~tag payload =
  Fnv.string (Fnv.int Fnv.init tag) payload

let section_digest = digest

let add_digest buf d =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical d (8 * i)) land 0xff))
  done

let frame ~magic ~version sections =
  if String.length magic <> 4 then invalid_arg "Wire.frame: magic must be 4 bytes";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  let hdr = Enc.create () in
  Enc.varint hdr version;
  Enc.varint hdr (List.length sections);
  Buffer.add_string buf (Enc.contents hdr);
  List.iter
    (fun (tag, payload) ->
      let sec = Enc.create () in
      Enc.varint sec tag;
      Enc.varint sec (String.length payload);
      Buffer.add_string buf (Enc.contents sec);
      Buffer.add_string buf payload;
      add_digest buf (digest ~tag payload))
    sections;
  Buffer.contents buf

let sniff ~magic s =
  String.length s >= String.length magic && String.sub s 0 (String.length magic) = magic

let unframe ~magic ~max_version s =
  try
    if String.length s < 4 then
      fail (Bad_magic { expected = magic; got = s });
    let got = String.sub s 0 4 in
    if not (String.equal got magic) then fail (Bad_magic { expected = magic; got });
    let d = Dec.of_string s in
    d.Dec.pos <- 4;
    let version = Dec.varint d in
    if version < 1 || version > max_version then
      fail (Unsupported_version { version; max = max_version });
    let nsections = Dec.varint d in
    if nsections < 0 then fail (Malformed "negative section count");
    let sections = ref [] in
    for i = 0 to nsections - 1 do
      let tag = Dec.varint d in
      let len = Dec.varint d in
      if len < 0 || len > Dec.remaining d then fail (Truncated "section payload");
      let payload = String.sub d.Dec.buf d.Dec.pos len in
      d.Dec.pos <- d.Dec.pos + len;
      let want = digest ~tag payload in
      if Dec.remaining d < 8 then fail (Truncated "section digest");
      let got = ref 0L in
      for j = 0 to 7 do
        got :=
          Int64.logor !got (Int64.shift_left (Int64.of_int (Dec.byte d)) (8 * j))
      done;
      if not (Int64.equal !got want) then fail (Digest_mismatch { section = i });
      sections := (tag, payload) :: !sections
    done;
    if not (Dec.at_end d) then
      fail (Malformed "trailing bytes after the last section");
    Ok (version, List.rev !sections)
  with Error e -> Result.error e
