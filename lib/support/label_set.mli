(** Request-scoped profile labels, after Go's profile-labels design: a
    {e label set} is a canonical set of string key/value pairs attached to
    every sample taken while a request is being served (tenant, endpoint,
    experiment arm). Sample logs intern label sets to small dense ids and
    stamp samples by id, so profiles become sliceable per label after the
    fact.

    Canonical form: pairs sorted lexicographically by (key, value), exact
    duplicates removed. Construction from {e any} pair order yields the
    same value — interning is order-insensitive — and {!canonical} is an
    injective binary encoding (length-prefixed), so distinct sets can
    never collide on their interning key. *)

type t

val empty : t
(** The unlabeled set — what every pre-label sample stream carries. *)

val is_empty : t -> bool

val of_list : (string * string) list -> t
(** Canonicalize: sort by (key, value), drop exact duplicate pairs. *)

val to_list : t -> (string * string) list
(** Pairs in canonical order. *)

val find : t -> string -> string option
(** Value of the first pair with the given key, in canonical order. *)

val project : t -> keys:string list -> t
(** Restrict to the pairs whose key is listed — the label-slicing
    projection (e.g. group per-request sets down to the tenant only). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val canonical : t -> string
(** Injective binary encoding (varint-length-prefixed key/value pairs in
    canonical order) — the interning key. [""] iff {!is_empty}. *)

val of_canonical : string -> t
(** Decode {!canonical} output.
    @raise Csspgo_support.Wire.Error on malformed or non-canonical bytes
    (wrong pair order, duplicates, trailing garbage) — a corrupted label
    table must surface as a typed error, never as a mislabeled set. *)

val to_string : t -> string
(** Display form: ["k=v,k2=v2"] in canonical order; ["-"] when empty. *)

val of_string : string -> (t, string) result
(** Parse the display form (["-"] or [""] for empty). Keys and values may
    not contain ['='] or [',']. *)
