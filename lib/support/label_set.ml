(* A label set is its canonical pair array: sorted by (key, value), exact
   duplicates removed. Everything else — interning keys, display, wire
   bytes — derives from that one normal form. *)

type t = (string * string) array

let empty : t = [||]
let is_empty t = Array.length t = 0

let pair_compare (ka, va) (kb, vb) =
  match String.compare ka kb with 0 -> String.compare va vb | c -> c

let of_list pairs =
  let sorted = List.sort_uniq pair_compare pairs in
  Array.of_list sorted

let to_list t = Array.to_list t

let find t key =
  let n = Array.length t in
  let rec go i =
    if i >= n then None
    else
      let k, v = t.(i) in
      if String.equal k key then Some v else go (i + 1)
  in
  go 0

let project t ~keys =
  Array.of_list
    (List.filter (fun (k, _) -> List.exists (String.equal k) keys) (to_list t))

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else match pair_compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let equal a b = compare a b = 0

let canonical t =
  if Array.length t = 0 then ""
  else begin
    let e = Wire.Enc.create () in
    Array.iter
      (fun (k, v) ->
        Wire.Enc.string e k;
        Wire.Enc.string e v)
      t;
    Wire.Enc.contents e
  end

let of_canonical s =
  if String.equal s "" then empty
  else begin
    let d = Wire.Dec.of_string s in
    let pairs = ref [] in
    while not (Wire.Dec.at_end d) do
      let k = Wire.Dec.string d in
      let v = Wire.Dec.string d in
      pairs := (k, v) :: !pairs
    done;
    let t = Array.of_list (List.rev !pairs) in
    (* Only canonical bytes decode: re-encoding must reproduce them, so a
       shuffled or duplicated table entry is a typed error, not a second
       spelling of the same set. *)
    if not (String.equal (canonical (of_list (to_list t))) s) then
      raise (Wire.Error (Wire.Malformed "non-canonical label set"));
    t
  end

let to_string t =
  if Array.length t = 0 then "-"
  else
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) (to_list t))

let of_string s =
  if String.equal s "" || String.equal s "-" then Ok empty
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (of_list acc)
      | part :: tl -> (
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "label %S: expected key=value" part)
          | Some i ->
              let k = String.sub part 0 i
              and v = String.sub part (i + 1) (String.length part - i - 1) in
              if String.equal k "" then
                Error (Printf.sprintf "label %S: empty key" part)
              else if String.contains v '=' then
                Error (Printf.sprintf "label %S: '=' in value" part)
              else go ((k, v) :: acc) tl)
    in
    go [] parts
