(** Hashed [int64] counter tables with single-lookup bumps.

    The naive [find_opt] + [replace] update pattern hashes the key twice and
    boxes a fresh [Int64] per increment; storing a mutable ref makes the hot
    path one lookup plus an in-place add. This is the shared counter
    substrate for sample aggregation ([Profgen.Ranges]) and per-address
    execution totals. *)

type 'k t

val create : int -> 'k t
(** [create n] is an empty table sized for about [n] distinct keys. *)

val bump : 'k t -> 'k -> int64 -> unit
(** [bump t k n] adds [n] to the count for [k] (starting from 0). One hash
    lookup on the hit path; insertion allocates the ref once per key. *)

val get : 'k t -> 'k -> int64
(** Current count for [k]; 0 if absent. *)

val find_opt : 'k t -> 'k -> int64 option
val mem : 'k t -> 'k -> bool
val length : 'k t -> int
val iter : ('k -> int64 -> unit) -> 'k t -> unit
val fold : ('k -> int64 -> 'acc -> 'acc) -> 'k t -> 'acc -> 'acc

val merge_into : into:'k t -> 'k t -> unit
(** Add every count in the source table into [into] (the source is
    untouched). Counter addition is commutative and associative, so
    per-shard tables merged in any order hold exactly the totals a single
    table fed the union of the streams would — the exactness argument the
    sharded correlator's aggregate merge rides on. *)

val to_hashtbl : 'k t -> ('k, int64) Hashtbl.t
(** Snapshot as a plain hashtable (for consumers that want one). *)

val of_hashtbl : ('k, int64) Hashtbl.t -> 'k t
