module Mach = Csspgo_codegen.Mach
module Ir = Csspgo_ir

type kind = K_call | K_tail_call | K_ret | K_other

type t = {
  bx_bin : Mach.binary;
  base : int;
  idx_of : int array; (* addr - base -> instruction index; -1 unmapped *)
  kinds : kind array;
  func_guids : Ir.Guid.t array;
  call_before : int array; (* idx -> index of preceding MCall, or -1 *)
  level_paths : (Ir.Guid.t * int) list array;
  callees : Ir.Guid.t option array;
}

let level_path_of (b : Mach.binary) (call_inst : Mach.inst) =
  let container = b.Mach.funcs.(call_inst.Mach.i_func).Mach.bf_guid in
  match Ir.Dloc.frames ~container call_inst.Mach.i_dloc with
  | [] -> [ (container, call_inst.Mach.i_cs_probe) ]
  | (origin, _, _) :: rest ->
      let outer = List.rev_map (fun (f, _, probe) -> (f, probe)) rest in
      outer @ [ (origin, call_inst.Mach.i_cs_probe) ]

let create (b : Mach.binary) =
  let insts = b.Mach.insts in
  let n = Array.length insts in
  let base = if n = 0 then 0 else insts.(0).Mach.i_addr in
  let span = if n = 0 then 0 else insts.(n - 1).Mach.i_addr - base + 1 in
  let idx_of = Array.make span (-1) in
  let kinds = Array.make (max n 1) K_other in
  let dummy_guid = Ir.Guid.of_name "" in
  let func_guids = Array.make (max n 1) dummy_guid in
  let call_before = Array.make (max n 1) (-1) in
  let level_paths = Array.make (max n 1) [] in
  let callees = Array.make (max n 1) None in
  for i = 0 to n - 1 do
    let inst = insts.(i) in
    idx_of.(inst.Mach.i_addr - base) <- i;
    func_guids.(i) <- b.Mach.funcs.(inst.Mach.i_func).Mach.bf_guid;
    (match inst.Mach.i_op with
    | Mach.MCall c ->
        kinds.(i) <- K_call;
        level_paths.(i) <- level_path_of b inst;
        callees.(i) <- Some c.Mach.m_callee
    | Mach.MTail_call c ->
        kinds.(i) <- K_tail_call;
        level_paths.(i) <- level_path_of b inst;
        callees.(i) <- Some c.Mach.m_callee
    | Mach.MRet _ -> kinds.(i) <- K_ret
    | _ -> ());
    if i > 0 && kinds.(i - 1) = K_call then call_before.(i) <- i - 1
  done;
  { bx_bin = b; base; idx_of; kinds; func_guids; call_before; level_paths; callees }

let binary t = t.bx_bin

let idx_of_addr t addr =
  let off = addr - t.base in
  if off < 0 || off >= Array.length t.idx_of then -1 else Array.unsafe_get t.idx_of off

let inst t i = t.bx_bin.Mach.insts.(i)

let kind_of_addr t addr =
  let i = idx_of_addr t addr in
  if i < 0 then K_other else t.kinds.(i)

let func_guid_of_addr t addr =
  let i = idx_of_addr t addr in
  if i >= 0 then Some t.func_guids.(i)
  else
    Option.map
      (fun fi -> t.bx_bin.Mach.funcs.(fi).Mach.bf_guid)
      (Mach.func_index_of_addr t.bx_bin addr)

let call_idx_before t ret_addr =
  let i = idx_of_addr t ret_addr in
  if i < 0 then -1 else t.call_before.(i)

let container t i = t.func_guids.(i)
let level_path t i = t.level_paths.(i)
let callee t i = t.callees.(i)
let cs_probe t i = t.bx_bin.Mach.insts.(i).Mach.i_cs_probe

let iter_range t (lo, hi) f =
  let i0 = idx_of_addr t lo in
  if i0 >= 0 then begin
    let insts = t.bx_bin.Mach.insts in
    let n = Array.length insts in
    let i = ref i0 in
    (* Same step cap as [Ranges.iter_range_insts]. *)
    while !i < n && !i - i0 <= 100_000 && insts.(!i).Mach.i_addr <= hi do
      f !i;
      incr i
    done
  end
