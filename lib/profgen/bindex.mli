(** Dense per-binary index tables for streaming sample consumption.

    The binary's [addr_index] is a hashtable, and the hot paths of sample
    aggregation and context reconstruction (Algorithm 1) used to pay one or
    more hash lookups per LBR entry ([inst_at] for branch classification,
    [call_inst_before], per-range instruction walks). Text addresses are
    compact, so all of it flattens into arrays computed once per binary:
    address → instruction index, per-instruction branch kind, containing
    function, callsite-probe level paths (the inline expansion of a call
    instruction), and static callees. Keys are stable instruction indices —
    the same motivation as stale-profile matching's move away from raw
    addresses (PAPERS.md). *)

module Mach = Csspgo_codegen.Mach

type kind = K_call | K_tail_call | K_ret | K_other

type t

val create : Mach.binary -> t
(** O(text size) time and space; build once per profiled binary. *)

val binary : t -> Mach.binary

val idx_of_addr : t -> int -> int
(** Instruction index at an address, or -1 if the address maps to no
    instruction (mirrors [Mach.addr_index]). *)

val inst : t -> int -> Mach.inst
(** The instruction at a (valid) index. *)

val kind_of_addr : t -> int -> kind
(** Branch kind of the instruction at an address; [K_other] when unmapped
    (matches Algorithm 1's [classify]). *)

val func_guid_of_addr : t -> int -> Csspgo_ir.Guid.t option
(** Containing function of an address. Dense lookup for instruction
    addresses, falling back to [Mach.func_index_of_addr]'s range search for
    addresses between instructions — exact same answers as the original. *)

val call_idx_before : t -> int -> int
(** Index of the [MCall] instruction immediately preceding the instruction
    at a return address, or -1 (the dense form of [call_inst_before]). *)

val container : t -> int -> Csspgo_ir.Guid.t
(** Guid of the function containing the instruction at an index. *)

val level_path : t -> int -> (Csspgo_ir.Guid.t * int) list
(** Outermost-first (function, callsite-probe) pairs describing the inline
    expansion of the call instruction at an index, precomputed; [[]] for
    non-call instructions. *)

val callee : t -> int -> Csspgo_ir.Guid.t option
(** Static callee of the call/tail-call instruction at an index. *)

val cs_probe : t -> int -> int

val iter_range : t -> int * int -> (int -> unit) -> unit
(** Iterate the indices of instructions with [lo <= addr <= hi], in address
    order; a [lo] that maps to no instruction yields nothing (same contract
    as [Ranges.iter_range_insts], without the per-step hash lookups). *)
