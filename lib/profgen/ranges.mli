(** LBR sample aggregation: consecutive LBR entries bound linear execution
    ranges ([prev.target, cur.source]), which give basic-block-level counts;
    the entries themselves give edge (branch) counts. This is the common
    front half of both AutoFDO and CSSPGO profile generation.

    Aggregation is online: [create] an empty aggregate, [feed] it each
    sample's LBR as it streams out of the PMU (or attach [sink] to
    [Vm.Machine.run]); [aggregate] is the batch wrapper over a materialized
    sample list. Counters are single-lookup [Counter] tables. *)

module Mach = Csspgo_codegen.Mach
module Counter = Csspgo_support.Counter

type agg = {
  range_counts : (int * int) Counter.t;  (** [begin, end] inclusive *)
  branch_counts : (int * int) Counter.t; (** (source, target) *)
}

val create : unit -> agg

val feed : agg -> lbr:(int * int) array -> lbr_len:int -> unit
(** Consume one sample's LBR (the first [lbr_len] entries, oldest first).
    Reads only ints out of the scratch — safe against buffer reuse. *)

val sink : agg -> Csspgo_vm.Machine.sink
(** A sink that [feed]s every sample into [agg] (stack ignored). *)

val aggregate : Csspgo_vm.Machine.sample list -> agg
(** Batch wrapper: [create] + [feed] per sample. *)

val addr_totals : ?index:Bindex.t -> Mach.binary -> agg -> int Counter.t
(** Expand ranges to per-instruction-address execution totals. With
    [?index], range walks use the dense instruction index instead of
    per-step hash lookups (same results). *)

val iter_range_insts : Mach.binary -> int * int -> (Mach.inst -> unit) -> unit
(** Walk the instructions covered by one range; tolerates ranges whose
    endpoints fall outside the text map (stops walking). *)
