module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach
module P = Csspgo_profile
module Counter = Csspgo_support.Counter

let correlate_agg ?(name_of = fun _ -> None) ?index ?(obs = Csspgo_obs.Metrics.null)
    (b : Mach.binary) (agg : Ranges.agg) =
  let totals = Ranges.addr_totals ?index b agg in
  let prof = P.Line_profile.create () in
  let n_addrs = ref 0 and n_unmapped = ref 0 and n_calls = ref 0 in
  let name_for guid =
    match name_of guid with
    | Some n -> n
    | None -> (
        match Mach.entry_addr b guid with
        | Some a -> (
            match Mach.func_index_of_addr b a with
            | Some i -> b.Mach.funcs.(i).Mach.bf_name
            | None -> Format.asprintf "%a" Ir.Guid.pp guid)
        | None -> Format.asprintf "%a" Ir.Guid.pp guid)
  in
  (* Line counts: max across instructions sharing a location. *)
  Counter.iter
    (fun addr total ->
      incr n_addrs;
      match Mach.inst_at b addr with
      | None -> incr n_unmapped
      | Some inst ->
          let d = inst.Mach.i_dloc in
          if Ir.Dloc.is_none d then incr n_unmapped
          else begin
            let fe = P.Line_profile.get_or_add prof d.Ir.Dloc.origin ~name:(name_for d.Ir.Dloc.origin) in
            P.Line_profile.set_line_max fe (d.Ir.Dloc.line, d.Ir.Dloc.disc) total
          end)
    totals;
  (* Callsite targets, from the execution totals of call instructions. *)
  Array.iter
    (fun (inst : Mach.inst) ->
      match inst.Mach.i_op with
      | Mach.MCall c | Mach.MTail_call c -> (
          match Counter.find_opt totals inst.Mach.i_addr with
          | Some total when Int64.compare total 0L > 0 ->
              let d = inst.Mach.i_dloc in
              if not (Ir.Dloc.is_none d) then begin
                incr n_calls;
                let fe =
                  P.Line_profile.get_or_add prof d.Ir.Dloc.origin
                    ~name:(name_for d.Ir.Dloc.origin)
                in
                P.Line_profile.add_call fe (d.Ir.Dloc.line, d.Ir.Dloc.disc) c.Mach.m_callee total
              end
          | _ -> ())
      | _ -> ())
    b.Mach.insts;
  (* Head counts: LBR branches landing on a function entry. *)
  Counter.iter
    (fun (_, tgt) n ->
      match Mach.func_index_of_addr b tgt with
      | Some i when b.Mach.funcs.(i).Mach.bf_start = tgt ->
          let f = b.Mach.funcs.(i) in
          let fe = P.Line_profile.get_or_add prof f.Mach.bf_guid ~name:f.Mach.bf_name in
          fe.P.Line_profile.fe_head <- Int64.add fe.P.Line_profile.fe_head n
      | _ -> ())
    agg.Ranges.branch_counts;
  let module M = Csspgo_obs.Metrics in
  M.bump (M.counter obs "dwarf-corr.addrs") !n_addrs;
  M.bump (M.counter obs "dwarf-corr.addrs-unmapped") !n_unmapped;
  M.bump (M.counter obs "dwarf-corr.callsites") !n_calls;
  prof

let correlate ?name_of ?obs (b : Mach.binary) samples =
  correlate_agg ?name_of ?obs b (Ranges.aggregate samples)
