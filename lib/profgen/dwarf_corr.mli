(** DWARF-based profile correlation — the AutoFDO baseline (§II.A).

    Per-address execution totals are attributed to the (line, discriminator)
    of the innermost debug-info frame, taking the *maximum* across the
    instructions compiled from the same location (AutoFDO's heuristic for
    one-to-many code expansion). This is exactly where the §III.A hazards
    bite: code *merge* leaves one location claiming two blocks' counts, code
    *duplication* makes the max under-report the true sum, and code *motion*
    leaves a hot line anchored to an instruction that now runs cold.

    Call-site target counts and function head counts come from LBR branch
    records. Inline instances are merged into their origin function's flat
    profile (AutoFDO without inline replay; see DESIGN.md). *)

val correlate_agg :
  ?name_of:(Csspgo_ir.Guid.t -> string option) ->
  ?index:Bindex.t ->
  ?obs:Csspgo_obs.Metrics.t ->
  Csspgo_codegen.Mach.binary ->
  Ranges.agg ->
  Csspgo_profile.Line_profile.t
(** Correlate an online-built aggregate (the streaming entry point). [obs]
    receives [dwarf-corr.addrs], [dwarf-corr.addrs-unmapped] (no
    instruction or no debug location at the sampled address) and
    [dwarf-corr.callsites], bumped once at the end. *)

val correlate :
  ?name_of:(Csspgo_ir.Guid.t -> string option) ->
  ?obs:Csspgo_obs.Metrics.t ->
  Csspgo_codegen.Mach.binary ->
  Csspgo_vm.Machine.sample list ->
  Csspgo_profile.Line_profile.t
(** Batch wrapper: [correlate_agg] over [Ranges.aggregate]. *)
