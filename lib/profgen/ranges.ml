module Mach = Csspgo_codegen.Mach
module Vm = Csspgo_vm
module Counter = Csspgo_support.Counter

type agg = {
  range_counts : (int * int) Counter.t;
  branch_counts : (int * int) Counter.t;
}

let create () =
  { range_counts = Counter.create 1024; branch_counts = Counter.create 1024 }

let feed agg ~lbr ~lbr_len =
  for i = 0 to lbr_len - 1 do
    Counter.bump agg.branch_counts lbr.(i) 1L
  done;
  for i = 1 to lbr_len - 1 do
    let _, prev_tgt = lbr.(i - 1) in
    let cur_src, _ = lbr.(i) in
    (* A sane range stays within one linear run; discard wrap-arounds
       caused by LBR entries recorded around program shutdown. *)
    if prev_tgt <> 0 && cur_src >= prev_tgt then
      Counter.bump agg.range_counts (prev_tgt, cur_src) 1L
  done

let sink agg =
  {
    Vm.Machine.on_sample =
      (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ -> feed agg ~lbr ~lbr_len);
    on_labels = Vm.Machine.no_labels;
  }

let aggregate samples =
  let agg = create () in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      feed agg ~lbr:s.Vm.Machine.s_lbr ~lbr_len:(Array.length s.Vm.Machine.s_lbr))
    samples;
  agg

let iter_range_insts (b : Mach.binary) (lo, hi) f =
  let rec go addr steps =
    if steps > 100_000 then ()
    else
      match Mach.inst_at b addr with
      | None -> ()
      | Some inst ->
          if inst.Mach.i_addr <= hi then begin
            f inst;
            match Mach.next_addr b addr with
            | Some next when next > addr -> go next (steps + 1)
            | _ -> ()
          end
  in
  go lo 0

let addr_totals ?index (b : Mach.binary) agg =
  let totals = Counter.create 4096 in
  (match index with
  | Some ix ->
      Counter.iter
        (fun range n ->
          Bindex.iter_range ix range (fun i ->
              Counter.bump totals (Bindex.inst ix i).Mach.i_addr n))
        agg.range_counts
  | None ->
      Counter.iter
        (fun range n ->
          iter_range_insts b range (fun inst -> Counter.bump totals inst.Mach.i_addr n))
        agg.range_counts);
  totals
