(** Render a MiniC AST back to concrete syntax.

    The output re-parses ({!Parser.parse}) to a program with the same
    semantics: every statement is printed on its own line so lowering
    assigns distinct (function-relative) debug lines, expressions are
    fully parenthesized so no precedence information is lost, and
    [module] headers are re-emitted whenever the module attribution
    changes between consecutive function definitions.

    Line {e numbers} are not preserved — the printer lays source out
    fresh — which is exactly what the source-drift model
    ({!Csspgo_workloads.Drift}) wants: an edited AST printed through
    here behaves like a new revision of the file, with every statement
    below an insertion point shifted to a new line. *)

val program : Ast.program -> string
(** Concrete syntax for a whole program: globals, then functions in
    definition order. Ends with a newline. *)

val expr : Ast.expr -> string
(** One expression, fully parenthesized (atoms excepted). *)
