open Ast
module T = Csspgo_ir.Types

let binop_str = function
  | Arith T.Add -> "+"
  | Arith T.Sub -> "-"
  | Arith T.Mul -> "*"
  | Arith T.Div -> "/"
  | Arith T.Rem -> "%"
  | Arith T.And -> "&"
  | Arith T.Or -> "|"
  | Arith T.Xor -> "^"
  | Arith T.Shl -> "<<"
  | Arith T.Shr -> ">>"
  | Compare T.Eq -> "=="
  | Compare T.Ne -> "!="
  | Compare T.Lt -> "<"
  | Compare T.Le -> "<="
  | Compare T.Gt -> ">"
  | Compare T.Ge -> ">="
  | Log_and -> "&&"
  | Log_or -> "||"

let rec expr e =
  match e.e with
  | Int v ->
      (* The lexer has no negative literals; a negative constant (only
         reachable through constant folding on an edited AST) must print
         as an expression that re-parses to the same value. *)
      if Int64.compare v 0L >= 0 then Int64.to_string v
      else Printf.sprintf "(0 - %Ld)" (Int64.neg v)
  | Var name -> name
  | Binary (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr a) (binop_str op) (expr b)
  | Unary (Neg, a) -> Printf.sprintf "(- %s)" (expr a)
  | Unary (Not, a) -> Printf.sprintf "(! %s)" (expr a)
  | Call (name, args) ->
      Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr args))
  | Index (name, idx) -> Printf.sprintf "%s[%s]" name (expr idx)

let rec stmt buf indent st =
  let pad = String.make (2 * indent) ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  match st.s with
  | Let (name, e) -> line "let %s = %s;" name (expr e)
  | Assign (name, e) -> line "%s = %s;" name (expr e)
  | Store (name, idx, v) -> line "%s[%s] = %s;" name (expr idx) (expr v)
  | If (cond, then_, []) ->
      line "if (%s) {" (expr cond);
      block buf (indent + 1) then_;
      line "}"
  | If (cond, then_, else_) ->
      line "if (%s) {" (expr cond);
      block buf (indent + 1) then_;
      line "} else {";
      block buf (indent + 1) else_;
      line "}"
  | While (cond, body) ->
      line "while (%s) {" (expr cond);
      block buf (indent + 1) body;
      line "}"
  | Switch (scrut, cases, default) ->
      line "switch (%s) {" (expr scrut);
      List.iter
        (fun (v, body) ->
          line "case %Ld:" v;
          block buf (indent + 1) body)
        cases;
      if default <> [] then begin
        line "default:";
        block buf (indent + 1) default
      end;
      line "}"
  | Return e -> line "return %s;" (expr e)
  | Expr e -> line "%s;" (expr e)
  | Break -> line "break;"
  | Continue -> line "continue;"

and block buf indent stmts = List.iter (stmt buf indent) stmts

let program p =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, size) -> Buffer.add_string buf (Printf.sprintf "global %s[%d];\n" name size))
    p.pglobals;
  (* The parser attributes functions to the most recent [module] header,
     defaulting to "main"; replay the headers at attribution changes. *)
  let current = ref "main" in
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      if not (String.equal f.fmodule !current) then begin
        Buffer.add_string buf (Printf.sprintf "module %s;\n" f.fmodule);
        current := f.fmodule
      end;
      Buffer.add_string buf
        (Printf.sprintf "fn %s(%s) {\n" f.fname (String.concat ", " f.fparams));
      block buf 1 f.fbody;
      Buffer.add_string buf "}\n")
    p.pfns;
  Buffer.contents buf
