(* The scheduler moved to its own leaf library ([Csspgo_sched]) so layers
   below the orchestrator — notably the sharded correlator in lib/core —
   can run on it too. This re-export keeps every existing
   [Csspgo_orchestrator.Scheduler] call site working unchanged. *)
include Csspgo_sched.Scheduler
