type 'a deque = { lock : Mutex.t; mutable items : 'a list }

let pop_front d =
  Mutex.lock d.lock;
  let r =
    match d.items with
    | [] -> None
    | x :: tl ->
        d.items <- tl;
        Some x
  in
  Mutex.unlock d.lock;
  r

(* Steal from the victim's back half — the classic heuristic: leave the
   owner the work it is about to touch. Deques here are a handful of plan
   indices long, so the O(n) list surgery is noise. *)
let steal_back d =
  Mutex.lock d.lock;
  let r =
    match List.rev d.items with
    | [] -> None
    | x :: rtl ->
        d.items <- List.rev rtl;
        Some x
  in
  Mutex.unlock d.lock;
  r

let map ~jobs f xs =
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let results = Array.make n None in
    let deques = Array.init jobs (fun _ -> { lock = Mutex.create (); items = [] }) in
    Array.iteri (fun i _ -> deques.(i mod jobs).items <- i :: deques.(i mod jobs).items) inputs;
    Array.iter (fun d -> d.items <- List.rev d.items) deques;
    let run i =
      results.(i) <-
        Some (match f inputs.(i) with v -> Ok v | exception e -> Error e)
    in
    let rec worker wid =
      match pop_front deques.(wid) with
      | Some i ->
          run i;
          worker wid
      | None ->
          let rec try_steal k =
            if k < jobs then
              match steal_back deques.((wid + k) mod jobs) with
              | Some i ->
                  run i;
                  worker wid
              | None -> try_steal (k + 1)
          in
          try_steal 1
    in
    let domains = Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    Array.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end
