module D = Csspgo_core.Driver
module Obs = Csspgo_obs

type stats = {
  st_mutex : Mutex.t;
  st_counts : (string, int ref) Hashtbl.t;
}

let create_stats () = { st_mutex = Mutex.create (); st_counts = Hashtbl.create 16 }

let stats_list s =
  Mutex.lock s.st_mutex;
  let l = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) s.st_counts [] in
  Mutex.unlock s.st_mutex;
  (* The sort is the determinism contract: Hashtbl.fold order depends on
     insertion history (and thus on the parallel schedule), the sorted list
     does not. *)
  List.sort compare l

let stats_get s name =
  Mutex.lock s.st_mutex;
  let v = match Hashtbl.find_opt s.st_counts name with Some r -> !r | None -> 0 in
  Mutex.unlock s.st_mutex;
  v

let stat_hook ?metrics stats =
  let base =
    match stats with
    | None -> fun ~name:_ _ -> ()
    | Some s ->
        fun ~name n ->
          Mutex.lock s.st_mutex;
          (match Hashtbl.find_opt s.st_counts name with
          | Some r -> r := !r + n
          | None -> Hashtbl.add s.st_counts name (ref n));
          Mutex.unlock s.st_mutex
  in
  match metrics with
  | Some m when Obs.Metrics.enabled m ->
      fun ~name n ->
        Obs.Metrics.bump (Obs.Metrics.counter m ("plan." ^ name)) n;
        base ~name n
  | _ -> base

let plan_label (p : D.Plan.t) =
  p.D.Plan.pl_workload.D.w_name ^ "/" ^ D.variant_name p.D.Plan.pl_variant

let mk_hooks ?cache ?stats ?metrics ?track ?(stage_jobs = 1) () =
  {
    D.Plan.memo =
      (fun ~kind ~key ~ser ~de f ->
        match cache with
        | Some c -> Cache.memo c ~kind ~key ~ser ~de f
        | None -> f ());
    stat = stat_hook ?metrics stats;
    span =
      (fun ~name f ->
        match track with
        | Some tk -> Obs.Trace.with_span tk name f
        | None -> f ());
    metrics = Option.value metrics ~default:Obs.Metrics.null;
    jobs = stage_jobs;
  }

let hooks ?stats ?metrics ?track ?stage_jobs cache =
  mk_hooks ~cache ?stats ?metrics ?track ?stage_jobs ()

let run_plans ?cache ?stats ?metrics ?trace ?stage_jobs ~jobs plans =
  (* Tracks are registered serially here, in plan order, with the plan
     index as tid — an identity independent of which domain later runs the
     plan. That (plus per-track clock cursors) is what makes fixed-clock
     traces byte-identical across -j levels. *)
  let tracks =
    match trace with
    | None -> List.map (fun _ -> None) plans
    | Some tr ->
        List.mapi (fun i p -> Some (Obs.Trace.track tr ~tid:i ~name:(plan_label p))) plans
  in
  Scheduler.map ?metrics ?trace ~jobs
    (fun (plan, track) ->
      let hooks = mk_hooks ?cache ?stats ?metrics ?track ?stage_jobs () in
      match track with
      | Some tk ->
          Obs.Trace.with_span tk (plan_label plan) (fun () -> D.Plan.run ~hooks plan)
      | None -> D.Plan.run ~hooks plan)
    (List.combine plans tracks)

let run_matrix ?cache ?stats ?metrics ?trace ?options ~jobs ~variants ~workloads () =
  let plans =
    List.concat_map
      (fun w -> List.map (fun variant -> D.Plan.make ?options ~variant w) variants)
      workloads
  in
  let outcomes = run_plans ?cache ?stats ?metrics ?trace ~jobs plans in
  List.map2
    (fun (plan : D.Plan.t) o -> (plan.D.Plan.pl_workload, plan.D.Plan.pl_variant, o))
    plans outcomes
