module D = Csspgo_core.Driver

type stats = {
  st_mutex : Mutex.t;
  st_counts : (string, int ref) Hashtbl.t;
}

let create_stats () = { st_mutex = Mutex.create (); st_counts = Hashtbl.create 16 }

let stats_list s =
  Mutex.lock s.st_mutex;
  let l = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) s.st_counts [] in
  Mutex.unlock s.st_mutex;
  List.sort compare l

let stat_hook = function
  | None -> fun ~name:_ _ -> ()
  | Some s ->
      fun ~name n ->
        Mutex.lock s.st_mutex;
        (match Hashtbl.find_opt s.st_counts name with
        | Some r -> r := !r + n
        | None -> Hashtbl.add s.st_counts name (ref n));
        Mutex.unlock s.st_mutex

let hooks ?stats cache =
  {
    D.Plan.memo = (fun ~kind ~key ~ser ~de f -> Cache.memo cache ~kind ~key ~ser ~de f);
    stat = stat_hook stats;
  }

let run_plans ?cache ?stats ~jobs plans =
  let hooks =
    match (cache, stats) with
    | None, None -> None
    | Some c, _ -> Some (hooks ?stats c)
    | None, Some _ ->
        Some
          {
            D.Plan.memo = (fun ~kind:_ ~key:_ ~ser:_ ~de:_ f -> f ());
            stat = stat_hook stats;
          }
  in
  Scheduler.map ~jobs (fun plan -> D.Plan.run ?hooks plan) plans

let run_matrix ?cache ?stats ?options ~jobs ~variants ~workloads () =
  let plans =
    List.concat_map
      (fun w -> List.map (fun variant -> D.Plan.make ?options ~variant w) variants)
      workloads
  in
  let outcomes = run_plans ?cache ?stats ~jobs plans in
  List.map2
    (fun (plan : D.Plan.t) o -> (plan.D.Plan.pl_workload, plan.D.Plan.pl_variant, o))
    plans outcomes
