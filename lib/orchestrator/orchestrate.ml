module D = Csspgo_core.Driver

let hooks cache =
  { D.Plan.memo = (fun ~kind ~key ~ser ~de f -> Cache.memo cache ~kind ~key ~ser ~de f) }

let run_plans ?cache ~jobs plans =
  let hooks = Option.map hooks cache in
  Scheduler.map ~jobs (fun plan -> D.Plan.run ?hooks plan) plans

let run_matrix ?cache ?options ~jobs ~variants ~workloads () =
  let plans =
    List.concat_map
      (fun w -> List.map (fun variant -> D.Plan.make ?options ~variant w) variants)
      workloads
  in
  let outcomes = run_plans ?cache ~jobs plans in
  List.map2
    (fun (plan : D.Plan.t) o -> (plan.D.Plan.pl_workload, plan.D.Plan.pl_variant, o))
    plans outcomes
