(** The build orchestrator: runs staged PGO plans ({!Csspgo_core.Driver.Plan})
    across OCaml 5 domains, with stage memoization through a shared
    content-addressed {!Cache}.

    Every plan is independent of every other, and all stage merges inside a
    plan happen in its fixed stage order, so parallel execution is
    deterministic: binaries, profiles, and [Text_io] dumps are byte-identical
    to the serial ([jobs = 1]) schedule. *)

val hooks : Cache.t -> Csspgo_core.Driver.Plan.hooks
(** Memoization hooks backed by [cache]: stage values round-trip through the
    cache's byte store, so every hit is a fresh deserialized copy (safe to
    mutate, safe across domains). *)

val run_plans :
  ?cache:Cache.t ->
  jobs:int ->
  Csspgo_core.Driver.Plan.t list ->
  Csspgo_core.Driver.outcome list
(** Execute plans on up to [jobs] domains; results in input order. *)

val run_matrix :
  ?cache:Cache.t ->
  ?options:Csspgo_core.Driver.options ->
  jobs:int ->
  variants:Csspgo_core.Driver.variant list ->
  workloads:Csspgo_core.Driver.workload list ->
  unit ->
  (Csspgo_core.Driver.workload * Csspgo_core.Driver.variant * Csspgo_core.Driver.outcome)
  list
(** The variant×workload product, workload-major, in declaration order —
    the shape of every experiment table in the paper. *)
