(** The build orchestrator: runs staged PGO plans ({!Csspgo_core.Driver.Plan})
    across OCaml 5 domains, with stage memoization through a shared
    content-addressed {!Cache} and optional telemetry through
    {!Csspgo_obs}.

    Every plan is independent of every other, and all stage merges inside a
    plan happen in its fixed stage order, so parallel execution is
    deterministic: binaries, profiles, and [Text_io] dumps are byte-identical
    to the serial ([jobs = 1]) schedule. *)

type stats
(** Mutex-protected cross-domain accumulator for the per-stage counters the
    plans emit through [Plan.hooks.stat] (samples streamed, sample-log
    words, serialized profile bytes, reconstruction stats). *)

val create_stats : unit -> stats

val stats_list : stats -> (string * int) list
(** Accumulated (counter name, total) pairs, {e sorted by counter name}.
    The ordering is part of the contract: the underlying accumulator is an
    unordered hash table whose iteration order depends on the parallel
    schedule, so callers (and tests) rely on this list being identical for
    identical counter multisets whatever [jobs] was. *)

val stats_get : stats -> string -> int
(** One counter's accumulated total, 0 if it never fired. The incremental
    rebuild tests read ["rebuild.funcs-recompiled"] /
    ["rebuild.funcs-reused"] through this. *)

val plan_label : Csspgo_core.Driver.Plan.t -> string
(** ["<workload>/<variant>"] — span and track naming for a plan. *)

val hooks :
  ?stats:stats ->
  ?metrics:Csspgo_obs.Metrics.t ->
  ?track:Csspgo_obs.Trace.track ->
  ?stage_jobs:int ->
  Cache.t ->
  Csspgo_core.Driver.Plan.hooks
(** Memoization hooks backed by [cache]: stage values round-trip through the
    cache's byte store, so every hit is a fresh deserialized copy (safe to
    mutate, safe across domains). With [?stats], stage counters accumulate
    there (cache hits included); with [?metrics], the same counters also
    land in the registry under a [plan.] prefix and the registry is handed
    to the VM/correlator instruments; with [?track], every stage runs under
    a span on that track. [?stage_jobs] (default 1) is handed to the plan
    as [hooks.jobs] — intra-stage parallelism for the sharded correlator,
    byte-identical to serial at any level. *)

val run_plans :
  ?cache:Cache.t ->
  ?stats:stats ->
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  ?stage_jobs:int ->
  jobs:int ->
  Csspgo_core.Driver.Plan.t list ->
  Csspgo_core.Driver.outcome list
(** Execute plans on up to [jobs] domains ([?stage_jobs] additionally
    parallelizes inside each plan's Correlate stage — use it when running
    a single plan, where plan-level parallelism has nothing to chew on;
    results are byte-identical either way). Results in input order. With
    [?trace], each plan gets its own track (tid = plan index, name =
    {!plan_label}), registered serially before scheduling, carrying one
    whole-plan span plus one span per stage; on a fixed-clock trace the
    exported bytes are identical for every [jobs] level. *)

val run_matrix :
  ?cache:Cache.t ->
  ?stats:stats ->
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  ?options:Csspgo_core.Driver.options ->
  jobs:int ->
  variants:Csspgo_core.Driver.variant list ->
  workloads:Csspgo_core.Driver.workload list ->
  unit ->
  (Csspgo_core.Driver.workload * Csspgo_core.Driver.variant * Csspgo_core.Driver.outcome)
  list
(** The variant×workload product, workload-major, in declaration order —
    the shape of every experiment table in the paper. *)
