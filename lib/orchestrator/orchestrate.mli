(** The build orchestrator: runs staged PGO plans ({!Csspgo_core.Driver.Plan})
    across OCaml 5 domains, with stage memoization through a shared
    content-addressed {!Cache}.

    Every plan is independent of every other, and all stage merges inside a
    plan happen in its fixed stage order, so parallel execution is
    deterministic: binaries, profiles, and [Text_io] dumps are byte-identical
    to the serial ([jobs = 1]) schedule. *)

type stats
(** Mutex-protected cross-domain accumulator for the per-stage counters the
    plans emit through [Plan.hooks.stat] (samples streamed, sample-log
    words, serialized profile bytes). *)

val create_stats : unit -> stats

val stats_list : stats -> (string * int) list
(** Accumulated (counter name, total) pairs, sorted by name. *)

val hooks : ?stats:stats -> Cache.t -> Csspgo_core.Driver.Plan.hooks
(** Memoization hooks backed by [cache]: stage values round-trip through the
    cache's byte store, so every hit is a fresh deserialized copy (safe to
    mutate, safe across domains). With [?stats], stage counters accumulate
    there (cache hits included). *)

val run_plans :
  ?cache:Cache.t ->
  ?stats:stats ->
  jobs:int ->
  Csspgo_core.Driver.Plan.t list ->
  Csspgo_core.Driver.outcome list
(** Execute plans on up to [jobs] domains; results in input order. *)

val run_matrix :
  ?cache:Cache.t ->
  ?stats:stats ->
  ?options:Csspgo_core.Driver.options ->
  jobs:int ->
  variants:Csspgo_core.Driver.variant list ->
  workloads:Csspgo_core.Driver.workload list ->
  unit ->
  (Csspgo_core.Driver.workload * Csspgo_core.Driver.variant * Csspgo_core.Driver.outcome)
  list
(** The variant×workload product, workload-major, in declaration order —
    the shape of every experiment table in the paper. *)
