(** Re-export of {!Csspgo_sched.Scheduler}, the OCaml 5 [Domain]-based
    work-stealing scheduler. It lives in its own leaf library so the
    sharded correlator (below this layer) can share it; the orchestrator
    alias is kept for all historical call sites. *)

include module type of Csspgo_sched.Scheduler
