module Fnv = Csspgo_support.Fnv
module M = Csspgo_obs.Metrics

type stats = {
  hits : int;
  misses : int;
  stores : int;
  corrupt : int;
}

type t = {
  cdir : string option;
  mem : (string * string, string) Hashtbl.t;  (* (kind, joined key) -> payload *)
  lock : Mutex.t;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_stores : int;
  mutable c_corrupt : int;
  (* registry handles, resolved once at creation *)
  m_hit : M.counter;
  m_miss : M.counter;
  m_store : M.counter;
  m_poisoned : M.counter;
}

let magic = "csspgo-cache 1"
let suffix = ".bin"

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let create ?(metrics = M.null) ?dir () =
  Option.iter mkdir_p dir;
  {
    cdir = dir;
    mem = Hashtbl.create 64;
    lock = Mutex.create ();
    c_hits = 0;
    c_misses = 0;
    c_stores = 0;
    c_corrupt = 0;
    m_hit = M.counter metrics "cache.hit";
    m_miss = M.counter metrics "cache.miss";
    m_store = M.counter metrics "cache.store";
    m_poisoned = M.counter metrics "cache.poisoned";
  }

let dir t = t.cdir
let join_key key = String.concat "\x1f" key

let entry_file ~kind ~key =
  Printf.sprintf "%s.%Lx%s" kind (Fnv.hash_string (join_key key)) suffix

let entry_path t ~kind ~key =
  Option.map (fun d -> Filename.concat d (entry_file ~kind ~key)) t.cdir

let digest_hex payload = Printf.sprintf "%Lx" (Fnv.hash_string payload)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          Some (really_input_string ic len))

(* Entry layout: four header lines (magic, kind, joined key, payload digest)
   followed by the raw payload bytes. *)
let encode ~kind ~key payload =
  String.concat "\n" [ magic; kind; join_key key; digest_hex payload; payload ]

type decoded = Payload of string | Mismatch | Corrupt

let decode ~kind ~key blob =
  let next from =
    match String.index_from_opt blob from '\n' with
    | Some i -> Some (String.sub blob from (i - from), i + 1)
    | None -> None
  in
  match next 0 with
  | Some (m, p1) when String.equal m magic -> (
      match next p1 with
      | Some (k, p2) -> (
          match next p2 with
          | Some (kj, p3) -> (
              match next p3 with
              | Some (dg, p4) ->
                  if not (String.equal k kind && String.equal kj (join_key key)) then
                    Mismatch (* filename hash collision: someone else's entry *)
                  else
                    let payload = String.sub blob p4 (String.length blob - p4) in
                    if String.equal dg (digest_hex payload) then Payload payload
                    else Corrupt
              | None -> Corrupt)
          | None -> Corrupt)
      | None -> Corrupt)
  | _ -> Corrupt

let find t ~kind ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.mem (kind, join_key key) with
      | Some payload ->
          t.c_hits <- t.c_hits + 1;
          M.incr t.m_hit;
          Some payload
      | None -> (
          let disk =
            match entry_path t ~kind ~key with
            | None -> None
            | Some path -> (
                match read_file path with
                | None -> None
                | Some blob -> (
                    match decode ~kind ~key blob with
                    | Payload payload ->
                        Hashtbl.replace t.mem (kind, join_key key) payload;
                        Some payload
                    | Mismatch -> None
                    | Corrupt ->
                        t.c_corrupt <- t.c_corrupt + 1;
                        M.incr t.m_poisoned;
                        (try Sys.remove path with Sys_error _ -> ());
                        None))
          in
          (match disk with
          | Some _ ->
              t.c_hits <- t.c_hits + 1;
              M.incr t.m_hit
          | None ->
              t.c_misses <- t.c_misses + 1;
              M.incr t.m_miss);
          disk))

let store t ~kind ~key payload =
  locked t (fun () ->
      t.c_stores <- t.c_stores + 1;
      M.incr t.m_store;
      Hashtbl.replace t.mem (kind, join_key key) payload;
      match entry_path t ~kind ~key with
      | None -> ()
      | Some path -> (
          try
            let tmp = path ^ ".tmp" in
            let oc = open_out_bin tmp in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc (encode ~kind ~key payload));
            Sys.rename tmp path
          with Sys_error _ -> () (* disk trouble never fails the build *)))

let memo t ~kind ~key ~ser ~de f =
  let recompute () =
    let v = f () in
    store t ~kind ~key (ser v);
    v
  in
  match find t ~kind ~key with
  | None -> recompute ()
  | Some payload -> (
      match de payload with
      | v -> v
      | exception _ ->
          locked t (fun () ->
              t.c_corrupt <- t.c_corrupt + 1;
              M.incr t.m_poisoned);
          recompute ())

let stats t =
  locked t (fun () ->
      { hits = t.c_hits; misses = t.c_misses; stores = t.c_stores; corrupt = t.c_corrupt })

(* ------------------------------------------------------------------ *)
(* Offline directory inspection.                                       *)

type disk_stats = {
  d_entries : int;
  d_bytes : int;
  d_kinds : (string * int) list;
}

let is_entry name = Filename.check_suffix name suffix

let kind_of_entry name =
  let base = Filename.chop_suffix name suffix in
  match String.rindex_opt base '.' with
  | Some i -> String.sub base 0 i
  | None -> base

let scan_dir dir =
  let files = try Array.to_list (Sys.readdir dir) with Sys_error _ -> [] in
  let kinds = Hashtbl.create 8 in
  let entries, bytes =
    List.fold_left
      (fun (n, b) name ->
        if not (is_entry name) then (n, b)
        else begin
          let k = kind_of_entry name in
          Hashtbl.replace kinds k (1 + Option.value (Hashtbl.find_opt kinds k) ~default:0);
          let sz =
            match read_file (Filename.concat dir name) with
            | Some blob -> String.length blob
            | None -> 0
          in
          (n + 1, b + sz)
        end)
      (0, 0) files
  in
  let d_kinds =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) kinds [] |> List.sort compare
  in
  { d_entries = entries; d_bytes = bytes; d_kinds }

let clear_dir dir =
  let files = try Array.to_list (Sys.readdir dir) with Sys_error _ -> [] in
  List.fold_left
    (fun n name ->
      if is_entry name then (
        (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
        n + 1)
      else n)
    0 files
