(** Content-addressed artifact cache.

    Entries are opaque byte payloads addressed by [(kind, key)]: [kind] names
    a stage family (["profile-run"], ["correlate"], ["final-build"], ...) and
    [key] is the list of content fingerprints the driver derives from source
    hashes, stage specs, and pseudo-probe checksums. The cache never
    interprets payloads — callers serialize (profiles as canonical
    {!Csspgo_profile.Text_io} text, everything else as [Marshal] images) and
    deserialize on the way out, so every hit hands back a fresh copy and
    entries can be shared freely across domains.

    A cache is an in-memory table, optionally backed by a directory of
    entry files. Disk entries carry an FNV-1a digest of their payload;
    a mismatch (truncation, bit-rot, tampering) counts as [corrupt] and
    degrades to a miss — the stage reruns and overwrites the bad entry,
    so poisoning can cost time but never correctness.

    All operations are thread-safe (one mutex per cache). *)

type t

val create : ?metrics:Csspgo_obs.Metrics.t -> ?dir:string -> unit -> t
(** [create ~dir ()] backs the cache with directory [dir] (created if
    missing); omitting [dir] keeps the cache purely in-memory. With
    [?metrics], every lookup/store also bumps the [cache.hit],
    [cache.miss], [cache.store] and [cache.poisoned] registry counters
    (handles resolved once here, not per operation). *)

val dir : t -> string option

val find : t -> kind:string -> key:string list -> string option
(** Look up a payload; checks memory first, then disk. Counts a hit or a
    miss; a disk entry failing its digest counts as corrupt (and a miss)
    and is deleted. *)

val store : t -> kind:string -> key:string list -> string -> unit
(** Insert a payload in memory and, when disk-backed, atomically
    (temp-file + rename) on disk. *)

val memo :
  t ->
  kind:string ->
  key:string list ->
  ser:('a -> string) ->
  de:(string -> 'a) ->
  (unit -> 'a) ->
  'a
(** [find] + deserialize, falling back to running the thunk and storing its
    serialization. A payload that [de] rejects counts as corrupt and falls
    back to the thunk — the {!Csspgo_core.Driver.Plan.hooks} contract. *)

val entry_path : t -> kind:string -> key:string list -> string option
(** Where the entry lives on disk (whether or not it exists yet);
    [None] for in-memory caches. Exposed for tests and tooling. *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  corrupt : int;  (** digest failures + undeserializable payloads *)
}

val stats : t -> stats
(** Snapshot of this cache's counters. *)

(** {1 Offline directory inspection} (the [cache] CLI subcommand) *)

type disk_stats = {
  d_entries : int;
  d_bytes : int;
  d_kinds : (string * int) list;  (** entry count per kind, sorted *)
}

val scan_dir : string -> disk_stats
val clear_dir : string -> int
(** Delete all cache entry files in a directory; returns how many. *)
