(** A small OCaml 5 [Domain]-based work-stealing scheduler.

    Tasks are distributed round-robin over per-worker deques; a worker pops
    from the front of its own deque and, when empty, steals from the back of
    its siblings'. The task set is fixed up front (tasks never spawn tasks),
    so draining every deque is a complete termination condition.

    Determinism contract: [map] places each result at its input's index, so
    for *independent* tasks (no shared mutable state beyond thread-safe
    memoization) the result list is identical whatever [jobs] is — parallel
    schedules only change completion order, never the merge order. *)

val map :
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs f xs] evaluates [f] on every element of [xs] using up to
    [jobs] domains (clamped to [1 .. length xs]; [jobs <= 1] runs serially
    in the calling domain, spawning nothing). If any application raises,
    the exception of the smallest input index is re-raised after all
    workers finish.

    [metrics] receives [sched.tasks] (one per task run), [sched.steals]
    (successful steals — schedule-dependent, always 0 serially) and the
    [sched.queue-depth] gauge (max initial deque fill). [trace] adds one
    [domain-N] track per worker with a [task-i] span per task — but only on
    wall-clock traces: worker assignment is schedule-dependent, so
    deterministic (fixed-clock) traces omit scheduler tracks entirely. *)

val tree_reduce :
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  jobs:int ->
  ('a -> 'a -> 'a) ->
  'a list ->
  'a option
(** [tree_reduce ~jobs f xs] combines [xs] pairwise in rounds — round one
    merges elements (0,1), (2,3), ..., each round via {!map} — until one
    value remains; [None] on the empty list. The reduction tree is a pure
    function of [List.length xs], and {!map} places results by input
    index, so the result is identical whatever [jobs] is, even for a
    non-commutative [f] (operands keep list order). An associative [f]
    makes the result equal to a left fold; the fleet merge reduction runs
    log-concatenation and profile merging through this. *)
