module Obs = Csspgo_obs

type 'a deque = { lock : Mutex.t; mutable items : 'a list }

let pop_front d =
  Mutex.lock d.lock;
  let r =
    match d.items with
    | [] -> None
    | x :: tl ->
        d.items <- tl;
        Some x
  in
  Mutex.unlock d.lock;
  r

(* Steal from the victim's back half — the classic heuristic: leave the
   owner the work it is about to touch. Deques here are a handful of plan
   indices long, so the O(n) list surgery is noise. *)
let steal_back d =
  Mutex.lock d.lock;
  let r =
    match List.rev d.items with
    | [] -> None
    | x :: rtl ->
        d.items <- List.rev rtl;
        Some x
  in
  Mutex.unlock d.lock;
  r

let map ?metrics ?trace ~jobs f xs =
  let m = Option.value metrics ~default:Obs.Metrics.null in
  let c_tasks = Obs.Metrics.counter m "sched.tasks" in
  let c_steals = Obs.Metrics.counter m "sched.steals" in
  let g_depth = Obs.Metrics.gauge m "sched.queue-depth" in
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then begin
    Obs.Metrics.observe_gauge g_depth n;
    List.map
      (fun x ->
        Obs.Metrics.incr c_tasks;
        f x)
      xs
  end
  else begin
    let inputs = Array.of_list xs in
    let results = Array.make n None in
    let deques = Array.init jobs (fun _ -> { lock = Mutex.create (); items = [] }) in
    Array.iteri (fun i _ -> deques.(i mod jobs).items <- i :: deques.(i mod jobs).items) inputs;
    Array.iter
      (fun d ->
        d.items <- List.rev d.items;
        Obs.Metrics.observe_gauge g_depth (List.length d.items))
      deques;
    let run_raw i =
      Obs.Metrics.incr c_tasks;
      results.(i) <-
        Some (match f inputs.(i) with v -> Ok v | exception e -> Error e)
    in
    let run tk i =
      match tk with
      | Some tk ->
          Obs.Trace.with_span tk (Printf.sprintf "task-%d" i) (fun () -> run_raw i)
      | None -> run_raw i
    in
    (* Per-domain scheduler tracks are inherently schedule-dependent, so
       they exist only on wall-clock traces; a deterministic (fixed-clock)
       trace carries per-plan tracks only. *)
    let domain_track wid =
      match trace with
      | Some tr when not (Obs.Trace.deterministic tr) ->
          Some (Obs.Trace.track tr ~tid:(1000 + wid) ~name:(Printf.sprintf "domain-%d" wid))
      | _ -> None
    in
    let rec worker wid tk =
      match pop_front deques.(wid) with
      | Some i ->
          run tk i;
          worker wid tk
      | None ->
          let rec try_steal k =
            if k < jobs then
              match steal_back deques.((wid + k) mod jobs) with
              | Some i ->
                  Obs.Metrics.incr c_steals;
                  run tk i;
                  worker wid tk
              | None -> try_steal (k + 1)
          in
          try_steal 1
    in
    let domains =
      Array.init (jobs - 1) (fun k ->
          Domain.spawn (fun () ->
              let wid = k + 1 in
              worker wid (domain_track wid)))
    in
    worker 0 (domain_track 0);
    Array.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end

let rec tree_reduce ?metrics ?trace ~jobs f xs =
  match xs with
  | [] -> None
  | [ x ] -> Some x
  | _ ->
      (* Pair up adjacent elements; an odd tail passes through untouched.
         Each round is one [map], so pair merges run in parallel while the
         tree shape (and thus the result) stays jobs-independent. *)
      let rec pairs = function
        | a :: b :: tl -> (a, Some b) :: pairs tl
        | [ a ] -> [ (a, None) ]
        | [] -> []
      in
      let merged =
        map ?metrics ?trace ~jobs
          (function a, Some b -> f a b | a, None -> a)
          (pairs xs)
      in
      tree_reduce ?metrics ?trace ~jobs f merged
